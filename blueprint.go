// blueprint.go is the declarative builder for capsule architectures: the
// few-lines replacement for the instantiate/bind/start boilerplate that
// every NETKIT program otherwise repeats. A Blueprint records steps;
// Build replays them in declaration order against a fresh capsule, infers
// each binding's interface from the client receptacle, starts every
// component, and returns the running System.

package netkit

import (
	"context"
	"fmt"
	"time"

	"netkit/adapt"
	"netkit/core"
	"netkit/internal/buffers"
	"netkit/internal/ipc"
	"netkit/internal/osabs"
	"netkit/router"
)

// DefaultReceptacle is the receptacle name Pipe assumes, matching the
// single-output convention of the Router CF components.
const DefaultReceptacle = "out"

// Blueprint is a declarative description of a capsule architecture. All
// methods record steps and return the receiver for chaining; nothing
// touches a capsule until Build. Steps are replayed in declaration order,
// so a constraint declared before a pipe polices that pipe's bind.
type Blueprint struct {
	name  string
	opts  []core.CapsuleOption
	steps []buildStep
}

type buildStep struct {
	desc  string
	apply func(*core.Capsule) error
}

// NewBlueprint starts an empty blueprint for a capsule with the given
// name and options.
func NewBlueprint(name string, opts ...core.CapsuleOption) *Blueprint {
	return &Blueprint{name: name, opts: opts}
}

// Add declares a component instance of typeName, constructed through the
// capsule's loader registry with cfg.
func (b *Blueprint) Add(name, typeName string, cfg map[string]string) *Blueprint {
	return b.step(fmt.Sprintf("add %s (%s)", name, typeName), func(c *core.Capsule) error {
		_, err := c.Instantiate(name, typeName, cfg)
		return err
	})
}

// Insert declares a pre-constructed component instance.
func (b *Blueprint) Insert(name string, comp core.Component) *Blueprint {
	return b.step(fmt.Sprintf("insert %s", name), func(c *core.Capsule) error {
		return c.Insert(name, comp)
	})
}

// FastPath declares a fused chain entry point (router.FastPath) under
// name. Pipe it ahead of a processing chain — FastPath("fast").Pipe(
// "fast", "v4", "count") — and push into it: when the chain downstream is
// interceptor-free and every hop is fusible, packets run it as one
// compiled closure; any structural mutation (interceptor install, rebind,
// hot-swap) de-specialises it on the spot and it re-fuses once the chain
// is clean (DESIGN.md §8).
func (b *Blueprint) FastPath(name string) *Blueprint {
	return b.step(fmt.Sprintf("fastpath %s", name), func(c *core.Capsule) error {
		return c.Insert(name, router.NewFastPath(c))
	})
}

// Isolate declares a component instance of typeName hosted out-of-process
// style behind an ipc transport (§5's isolation mechanism): the capsule
// holds an ipc.RemoteComponent stand-in whose pushes cross the boundary
// as pipelined binary batch frames and whose receptacles deliver what the
// isolated side emits, so it binds, pipes and reports stats like any
// in-proc component. The stand-in owns its transport — stopping the
// capsule tears the isolation boundary down with it. The instance is
// constructed in the isolated capsule through the same loader registry
// this blueprint's capsule uses, so every registered factory can be
// isolated by type name.
func (b *Blueprint) Isolate(name, typeName string, cfg map[string]string) *Blueprint {
	return b.step(fmt.Sprintf("isolate %s (%s)", name, typeName), func(c *core.Capsule) error {
		rc, err := ipc.Isolate(name, typeName, cfg, c.ComponentRegistry())
		if err != nil {
			return err
		}
		if err := c.Insert(name, rc); err != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = rc.Stop(ctx)
			return err
		}
		return nil
	})
}

// Pipe declares a chain of bindings through each component's
// DefaultReceptacle: Pipe("a", "b", "c") binds a.out -> b and b.out -> c.
// The bound interface is inferred from each client receptacle, so the
// chain may mix interface types as long as adjacent components agree.
func (b *Blueprint) Pipe(names ...string) *Blueprint {
	if len(names) < 2 {
		return b.step("pipe", func(*core.Capsule) error {
			return fmt.Errorf("netkit: Pipe needs at least two components, got %d", len(names))
		})
	}
	for i := 0; i+1 < len(names); i++ {
		b.Connect(names[i], DefaultReceptacle, names[i+1])
	}
	return b
}

// Connect declares one binding from the client component's named
// receptacle to the server component. The interface is inferred from the
// receptacle's declared interface ID.
func (b *Blueprint) Connect(from, receptacle, to string) *Blueprint {
	return b.step(fmt.Sprintf("connect %s.%s -> %s", from, receptacle, to), func(c *core.Capsule) error {
		comp, ok := c.Component(from)
		if !ok {
			return fmt.Errorf("netkit: connect: client %q: %w", from, core.ErrNotFound)
		}
		recp, ok := comp.Receptacle(receptacle)
		if !ok {
			return fmt.Errorf("netkit: connect: receptacle %s.%q: %w", from, receptacle, core.ErrNotFound)
		}
		_, err := c.Bind(from, receptacle, to, recp.Iface())
		return err
	})
}

// DeviceSource declares a router.NICSource pumping an existing stratum-1
// device (channel-backed NIC, UDP socket, any osabs.Device) into the
// pipeline. pool may be nil: frames are then wrapped zero-copy, and
// arena-backed devices carry their own pooled refcounted storage
// regardless. pump tunes batching and the busy-poll idle policy; the
// zero value takes the defaults.
func (b *Blueprint) DeviceSource(name string, dev osabs.Device, pool *buffers.Pool, pump router.PumpConfig) *Blueprint {
	return b.step(fmt.Sprintf("device-source %s", name), func(c *core.Capsule) error {
		src, err := router.NewNICSourcePump(dev, pool, pump)
		if err != nil {
			return err
		}
		return c.Insert(name, src)
	})
}

// DeviceSink declares a router.NICSink transmitting the pipeline's
// packets out through an existing stratum-1 device, one batched device
// call per packet batch.
func (b *Blueprint) DeviceSink(name string, dev osabs.Device) *Blueprint {
	return b.step(fmt.Sprintf("device-sink %s", name), func(c *core.Capsule) error {
		snk, err := router.NewNICSink(dev)
		if err != nil {
			return err
		}
		return c.Insert(name, snk)
	})
}

// Shards declares a sharded data plane under name: n parallel Router CF
// pipeline replicas built by build, fed by an RSS flow-hash dispatcher so
// every flow keeps ordering on one replica (router.ShardedCF). The
// resulting component provides IPacketPush and a DefaultReceptacle "out"
// where the replicas merge, so it composes with Pipe like any single-lane
// component: NewBlueprint("r").Shards("fwd", 4, replica).Pipe("fwd", "sink").
func (b *Blueprint) Shards(name string, n int, build router.ReplicaFactory) *Blueprint {
	return b.ShardsCfg(name, router.ShardConfig{Shards: n}, build)
}

// ShardsCfg is Shards with the full router.ShardConfig exposed — ring
// depth, initial active lanes, a custom dispatch hash, or the per-lane
// latency histograms (ShardConfig.LatencyHistogram) that load harnesses
// and tail-latency SLO rules read.
func (b *Blueprint) ShardsCfg(name string, cfg router.ShardConfig, build router.ReplicaFactory) *Blueprint {
	return b.step(fmt.Sprintf("shards %s x%d", name, cfg.Shards), func(c *core.Capsule) error {
		sc, err := router.NewShardedCF(c, cfg, build)
		if err != nil {
			return err
		}
		return c.Insert(name, sc)
	})
}

// AdaptName is the instance name Blueprint.Adapt inserts the adaptation
// engine under.
const AdaptName = "adapt"

// Adapt declares the closed reflective loop: an adapt.Engine, inserted
// under AdaptName, that samples the capsule's stats tree on a tick and
// applies the given rules through the meta-space (hot-swap, rescaling,
// interception, resource retuning). The engine is an ordinary component —
// StartAll starts its sampling loop, the architecture meta-model
// enumerates it, and its own tick/firing counters appear in the very
// stats tree it watches.
func (b *Blueprint) Adapt(opts adapt.Options, rules ...adapt.Rule) *Blueprint {
	return b.step(fmt.Sprintf("adapt (%d rules)", len(rules)), func(c *core.Capsule) error {
		return c.Insert(AdaptName, adapt.NewEngine(c, opts, rules...))
	})
}

// Constrain declares a named bind-time constraint. It polices every bind
// declared after it, and stays installed on the built capsule to police
// post-build reconfiguration.
func (b *Blueprint) Constrain(name string, check func(*core.Capsule, core.BindRequest) error) *Blueprint {
	return b.step(fmt.Sprintf("constrain %s", name), func(c *core.Capsule) error {
		return c.AddConstraint(core.BindConstraint{Name: name, Check: check})
	})
}

// Intercept declares a named Around on the binding most recently reachable
// at the client component's receptacle, installed after the binding exists.
func (b *Blueprint) Intercept(component, receptacle, name string, around core.Around) *Blueprint {
	return b.step(fmt.Sprintf("intercept %s.%s (%s)", component, receptacle, name), func(c *core.Capsule) error {
		return Meta(c).Interception().Install(component, receptacle, name, around)
	})
}

func (b *Blueprint) step(desc string, apply func(*core.Capsule) error) *Blueprint {
	b.steps = append(b.steps, buildStep{desc: desc, apply: apply})
	return b
}

// Build replays the declared steps against a fresh capsule, starts every
// component, and returns the running System. On any failure the partially
// built capsule is closed and the failing step is named in the error.
func (b *Blueprint) Build(ctx context.Context) (*System, error) {
	capsule := core.NewCapsule(b.name, b.opts...)
	for _, s := range b.steps {
		if err := s.apply(capsule); err != nil {
			_ = capsule.Close(ctx)
			return nil, fmt.Errorf("netkit: build %q: step %q: %w", b.name, s.desc, err)
		}
	}
	if err := capsule.StartAll(ctx); err != nil {
		_ = capsule.Close(ctx)
		return nil, fmt.Errorf("netkit: build %q: start: %w", b.name, err)
	}
	return &System{capsule: capsule}, nil
}

// System is a built, started capsule plus its meta-space.
type System struct {
	capsule *core.Capsule
}

// Capsule returns the underlying component runtime.
func (s *System) Capsule() *core.Capsule { return s.capsule }

// Meta returns the system's unified meta-space (Figure 2): architecture,
// interface, interception and resources meta-models.
func (s *System) Meta() *MetaSpace { return Meta(s.capsule) }

// Close stops every component and tears the capsule down.
func (s *System) Close(ctx context.Context) error { return s.capsule.Close(ctx) }
