//go:build race

package netkit

// raceEnabled reports whether this binary was built with the race
// detector. Performance-asserting tests (TestE12ShardScaling) skip under
// it: the detector's slowdown and internal synchronisation serialise the
// shard workers, so a throughput bound would flake on correct code.
const raceEnabled = true
