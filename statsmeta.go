// statsmeta.go is the telemetry view of the unified meta-space: the
// capsule-wide stats tree built from the uniform core.IStats capability.
// It is the "inspect" half of the reflective loop — the adapt package's
// engine samples the same tree to decide when to reconfigure the running
// data plane through the other meta-models.

package netkit

import (
	"context"
	"fmt"
	"time"

	"netkit/core"
)

// Stats returns the stats meta-view: snapshots and sampled watches of the
// capsule-wide telemetry tree.
func (m *MetaSpace) Stats() *StatsMeta {
	return &StatsMeta{capsule: m.capsule}
}

// StatsMeta exposes one capsule's stats tree.
type StatsMeta struct {
	capsule *core.Capsule
}

// Tree snapshots the capsule-wide stats tree: one child per component,
// recursing through composites (a sharded CF contributes per-replica lane
// nodes). Cheap — atomic loads throughout — so it is safe to call on a
// sampling tick while traffic runs.
func (sm *StatsMeta) Tree() core.StatNode {
	return core.CapsuleStats(sm.capsule)
}

// Component snapshots one component's subtree, addressed by instance name.
func (sm *StatsMeta) Component(name string) (core.StatNode, error) {
	comp, ok := sm.capsule.Component(name)
	if !ok {
		return core.StatNode{}, fmt.Errorf("netkit: component %q: %w", name, core.ErrNotFound)
	}
	return core.ComponentStats(name, comp), nil
}

// Merged aggregates the whole tree to one stat list under the composite
// aggregation rule (counters sum, ratio gauges average).
func (sm *StatsMeta) Merged() []core.Stat {
	tree := sm.Tree()
	groups := make([][]core.Stat, 0, len(tree.Children))
	for _, ch := range tree.Children {
		groups = append(groups, ch.Stats)
	}
	return core.MergeStats(groups...)
}

// Watch samples the stats tree every interval and delivers snapshots on
// the returned channel until ctx is cancelled; the channel closes when
// the watch ends. The first sample is immediate.
func (sm *StatsMeta) Watch(ctx context.Context, interval time.Duration) <-chan core.StatNode {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	out := make(chan core.StatNode, 1)
	go func() {
		defer close(out)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case out <- sm.Tree():
			case <-ctx.Done():
				return
			}
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
