// meta.go implements the unified meta-space entry point of the paper's
// Figure 2: one handle per capsule from which all four meta-models —
// architecture, interface, interception and resources — are reached.
// Before this facade existed the four models were exercised through
// scattered access paths (Capsule.Snapshot, the process-wide interface
// registry, per-binding interceptor methods, a free-standing resources
// manager); Meta ties them to a single, discoverable surface.

package netkit

import (
	"fmt"
	"sync"

	"netkit/core"
	"netkit/resources"
)

// MetaSpace is the reflective meta-space of one capsule. Obtain one with
// Meta; the zero value is not usable.
type MetaSpace struct {
	capsule *core.Capsule
}

// metaResources associates each capsule with its resources meta-model
// instance. The association lives in the facade (not in core) so the
// kernel stays free of any dependency on the resources package; every
// Meta(c) call for the same capsule observes the same Manager.
var metaResources sync.Map // *core.Capsule -> *resources.Manager

// Meta returns the meta-space of the given capsule. Calling Meta twice on
// the same capsule yields handles onto the same underlying meta-models.
func Meta(c *core.Capsule) *MetaSpace {
	if c == nil {
		panic("netkit: Meta(nil capsule)")
	}
	return &MetaSpace{capsule: c}
}

// Capsule returns the capsule this meta-space reflects.
func (m *MetaSpace) Capsule() *core.Capsule { return m.capsule }

// Architecture returns the architecture meta-model: component/binding
// graph introspection, mutation events, and bind-time constraints.
func (m *MetaSpace) Architecture() *ArchitectureMeta {
	return &ArchitectureMeta{capsule: m.capsule}
}

// Interface returns the interface meta-model: descriptor lookup and
// conformance checking against the registry in force for the capsule.
func (m *MetaSpace) Interface() *InterfaceMeta {
	return &InterfaceMeta{capsule: m.capsule}
}

// Interception returns the interception meta-model: installation and
// removal of named Around chains on live bindings.
func (m *MetaSpace) Interception() *InterceptionMeta {
	return &InterceptionMeta{capsule: m.capsule}
}

// Resources returns the capsule's resources meta-model: the task table,
// worker pools and abstract resource capacities scoped to this capsule.
// The Manager is created on first access and shared by every MetaSpace
// handle onto the same capsule; the association is dropped when the
// capsule closes, so closed capsules are not retained by the facade.
func (m *MetaSpace) Resources() *resources.Manager {
	if mgr, ok := metaResources.Load(m.capsule); ok {
		return mgr.(*resources.Manager)
	}
	created := resources.NewManager()
	if mgr, loaded := metaResources.LoadOrStore(m.capsule, created); loaded {
		return mgr.(*resources.Manager)
	}
	// We created the association: evict it when the capsule closes, so
	// the map never pins a dead capsule. On an already-closed capsule
	// the hook (and eviction) runs immediately.
	capsule := m.capsule
	capsule.OnClose(func() { metaResources.Delete(capsule) })
	return created
}

// ---------------------------------------------------------------------------
// Architecture meta-model

// ArchitectureMeta exposes the architecture meta-model of one capsule.
type ArchitectureMeta struct {
	capsule *core.Capsule
}

// Snapshot captures the current component/binding graph.
func (a *ArchitectureMeta) Snapshot() *core.Graph { return a.capsule.Snapshot() }

// Validate snapshots the architecture and checks its structural
// invariants.
func (a *ArchitectureMeta) Validate() error { return a.capsule.Snapshot().Validate() }

// Subscribe registers a mutation-event listener with the given channel
// buffer. The returned Subscription exposes the event channel, a cancel
// function, and the subscriber's own drop counter.
func (a *ArchitectureMeta) Subscribe(buf int) *core.Subscription {
	return a.capsule.SubscribeEvents(buf)
}

// DroppedEvents reports how many mutation events the capsule has dropped
// across all subscribers — non-zero means the event stream is incomplete
// and listeners should resynchronise from a fresh Snapshot.
func (a *ArchitectureMeta) DroppedEvents() uint64 { return a.capsule.DroppedEvents() }

// Constrain installs a named bind-time constraint: every subsequent Bind
// and Rebind on the capsule is vetoed unless check returns nil.
func (a *ArchitectureMeta) Constrain(name string, check func(*core.Capsule, core.BindRequest) error) error {
	return a.capsule.AddConstraint(core.BindConstraint{Name: name, Check: check})
}

// Unconstrain removes a named bind-time constraint.
func (a *ArchitectureMeta) Unconstrain(name string) error {
	return a.capsule.RemoveConstraint(name)
}

// Constraints returns the installed constraint names in evaluation order.
func (a *ArchitectureMeta) Constraints() []string { return a.capsule.Constraints() }

// ---------------------------------------------------------------------------
// Interface meta-model

// InterfaceMeta exposes the interface meta-model in force for one capsule.
type InterfaceMeta struct {
	capsule *core.Capsule
}

// Registry returns the underlying descriptor catalogue.
func (i *InterfaceMeta) Registry() *core.InterfaceRegistry { return i.capsule.InterfaceRegistry() }

// Lookup returns the descriptor registered for id.
func (i *InterfaceMeta) Lookup(id core.InterfaceID) (*core.Descriptor, bool) {
	return i.capsule.InterfaceRegistry().Lookup(id)
}

// IDs returns every registered interface ID, sorted.
func (i *InterfaceMeta) IDs() []core.InterfaceID { return i.capsule.InterfaceRegistry().IDs() }

// Conforms reports whether v implements the interface identified by id,
// according to the registered descriptor.
func (i *InterfaceMeta) Conforms(id core.InterfaceID, v any) bool {
	return i.capsule.InterfaceRegistry().Conforms(id, v)
}

// ProvidedBy returns the interface IDs provided by the named component
// instance, or an error if the component does not exist.
func (i *InterfaceMeta) ProvidedBy(component string) ([]core.InterfaceID, error) {
	comp, ok := i.capsule.Component(component)
	if !ok {
		return nil, fmt.Errorf("netkit: component %q: %w", component, core.ErrNotFound)
	}
	return comp.ProvidedIDs(), nil
}

// ---------------------------------------------------------------------------
// Interception meta-model

// InterceptionMeta exposes the interception meta-model of one capsule:
// named Around chains installed on live bindings, addressed either by
// binding ID or by the client-side (component, receptacle) endpoint.
type InterceptionMeta struct {
	capsule *core.Capsule
}

// binding resolves the client-side endpoint to its (at most one) binding.
func (ic *InterceptionMeta) binding(component, receptacle string) (*core.Binding, error) {
	for _, b := range ic.capsule.BindingsOf(component) {
		from, recp := b.From()
		if from == component && recp == receptacle {
			return b, nil
		}
	}
	return nil, fmt.Errorf("netkit: no binding at %s.%s: %w", component, receptacle, core.ErrNotFound)
}

// Install appends a named Around to the interceptor chain of the binding
// rooted at component's receptacle. The target interface must have a
// Proxy-capable descriptor.
func (ic *InterceptionMeta) Install(component, receptacle, name string, around core.Around) error {
	b, err := ic.binding(component, receptacle)
	if err != nil {
		return err
	}
	return b.AddInterceptor(core.Interceptor{Name: name, Wrap: around})
}

// Remove removes the named interceptor from the binding rooted at
// component's receptacle, re-fusing the binding if its chain empties.
func (ic *InterceptionMeta) Remove(component, receptacle, name string) error {
	b, err := ic.binding(component, receptacle)
	if err != nil {
		return err
	}
	return b.RemoveInterceptor(name)
}

// Chain returns the interceptor names installed on the binding rooted at
// component's receptacle, in invocation order.
func (ic *InterceptionMeta) Chain(component, receptacle string) ([]string, error) {
	b, err := ic.binding(component, receptacle)
	if err != nil {
		return nil, err
	}
	return b.Interceptors(), nil
}

// Binding resolves the client-side endpoint to the underlying first-class
// binding for operations beyond the named-chain surface (e.g. Rebind).
func (ic *InterceptionMeta) Binding(component, receptacle string) (*core.Binding, error) {
	return ic.binding(component, receptacle)
}

// Endpoint is the client-side address of one binding: the component whose
// receptacle roots it.
type Endpoint struct {
	Component  string
	Receptacle string
}

// InstallAll appends the named Around to the interceptor chain of EVERY
// listed endpoint's binding, all-or-nothing: endpoints are resolved before
// any chain is touched, and a failed install rolls the interceptor back
// off the bindings it already reached. This is the interception verb for
// replicated (sharded) structures — an audit installed on all replicas
// either observes every shard or none. The same Around value runs on each
// binding, so an accumulating hook aggregates across endpoints naturally.
func (ic *InterceptionMeta) InstallAll(endpoints []Endpoint, name string, around core.Around) error {
	ids := make([]core.BindingID, len(endpoints))
	for i, ep := range endpoints {
		b, err := ic.binding(ep.Component, ep.Receptacle)
		if err != nil {
			return err
		}
		ids[i] = b.ID()
	}
	return ic.capsule.AddInterceptorAll(ids, core.Interceptor{Name: name, Wrap: around})
}

// RemoveAll removes the named interceptor from every listed endpoint's
// binding. All removals are attempted; the first error is returned.
func (ic *InterceptionMeta) RemoveAll(endpoints []Endpoint, name string) error {
	ids := make([]core.BindingID, len(endpoints))
	for i, ep := range endpoints {
		b, err := ic.binding(ep.Component, ep.Receptacle)
		if err != nil {
			return err
		}
		ids[i] = b.ID()
	}
	return ic.capsule.RemoveInterceptorAll(ids, name)
}

// ---------------------------------------------------------------------------

// Around is the interception hook signature, re-exported so facade users
// can write interceptors without importing netkit/core.
type Around = core.Around

// PrePost builds an Around from separate pre- and post-hooks, the common
// pattern in the paper's interception meta-model. Either hook may be nil.
func PrePost(pre func(op string, args []any), post func(op string, args, results []any)) Around {
	return core.PrePost(pre, post)
}

// Service resolves the named component's implementation of the interface
// identified by id, typed. It is the programmatic analogue of binding a
// receptacle by hand: use it at system edges (tests, traffic sources,
// operator tooling) where a full component is not worth defining.
func Service[T any](c *core.Capsule, component string, id core.InterfaceID) (T, error) {
	var zero T
	comp, ok := c.Component(component)
	if !ok {
		return zero, fmt.Errorf("netkit: component %q: %w", component, core.ErrNotFound)
	}
	impl, ok := comp.Provided(id)
	if !ok {
		return zero, fmt.Errorf("netkit: component %q does not provide %q: %w",
			component, id, core.ErrNotFound)
	}
	t, ok := impl.(T)
	if !ok {
		return zero, fmt.Errorf("netkit: component %q: %q has unexpected Go type %T: %w",
			component, id, impl, core.ErrTypeMismatch)
	}
	return t, nil
}
