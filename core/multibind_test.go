package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

// wireN inserts n source/sink pairs and returns their bindings.
func wireN(t *testing.T, c *Capsule, n int) ([]*sourceImpl, []*Binding) {
	t.Helper()
	srcs := make([]*sourceImpl, n)
	ids := make([]*Binding, n)
	for i := 0; i < n; i++ {
		src, snk := newSource(), newSink()
		sname := "src" + string(rune('0'+i))
		kname := "snk" + string(rune('0'+i))
		if err := c.Insert(sname, src); err != nil {
			t.Fatalf("insert %s: %v", sname, err)
		}
		if err := c.Insert(kname, snk); err != nil {
			t.Fatalf("insert %s: %v", kname, err)
		}
		b, err := c.Bind(sname, "out", kname, ifSink)
		if err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		srcs[i] = src
		ids[i] = b
	}
	return srcs, ids
}

func bindingIDs(bs []*Binding) []BindingID {
	ids := make([]BindingID, len(bs))
	for i, b := range bs {
		ids[i] = b.ID()
	}
	return ids
}

func TestAddInterceptorAllInstallsEverywhere(t *testing.T) {
	c := newTestCapsule(t)
	srcs, bs := wireN(t, c, 3)
	var calls atomic.Int64
	ic := Interceptor{Name: "count", Wrap: PrePost(func(string, []any) {
		calls.Add(1)
	}, nil)}
	if err := c.AddInterceptorAll(bindingIDs(bs), ic); err != nil {
		t.Fatalf("AddInterceptorAll: %v", err)
	}
	for i, src := range srcs {
		tgt, ok := src.out.Get()
		if !ok {
			t.Fatalf("src %d unbound", i)
		}
		tgt.Consume(1)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("interceptor saw %d calls, want 3", got)
	}
	for i, b := range bs {
		if names := b.Interceptors(); len(names) != 1 || names[0] != "count" {
			t.Fatalf("binding %d chain %v, want [count]", i, names)
		}
	}
	if err := c.RemoveInterceptorAll(bindingIDs(bs), "count"); err != nil {
		t.Fatalf("RemoveInterceptorAll: %v", err)
	}
	for i, b := range bs {
		if names := b.Interceptors(); len(names) != 0 {
			t.Fatalf("binding %d still has chain %v", i, names)
		}
	}
}

// TestAddInterceptorAllRollsBack pre-installs a colliding interceptor on
// the middle binding: the all-bindings install must fail and leave the
// other bindings exactly as they were.
func TestAddInterceptorAllRollsBack(t *testing.T) {
	c := newTestCapsule(t)
	_, bs := wireN(t, c, 3)
	noop := PrePost(nil, nil)
	if err := bs[1].AddInterceptor(Interceptor{Name: "clash", Wrap: noop}); err != nil {
		t.Fatal(err)
	}
	err := c.AddInterceptorAll(bindingIDs(bs), Interceptor{Name: "clash", Wrap: noop})
	if !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if names := bs[0].Interceptors(); len(names) != 0 {
		t.Fatalf("binding 0 not rolled back: %v", names)
	}
	if names := bs[2].Interceptors(); len(names) != 0 {
		t.Fatalf("binding 2 touched: %v", names)
	}
	if names := bs[1].Interceptors(); len(names) != 1 || names[0] != "clash" {
		t.Fatalf("binding 1 pre-installed chain lost: %v", names)
	}
}

func TestAddInterceptorAllMissingBinding(t *testing.T) {
	c := newTestCapsule(t)
	_, bs := wireN(t, c, 2)
	ids := append(bindingIDs(bs), BindingID(999))
	err := c.AddInterceptorAll(ids, Interceptor{Name: "x", Wrap: PrePost(nil, nil)})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	for i, b := range bs {
		if names := b.Interceptors(); len(names) != 0 {
			t.Fatalf("binding %d touched before resolution failure: %v", i, names)
		}
	}
	if err := c.RemoveInterceptorAll(ids, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove-all with bad id: want ErrNotFound, got %v", err)
	}
}
