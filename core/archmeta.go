package core

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind enumerates architecture meta-model mutation events.
type EventKind int

// Mutation event kinds.
const (
	EventInsert EventKind = iota + 1
	EventRemove
	EventBind
	EventUnbind
	EventRebind
	EventStart
	EventStop
	EventIntercept
	EventUnintercept
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventRemove:
		return "remove"
	case EventBind:
		return "bind"
	case EventUnbind:
		return "unbind"
	case EventRebind:
		return "rebind"
	case EventStart:
		return "start"
	case EventStop:
		return "stop"
	case EventIntercept:
		return "intercept"
	case EventUnintercept:
		return "unintercept"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one architecture meta-model mutation notification. The
// meta-model is causally connected: every capsule mutation emits exactly
// one event after the mutation has been applied. Intercept/unintercept
// events carry the interceptor name in Type.
type Event struct {
	Kind       EventKind
	Component  string
	Peer       string // bind/unbind: the server component
	Type       string // insert/remove: component type; intercept: interceptor name
	Receptacle string
	Iface      InterfaceID
	Binding    BindingID
}

// eventHub fans events out to subscribers. Subscribers receive on buffered
// channels; a subscriber that falls behind has events dropped (counted),
// never blocking the architectural mutation path.
type eventHub struct {
	mu           sync.Mutex
	nextID       int
	subs         map[int]chan Event
	dropped      map[int]uint64
	totalDropped uint64
	closed       bool
	closeHooks   []func()
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[int]chan Event), dropped: make(map[int]uint64)}
}

func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for id, ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped[id]++
			h.totalDropped++
		}
	}
}

func (h *eventHub) subscribe(buf int) (int, <-chan Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		ch := make(chan Event)
		close(ch)
		return -1, ch
	}
	h.nextID++
	id := h.nextID
	ch := make(chan Event, buf)
	h.subs[id] = ch
	return id, ch
}

func (h *eventHub) unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.subs[id]; ok {
		delete(h.subs, id)
		close(ch)
	}
}

func (h *eventHub) droppedCount(id int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped[id]
}

func (h *eventHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
	hooks := h.closeHooks
	h.closeHooks = nil
	h.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// onClose registers fn to run when the hub closes; if it is already
// closed, fn runs immediately.
func (h *eventHub) onClose(fn func()) {
	h.mu.Lock()
	if !h.closed {
		h.closeHooks = append(h.closeHooks, fn)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	fn()
}

// Subscribe registers an architecture meta-model event listener with the
// given channel buffer. It returns the receive channel and a cancel
// function. Events are dropped (not blocked on) if the subscriber lags.
func (c *Capsule) Subscribe(buf int) (<-chan Event, func()) {
	sub := c.SubscribeEvents(buf)
	return sub.Events(), sub.Cancel
}

// Subscription is a handle on one architecture meta-model event stream. It
// carries the receive channel plus the subscriber's own loss counter, so a
// listener can detect (and react to) event loss instead of silently
// operating on a stale view.
type Subscription struct {
	hub *eventHub
	id  int
	ch  <-chan Event
}

// Events returns the receive channel. It is closed on Cancel and on
// capsule close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events have been dropped for this subscriber
// because its channel buffer was full.
func (s *Subscription) Dropped() uint64 { return s.hub.droppedCount(s.id) }

// Cancel unregisters the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Cancel() { s.hub.unsubscribe(s.id) }

// SubscribeEvents registers an architecture meta-model event listener with
// the given channel buffer and returns its Subscription handle. Events are
// dropped (not blocked on) if the subscriber lags; the per-subscriber drop
// count is readable via Subscription.Dropped.
func (c *Capsule) SubscribeEvents(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	id, ch := c.events.subscribe(buf)
	return &Subscription{hub: c.events, id: id, ch: ch}
}

// WatchStructure registers a synchronous structural-mutation observer and
// returns its cancel function. Unlike SubscribeEvents, watchers are invoked
// inline at every mutation site — nothing is ever dropped — which is what
// correctness-critical invalidation (the router's fused-chain plans) needs:
// a lossy async stream could miss an interceptor install and leave a fused
// fast path permanently bypassing the audit it was meant to feed.
//
// The contract is strict because watchers run while capsule or binding
// locks are held: fn must be non-blocking, must not call back into the
// capsule, and should do no more than flip atomics (bump a generation,
// clear a cached plan). Heavier reactions belong on SubscribeEvents.
func (c *Capsule) WatchStructure(fn func(Event)) (cancel func()) {
	c.watchMu.Lock()
	c.nextWatch++
	id := c.nextWatch
	next := make([]structWatcher, 0, len(c.watchList)+1)
	next = append(next, c.watchList...)
	next = append(next, structWatcher{id: id, fn: fn})
	c.watchList = next
	c.watchers.Store(&next)
	c.watchMu.Unlock()
	return func() {
		c.watchMu.Lock()
		defer c.watchMu.Unlock()
		kept := make([]structWatcher, 0, len(c.watchList))
		for _, w := range c.watchList {
			if w.id != id {
				kept = append(kept, w)
			}
		}
		c.watchList = kept
		c.watchers.Store(&kept)
	}
}

type structWatcher struct {
	id int
	fn func(Event)
}

// notify publishes e to the async hub and runs the synchronous structure
// watchers. It is the single exit point for every structural mutation.
func (c *Capsule) notify(e Event) {
	c.events.publish(e)
	if ws := c.watchers.Load(); ws != nil {
		for _, w := range *ws {
			w.fn(e)
		}
	}
}

// OnClose registers fn to run once when the capsule closes (after all
// event subscriber channels have been closed). If the capsule is already
// closed, fn runs immediately. Facade layers use this to release
// per-capsule associations without holding an event subscription open.
func (c *Capsule) OnClose(fn func()) { c.events.onClose(fn) }

// DroppedEvents reports how many events the capsule has dropped across all
// subscribers (including since-cancelled ones) because their channel
// buffers were full. A non-zero value tells architecture meta-model
// listeners that the event stream is not a complete mutation history and a
// fresh Snapshot is needed to resynchronise.
func (c *Capsule) DroppedEvents() uint64 {
	c.events.mu.Lock()
	defer c.events.mu.Unlock()
	return c.events.totalDropped
}

// GraphNode is one component in an architecture snapshot.
type GraphNode struct {
	Name        string
	Type        string
	Started     bool
	Provided    []InterfaceID
	Receptacles []GraphReceptacle
	Annotations map[string]string
}

// GraphReceptacle is one receptacle in an architecture snapshot.
type GraphReceptacle struct {
	Name  string
	Iface InterfaceID
	Bound bool
}

// GraphEdge is one binding in an architecture snapshot.
type GraphEdge struct {
	ID           BindingID
	From         string
	Receptacle   string
	To           string
	Iface        InterfaceID
	Interceptors []string
}

// Graph is an immutable snapshot of a capsule's architecture: the product
// of the architecture meta-model's introspection side.
type Graph struct {
	Capsule string
	Nodes   []GraphNode
	Edges   []GraphEdge
}

// Snapshot captures the current component/binding graph.
func (c *Capsule) Snapshot() *Graph {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g := &Graph{Capsule: c.name}
	names := make([]string, 0, len(c.comps))
	for n := range c.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		comp := c.comps[n]
		node := GraphNode{
			Name:        n,
			Type:        comp.TypeName(),
			Started:     c.states[n] == stateStarted,
			Provided:    comp.ProvidedIDs(),
			Annotations: comp.Annotations(),
		}
		for _, rn := range comp.ReceptacleNames() {
			r, _ := comp.Receptacle(rn)
			node.Receptacles = append(node.Receptacles, GraphReceptacle{
				Name: rn, Iface: r.Iface(), Bound: r.Bound(),
			})
		}
		g.Nodes = append(g.Nodes, node)
	}
	ids := make([]BindingID, 0, len(c.bindings))
	for id := range c.bindings {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := c.bindings[id]
		g.Edges = append(g.Edges, GraphEdge{
			ID: id, From: b.from, Receptacle: b.recpName,
			To: b.to, Iface: b.iface, Interceptors: b.Interceptors(),
		})
	}
	return g
}

// Node returns the snapshot node with the given name.
func (g *Graph) Node(name string) (GraphNode, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return GraphNode{}, false
}

// OutEdges returns the edges whose client side is the named component.
func (g *Graph) OutEdges(name string) []GraphEdge {
	var out []GraphEdge
	for _, e := range g.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges whose server side is the named component.
func (g *Graph) InEdges(name string) []GraphEdge {
	var out []GraphEdge
	for _, e := range g.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks the snapshot's structural invariants: every edge endpoint
// exists, every edge's receptacle exists on its client node with the edge's
// interface, every bound receptacle has exactly one edge, and the server
// node provides the edge's interface. This is the "analyse software on a
// node as a single composite ... for consistency or integrity" capability
// claimed in §4 of the paper.
func (g *Graph) Validate() error {
	nodes := make(map[string]GraphNode, len(g.Nodes))
	for _, n := range g.Nodes {
		if _, dup := nodes[n.Name]; dup {
			return fmt.Errorf("duplicate node %q: %w", n.Name, ErrInvariant)
		}
		nodes[n.Name] = n
	}
	edgesByRecp := make(map[string]int)
	for _, e := range g.Edges {
		from, ok := nodes[e.From]
		if !ok {
			return fmt.Errorf("edge #%d: client %q missing: %w", e.ID, e.From, ErrInvariant)
		}
		to, ok := nodes[e.To]
		if !ok {
			return fmt.Errorf("edge #%d: server %q missing: %w", e.ID, e.To, ErrInvariant)
		}
		var recp *GraphReceptacle
		for i := range from.Receptacles {
			if from.Receptacles[i].Name == e.Receptacle {
				recp = &from.Receptacles[i]
				break
			}
		}
		if recp == nil {
			return fmt.Errorf("edge #%d: receptacle %s.%q missing: %w",
				e.ID, e.From, e.Receptacle, ErrInvariant)
		}
		if recp.Iface != e.Iface {
			return fmt.Errorf("edge #%d: receptacle %s.%q requires %q but edge carries %q: %w",
				e.ID, e.From, e.Receptacle, recp.Iface, e.Iface, ErrInvariant)
		}
		if !recp.Bound {
			return fmt.Errorf("edge #%d: receptacle %s.%q not bound: %w",
				e.ID, e.From, e.Receptacle, ErrInvariant)
		}
		provided := false
		for _, id := range to.Provided {
			if id == e.Iface {
				provided = true
				break
			}
		}
		if !provided {
			return fmt.Errorf("edge #%d: server %q does not provide %q: %w",
				e.ID, e.To, e.Iface, ErrInvariant)
		}
		edgesByRecp[e.From+"\x00"+e.Receptacle]++
	}
	for key, n := range edgesByRecp {
		if n > 1 {
			return fmt.Errorf("receptacle %q has %d edges: %w", key, n, ErrInvariant)
		}
	}
	return nil
}
