package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// GenReceptacle is the type-erased view of a receptacle used by the capsule
// and the meta-models. Concrete receptacles are the generic Receptacle[T],
// which adds a statically-typed zero-overhead read path for the component's
// own use.
type GenReceptacle interface {
	// Iface returns the InterfaceID this receptacle requires.
	Iface() InterfaceID
	// Bound reports whether a target is currently connected.
	Bound() bool
	// bindAny connects the receptacle to target, which must implement the
	// required interface. Called only by the capsule, under its lock.
	bindAny(target any) error
	// unbindAny disconnects the receptacle. Called only by the capsule.
	unbindAny()
	// targetAny returns the currently connected value (possibly a proxy),
	// or nil.
	targetAny() any
	// reroute atomically replaces the connected value without changing
	// bind state; used by the interception meta-model to splice proxies in
	// and out of the data path. v must implement the required interface.
	reroute(v any) error
}

// Receptacle is a single-valued typed receptacle: a named "required
// interface" slot of a component. The component reads it on its data path
// via Get, which is a single atomic pointer load — this is the fused fast
// path corresponding to the paper's vtable-bypass optimisation. The capsule
// writes it (bind/unbind/reroute) rarely.
//
// The zero value is not usable; create receptacles with NewReceptacle.
type Receptacle[T any] struct {
	iface InterfaceID
	cur   atomic.Pointer[T]
	mu    sync.Mutex // serialises writers (capsule side)
	bound bool
}

// NewReceptacle returns a receptacle requiring the interface identified by
// iface, whose Go-side contract is T.
func NewReceptacle[T any](iface InterfaceID) *Receptacle[T] {
	return &Receptacle[T]{iface: iface}
}

// Iface returns the required InterfaceID.
func (r *Receptacle[T]) Iface() InterfaceID { return r.iface }

// Get returns the bound target and whether the receptacle is connected.
// It is safe for concurrent use with bind/unbind and costs one atomic load.
func (r *Receptacle[T]) Get() (T, bool) {
	if p := r.cur.Load(); p != nil {
		return *p, true
	}
	var zero T
	return zero, false
}

// MustGet returns the bound target, panicking if unbound. Intended for
// data paths whose CF admission rules guarantee connectivity.
func (r *Receptacle[T]) MustGet() T {
	p := r.cur.Load()
	if p == nil {
		panic(fmt.Sprintf("core: receptacle for %q used while unbound", r.iface))
	}
	return *p
}

// Bound reports whether the receptacle is connected.
func (r *Receptacle[T]) Bound() bool { return r.cur.Load() != nil }

func (r *Receptacle[T]) bindAny(target any) error {
	t, ok := target.(T)
	if !ok {
		return fmt.Errorf("core: bind %q: %w", r.iface, ErrTypeMismatch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bound {
		return fmt.Errorf("core: bind %q: %w", r.iface, ErrAlreadyBound)
	}
	r.bound = true
	r.cur.Store(&t)
	return nil
}

func (r *Receptacle[T]) unbindAny() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bound = false
	r.cur.Store(nil)
}

func (r *Receptacle[T]) targetAny() any {
	if p := r.cur.Load(); p != nil {
		return *p
	}
	return nil
}

func (r *Receptacle[T]) reroute(v any) error {
	t, ok := v.(T)
	if !ok {
		return fmt.Errorf("core: reroute %q: %w", r.iface, ErrTypeMismatch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound {
		return fmt.Errorf("core: reroute %q: %w", r.iface, ErrNotBound)
	}
	r.cur.Store(&t)
	return nil
}

// MultiReceptacle is a fan-out receptacle: an ordered set of targets all
// implementing T. The paper's Router CF uses these for components (such as
// classifiers) with a dynamic number of outgoing IPacketPush/IPacketPull
// connections. Each slot is named; slots can be added and removed at run
// time subject to the owning CF's rules.
//
// MultiReceptacle is not itself a GenReceptacle: the capsule addresses its
// individual slots, which are ordinary Receptacle[T] values, registered on
// the component under "name[slot]" composite names.
type MultiReceptacle[T any] struct {
	iface InterfaceID
	mu    sync.RWMutex
	order []string
	slots map[string]*Receptacle[T]
}

// NewMultiReceptacle returns an empty fan-out receptacle for iface.
func NewMultiReceptacle[T any](iface InterfaceID) *MultiReceptacle[T] {
	return &MultiReceptacle[T]{
		iface: iface,
		slots: make(map[string]*Receptacle[T]),
	}
}

// Iface returns the required InterfaceID shared by all slots.
func (m *MultiReceptacle[T]) Iface() InterfaceID { return m.iface }

// AddSlot creates a new named slot and returns it. It fails if the name is
// already present.
func (m *MultiReceptacle[T]) AddSlot(name string) (*Receptacle[T], error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.slots[name]; ok {
		return nil, fmt.Errorf("core: slot %q: %w", name, ErrAlreadyExists)
	}
	r := NewReceptacle[T](m.iface)
	m.slots[name] = r
	m.order = append(m.order, name)
	return r, nil
}

// RemoveSlot deletes a named slot. The slot must be unbound.
func (m *MultiReceptacle[T]) RemoveSlot(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.slots[name]
	if !ok {
		return fmt.Errorf("core: slot %q: %w", name, ErrNotFound)
	}
	if r.Bound() {
		return fmt.Errorf("core: slot %q still bound: %w", name, ErrAlreadyBound)
	}
	delete(m.slots, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Slot returns the named slot.
func (m *MultiReceptacle[T]) Slot(name string) (*Receptacle[T], bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.slots[name]
	return r, ok
}

// Slots returns the slot names in creation order.
func (m *MultiReceptacle[T]) Slots() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Each calls fn for every bound slot in creation order, stopping early if
// fn returns false.
func (m *MultiReceptacle[T]) Each(fn func(name string, t T) bool) {
	m.mu.RLock()
	names := make([]string, len(m.order))
	copy(names, m.order)
	slots := make([]*Receptacle[T], 0, len(names))
	for _, n := range names {
		slots = append(slots, m.slots[n])
	}
	m.mu.RUnlock()
	for i, r := range slots {
		if t, ok := r.Get(); ok {
			if !fn(names[i], t) {
				return
			}
		}
	}
}

// Len returns the number of slots (bound or not).
func (m *MultiReceptacle[T]) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.slots)
}
