package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// BindRequest describes a requested bind, passed to bind-time constraints.
type BindRequest struct {
	From       string // client component instance name
	Receptacle string
	To         string // server component instance name
	Iface      InterfaceID
}

// BindConstraint is a named interceptor on the capsule's bind primitive.
// The paper uses exactly this mechanism to implement dynamically
// added/removed architectural constraints (policed, in the Router CF, by
// the composite's controller ACL). Returning a non-nil error vetoes the
// bind; the capsule wraps the error with ErrVetoed.
type BindConstraint struct {
	Name  string
	Check func(cap *Capsule, req BindRequest) error
}

// compState tracks the lifecycle state of an instance.
type compState int

const (
	stateCreated compState = iota + 1
	stateStarted
)

// Capsule is the per-address-space component runtime: the paper's unit in
// which components are instantiated and bound, and on which the
// architecture meta-model is scoped. A process may host several capsules
// (composite components instantiate nested capsules; the IPC layer hosts a
// capsule per remote address space).
type Capsule struct {
	name     string
	compReg  *ComponentRegistry
	ifaceReg *InterfaceRegistry

	mu          sync.RWMutex
	closed      bool
	comps       map[string]Component
	states      map[string]compState
	bindings    map[BindingID]*Binding
	byComponent map[string]map[BindingID]*Binding // both endpoints
	constraints []BindConstraint
	nextBinding BindingID

	events *eventHub

	// Synchronous structural-mutation watchers (WatchStructure). The
	// active set is published through an atomic pointer so notify() on
	// the mutation path is a lock-free load; watchMu serialises only
	// registration and cancellation.
	watchMu   sync.Mutex
	nextWatch int
	watchList []structWatcher
	watchers  atomic.Pointer[[]structWatcher]
}

// CapsuleOption configures a capsule at construction.
type CapsuleOption func(*Capsule)

// WithComponentRegistry uses a private component registry instead of the
// process-wide Components.
func WithComponentRegistry(r *ComponentRegistry) CapsuleOption {
	return func(c *Capsule) { c.compReg = r }
}

// WithInterfaceRegistry uses a private interface registry instead of the
// process-wide Interfaces.
func WithInterfaceRegistry(r *InterfaceRegistry) CapsuleOption {
	return func(c *Capsule) { c.ifaceReg = r }
}

// NewCapsule returns an empty capsule.
func NewCapsule(name string, opts ...CapsuleOption) *Capsule {
	c := &Capsule{
		name:        name,
		compReg:     Components,
		ifaceReg:    Interfaces,
		comps:       make(map[string]Component),
		states:      make(map[string]compState),
		bindings:    make(map[BindingID]*Binding),
		byComponent: make(map[string]map[BindingID]*Binding),
		events:      newEventHub(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the capsule's name.
func (c *Capsule) Name() string { return c.name }

// InterfaceRegistry returns the interface meta-model in force.
func (c *Capsule) InterfaceRegistry() *InterfaceRegistry { return c.ifaceReg }

// ComponentRegistry returns the loader registry in force.
func (c *Capsule) ComponentRegistry() *ComponentRegistry { return c.compReg }

// Instantiate constructs a component of typeName via the loader registry
// and inserts it under the instance name.
func (c *Capsule) Instantiate(name, typeName string, cfg map[string]string) (Component, error) {
	comp, err := c.compReg.New(typeName, cfg)
	if err != nil {
		return nil, err
	}
	if err := c.Insert(name, comp); err != nil {
		return nil, err
	}
	return comp, nil
}

// Insert adds a pre-constructed component under the instance name.
func (c *Capsule) Insert(name string, comp Component) error {
	if name == "" || comp == nil {
		return fmt.Errorf("core: insert: empty name or nil component")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCapsuleClosed
	}
	if _, ok := c.comps[name]; ok {
		return fmt.Errorf("core: component %q: %w", name, ErrAlreadyExists)
	}
	c.comps[name] = comp
	c.states[name] = stateCreated
	c.byComponent[name] = make(map[BindingID]*Binding)
	c.notify(Event{Kind: EventInsert, Component: name, Type: comp.TypeName()})
	return nil
}

// Remove destroys a component instance. The instance must be stopped and
// have no bindings at either endpoint.
func (c *Capsule) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCapsuleClosed
	}
	comp, ok := c.comps[name]
	if !ok {
		return fmt.Errorf("core: component %q: %w", name, ErrNotFound)
	}
	if c.states[name] == stateStarted {
		return fmt.Errorf("core: component %q still started: %w", name, ErrLifecycle)
	}
	if len(c.byComponent[name]) != 0 {
		return fmt.Errorf("core: component %q has %d live bindings: %w",
			name, len(c.byComponent[name]), ErrAlreadyBound)
	}
	delete(c.comps, name)
	delete(c.states, name)
	delete(c.byComponent, name)
	c.notify(Event{Kind: EventRemove, Component: name, Type: comp.TypeName()})
	return nil
}

// Component returns the named instance.
func (c *Capsule) Component(name string) (Component, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	comp, ok := c.comps[name]
	return comp, ok
}

// ComponentNames returns all instance names, sorted.
func (c *Capsule) ComponentNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.comps))
	for n := range c.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddConstraint installs a named interceptor on the bind primitive.
func (c *Capsule) AddConstraint(bc BindConstraint) error {
	if bc.Name == "" || bc.Check == nil {
		return fmt.Errorf("core: add constraint: empty name or nil check")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.constraints {
		if have.Name == bc.Name {
			return fmt.Errorf("core: constraint %q: %w", bc.Name, ErrAlreadyExists)
		}
	}
	c.constraints = append(c.constraints, bc)
	return nil
}

// RemoveConstraint removes a named bind constraint.
func (c *Capsule) RemoveConstraint(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, have := range c.constraints {
		if have.Name == name {
			c.constraints = append(c.constraints[:i], c.constraints[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("core: constraint %q: %w", name, ErrNotFound)
}

// Constraints returns the installed constraint names in evaluation order.
func (c *Capsule) Constraints() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.constraints))
	for i, bc := range c.constraints {
		out[i] = bc.Name
	}
	return out
}

// Bind connects fromComp's named receptacle to toComp's provided interface
// iface and returns the resulting first-class Binding. The bind runs all
// installed constraints first; any veto aborts the bind with ErrVetoed in
// the error chain.
func (c *Capsule) Bind(fromComp, receptacle, toComp string, iface InterfaceID) (*Binding, error) {
	req := BindRequest{From: fromComp, Receptacle: receptacle, To: toComp, Iface: iface}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCapsuleClosed
	}
	from, ok := c.comps[fromComp]
	if !ok {
		return nil, fmt.Errorf("core: bind: client %q: %w", fromComp, ErrNotFound)
	}
	to, ok := c.comps[toComp]
	if !ok {
		return nil, fmt.Errorf("core: bind: server %q: %w", toComp, ErrNotFound)
	}
	recp, ok := from.Receptacle(receptacle)
	if !ok {
		return nil, fmt.Errorf("core: bind: receptacle %s.%q: %w", fromComp, receptacle, ErrNotFound)
	}
	if recp.Iface() != iface {
		return nil, fmt.Errorf("core: bind: receptacle %s.%q requires %q, not %q: %w",
			fromComp, receptacle, recp.Iface(), iface, ErrTypeMismatch)
	}
	target, ok := to.Provided(iface)
	if !ok {
		return nil, fmt.Errorf("core: bind: %q does not provide %q: %w", toComp, iface, ErrNotFound)
	}
	for _, bc := range c.constraints {
		if err := bc.Check(c, req); err != nil {
			return nil, fmt.Errorf("core: bind %s.%s -> %s: constraint %q: %v: %w",
				fromComp, receptacle, toComp, bc.Name, err, ErrVetoed)
		}
	}
	if err := recp.bindAny(target); err != nil {
		return nil, err
	}
	c.nextBinding++
	b := &Binding{
		id:        c.nextBinding,
		capsule:   c,
		from:      fromComp,
		recpName:  receptacle,
		to:        toComp,
		iface:     iface,
		recp:      recp,
		rawTarget: target,
	}
	c.bindings[b.id] = b
	c.byComponent[fromComp][b.id] = b
	c.byComponent[toComp][b.id] = b
	c.notify(Event{Kind: EventBind, Component: fromComp, Peer: toComp,
		Receptacle: receptacle, Iface: iface, Binding: b.id})
	return b, nil
}

// Rebind atomically retargets an existing binding to a different server
// component providing the same interface. The receptacle's reference is
// swapped in one atomic store, so a concurrent data path sees either the
// old or the new target and never an unbound receptacle — the primitive
// that makes lossless hot-swap (experiment E4) possible. Constraints are
// consulted as for Bind; the binding's interceptor chain is preserved.
func (c *Capsule) Rebind(id BindingID, newTo string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCapsuleClosed
	}
	b, ok := c.bindings[id]
	if !ok {
		return fmt.Errorf("core: rebind #%d: %w", id, ErrNotFound)
	}
	to, ok := c.comps[newTo]
	if !ok {
		return fmt.Errorf("core: rebind #%d: server %q: %w", id, newTo, ErrNotFound)
	}
	target, ok := to.Provided(b.iface)
	if !ok {
		return fmt.Errorf("core: rebind #%d: %q does not provide %q: %w",
			id, newTo, b.iface, ErrNotFound)
	}
	req := BindRequest{From: b.from, Receptacle: b.recpName, To: newTo, Iface: b.iface}
	for _, bc := range c.constraints {
		if err := bc.Check(c, req); err != nil {
			return fmt.Errorf("core: rebind #%d to %s: constraint %q: %v: %w",
				id, newTo, bc.Name, err, ErrVetoed)
		}
	}
	b.mu.Lock()
	oldTo := b.to
	b.rawTarget = target
	err := b.install(b.chain)
	if err == nil {
		b.to = newTo
	}
	b.mu.Unlock()
	if err != nil {
		return err
	}
	delete(c.byComponent[oldTo], id)
	c.byComponent[newTo][id] = b
	c.notify(Event{Kind: EventRebind, Component: b.from, Peer: newTo,
		Receptacle: b.recpName, Iface: b.iface, Binding: id})
	return nil
}

// Unbind tears down a binding by ID, disconnecting the receptacle.
func (c *Capsule) Unbind(id BindingID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrCapsuleClosed
	}
	b, ok := c.bindings[id]
	if !ok {
		return fmt.Errorf("core: binding #%d: %w", id, ErrNotFound)
	}
	b.recp.unbindAny()
	delete(c.bindings, id)
	delete(c.byComponent[b.from], id)
	delete(c.byComponent[b.to], id)
	c.notify(Event{Kind: EventUnbind, Component: b.from, Peer: b.to,
		Receptacle: b.recpName, Iface: b.iface, Binding: id})
	return nil
}

// AddInterceptorAll installs ic on every listed binding, all-or-nothing:
// the bindings are resolved up front (a missing ID fails the whole call
// before any chain is touched) and a failed install rolls the interceptor
// back off the bindings it already reached. It is the primitive behind
// sharded interception — a data plane replicated over N parallel pipelines
// installs one audit/gate on all N replica bindings and can never be left
// observing some replicas but not others. Each individual chain swap is
// atomic with respect to traffic on its binding; crossings on different
// bindings while the loop runs see the interceptor appear in ID order.
func (c *Capsule) AddInterceptorAll(ids []BindingID, ic Interceptor) error {
	c.mu.RLock()
	bs := make([]*Binding, 0, len(ids))
	for _, id := range ids {
		b, ok := c.bindings[id]
		if !ok {
			c.mu.RUnlock()
			return fmt.Errorf("core: binding #%d: %w", id, ErrNotFound)
		}
		bs = append(bs, b)
	}
	c.mu.RUnlock()
	for i, b := range bs {
		if err := b.AddInterceptor(ic); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = bs[j].RemoveInterceptor(ic.Name)
			}
			return fmt.Errorf("core: intercept-all at #%d: %w", b.ID(), err)
		}
	}
	return nil
}

// RemoveInterceptorAll removes the named interceptor from every listed
// binding. All removals are attempted; the first error is returned.
func (c *Capsule) RemoveInterceptorAll(ids []BindingID, name string) error {
	c.mu.RLock()
	bs := make([]*Binding, 0, len(ids))
	for _, id := range ids {
		b, ok := c.bindings[id]
		if !ok {
			c.mu.RUnlock()
			return fmt.Errorf("core: binding #%d: %w", id, ErrNotFound)
		}
		bs = append(bs, b)
	}
	c.mu.RUnlock()
	var firstErr error
	for _, b := range bs {
		if err := b.RemoveInterceptor(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Binding returns the binding with the given ID.
func (c *Capsule) Binding(id BindingID) (*Binding, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.bindings[id]
	return b, ok
}

// BindingsOf returns all bindings in which the named component participates
// (as either endpoint), ordered by ID.
func (c *Capsule) BindingsOf(name string) []*Binding {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.byComponent[name]
	out := make([]*Binding, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Bindings returns all bindings ordered by ID.
func (c *Capsule) Bindings() []*Binding {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Binding, 0, len(c.bindings))
	for _, b := range c.bindings {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// StartComponent transitions the named instance to started, invoking its
// Starter hook if present.
func (c *Capsule) StartComponent(ctx context.Context, name string) error {
	c.mu.Lock()
	comp, ok := c.comps[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("core: start %q: %w", name, ErrNotFound)
	}
	if c.states[name] == stateStarted {
		c.mu.Unlock()
		return nil
	}
	c.states[name] = stateStarted
	c.mu.Unlock()

	if s, ok := comp.(Starter); ok {
		if err := s.Start(ctx); err != nil {
			c.mu.Lock()
			c.states[name] = stateCreated
			c.mu.Unlock()
			return fmt.Errorf("core: start %q: %v: %w", name, err, ErrLifecycle)
		}
	}
	c.notify(Event{Kind: EventStart, Component: name})
	return nil
}

// StopComponent transitions the named instance to stopped, invoking its
// Stopper hook if present.
func (c *Capsule) StopComponent(ctx context.Context, name string) error {
	c.mu.Lock()
	comp, ok := c.comps[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("core: stop %q: %w", name, ErrNotFound)
	}
	if c.states[name] != stateStarted {
		c.mu.Unlock()
		return nil
	}
	c.states[name] = stateCreated
	c.mu.Unlock()

	if s, ok := comp.(Stopper); ok {
		if err := s.Stop(ctx); err != nil {
			return fmt.Errorf("core: stop %q: %v: %w", name, err, ErrLifecycle)
		}
	}
	c.notify(Event{Kind: EventStop, Component: name})
	return nil
}

// Started reports whether the named instance is in the started state.
func (c *Capsule) Started(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.states[name] == stateStarted
}

// StartAll starts every component, in sorted name order for determinism.
// On failure it stops the components it started and returns the error.
func (c *Capsule) StartAll(ctx context.Context) error {
	names := c.ComponentNames()
	for i, n := range names {
		if err := c.StartComponent(ctx, n); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = c.StopComponent(ctx, names[j])
			}
			return err
		}
	}
	return nil
}

// StopAll stops every component in reverse sorted order, returning the
// first error encountered but attempting every stop.
func (c *Capsule) StopAll(ctx context.Context) error {
	names := c.ComponentNames()
	var firstErr error
	for i := len(names) - 1; i >= 0; i-- {
		if err := c.StopComponent(ctx, names[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops all components, tears down all bindings and marks the capsule
// unusable.
func (c *Capsule) Close(ctx context.Context) error {
	err := c.StopAll(ctx)
	c.mu.Lock()
	for id, b := range c.bindings {
		b.recp.unbindAny()
		delete(c.bindings, id)
	}
	c.closed = true
	c.mu.Unlock()
	c.events.close()
	return err
}
