package core

import "testing"

// TestDroppedEventsPublic: event loss is observable per subscriber via
// Subscription.Dropped and capsule-wide via the public DroppedEvents,
// and the capsule-wide count survives subscriber cancellation.
func TestDroppedEventsPublic(t *testing.T) {
	c := NewCapsule("drops")
	if c.DroppedEvents() != 0 {
		t.Fatalf("fresh capsule reports %d dropped events", c.DroppedEvents())
	}

	sub := c.SubscribeEvents(1)
	mutate := func(n int, prefix string) {
		for i := 0; i < n; i++ {
			if err := c.Insert(prefix+string(rune('a'+i)), NewBase("test.Comp")); err != nil {
				t.Fatal(err)
			}
		}
	}
	mutate(5, "x")
	if sub.Dropped() != 4 {
		t.Fatalf("subscriber dropped %d events, want 4 (buffer 1, 5 events)", sub.Dropped())
	}
	if c.DroppedEvents() != 4 {
		t.Fatalf("capsule dropped %d events, want 4", c.DroppedEvents())
	}

	// A second lagging subscriber adds its own losses to the total.
	sub2 := c.SubscribeEvents(1)
	mutate(3, "y")
	sub.Cancel()
	sub2.Cancel()
	// sub (buffer still full) missed all 3 new events; sub2's buffer of 1
	// took the first and missed 2.
	if got := c.DroppedEvents(); got != 4+3+2 {
		t.Fatalf("capsule dropped %d events after cancel, want 9", got)
	}

	// A draining subscriber loses nothing.
	sub3 := c.SubscribeEvents(16)
	mutate(3, "z")
	if sub3.Dropped() != 0 {
		t.Fatalf("draining subscriber dropped %d events", sub3.Dropped())
	}
	sub3.Cancel()
	for range sub3.Events() {
		// drain what was buffered; the channel must be closed behind it
	}
	sub3.Cancel() // double-cancel must be safe
}
