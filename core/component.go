package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Component is the runtime contract every NETKIT component satisfies. Most
// implementations embed *Base, which provides the bookkeeping; the methods
// exist so the capsule and the meta-models can treat components uniformly
// and language-independently (by name and InterfaceID, never by Go type).
type Component interface {
	// TypeName returns the component's registered type, e.g.
	// "netkit.router.Classifier".
	TypeName() string
	// ProvidedIDs returns the IDs of all interfaces the component exports,
	// sorted.
	ProvidedIDs() []InterfaceID
	// Provided returns the implementation of one exported interface.
	Provided(id InterfaceID) (any, bool)
	// ReceptacleNames returns the names of all receptacles, sorted.
	ReceptacleNames() []string
	// Receptacle returns the named receptacle.
	Receptacle(name string) (GenReceptacle, bool)
	// Annotations returns the component's free-form metadata (placement
	// hints, trust level, task binding). The returned map is a copy.
	Annotations() map[string]string
	// SetAnnotation sets one metadata key.
	SetAnnotation(key, value string)
}

// Starter is implemented by components with active behaviour (pumps,
// timers). The capsule calls Start when the component is started and
// requires it to return promptly, launching any long-running work on
// goroutines owned by the component.
type Starter interface {
	Start(ctx context.Context) error
}

// Stopper is the counterpart of Starter. Stop must terminate all goroutines
// the component owns before returning (no fire-and-forget work survives a
// stopped component).
type Stopper interface {
	Stop(ctx context.Context) error
}

// Base is the canonical Component implementation, embedded by concrete
// components. It is safe for concurrent use. A Base records the provided
// interfaces, the receptacles, and annotations; it deliberately knows
// nothing about the capsule that hosts it.
type Base struct {
	typeName string

	mu     sync.RWMutex
	ifaces map[InterfaceID]any
	recps  map[string]GenReceptacle
	annot  map[string]string
}

var _ Component = (*Base)(nil)

// NewBase returns a Base for a component of the given registered type name.
func NewBase(typeName string) *Base {
	return &Base{
		typeName: typeName,
		ifaces:   make(map[InterfaceID]any),
		recps:    make(map[string]GenReceptacle),
		annot:    make(map[string]string),
	}
}

// TypeName implements Component.
func (b *Base) TypeName() string { return b.typeName }

// Provide exports impl under the interface id. It panics if impl does not
// conform to a registered descriptor for id — providing a non-conforming
// interface is a programming error caught at construction time. Interfaces
// without a registered descriptor are accepted (they are simply opaque to
// the interface meta-model).
func (b *Base) Provide(id InterfaceID, impl any) {
	if d, ok := Interfaces.Lookup(id); ok && !d.Check(impl) {
		panic(fmt.Sprintf("core: component %q provides %q with non-conforming value %T",
			b.typeName, id, impl))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ifaces[id] = impl
}

// Retract removes a provided interface, e.g. during reconfiguration. The
// capsule re-checks CF rules after retractions.
func (b *Base) Retract(id InterfaceID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.ifaces, id)
}

// ProvidedIDs implements Component.
func (b *Base) ProvidedIDs() []InterfaceID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ids := make([]InterfaceID, 0, len(b.ifaces))
	for id := range b.ifaces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Provided implements Component.
func (b *Base) Provided(id InterfaceID) (any, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.ifaces[id]
	return v, ok
}

// AddReceptacle registers a named receptacle. Adding a receptacle whose
// name is taken panics: receptacle identity is part of the component's
// architecture-level shape and collisions are programming errors.
func (b *Base) AddReceptacle(name string, r GenReceptacle) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.recps[name]; ok {
		panic(fmt.Sprintf("core: component %q: duplicate receptacle %q", b.typeName, name))
	}
	b.recps[name] = r
}

// RemoveReceptacle deregisters a receptacle; it must be unbound.
func (b *Base) RemoveReceptacle(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.recps[name]
	if !ok {
		return fmt.Errorf("core: receptacle %q: %w", name, ErrNotFound)
	}
	if r.Bound() {
		return fmt.Errorf("core: receptacle %q: %w", name, ErrAlreadyBound)
	}
	delete(b.recps, name)
	return nil
}

// ReceptacleNames implements Component.
func (b *Base) ReceptacleNames() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.recps))
	for n := range b.recps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Receptacle implements Component.
func (b *Base) Receptacle(name string) (GenReceptacle, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.recps[name]
	return r, ok
}

// Annotations implements Component.
func (b *Base) Annotations() map[string]string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]string, len(b.annot))
	for k, v := range b.annot {
		out[k] = v
	}
	return out
}

// SetAnnotation implements Component.
func (b *Base) SetAnnotation(key, value string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.annot[key] = value
}

// Annotation returns a single metadata value.
func (b *Base) Annotation(key string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.annot[key]
	return v, ok
}

// Well-known annotation keys shared across CFs.
const (
	// AnnotTrust marks a component "trusted" or "untrusted"; untrusted
	// components are candidates for out-of-process placement (§5).
	AnnotTrust = "netkit.trust"
	// AnnotTask names the resources meta-model task that accounts for the
	// component's work.
	AnnotTask = "netkit.task"
	// AnnotPlacement carries a placement hint for the placement meta-model
	// ("control", "engine", "auto").
	AnnotPlacement = "netkit.placement"
)

// Factory constructs a component instance from a configuration map. The
// config values are strings so that factories are drivable from text
// configuration and the control protocol.
type Factory func(cfg map[string]string) (Component, error)

// ComponentRegistry maps component type names to factories: the loader part
// of the runtime ("dynamic remote instantiation" requires that type names
// resolve to constructable components on every node).
type ComponentRegistry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewComponentRegistry returns an empty registry.
func NewComponentRegistry() *ComponentRegistry {
	return &ComponentRegistry{factories: make(map[string]Factory)}
}

// Register adds a factory for typeName.
func (r *ComponentRegistry) Register(typeName string, f Factory) error {
	if typeName == "" || f == nil {
		return fmt.Errorf("core: register component: empty type or nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[typeName]; ok {
		return fmt.Errorf("core: component type %q: %w", typeName, ErrAlreadyExists)
	}
	r.factories[typeName] = f
	return nil
}

// MustRegister registers and panics on error (package-init use).
func (r *ComponentRegistry) MustRegister(typeName string, f Factory) {
	if err := r.Register(typeName, f); err != nil {
		panic(err)
	}
}

// New constructs an instance of typeName.
func (r *ComponentRegistry) New(typeName string, cfg map[string]string) (Component, error) {
	r.mu.RLock()
	f, ok := r.factories[typeName]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: component type %q: %w", typeName, ErrNotFound)
	}
	c, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: constructing %q: %w", typeName, err)
	}
	return c, nil
}

// Types returns the registered type names, sorted.
func (r *ComponentRegistry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for t := range r.factories {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Components is the process-wide component loader registry, populated by
// component packages at initialisation.
var Components = NewComponentRegistry()
