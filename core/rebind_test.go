package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRebindRetargets(t *testing.T) {
	c := newTestCapsule(t)
	src, snk1, b := wire(t, c)
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(b.ID(), "snk2"); err != nil {
		t.Fatal(err)
	}
	src.out.MustGet().Consume(5)
	if snk1.total != 0 || snk2.total != 5 {
		t.Fatalf("totals = %d/%d, want 0/5", snk1.total, snk2.total)
	}
	to, _ := b.To()
	if to != "snk2" {
		t.Fatalf("binding records %q", to)
	}
	// Bookkeeping moved: the old server has no bindings, the new one does.
	if n := len(c.BindingsOf("snk")); n != 0 {
		t.Fatalf("old server still has %d bindings", n)
	}
	if n := len(c.BindingsOf("snk2")); n != 1 {
		t.Fatalf("new server has %d bindings", n)
	}
	if err := c.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebindErrors(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	if err := c.Rebind(999, "snk"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown binding: %v", err)
	}
	if err := c.Rebind(b.ID(), "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown server: %v", err)
	}
	bare := NewBase("test.Bare")
	if err := c.Insert("bare", bare); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(b.ID(), "bare"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("server without iface: %v", err)
	}
}

func TestRebindConstraintVeto(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(BindConstraint{
		Name: "pin-snk",
		Check: func(_ *Capsule, req BindRequest) error {
			if req.To != "snk" {
				return fmt.Errorf("must stay on snk")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(b.ID(), "snk2"); !errors.Is(err, ErrVetoed) {
		t.Fatalf("want ErrVetoed, got %v", err)
	}
	// The original wiring is intact after the veto.
	to, _ := b.To()
	if to != "snk" {
		t.Fatalf("binding moved despite veto: %q", to)
	}
}

func TestRebindPreservesInterceptors(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)
	var count int
	if err := b.AddInterceptor(Interceptor{
		Name: "count",
		Wrap: PrePost(func(string, []any) { count++ }, nil),
	}); err != nil {
		t.Fatal(err)
	}
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(b.ID(), "snk2"); err != nil {
		t.Fatal(err)
	}
	src.out.MustGet().Consume(1)
	if count != 1 {
		t.Fatalf("interceptor lost across rebind: count=%d", count)
	}
	if snk2.total != 1 {
		t.Fatalf("new target not reached: %d", snk2.total)
	}
}

func TestRebindEmitsEvent(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	ch, cancel := c.Subscribe(8)
	defer cancel()
	if err := c.Rebind(b.ID(), "snk2"); err != nil {
		t.Fatal(err)
	}
	e := <-ch
	if e.Kind != EventRebind || e.Peer != "snk2" || e.Binding != b.ID() {
		t.Fatalf("event = %+v", e)
	}
}

func TestRebindLosslessUnderConcurrentCalls(t *testing.T) {
	c := newTestCapsule(t)
	src, snk1, b := wire(t, c)
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	const calls = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < calls; i++ {
			src.out.MustGet().Consume(1)
		}
	}()
	// Ping-pong the binding while traffic flows.
	for i := 0; i < 50; i++ {
		target := "snk2"
		if i%2 == 1 {
			target = "snk"
		}
		if err := c.Rebind(b.ID(), target); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := snk1.total + snk2.total; got != calls {
		t.Fatalf("lost calls across rebinds: %d of %d", got, calls)
	}
}
