package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// ---- test fixtures -------------------------------------------------------

// ISink is a tiny test interface with a registered descriptor so that
// interception and conformance paths can be exercised without depending on
// higher-level packages.
type ISink interface {
	Consume(n int) int
}

const ifSink InterfaceID = "test.ISink/1"

type sinkProxy struct {
	target ISink
	around Around
}

func (p *sinkProxy) Consume(n int) int {
	out := p.around("Consume", []any{n}, func(args []any) []any {
		return []any{p.target.Consume(args[0].(int))}
	})
	return out[0].(int)
}

type sinkImpl struct {
	*Base
	mu    sync.Mutex
	total int
}

func (s *sinkImpl) Consume(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total += n
	return s.total
}

type sourceImpl struct {
	*Base
	out *Receptacle[ISink]
}

type lifecycleComp struct {
	*Base
	started  bool
	stopped  bool
	startErr error
}

func (l *lifecycleComp) Start(context.Context) error {
	if l.startErr != nil {
		return l.startErr
	}
	l.started = true
	return nil
}

func (l *lifecycleComp) Stop(context.Context) error {
	l.stopped = true
	return nil
}

func newTestRegistry(t *testing.T) *InterfaceRegistry {
	t.Helper()
	reg := NewInterfaceRegistry()
	reg.MustRegister(&Descriptor{
		ID:  ifSink,
		Doc: "test sink",
		Ops: []OpDesc{{Name: "Consume", NumIn: 1, NumOut: 1}},
		Check: func(v any) bool {
			_, ok := v.(ISink)
			return ok
		},
		Proxy: func(target any, around Around) any {
			return &sinkProxy{target: target.(ISink), around: around}
		},
	})
	return reg
}

func newSink() *sinkImpl {
	s := &sinkImpl{Base: NewBase("test.Sink")}
	s.Provide(ifSink, s)
	return s
}

func newSource() *sourceImpl {
	c := &sourceImpl{Base: NewBase("test.Source")}
	c.out = NewReceptacle[ISink](ifSink)
	c.AddReceptacle("out", c.out)
	return c
}

func newTestCapsule(t *testing.T) *Capsule {
	t.Helper()
	return NewCapsule("test", WithInterfaceRegistry(newTestRegistry(t)),
		WithComponentRegistry(NewComponentRegistry()))
}

// wire inserts a source and sink and binds them, failing the test on error.
func wire(t *testing.T, c *Capsule) (*sourceImpl, *sinkImpl, *Binding) {
	t.Helper()
	src, snk := newSource(), newSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatalf("insert src: %v", err)
	}
	if err := c.Insert("snk", snk); err != nil {
		t.Fatalf("insert snk: %v", err)
	}
	b, err := c.Bind("src", "out", "snk", ifSink)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return src, snk, b
}

// ---- basic capsule behaviour ----------------------------------------------

func TestInsertAndLookup(t *testing.T) {
	c := newTestCapsule(t)
	s := newSink()
	if err := c.Insert("a", s); err != nil {
		t.Fatalf("insert: %v", err)
	}
	got, ok := c.Component("a")
	if !ok || got != Component(s) {
		t.Fatalf("lookup returned %v, %v", got, ok)
	}
	if names := c.ComponentNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestInsertDuplicateName(t *testing.T) {
	c := newTestCapsule(t)
	if err := c.Insert("a", newSink()); err != nil {
		t.Fatalf("insert: %v", err)
	}
	err := c.Insert("a", newSink())
	if !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
}

func TestInsertEmptyName(t *testing.T) {
	c := newTestCapsule(t)
	if err := c.Insert("", newSink()); err == nil {
		t.Fatal("want error for empty name")
	}
	if err := c.Insert("x", nil); err == nil {
		t.Fatal("want error for nil component")
	}
}

func TestRemoveComponent(t *testing.T) {
	c := newTestCapsule(t)
	if err := c.Insert("a", newSink()); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := c.Remove("a"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, ok := c.Component("a"); ok {
		t.Fatal("component still present after remove")
	}
	if err := c.Remove("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestRemoveBoundComponentRefused(t *testing.T) {
	c := newTestCapsule(t)
	wire(t, c)
	if err := c.Remove("snk"); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("want ErrAlreadyBound, got %v", err)
	}
	if err := c.Remove("src"); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("want ErrAlreadyBound, got %v", err)
	}
}

func TestBindAndInvoke(t *testing.T) {
	c := newTestCapsule(t)
	src, _, _ := wire(t, c)
	out, ok := src.out.Get()
	if !ok {
		t.Fatal("receptacle unbound after bind")
	}
	if got := out.Consume(5); got != 5 {
		t.Fatalf("Consume = %d, want 5", got)
	}
	if got := out.Consume(3); got != 8 {
		t.Fatalf("Consume = %d, want 8", got)
	}
}

func TestBindErrors(t *testing.T) {
	c := newTestCapsule(t)
	src, snk := newSource(), newSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("snk", snk); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name           string
		from, recp, to string
		iface          InterfaceID
		want           error
	}{
		{"missing client", "nope", "out", "snk", ifSink, ErrNotFound},
		{"missing server", "src", "out", "nope", ifSink, ErrNotFound},
		{"missing receptacle", "src", "nope", "snk", ifSink, ErrNotFound},
		{"wrong iface", "src", "out", "snk", "test.Other/1", ErrTypeMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Bind(tc.from, tc.recp, tc.to, tc.iface)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestBindServerLacksInterface(t *testing.T) {
	c := newTestCapsule(t)
	src := newSource()
	other := NewBase("test.Bare") // provides nothing
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("bare", other); err != nil {
		t.Fatal(err)
	}
	_, err := c.Bind("src", "out", "bare", ifSink)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDoubleBindRefused(t *testing.T) {
	c := newTestCapsule(t)
	wire(t, c)
	snk2 := newSink()
	if err := c.Insert("snk2", snk2); err != nil {
		t.Fatal(err)
	}
	_, err := c.Bind("src", "out", "snk2", ifSink)
	if !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("want ErrAlreadyBound, got %v", err)
	}
}

func TestUnbind(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)
	if err := c.Unbind(b.ID()); err != nil {
		t.Fatalf("unbind: %v", err)
	}
	if _, ok := src.out.Get(); ok {
		t.Fatal("receptacle still bound after unbind")
	}
	if err := c.Unbind(b.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Rebinding after unbind must work.
	if _, err := c.Bind("src", "out", "snk", ifSink); err != nil {
		t.Fatalf("rebind: %v", err)
	}
}

func TestBindingsOf(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	for _, name := range []string{"src", "snk"} {
		bs := c.BindingsOf(name)
		if len(bs) != 1 || bs[0].ID() != b.ID() {
			t.Fatalf("BindingsOf(%q) = %v", name, bs)
		}
	}
	if bs := c.BindingsOf("ghost"); len(bs) != 0 {
		t.Fatalf("BindingsOf(ghost) = %v", bs)
	}
}

// ---- constraints (bind interceptors) --------------------------------------

func TestConstraintVeto(t *testing.T) {
	c := newTestCapsule(t)
	src, snk := newSource(), newSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("snk", snk); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(BindConstraint{
		Name: "deny-snk",
		Check: func(_ *Capsule, req BindRequest) error {
			if req.To == "snk" {
				return fmt.Errorf("snk is off limits")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Bind("src", "out", "snk", ifSink)
	if !errors.Is(err, ErrVetoed) {
		t.Fatalf("want ErrVetoed, got %v", err)
	}
	if src.out.Bound() {
		t.Fatal("receptacle bound despite veto")
	}
	// After removing the constraint, the bind succeeds.
	if err := c.RemoveConstraint("deny-snk"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Bind("src", "out", "snk", ifSink); err != nil {
		t.Fatalf("bind after constraint removal: %v", err)
	}
}

func TestConstraintManagement(t *testing.T) {
	c := newTestCapsule(t)
	ok := BindConstraint{Name: "c1", Check: func(*Capsule, BindRequest) error { return nil }}
	if err := c.AddConstraint(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(ok); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if got := c.Constraints(); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("constraints = %v", got)
	}
	if err := c.RemoveConstraint("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := c.AddConstraint(BindConstraint{}); err == nil {
		t.Fatal("want error for empty constraint")
	}
}

// ---- interception meta-model ----------------------------------------------

func TestInterceptorWrapsCalls(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)

	var pre, post int
	err := b.AddInterceptor(Interceptor{
		Name: "count",
		Wrap: PrePost(
			func(op string, args []any) {
				if op != "Consume" {
					t.Errorf("op = %q", op)
				}
				pre++
			},
			func(op string, args, results []any) { post++ },
		),
	})
	if err != nil {
		t.Fatalf("add interceptor: %v", err)
	}
	out := src.out.MustGet()
	if got := out.Consume(2); got != 2 {
		t.Fatalf("Consume via proxy = %d", got)
	}
	if pre != 1 || post != 1 {
		t.Fatalf("pre=%d post=%d, want 1/1", pre, post)
	}
	if names := b.Interceptors(); len(names) != 1 || names[0] != "count" {
		t.Fatalf("interceptors = %v", names)
	}
}

func TestInterceptorRemovalRefuses(t *testing.T) {
	c := newTestCapsule(t)
	src, snk, b := wire(t, c)
	if err := b.AddInterceptor(Interceptor{Name: "x", Wrap: PrePost(nil, nil)}); err != nil {
		t.Fatal(err)
	}
	// While installed the receptacle holds a proxy, not the raw target.
	if tgt, _ := src.out.Get(); tgt == ISink(snk) {
		t.Fatal("receptacle still fused while intercepted")
	}
	if err := b.RemoveInterceptor("x"); err != nil {
		t.Fatal(err)
	}
	// After removal the binding re-fuses to the raw target.
	if tgt, _ := src.out.Get(); tgt != ISink(snk) {
		t.Fatal("receptacle not re-fused after interceptor removal")
	}
	if err := b.RemoveInterceptor("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestInterceptorChainOrder(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)
	var order []string
	mk := func(name string) Interceptor {
		return Interceptor{Name: name, Wrap: func(op string, args []any, invoke func([]any) []any) []any {
			order = append(order, name+">")
			r := invoke(args)
			order = append(order, "<"+name)
			return r
		}}
	}
	if err := b.AddInterceptor(mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInterceptor(mk("b")); err != nil {
		t.Fatal(err)
	}
	src.out.MustGet().Consume(1)
	want := []string{"a>", "b>", "<b", "<a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInterceptorCanShortCircuit(t *testing.T) {
	c := newTestCapsule(t)
	src, snk, b := wire(t, c)
	if err := b.AddInterceptor(Interceptor{
		Name: "block",
		Wrap: func(op string, args []any, invoke func([]any) []any) []any {
			return []any{-1} // never invoke the target
		},
	}); err != nil {
		t.Fatal(err)
	}
	if got := src.out.MustGet().Consume(9); got != -1 {
		t.Fatalf("short-circuit result = %d", got)
	}
	if snk.total != 0 {
		t.Fatalf("target ran despite short-circuit: total=%d", snk.total)
	}
}

func TestInterceptorModifiesArgs(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)
	if err := b.AddInterceptor(Interceptor{
		Name: "double",
		Wrap: func(op string, args []any, invoke func([]any) []any) []any {
			return invoke([]any{args[0].(int) * 2})
		},
	}); err != nil {
		t.Fatal(err)
	}
	if got := src.out.MustGet().Consume(4); got != 8 {
		t.Fatalf("Consume = %d, want doubled 8", got)
	}
}

func TestInterceptorDuplicateName(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	if err := b.AddInterceptor(Interceptor{Name: "x", Wrap: PrePost(nil, nil)}); err != nil {
		t.Fatal(err)
	}
	err := b.AddInterceptor(Interceptor{Name: "x", Wrap: PrePost(nil, nil)})
	if !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
}

func TestInterceptorNoDescriptor(t *testing.T) {
	// An interface with no registered descriptor cannot be intercepted.
	reg := NewInterfaceRegistry() // empty: ifSink unknown
	c := NewCapsule("bare", WithInterfaceRegistry(reg),
		WithComponentRegistry(NewComponentRegistry()))
	src, snk := newSource(), newSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("snk", snk); err != nil {
		t.Fatal(err)
	}
	b, err := c.Bind("src", "out", "snk", ifSink)
	if err != nil {
		t.Fatalf("bind without descriptor should work (fused): %v", err)
	}
	err = b.AddInterceptor(Interceptor{Name: "x", Wrap: PrePost(nil, nil)})
	if !errors.Is(err, ErrNoDescriptor) {
		t.Fatalf("want ErrNoDescriptor, got %v", err)
	}
}

// ---- lifecycle -------------------------------------------------------------

func TestStartStopComponent(t *testing.T) {
	c := newTestCapsule(t)
	lc := &lifecycleComp{Base: NewBase("test.LC")}
	if err := c.Insert("lc", lc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.StartComponent(ctx, "lc"); err != nil {
		t.Fatal(err)
	}
	if !lc.started || !c.Started("lc") {
		t.Fatal("component not started")
	}
	// Idempotent start.
	if err := c.StartComponent(ctx, "lc"); err != nil {
		t.Fatal(err)
	}
	if err := c.StopComponent(ctx, "lc"); err != nil {
		t.Fatal(err)
	}
	if !lc.stopped || c.Started("lc") {
		t.Fatal("component not stopped")
	}
}

func TestStartFailureRollsBack(t *testing.T) {
	c := newTestCapsule(t)
	bad := &lifecycleComp{Base: NewBase("test.LC"), startErr: errors.New("boom")}
	if err := c.Insert("bad", bad); err != nil {
		t.Fatal(err)
	}
	err := c.StartComponent(context.Background(), "bad")
	if !errors.Is(err, ErrLifecycle) {
		t.Fatalf("want ErrLifecycle, got %v", err)
	}
	if c.Started("bad") {
		t.Fatal("failed start left component marked started")
	}
}

func TestStartAllRollbackOnFailure(t *testing.T) {
	c := newTestCapsule(t)
	a := &lifecycleComp{Base: NewBase("test.LC")}
	bad := &lifecycleComp{Base: NewBase("test.LC"), startErr: errors.New("boom")}
	// "a" sorts before "b-bad": a starts first, then b fails, a must stop.
	if err := c.Insert("a", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("b-bad", bad); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAll(context.Background()); err == nil {
		t.Fatal("want StartAll failure")
	}
	if !a.stopped {
		t.Fatal("rollback did not stop previously started component")
	}
}

func TestCloseCapsule(t *testing.T) {
	c := newTestCapsule(t)
	src, _, _ := wire(t, c)
	if err := c.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if src.out.Bound() {
		t.Fatal("binding survived close")
	}
	if err := c.Insert("x", newSink()); !errors.Is(err, ErrCapsuleClosed) {
		t.Fatalf("want ErrCapsuleClosed, got %v", err)
	}
	if _, err := c.Bind("src", "out", "snk", ifSink); !errors.Is(err, ErrCapsuleClosed) {
		t.Fatalf("want ErrCapsuleClosed, got %v", err)
	}
}

// ---- events ----------------------------------------------------------------

func TestEventsEmitted(t *testing.T) {
	c := newTestCapsule(t)
	ch, cancel := c.Subscribe(16)
	defer cancel()

	src, _, b := wire(t, c)
	_ = src
	if err := c.Unbind(b.ID()); err != nil {
		t.Fatal(err)
	}

	want := []EventKind{EventInsert, EventInsert, EventBind, EventUnbind}
	for i, k := range want {
		e := <-ch
		if e.Kind != k {
			t.Fatalf("event %d = %v, want %v", i, e.Kind, k)
		}
	}
}

func TestEventSubscriberCancel(t *testing.T) {
	c := newTestCapsule(t)
	ch, cancel := c.Subscribe(1)
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	// Publishing after cancel must not panic.
	if err := c.Insert("a", newSink()); err != nil {
		t.Fatal(err)
	}
}

func TestEventOverflowDropsNotBlocks(t *testing.T) {
	c := newTestCapsule(t)
	_, cancel := c.Subscribe(1) // buffer of 1, never drained
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := c.Insert(fmt.Sprintf("c%d", i), newSink()); err != nil {
			t.Fatal(err)
		}
	}
	// Reaching here without deadlock is the assertion.
}

// ---- registries ------------------------------------------------------------

func TestComponentRegistry(t *testing.T) {
	r := NewComponentRegistry()
	if err := r.Register("t.A", func(map[string]string) (Component, error) {
		return newSink(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("t.A", nil); err == nil {
		t.Fatal("want error for nil factory")
	}
	if err := r.Register("t.A", func(map[string]string) (Component, error) { return nil, nil }); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	comp, err := r.New("t.A", nil)
	if err != nil || comp == nil {
		t.Fatalf("New: %v %v", comp, err)
	}
	if _, err := r.New("t.B", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if types := r.Types(); len(types) != 1 || types[0] != "t.A" {
		t.Fatalf("types = %v", types)
	}
}

func TestInstantiateViaRegistry(t *testing.T) {
	reg := NewComponentRegistry()
	reg.MustRegister("t.Sink", func(map[string]string) (Component, error) {
		return newSink(), nil
	})
	c := NewCapsule("x", WithComponentRegistry(reg),
		WithInterfaceRegistry(newTestRegistry(t)))
	comp, err := c.Instantiate("s1", "t.Sink", nil)
	if err != nil {
		t.Fatal(err)
	}
	if comp.TypeName() != "test.Sink" {
		t.Fatalf("type = %q", comp.TypeName())
	}
	if _, err := c.Instantiate("s2", "t.Missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestInterfaceRegistry(t *testing.T) {
	r := newTestRegistry(t)
	if _, ok := r.Lookup(ifSink); !ok {
		t.Fatal("descriptor missing")
	}
	if !r.Conforms(ifSink, newSink()) {
		t.Fatal("sink should conform")
	}
	if r.Conforms(ifSink, 42) {
		t.Fatal("int should not conform")
	}
	if r.Conforms("test.Unknown/1", newSink()) {
		t.Fatal("unknown iface conforms to nothing")
	}
	if ids := r.IDs(); len(ids) != 1 || ids[0] != ifSink {
		t.Fatalf("ids = %v", ids)
	}
	d, _ := r.Lookup(ifSink)
	if op, ok := d.Op("Consume"); !ok || op.NumIn != 1 {
		t.Fatalf("op lookup = %+v %v", op, ok)
	}
	if _, ok := d.Op("Nope"); ok {
		t.Fatal("unexpected op")
	}
	if err := r.Register(&Descriptor{ID: ifSink, Check: func(any) bool { return true }}); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("want error for nil descriptor")
	}
}

// ---- Base / component shape -------------------------------------------------

func TestBaseProvideNonConformingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-conforming Provide")
		}
	}()
	// Register ifSink in the global registry namespace under a unique ID to
	// avoid collisions across tests.
	id := InterfaceID("test.PanicCheck/1")
	Interfaces.MustRegister(&Descriptor{
		ID:    id,
		Check: func(v any) bool { _, ok := v.(ISink); return ok },
	})
	b := NewBase("t.X")
	b.Provide(id, 42)
}

func TestBaseReceptacleManagement(t *testing.T) {
	b := NewBase("t.X")
	r := NewReceptacle[ISink](ifSink)
	b.AddReceptacle("out", r)
	if names := b.ReceptacleNames(); len(names) != 1 || names[0] != "out" {
		t.Fatalf("names = %v", names)
	}
	if err := b.RemoveReceptacle("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := b.RemoveReceptacle("out"); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Receptacle("out"); ok {
		t.Fatal("receptacle present after removal")
	}
}

func TestBaseDuplicateReceptaclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for duplicate receptacle")
		}
	}()
	b := NewBase("t.X")
	b.AddReceptacle("out", NewReceptacle[ISink](ifSink))
	b.AddReceptacle("out", NewReceptacle[ISink](ifSink))
}

func TestAnnotations(t *testing.T) {
	b := NewBase("t.X")
	b.SetAnnotation(AnnotTrust, "untrusted")
	if v, ok := b.Annotation(AnnotTrust); !ok || v != "untrusted" {
		t.Fatalf("annotation = %q %v", v, ok)
	}
	m := b.Annotations()
	m[AnnotTrust] = "mutated"
	if v, _ := b.Annotation(AnnotTrust); v != "untrusted" {
		t.Fatal("Annotations() did not copy")
	}
}

func TestRetract(t *testing.T) {
	s := newSink()
	if _, ok := s.Provided(ifSink); !ok {
		t.Fatal("missing provided")
	}
	s.Retract(ifSink)
	if _, ok := s.Provided(ifSink); ok {
		t.Fatal("still provided after retract")
	}
}

// ---- MultiReceptacle ---------------------------------------------------------

func TestMultiReceptacle(t *testing.T) {
	m := NewMultiReceptacle[ISink](ifSink)
	if m.Iface() != ifSink {
		t.Fatalf("iface = %q", m.Iface())
	}
	a, err := m.AddSlot("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSlot("a"); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if _, err := m.AddSlot("b"); err != nil {
		t.Fatal(err)
	}
	if got := m.Slots(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("slots = %v", got)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}

	snk := newSink()
	if err := a.bindAny(ISink(snk)); err != nil {
		t.Fatal(err)
	}
	var visited []string
	m.Each(func(name string, s ISink) bool {
		visited = append(visited, name)
		s.Consume(1)
		return true
	})
	if len(visited) != 1 || visited[0] != "a" {
		t.Fatalf("visited = %v", visited)
	}
	if snk.total != 1 {
		t.Fatalf("total = %d", snk.total)
	}

	if err := m.RemoveSlot("a"); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("want ErrAlreadyBound for bound slot, got %v", err)
	}
	a.unbindAny()
	if err := m.RemoveSlot("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveSlot("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestMultiReceptacleEachEarlyStop(t *testing.T) {
	m := NewMultiReceptacle[ISink](ifSink)
	for _, n := range []string{"a", "b", "c"} {
		slot, err := m.AddSlot(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := slot.bindAny(ISink(newSink())); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	m.Each(func(string, ISink) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("count = %d, want early stop at 2", count)
	}
}

// ---- receptacle fast path ------------------------------------------------------

func TestReceptacleMustGetPanicsUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewReceptacle[ISink](ifSink).MustGet()
}

func TestReceptacleRerouteUnboundFails(t *testing.T) {
	r := NewReceptacle[ISink](ifSink)
	if err := r.reroute(ISink(newSink())); !errors.Is(err, ErrNotBound) {
		t.Fatalf("want ErrNotBound, got %v", err)
	}
}

func TestReceptacleBindTypeMismatch(t *testing.T) {
	r := NewReceptacle[ISink](ifSink)
	if err := r.bindAny("not a sink"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

// ---- graph snapshot & invariants ------------------------------------------------

func TestSnapshotReflectsArchitecture(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	g := c.Snapshot()
	if g.Capsule != "test" || len(g.Nodes) != 2 || len(g.Edges) != 1 {
		t.Fatalf("graph = %+v", g)
	}
	n, ok := g.Node("src")
	if !ok || n.Type != "test.Source" || len(n.Receptacles) != 1 {
		t.Fatalf("src node = %+v", n)
	}
	if !n.Receptacles[0].Bound {
		t.Fatal("src receptacle should show bound")
	}
	e := g.Edges[0]
	if e.From != "src" || e.To != "snk" || e.ID != b.ID() {
		t.Fatalf("edge = %+v", e)
	}
	if out := g.OutEdges("src"); len(out) != 1 {
		t.Fatalf("out edges = %v", out)
	}
	if in := g.InEdges("snk"); len(in) != 1 {
		t.Fatalf("in edges = %v", in)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestSnapshotValidateCatchesCorruption(t *testing.T) {
	c := newTestCapsule(t)
	wire(t, c)
	g := c.Snapshot()

	bad := *g
	bad.Edges = append([]GraphEdge(nil), g.Edges...)
	bad.Edges[0].To = "ghost"
	if err := bad.Validate(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("want ErrInvariant for missing server, got %v", err)
	}

	bad = *g
	bad.Edges = append([]GraphEdge(nil), g.Edges...)
	bad.Edges[0].Iface = "test.Other/1"
	if err := bad.Validate(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("want ErrInvariant for iface mismatch, got %v", err)
	}

	bad = *g
	bad.Nodes = append(append([]GraphNode(nil), g.Nodes...), g.Nodes[0])
	if err := bad.Validate(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("want ErrInvariant for dup node, got %v", err)
	}
}

func TestSnapshotAfterInterceptors(t *testing.T) {
	c := newTestCapsule(t)
	_, _, b := wire(t, c)
	if err := b.AddInterceptor(Interceptor{Name: "i1", Wrap: PrePost(nil, nil)}); err != nil {
		t.Fatal(err)
	}
	g := c.Snapshot()
	if len(g.Edges[0].Interceptors) != 1 || g.Edges[0].Interceptors[0] != "i1" {
		t.Fatalf("edge interceptors = %v", g.Edges[0].Interceptors)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate with interceptor: %v", err)
	}
}

// ---- concurrency smoke -----------------------------------------------------------

func TestConcurrentInvokeDuringIntercept(t *testing.T) {
	c := newTestCapsule(t)
	src, _, b := wire(t, c)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if s, ok := src.out.Get(); ok {
				s.Consume(1)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("i%d", i)
		if err := b.AddInterceptor(Interceptor{Name: name, Wrap: PrePost(nil, nil)}); err != nil {
			t.Fatal(err)
		}
		if err := b.RemoveInterceptor(name); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
