package core

import "testing"

// statComp is a minimal component with the IStats capability.
type statComp struct {
	*Base
	stats []Stat
}

func newStatComp(typeName string, stats ...Stat) *statComp {
	return &statComp{Base: NewBase(typeName), stats: stats}
}

func (s *statComp) Stats() []Stat { return s.stats }

// nestComp is a composite-shaped component exposing an inner capsule.
type nestComp struct {
	*Base
	inner *Capsule
}

func (n *nestComp) Inner() *Capsule { return n.inner }

// shapedComp shapes its own subtree via IStatsTree.
type shapedComp struct {
	*Base
}

func (s *shapedComp) StatsTree() StatNode {
	return StatNode{
		Stats:    []Stat{C("total", "packets", 7)},
		Children: []StatNode{{Name: "lane0", Stats: []Stat{C("total", "packets", 7)}}},
	}
}

func TestStatNodeFind(t *testing.T) {
	tree := StatNode{
		Name: "root",
		Children: []StatNode{
			{Name: "a", Stats: []Stat{C("x", "u", 1)}},
			{Name: "s0/queue", Stats: []Stat{C("x", "u", 2)}, Children: []StatNode{
				{Name: "deep", Stats: []Stat{C("x", "u", 3)}},
			}},
		},
	}
	if n, ok := tree.Find("a"); !ok {
		t.Fatal("a not found")
	} else if s, _ := n.Stat("x"); s.Value != 1 {
		t.Fatalf("a.x = %v", s.Value)
	}
	// Component names containing slashes resolve as one segment.
	if n, ok := tree.Find("s0/queue"); !ok {
		t.Fatal("s0/queue not found")
	} else if s, _ := n.Stat("x"); s.Value != 2 {
		t.Fatalf("s0/queue.x = %v", s.Value)
	}
	// ... and still recurse past the slashed segment.
	if n, ok := tree.Find("s0/queue/deep"); !ok {
		t.Fatal("s0/queue/deep not found")
	} else if s, _ := n.Stat("x"); s.Value != 3 {
		t.Fatalf("deep.x = %v", s.Value)
	}
	if _, ok := tree.Find("ghost"); ok {
		t.Fatal("ghost found")
	}
	if _, ok := tree.Find("s0/queue/ghost"); ok {
		t.Fatal("nested ghost found")
	}
	if n, ok := tree.Find(""); !ok || n.Name != "root" {
		t.Fatal("empty path should resolve to the node itself")
	}
}

func TestMergeStats(t *testing.T) {
	a := []Stat{C("packets_in", "packets", 10), G("queue_occupancy", "ratio", 0.2)}
	b := []Stat{C("packets_in", "packets", 5), G("queue_occupancy", "ratio", 0.6)}
	merged := MergeStats(a, b)
	byName := map[string]Stat{}
	for _, s := range merged {
		byName[s.Name] = s
	}
	if got := byName["packets_in"].Value; got != 15 {
		t.Fatalf("counters should sum: %v", got)
	}
	if got := byName["queue_occupancy"].Value; got != 0.4 {
		t.Fatalf("ratio gauges should average: %v", got)
	}
	// Determinism: sorted by name.
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Name > merged[i].Name {
			t.Fatalf("unsorted merge: %+v", merged)
		}
	}
}

// TestMergeStatsWeightedRatios pins the weighted-average semantics for
// ratio gauges: lanes that did work dominate in proportion to their
// Weight, an idle (zero-weight) lane's stale ratio contributes nothing,
// and the merged stat carries the summed weight so nested merges stay
// associative. Unweighted groups keep the historical arithmetic mean.
func TestMergeStatsWeightedRatios(t *testing.T) {
	busy := []Stat{GW("hitrate", "ratio", 0.9, 1000)}
	warm := []Stat{GW("hitrate", "ratio", 0.5, 200)}
	idle := []Stat{GW("hitrate", "ratio", 0.1, 0)} // stale rate, no lookups

	merged := MergeStats(busy, warm, idle)
	if len(merged) != 1 {
		t.Fatalf("merged = %+v", merged)
	}
	want := (0.9*1000 + 0.5*200) / 1200
	if got := merged[0].Value; got != want {
		t.Fatalf("weighted merge = %v, want %v (idle lane must not drag the mean)", got, want)
	}
	if merged[0].Weight != 1200 {
		t.Fatalf("merged weight = %v, want 1200", merged[0].Weight)
	}

	// Associativity: merging the merge with another weighted lane gives
	// the same result as merging all three flat.
	late := []Stat{GW("hitrate", "ratio", 0.0, 300)}
	nested := MergeStats([]Stat{merged[0]}, late)
	flat := MergeStats(busy, warm, idle, late)
	if nested[0].Value != flat[0].Value || nested[0].Weight != flat[0].Weight {
		t.Fatalf("nested merge %+v diverges from flat merge %+v", nested[0], flat[0])
	}

	// All-zero-weight groups keep the unweighted average (occupancy-style
	// gauges that never set Weight).
	plain := MergeStats(
		[]Stat{G("occupancy", "ratio", 0.2)},
		[]Stat{G("occupancy", "ratio", 0.6)})
	if got := plain[0].Value; got != 0.4 {
		t.Fatalf("unweighted ratio merge = %v, want 0.4", got)
	}
}

func TestCapsuleStatsWalksComposites(t *testing.T) {
	outer := NewCapsule("outer")
	if err := outer.Insert("leaf", newStatComp("t.leaf", C("n", "u", 1))); err != nil {
		t.Fatal(err)
	}
	inner := NewCapsule("inner")
	if err := inner.Insert("child", newStatComp("t.child", C("n", "u", 2))); err != nil {
		t.Fatal(err)
	}
	if err := outer.Insert("nest", &nestComp{Base: NewBase("t.nest"), inner: inner}); err != nil {
		t.Fatal(err)
	}
	if err := outer.Insert("shaped", &shapedComp{Base: NewBase("t.shaped")}); err != nil {
		t.Fatal(err)
	}
	// A component without IStats appears with no stats but stays in the
	// tree (shape is structural, telemetry is a capability).
	if err := outer.Insert("mute", NewBase("t.mute")); err != nil {
		t.Fatal(err)
	}

	tree := CapsuleStats(outer)
	if tree.Name != "outer" || len(tree.Children) != 4 {
		t.Fatalf("tree = %+v", tree)
	}
	if n, ok := tree.Find("nest/child"); !ok {
		t.Fatal("composite child not walked")
	} else if s, _ := n.Stat("n"); s.Value != 2 {
		t.Fatalf("nest/child.n = %v", s.Value)
	}
	if n, ok := tree.Find("shaped"); !ok || n.Type != "t.shaped" {
		t.Fatal("shaped subtree missing or untyped")
	} else if _, ok := n.Stat("total"); !ok {
		t.Fatal("shaped stats lost")
	}
	if n, ok := tree.Find("shaped/lane0"); !ok {
		t.Fatal("shaped lane missing")
	} else if s, _ := n.Stat("total"); s.Value != 7 {
		t.Fatalf("lane total = %v", s.Value)
	}
	if n, ok := tree.Find("mute"); !ok || len(n.Stats) != 0 {
		t.Fatal("capability-less component mishandled")
	}
}
