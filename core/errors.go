package core

import "errors"

// Sentinel errors returned by the component runtime. Callers should match
// them with errors.Is; most runtime errors wrap one of these with
// contextual detail.
var (
	// ErrNotFound indicates a component, receptacle, interface or binding
	// that does not exist in the capsule addressed.
	ErrNotFound = errors.New("core: not found")

	// ErrAlreadyExists indicates a name collision when instantiating a
	// component or registering a factory or interface descriptor.
	ErrAlreadyExists = errors.New("core: already exists")

	// ErrTypeMismatch indicates that a value offered to a receptacle or
	// proxy does not implement the required interface.
	ErrTypeMismatch = errors.New("core: interface type mismatch")

	// ErrAlreadyBound indicates an attempt to bind a single-valued
	// receptacle that is already connected.
	ErrAlreadyBound = errors.New("core: receptacle already bound")

	// ErrNotBound indicates an operation that requires a bound receptacle.
	ErrNotBound = errors.New("core: receptacle not bound")

	// ErrVetoed indicates that a bind-time constraint interceptor refused
	// the requested architectural mutation.
	ErrVetoed = errors.New("core: bind vetoed by constraint")

	// ErrCapsuleClosed indicates use of a capsule after Close.
	ErrCapsuleClosed = errors.New("core: capsule closed")

	// ErrNoDescriptor indicates that an interface has no registered
	// descriptor in the interface meta-model, so the requested reflective
	// operation (interception proxying, remote stubs) is unavailable.
	ErrNoDescriptor = errors.New("core: no interface descriptor registered")

	// ErrLifecycle indicates a component start/stop failure.
	ErrLifecycle = errors.New("core: lifecycle error")

	// ErrInvariant indicates a violated architecture meta-model invariant.
	ErrInvariant = errors.New("core: architecture invariant violated")
)
