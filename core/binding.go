package core

import (
	"fmt"
	"sync"
)

// BindingID identifies a binding within its capsule.
type BindingID uint64

// Interceptor is one element of a binding's interception chain. Wrap is an
// Around: it receives each operation crossing the binding and must call
// invoke (zero or one times) to continue the chain. Name identifies the
// interceptor for removal and introspection.
//
// Operations are not necessarily unit-cardinality: an interface may define
// aggregate (batched) operations whose single argument carries many units
// of work — e.g. the Router CF's "PushBatch", whose args[0] is a packet
// slice. A proxy presents such a crossing to the chain as ONE operation,
// so interceptor overhead is paid per batch rather than per element; an
// interceptor that accounts per element (an audit) must inspect the
// aggregate argument rather than counting invocations (the router package
// exposes PacketCount for its data-path ops).
type Interceptor struct {
	Name string
	Wrap Around
}

// PrePost builds an Around from separate pre- and post-hooks, the common
// pattern in the paper's interception meta-model. Either hook may be nil.
func PrePost(pre func(op string, args []any), post func(op string, args, results []any)) Around {
	return func(op string, args []any, invoke func([]any) []any) []any {
		if pre != nil {
			pre(op, args)
		}
		results := invoke(args)
		if post != nil {
			post(op, args, results)
		}
		return results
	}
}

// Binding is a first-class connection from a component's receptacle to
// another component's provided interface. It records enough to be
// inspected by the architecture meta-model and mutated by the interception
// meta-model. All mutation happens through methods on the owning Capsule
// or on the Binding itself, never by touching the receptacle directly.
type Binding struct {
	id       BindingID
	capsule  *Capsule
	from     string // component instance name
	recpName string
	to       string // component instance name
	iface    InterfaceID

	recp      GenReceptacle
	rawTarget any // the real provided interface, never a proxy

	mu    sync.Mutex
	chain []Interceptor
}

// ID returns the binding's capsule-local identity.
func (b *Binding) ID() BindingID { return b.id }

// From returns the client component instance name and receptacle name.
func (b *Binding) From() (component, receptacle string) { return b.from, b.recpName }

// To returns the server component instance name and interface ID.
func (b *Binding) To() (component string, iface InterfaceID) { return b.to, b.iface }

// Receptacle returns the client receptacle this binding routes. The value
// is the receptacle's identity (an interface wrapping the component's own
// receptacle pointer), so graph walkers — the router's fusion planner —
// can match a component's receptacle field to its binding without knowing
// instance names.
func (b *Binding) Receptacle() GenReceptacle { return b.recp }

// Interceptors returns the names of the installed interceptors in
// invocation order.
func (b *Binding) Interceptors() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, len(b.chain))
	for i, ic := range b.chain {
		names[i] = ic.Name
	}
	return names
}

// AddInterceptor appends ic to the binding's chain and re-routes the
// receptacle through a freshly composed proxy. The first interceptor on a
// binding un-fuses the fast path; this is the reverse of the paper's
// vtable-bypass optimisation and its cost is measured by experiment E1.
// Requires the target interface to have a Proxy-capable descriptor.
//
// A fused binding (empty chain) routes the receptacle straight at the raw
// provided interface, so capability discovery by type assertion — how the
// router's batched fast path finds IPacketPushBatch downstream — sees the
// real component. An un-fused binding interposes the descriptor's proxy;
// descriptors whose interfaces have aggregate operations must produce
// proxies preserving those capabilities (the router's push proxy forwards
// whole batches through the chain as single operations), otherwise
// installing an interceptor silently degrades the data path to
// per-element calls.
func (b *Binding) AddInterceptor(ic Interceptor) error {
	if ic.Name == "" || ic.Wrap == nil {
		return fmt.Errorf("core: add interceptor: empty name or nil wrap")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, have := range b.chain {
		if have.Name == ic.Name {
			return fmt.Errorf("core: interceptor %q: %w", ic.Name, ErrAlreadyExists)
		}
	}
	next := append(append([]Interceptor(nil), b.chain...), ic)
	if err := b.install(next); err != nil {
		return err
	}
	b.chain = next
	b.capsule.notify(Event{Kind: EventIntercept, Component: b.from, Peer: b.to,
		Type: ic.Name, Receptacle: b.recpName, Iface: b.iface, Binding: b.id})
	return nil
}

// RemoveInterceptor removes the named interceptor, re-fusing the binding if
// the chain becomes empty.
func (b *Binding) RemoveInterceptor(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := -1
	for i, have := range b.chain {
		if have.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: interceptor %q: %w", name, ErrNotFound)
	}
	next := append(append([]Interceptor(nil), b.chain[:idx]...), b.chain[idx+1:]...)
	if err := b.install(next); err != nil {
		return err
	}
	b.chain = next
	b.capsule.notify(Event{Kind: EventUnintercept, Component: b.from, Peer: b.to,
		Type: name, Receptacle: b.recpName, Iface: b.iface, Binding: b.id})
	return nil
}

// install re-routes the receptacle for the given chain. Caller holds b.mu.
func (b *Binding) install(chain []Interceptor) error {
	if len(chain) == 0 {
		return b.recp.reroute(b.rawTarget) // fuse: direct reference again
	}
	d, ok := b.capsule.ifaceReg.Lookup(b.iface)
	if !ok || d.Proxy == nil {
		return fmt.Errorf("core: intercept %q: %w", b.iface, ErrNoDescriptor)
	}
	proxy := d.Proxy(b.rawTarget, composeChain(chain))
	if !d.Check(proxy) {
		return fmt.Errorf("core: descriptor %q produced non-conforming proxy: %w",
			b.iface, ErrTypeMismatch)
	}
	return b.recp.reroute(proxy)
}

// composeChain folds a chain of interceptors into a single Around, with
// chain[0] outermost.
func composeChain(chain []Interceptor) Around {
	return func(op string, args []any, invoke func([]any) []any) []any {
		var run func(i int, args []any) []any
		run = func(i int, args []any) []any {
			if i == len(chain) {
				return invoke(args)
			}
			return chain[i].Wrap(op, args, func(a []any) []any { return run(i+1, a) })
		}
		return run(0, args)
	}
}

// String implements fmt.Stringer for diagnostics.
func (b *Binding) String() string {
	return fmt.Sprintf("binding#%d %s.%s -> %s:%s", b.id, b.from, b.recpName, b.to, b.iface)
}
