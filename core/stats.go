package core

import (
	"sort"
	"strings"
)

// This file is the uniform telemetry capability of the meta-space: one
// representation (Stat), one capability interface (IStats), and one walker
// (CapsuleStats) that turns a running capsule into a coherent stats tree.
// Before it existed, observability was scattered across incompatible
// per-component surfaces (router.ElementStats, queue Len()/AvgLen(),
// osabs drop counters, shard ring depths); the reflective loop — an
// adaptation engine that watches the system and reconfigures it through
// the meta-space — needs all of them in one shape.

// StatKind classifies how a Stat evolves and therefore how it aggregates.
type StatKind string

// Stat kinds.
const (
	// KindCounter is a monotonically increasing count; aggregation sums.
	KindCounter StatKind = "counter"
	// KindGauge is an instantaneous level; aggregation sums, except
	// ratio-unit gauges which average (a merged occupancy is the mean of
	// the constituents', not their sum).
	KindGauge StatKind = "gauge"
	// KindHistogram is a cumulative value distribution (hist.go):
	// aggregation merges bucket-wise, so shard-lane histograms sum into
	// exactly the histogram of the union of their observations.
	KindHistogram StatKind = "histogram"
)

// Stat is one named scalar observation: a cheap atomic snapshot of a
// counter or gauge. Values are float64 so counters, byte totals, EWMA
// queue lengths and occupancy ratios share one representation; integral
// counters below 2^53 round-trip exactly.
type Stat struct {
	Name  string   `json:"name"`
	Kind  StatKind `json:"kind"`
	Unit  string   `json:"unit,omitempty"`
	Value float64  `json:"value"`
	// Weight makes a ratio gauge mergeable without bias: MergeStats
	// averages ratio gauges weighted by it (a cache hit rate weighted by
	// lookups, an occupancy weighted by capacity), so an idle
	// constituent with Weight 0 cannot drag the merged mean. Zero on
	// every stat in a group falls back to the unweighted average.
	Weight float64 `json:"weight,omitempty"`
	// Hist carries the bucketed distribution for KindHistogram stats
	// (Value then holds the observation count); nil otherwise.
	Hist *HistSnapshot `json:"hist,omitempty"`
}

// C builds a counter Stat from an integral count.
func C(name, unit string, v uint64) Stat {
	return Stat{Name: name, Kind: KindCounter, Unit: unit, Value: float64(v)}
}

// G builds a gauge Stat.
func G(name, unit string, v float64) Stat {
	return Stat{Name: name, Kind: KindGauge, Unit: unit, Value: v}
}

// GW builds a weighted gauge Stat (see Stat.Weight).
func GW(name, unit string, v, weight float64) Stat {
	return Stat{Name: name, Kind: KindGauge, Unit: unit, Value: v, Weight: weight}
}

// IStats is the uniform telemetry capability. Implementations must be
// cheap (atomic loads, no blocking on data-path locks beyond what a
// control-path reader may take) and safe to call concurrently with
// traffic. Like the batch capability, it is discovered by type assertion,
// not declared through the interface registry.
type IStats interface {
	// Stats returns a snapshot of the component's counters and gauges.
	Stats() []Stat
}

// IStatsTree is implemented by composite components that want to shape
// their own subtree in the capsule stats tree — e.g. a sharded data plane
// grouping its inner constituents into per-replica lanes with lane-level
// ring gauges. Components without it get a subtree derived from IStats
// plus (for composites exposing Inner()) a recursive walk.
type IStatsTree interface {
	// StatsTree returns the component's subtree. The walker overwrites
	// the root's Name with the instance name.
	StatsTree() StatNode
}

// StatNode is one node of the capsule stats tree: a named component (or
// grouping) with its own stats and its observable children.
type StatNode struct {
	Name     string     `json:"name"`
	Type     string     `json:"type,omitempty"`
	Stats    []Stat     `json:"stats,omitempty"`
	Children []StatNode `json:"children,omitempty"`
}

// Stat returns the named stat of this node.
func (n *StatNode) Stat(name string) (Stat, bool) {
	for _, s := range n.Stats {
		if s.Name == name {
			return s, true
		}
	}
	return Stat{}, false
}

// Find resolves a slash-separated path to a descendant node. Because
// component instance names may themselves contain slashes (a sharded
// replica's "s0/queue"), each step first tries the whole remaining path
// as one child name, then the longest matching prefix.
func (n *StatNode) Find(path string) (*StatNode, bool) {
	if path == "" {
		return n, true
	}
	// Whole remainder as one child name.
	for i := range n.Children {
		if n.Children[i].Name == path {
			return &n.Children[i], true
		}
	}
	// Longest child-name prefix followed by "/".
	best := -1
	for i := range n.Children {
		name := n.Children[i].Name
		if strings.HasPrefix(path, name+"/") && (best < 0 || len(name) > len(n.Children[best].Name)) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	return n.Children[best].Find(path[len(n.Children[best].Name)+1:])
}

// MergeStats aggregates several stat snapshots into one: stats are grouped
// by (Name, Kind, Unit); counters and gauges sum, except gauges with unit
// "ratio", which average; histograms merge bucket-wise (and Value, their
// observation count, sums). The result is sorted by name for determinism.
// It is the aggregation rule composites use to present their constituents
// as one element.
//
// Ratio gauges average weighted by Stat.Weight when any constituent
// carries one: the merged value is Σ(value·weight)/Σweight and the result
// keeps Weight = Σweight, so nested merges (lane → shard root → capsule)
// stay associative. Constituents with Weight 0 are thereby excluded — an
// idle shard lane's stale flow-cache hit rate no longer drags the root
// mean. A group where every stat has Weight 0 keeps the historical
// unweighted average (occupancy-style gauges that carry no weight).
func MergeStats(groups ...[]Stat) []Stat {
	type acc struct {
		stat Stat
		n    int
		wsum float64 // Σ weight over the group
		wval float64 // Σ value·weight
	}
	byKey := make(map[Stat]*acc)
	order := make([]Stat, 0, 8)
	for _, g := range groups {
		for _, s := range g {
			key := Stat{Name: s.Name, Kind: s.Kind, Unit: s.Unit}
			a, ok := byKey[key]
			if !ok {
				a = &acc{stat: key}
				byKey[key] = a
				order = append(order, key)
			}
			a.stat.Value += s.Value
			if s.Weight > 0 {
				a.wsum += s.Weight
				a.wval += s.Value * s.Weight
			}
			if s.Kind == KindHistogram {
				a.stat.Hist = a.stat.Hist.Merge(s.Hist)
			}
			a.n++
		}
	}
	out := make([]Stat, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		if a.stat.Kind == KindGauge && a.stat.Unit == "ratio" && a.n > 0 {
			if a.wsum > 0 {
				a.stat.Value = a.wval / a.wsum
				a.stat.Weight = a.wsum
			} else {
				a.stat.Value /= float64(a.n)
			}
		}
		out = append(out, a.stat)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// innerCapsule is the structural hook by which composite components expose
// their nested runtime to the stats walker without core depending on the
// cf package.
type innerCapsule interface {
	Inner() *Capsule
}

// ComponentStats builds the stats subtree of one component instance:
// its IStats snapshot (when the capability is present) plus either the
// component's self-shaped subtree (IStatsTree) or a recursive walk of its
// inner capsule (composites).
func ComponentStats(name string, comp Component) StatNode {
	if st, ok := comp.(IStatsTree); ok {
		node := st.StatsTree()
		node.Name = name
		if node.Type == "" {
			node.Type = comp.TypeName()
		}
		return node
	}
	node := StatNode{Name: name, Type: comp.TypeName()}
	if s, ok := comp.(IStats); ok {
		node.Stats = s.Stats()
	}
	if ic, ok := comp.(innerCapsule); ok {
		inner := CapsuleStats(ic.Inner())
		node.Children = inner.Children
	}
	return node
}

// CapsuleStats snapshots the capsule-wide stats tree: one child per
// component instance in sorted name order, recursing through composites.
// The root carries no aggregate of its own — aggregation is a composite's
// (or the reader's) decision, via MergeStats.
func CapsuleStats(c *Capsule) StatNode {
	root := StatNode{Name: c.Name()}
	for _, name := range c.ComponentNames() {
		comp, ok := c.Component(name)
		if !ok {
			continue
		}
		root.Children = append(root.Children, ComponentStats(name, comp))
	}
	return root
}
