// Package core implements the OpenCOM-style reflective component runtime
// that underpins NETKIT (Coulson et al., "Reflective Middleware-based
// Programmable Networking", RM2003).
//
// The runtime is organised around four ideas taken directly from the paper:
//
//   - Components are fine-grained units of deployment that provide named,
//     versioned interfaces and declare their dependencies as explicit
//     receptacles ("required" interfaces).
//
//   - Capsules are per-address-space containers in which components are
//     instantiated, bound together, started, stopped, and destroyed. All
//     mutation goes through the capsule so the runtime always has a
//     causally-connected self-representation.
//
//   - Bindings are first-class: every receptacle→interface connection is a
//     Binding object that can be inspected, intercepted and torn down at
//     run time. When a binding carries no interceptors the receptacle holds
//     a direct reference to the target interface (the Go analogue of the
//     paper's "temporarily bypassing vtables" optimisation); installing an
//     interceptor transparently re-routes the binding through a generated
//     proxy.
//
//   - Three meta-models make the runtime reflective. The architecture
//     meta-model exposes the component/binding graph of a capsule together
//     with mutation events and invariant checks. The interface meta-model
//     is a runtime catalogue of interface descriptors (the analogue of the
//     paper's language-independent introspection built on type libraries);
//     descriptors also supply proxy constructors used for interception and
//     for remote (inter-address-space) bindings. The interception
//     meta-model allows pre/post interceptors to be attached to any binding
//     and to the capsule's bind primitive itself — the paper uses the
//     latter to implement dynamically added architectural constraints.
//
// The resources meta-model described in the paper is provided by the
// sibling package internal/resources and integrates through task
// annotations on components.
package core
