package core

import (
	"fmt"
	"sort"
	"sync"
)

// InterfaceID names a component interface, conventionally
// "<package>.<Interface>/<version>", e.g. "netkit.IPacketPush/1".
// Interface identity is by ID, not by Go type: the ID is what travels in
// configuration files, control-protocol messages and remote bindings, which
// is what makes the model language-independent in the paper's sense.
type InterfaceID string

// OpDesc describes one operation of an interface for the interface
// meta-model (the analogue of a type-library entry).
type OpDesc struct {
	// Name of the operation, e.g. "Push".
	Name string
	// NumIn and NumOut are the operation's argument and result counts,
	// excluding the receiver.
	NumIn, NumOut int
	// Doc is a one-line human-readable description.
	Doc string
}

// Around is the interception hook signature. An Around implementation is
// given the operation name, its arguments, and an invoke continuation that
// performs the (rest of the) call; it must return the operation results.
// Interceptor chains compose Around values.
type Around func(op string, args []any, invoke func([]any) []any) []any

// Descriptor is the runtime description of an interface: its identity, its
// operations, a conformance check, and a proxy constructor. Descriptors
// are the unit of the interface meta-model. The Proxy constructor is what
// enables both run-time interception (wrap a local target) and remote
// bindings (wrap a wire-level caller): in OpenCOM terms it plays the role
// of the generated vtable stub.
type Descriptor struct {
	// ID is the interface identity.
	ID InterfaceID
	// Doc describes the interface contract.
	Doc string
	// Ops lists the interface operations.
	Ops []OpDesc
	// Check reports whether v implements the interface.
	Check func(v any) bool
	// Proxy returns a value implementing the interface that routes every
	// operation through around, with target as the final callee. Proxy may
	// be nil for interfaces that opt out of interception.
	Proxy func(target any, around Around) any
}

// Op returns the descriptor of the named operation and whether it exists.
func (d *Descriptor) Op(name string) (OpDesc, bool) {
	for _, op := range d.Ops {
		if op.Name == name {
			return op, true
		}
	}
	return OpDesc{}, false
}

// InterfaceRegistry is the interface meta-model: a concurrency-safe
// catalogue of interface descriptors keyed by InterfaceID. A single
// process normally uses the package-level Interfaces registry, but capsules
// embedded in tests may use private registries.
type InterfaceRegistry struct {
	mu   sync.RWMutex
	desc map[InterfaceID]*Descriptor
}

// NewInterfaceRegistry returns an empty registry.
func NewInterfaceRegistry() *InterfaceRegistry {
	return &InterfaceRegistry{desc: make(map[InterfaceID]*Descriptor)}
}

// Register adds a descriptor. It returns ErrAlreadyExists if the ID is
// taken and an error if the descriptor is malformed.
func (r *InterfaceRegistry) Register(d *Descriptor) error {
	if d == nil || d.ID == "" {
		return fmt.Errorf("core: register interface: empty descriptor")
	}
	if d.Check == nil {
		return fmt.Errorf("core: register interface %q: nil Check: %w", d.ID, ErrTypeMismatch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.desc[d.ID]; ok {
		return fmt.Errorf("core: interface %q: %w", d.ID, ErrAlreadyExists)
	}
	r.desc[d.ID] = d
	return nil
}

// MustRegister registers d and panics on error. It is intended for use in
// package initialisation where a failure is a programming error.
func (r *InterfaceRegistry) MustRegister(d *Descriptor) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the descriptor for id.
func (r *InterfaceRegistry) Lookup(id InterfaceID) (*Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.desc[id]
	return d, ok
}

// IDs returns all registered interface IDs in sorted order.
func (r *InterfaceRegistry) IDs() []InterfaceID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]InterfaceID, 0, len(r.desc))
	for id := range r.desc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Conforms reports whether v implements the interface identified by id,
// according to the registered descriptor. Unregistered interfaces conform
// to nothing.
func (r *InterfaceRegistry) Conforms(id InterfaceID, v any) bool {
	d, ok := r.Lookup(id)
	return ok && d.Check(v)
}

// Interfaces is the process-wide interface meta-model. Packages that define
// component interfaces register their descriptors here during package
// initialisation, mirroring how OpenCOM interfaces carry type-library
// metadata alongside their binary definition.
var Interfaces = NewInterfaceRegistry()
