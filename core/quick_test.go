package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickArchitectureInvariants drives a capsule through random
// bind/unbind/insert/remove sequences and asserts that the architecture
// meta-model snapshot always validates: the runtime's self-representation
// can never become causally disconnected from the actual wiring.
func TestQuickArchitectureInvariants(t *testing.T) {
	check := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCapsule("quick", WithInterfaceRegistry(newTestRegistry(t)),
			WithComponentRegistry(NewComponentRegistry()))
		var bindings []BindingID
		nSrc, nSnk := 0, 0
		for i := 0; i < int(steps)%64+8; i++ {
			switch rng.Intn(5) {
			case 0: // insert a source
				if err := c.Insert(fmt.Sprintf("src%d", nSrc), newSource()); err != nil {
					return false
				}
				nSrc++
			case 1: // insert a sink
				if err := c.Insert(fmt.Sprintf("snk%d", nSnk), newSink()); err != nil {
					return false
				}
				nSnk++
			case 2: // bind a random src to a random snk (may legitimately fail)
				if nSrc == 0 || nSnk == 0 {
					continue
				}
				from := fmt.Sprintf("src%d", rng.Intn(nSrc))
				to := fmt.Sprintf("snk%d", rng.Intn(nSnk))
				if b, err := c.Bind(from, "out", to, ifSink); err == nil {
					bindings = append(bindings, b.ID())
				}
			case 3: // unbind a random binding
				if len(bindings) == 0 {
					continue
				}
				i := rng.Intn(len(bindings))
				if err := c.Unbind(bindings[i]); err != nil {
					return false
				}
				bindings = append(bindings[:i], bindings[i+1:]...)
			case 4: // intercept a random binding then remove the interceptor
				if len(bindings) == 0 {
					continue
				}
				b, ok := c.Binding(bindings[rng.Intn(len(bindings))])
				if !ok {
					return false
				}
				if err := b.AddInterceptor(Interceptor{Name: "q", Wrap: PrePost(nil, nil)}); err != nil {
					return false
				}
				if err := b.RemoveInterceptor("q"); err != nil {
					return false
				}
			}
			if err := c.Snapshot().Validate(); err != nil {
				t.Logf("invariant violated after step %d: %v", i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInterceptorChainEquivalence checks that for any chain of
// argument-transforming interceptors, composing them through the binding
// machinery computes the same function as composing them by hand.
func TestQuickInterceptorChainEquivalence(t *testing.T) {
	check := func(deltas []int8, input int16) bool {
		if len(deltas) > 12 {
			deltas = deltas[:12]
		}
		c := NewCapsule("quick2", WithInterfaceRegistry(newTestRegistry(t)),
			WithComponentRegistry(NewComponentRegistry()))
		src, snk := newSource(), newSink()
		if err := c.Insert("src", src); err != nil {
			return false
		}
		if err := c.Insert("snk", snk); err != nil {
			return false
		}
		b, err := c.Bind("src", "out", "snk", ifSink)
		if err != nil {
			return false
		}
		for i, d := range deltas {
			d := int(d)
			if err := b.AddInterceptor(Interceptor{
				Name: fmt.Sprintf("add%d", i),
				Wrap: func(op string, args []any, invoke func([]any) []any) []any {
					return invoke([]any{args[0].(int) + d})
				},
			}); err != nil {
				return false
			}
		}
		got := src.out.MustGet().Consume(int(input))
		want := int(input)
		for _, d := range deltas {
			want += int(d)
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
