package core

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync/atomic"
)

// This file adds the third stat kind to the uniform telemetry capability:
// the histogram. Counters and gauges carried the reflective loop through
// PR 4, but production adaptation keys on tail latency — percentiles, not
// averages — so the stats tree needs a representation that survives the
// same aggregation paths (composites merging constituents, shard lanes
// summing into one element) while answering Quantile(q) cheaply.
//
// The scheme is HDR-style log-linear bucketing: values below histSubCount
// get unit-width buckets (exact); above that, each power-of-two range is
// split into histSubCount linear sub-buckets, so a bucket's width is at
// most 1/histSubCount of its lower bound. With histSubBits = 5 that is a
// guaranteed <= ~3.1% relative bucket width (<= ~1.6% quantile error at
// the midpoint representative), constant across the full uint64 range —
// the precision/footprint trade HdrHistogram and the eBPF log2 maps both
// land on, tightened by the linear sub-split.

// Histogram bucket-scheme constants.
const (
	// histSubBits sets the per-octave resolution: 2^histSubBits linear
	// sub-buckets per power-of-two range.
	histSubBits = 5
	// histSubCount is the linear region bound and the sub-bucket count.
	histSubCount = 1 << histSubBits
	// histMaxBuckets is HistIndex(MaxUint64)+1: the dense recorder size.
	histMaxBuckets = (64-histSubBits-1)*histSubCount + 2*histSubCount
)

// HistIndex maps a value to its bucket index. Indexes are monotone in the
// value: for v < histSubCount the mapping is the identity (unit buckets);
// above, the top histSubBits+1 bits select the bucket.
func HistIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	// n is the bit length of v (>= histSubBits+1 here); shifting by
	// n-(histSubBits+1) lands v's top bits in [histSubCount, 2*histSubCount).
	n := bits.Len64(v)
	shift := n - (histSubBits + 1)
	return (n-(histSubBits+1))*histSubCount + int(v>>shift)
}

// HistBucketBounds returns bucket i's inclusive [lo, hi] value range.
func HistBucketBounds(i int) (lo, hi uint64) {
	if i < histSubCount {
		return uint64(i), uint64(i)
	}
	octave := i/histSubCount - 1 // 0 for [32,64), 1 for [64,128), ...
	m := uint64(i%histSubCount + histSubCount)
	lo = m << octave
	hi = (m+1)<<octave - 1 // wraps to MaxUint64 exactly at the top bucket
	return lo, hi
}

// histRepresentative is the value a bucket answers quantile queries with:
// the bucket midpoint (exact in the unit-width linear region).
func histRepresentative(i int) float64 {
	lo, hi := HistBucketBounds(i)
	return (float64(lo) + float64(hi)) / 2
}

// Histogram is the live recorder: a fixed dense array of atomic bucket
// counters, safe for concurrent Record and Snapshot. Record is wait-free
// (one atomic add on the bucket plus count/sum bookkeeping), so it is
// cheap enough for per-packet hot-path use; with one writer per shard
// lane the adds are uncontended.
type Histogram struct {
	counts [histMaxBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	used   atomic.Int32 // high-water bucket index + 1, bounds Snapshot's scan
}

// NewHistogram returns an empty recorder.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	i := HistIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		u := h.used.Load()
		if int(u) > i {
			return
		}
		if h.used.CompareAndSwap(u, int32(i+1)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns the serialisable sparse form. It is a consistent-enough
// view for telemetry: buckets are read with atomic loads while recording
// may continue.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	used := int(h.used.Load())
	for i := 0; i < used; i++ {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Index: i, Count: n})
		}
	}
	return s
}

// HistBucket is one occupied bucket of a snapshot.
type HistBucket struct {
	// Index is the HistIndex bucket number (scheme-stable, merge key).
	Index int `json:"i"`
	// Count is the observations in the bucket.
	Count uint64 `json:"n"`
}

// HistSnapshot is the frozen, serialisable form of a histogram: sparse
// occupied buckets in ascending index order plus the observation count and
// value sum. It is what a Stat of KindHistogram carries and what
// MergeStats aggregates.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// histSnapshotJSON is the wire form: the raw buckets (the mergeable
// ground truth) plus derived p50/p99/p999, so human surfaces that print
// the stats tree as JSON — `nkctl stats`, watch samples — show tail
// quantiles directly without knowing the bucket scheme.
type histSnapshotJSON struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	P50     float64      `json:"p50,omitempty"`
	P99     float64      `json:"p99,omitempty"`
	P999    float64      `json:"p999,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler, adding the derived quantiles.
func (s *HistSnapshot) MarshalJSON() ([]byte, error) {
	out := histSnapshotJSON{Count: s.Count, Sum: s.Sum, Buckets: s.Buckets}
	if s.Count > 0 {
		out.P50 = s.Quantile(0.5)
		out.P99 = s.Quantile(0.99)
		out.P999 = s.Quantile(0.999)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; the derived quantile fields
// are ignored (recomputable from the buckets).
func (s *HistSnapshot) UnmarshalJSON(b []byte) error {
	var in histSnapshotJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*s = HistSnapshot{Count: in.Count, Sum: in.Sum, Buckets: in.Buckets}
	return nil
}

// Clone returns an independent copy.
func (s *HistSnapshot) Clone() *HistSnapshot {
	if s == nil {
		return nil
	}
	out := &HistSnapshot{Count: s.Count, Sum: s.Sum}
	out.Buckets = append(out.Buckets, s.Buckets...)
	return out
}

// Mean returns the exact mean of the recorded values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (q in [0,1]) as the midpoint of the
// bucket holding the ceil(q*Count)-th observation — within half a bucket
// width of the true value, i.e. <= ~1.6% relative error outside the exact
// linear region. Empty snapshots answer 0.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return histRepresentative(b.Index)
		}
	}
	// Unreachable when Count equals the bucket sum; be forgiving if not.
	if n := len(s.Buckets); n > 0 {
		return histRepresentative(s.Buckets[n-1].Index)
	}
	return 0
}

// Merge returns the bucket-wise sum of s and o (either may be nil). The
// receiver is not mutated; the result is freshly allocated. Merging is the
// composite aggregation rule: shard-lane histograms sum into exactly the
// histogram of the union of their observations.
func (s *HistSnapshot) Merge(o *HistSnapshot) *HistSnapshot {
	if s == nil || s.Count == 0 {
		return o.Clone()
	}
	if o == nil || o.Count == 0 {
		return s.Clone()
	}
	out := &HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < o.Buckets[j].Index):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Index < s.Buckets[i].Index:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, HistBucket{
				Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + o.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// Sub returns the bucket-wise difference s - prev, clamped at zero: the
// windowed histogram of observations recorded between two cumulative
// snapshots of the SAME recorder. It is how SLO conditions read "p99 over
// the last tick" out of monotone telemetry.
func (s *HistSnapshot) Sub(prev *HistSnapshot) *HistSnapshot {
	if s == nil {
		return nil
	}
	if prev == nil || prev.Count == 0 {
		return s.Clone()
	}
	out := &HistSnapshot{}
	if s.Count > prev.Count {
		out.Count = s.Count - prev.Count
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	prevAt := make(map[int]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Index] = b.Count
	}
	for _, b := range s.Buckets {
		if d := b.Count - min64(b.Count, prevAt[b.Index]); d > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Index: b.Index, Count: d})
		}
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// H builds a histogram Stat from a snapshot. Value carries the observation
// count so the scalar projection of a histogram stat stays meaningful to
// readers that only understand counters and gauges.
func H(name, unit string, snap *HistSnapshot) Stat {
	var n uint64
	if snap != nil {
		n = snap.Count
	}
	return Stat{Name: name, Kind: KindHistogram, Unit: unit, Value: float64(n), Hist: snap}
}
