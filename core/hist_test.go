package core

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// splitmix64 keeps the distribution tests deterministic without importing
// internal/trace (core sits below it).
type histRNG struct{ state uint64 }

func (r *histRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *histRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exactQuantile is the reference: the ceil(q*n)-th order statistic.
func exactQuantile(sorted []uint64, q float64) uint64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistQuantileErrorBounds records known distributions and asserts the
// histogram's quantiles stay within the scheme's guaranteed relative error
// of the exact order statistics: half a bucket width, i.e. 1/(2*32) plus
// slack for the representative sitting mid-bucket — 5% is comfortably
// above the bound and far below what would indicate a broken scheme.
func TestHistQuantileErrorBounds(t *testing.T) {
	rng := &histRNG{state: 41}
	distributions := map[string]func() uint64{
		"constant":    func() uint64 { return 777_777 },
		"uniform":     func() uint64 { return 1 + rng.next()%1_000_000 },
		"exponential": func() uint64 { return uint64(-120_000 * math.Log(1-rng.float())) },
		"bimodal": func() uint64 { // fast path vs slow path latencies
			if rng.next()%10 < 9 {
				return 1_000 + rng.next()%500
			}
			return 5_000_000 + rng.next()%1_000_000
		},
		"small": func() uint64 { return rng.next() % histSubCount }, // exact linear region
	}
	for name, draw := range distributions {
		h := NewHistogram()
		values := make([]uint64, 0, 50_000)
		for i := 0; i < 50_000; i++ {
			v := draw()
			values = append(values, v)
			h.Record(v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		snap := h.Snapshot()
		if snap.Count != uint64(len(values)) {
			t.Fatalf("%s: snapshot count %d, recorded %d", name, snap.Count, len(values))
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			got := snap.Quantile(q)
			want := float64(exactQuantile(values, q))
			relErr := math.Abs(got-want) / math.Max(want, 1)
			if relErr > 0.05 {
				t.Errorf("%s: q%.3f = %.1f, exact %.1f (rel err %.3f)", name, q, got, want, relErr)
			}
		}
		// The linear region must be exact.
		if name == "small" {
			for _, q := range []float64{0.1, 0.5, 0.9} {
				if got, want := snap.Quantile(q), float64(exactQuantile(values, q)); got != want {
					t.Errorf("small values must be exact: q%.1f = %v, want %v", q, got, want)
				}
			}
		}
	}
}

// TestHistMergeEquivalence asserts the composite aggregation law: the
// merge of per-lane histograms is exactly the histogram of all the lanes'
// observations recorded into one recorder.
func TestHistMergeEquivalence(t *testing.T) {
	rng := &histRNG{state: 97}
	lanes := make([]*Histogram, 4)
	whole := NewHistogram()
	for i := range lanes {
		lanes[i] = NewHistogram()
	}
	for i := 0; i < 40_000; i++ {
		v := rng.next() % 10_000_000
		lanes[i%len(lanes)].Record(v)
		whole.Record(v)
	}
	var merged *HistSnapshot
	for _, l := range lanes {
		merged = merged.Merge(l.Snapshot())
	}
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged %d buckets, want %d", len(merged.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v, want %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

// TestMergeStatsHistogram asserts histogram stats ride MergeStats like
// counters do: shard-lane snapshots aggregate into one stat whose
// quantiles match the union of the lanes' observations.
func TestMergeStatsHistogram(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	all := NewHistogram()
	for v := uint64(100); v < 1100; v++ {
		a.Record(v)
		all.Record(v)
	}
	for v := uint64(50_000); v < 51_000; v++ {
		b.Record(v)
		all.Record(v)
	}
	merged := MergeStats(
		[]Stat{H("latency", "ns", a.Snapshot()), C("packets_in", "packets", 1000)},
		[]Stat{H("latency", "ns", b.Snapshot()), C("packets_in", "packets", 1000)},
	)
	var lat, pk *Stat
	for i := range merged {
		switch merged[i].Name {
		case "latency":
			lat = &merged[i]
		case "packets_in":
			pk = &merged[i]
		}
	}
	if lat == nil || pk == nil {
		t.Fatalf("merged stats missing latency/packets_in: %+v", merged)
	}
	if pk.Value != 2000 {
		t.Fatalf("counter merge broke alongside histograms: %v", pk.Value)
	}
	if lat.Kind != KindHistogram || lat.Hist == nil {
		t.Fatalf("latency did not merge as a histogram: %+v", lat)
	}
	if lat.Value != 2000 || lat.Hist.Count != 2000 {
		t.Fatalf("merged histogram count = %v/%d, want 2000", lat.Value, lat.Hist.Count)
	}
	want := all.Snapshot()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got, ref := lat.Hist.Quantile(q), want.Quantile(q); got != ref {
			t.Errorf("q%.3f: merged %v, union %v", q, got, ref)
		}
	}
}

// TestHistSubWindow asserts Sub yields the histogram of the observations
// between two cumulative snapshots — the windowed view SLO conditions use.
func TestHistSubWindow(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(1_000) // fast era
	}
	before := h.Snapshot()
	for i := 0; i < 1000; i++ {
		h.Record(10_000_000) // slow era
	}
	window := h.Snapshot().Sub(before)
	if window.Count != 1000 {
		t.Fatalf("window count %d, want 1000", window.Count)
	}
	if p50 := window.Quantile(0.5); math.Abs(p50-10_000_000) > 0.05*10_000_000 {
		t.Fatalf("window p50 %v should see only the slow era", p50)
	}
	// Cumulative p50 still remembers the fast era.
	if p50 := h.Snapshot().Quantile(0.5); p50 > 5_000_000 {
		t.Fatalf("cumulative p50 %v should straddle both eras", p50)
	}
	if empty := before.Sub(before); empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("self-subtraction should be empty: %+v", empty)
	}
}

// TestHistStatJSONRoundTrip asserts the histogram stat survives the JSON
// path nkctl stats and the result documents use.
func TestHistStatJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{5, 500, 50_000, 5_000_000} {
		h.Record(v)
	}
	raw, err := json.Marshal(H("latency", "ns", h.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	var back Stat
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindHistogram || back.Hist == nil || back.Hist.Count != 4 {
		t.Fatalf("round trip lost the distribution: %+v", back)
	}
	if got, want := back.Hist.Quantile(1), h.Snapshot().Quantile(1); got != want {
		t.Fatalf("round-trip max %v, want %v", got, want)
	}
	// Counters must not grow a hist field on the wire.
	rawC, err := json.Marshal(C("packets_in", "packets", 7))
	if err != nil {
		t.Fatal(err)
	}
	if string(rawC) != `{"name":"packets_in","kind":"counter","unit":"packets","value":7}` {
		t.Fatalf("counter JSON grew: %s", rawC)
	}
}

// FuzzHistBuckets fuzzes the bucket scheme's invariants: every value lands
// in a bucket whose bounds contain it, bucket membership is idempotent,
// indexes are monotone, and bucket width honours the resolution guarantee.
func FuzzHistBuckets(f *testing.F) {
	for _, seed := range []uint64{0, 1, histSubCount - 1, histSubCount, histSubCount + 1,
		63, 64, 65, 1 << 20, (1 << 20) + 3, math.MaxUint64, math.MaxUint64 - 1, math.MaxUint64 / 3} {
		f.Add(seed, seed+1)
	}
	f.Fuzz(func(t *testing.T, v, w uint64) {
		i := HistIndex(v)
		if i < 0 || i >= histMaxBuckets {
			t.Fatalf("index %d out of range for %d", i, v)
		}
		lo, hi := HistBucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d [%d,%d]", v, i, lo, hi)
		}
		if HistIndex(lo) != i || HistIndex(hi) != i {
			t.Fatalf("bucket %d bounds [%d,%d] not idempotent (%d,%d)",
				i, lo, hi, HistIndex(lo), HistIndex(hi))
		}
		if j := HistIndex(w); (v < w && i > j) || (v > w && i < j) {
			t.Fatalf("index not monotone: %d->%d but %d->%d", v, i, w, j)
		}
		// Resolution: width <= lo/histSubCount outside the linear region
		// (there, width is 1 by construction).
		if lo >= histSubCount {
			width := hi - lo + 1
			if width > lo/histSubCount {
				t.Fatalf("bucket %d width %d exceeds %d/%d", i, width, lo, histSubCount)
			}
		}
		// Record/Snapshot conserve the observation.
		h := NewHistogram()
		h.Record(v)
		s := h.Snapshot()
		if s.Count != 1 || len(s.Buckets) != 1 || s.Buckets[0].Index != i {
			t.Fatalf("record of %d produced %+v", v, s)
		}
	})
}

// TestHistJSONCarriesQuantiles asserts the wire form shows derived
// p50/p99/p999 (what `nkctl stats` renders) while round-tripping the
// bucket ground truth.
func TestHistJSONCarriesQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(100_000)
	}
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"p50", "p99", "p999"} {
		v, ok := wire[k].(float64)
		if !ok || math.Abs(v-100_000) > 0.05*100_000 {
			t.Fatalf("wire %s = %v, want ~100000 (%s)", k, wire[k], raw)
		}
	}
}
