module netkit

go 1.22
