// Package results is the uniform result-document layer of the nkload
// harness: every scenario — whatever driver produced it — reduces to one
// Result carrying named metrics, documents serialise to one JSON schema,
// and a tolerance-gated Compare turns two documents into a pass/fail
// regression verdict (the k8s-netperf --tcp-tolerance idea: a CI gate
// that exits non-zero when a KPI moves the wrong way by more than the
// metric's tolerance).
//
// The schema is deliberately small and flat so baselines stay reviewable
// in a diff: a Document is a suite name, a config echo, and a list of
// Results; a Result is a scenario name and a list of Metrics; a Metric is
// a value plus the two fields the gate needs — which direction is better,
// and how much movement is tolerated.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Better directions. A metric that improves when it grows (throughput) is
// BetterHigher; one that improves when it shrinks (latency, allocations)
// is BetterLower. An empty direction means the metric is informational:
// recorded, compared, never gated.
const (
	BetterHigher = "higher"
	BetterLower  = "lower"
)

// Metric is one KPI of one scenario.
type Metric struct {
	// Name identifies the metric within its scenario ("kpps", "p99_ns").
	Name string `json:"name"`
	// Unit is the human unit ("kpps", "ns", "B/op", "packets").
	Unit string `json:"unit,omitempty"`
	// Value is the measured value.
	Value float64 `json:"value"`
	// Better is BetterHigher, BetterLower, or "" (informational).
	Better string `json:"better,omitempty"`
	// Tolerance is the allowed adverse movement in percent before the
	// gate fails this metric; 0 means "use the comparison's default".
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Result is one scenario's outcome.
type Result struct {
	// Scenario names the run ("stream/fused", "rr/sharded-4").
	Scenario string `json:"scenario"`
	// Driver is the driver kind that produced it ("stream", "rr", ...).
	Driver string `json:"driver,omitempty"`
	// Config echoes scenario parameters worth keeping with the numbers.
	Config map[string]string `json:"config,omitempty"`
	// Metrics are the scenario's KPIs.
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric of this result.
func (r *Result) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Document is one suite run: the on-disk baseline format and the -json
// output format, shared by nkload and nkbench.
type Document struct {
	// Suite names the producer ("nkload", "nkbench").
	Suite string `json:"suite"`
	// Config echoes run-wide parameters (duration, batch, shards, seed).
	Config map[string]string `json:"config,omitempty"`
	// Results are the scenarios, in run order.
	Results []Result `json:"results"`
}

// Result returns the named scenario's result.
func (d *Document) Result(scenario string) (*Result, bool) {
	for i := range d.Results {
		if d.Results[i].Scenario == scenario {
			return &d.Results[i], true
		}
	}
	return nil, false
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the document to path.
func (d *Document) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a document from path.
func Load(path string) (*Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	return &d, nil
}

// Comparison is the gate's verdict on one metric of one scenario.
type Comparison struct {
	Scenario  string  `json:"scenario"`
	Metric    string  `json:"metric"`
	Unit      string  `json:"unit,omitempty"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	DeltaPct  float64 `json:"delta_pct"` // signed; positive = current larger
	Tolerance float64 `json:"tolerance"` // percent applied (0 = ungated)
	Pass      bool    `json:"pass"`
	Note      string  `json:"note,omitempty"`
}

// Report is the outcome of comparing a current document to a baseline.
type Report struct {
	Comparisons []Comparison `json:"comparisons"`
	Failures    int          `json:"failures"`
}

// Failed reports whether any gated metric regressed beyond tolerance (the
// exit-1 condition).
func (r *Report) Failed() bool { return r.Failures > 0 }

// Compare gates current against baseline. Rules:
//
//   - Metrics match by (scenario, metric name). A baseline metric missing
//     from current FAILS (a silently vanished KPI must not pass a gate);
//     a current metric or scenario absent from the baseline is noted and
//     passes (new coverage is not a regression).
//   - Only adverse movement gates: a BetterHigher metric fails when it
//     falls more than tolerance percent below baseline; a BetterLower
//     metric fails when it rises more than tolerance percent above.
//     Improvement and in-tolerance noise pass. Metrics without a Better
//     direction are compared but never fail.
//   - Tolerance is the metric's own Tolerance from the BASELINE document
//     (the committed baseline is the contract), falling back to
//     defaultTol when zero.
//   - A zero baseline value cannot anchor a percentage: the metric is
//     noted and passes, unless it is BetterHigher and current is also
//     zero or less — a dead scenario stays dead silently otherwise.
func Compare(baseline, current *Document, defaultTol float64) *Report {
	rep := &Report{}
	seen := make(map[string]bool)
	for _, br := range baseline.Results {
		cr, ok := current.Result(br.Scenario)
		if !ok {
			rep.Comparisons = append(rep.Comparisons, Comparison{
				Scenario: br.Scenario, Metric: "*", Pass: false,
				Note: "scenario missing from current run",
			})
			rep.Failures++
			continue
		}
		for _, bm := range br.Metrics {
			seen[br.Scenario+"\x00"+bm.Name] = true
			rep.add(compareMetric(br.Scenario, bm, cr, defaultTol))
		}
	}
	for _, cr := range current.Results {
		for _, cm := range cr.Metrics {
			if seen[cr.Scenario+"\x00"+cm.Name] {
				continue
			}
			rep.Comparisons = append(rep.Comparisons, Comparison{
				Scenario: cr.Scenario, Metric: cm.Name, Unit: cm.Unit,
				Current: cm.Value, Pass: true, Note: "not in baseline",
			})
		}
	}
	return rep
}

func (r *Report) add(c Comparison) {
	r.Comparisons = append(r.Comparisons, c)
	if !c.Pass {
		r.Failures++
	}
}

func compareMetric(scenario string, bm Metric, cr *Result, defaultTol float64) Comparison {
	c := Comparison{
		Scenario: scenario, Metric: bm.Name, Unit: bm.Unit, Baseline: bm.Value,
	}
	cm, ok := cr.Metric(bm.Name)
	if !ok {
		c.Note = "metric missing from current run"
		return c // Pass=false
	}
	c.Current = cm.Value
	tol := bm.Tolerance
	if tol == 0 {
		tol = defaultTol
	}
	if bm.Value == 0 {
		if bm.Better == BetterHigher && cm.Value <= 0 {
			c.Note = "baseline and current both zero"
			return c // Pass=false: the scenario produced nothing, twice
		}
		c.Pass = true
		c.Note = "zero baseline, not gated"
		return c
	}
	c.DeltaPct = (cm.Value - bm.Value) / math.Abs(bm.Value) * 100
	switch bm.Better {
	case BetterHigher:
		c.Tolerance = tol
		c.Pass = c.DeltaPct >= -tol
	case BetterLower:
		c.Tolerance = tol
		c.Pass = c.DeltaPct <= tol
	default:
		c.Pass = true
		c.Note = "informational"
	}
	return c
}

// String renders the report as the table the CI log shows: one line per
// comparison, failures marked, sorted failures-first then by scenario.
func (r *Report) String() string {
	rows := append([]Comparison(nil), r.Comparisons...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Pass != rows[j].Pass {
			return !rows[i].Pass
		}
		if rows[i].Scenario != rows[j].Scenario {
			return rows[i].Scenario < rows[j].Scenario
		}
		return rows[i].Metric < rows[j].Metric
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s  %-24s %-12s %14s %14s %9s %8s  %s\n",
		"", "SCENARIO", "METRIC", "BASELINE", "CURRENT", "DELTA%", "TOL%", "NOTE")
	for _, c := range rows {
		mark := "ok"
		if !c.Pass {
			mark = "FAIL"
		}
		tol := "-"
		if c.Tolerance > 0 {
			tol = fmt.Sprintf("%.1f", c.Tolerance)
		}
		fmt.Fprintf(&b, "%-4s  %-24s %-12s %14.2f %14.2f %+9.2f %8s  %s\n",
			mark, c.Scenario, c.Metric, c.Baseline, c.Current, c.DeltaPct, tol, c.Note)
	}
	fmt.Fprintf(&b, "%d compared, %d failed\n", len(r.Comparisons), r.Failures)
	return b.String()
}
