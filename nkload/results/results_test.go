package results

import (
	"path/filepath"
	"strings"
	"testing"
)

func doc(results ...Result) *Document {
	return &Document{Suite: "test", Results: results}
}

func stream(kpps float64, metrics ...Metric) Result {
	return Result{
		Scenario: "stream/fused",
		Driver:   "stream",
		Metrics: append([]Metric{
			{Name: "kpps", Unit: "kpps", Value: kpps, Better: BetterHigher},
		}, metrics...),
	}
}

// TestCompareGateTrips pins the exit-1 semantics: an adverse move beyond
// tolerance fails, in-tolerance noise and improvement pass.
func TestCompareGateTrips(t *testing.T) {
	base := doc(stream(1000,
		Metric{Name: "p99_ns", Unit: "ns", Value: 10_000, Better: BetterLower},
	))
	cases := []struct {
		name       string
		cur        *Document
		wantFailed bool
	}{
		{"identical", doc(stream(1000, Metric{Name: "p99_ns", Value: 10_000, Better: BetterLower})), false},
		{"in-tolerance dip", doc(stream(960, Metric{Name: "p99_ns", Value: 10_000, Better: BetterLower})), false},
		{"improvement", doc(stream(2000, Metric{Name: "p99_ns", Value: 5_000, Better: BetterLower})), false},
		{"throughput regression", doc(stream(900, Metric{Name: "p99_ns", Value: 10_000, Better: BetterLower})), true},
		{"latency regression", doc(stream(1000, Metric{Name: "p99_ns", Value: 12_000, Better: BetterLower})), true},
	}
	for _, tc := range cases {
		rep := Compare(base, tc.cur, 5)
		if rep.Failed() != tc.wantFailed {
			t.Errorf("%s: failed=%v, want %v\n%s", tc.name, rep.Failed(), tc.wantFailed, rep)
		}
	}
}

// TestComparePerMetricTolerance asserts a metric's own tolerance (from the
// baseline document — the committed contract) overrides the default.
func TestComparePerMetricTolerance(t *testing.T) {
	base := doc(Result{Scenario: "rr", Metrics: []Metric{
		{Name: "p999_ns", Value: 1000, Better: BetterLower, Tolerance: 50},
		{Name: "kpps", Value: 1000, Better: BetterHigher},
	}})
	cur := doc(Result{Scenario: "rr", Metrics: []Metric{
		{Name: "p999_ns", Value: 1400, Better: BetterLower}, // +40% < 50% own tol
		{Name: "kpps", Value: 930, Better: BetterHigher},    // -7% > 5% default
	}})
	rep := Compare(base, cur, 5)
	if rep.Failures != 1 {
		t.Fatalf("want exactly the kpps failure, got\n%s", rep)
	}
	for _, c := range rep.Comparisons {
		switch c.Metric {
		case "p999_ns":
			if !c.Pass || c.Tolerance != 50 {
				t.Errorf("p999 should pass under its own 50%% tolerance: %+v", c)
			}
		case "kpps":
			if c.Pass || c.Tolerance != 5 {
				t.Errorf("kpps should fail under the 5%% default: %+v", c)
			}
		}
	}
}

// TestCompareMissingData pins the asymmetric missing-data rules.
func TestCompareMissingData(t *testing.T) {
	base := doc(
		stream(1000),
		Result{Scenario: "rr", Metrics: []Metric{{Name: "p99_ns", Value: 10, Better: BetterLower}}},
	)
	// Current lost the rr scenario and the kpps metric, gained a new one.
	cur := doc(
		Result{Scenario: "stream/fused", Metrics: []Metric{{Name: "new_metric", Value: 1}}},
		Result{Scenario: "burst", Metrics: []Metric{{Name: "kpps", Value: 5, Better: BetterHigher}}},
	)
	rep := Compare(base, cur, 5)
	if rep.Failures != 2 {
		t.Fatalf("want 2 failures (lost scenario + lost metric), got\n%s", rep)
	}
	var newOK, burstOK bool
	for _, c := range rep.Comparisons {
		if c.Metric == "new_metric" && c.Pass && c.Note == "not in baseline" {
			newOK = true
		}
		if c.Scenario == "burst" && c.Pass {
			burstOK = true
		}
	}
	if !newOK || !burstOK {
		t.Fatalf("new coverage must pass with a note:\n%s", rep)
	}
}

// TestCompareZeroBaseline pins the zero-anchor rules: no percentage off
// zero, but a dead BetterHigher metric staying dead is a failure.
func TestCompareZeroBaseline(t *testing.T) {
	base := doc(Result{Scenario: "s", Metrics: []Metric{
		{Name: "drops", Value: 0, Better: BetterLower},
		{Name: "kpps", Value: 0, Better: BetterHigher},
	}})
	cur := doc(Result{Scenario: "s", Metrics: []Metric{
		{Name: "drops", Value: 3, Better: BetterLower},
		{Name: "kpps", Value: 0, Better: BetterHigher},
	}})
	rep := Compare(base, cur, 5)
	if rep.Failures != 1 {
		t.Fatalf("want only the dead-kpps failure, got\n%s", rep)
	}
	for _, c := range rep.Comparisons {
		if c.Metric == "kpps" && c.Pass {
			t.Errorf("zero->zero BetterHigher must fail: %+v", c)
		}
		if c.Metric == "drops" && !c.Pass {
			t.Errorf("zero baseline BetterLower is not gated: %+v", c)
		}
	}
}

// TestCompareInformationalNeverGates asserts direction-less metrics are
// compared but cannot fail.
func TestCompareInformationalNeverGates(t *testing.T) {
	base := doc(Result{Scenario: "s", Metrics: []Metric{{Name: "packets", Value: 100}}})
	cur := doc(Result{Scenario: "s", Metrics: []Metric{{Name: "packets", Value: 1}}})
	if rep := Compare(base, cur, 5); rep.Failed() {
		t.Fatalf("informational metric tripped the gate:\n%s", rep)
	}
}

// TestDocumentRoundTrip asserts the on-disk format survives write + load.
func TestDocumentRoundTrip(t *testing.T) {
	d := &Document{
		Suite:  "nkload",
		Config: map[string]string{"duration": "2s", "seed": "7"},
		Results: []Result{stream(1234.5,
			Metric{Name: "p99_ns", Unit: "ns", Value: 42_000, Better: BetterLower, Tolerance: 30},
		)},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Suite != d.Suite || back.Config["seed"] != "7" || len(back.Results) != 1 {
		t.Fatalf("round trip mangled document: %+v", back)
	}
	m, ok := back.Results[0].Metric("p99_ns")
	if !ok || m.Tolerance != 30 || m.Better != BetterLower || m.Value != 42_000 {
		t.Fatalf("round trip mangled metric: %+v", m)
	}
	// A self-comparison of a loaded baseline passes trivially.
	if rep := Compare(back, back, 5); rep.Failed() {
		t.Fatalf("self-comparison failed:\n%s", rep)
	}
}

// TestReportString smoke-checks the CI table: failures first, marked.
func TestReportString(t *testing.T) {
	base := doc(stream(1000))
	cur := doc(stream(100))
	out := Compare(base, cur, 5).String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[1], "FAIL") {
		t.Fatalf("expected a leading FAIL row:\n%s", out)
	}
	if !strings.Contains(lines[len(lines)-1], "1 failed") {
		t.Fatalf("expected failure count in footer:\n%s", out)
	}
}
