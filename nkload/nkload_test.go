package nkload

import (
	"testing"
	"time"

	"netkit"
	"netkit/core"
	"netkit/internal/trace"
	"netkit/router"
)

func testFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	gen, err := trace.NewGenerator(trace.Config{Seed: 3, Flows: 16})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, n)
	for i := range frames {
		if frames[i], err = gen.NextFixed(64); err != nil {
			t.Fatal(err)
		}
	}
	return frames
}

// TestSinkRecordsAndRecycles pins the sink contract: counts, bytes, a
// latency observation per delivered packet, and wrapper recycling.
func TestSinkRecordsAndRecycles(t *testing.T) {
	s := NewSink()
	frames := testFrames(t, 8)
	batch := make([]*router.Packet, 0, len(frames))
	for _, f := range frames {
		batch = append(batch, s.Wrap(f))
	}
	if err := s.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if s.Delivered() != 8 {
		t.Fatalf("delivered %d, want 8", s.Delivered())
	}
	if lat := s.Latency(); lat.Count != 8 || lat.Quantile(0.5) <= 0 {
		t.Fatalf("latency histogram %+v", lat)
	}
	// A recycled wrapper must come back clean.
	p := s.Wrap(frames[0])
	if p.InPort != "" || p.Buf != nil {
		t.Fatalf("recycled wrapper not reset: %+v", p)
	}
	stats := s.Stats()
	var found bool
	for _, st := range stats {
		if st.Name == router.StatLatency && st.Kind == core.KindHistogram && st.Hist != nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("sink stats missing the latency histogram: %+v", stats)
	}
}

// TestFusedTargetRoundTrip drives frames through the fused topology and
// checks delivery + latency accounting.
func TestFusedTargetRoundTrip(t *testing.T) {
	tgt, err := Fused(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	frames := testFrames(t, 64)
	for i := 0; i < 4; i++ {
		if err := tgt.Inject(frames); err != nil {
			t.Fatal(err)
		}
	}
	if got := tgt.Delivered(); got != 256 {
		t.Fatalf("delivered %d, want 256", got)
	}
	if lat := tgt.Latency(); lat.Count != 256 {
		t.Fatalf("latency count %d, want 256", lat.Count)
	}
}

// TestShardedTargetStatsTree is the acceptance check that the harness and
// the meta-space read the same telemetry: after load, the capsule stats
// tree (netkit.Meta — what nkctl stats renders) carries latency
// histograms both at the sink and on the sharded plane's lanes, and the
// sink's packet count matches what the driver saw delivered.
func TestShardedTargetStatsTree(t *testing.T) {
	tgt, err := Sharded(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	frames := testFrames(t, 64)
	for i := 0; i < 8; i++ {
		if err := tgt.Inject(frames); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tgt.Delivered() < 512 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tgt.Delivered() != 512 {
		t.Fatalf("delivered %d, want 512", tgt.Delivered())
	}
	tree := netkit.Meta(tgt.System().Capsule()).Stats().Tree()
	sinkNode, ok := tree.Find("sink")
	if !ok {
		t.Fatal("no sink in the stats tree")
	}
	st, ok := sinkNode.Stat(router.StatLatency)
	if !ok || st.Kind != core.KindHistogram || st.Hist.Count != 512 {
		t.Fatalf("sink latency stat %+v, want histogram of 512", st)
	}
	// The sharded plane's per-lane histograms cover the same packets.
	var laneCount uint64
	for i := 0; i < 2; i++ {
		lane, ok := tree.Find("plane/shard" + string(rune('0'+i)))
		if !ok {
			t.Fatalf("no lane shard%d under plane", i)
		}
		ls, ok := lane.Stat(router.StatLatency)
		if !ok || ls.Hist == nil {
			t.Fatalf("lane shard%d missing latency histogram", i)
		}
		laneCount += ls.Hist.Count
	}
	if laneCount != 512 {
		t.Fatalf("lanes recorded %d, want 512", laneCount)
	}
	// Sink tail sits at or above the lane residence tail: the sink stamp
	// covers strictly more of each packet's life than the lane window.
	plane, _ := tree.Find("plane")
	ps, ok := plane.Stat(router.StatLatency)
	if !ok {
		t.Fatal("plane missing merged latency histogram")
	}
	if st.Hist.Quantile(0.99) < ps.Hist.Quantile(0.99)*0.5 {
		t.Fatalf("sink p99 %v implausibly below lane p99 %v",
			st.Hist.Quantile(0.99), ps.Hist.Quantile(0.99))
	}
}

// TestNetsimTargetDelivers drives the netsim-fronted topology.
func TestNetsimTargetDelivers(t *testing.T) {
	tgt, err := NetsimFronted(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	frames := testFrames(t, 32)
	if err := tgt.Inject(frames); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tgt.Delivered() < 32 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tgt.Delivered() != 32 {
		t.Fatalf("delivered %d of 32 across the simulated link", tgt.Delivered())
	}
}

// TestThrottleStallsInject pins the gate self-test hook: a throttled
// target injects measurably slower.
func TestThrottleStallsInject(t *testing.T) {
	tgt, err := Fused(Options{Throttle: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	frames := testFrames(t, 8)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := tgt.Inject(frames); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("3 throttled injects took %v, want >= 30ms", elapsed)
	}
}
