// Package drivers supplies the standard nkload traffic shapes, modeled on
// the classic netperf scenario taxonomy: STREAM (maximal throughput), RR
// (closed-loop request/response latency), CRR (connection/flow churn),
// Replay (Zipf-popularity IMIX-size realistic mix), and Burst (flash
// crowd). Every driver speaks only the nkload.Target surface, so each
// shape runs unchanged against the fused pipeline, the sharded plane, or
// the netsim-fronted capsule.
package drivers

import (
	"fmt"
	"runtime"
	"time"

	"netkit/internal/trace"
	"netkit/nkload"
	"netkit/nkload/results"
)

// pregen builds a reusable, immutable frame population: count frames of
// fixed ipLen bytes (or IMIX sizes when ipLen == 0) drawn from a
// deterministic Zipf flow generator. Drivers cycle these — generation
// cost stays out of the measured loop, and reuse is safe because nkload
// topologies only use non-mutating pipeline stages.
func pregen(o nkload.Options, count, ipLen int) ([][]byte, error) {
	gen, err := trace.NewGenerator(trace.Config{Seed: o.Seed, Flows: o.Flows})
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		var raw []byte
		if ipLen > 0 {
			raw, err = gen.NextFixed(ipLen)
		} else {
			raw, err = gen.Next()
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, raw)
	}
	return frames, nil
}

// stream pushes batches of pre-generated frames as fast as the target
// accepts them until the deadline.
func stream(t *nkload.Target, o nkload.Options, frames [][]byte) (uint64, error) {
	var sent uint64
	deadline := time.Now().Add(o.Duration)
	i := 0
	for time.Now().Before(deadline) {
		batch := make([][]byte, 0, o.Batch)
		for len(batch) < o.Batch {
			batch = append(batch, frames[i%len(frames)])
			i++
		}
		if err := t.Inject(batch); err != nil {
			return sent, err
		}
		sent += uint64(len(batch))
	}
	return sent, nil
}

// Stream is the maximal-throughput shape: fixed-size frames offered
// back-to-back in full batches. Its kpps is the headline number.
type Stream struct{}

// Name implements nkload.Driver.
func (Stream) Name() string { return "stream" }

// Run implements nkload.Driver.
func (Stream) Run(t *nkload.Target, o nkload.Options) (nkload.Outcome, error) {
	frames, err := pregen(o, 4*o.Flows, o.FrameBytes)
	if err != nil {
		return nkload.Outcome{}, err
	}
	sent, err := stream(t, o, frames)
	return nkload.Outcome{Sent: sent}, err
}

// RR is the closed-loop request/response shape: one frame in flight at a
// time, the next offered only after the previous reached the sink. Its
// p50/p99/p999 are honest per-operation latencies (no coordinated
// omission — the next request waits for the response), and ops_per_sec is
// the inverse of the full round trip.
type RR struct{}

// Name implements nkload.Driver.
func (RR) Name() string { return "rr" }

// Run implements nkload.Driver.
func (RR) Run(t *nkload.Target, o nkload.Options) (nkload.Outcome, error) {
	frames, err := pregen(o, 2*o.Flows, o.FrameBytes)
	if err != nil {
		return nkload.Outcome{}, err
	}
	var sent, ops, lost uint64
	deadline := time.Now().Add(o.Duration)
	one := make([][]byte, 1)
	for i := 0; time.Now().Before(deadline); i++ {
		want := t.Delivered() + 1
		one[0] = frames[i%len(frames)]
		if err := t.Inject(one); err != nil {
			return nkload.Outcome{Sent: sent}, err
		}
		sent++
		waitUntil := time.Now().Add(100 * time.Millisecond)
		for t.Delivered() < want {
			if !time.Now().Before(waitUntil) {
				lost++
				break
			}
			runtime.Gosched()
		}
		if t.Delivered() >= want {
			ops++
		}
	}
	elapsed := o.Duration.Seconds()
	return nkload.Outcome{Sent: sent, Extra: []results.Metric{
		{Name: "ops_per_sec", Unit: "ops/s", Value: float64(ops) / elapsed,
			Better: results.BetterHigher},
		{Name: "rr_lost", Unit: "ops", Value: float64(lost), Better: results.BetterLower},
	}}, nil
}

// CRR is the connection-churn shape (netperf TCP_CRR's spirit): tiny
// bursts, each from a different flow of a large population, so nothing
// amortises — flow dispatch, classification, and per-flow state churn on
// every handful of packets. conns_per_sec counts completed exchanges.
type CRR struct{}

// Name implements nkload.Driver.
func (CRR) Name() string { return "crr" }

// connFrames is the frames exchanged per "connection".
const connFrames = 4

// Run implements nkload.Driver.
func (CRR) Run(t *nkload.Target, o nkload.Options) (nkload.Outcome, error) {
	// A churn population much larger than the steady-state flow count.
	churn := o
	churn.Flows = o.Flows * 16
	frames, err := pregen(churn, churn.Flows, o.FrameBytes)
	if err != nil {
		return nkload.Outcome{}, err
	}
	var sent, conns uint64
	deadline := time.Now().Add(o.Duration)
	for i := 0; time.Now().Before(deadline); i++ {
		f := frames[i%len(frames)]
		batch := make([][]byte, connFrames)
		for j := range batch {
			batch[j] = f
		}
		if err := t.Inject(batch); err != nil {
			return nkload.Outcome{Sent: sent}, err
		}
		sent += connFrames
		conns++
	}
	return nkload.Outcome{Sent: sent, Extra: []results.Metric{
		{Name: "conns_per_sec", Unit: "conns/s", Value: float64(conns) / o.Duration.Seconds(),
			Better: results.BetterHigher},
	}}, nil
}

// Replay is the realistic-mix shape: Zipf flow popularity and IMIX frame
// sizes, streamed at full rate — the "whole router under production-ish
// traffic" number.
type Replay struct{}

// Name implements nkload.Driver.
func (Replay) Name() string { return "replay" }

// Run implements nkload.Driver.
func (Replay) Run(t *nkload.Target, o nkload.Options) (nkload.Outcome, error) {
	frames, err := pregen(o, 16*o.Flows, 0) // IMIX sizes
	if err != nil {
		return nkload.Outcome{}, err
	}
	var bytes uint64
	for _, f := range frames {
		bytes += uint64(len(f))
	}
	sent, err := stream(t, o, frames)
	return nkload.Outcome{Sent: sent, Extra: []results.Metric{
		{Name: "mean_frame_bytes", Unit: "bytes",
			Value: float64(bytes) / float64(len(frames))},
	}}, err
}

// Burst is the flash-crowd shape: full-rate bursts separated by idle gaps
// (duty cycle 40%). Tail latency under the leading edge of each burst —
// queues filling from empty — is what its p99/p999 capture; against the
// netsim-fronted topology the link queue can also drop honestly.
type Burst struct{}

// Name implements nkload.Driver.
func (Burst) Name() string { return "burst" }

// Run implements nkload.Driver.
func (Burst) Run(t *nkload.Target, o nkload.Options) (nkload.Outcome, error) {
	frames, err := pregen(o, 4*o.Flows, o.FrameBytes)
	if err != nil {
		return nkload.Outcome{}, err
	}
	const on, off = 20 * time.Millisecond, 30 * time.Millisecond
	var sent, bursts uint64
	deadline := time.Now().Add(o.Duration)
	i := 0
	for time.Now().Before(deadline) {
		burstEnd := time.Now().Add(on)
		for time.Now().Before(burstEnd) {
			batch := make([][]byte, 0, o.Batch)
			for len(batch) < o.Batch {
				batch = append(batch, frames[i%len(frames)])
				i++
			}
			if err := t.Inject(batch); err != nil {
				return nkload.Outcome{Sent: sent}, err
			}
			sent += uint64(len(batch))
		}
		bursts++
		time.Sleep(off)
	}
	return nkload.Outcome{Sent: sent, Extra: []results.Metric{
		{Name: "bursts", Unit: "bursts", Value: float64(bursts)},
	}}, nil
}

// Suite is the standard scenario set cmd/nkload runs and the committed
// baseline covers: every driver, spread across the three topologies.
func Suite() []nkload.Scenario {
	return []nkload.Scenario{
		{Name: "stream/fused", Driver: Stream{}, Topology: nkload.Fused},
		{Name: "stream/sharded", Driver: Stream{}, Topology: nkload.Sharded},
		{Name: "rr/sharded", Driver: RR{}, Topology: nkload.Sharded},
		{Name: "crr/sharded", Driver: CRR{}, Topology: nkload.Sharded},
		{Name: "replay/fused", Driver: Replay{}, Topology: nkload.Fused},
		{Name: "burst/netsim", Driver: Burst{}, Topology: nkload.NetsimFronted},
	}
}

// Extras are the opt-in scenarios outside the gated baseline suite: the
// real-socket UDP loopback topology pushes frames through actual kernel
// sockets, so its numbers move with kernel scheduling and socket-buffer
// sizing — too environment-sensitive to gate against a committed
// baseline by default. Select them explicitly: -scenarios rr/udp.
func Extras() []nkload.Scenario {
	return []nkload.Scenario{
		{Name: "rr/udp", Driver: RR{}, Topology: nkload.UDPLoopback},
		{Name: "stream/udp", Driver: Stream{}, Topology: nkload.UDPLoopback},
	}
}

// ByName resolves a comma-separated scenario selection against the suite
// plus the opt-in extras; the bare "all" keeps meaning the gated default
// suite only.
func ByName(selection string) ([]nkload.Scenario, error) {
	if selection == "" || selection == "all" {
		return Suite(), nil
	}
	all := append(Suite(), Extras()...)
	byName := make(map[string]nkload.Scenario, len(all))
	for _, sc := range all {
		byName[sc.Name] = sc
	}
	var out []nkload.Scenario
	for _, name := range splitComma(selection) {
		sc, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("drivers: unknown scenario %q", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
