package drivers

import (
	"testing"
	"time"

	"netkit/nkload"
	"netkit/nkload/results"
)

// quick shrinks a run to smoke-test size.
func quick(o nkload.Options) nkload.Options {
	o.Duration = 60 * time.Millisecond
	return o
}

// TestSuiteProducesUniformResults runs the whole standard suite briefly
// and asserts the ISSUE's acceptance shape: >= 4 distinct drivers, every
// scenario carrying kpps and p50/p99/p999 latency quantiles with sane
// ordering, reduced to one shared document schema.
func TestSuiteProducesUniformResults(t *testing.T) {
	doc, err := nkload.Run(Suite(), quick(nkload.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Suite != "nkload" {
		t.Fatalf("suite = %q", doc.Suite)
	}
	drivers := make(map[string]bool)
	for _, r := range doc.Results {
		drivers[r.Driver] = true
		kpps, ok := r.Metric("kpps")
		if !ok || kpps.Value <= 0 || kpps.Better != results.BetterHigher {
			t.Errorf("%s: bad kpps %+v", r.Scenario, kpps)
		}
		var q [3]results.Metric
		for i, name := range []string{"p50_ns", "p99_ns", "p999_ns"} {
			m, ok := r.Metric(name)
			if !ok || m.Better != results.BetterLower || m.Tolerance == 0 {
				t.Errorf("%s: bad %s %+v", r.Scenario, name, m)
			}
			q[i] = m
		}
		if !(q[0].Value > 0 && q[0].Value <= q[1].Value && q[1].Value <= q[2].Value) {
			t.Errorf("%s: quantiles not ordered: p50=%v p99=%v p999=%v",
				r.Scenario, q[0].Value, q[1].Value, q[2].Value)
		}
		if _, ok := r.Metric("b_op"); !ok {
			t.Errorf("%s: missing b_op", r.Scenario)
		}
		if _, ok := r.Metric("drops"); !ok {
			t.Errorf("%s: missing drops", r.Scenario)
		}
	}
	if len(drivers) < 4 {
		t.Fatalf("suite covered %d drivers, want >= 4: %v", len(drivers), drivers)
	}
	// A document self-compares clean at any tolerance.
	if rep := results.Compare(doc, doc, 1); rep.Failed() {
		t.Fatalf("self-comparison failed:\n%s", rep)
	}
}

// TestDriverExtras pins the driver-specific metrics.
func TestDriverExtras(t *testing.T) {
	o := quick(nkload.Options{})
	cases := []struct {
		sc     nkload.Scenario
		metric string
	}{
		{nkload.Scenario{Name: "rr", Driver: RR{}, Topology: nkload.Fused}, "ops_per_sec"},
		{nkload.Scenario{Name: "crr", Driver: CRR{}, Topology: nkload.Fused}, "conns_per_sec"},
		{nkload.Scenario{Name: "burst", Driver: Burst{}, Topology: nkload.Fused}, "bursts"},
		{nkload.Scenario{Name: "replay", Driver: Replay{}, Topology: nkload.Fused}, "mean_frame_bytes"},
	}
	for _, tc := range cases {
		r, err := nkload.RunScenario(tc.sc, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.sc.Name, err)
		}
		m, ok := r.Metric(tc.metric)
		if !ok || m.Value <= 0 {
			t.Errorf("%s: metric %s = %+v, want positive", tc.sc.Name, tc.metric, m)
		}
	}
}

// TestThrottledRunFailsGate is the in-process version of the CI gate
// self-test: an honest baseline, then a throttled rerun of the same
// scenario, must trip the tolerance gate — proving the gate detects a
// real slowdown rather than vacuously passing.
func TestThrottledRunFailsGate(t *testing.T) {
	o := quick(nkload.Options{})
	scs := []nkload.Scenario{{Name: "stream/fused", Driver: Stream{}, Topology: nkload.Fused}}
	baseline, err := nkload.Run(scs, o)
	if err != nil {
		t.Fatal(err)
	}
	slow := o
	slow.Throttle = 5 * time.Millisecond // ~12 batches instead of thousands
	throttled, err := nkload.Run(scs, slow)
	if err != nil {
		t.Fatal(err)
	}
	rep := results.Compare(baseline, throttled, 50)
	kppsFailed := false
	for _, c := range rep.Comparisons {
		if c.Metric == "kpps" && !c.Pass {
			kppsFailed = true
		}
	}
	if !rep.Failed() || !kppsFailed {
		t.Fatalf("throttled run should fail the gate on kpps:\n%s", rep)
	}
	// And an honest rerun must not fail on throughput. (Latency quantiles
	// are excluded here deliberately: this test binary runs concurrently
	// with the rest of `go test ./...`, so tail nanoseconds over a 60ms
	// window can legitimately blow any fixed tolerance. The CI perf job
	// gates the full metric set on a quiet runner with longer runs.)
	again, err := nkload.Run(scs, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range results.Compare(baseline, again, 60).Comparisons {
		if c.Metric == "kpps" && !c.Pass {
			t.Fatalf("honest rerun failed the gate on throughput: %+v", c)
		}
	}
}

// TestByName pins the CLI's scenario selection.
func TestByName(t *testing.T) {
	scs, err := ByName("stream/fused,rr/sharded")
	if err != nil || len(scs) != 2 || scs[0].Name != "stream/fused" || scs[1].Name != "rr/sharded" {
		t.Fatalf("selection = %+v, err %v", scs, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scenario must error")
	}
	all, err := ByName("all")
	if err != nil || len(all) != len(Suite()) {
		t.Fatalf("all = %d scenarios, err %v", len(all), err)
	}
}
