package nkload

import (
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/router"
)

// TypeSink is the load sink's registered component type name.
const TypeSink = "netkit.nkload.Sink"

// Sink terminates a load-test pipeline: it counts deliveries, records each
// packet's Born-to-sink latency into a core.Histogram, and recycles the
// packet wrappers the harness allocated. Because it implements core.IStats
// and publishes the histogram under router.StatLatency, the numbers a
// driver reports and the numbers `nkctl stats` (or an adapt rule) reads
// from the stats tree are the SAME recorder — the harness cannot drift
// from the telemetry it is supposed to exercise.
type Sink struct {
	*core.Base
	packets atomic.Uint64
	bytes   atomic.Uint64
	lat     *core.Histogram

	// pool recycles *router.Packet wrappers. Only the sink returns a
	// wrapper (after it is fully done with it), so a wrapper is never
	// reused while in flight; packets dropped mid-pipeline simply fall
	// out of circulation and the pool allocates replacements.
	pool sync.Pool
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	s := &Sink{Base: core.NewBase(TypeSink), lat: core.NewHistogram()}
	s.pool.New = func() any { return new(router.Packet) }
	s.Provide(router.IPacketPushID, s)
	return s
}

// Wrap draws a recycled packet wrapper around raw frame bytes and stamps
// its Born timestamp. The bytes are NOT copied: load drivers pregenerate
// immutable frames and topologies use non-mutating pipeline stages, so one
// frame may be in flight many times concurrently.
func (s *Sink) Wrap(raw []byte) *router.Packet {
	p := s.pool.Get().(*router.Packet)
	*p = router.Packet{Data: raw, Born: router.Nanotime()}
	return p
}

// take records one delivery and recycles the wrapper.
func (s *Sink) take(now int64, p *router.Packet) {
	s.bytes.Add(uint64(len(p.Data)))
	if p.Born > 0 && now > p.Born {
		s.lat.Record(uint64(now - p.Born))
	}
	p.Release()
	*p = router.Packet{}
	s.pool.Put(p)
}

// Push implements router.IPacketPush.
func (s *Sink) Push(p *router.Packet) error {
	s.packets.Add(1)
	s.take(router.Nanotime(), p)
	return nil
}

// PushBatch implements router.IPacketPushBatch with one clock read per
// batch.
func (s *Sink) PushBatch(batch []*router.Packet) error {
	s.packets.Add(uint64(len(batch)))
	now := router.Nanotime()
	for _, p := range batch {
		s.take(now, p)
	}
	return nil
}

// Delivered returns the packets delivered so far.
func (s *Sink) Delivered() uint64 { return s.packets.Load() }

// Latency returns a snapshot of the delivery-latency histogram.
func (s *Sink) Latency() *core.HistSnapshot { return s.lat.Snapshot() }

// Stats implements core.IStats: delivery counters plus the latency
// histogram, under the uniform router.StatLatency name.
func (s *Sink) Stats() []core.Stat {
	return []core.Stat{
		core.C("packets_in", "packets", s.packets.Load()),
		core.C("bytes_in", "bytes", s.bytes.Load()),
		core.H(router.StatLatency, "ns", s.lat.Snapshot()),
	}
}

var (
	_ router.IPacketPush      = (*Sink)(nil)
	_ router.IPacketPushBatch = (*Sink)(nil)
	_ core.IStats             = (*Sink)(nil)
	_ core.Component          = (*Sink)(nil)
)
