// Package nkload is the scenario-driver load harness: pluggable traffic
// drivers (nkload/drivers) push generated frames through a capsule built
// with netkit.Blueprint, a Sink at the tail records throughput and a
// Born-to-sink latency histogram, and every scenario reduces to one
// uniform results.Result whose metrics a tolerance gate can compare
// against a committed baseline (nkload/results, cmd/nkload). The paper's
// evaluation ran fixed benchmark programs by hand; this package makes the
// workload shapes first-class, so "did the fast path regress" is a CI
// question, not an archaeology project.
//
// The division of labour:
//
//   - A Topology builds the system under load: which capsule architecture
//     (fused single pipeline, sharded multi-lane plane, or fronted by a
//     simulated link) and how frames enter it. It returns a Target.
//   - A Driver (nkload/drivers) decides WHAT is offered and WHEN: maximal
//     streaming, paced request/response, flow churn, Zipf/IMIX replay,
//     bursts. Drivers only ever call Target.Inject and read Target
//     counters, so every driver runs against every topology.
//   - Run (run.go) owns measurement: it builds the target, runs the
//     driver, waits for drainage, and assembles the uniform metric set.
package nkload

import (
	"context"
	"fmt"
	"time"

	"netkit"
	"netkit/cf"
	"netkit/core"
	"netkit/internal/netsim"
	"netkit/internal/osabs"
	"netkit/router"
)

// Options parameterises one scenario run. The zero value is usable: every
// field has a small-but-honest default, chosen so the full suite stays a
// smoke-test-grade workload (CI runs it on shared runners).
type Options struct {
	// Duration bounds the driver's offered-load phase (default 300ms).
	Duration time.Duration
	// Batch is the frames per Inject call (default 64).
	Batch int
	// Flows is the generated flow population (default 64).
	Flows int
	// FrameBytes is the fixed IP length for fixed-size drivers
	// (default 64); the replay driver uses IMIX sizes instead.
	FrameBytes int
	// Shards is the lane count of sharded topologies (default 4).
	Shards int
	// Seed makes the generated traffic deterministic (default 1).
	Seed uint64
	// Throttle injects an artificial stall before every Inject call.
	// It exists for the perf-gate self-test: a throttled run must FAIL
	// the tolerance gate against an honest baseline, proving the gate
	// can actually catch a regression.
	Throttle time.Duration
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Flows <= 0 {
		o.Flows = 64
	}
	if o.FrameBytes <= 0 {
		o.FrameBytes = 64
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Target is a running system under load: the transport drivers inject
// into, the sink they read, and the capsule the meta-space sees.
type Target struct {
	sys      *netkit.System
	sink     *Sink
	send     func(raws [][]byte) error
	throttle time.Duration
	closers  []func()

	// Config echoes topology parameters into the result document.
	Config map[string]string
}

// Inject offers one batch of raw frames to the system under load. The
// frames must be treated as immutable by the topology's pipeline (the
// standard read-only stages: counters, classifiers, validators); drivers
// reuse pregenerated frames freely. Back-pressure is the topology's:
// Inject blocks like the real ingress would.
func (t *Target) Inject(raws [][]byte) error {
	if t.throttle > 0 {
		time.Sleep(t.throttle)
	}
	return t.send(raws)
}

// Delivered returns the packets that reached the sink.
func (t *Target) Delivered() uint64 { return t.sink.Delivered() }

// Latency returns the sink's Born-to-sink latency snapshot.
func (t *Target) Latency() *core.HistSnapshot { return t.sink.Latency() }

// System exposes the running system, so scenarios (and tests) can read
// the same stats tree operators see through netkit.Meta.
func (t *Target) System() *netkit.System { return t.sys }

// Close tears the target down.
func (t *Target) Close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

// Topology builds a Target for one scenario run.
type Topology func(o Options) (*Target, error)

// directSend wires a Target's send path straight into an entry component:
// frames are wrapped (and Born-stamped) by the sink's recycler and cross
// as one pooled batch.
func directSend(sink *Sink, entry router.IPacketPush) func([][]byte) error {
	return func(raws [][]byte) error {
		b := router.GetBatch()
		for _, raw := range raws {
			b = append(b, sink.Wrap(raw))
		}
		err := router.ForwardBatch(entry, b)
		router.PutBatch(b)
		return err
	}
}

// Fused builds the single-pipeline topology: a FastPath heading counter ->
// checksum validator -> sink, all in one capsule, no cross-goroutine
// hand-off. Since PR 8 the name is literal: the interceptor-free chain
// compiles into one fused plan (DESIGN.md §8), so this is the per-packet
// cost floor the sharded plane is compared to — and the scenario the
// perf-gate trajectory reads the fusion win from.
func Fused(o Options) (*Target, error) {
	o = o.withDefaults()
	sink := NewSink()
	sys, err := netkit.NewBlueprint("nkload").
		FastPath("fp").
		Insert("in", router.NewCounter()).
		Insert("val", router.NewChecksumValidator()).
		Insert("sink", sink).
		Pipe("fp", "in", "val", "sink").
		Build(context.Background())
	if err != nil {
		return nil, err
	}
	entry, err := entryPush(sys, "fp")
	if err != nil {
		return nil, err
	}
	return &Target{
		sys:      sys,
		sink:     sink,
		send:     directSend(sink, entry),
		throttle: o.Throttle,
		closers:  []func(){func() { _ = sys.Close(context.Background()) }},
		Config:   map[string]string{"topology": "fused"},
	}, nil
}

// Sharded builds the multi-lane topology: an RSS-dispatched sharded
// Router CF (per-lane latency histograms enabled) whose replicas each run
// counter -> validator, merging into the sink. The lane histograms and
// the sink histogram measure the same packets from the same Born stamp,
// so `nkctl stats` on this capsule shows live tail latency per lane.
func Sharded(o Options) (*Target, error) {
	o = o.withDefaults()
	sink := NewSink()
	replica := func(shard int, fw *cf.Framework) (string, error) {
		cnt := router.ShardName(shard, "cnt")
		val := router.ShardName(shard, "val")
		if err := fw.Admit(cnt, router.NewCounter()); err != nil {
			return "", err
		}
		if err := fw.Admit(val, router.NewChecksumValidator()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(cnt, "out", val, router.IPacketPushID); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(val, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return cnt, nil
	}
	sys, err := netkit.NewBlueprint("nkload").
		ShardsCfg("plane", router.ShardConfig{Shards: o.Shards, LatencyHistogram: true}, replica).
		Insert("sink", sink).
		Pipe("plane", "sink").
		Build(context.Background())
	if err != nil {
		return nil, err
	}
	entry, err := entryPush(sys, "plane")
	if err != nil {
		return nil, err
	}
	return &Target{
		sys:      sys,
		sink:     sink,
		send:     directSend(sink, entry),
		throttle: o.Throttle,
		closers:  []func(){func() { _ = sys.Close(context.Background()) }},
		Config: map[string]string{
			"topology": "sharded",
			"shards":   fmt.Sprintf("%d", o.Shards),
		},
	}, nil
}

// NetsimFronted builds the fused pipeline behind a simulated link: frames
// travel src -> rtr over an internal/netsim link (with queueing), and the
// receive handler wraps them into the capsule. Latency is measured from
// link egress (the handler's Born stamp), so the histogram reads capsule
// traversal; the link contributes realistic batching jitter and, when its
// queue overflows under burst drivers, honest drops.
func NetsimFronted(o Options) (*Target, error) {
	o = o.withDefaults()
	sink := NewSink()
	sys, err := netkit.NewBlueprint("nkload").
		Insert("in", router.NewCounter()).
		Insert("val", router.NewChecksumValidator()).
		Insert("sink", sink).
		Pipe("in", "val", "sink").
		Build(context.Background())
	if err != nil {
		return nil, err
	}
	entry, err := entryPush(sys, "in")
	if err != nil {
		return nil, err
	}
	w := netsim.NewNetwork()
	src, err := w.AddNode("src")
	if err != nil {
		w.Stop()
		_ = sys.Close(context.Background())
		return nil, err
	}
	rtr, err := w.AddNode("rtr")
	if err != nil {
		w.Stop()
		_ = sys.Close(context.Background())
		return nil, err
	}
	if err := w.Connect("src", "rtr", netsim.LinkConfig{Queue: 8192, Seed: o.Seed}); err != nil {
		w.Stop()
		_ = sys.Close(context.Background())
		return nil, err
	}
	const port = 7
	deliver := directSend(sink, entry)
	// Batch delivery: the zero-latency pump hands over whatever run of
	// frames queued behind the first one, so the wire -> capsule crossing
	// is paid per run, not per frame.
	rtr.RegisterBatch(port, func(_ string, payloads [][]byte) {
		_ = deliver(payloads)
	})
	return &Target{
		sys:      sys,
		sink:     sink,
		send:     func(raws [][]byte) error { return src.SendBatch("rtr", port, raws) },
		throttle: o.Throttle,
		closers: []func(){
			func() { _ = sys.Close(context.Background()) },
			w.Stop,
		},
		Config: map[string]string{"topology": "netsim"},
	}, nil
}

// UDPLoopback builds the real-socket topology: frames leave through a
// loopback UDP transmit socket, cross the kernel, and re-enter through an
// arena-backed receive device pumped by a busy-polling NICSource into the
// counter -> validator -> sink pipeline. Unlike the in-process topologies
// the measured path includes real syscalls (batched via sendmmsg/recvmmsg
// where supported), kernel socket queues, and honest overload drops —
// which also makes its numbers kernel-scheduling-sensitive, so the UDP
// scenarios live outside the gated default suite (drivers.Extras).
// Latency is measured from the pump's Born stamp (PumpConfig.StampBorn),
// so the histogram reads device-ingress-to-sink traversal.
func UDPLoopback(o Options) (*Target, error) {
	o = o.withDefaults()
	sink := NewSink()
	arena, err := osabs.NewFrameArena(osabs.DefaultUDPFrameSize, o.Batch, 16)
	if err != nil {
		return nil, err
	}
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "udp-rx", Listen: "127.0.0.1:0", Batch: o.Batch, Arena: arena,
	})
	if err != nil {
		return nil, err
	}
	tx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "udp-tx", Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: o.Batch,
	})
	if err != nil {
		_ = rx.Close()
		return nil, err
	}
	sys, err := netkit.NewBlueprint("nkload").
		DeviceSource("src", rx, nil, router.PumpConfig{
			Batch: o.Batch, Spin: 256, StampBorn: true,
		}).
		Insert("in", router.NewCounter()).
		Insert("val", router.NewChecksumValidator()).
		Insert("sink", sink).
		Pipe("src", "in", "val", "sink").
		Build(context.Background())
	if err != nil {
		_ = tx.Close()
		_ = rx.Close()
		return nil, err
	}
	return &Target{
		sys:      sys,
		sink:     sink,
		send:     func(raws [][]byte) error { _, err := tx.SendBatch(raws); return err },
		throttle: o.Throttle,
		// Close order (reverse of this list): devices first, so the pump
		// observes ErrClosed and drains its tail, then the system join.
		closers: []func(){
			func() { _ = sys.Close(context.Background()) },
			func() { _ = tx.Close() },
			func() { _ = rx.Close() },
		},
		Config: map[string]string{
			"topology": "udp-loopback",
			"backend":  udpBackend(),
		},
	}, nil
}

// udpBackend names the syscall backend compiled into this binary.
func udpBackend() string {
	if osabs.MmsgSupported() {
		return "mmsg"
	}
	return "portable"
}

// entryPush resolves a capsule component to the push interface drivers
// inject into.
func entryPush(sys *netkit.System, name string) (router.IPacketPush, error) {
	comp, ok := sys.Capsule().Component(name)
	if !ok {
		return nil, fmt.Errorf("nkload: no entry component %q", name)
	}
	push, ok := comp.(router.IPacketPush)
	if !ok {
		return nil, fmt.Errorf("nkload: entry %q does not provide IPacketPush", name)
	}
	return push, nil
}
