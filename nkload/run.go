package nkload

import (
	"fmt"
	"runtime"
	"time"

	"netkit/nkload/results"
)

// Driver is a pluggable traffic shape: it decides what frames to offer
// the target and when, through Target.Inject only, and reports what it
// sent. Everything it measures beyond the uniform metrics rides along in
// Outcome.Extra.
type Driver interface {
	// Name is the driver kind recorded in the result ("stream", "rr").
	Name() string
	// Run offers load until o.Duration elapses.
	Run(t *Target, o Options) (Outcome, error)
}

// Outcome is what a driver hands back to the measurement layer.
type Outcome struct {
	// Sent is the frames offered to the target.
	Sent uint64
	// Extra carries driver-specific metrics (ops/sec, bursts, ...).
	Extra []results.Metric
}

// Scenario pairs a driver with the topology it drives.
type Scenario struct {
	// Name is the result's scenario key ("stream/fused").
	Name string
	// Driver is the traffic shape.
	Driver Driver
	// Topology builds the system under load.
	Topology Topology
	// Tune optionally adjusts the run-wide options for this scenario.
	Tune func(Options) Options
}

// Default per-metric tolerances, in percent. Throughput uses the gate's
// default (a deliberate run-time choice, see cmd/nkload -tolerance);
// latency quantiles carry wide per-metric tolerances — graded by depth
// into the tail, because a p999 over a sub-second window is a handful of
// scheduler events — while allocation bytes per packet are
// near-deterministic, so they get a tight one.
const (
	TolP50Pct   = 75
	TolP99Pct   = 150
	TolP999Pct  = 250
	TolAllocPct = 25

	// latNoiseFloorNs is the latency below which quantile values are
	// dominated by scheduler jitter rather than the code under test;
	// such metrics get TolNoisePct regardless of depth.
	latNoiseFloorNs = 5_000
	TolNoisePct     = 300
)

// latTol grades a latency quantile's tolerance.
func latTol(valueNs, depthTol float64) float64 {
	if valueNs < latNoiseFloorNs {
		return TolNoisePct
	}
	return depthTol
}

// RunScenario builds the scenario's target, runs its driver, waits for
// the pipeline to drain, and reduces the run to the uniform metric set:
// kpps, drops, B/op, and the p50/p99/p999 of the sink's Born-to-sink
// latency histogram — the same histogram the capsule's stats tree shows.
func RunScenario(sc Scenario, o Options) (results.Result, error) {
	o = o.withDefaults()
	if sc.Tune != nil {
		o = sc.Tune(o)
	}
	t, err := sc.Topology(o)
	if err != nil {
		return results.Result{}, fmt.Errorf("nkload: %s: topology: %w", sc.Name, err)
	}
	defer t.Close()

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	out, err := sc.Driver.Run(t, o)
	if err != nil {
		return results.Result{}, fmt.Errorf("nkload: %s: driver: %w", sc.Name, err)
	}
	drain(t, out.Sent)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	delivered := t.Delivered()
	lat := t.Latency()
	var drops uint64
	if out.Sent > delivered {
		drops = out.Sent - delivered
	}
	// Allocation is charged per offered frame, not per delivered one:
	// a lossy scenario (burst over a shallow netsim queue) pays the
	// allocation cost for every frame it sends, and dividing by the
	// run-to-run-varying survivor count would make B/op noise, not signal.
	var bop float64
	if out.Sent > 0 {
		bop = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(out.Sent)
	} else if delivered > 0 {
		bop = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(delivered)
	}
	r := results.Result{
		Scenario: sc.Name,
		Driver:   sc.Driver.Name(),
		Config:   t.Config,
		Metrics: []results.Metric{
			{Name: "kpps", Unit: "kpps", Value: float64(delivered) / elapsed.Seconds() / 1000,
				Better: results.BetterHigher},
			{Name: "packets", Unit: "packets", Value: float64(delivered)},
			{Name: "drops", Unit: "packets", Value: float64(drops), Better: results.BetterLower},
			{Name: "p50_ns", Unit: "ns", Value: lat.Quantile(0.50),
				Better: results.BetterLower, Tolerance: latTol(lat.Quantile(0.50), TolP50Pct)},
			{Name: "p99_ns", Unit: "ns", Value: lat.Quantile(0.99),
				Better: results.BetterLower, Tolerance: latTol(lat.Quantile(0.99), TolP99Pct)},
			{Name: "p999_ns", Unit: "ns", Value: lat.Quantile(0.999),
				Better: results.BetterLower, Tolerance: latTol(lat.Quantile(0.999), TolP999Pct)},
			{Name: "b_op", Unit: "B/op", Value: bop,
				Better: results.BetterLower, Tolerance: TolAllocPct},
		},
	}
	r.Metrics = append(r.Metrics, out.Extra...)
	return r, nil
}

// drain waits for offered frames to finish traversing the target: until
// the sink has seen everything sent, or deliveries stop growing (frames
// legitimately dropped en route), or a hard deadline passes.
func drain(t *Target, sent uint64) {
	deadline := time.Now().Add(5 * time.Second)
	last := t.Delivered()
	for time.Now().Before(deadline) {
		if sent > 0 && last >= sent {
			return
		}
		time.Sleep(2 * time.Millisecond)
		cur := t.Delivered()
		if cur == last {
			return
		}
		last = cur
	}
}

// Run executes a list of scenarios into one result document.
func Run(scenarios []Scenario, o Options) (*results.Document, error) {
	o = o.withDefaults()
	doc := &results.Document{
		Suite: "nkload",
		Config: map[string]string{
			"duration": o.Duration.String(),
			"batch":    fmt.Sprintf("%d", o.Batch),
			"flows":    fmt.Sprintf("%d", o.Flows),
			"shards":   fmt.Sprintf("%d", o.Shards),
			"seed":     fmt.Sprintf("%d", o.Seed),
		},
	}
	if o.Throttle > 0 {
		doc.Config["throttle"] = o.Throttle.String()
	}
	for _, sc := range scenarios {
		r, err := RunScenario(sc, o)
		if err != nil {
			return nil, err
		}
		doc.Results = append(doc.Results, r)
	}
	return doc, nil
}
