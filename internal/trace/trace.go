// Package trace generates deterministic synthetic packet workloads for the
// benchmark harness: the substitute for the production router traces the
// paper's testbed would observe (see the substitution table in DESIGN.md
// §2.4). Flows follow a Zipf popularity law and packet sizes follow the
// classic IMIX mix, both driven by a splitmix64 PRNG so every experiment
// is replayable from a seed.
package trace

import (
	"fmt"
	"math"
	"net/netip"

	"netkit/packet"
)

// RNG is a splitmix64 PRNG: tiny, fast, and deterministic across platforms.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IMIX is the standard simple-IMIX packet size distribution: 7 parts 64 B,
// 4 parts 570 B, 1 part 1518 B (sizes here are IP lengths, so the L2
// 18-byte overhead is removed).
var IMIX = []struct {
	Size   int
	Weight int
}{
	{46, 7}, {552, 4}, {1500, 1},
}

// SizeIMIX draws an IMIX packet size.
func (r *RNG) SizeIMIX() int {
	total := 0
	for _, e := range IMIX {
		total += e.Weight
	}
	n := r.Intn(total)
	for _, e := range IMIX {
		if n < e.Weight {
			return e.Size
		}
		n -= e.Weight
	}
	return IMIX[0].Size
}

// Zipf draws ranks in [0, n) with P(k) ∝ 1/(k+1)^s using inverse-CDF over a
// precomputed table — deterministic and allocation-free per draw.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler of n ranks with exponent s (s=1 is classic).
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: zipf n=%d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("trace: zipf s=%f", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FlowSpec identifies one synthetic flow.
type FlowSpec struct {
	Src, Dst         netip.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Generator produces packets over a fixed population of flows.
type Generator struct {
	rng   *RNG
	zipf  *Zipf
	flows []FlowSpec
	ttl   uint8
}

// Config parameterises a Generator.
type Config struct {
	Seed     uint64
	Flows    int     // flow population size (default 64)
	ZipfS    float64 // popularity exponent (default 1.1)
	TTL      uint8   // initial TTL (default 64)
	UDPShare int     // percentage of UDP flows 0..100 (default 80)
	V6Share  int     // percentage of IPv6 flows 0..100 (default 0)
}

// NewGenerator builds a deterministic generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Flows <= 0 {
		cfg.Flows = 64
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.TTL == 0 {
		cfg.TTL = 64
	}
	if cfg.UDPShare == 0 {
		cfg.UDPShare = 80
	}
	if cfg.UDPShare < 0 || cfg.UDPShare > 100 || cfg.V6Share < 0 || cfg.V6Share > 100 {
		return nil, fmt.Errorf("trace: bad shares udp=%d v6=%d", cfg.UDPShare, cfg.V6Share)
	}
	rng := NewRNG(cfg.Seed)
	z, err := NewZipf(rng, cfg.Flows, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	g := &Generator{rng: rng, zipf: z, ttl: cfg.TTL}
	for i := 0; i < cfg.Flows; i++ {
		f := FlowSpec{
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: uint16(1 + rng.Intn(1024)),
		}
		if rng.Intn(100) < cfg.UDPShare {
			f.Proto = packet.ProtoUDP
		} else {
			f.Proto = packet.ProtoTCP
		}
		if rng.Intn(100) < cfg.V6Share {
			f.Src = v6Addr(rng)
			f.Dst = v6Addr(rng)
		} else {
			f.Src = v4Addr(rng, 10)
			f.Dst = v4Addr(rng, 192)
		}
		g.flows = append(g.flows, f)
	}
	return g, nil
}

func v4Addr(rng *RNG, first byte) netip.Addr {
	return netip.AddrFrom4([4]byte{first, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
}

func v6Addr(rng *RNG) netip.Addr {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x0d, 0xb8
	for i := 4; i < 16; i++ {
		b[i] = byte(rng.Intn(256))
	}
	return netip.AddrFrom16(b)
}

// Flows returns the flow population (copy).
func (g *Generator) Flows() []FlowSpec {
	return append([]FlowSpec(nil), g.flows...)
}

// Next produces the next packet: a Zipf-chosen flow with an IMIX size.
func (g *Generator) Next() ([]byte, error) {
	f := g.flows[g.zipf.Draw()]
	size := g.rng.SizeIMIX()
	return g.build(f, size)
}

// NextFixed produces the next packet with a fixed IP length (64-byte-style
// minimum packets stress per-packet overhead; E3 sweeps this).
func (g *Generator) NextFixed(ipLen int) ([]byte, error) {
	f := g.flows[g.zipf.Draw()]
	return g.build(f, ipLen)
}

func (g *Generator) build(f FlowSpec, ipLen int) ([]byte, error) {
	if f.Src.Is4() {
		hdr := packet.IPv4HeaderLen + packet.UDPHeaderLen
		if f.Proto == packet.ProtoTCP {
			hdr = packet.IPv4HeaderLen + packet.TCPMinHeaderLen
		}
		if ipLen < hdr {
			ipLen = hdr
		}
		payload := make([]byte, ipLen-hdr)
		if f.Proto == packet.ProtoTCP {
			return packet.BuildTCP4(f.Src, f.Dst, f.SrcPort, f.DstPort, g.ttl, packet.TCPAck, payload)
		}
		return packet.BuildUDP4(f.Src, f.Dst, f.SrcPort, f.DstPort, g.ttl, payload)
	}
	hdr := packet.IPv6HeaderLen + packet.UDPHeaderLen
	if ipLen < hdr {
		ipLen = hdr
	}
	return packet.BuildUDP6(f.Src, f.Dst, f.SrcPort, f.DstPort, g.ttl, make([]byte, ipLen-hdr))
}

// Batch produces n packets.
func (g *Generator) Batch(n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p, err := g.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
