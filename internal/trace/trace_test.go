package trace

import (
	"testing"
	"testing/quick"

	"netkit/packet"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n<=0")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestSizeIMIXDistribution(t *testing.T) {
	r := NewRNG(3)
	counts := map[int]int{}
	const n = 24000
	for i := 0; i < n; i++ {
		counts[r.SizeIMIX()]++
	}
	if len(counts) != 3 {
		t.Fatalf("sizes seen: %v", counts)
	}
	// 7:4:1 ratios within generous tolerance.
	small, mid, big := counts[46], counts[552], counts[1500]
	if small < mid || mid < big {
		t.Fatalf("ordering violated: %d %d %d", small, mid, big)
	}
	if float64(small)/float64(n) < 0.5 {
		t.Fatalf("small share too low: %d/%d", small, n)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(4)
	z, err := NewZipf(r, 100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("no skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should dominate: more than 10% of draws for s=1.1, n=100.
	if counts[0] < 2000 {
		t.Fatalf("rank0 share too low: %d", counts[0])
	}
}

func TestZipfValidation(t *testing.T) {
	r := NewRNG(5)
	if _, err := NewZipf(r, 0, 1); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := NewZipf(r, 10, 0); err == nil {
		t.Fatal("want error for s=0")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() [][]byte {
		g, err := NewGenerator(Config{Seed: 99, Flows: 16})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Batch(50)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("packet %d differs across same-seed runs", i)
		}
	}
}

func TestGeneratorPacketsParse(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 7, Flows: 32, V6Share: 30})
	if err != nil {
		t.Fatal(err)
	}
	sawV4, sawV6 := false, false
	for i := 0; i < 300; i++ {
		p, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch packet.Version(p) {
		case 4:
			sawV4 = true
			if _, err := packet.ParseIPv4(p); err != nil {
				t.Fatalf("generated v4 unparseable: %v", err)
			}
			if err := packet.ValidateIPv4Checksum(p); err != nil {
				t.Fatalf("generated v4 bad checksum: %v", err)
			}
		case 6:
			sawV6 = true
			if _, err := packet.ParseIPv6(p); err != nil {
				t.Fatalf("generated v6 unparseable: %v", err)
			}
		default:
			t.Fatalf("bad version %d", packet.Version(p))
		}
		if _, err := packet.Flow(p); err != nil {
			t.Fatalf("flow extraction: %v", err)
		}
	}
	if !sawV4 || !sawV6 {
		t.Fatalf("version mix missing: v4=%v v6=%v", sawV4, sawV6)
	}
}

func TestGeneratorFixedSize(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 8, Flows: 4, UDPShare: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{46, 100, 1500} {
		p, err := g.NextFixed(want)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != want {
			t.Fatalf("len = %d, want %d", len(p), want)
		}
	}
	// Requests below minimum header size are clamped, not errors.
	p, err := g.NextFixed(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < packet.IPv4HeaderLen+packet.UDPHeaderLen {
		t.Fatalf("clamped len = %d", len(p))
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{UDPShare: 150}); err == nil {
		t.Fatal("want error for bad udp share")
	}
	if _, err := NewGenerator(Config{V6Share: -1}); err == nil {
		t.Fatal("want error for bad v6 share")
	}
}

func TestGeneratorFlowPopulation(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 9, Flows: 10})
	if err != nil {
		t.Fatal(err)
	}
	flows := g.Flows()
	if len(flows) != 10 {
		t.Fatalf("flows = %d", len(flows))
	}
	flows[0].SrcPort = 0
	if g.Flows()[0].SrcPort == 0 {
		t.Fatal("Flows() exposed internal slice")
	}
}

// Property: every generated packet round-trips through flow extraction with
// a flow drawn from the configured population.
func TestQuickGeneratedFlowsInPopulation(t *testing.T) {
	check := func(seed uint64) bool {
		g, err := NewGenerator(Config{Seed: seed, Flows: 8, UDPShare: 100})
		if err != nil {
			return false
		}
		pop := map[string]bool{}
		for _, f := range g.Flows() {
			pop[f.Src.String()+f.Dst.String()] = true
		}
		for i := 0; i < 20; i++ {
			p, err := g.Next()
			if err != nil {
				return false
			}
			k, err := packet.Flow(p)
			if err != nil {
				return false
			}
			if !pop[k.Src.String()+k.Dst.String()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
