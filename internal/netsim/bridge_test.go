package netsim

import (
	"fmt"
	"testing"
	"time"

	"netkit/internal/osabs"
)

// TestChannelBridgeDeliversBatches drives frames over a zero-latency
// link into a KernelChannel via the bridge and dequeues them with
// GetBatchInto: the full netsim wire -> stratum-1 kernel-channel
// crossing, batched on both sides.
func TestChannelBridgeDeliversBatches(t *testing.T) {
	w := mkNet(t, "wire", "host")
	defer w.Stop()
	if err := w.Connect("wire", "host", LinkConfig{Queue: 512}); err != nil {
		t.Fatal(err)
	}
	src, _ := w.Node("wire")
	dst, _ := w.Node("host")
	kch, err := osabs.NewKernelChannel(512)
	if err != nil {
		t.Fatal(err)
	}
	defer kch.Close()
	dst.RegisterBatch(9, ChannelBridge(kch))

	const frames = 100
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("f-%03d", i))
	}
	if err := src.SendBatch("host", 9, payloads); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < frames && time.Now().Before(deadline) {
		before := len(got)
		got = kch.GetBatchInto(got, frames)
		if len(got) == before {
			time.Sleep(time.Millisecond)
		}
	}
	if len(got) != frames {
		t.Fatalf("bridged %d of %d frames", len(got), frames)
	}
	for i, f := range got {
		if want := fmt.Sprintf("f-%03d", i); string(f) != want {
			t.Fatalf("frame %d: got %q want %q", i, f, want)
		}
	}
	if passed, dropped := kch.Stats(); passed != frames || dropped != 0 {
		t.Fatalf("channel stats passed=%d dropped=%d, want %d/0", passed, dropped, frames)
	}
}

// TestChannelBridgeOverflowCountsDrops verifies that bridged frames a
// full channel refuses land in the channel's own drop counter rather
// than vanishing or blocking the pump.
func TestChannelBridgeOverflowCountsDrops(t *testing.T) {
	w := mkNet(t, "wire", "host")
	defer w.Stop()
	if err := w.Connect("wire", "host", LinkConfig{Queue: 256}); err != nil {
		t.Fatal(err)
	}
	src, _ := w.Node("wire")
	dst, _ := w.Node("host")
	kch, err := osabs.NewKernelChannel(8)
	if err != nil {
		t.Fatal(err)
	}
	defer kch.Close()
	dst.RegisterBatch(9, ChannelBridge(kch))

	const frames = 32
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	if err := src.SendBatch("host", 9, payloads); err != nil {
		t.Fatal(err)
	}
	// Nobody dequeues: the channel fills to depth 8 and the bridge must
	// account the remainder as drops.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p, d := kch.Stats(); p+d == frames {
			if p != 8 {
				t.Fatalf("passed %d frames into a depth-8 channel", p)
			}
			if d != frames-8 {
				t.Fatalf("dropped %d, want %d", d, frames-8)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	p, d := kch.Stats()
	t.Fatalf("stats never settled: passed=%d dropped=%d", p, d)
}
