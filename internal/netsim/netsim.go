// Package netsim is the multi-node network substrate used by the stratum-3
// and stratum-4 experiments: named nodes joined by duplex links with
// configurable latency, loss and queueing. It replaces the paper's
// physical testbed (see the substitution table in DESIGN.md §2.4): the
// code above it — signalling agents, spawning coordinators, active-packet
// EEs — is the code under test and is identical to what would run over
// real sockets.
//
// Frames carry a one-byte protocol tag so several subsystems (signalling,
// spawnet data, active packets) can share a node.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors.
var (
	// ErrNodeExists indicates a duplicate node name.
	ErrNodeExists = errors.New("netsim: node exists")
	// ErrNoNode indicates an unknown node.
	ErrNoNode = errors.New("netsim: no such node")
	// ErrNoLink indicates a missing adjacency.
	ErrNoLink = errors.New("netsim: no such link")
	// ErrLinkDown indicates a send over an administratively-down link.
	ErrLinkDown = errors.New("netsim: link down")
	// ErrStopped indicates use of a stopped network.
	ErrStopped = errors.New("netsim: network stopped")
	// ErrNoRoute indicates path computation failed.
	ErrNoRoute = errors.New("netsim: no route")
)

// Handler consumes frames delivered to a node for one protocol tag.
type Handler func(from string, payload []byte)

// BatchHandler consumes whole frame batches delivered to a node for one
// protocol tag: the receive side of the batched fast path. The payloads
// slice belongs to the pump and must not be retained after the call (the
// payload bytes themselves are the sender's, exactly as with Handler).
type BatchHandler func(from string, payloads [][]byte)

// LinkConfig parameterises one duplex link.
type LinkConfig struct {
	Latency time.Duration // one-way delivery delay
	LossPct float64       // 0..100 percentage of frames dropped
	Queue   int           // per-direction in-flight queue (default 256)
	Seed    uint64        // loss PRNG seed (deterministic)
}

// direction is one half of a duplex link.
type direction struct {
	cfg   LinkConfig
	to    *Node
	ch    chan frame
	down  atomic.Bool
	drops atomic.Uint64
	sent  atomic.Uint64
	rng   uint64
	rngMu sync.Mutex
}

type frame struct {
	from    string
	proto   byte
	payload []byte
}

// next returns a deterministic uniform [0,100) from the direction's PRNG.
func (d *direction) next() float64 {
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	return float64(d.rng%10000) / 100
}

// Node is one simulated network element.
type Node struct {
	name string
	net  *Network

	mu            sync.RWMutex
	peers         map[string]*direction // outgoing, keyed by neighbour
	handlers      map[byte]Handler
	batchHandlers map[byte]BatchHandler
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Register installs the handler for a protocol tag (replacing any
// previous one).
func (n *Node) Register(proto byte, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[proto] = h
}

// RegisterBatch installs a batch handler for a protocol tag. When both a
// batch and a per-frame handler are registered for the same tag, the
// batch handler wins: the pump hands it whatever run of same-tag frames
// it drained in one wakeup, so a busy link amortises the hand-off while
// an idle one still delivers single frames promptly.
func (n *Node) RegisterBatch(proto byte, h BatchHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.batchHandlers == nil {
		n.batchHandlers = make(map[byte]BatchHandler)
	}
	n.batchHandlers[proto] = h
}

// RegisterQueues installs a multi-queue receive path for a protocol tag:
// the netsim analogue of a multi-queue NIC with RSS. Each delivered frame
// is routed to queues[hash(from, payload) % len(queues)], so frames that
// hash alike (one flow, under a flow hash) always land on the same queue
// and keep their arrival order — the property a sharded data plane needs
// from its ingress. It replaces any previous handler for proto.
func (n *Node) RegisterQueues(proto byte, hash func(from string, payload []byte) uint32, queues ...Handler) error {
	if len(queues) == 0 {
		return fmt.Errorf("netsim: %s: RegisterQueues needs >=1 queue", n.name)
	}
	if hash == nil {
		return fmt.Errorf("netsim: %s: RegisterQueues needs a hash", n.name)
	}
	qs := append([]Handler(nil), queues...)
	n.Register(proto, func(from string, payload []byte) {
		qs[int(hash(from, payload)%uint32(len(qs)))](from, payload)
	})
	return nil
}

// Neighbors returns adjacent node names, sorted.
func (n *Node) Neighbors() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Send transmits a frame to a directly connected neighbour.
func (n *Node) Send(neighbor string, proto byte, payload []byte) error {
	n.net.opMu.RLock()
	defer n.net.opMu.RUnlock()
	if n.net.stopped.Load() {
		return ErrStopped
	}
	n.mu.RLock()
	d, ok := n.peers[neighbor]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("netsim: %s->%s: %w", n.name, neighbor, ErrNoLink)
	}
	if d.down.Load() {
		return fmt.Errorf("netsim: %s->%s: %w", n.name, neighbor, ErrLinkDown)
	}
	if d.cfg.LossPct > 0 && d.next() < d.cfg.LossPct {
		d.drops.Add(1)
		return nil // silently lost, like the real thing
	}
	f := frame{from: n.name, proto: proto, payload: payload}
	select {
	case d.ch <- f:
		d.sent.Add(1)
		return nil
	default:
		d.drops.Add(1)
		return nil // queue overflow: dropped
	}
}

// SendBatch transmits frames to a directly connected neighbour in order,
// resolving the link once for the whole batch (the netsim arm of the
// batched fast path, DESIGN.md §4). Loss, link-down and queue-overflow
// semantics are applied per frame exactly as Send applies them, so a
// SendBatch is observationally identical to len(payloads) Sends — the
// delivery order at the receiver is the same, only the per-frame overhead
// differs. The payloads slice is not retained.
func (n *Node) SendBatch(neighbor string, proto byte, payloads [][]byte) error {
	n.net.opMu.RLock()
	defer n.net.opMu.RUnlock()
	if n.net.stopped.Load() {
		return ErrStopped
	}
	n.mu.RLock()
	d, ok := n.peers[neighbor]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("netsim: %s->%s: %w", n.name, neighbor, ErrNoLink)
	}
	for _, payload := range payloads {
		// Down is re-checked per frame, like N individual Sends would: a
		// link taken down mid-batch stops the remainder.
		if d.down.Load() {
			return fmt.Errorf("netsim: %s->%s: %w", n.name, neighbor, ErrLinkDown)
		}
		if d.cfg.LossPct > 0 && d.next() < d.cfg.LossPct {
			d.drops.Add(1)
			continue
		}
		select {
		case d.ch <- frame{from: n.name, proto: proto, payload: payload}:
			d.sent.Add(1)
		default:
			d.drops.Add(1)
		}
	}
	return nil
}

// deliver invokes the destination handler. A batch handler registered
// for the tag receives a one-frame batch, so latency links (which pace
// frames individually) still feed batch-only receivers.
func (n *Node) deliver(f frame) {
	n.mu.RLock()
	bh := n.batchHandlers[f.proto]
	h := n.handlers[f.proto]
	n.mu.RUnlock()
	if bh != nil {
		bh(f.from, [][]byte{f.payload})
		return
	}
	if h != nil {
		h(f.from, f.payload)
	}
}

// deliverRun delivers a drained run of frames, handing each maximal
// consecutive same-sender same-proto span to the batch handler when one
// is registered and falling back to per-frame delivery otherwise.
// Spans never reorder across each other, so delivery order matches what
// len(frames) individual deliver calls would produce. Handlers run
// outside the node lock, exactly as deliver runs them. scratch is
// pump-owned payload storage, returned for reuse.
func (n *Node) deliverRun(frames []frame, scratch [][]byte) [][]byte {
	for i := 0; i < len(frames); {
		f := frames[i]
		j := i + 1
		for j < len(frames) && frames[j].proto == f.proto && frames[j].from == f.from {
			j++
		}
		n.mu.RLock()
		bh := n.batchHandlers[f.proto]
		h := n.handlers[f.proto]
		n.mu.RUnlock()
		switch {
		case bh != nil:
			scratch = scratch[:0]
			for _, fr := range frames[i:j] {
				scratch = append(scratch, fr.payload)
			}
			bh(f.from, scratch)
		case h != nil:
			for _, fr := range frames[i:j] {
				h(fr.from, fr.payload)
			}
		}
		i = j
	}
	return scratch
}

// Network is a collection of nodes and links with running delivery pumps.
type Network struct {
	mu      sync.RWMutex
	nodes   map[string]*Node
	dirs    []*direction
	wg      sync.WaitGroup
	stopped atomic.Bool

	// opMu fences frame injection against Stop: senders hold the read
	// side for the duration of one Send/SendBatch, Stop takes the write
	// side before closing direction channels, so a send never races a
	// close (found by the -race CI job).
	opMu sync.RWMutex
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{nodes: make(map[string]*Node)}
}

// AddNode creates a node.
func (w *Network) AddNode(name string) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("netsim: empty node name")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.nodes[name]; ok {
		return nil, fmt.Errorf("netsim: %q: %w", name, ErrNodeExists)
	}
	n := &Node{
		name:     name,
		net:      w,
		peers:    make(map[string]*direction),
		handlers: make(map[byte]Handler),
	}
	w.nodes[name] = n
	return n, nil
}

// Node returns a node by name.
func (w *Network) Node(name string) (*Node, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n, ok := w.nodes[name]
	if !ok {
		return nil, fmt.Errorf("netsim: %q: %w", name, ErrNoNode)
	}
	return n, nil
}

// Nodes returns all node names, sorted.
func (w *Network) Nodes() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.nodes))
	for n := range w.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Connect joins two nodes with a duplex link and starts its pumps.
func (w *Network) Connect(a, b string, cfg LinkConfig) error {
	if w.stopped.Load() {
		return ErrStopped
	}
	na, err := w.Node(a)
	if err != nil {
		return err
	}
	nb, err := w.Node(b)
	if err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("netsim: self-link on %q", a)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9e3779b97f4a7c15
	}
	mk := func(to *Node, seed uint64) *direction {
		return &direction{cfg: cfg, to: to, ch: make(chan frame, cfg.Queue), rng: seed}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped.Load() {
		// Re-checked under the lock Stop closes channels under, so a
		// racing Connect cannot start pumps Stop will never join.
		return ErrStopped
	}
	if _, dup := na.peers[b]; dup {
		return fmt.Errorf("netsim: link %s-%s: %w", a, b, ErrNodeExists)
	}
	dab := mk(nb, cfg.Seed)
	dba := mk(na, cfg.Seed^0xabcdef)
	na.mu.Lock()
	na.peers[b] = dab
	na.mu.Unlock()
	nb.mu.Lock()
	nb.peers[a] = dba
	nb.mu.Unlock()
	w.dirs = append(w.dirs, dab, dba)
	for _, d := range []*direction{dab, dba} {
		w.wg.Add(1)
		go w.pump(d)
	}
	return nil
}

// pumpBatch bounds how many queued frames a zero-latency pump drains
// per wakeup before handing them downstream.
const pumpBatch = 64

// pump delivers frames for one direction until the network stops.
// Latency links pace every frame individually (the sleep IS the link
// model); zero-latency links drain whatever has queued behind the first
// frame and deliver it as one run, the netsim analogue of a NIC raising
// one interrupt for a ring's worth of frames.
func (w *Network) pump(d *direction) {
	defer w.wg.Done()
	if d.cfg.Latency > 0 {
		for f := range d.ch {
			time.Sleep(d.cfg.Latency)
			d.to.deliver(f)
		}
		return
	}
	staged := make([]frame, 0, pumpBatch)
	scratch := make([][]byte, 0, pumpBatch)
	for f := range d.ch {
		staged = append(staged[:0], f)
		for more := true; more && len(staged) < pumpBatch; {
			select {
			case f2, ok := <-d.ch:
				if !ok {
					// Closed mid-drain: deliver what we hold; the outer
					// range will observe the close and exit.
					more = false
					break
				}
				staged = append(staged, f2)
			default:
				more = false
			}
		}
		scratch = d.to.deliverRun(staged, scratch)
	}
}

// SetLinkDown marks both directions of a link up or down.
func (w *Network) SetLinkDown(a, b string, down bool) error {
	na, err := w.Node(a)
	if err != nil {
		return err
	}
	nb, err := w.Node(b)
	if err != nil {
		return err
	}
	na.mu.RLock()
	dab, ok1 := na.peers[b]
	na.mu.RUnlock()
	nb.mu.RLock()
	dba, ok2 := nb.peers[a]
	nb.mu.RUnlock()
	if !ok1 || !ok2 {
		return fmt.Errorf("netsim: link %s-%s: %w", a, b, ErrNoLink)
	}
	dab.down.Store(down)
	dba.down.Store(down)
	return nil
}

// LinkStats reports (sent, dropped) for the a→b direction.
func (w *Network) LinkStats(a, b string) (sent, dropped uint64, err error) {
	na, err := w.Node(a)
	if err != nil {
		return 0, 0, err
	}
	na.mu.RLock()
	d, ok := na.peers[b]
	na.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("netsim: link %s-%s: %w", a, b, ErrNoLink)
	}
	return d.sent.Load(), d.drops.Load(), nil
}

// Stop closes all pumps and waits for them. The network is unusable
// afterwards.
func (w *Network) Stop() {
	// The write side of opMu waits out every in-flight Send/SendBatch and
	// blocks new ones behind the stopped flag, making the channel closes
	// below safe against concurrent senders.
	w.opMu.Lock()
	if w.stopped.Swap(true) {
		w.opMu.Unlock()
		return
	}
	w.mu.Lock()
	for _, d := range w.dirs {
		close(d.ch)
	}
	w.mu.Unlock()
	w.opMu.Unlock()
	w.wg.Wait()
}

// ShortestPath computes a minimum-hop path between two nodes (BFS),
// including both endpoints.
func (w *Network) ShortestPath(from, to string) ([]string, error) {
	if _, err := w.Node(from); err != nil {
		return nil, err
	}
	if _, err := w.Node(to); err != nil {
		return nil, err
	}
	if from == to {
		return []string{from}, nil
	}
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n, _ := w.Node(cur)
		for _, nb := range n.Neighbors() {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == to {
				var path []string
				for at := to; at != ""; at = prev[at] {
					path = append([]string{at}, path...)
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("netsim: %s->%s: %w", from, to, ErrNoRoute)
}

// Line builds a linear topology n0-n1-...-n{k-1} and returns the node
// names; a convenience for tests and benchmarks.
func Line(w *Network, prefix string, k int, cfg LinkConfig) ([]string, error) {
	if k < 1 {
		return nil, fmt.Errorf("netsim: line of %d", k)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
		if _, err := w.AddNode(names[i]); err != nil {
			return nil, err
		}
	}
	for i := 1; i < k; i++ {
		if err := w.Connect(names[i-1], names[i], cfg); err != nil {
			return nil, err
		}
	}
	return names, nil
}
