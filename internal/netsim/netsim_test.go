package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func mkNet(t *testing.T, names ...string) *Network {
	t.Helper()
	w := NewNetwork()
	for _, n := range names {
		if _, err := w.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// collector gathers delivered frames.
type collector struct {
	mu     sync.Mutex
	frames []string
	ch     chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) handler(from string, payload []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, from+":"+string(payload))
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			c.mu.Lock()
			got := len(c.frames)
			c.mu.Unlock()
			t.Fatalf("delivered %d of %d", got, n)
		}
	}
}

func TestAddNodeAndLookup(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if _, err := w.AddNode("a"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("want ErrNodeExists, got %v", err)
	}
	if _, err := w.AddNode(""); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := w.Node("ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
	if nodes := w.Nodes(); len(nodes) != 2 || nodes[0] != "a" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestConnectAndSend(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	nb, _ := w.Node("b")
	nb.Register(1, col.handler)
	na, _ := w.Node("a")
	if err := na.Send("b", 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if col.frames[0] != "a:hello" {
		t.Fatalf("frame = %q", col.frames[0])
	}
	sent, drops, err := w.LinkStats("a", "b")
	if err != nil || sent != 1 || drops != 0 {
		t.Fatalf("stats = %d/%d %v", sent, drops, err)
	}
}

func TestConnectValidation(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "a", LinkConfig{}); err == nil {
		t.Fatal("want error for self link")
	}
	if err := w.Connect("a", "ghost", LinkConfig{}); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Connect("a", "b", LinkConfig{}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("want duplicate link error, got %v", err)
	}
}

func TestSendNoLink(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	na, _ := w.Node("a")
	if err := na.Send("b", 1, nil); !errors.Is(err, ErrNoLink) {
		t.Fatalf("want ErrNoLink, got %v", err)
	}
}

func TestProtocolDemux(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	c1, c2 := newCollector(), newCollector()
	nb, _ := w.Node("b")
	nb.Register(1, c1.handler)
	nb.Register(2, c2.handler)
	na, _ := w.Node("a")
	if err := na.Send("b", 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := na.Send("b", 2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	c1.wait(t, 1)
	c2.wait(t, 1)
	if c1.frames[0] != "a:one" || c2.frames[0] != "a:two" {
		t.Fatalf("demux broken: %v %v", c1.frames, c2.frames)
	}
}

func TestUnregisteredProtocolIgnored(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	if err := na.Send("b", 42, []byte("void")); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert beyond "no panic/deadlock".
	time.Sleep(10 * time.Millisecond)
}

func TestLinkDown(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLinkDown("a", "b", true); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	if err := na.Send("b", 1, nil); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("want ErrLinkDown, got %v", err)
	}
	if err := w.SetLinkDown("a", "b", false); err != nil {
		t.Fatal(err)
	}
	if err := na.Send("b", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLinkDown("a", "ghost", true); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
}

func TestDeterministicLoss(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{LossPct: 50, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	nb, _ := w.Node("b")
	nb.Register(1, col.handler)
	na, _ := w.Node("a")
	const n = 400
	for i := 0; i < n; i++ {
		if err := na.Send("b", 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sent, drops, err := w.LinkStats("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sent+drops != n {
		t.Fatalf("accounting: %d+%d != %d", sent, drops, n)
	}
	if drops < n/4 || drops > 3*n/4 {
		t.Fatalf("loss = %d of %d, want near half", drops, n)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	const lat = 30 * time.Millisecond
	if err := w.Connect("a", "b", LinkConfig{Latency: lat}); err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	nb, _ := w.Node("b")
	nb.Register(1, col.handler)
	na, _ := w.Node("a")
	start := time.Now()
	if err := na.Send("b", 1, nil); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("delivered in %v, want >= %v", elapsed, lat)
	}
}

func TestStopIdempotentAndRefusesSend(t *testing.T) {
	w := mkNet(t, "a", "b")
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	w.Stop()
	w.Stop()
	na, _ := w.Node("a")
	if err := na.Send("b", 1, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if err := w.Connect("a", "b", LinkConfig{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestShortestPath(t *testing.T) {
	w := NewNetwork()
	defer w.Stop()
	names, err := Line(w, "n", 5, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := w.ShortestPath("n0", "n4")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 || path[0] != "n0" || path[4] != "n4" {
		t.Fatalf("path = %v", path)
	}
	_ = names
	// Add a shortcut and verify BFS takes it.
	if err := w.Connect("n0", "n4", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	path, err = w.ShortestPath("n0", "n4")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("shortcut ignored: %v", path)
	}
	if p, err := w.ShortestPath("n0", "n0"); err != nil || len(p) != 1 {
		t.Fatalf("self path = %v %v", p, err)
	}
	if _, err := w.AddNode("island"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ShortestPath("n0", "island"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
	if _, err := w.ShortestPath("ghost", "n0"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	// Long latency + tiny queue: floods overflow.
	if err := w.Connect("a", "b", LinkConfig{Latency: 50 * time.Millisecond, Queue: 2}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	for i := 0; i < 20; i++ {
		if err := na.Send("b", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	_, drops, err := w.LinkStats("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if drops == 0 {
		t.Fatal("no overflow drops")
	}
}

func TestLineValidation(t *testing.T) {
	w := NewNetwork()
	defer w.Stop()
	if _, err := Line(w, "x", 0, LinkConfig{}); err == nil {
		t.Fatal("want error")
	}
}

// TestSendBatchOrderingMatchesSend drives identically seeded lossy links
// with the same frame sequence — per-frame Send on one, one SendBatch on
// the other — and requires identical delivered sequences: the batched
// fast path must be observationally equivalent to N individual sends.
func TestSendBatchOrderingMatchesSend(t *testing.T) {
	w := mkNet(t, "a", "b", "c", "d")
	defer w.Stop()
	cfg := LinkConfig{LossPct: 30, Seed: 424242}
	if err := w.Connect("a", "b", cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Connect("c", "d", cfg); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[string][]byte{}
	recorder := func(name string) Handler {
		return func(_ string, payload []byte) {
			mu.Lock()
			got[name] = append(got[name], payload[0])
			mu.Unlock()
		}
	}
	nb, _ := w.Node("b")
	nb.Register(7, recorder("b"))
	nd, _ := w.Node("d")
	nd.Register(7, recorder("d"))

	const n = 100
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	na, _ := w.Node("a")
	for _, f := range frames {
		if err := na.Send("b", 7, f); err != nil {
			t.Fatal(err)
		}
	}
	nc, _ := w.Node("c")
	if err := nc.SendBatch("d", 7, frames); err != nil {
		t.Fatal(err)
	}

	sentAB, _, _ := w.LinkStats("a", "b")
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		bn, dn := len(got["b"]), len(got["d"])
		mu.Unlock()
		if uint64(bn) == sentAB && bn == dn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: b=%d d=%d sent=%d", bn, dn, sentAB)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got["b"]) == 0 || len(got["b"]) == n {
		t.Fatalf("loss model inert: delivered %d of %d", len(got["b"]), n)
	}
	if string(got["b"]) != string(got["d"]) {
		t.Fatalf("delivery diverged:\nper-frame %v\nbatched   %v", got["b"], got["d"])
	}
	sentCD, dropsCD, _ := w.LinkStats("c", "d")
	_, dropsAB, _ := w.LinkStats("a", "b")
	if sentAB != sentCD || dropsAB != dropsCD {
		t.Fatalf("link stats diverged: sent %d/%d drops %d/%d", sentAB, sentCD, dropsAB, dropsCD)
	}
}

func TestRegisterQueuesValidation(t *testing.T) {
	w := mkNet(t, "a")
	n, _ := w.Node("a")
	if err := n.RegisterQueues(1, func(string, []byte) uint32 { return 0 }); err == nil {
		t.Fatal("no queues accepted")
	}
	if err := n.RegisterQueues(1, nil, func(string, []byte) {}); err == nil {
		t.Fatal("nil hash accepted")
	}
}

// TestRegisterQueuesDemux proves the multi-queue receive path: frames are
// routed to queues by hash, same-hash frames stay on one queue in arrival
// order, and different hashes spread across queues.
func TestRegisterQueuesDemux(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	nb, _ := w.Node("b")

	queues := make([]*collector, 3)
	handlers := make([]Handler, 3)
	for i := range queues {
		queues[i] = newCollector()
		handlers[i] = queues[i].handler
	}
	// Hash on the first payload byte: the test's stand-in flow key.
	if err := nb.RegisterQueues(7, func(_ string, p []byte) uint32 {
		return uint32(p[0])
	}, handlers...); err != nil {
		t.Fatal(err)
	}

	const perFlow = 20
	for seq := 0; seq < perFlow; seq++ {
		for flow := byte(0); flow < 9; flow++ {
			if err := na.Send("b", 7, []byte{flow, byte(seq)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := make([]int, 3)
	for flow := byte(0); flow < 9; flow++ {
		want[int(flow)%3] += perFlow
	}
	for i, c := range queues {
		c.wait(t, want[i])
	}
	for i, c := range queues {
		c.mu.Lock()
		perFlowSeq := make(map[byte]byte)
		for _, f := range c.frames {
			payload := f[len("a:"):]
			flow, seq := payload[0], payload[1]
			if int(flow)%3 != i {
				t.Errorf("queue %d received flow %d", i, flow)
			}
			if seq != perFlowSeq[flow] {
				t.Errorf("queue %d flow %d: seq %d, want %d", i, flow, seq, perFlowSeq[flow])
			}
			perFlowSeq[flow]++
		}
		c.mu.Unlock()
	}
}

// TestStopRacesSend drives Stop concurrently with a storm of senders; under
// -race this guards the opMu fence between frame injection and channel
// close.
func TestStopRacesSend(t *testing.T) {
	w := mkNet(t, "a", "b")
	if err := w.Connect("a", "b", LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				if err := na.Send("b", 1, []byte{1}); errors.Is(err, ErrStopped) {
					return
				}
				if j%100 == 0 {
					_ = na.SendBatch("b", 1, [][]byte{{2}, {3}})
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	w.Stop()
	wg.Wait()
	if err := na.Send("b", 1, []byte{1}); !errors.Is(err, ErrStopped) {
		t.Fatalf("send after stop: %v", err)
	}
}

// batchCollector gathers delivered batches, preserving batch boundaries.
type batchCollector struct {
	mu        sync.Mutex
	batches   [][]string
	total     int
	ch        chan struct{}
	firstWait time.Duration
	waited    bool
}

func newBatchCollector() *batchCollector {
	return &batchCollector{ch: make(chan struct{}, 4096)}
}

func (c *batchCollector) handler(from string, payloads [][]byte) {
	c.mu.Lock()
	if c.firstWait > 0 && !c.waited {
		// Park inside the first delivery so the sender's remaining frames
		// queue behind it, making subsequent drains multi-frame.
		c.waited = true
		c.mu.Unlock()
		time.Sleep(c.firstWait)
		c.mu.Lock()
	}
	b := make([]string, 0, len(payloads))
	for _, p := range payloads {
		b = append(b, from+":"+string(p))
	}
	c.batches = append(c.batches, b)
	n := len(payloads)
	c.total += n
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.ch <- struct{}{}
	}
}

func (c *batchCollector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			c.mu.Lock()
			got := c.total
			c.mu.Unlock()
			t.Fatalf("delivered %d of %d", got, n)
		}
	}
}

func TestRegisterBatchDeliversRuns(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{Queue: 1024}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	nb, _ := w.Node("b")
	bc := newBatchCollector()
	bc.firstWait = 20 * time.Millisecond
	nb.RegisterBatch(7, bc.handler)

	const frames = 256
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	if err := na.SendBatch("b", 7, payloads); err != nil {
		t.Fatal(err)
	}
	bc.wait(t, frames)

	bc.mu.Lock()
	defer bc.mu.Unlock()
	// Order across batch boundaries must match send order.
	idx := 0
	for _, b := range bc.batches {
		for _, f := range b {
			want := "a:" + string([]byte{byte(idx)})
			if f != want {
				t.Fatalf("frame %d: got %q want %q", idx, f, want)
			}
			idx++
		}
	}
	if idx != frames {
		t.Fatalf("delivered %d of %d", idx, frames)
	}
	// With the first delivery parked, the remaining 255 frames queued up
	// and must have arrived in far fewer handler calls than frames.
	if len(bc.batches) >= frames/2 {
		t.Fatalf("%d batches for %d frames: zero-latency pump is not draining runs", len(bc.batches), frames)
	}
}

func TestBatchHandlerOnLatencyLink(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	nb, _ := w.Node("b")
	bc := newBatchCollector()
	nb.RegisterBatch(7, bc.handler)
	for i := 0; i < 3; i++ {
		if err := na.Send("b", 7, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bc.wait(t, 3)
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if len(bc.batches) != 3 {
		t.Fatalf("latency link delivered %d batches for 3 frames, want per-frame pacing", len(bc.batches))
	}
	for i, b := range bc.batches {
		if len(b) != 1 || b[0] != "a:"+string([]byte{byte(i)}) {
			t.Fatalf("batch %d: %v", i, b)
		}
	}
}

func TestDeliverRunSplitsMixedProtoSpans(t *testing.T) {
	w := mkNet(t, "a", "b")
	defer w.Stop()
	if err := w.Connect("a", "b", LinkConfig{Queue: 64}); err != nil {
		t.Fatal(err)
	}
	na, _ := w.Node("a")
	nb, _ := w.Node("b")

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 64)
	bc := newBatchCollector()
	bc.firstWait = 20 * time.Millisecond
	nb.RegisterBatch(1, func(from string, payloads [][]byte) {
		bc.handler(from, payloads)
		mu.Lock()
		for _, p := range payloads {
			order = append(order, "b1:"+string(p))
		}
		mu.Unlock()
		for range payloads {
			done <- struct{}{}
		}
	})
	nb.Register(2, func(from string, payload []byte) {
		mu.Lock()
		order = append(order, "h2:"+string(payload))
		mu.Unlock()
		done <- struct{}{}
	})

	seq := []struct {
		proto byte
		pay   string
	}{{1, "a"}, {1, "b"}, {2, "c"}, {2, "d"}, {1, "e"}}
	for _, s := range seq {
		if err := na.Send("b", s.proto, []byte(s.pay)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < len(seq); i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("delivered %d of %d", i, len(seq))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"b1:a", "b1:b", "h2:c", "h2:d", "b1:e"}
	for i, g := range order {
		if g != want[i] {
			t.Fatalf("order[%d]=%q want %q (full: %v)", i, g, want[i], order)
		}
	}
}
