// bridge.go couples netsim links to the osabs stratum-1 primitives: a
// ChannelBridge turns a node's delivered frame batches into
// osabs.KernelChannel.PutBatch calls, so simulated traffic enters a
// capsule through the same kernel-channel mouth a real dataplane uses —
// one lock/op round per delivered run instead of one per frame.
package netsim

import "netkit/internal/osabs"

// ChannelBridge returns a BatchHandler that forwards every delivered
// batch into ch via PutBatch. Frames that overflow the channel are
// dropped silently (PutBatch already accounts them in the channel's
// drop counter), matching the lossy-ingress semantics of a full NIC
// ring; a closed channel likewise swallows the batch, since a stopped
// capsule cannot apply backpressure to a simulated wire.
func ChannelBridge(ch *osabs.KernelChannel) BatchHandler {
	return func(_ string, payloads [][]byte) {
		_, _ = ch.PutBatch(payloads)
	}
}
