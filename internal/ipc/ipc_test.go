package ipc

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

var (
	srcA = netip.MustParseAddr("10.0.0.1")
	dstA = netip.MustParseAddr("192.168.1.1")
)

func udpPkt(t *testing.T, port uint16) *router.Packet {
	t.Helper()
	b, err := packet.BuildUDP4(srcA, dstA, 1000, port, 64, []byte("remote"))
	if err != nil {
		t.Fatal(err)
	}
	return router.NewPacket(b)
}

// bomb panics on push: the crash-containment fixture.
type bomb struct{ *core.Base }

func (b *bomb) Push(*router.Packet) error { panic("bomb detonated") }

func testRegistry(t *testing.T) *core.ComponentRegistry {
	t.Helper()
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})
	reg.MustRegister(router.TypeClassifier, func(map[string]string) (core.Component, error) {
		return router.NewClassifier("match", "default")
	})
	reg.MustRegister("test.Bomb", func(map[string]string) (core.Component, error) {
		b := &bomb{Base: core.NewBase("test.Bomb")}
		b.Provide(router.IPacketPushID, b)
		return b, nil
	})
	return reg
}

func TestInstantiateAndPush(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ann := rc.Annotations()["netkit.remote"]; ann != "true" {
		t.Fatal("missing remote annotation")
	}
	if _, ok := rc.Provided(router.IPacketPushID); !ok {
		t.Fatal("stand-in does not provide IPacketPush")
	}
	if err := rc.Push(udpPkt(t, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiateUnknownType(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	_, err := client.Instantiate("x", "test.Unknown", nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestRemoteOutputFlowsBack(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Counter's "out" receptacle is mirrored locally: bind it inside a
	// local capsule to a local collector.
	cap := core.NewCapsule("parent")
	collect := &localSink{Base: core.NewBase("test.Sink")}
	collect.Provide(router.IPacketPushID, collect)
	if err := cap.Insert("remote", rc); err != nil {
		t.Fatal(err)
	}
	if err := cap.Insert("collect", collect); err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Bind("remote", "out", "collect", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := rc.Push(udpPkt(t, uint16(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for collect.count() < n {
		select {
		case <-deadline:
			t.Fatalf("round-tripped %d of %d", collect.count(), n)
		case <-time.After(time.Millisecond):
		}
	}
	if rc.Emitted() != n {
		t.Fatalf("emitted = %d", rc.Emitted())
	}
}

type localSink struct {
	*core.Base
	mu   sync.Mutex
	pkts int
}

func (s *localSink) Push(p *router.Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkts++
	return nil
}

func (s *localSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pkts
}

func TestEmissionWithoutBindingCounted(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Push(udpPkt(t, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for rc.Lost() < 1 {
		select {
		case <-deadline:
			t.Fatalf("lost = %d, want 1", rc.Lost())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestCrashContainment(t *testing.T) {
	client, host, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("b", "test.Bomb", nil)
	if err != nil {
		t.Fatal(err)
	}
	err = rc.Push(udpPkt(t, 1))
	if !errors.Is(err, ErrContained) {
		t.Fatalf("want ErrContained, got %v", err)
	}
	_ = host
	// The host survives: further instantiation succeeds.
	rc2, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatalf("host died with the component: %v", err)
	}
	if err := rc2.Push(udpPkt(t, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteClassifier(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cls", router.TypeClassifier, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Provided(router.IClassifierID); !ok {
		t.Fatal("classifier interface not mirrored")
	}
	outs := rc.FilterOutputs()
	if len(outs) != 2 {
		t.Fatalf("outputs = %v", outs)
	}
	id, err := rc.RegisterFilter("udp and dst port 53", 5, "match")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero filter id")
	}
	if _, err := rc.RegisterFilter("udp", 5, "ghost"); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote for bad output, got %v", err)
	}
	if err := rc.UnregisterFilter(id); err != nil {
		t.Fatal(err)
	}
	if err := rc.UnregisterFilter(id); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote for double unregister, got %v", err)
	}
}

func TestRemoteSatisfiesRouterCFTrustRule(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc.SetAnnotation(core.AnnotTrust, "untrusted")
	cap := core.NewCapsule("strict-parent")
	fw, err := router.NewFramework(cap, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("untrusted-remote", rc); err != nil {
		t.Fatalf("remote stand-in should satisfy strict trust rule: %v", err)
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanup()
	if err := rc.Push(udpPkt(t, 1)); err == nil {
		t.Fatal("push succeeded after close")
	}
	if _, err := client.Instantiate("x", router.TypeCounter, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestConcurrentRemotePushes(t *testing.T) {
	client, _, cleanup := HostPair(testRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := rc.Push(udpPkt(t, 53)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
