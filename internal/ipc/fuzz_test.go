package ipc

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"netkit/core"
	"netkit/router"
)

// fuzzRegistry builds the registry used by the equivalence fuzz without a
// *testing.T (fuzz workers call it from F.Fuzz closures).
func fuzzRegistry() *core.ComponentRegistry {
	reg := core.NewComponentRegistry()
	reg.MustRegister("test.MarkerBomb", func(map[string]string) (core.Component, error) {
		m := &markerBomb{
			Base: core.NewBase("test.MarkerBomb"),
			out:  core.NewReceptacle[router.IPacketPush](router.IPacketPushID),
		}
		m.Provide(router.IPacketPushID, m)
		m.AddReceptacle("out", m.out)
		return m, nil
	})
	return reg
}

// payloadSink records every payload it receives, in order.
type payloadSink struct {
	*core.Base
	mu   sync.Mutex
	pkts [][]byte
}

func (s *payloadSink) Push(p *router.Packet) error {
	s.mu.Lock()
	s.pkts = append(s.pkts, append([]byte(nil), p.Data...))
	s.mu.Unlock()
	p.Release()
	return nil
}

func (s *payloadSink) snapshot() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pkts
}

// carvePayloads splits fuzz input into 1..24-byte packet payloads.
func carvePayloads(data []byte) [][]byte {
	var out [][]byte
	for len(data) > 0 && len(out) < 256 {
		n := 1 + int(data[0])%24
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// fuzzRun drives the payloads through one isolated markerBomb in batches
// of batchSize and reports what the other side observed: forwarded
// payloads in order, total failed-packet count, whether a containment
// error surfaced, the client's emission counter, and the hosted
// component's own delivery count.
func fuzzRun(t *testing.T, payloads [][]byte, batchSize int, cfg Config) (fwd [][]byte, failed int, contained bool, emitted, delivered uint64) {
	t.Helper()
	client, host, cleanup := HostPairCfg(fuzzRegistry(), cfg)
	defer cleanup()
	rc, err := client.Instantiate("mb", "test.MarkerBomb", nil)
	if err != nil {
		t.Fatal(err)
	}
	cap := core.NewCapsule("parent")
	sink := &payloadSink{Base: core.NewBase("test.PayloadSink")}
	sink.Provide(router.IPacketPushID, sink)
	if err := cap.Insert("remote", rc); err != nil {
		t.Fatal(err)
	}
	if err := cap.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Bind("remote", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(payloads); start += batchSize {
		end := start + batchSize
		if end > len(payloads) {
			end = len(payloads)
		}
		batch := make([]*router.Packet, 0, end-start)
		for _, pl := range payloads[start:end] {
			batch = append(batch, router.NewPacket(append([]byte(nil), pl...)))
		}
		err := rc.PushBatch(batch)
		failed += router.FailedPackets(err, len(batch))
		if errors.Is(err, ErrContained) {
			contained = true
		}
	}
	ferr := rc.Flush()
	failed += router.FailedPackets(ferr, len(payloads))
	if errors.Is(ferr, ErrContained) {
		contained = true
	}
	comp, ok := host.capsule.Component("mb")
	if !ok {
		t.Fatal("hosted component vanished")
	}
	impl, _ := comp.Provided(router.IPacketPushID)
	delivered = impl.(*markerBomb).delivered.Load()
	return sink.snapshot(), failed, contained, rc.Emitted(), delivered
}

// FuzzIPCEquivalence pins the tentpole's semantic contract: the batched,
// pipelined binary transport delivers exactly what the synchronous
// per-packet gob path delivers — same forwarded payloads in the same
// order, same per-packet failure cardinality, same containment signal,
// same per-component counters — for arbitrary payloads, batch geometries
// and mid-batch panics (payloads starting with 0xFF detonate the hosted
// component).
func FuzzIPCEquivalence(f *testing.F) {
	f.Add([]byte("hello world this is a packet stream"), uint8(3))
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1))
	f.Add(bytes.Repeat([]byte{7, 0xFF, 9}, 40), uint8(5))
	f.Add([]byte{}, uint8(8))
	f.Add(bytes.Repeat([]byte{0xFF}, 16), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, batchSel uint8) {
		payloads := carvePayloads(data)
		batchSize := 1 + int(batchSel)%9
		bFwd, bFailed, bContained, bEmitted, bDelivered :=
			fuzzRun(t, payloads, batchSize, Config{})
		gFwd, gFailed, gContained, gEmitted, gDelivered :=
			fuzzRun(t, payloads, batchSize, Config{ForceGob: true})
		if len(bFwd) != len(gFwd) {
			t.Fatalf("forwarded count: binary %d, gob %d", len(bFwd), len(gFwd))
		}
		for i := range bFwd {
			if !bytes.Equal(bFwd[i], gFwd[i]) {
				t.Fatalf("payload %d diverges: binary %x, gob %x", i, bFwd[i], gFwd[i])
			}
		}
		if bFailed != gFailed {
			t.Fatalf("failed count: binary %d, gob %d", bFailed, gFailed)
		}
		if bContained != gContained {
			t.Fatalf("containment: binary %v, gob %v", bContained, gContained)
		}
		if bEmitted != gEmitted {
			t.Fatalf("emitted: binary %d, gob %d", bEmitted, gEmitted)
		}
		if bDelivered != gDelivered {
			t.Fatalf("delivered: binary %d, gob %d", bDelivered, gDelivered)
		}
	})
}
