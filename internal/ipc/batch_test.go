package ipc

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netkit/core"
	"netkit/router"
)

// markerBomb counts and forwards clean packets but panics on any packet
// whose first byte is 0xFF — the mid-batch crash fixture.
type markerBomb struct {
	*core.Base
	out       *core.Receptacle[router.IPacketPush]
	delivered atomic.Uint64
}

func (m *markerBomb) Push(p *router.Packet) error {
	if len(p.Data) > 0 && p.Data[0] == 0xFF {
		panic("marker bomb")
	}
	m.delivered.Add(1)
	if next, ok := m.out.Get(); ok {
		return next.Push(p)
	}
	p.Release()
	return nil
}

// slowSink sleeps per packet: the fixture that keeps a window full.
type slowSink struct {
	*core.Base
	delay time.Duration
}

func (s *slowSink) Push(p *router.Packet) error {
	time.Sleep(s.delay)
	p.Release()
	return nil
}

func batchRegistry(t *testing.T) *core.ComponentRegistry {
	t.Helper()
	reg := testRegistry(t)
	reg.MustRegister("test.MarkerBomb", func(map[string]string) (core.Component, error) {
		m := &markerBomb{
			Base: core.NewBase("test.MarkerBomb"),
			out:  core.NewReceptacle[router.IPacketPush](router.IPacketPushID),
		}
		m.Provide(router.IPacketPushID, m)
		m.AddReceptacle("out", m.out)
		return m, nil
	})
	reg.MustRegister("test.Slow", func(map[string]string) (core.Component, error) {
		s := &slowSink{Base: core.NewBase("test.Slow"), delay: 2 * time.Millisecond}
		s.Provide(router.IPacketPushID, s)
		return s, nil
	})
	return reg
}

// seqSink records the payload sequence numbers it receives, in order.
type seqSink struct {
	*core.Base
	mu   sync.Mutex
	seqs []uint64
}

func (s *seqSink) Push(p *router.Packet) error {
	s.mu.Lock()
	if len(p.Data) >= 8 {
		s.seqs = append(s.seqs, binary.LittleEndian.Uint64(p.Data))
	}
	s.mu.Unlock()
	p.Release()
	return nil
}

func (s *seqSink) snapshot() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.seqs...)
}

func seqPkt(seq uint64) *router.Packet {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, seq)
	return router.NewPacket(b)
}

// bindSeqSink binds rc's "out" receptacle to a fresh seqSink inside a
// parent capsule and returns the sink.
func bindSeqSink(t *testing.T, rc *RemoteComponent) *seqSink {
	t.Helper()
	cap := core.NewCapsule("parent")
	sink := &seqSink{Base: core.NewBase("test.SeqSink")}
	sink.Provide(router.IPacketPushID, sink)
	if err := cap.Insert("remote", rc); err != nil {
		t.Fatal(err)
	}
	if err := cap.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Bind("remote", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	return sink
}

// TestPushBatchPipelinedDelivery drives many pipelined batches through an
// isolated Counter and checks that every packet arrives, in order, with
// the transport counters conserving frames exactly.
func TestPushBatchPipelinedDelivery(t *testing.T) {
	client, host, cleanup := HostPair(batchRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := bindSeqSink(t, rc)

	const batches, per = 50, 17
	seq := uint64(0)
	for b := 0; b < batches; b++ {
		batch := make([]*router.Packet, per)
		for i := range batch {
			batch[i] = seqPkt(seq)
			seq++
		}
		if err := rc.PushBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	const total = batches * per
	// Flush guarantees acks — and the host writes emissions before each
	// ack — so by now the sink has everything.
	got := sink.snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("order broken at %d: got seq %d", i, s)
		}
	}
	if tx, acked := rc.TxFrames(), rc.AckedFrames(); tx != total || acked != total {
		t.Fatalf("tx=%d acked=%d want %d", tx, acked, total)
	}
	if d := rc.Dropped(); d != 0 {
		t.Fatalf("dropped = %d", d)
	}
	if e := rc.Emitted(); e != total {
		t.Fatalf("emitted = %d", e)
	}
	if rx := host.rxFrames.Load(); rx != total {
		t.Fatalf("host rx frames = %d", rx)
	}
	if host.emitBatchN.Load() >= total {
		t.Fatalf("emissions were not batched: %d emit frames in %d batches",
			host.emitFrameN.Load(), host.emitBatchN.Load())
	}
}

// TestPushBatchGobFallback pins the despecialised path: with ForceGob the
// same calls run one gob round-trip per packet and deliver identically.
func TestPushBatchGobFallback(t *testing.T) {
	client, _, cleanup := HostPairCfg(batchRegistry(t), Config{ForceGob: true})
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := bindSeqSink(t, rc)
	batch := make([]*router.Packet, 9)
	for i := range batch {
		batch[i] = seqPkt(uint64(i))
	}
	if err := rc.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	got := sink.snapshot()
	if len(got) != len(batch) {
		t.Fatalf("delivered %d of %d", len(got), len(batch))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("order broken at %d: seq %d", i, s)
		}
	}
	if rc.gobCalls.Load() == 0 {
		t.Fatal("fallback did not use gob calls")
	}
	if rc.TxFrames() != 0 {
		t.Fatal("fallback leaked onto the binary path")
	}
}

// TestBatchCrashContainmentMidBatch panics a hosted component mid-batch
// and checks exact per-packet accounting: the ack reports precisely the
// failing packets, the error wraps ErrContained, and the host keeps
// serving subsequent batches.
func TestBatchCrashContainmentMidBatch(t *testing.T) {
	client, _, cleanup := HostPair(batchRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("mb", "test.MarkerBomb", nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	batch := make([]*router.Packet, n)
	for i := range batch {
		batch[i] = seqPkt(uint64(i))
	}
	// Packets 3 and 7 detonate.
	batch[3].Data[0] = 0xFF
	batch[7].Data[0] = 0xFF
	// With pipelining the outcome surfaces on the push OR the flush,
	// depending on how the ack races the next call — but exactly once,
	// contained, and per-packet-exact either way.
	perr := rc.PushBatch(batch)
	ferr := rc.Flush()
	err = perr
	if err == nil {
		err = ferr
	}
	if !errors.Is(err, ErrContained) {
		t.Fatalf("want ErrContained, got push=%v flush=%v", perr, ferr)
	}
	failed := router.FailedPackets(perr, n) + router.FailedPackets(ferr, n)
	if failed != 2 {
		t.Fatalf("want 2 failed packets, got %d (push=%v flush=%v)", failed, perr, ferr)
	}
	if c := rc.contained.Load(); c != 2 {
		t.Fatalf("contained frames = %d, want 2", c)
	}
	if acked := rc.AckedFrames(); acked != n {
		t.Fatalf("acked = %d, want %d", acked, n)
	}
	// The host survives: a clean batch flows normally and the previous
	// failure does not resurface.
	clean := make([]*router.Packet, 4)
	for i := range clean {
		clean[i] = seqPkt(uint64(100 + i))
	}
	if err := rc.PushBatch(clean); err != nil {
		t.Fatalf("push after crash: %v", err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush after crash: %v", err)
	}
}

// TestHostDeathMidWindow kills the host while a window of batches is in
// flight against a slow component: every waiter must wake, ErrClosed must
// surface, and the frame accounting must balance exactly —
// pushed == acked + dropped, with no frame counted twice or lost.
func TestHostDeathMidWindow(t *testing.T) {
	client, host, _ := HostPairCfg(batchRegistry(t), Config{Window: 4})
	defer func() { _ = client.Close() }()
	rc, err := client.Instantiate("slow", "test.Slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	const batches, per = 40, 4
	flushErr := make(chan error, 1)
	var pushErrClosed atomic.Bool
	go func() {
		for b := 0; b < batches; b++ {
			batch := make([]*router.Packet, per)
			for i := range batch {
				batch[i] = seqPkt(uint64(b*per + i))
			}
			if err := rc.PushBatch(batch); err != nil && errors.Is(err, ErrClosed) {
				pushErrClosed.Store(true)
			}
		}
		flushErr <- rc.Flush()
	}()
	time.Sleep(20 * time.Millisecond)
	_ = host.Close()
	var ferr error
	select {
	case ferr = <-flushErr:
	case <-time.After(10 * time.Second):
		t.Fatal("flush deadlocked after host death")
	}
	sawClosed := pushErrClosed.Load() || errors.Is(ferr, ErrClosed)
	if !sawClosed {
		t.Fatalf("no ErrClosed surfaced (flush err: %v)", ferr)
	}
	const total = batches * per
	acked, dropped := rc.AckedFrames(), rc.Dropped()
	if acked+dropped != total {
		t.Fatalf("conservation broken: acked %d + dropped %d != pushed %d",
			acked, dropped, total)
	}
	if dropped == 0 {
		t.Fatal("expected in-flight drops on host death")
	}
	// The transport is dead but must stay non-blocking and err-fast.
	if err := rc.PushBatch([]*router.Packet{seqPkt(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after death: %v", err)
	}
	if err := rc.Flush(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after death: %v", err)
	}
}

// TestClientCloseSweepsWindow closes the client (not the host) with
// batches in flight: Close must not hang and accounting must balance.
func TestClientCloseSweepsWindow(t *testing.T) {
	client, _, cleanup := HostPairCfg(batchRegistry(t), Config{Window: 2})
	defer cleanup()
	rc, err := client.Instantiate("slow", "test.Slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pushed atomic.Uint64
	go func() {
		for b := 0; b < 20; b++ {
			batch := []*router.Packet{seqPkt(uint64(b))}
			pushed.Add(1)
			_ = rc.PushBatch(batch)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() { _ = client.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("close deadlocked with in-flight window")
	}
	// Give the pusher goroutine a moment to finish erroring out.
	deadline := time.After(5 * time.Second)
	for pushed.Load() < 20 {
		select {
		case <-deadline:
			t.Fatal("pusher wedged after close")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestRemoteComponentStatsSurface checks the satellite requirement: an
// isolated component shows up in the capsule stats tree as an IPC lane
// with its transport counters, and the host side exposes its own subtree.
func TestRemoteComponentStatsSurface(t *testing.T) {
	client, host, cleanup := HostPair(batchRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	cap := core.NewCapsule("parent")
	if err := cap.Insert("remote", rc); err != nil {
		t.Fatal(err)
	}
	batch := []*router.Packet{seqPkt(1), seqPkt(2), seqPkt(3)}
	if err := rc.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	tree := core.CapsuleStats(cap)
	node, ok := tree.Find("remote")
	if !ok {
		t.Fatal("remote component missing from stats tree")
	}
	for _, name := range []string{
		"ipc_tx_batches", "ipc_tx_frames", "ipc_tx_bytes", "ipc_roundtrips",
		"ipc_acked_frames", "ipc_dropped", "ipc_contained_frames",
		"ipc_emitted", "ipc_lost", "ipc_frames_per_roundtrip",
		"ipc_window_occupancy",
	} {
		if _, ok := node.Stat(name); !ok {
			t.Fatalf("stat %s missing from IPC lane", name)
		}
	}
	if s, _ := node.Stat("ipc_tx_frames"); s.Value != 3 {
		t.Fatalf("ipc_tx_frames = %v", s.Value)
	}
	if s, _ := node.Stat("ipc_frames_per_roundtrip"); s.Value != 3 {
		t.Fatalf("ipc_frames_per_roundtrip = %v, want 3", s.Value)
	}
	htree := host.StatsTree()
	if _, ok := htree.Stat("ipc_host_rx_frames"); !ok {
		t.Fatal("host stats missing")
	}
	if _, ok := htree.Find("cnt"); !ok {
		t.Fatal("hosted component missing from host stats tree")
	}
}

// TestIsolateLifecycle exercises the Isolate assembly helper: the
// stand-in owns its transport and Stop tears it down.
func TestIsolateLifecycle(t *testing.T) {
	rc, err := Isolate("iso", router.TypeCounter, nil, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.PushBatch([]*router.Packet{seqPkt(1), seqPkt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rc.PushBatch([]*router.Packet{seqPkt(3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after stop: %v", err)
	}
}

// TestIsolateAtTCP drives the real two-process deployment shape over a
// loopback TCP socket: ListenAndServe hosting (the `netkitd -ipc-host`
// entry point) with IsolateAt as the parent's side.
func TestIsolateAtTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = ListenAndServe(ln, testRegistry(t)) }()

	rc, err := IsolateAt("iso", router.TypeCounter, nil, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*router.Packet, 16)
	for i := range batch {
		batch[i] = seqPkt(uint64(i))
	}
	if err := rc.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rc.AckedFrames(); got != 16 {
		t.Fatalf("acked = %d, want 16", got)
	}
	if err := rc.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rc.PushBatch([]*router.Packet{seqPkt(99)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after stop: %v", err)
	}
}

// TestCallSlotReuse pins the satellite fix for per-call channel churn: the
// pooled correlation slot must be reused across sequential control calls.
func TestCallSlotReuse(t *testing.T) {
	client, _, cleanup := HostPair(batchRegistry(t))
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := rc.Push(seqPkt(1)); err != nil {
			t.Fatal(err)
		}
	})
	// A gob round-trip still allocates in encoding/gob, but the 2-alloc
	// channel+map-entry churn per call must be gone from the steady state:
	// amortised allocations stay well under the old floor.
	if allocs > 40 {
		t.Fatalf("per-call allocations = %.1f, correlation slots not pooled?", allocs)
	}
}
