package ipc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"netkit/internal/buffers"
)

// The wire carries two interleaved encodings on one stream. Control ops
// (instantiate, bindout, filter management) and the cross-version fallback
// path stay gob — self-describing, tolerant of skew between the two
// processes. The packet hot path is a length-prefixed binary frame that
// carries a whole batch in one buffer, so a window of batches costs a
// handful of writes instead of a gob round-trip per packet.
//
// Every frame starts with a one-byte kind:
//
//	'G'  gob message (self-delimiting; no length prefix)
//	'B'  packet batch:  u32 slot | u16 len+name | u32 count | count×u32 lens | payloads
//	'E'  emit batch:    u16 len+name | u16 len+port | u32 count | count×u32 lens | payloads
//	'A'  batch ack:     u32 slot | u32 delivered | u32 failed | u8 flags | u16 len+err
//
// Binary kinds ('B'/'E'/'A') follow the kind byte with a u32 payload
// length; all integers are little-endian. The gob decoder reads straight
// off the shared bufio.Reader (which satisfies io.ByteReader, so gob
// consumes exactly one message and never over-buffers past its boundary).
const (
	frameGob   = 'G'
	frameBatch = 'B'
	frameEmit  = 'E'
	frameAck   = 'A'
)

// DefaultWindow is the default number of batches a client keeps in flight
// before PushBatch blocks on credit — deep enough to hide a round-trip,
// shallow enough to bound buffering on host death.
const DefaultWindow = 32

// ackFlagContained marks an ack whose failures were contained panics.
const ackFlagContained = 1

// maxFramePayload bounds a single binary frame; anything larger is a
// protocol error rather than an allocation request.
const maxFramePayload = 1 << 26 // 64 MiB

// frameSlabs backs inbound binary frames with refcounted slabs so decoded
// packets can alias the receive buffer zero-copy: the slab is released
// only when the last carved packet is. Oversized frames fall back to a
// plain heap slice (GC-owned, safe to alias without refcounts).
var frameSlabs = buffers.MustNewPool([]int{4096, 65536, 1 << 20}, 64, 0)

// framePool recycles outbound frame-assembly buffers.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getFrame() []byte {
	return (*framePool.Get().(*[]byte))[:0]
}

func putFrame(b []byte) {
	if cap(b) > maxFramePayload {
		return
	}
	framePool.Put(&b)
}

func appendU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// wire wraps a conn with the shared framing state: one buffered reader
// feeding both the gob decoder and binary frame reads, and a write mutex
// serialising whole frames (gob messages are staged in a scratch buffer so
// each frame hits the conn as a single write).
type wire struct {
	conn net.Conn
	br   *bufio.Reader
	dec  *gob.Decoder

	wmu    sync.Mutex
	enc    *gob.Encoder
	gobBuf bytes.Buffer
}

func newWire(conn net.Conn) *wire {
	w := &wire{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
	w.dec = gob.NewDecoder(w.br)
	w.enc = gob.NewEncoder(&w.gobBuf)
	return w
}

// send frames one gob message: kind byte + gob body, one conn write.
func (w *wire) send(m *message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.gobBuf.Reset()
	w.gobBuf.WriteByte(frameGob)
	if err := w.enc.Encode(m); err != nil {
		return err
	}
	_, err := w.conn.Write(w.gobBuf.Bytes())
	return err
}

// sendRaw writes one pre-assembled binary frame (kind + length + payload).
func (w *wire) sendRaw(frame []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_, err := w.conn.Write(frame)
	return err
}

// readKind returns the next frame's kind byte.
func (w *wire) readKind() (byte, error) {
	return w.br.ReadByte()
}

// readGob decodes one gob message (the 'G' kind byte already consumed).
func (w *wire) readGob() (*message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// readPayload reads a binary frame's length-prefixed payload. It returns
// the payload bytes plus the slab refcounting them, or slab == nil when
// the bytes are heap-owned (small scratch reuse or oversized fallback).
// Callers that retain slices into the payload must balance the slab with
// Retain/Release; callers that copy out should Release it immediately.
func (w *wire) readPayload(scratch []byte) (payload []byte, slab *buffers.Buffer, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.br, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("ipc: frame payload %d exceeds limit", n)
	}
	if n <= cap(scratch) {
		payload = scratch[:n]
	} else if b, err := frameSlabs.Get(n); err == nil {
		slab, payload = b, b.Bytes()
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(w.br, payload); err != nil {
		if slab != nil {
			_ = slab.Release()
		}
		return nil, nil, err
	}
	return payload, slab, nil
}

// binReader walks a binary frame payload.
type binReader struct {
	b   []byte
	off int
	err bool
}

func (r *binReader) u8() byte {
	if r.off+1 > len(r.b) {
		r.err = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *binReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// bytes returns n payload bytes without copying (aliases the frame).
func (r *binReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// str copies n bytes out as a string (frames are recycled; names outlive
// them).
func (r *binReader) str() string {
	n := int(r.u16())
	b := r.bytes(n)
	if r.err {
		return ""
	}
	return string(b)
}

// beginFrame starts a binary frame in buf: kind byte plus a payload-length
// placeholder that finishFrame patches.
func beginFrame(buf []byte, kind byte) []byte {
	buf = append(buf, kind)
	return appendU32(buf, 0)
}

// finishFrame patches the payload length and returns the complete frame.
func finishFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
	return buf
}

// encodeAck assembles an 'A' frame into a pooled buffer.
func encodeAck(slot, delivered, failed uint32, contained bool, errMsg string) []byte {
	buf := beginFrame(getFrame(), frameAck)
	buf = appendU32(buf, slot)
	buf = appendU32(buf, delivered)
	buf = appendU32(buf, failed)
	var flags byte
	if contained {
		flags |= ackFlagContained
	}
	buf = append(buf, flags)
	if len(errMsg) > 512 {
		errMsg = errMsg[:512]
	}
	buf = appendStr(buf, errMsg)
	return finishFrame(buf)
}
