package ipc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/router"
)

// Client is the parent-composite side of an isolation boundary: it
// instantiates components in the remote host and manufactures local
// stand-ins whose bindings transparently cross the wire.
type Client struct {
	w      *wire
	nextID atomic.Uint64
	closed atomic.Bool

	mu      sync.Mutex
	pending map[uint64]chan *message
	remotes map[string]*RemoteComponent
	readErr error
	done    chan struct{}
}

// Dial wraps an established connection (the host must be serving the other
// end) and starts the demultiplexing reader.
func Dial(conn net.Conn) *Client {
	c := &Client{
		w:       newWire(conn),
		pending: make(map[uint64]chan *message),
		remotes: make(map[string]*RemoteComponent),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.w.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		m, err := c.w.recv()
		if err != nil {
			c.mu.Lock()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
				errors.Is(err, net.ErrClosed) || c.closed.Load() {
				c.readErr = ErrClosed
			} else {
				c.readErr = err
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		switch m.Kind {
		case "resp":
			c.mu.Lock()
			ch, ok := c.pending[m.ID]
			if ok {
				delete(c.pending, m.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- m
			}
		case "emit":
			c.mu.Lock()
			rc := c.remotes[m.Name]
			c.mu.Unlock()
			if rc != nil {
				rc.deliver(m.Port, m.Payload)
			}
		}
	}
}

// call performs one synchronous request.
func (c *Client) call(m *message) (*message, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	id := c.nextID.Add(1)
	m.ID = id
	m.Kind = "req"
	ch := make(chan *message, 1)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()
	if err := c.w.send(m); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("ipc: send: %w", err)
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if resp.Err != "" {
		if resp.Contained {
			return resp, fmt.Errorf("ipc: %s: %w", resp.Err, ErrContained)
		}
		return resp, fmt.Errorf("ipc: %s: %w", resp.Err, ErrRemote)
	}
	return resp, nil
}

// Instantiate creates a component of typeName in the remote host and
// returns its local stand-in, carrying the netkit.remote annotation that
// satisfies the Router CF's trust-isolation rule. Packet receptacles
// reported by the remote side appear as local receptacles wired through
// the connection.
func (c *Client) Instantiate(name, typeName string, cfg map[string]string) (*RemoteComponent, error) {
	resp, err := c.call(&message{Op: "instantiate", Name: name, Type: typeName, Cfg: cfg})
	if err != nil {
		return nil, err
	}
	rc := &RemoteComponent{
		Base:   core.NewBase(typeName),
		client: c,
		remote: name,
		outs:   make(map[string]*core.Receptacle[router.IPacketPush]),
	}
	rc.SetAnnotation("netkit.remote", "true")
	provided := make(map[string]bool, len(resp.Provided))
	for _, id := range resp.Provided {
		provided[id] = true
	}
	if provided[string(router.IPacketPushID)] {
		rc.Provide(router.IPacketPushID, rc)
	}
	if provided[string(router.IClassifierID)] {
		rc.Provide(router.IClassifierID, rc)
	}
	for _, port := range resp.Receptacles {
		r := core.NewReceptacle[router.IPacketPush](router.IPacketPushID)
		rc.outs[port] = r
		rc.AddReceptacle(port, r)
		if _, err := c.call(&message{Op: "bindout", Name: name, Port: port}); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.remotes[name] = rc
	c.mu.Unlock()
	return rc, nil
}

// RemoteComponent is the in-capsule stand-in for a component hosted in a
// separate address space.
type RemoteComponent struct {
	*core.Base
	client *Client
	remote string

	mu   sync.RWMutex
	outs map[string]*core.Receptacle[router.IPacketPush]

	emitted atomic.Uint64
	lost    atomic.Uint64
}

var (
	_ core.Component     = (*RemoteComponent)(nil)
	_ router.IPacketPush = (*RemoteComponent)(nil)
	_ router.IClassifier = (*RemoteComponent)(nil)
)

// Push implements IPacketPush by marshalling the packet across the wire.
func (rc *RemoteComponent) Push(p *Packet) error {
	data := p.Data
	_, err := rc.client.call(&message{Op: "push", Name: rc.remote, Payload: data})
	p.Release()
	return err
}

// Packet aliases router.Packet for the exported Push signature.
type Packet = router.Packet

// RegisterFilter implements IClassifier remotely.
func (rc *RemoteComponent) RegisterFilter(spec string, priority int, output string) (uint64, error) {
	resp, err := rc.client.call(&message{
		Op: "regfilter", Name: rc.remote, Spec: spec, Priority: priority, Output: output,
	})
	if err != nil {
		return 0, err
	}
	return resp.FilterID, nil
}

// UnregisterFilter implements IClassifier remotely.
func (rc *RemoteComponent) UnregisterFilter(id uint64) error {
	_, err := rc.client.call(&message{Op: "unregfilter", Name: rc.remote, FilterID: id})
	return err
}

// FilterOutputs implements IClassifier remotely.
func (rc *RemoteComponent) FilterOutputs() []string {
	resp, err := rc.client.call(&message{Op: "outputs", Name: rc.remote})
	if err != nil {
		return nil
	}
	return resp.Outputs
}

// deliver hands an emitted packet to the local continuation of the named
// receptacle.
func (rc *RemoteComponent) deliver(port string, payload []byte) {
	rc.mu.RLock()
	r := rc.outs[port]
	rc.mu.RUnlock()
	if r == nil {
		rc.lost.Add(1)
		return
	}
	next, ok := r.Get()
	if !ok {
		rc.lost.Add(1)
		return
	}
	rc.emitted.Add(1)
	_ = next.Push(router.NewPacket(payload))
}

// Emitted reports packets the remote side sent back through bound
// receptacles; Lost reports emissions with no local binding.
func (rc *RemoteComponent) Emitted() uint64 { return rc.emitted.Load() }

// Lost reports emissions that arrived while the local receptacle was
// unbound.
func (rc *RemoteComponent) Lost() uint64 { return rc.lost.Load() }

// HostPair wires a Host and Client over an in-memory pipe: the test and
// benchmark configuration standing in for a real two-process deployment
// (the protocol is identical over TCP).
func HostPair(reg *core.ComponentRegistry) (*Client, *Host, func()) {
	a, b := net.Pipe()
	h := NewHost(b, reg)
	go func() { _ = h.Serve() }()
	c := Dial(a)
	cleanup := func() {
		_ = c.Close()
		_ = h.Close()
	}
	return c, h, cleanup
}
