package ipc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/internal/buffers"
	"netkit/router"
)

// Config tunes one client transport.
type Config struct {
	// Window is the number of batches kept in flight before PushBatch
	// blocks on credit (0 = DefaultWindow).
	Window int
	// ForceGob despecialises the batch path to one synchronous gob call
	// per packet — the cross-version fallback a peer that predates binary
	// framing gets, and the reference behaviour the equivalence fuzz test
	// pins the binary path against.
	ForceGob bool
}

// Client is the parent-composite side of an isolation boundary: it
// instantiates components in the remote host and manufactures local
// stand-ins whose bindings transparently cross the wire. Control calls are
// synchronous gob round-trips; packet pushes are pipelined binary batch
// frames under a credit window (see frame.go).
type Client struct {
	w        *wire
	nextID   atomic.Uint64
	closed   atomic.Bool
	window   int
	forceGob bool

	mu      sync.Mutex
	pending map[uint64]chan *message
	remotes map[string]*RemoteComponent
	readErr error

	// dead flips (before done closes) when the read loop exits; with the
	// per-slot frames token it makes in-flight drop accounting
	// exactly-once no matter how a send races the teardown sweep.
	dead atomic.Bool
	done chan struct{}

	// callPool recycles the correlation channel a synchronous gob call
	// parks on, so the control path stops allocating a channel per call.
	callPool sync.Pool

	// slots/credits is the pipeline window: every in-flight batch holds
	// one txSlot; acquiring a credit IS the backpressure.
	slots   []*txSlot
	credits chan *txSlot
	flushMu sync.Mutex

	// Completion ring: batch outcomes land here as acks (or teardown
	// sweeps) retire slots; harvest folds the pending failures into the
	// error the NEXT PushBatch/Flush returns. Bounded — overflow folds
	// into the aggregate counters, losing detail but never counts.
	compMu       sync.Mutex
	ring         []completion
	aggFailed    uint64
	aggContained uint64
	aggErr       error

	ackScratch [600]byte
}

// txSlot is one unit of window credit. frames is the ownership token for
// teardown accounting: it is set (after owner/bytes) when a batch is
// committed to the slot, and whichever party — ack handler, teardown
// sweep, or the failed sender — atomically swaps it back to zero both
// accounts for those frames and returns the slot to the credit pool.
// Exactly one swap observes a nonzero value, so drops are counted exactly
// once and slots are never double-freed.
type txSlot struct {
	id     uint32
	frames atomic.Uint32
	nbytes atomic.Uint64
	owner  atomic.Pointer[RemoteComponent]
}

// completion records one retired batch for the completion ring.
type completion struct {
	rc        *RemoteComponent
	delivered uint32
	failed    uint32
	contained bool
	closed    bool
	errMsg    string
}

// Dial wraps an established connection (the host must be serving the other
// end) and starts the demultiplexing reader.
func Dial(conn net.Conn) *Client { return DialCfg(conn, Config{}) }

// DialCfg is Dial with transport tuning.
func DialCfg(conn net.Conn, cfg Config) *Client {
	window := cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}
	c := &Client{
		w:        newWire(conn),
		window:   window,
		forceGob: cfg.ForceGob,
		pending:  make(map[uint64]chan *message),
		remotes:  make(map[string]*RemoteComponent),
		done:     make(chan struct{}),
		credits:  make(chan *txSlot, window),
		ring:     make([]completion, 0, 2*window),
	}
	c.callPool.New = func() any { return make(chan *message, 1) }
	c.slots = make([]*txSlot, window)
	for i := range c.slots {
		s := &txSlot{id: uint32(i)}
		c.slots[i] = s
		c.credits <- s
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; outstanding calls fail with ErrClosed
// and in-flight batches are accounted as dropped.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.w.conn.Close()
	<-c.done
	return err
}

// Window reports the configured pipeline depth.
func (c *Client) Window() int { return c.window }

// InFlight reports how many batches currently hold a window credit.
func (c *Client) InFlight() int { return c.window - len(c.credits) }

func (c *Client) readLoop() {
	for {
		kind, err := c.w.readKind()
		if err != nil {
			c.fail(err)
			return
		}
		switch kind {
		case frameGob:
			m, err := c.w.readGob()
			if err != nil {
				c.fail(err)
				return
			}
			c.handleGob(m)
		case frameAck:
			payload, slab, err := c.w.readPayload(c.ackScratch[:0])
			if err != nil {
				c.fail(err)
				return
			}
			ok := c.handleAck(payload)
			if slab != nil {
				_ = slab.Release()
			}
			if !ok {
				c.fail(errors.New("ipc: malformed ack frame"))
				return
			}
		case frameEmit:
			payload, slab, err := c.w.readPayload(nil)
			if err != nil {
				c.fail(err)
				return
			}
			if !c.handleEmit(payload, slab) {
				c.fail(errors.New("ipc: malformed emit frame"))
				return
			}
		default:
			c.fail(fmt.Errorf("ipc: unknown frame kind %q", kind))
			return
		}
	}
}

// fail is the single teardown path of the read loop: it records the
// terminal error, wakes every parked control call with a nil sentinel,
// sweeps in-flight batch slots (accounting their frames as dropped against
// their owners, exactly once via the frames token), and only then closes
// done — so a waiter released by done always observes a completed sweep.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) || c.closed.Load() {
		c.readErr = ErrClosed
	} else {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- nil
	}
	c.mu.Unlock()
	c.dead.Store(true)
	for _, s := range c.slots {
		if f := s.frames.Swap(0); f > 0 {
			rc := s.owner.Swap(nil)
			s.nbytes.Store(0)
			if rc != nil {
				rc.dropped.Add(uint64(f))
			}
			c.retire(completion{rc: rc, failed: f, closed: true})
			select {
			case c.credits <- s:
			default:
			}
		}
	}
	close(c.done)
}

func (c *Client) handleGob(m *message) {
	switch m.Kind {
	case "resp":
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	case "emit":
		// Cross-version fallback: a host that predates batched emission
		// frames sends one gob emit per packet.
		c.mu.Lock()
		rc := c.remotes[m.Name]
		c.mu.Unlock()
		if rc != nil {
			rc.deliver(m.Port, m.Payload)
		}
	}
}

// handleAck retires one batch slot. Reports false on a malformed frame.
func (c *Client) handleAck(payload []byte) bool {
	r := binReader{b: payload}
	slotID := r.u32()
	delivered := r.u32()
	failed := r.u32()
	flags := r.u8()
	errMsg := r.str()
	if r.err || slotID >= uint32(len(c.slots)) {
		return false
	}
	s := c.slots[slotID]
	f := s.frames.Swap(0)
	if f == 0 {
		return true // already swept by teardown
	}
	rc := s.owner.Swap(nil)
	s.nbytes.Store(0)
	if rc != nil {
		rc.roundtrips.Add(1)
		rc.ackedFrames.Add(uint64(f))
		if failed > 0 {
			rc.remoteFailed.Add(uint64(failed))
			if flags&ackFlagContained != 0 {
				rc.contained.Add(uint64(failed))
			}
		}
	}
	if failed > 0 {
		c.retire(completion{
			rc: rc, delivered: delivered, failed: failed,
			contained: flags&ackFlagContained != 0, errMsg: errMsg,
		})
	}
	c.credits <- s
	return true
}

// handleEmit delivers one batched emission frame. It takes ownership of
// slab (nil when payload is heap-owned). Reports false on malformed input.
func (c *Client) handleEmit(payload []byte, slab *buffers.Buffer) bool {
	r := binReader{b: payload}
	name := r.str()
	port := r.str()
	count := int(r.u32())
	if r.err || count < 0 || count > len(payload) {
		if slab != nil {
			_ = slab.Release()
		}
		return false
	}
	lens := make([]int, count)
	for i := range lens {
		lens[i] = int(r.u32())
	}
	batch := router.GetBatch()
	pkts := make([]router.Packet, count)
	for i := 0; i < count; i++ {
		data := r.bytes(lens[i])
		if r.err {
			for _, p := range batch {
				p.Release()
			}
			router.PutBatch(batch)
			if slab != nil {
				_ = slab.Release()
			}
			return false
		}
		pkts[i].Data = data
		pkts[i].Buf = slab // nil for heap-owned payloads
		batch = append(batch, &pkts[i])
	}
	if slab != nil {
		if count == 0 {
			_ = slab.Release()
		} else {
			slab.RetainN(count - 1) // one ref per packet; Get's ref covers the first
		}
	}
	c.mu.Lock()
	rc := c.remotes[name]
	c.mu.Unlock()
	if rc == nil {
		for _, p := range batch {
			p.Release()
		}
	} else {
		rc.deliverBatch(port, batch)
	}
	router.PutBatch(batch)
	return true
}

// retire appends one completion to the bounded ring and folds it into the
// harvest aggregates.
func (c *Client) retire(comp completion) {
	c.compMu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, comp)
	}
	c.aggFailed += uint64(comp.failed)
	if comp.contained {
		c.aggContained += uint64(comp.failed)
	}
	if c.aggErr == nil && comp.failed > 0 {
		switch {
		case comp.contained:
			c.aggErr = fmt.Errorf("ipc: %s: %w", comp.errMsg, ErrContained)
		case comp.closed:
			c.aggErr = fmt.Errorf("ipc: %d frame(s) dropped in flight: %w", comp.failed, ErrClosed)
		case comp.errMsg != "":
			c.aggErr = fmt.Errorf("ipc: %s: %w", comp.errMsg, ErrRemote)
		default:
			c.aggErr = ErrRemote
		}
	}
	c.compMu.Unlock()
}

// harvest drains the completion ring: with pipelined pushes, failures
// surface on the NEXT PushBatch (or Flush) as a BatchError whose Failed
// is per-packet-exact across every batch retired since the last harvest.
func (c *Client) harvest() error {
	c.compMu.Lock()
	failed, err := c.aggFailed, c.aggErr
	c.aggFailed, c.aggContained, c.aggErr = 0, 0, nil
	c.ring = c.ring[:0]
	c.compMu.Unlock()
	if failed == 0 {
		return nil
	}
	if err == nil {
		err = ErrRemote
	}
	return &router.BatchError{Failed: int(failed), Err: err}
}

// Flush blocks until every in-flight batch has been acked (or accounted as
// dropped on teardown) and returns the harvested outcome. It works by
// draining the whole credit window, so it also quiesces the pipeline.
func (c *Client) Flush() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	taken := make([]*txSlot, 0, c.window)
	for len(taken) < c.window {
		taken = append(taken, <-c.credits)
	}
	for _, s := range taken {
		c.credits <- s
	}
	return c.harvest()
}

// call performs one synchronous gob request.
func (c *Client) call(m *message) (*message, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	id := c.nextID.Add(1)
	m.ID = id
	m.Kind = "req"
	ch := c.callPool.Get().(chan *message)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		c.callPool.Put(ch)
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	if err := c.w.send(m); err != nil {
		c.mu.Lock()
		_, mine := c.pending[id]
		if mine {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !mine {
			<-ch // fail() owned the slot; drain its sentinel before pooling
		}
		c.callPool.Put(ch)
		return nil, fmt.Errorf("ipc: send: %w", err)
	}
	resp := <-ch
	c.callPool.Put(ch)
	if resp == nil {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if resp.Err != "" {
		if resp.Contained {
			return resp, fmt.Errorf("ipc: %s: %w", resp.Err, ErrContained)
		}
		return resp, fmt.Errorf("ipc: %s: %w", resp.Err, ErrRemote)
	}
	return resp, nil
}

// Instantiate creates a component of typeName in the remote host and
// returns its local stand-in, carrying the netkit.remote annotation that
// satisfies the Router CF's trust-isolation rule. Packet receptacles
// reported by the remote side appear as local receptacles wired through
// the connection.
func (c *Client) Instantiate(name, typeName string, cfg map[string]string) (*RemoteComponent, error) {
	resp, err := c.call(&message{Op: "instantiate", Name: name, Type: typeName, Cfg: cfg})
	if err != nil {
		return nil, err
	}
	rc := &RemoteComponent{
		Base:   core.NewBase(typeName),
		client: c,
		remote: name,
		outs:   make(map[string]*core.Receptacle[router.IPacketPush]),
	}
	rc.SetAnnotation("netkit.remote", "true")
	provided := make(map[string]bool, len(resp.Provided))
	for _, id := range resp.Provided {
		provided[id] = true
	}
	if provided[string(router.IPacketPushID)] {
		rc.Provide(router.IPacketPushID, rc)
	}
	if provided[string(router.IClassifierID)] {
		rc.Provide(router.IClassifierID, rc)
	}
	for _, port := range resp.Receptacles {
		r := core.NewReceptacle[router.IPacketPush](router.IPacketPushID)
		rc.outs[port] = r
		rc.AddReceptacle(port, r)
		if _, err := c.call(&message{Op: "bindout", Name: name, Port: port}); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.remotes[name] = rc
	c.mu.Unlock()
	return rc, nil
}

// RemoteComponent is the in-capsule stand-in for a component hosted in a
// separate address space.
type RemoteComponent struct {
	*core.Base
	client *Client
	remote string

	mu   sync.RWMutex
	outs map[string]*core.Receptacle[router.IPacketPush]

	// stop tears down a transport this stand-in owns (Isolate).
	stop func()

	emitted atomic.Uint64
	lost    atomic.Uint64

	txBatches    atomic.Uint64
	txFrames     atomic.Uint64
	txBytes      atomic.Uint64
	roundtrips   atomic.Uint64
	ackedFrames  atomic.Uint64
	remoteFailed atomic.Uint64
	dropped      atomic.Uint64
	contained    atomic.Uint64
	gobCalls     atomic.Uint64
	emitBatches  atomic.Uint64
	emitBytes    atomic.Uint64
}

var (
	_ core.Component          = (*RemoteComponent)(nil)
	_ router.IPacketPush      = (*RemoteComponent)(nil)
	_ router.IPacketPushBatch = (*RemoteComponent)(nil)
	_ router.IClassifier      = (*RemoteComponent)(nil)
	_ core.IStats             = (*RemoteComponent)(nil)
)

// Push implements IPacketPush by marshalling the packet across the wire as
// one synchronous gob call — the despecialised per-packet path E6 measures.
// Use PushBatch for the pipelined binary lane.
func (rc *RemoteComponent) Push(p *Packet) error {
	data := p.Data
	rc.gobCalls.Add(1)
	_, err := rc.client.call(&message{Op: "push", Name: rc.remote, Payload: data})
	p.Release()
	return err
}

// PushBatch implements router.IPacketPushBatch: the batch is serialised
// into one binary frame and written in a single vectored-style write,
// pipelined under the client's credit window. The call blocks only when
// the window is full; outcomes of earlier batches surface on later calls
// (or Flush) as a per-packet-exact BatchError.
func (rc *RemoteComponent) PushBatch(batch []*router.Packet) error {
	c := rc.client
	if len(batch) == 0 {
		return c.harvest()
	}
	if c.forceGob {
		return rc.pushBatchGob(batch)
	}
	n := uint32(len(batch))
	if c.closed.Load() || c.dead.Load() {
		for _, p := range batch {
			p.Release()
		}
		rc.dropped.Add(uint64(n))
		c.retire(completion{rc: rc, failed: n, closed: true})
		err := c.harvest()
		if err == nil {
			err = ErrClosed
		}
		return err
	}

	// Serialise first (so packets can be released before blocking on
	// credit), one frame: slot | name | count | lens | payloads.
	buf := beginFrame(getFrame(), frameBatch)
	slotOff := len(buf)
	buf = appendU32(buf, 0) // slot id, patched below
	buf = appendStr(buf, rc.remote)
	buf = appendU32(buf, n)
	total := 0
	for _, p := range batch {
		buf = appendU32(buf, uint32(len(p.Data)))
		total += len(p.Data)
	}
	for _, p := range batch {
		buf = append(buf, p.Data...)
		p.Release()
	}
	buf = finishFrame(buf)

	var slot *txSlot
	select {
	case slot = <-c.credits:
	case <-c.done:
		putFrame(buf)
		rc.dropped.Add(uint64(n))
		c.retire(completion{rc: rc, failed: n, closed: true})
		err := c.harvest()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	binary.LittleEndian.PutUint32(buf[slotOff:], slot.id)
	slot.owner.Store(rc)
	slot.nbytes.Store(uint64(total))
	slot.frames.Store(n)
	// The frames token is now live: if the read loop died between the
	// dead-check above and here, its sweep may have missed this slot, so
	// re-check and self-sweep — the Swap guarantees exactly one of the
	// sweep, the ack handler, and this path accounts the batch.
	if c.dead.Load() {
		putFrame(buf)
		rc.selfSweep(slot)
		err := c.harvest()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	err := c.w.sendRaw(buf)
	putFrame(buf)
	if err != nil {
		rc.selfSweep(slot)
		herr := c.harvest()
		if herr == nil {
			herr = fmt.Errorf("ipc: send: %w", err)
		}
		return herr
	}
	rc.txBatches.Add(1)
	rc.txFrames.Add(uint64(n))
	rc.txBytes.Add(uint64(total))
	return c.harvest()
}

// selfSweep retires a slot this sender committed but could not (or should
// not) leave in flight. The frames token makes it a no-op when the ack
// handler or teardown sweep got there first.
func (rc *RemoteComponent) selfSweep(slot *txSlot) {
	c := rc.client
	if f := slot.frames.Swap(0); f > 0 {
		owner := slot.owner.Swap(nil)
		slot.nbytes.Store(0)
		if owner == nil {
			owner = rc
		}
		owner.dropped.Add(uint64(f))
		c.retire(completion{rc: owner, failed: f, closed: true})
		c.credits <- slot
	}
}

// pushBatchGob is the despecialised batch path: one gob call per packet,
// aggregated into the same per-packet-exact BatchError shape.
func (rc *RemoteComponent) pushBatchGob(batch []*router.Packet) error {
	failed := 0
	var firstErr error
	for _, p := range batch {
		if err := rc.Push(p); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed == 0 {
		return nil
	}
	return &router.BatchError{Failed: failed, Err: firstErr}
}

// Flush quiesces this stand-in's transport: it blocks until every
// in-flight batch is acked (or accounted dropped) and returns the
// harvested outcome.
func (rc *RemoteComponent) Flush() error { return rc.client.Flush() }

// Packet aliases router.Packet for the exported Push signature.
type Packet = router.Packet

// RegisterFilter implements IClassifier remotely.
func (rc *RemoteComponent) RegisterFilter(spec string, priority int, output string) (uint64, error) {
	rc.gobCalls.Add(1)
	resp, err := rc.client.call(&message{
		Op: "regfilter", Name: rc.remote, Spec: spec, Priority: priority, Output: output,
	})
	if err != nil {
		return 0, err
	}
	return resp.FilterID, nil
}

// UnregisterFilter implements IClassifier remotely.
func (rc *RemoteComponent) UnregisterFilter(id uint64) error {
	rc.gobCalls.Add(1)
	_, err := rc.client.call(&message{Op: "unregfilter", Name: rc.remote, FilterID: id})
	return err
}

// FilterOutputs implements IClassifier remotely.
func (rc *RemoteComponent) FilterOutputs() []string {
	rc.gobCalls.Add(1)
	resp, err := rc.client.call(&message{Op: "outputs", Name: rc.remote})
	if err != nil {
		return nil
	}
	return resp.Outputs
}

// deliver hands one emitted packet to the local continuation of the named
// receptacle (gob fallback emission path).
func (rc *RemoteComponent) deliver(port string, payload []byte) {
	rc.mu.RLock()
	r := rc.outs[port]
	rc.mu.RUnlock()
	if r == nil {
		rc.lost.Add(1)
		return
	}
	next, ok := r.Get()
	if !ok {
		rc.lost.Add(1)
		return
	}
	rc.emitted.Add(1)
	_ = next.Push(router.NewPacket(payload))
}

// deliverBatch hands a batched emission to the local continuation. The
// callee takes ownership of the packets, not the slice.
func (rc *RemoteComponent) deliverBatch(port string, batch []*router.Packet) {
	n := len(batch)
	if n == 0 {
		return
	}
	total := 0
	for _, p := range batch {
		total += len(p.Data)
	}
	rc.emitBatches.Add(1)
	rc.emitBytes.Add(uint64(total))
	rc.mu.RLock()
	r := rc.outs[port]
	rc.mu.RUnlock()
	var next router.IPacketPush
	ok := false
	if r != nil {
		next, ok = r.Get()
	}
	if !ok {
		rc.lost.Add(uint64(n))
		for _, p := range batch {
			p.Release()
		}
		return
	}
	rc.emitted.Add(uint64(n))
	_ = router.ForwardBatch(next, batch)
}

// Emitted reports packets the remote side sent back through bound
// receptacles; Lost reports emissions with no local binding.
func (rc *RemoteComponent) Emitted() uint64 { return rc.emitted.Load() }

// Lost reports emissions that arrived while the local receptacle was
// unbound.
func (rc *RemoteComponent) Lost() uint64 { return rc.lost.Load() }

// Dropped reports frames this stand-in accepted but could not get acked:
// in-flight on teardown, or refused because the transport had died.
func (rc *RemoteComponent) Dropped() uint64 { return rc.dropped.Load() }

// AckedFrames reports frames covered by host acks (delivered or failed
// remotely).
func (rc *RemoteComponent) AckedFrames() uint64 { return rc.ackedFrames.Load() }

// TxFrames reports frames committed to the wire.
func (rc *RemoteComponent) TxFrames() uint64 { return rc.txFrames.Load() }

// Stats implements core.IStats: the IPC lane shows up in the capsule
// stats tree like any shard lane, so nkctl stats and adapt rules see
// isolated components instead of a telemetry hole.
func (rc *RemoteComponent) Stats() []core.Stat {
	trips := rc.roundtrips.Load()
	acked := rc.ackedFrames.Load()
	fpr := 0.0
	if trips > 0 {
		fpr = float64(acked) / float64(trips)
	}
	c := rc.client
	inflight := float64(c.InFlight())
	return []core.Stat{
		core.C("ipc_tx_batches", "batches", rc.txBatches.Load()),
		core.C("ipc_tx_frames", "packets", rc.txFrames.Load()),
		core.C("ipc_tx_bytes", "bytes", rc.txBytes.Load()),
		core.C("ipc_roundtrips", "acks", trips),
		core.C("ipc_acked_frames", "packets", acked),
		core.C("ipc_remote_failed", "packets", rc.remoteFailed.Load()),
		core.C("ipc_dropped", "packets", rc.dropped.Load()),
		core.C("ipc_contained_frames", "packets", rc.contained.Load()),
		core.C("ipc_emitted", "packets", rc.emitted.Load()),
		core.C("ipc_lost", "packets", rc.lost.Load()),
		core.C("ipc_emit_batches", "batches", rc.emitBatches.Load()),
		core.C("ipc_emit_bytes", "bytes", rc.emitBytes.Load()),
		core.C("ipc_gob_calls", "calls", rc.gobCalls.Load()),
		core.G("ipc_window", "batches", float64(c.window)),
		core.GW("ipc_frames_per_roundtrip", "packets", fpr, float64(trips)),
		core.GW("ipc_window_occupancy", "ratio", inflight/float64(c.window), float64(c.window)),
	}
}

// Stop implements core.Stopper for stand-ins that own their transport
// (Blueprint.Isolate): stopping the capsule tears the isolation boundary
// down with it.
func (rc *RemoteComponent) Stop(ctx context.Context) error {
	if rc.stop != nil {
		rc.stop()
	}
	return nil
}

// HostPair wires a Host and Client over an in-memory pipe: the test and
// benchmark configuration standing in for a real two-process deployment
// (the protocol is identical over TCP).
func HostPair(reg *core.ComponentRegistry) (*Client, *Host, func()) {
	return HostPairCfg(reg, Config{})
}

// HostPairCfg is HostPair with client transport tuning.
func HostPairCfg(reg *core.ComponentRegistry, cfg Config) (*Client, *Host, func()) {
	a, b := net.Pipe()
	h := NewHost(b, reg)
	go func() { _ = h.Serve() }()
	c := DialCfg(a, cfg)
	cleanup := func() {
		_ = c.Close()
		_ = h.Close()
	}
	return c, h, cleanup
}
