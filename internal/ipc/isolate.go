package ipc

import (
	"fmt"
	"net"

	"netkit/core"
)

// Isolate instantiates one component of typeName out-of-process-style
// behind a private transport (an in-process socketpair stand-in; the
// protocol is identical over TCP) and returns its local stand-in. The
// stand-in owns the transport: stopping it — the capsule calls Stop when
// the component is removed or the capsule stops — tears the host down
// with it. reg nil uses the process-wide registry, so every registered
// standard component type can be isolated by name.
func Isolate(name, typeName string, cfg map[string]string, reg *core.ComponentRegistry) (*RemoteComponent, error) {
	client, _, cleanup := HostPair(reg)
	rc, err := client.Instantiate(name, typeName, cfg)
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("ipc: isolate %q: %w", name, err)
	}
	rc.stop = cleanup
	return rc, nil
}

// IsolateAt is Isolate against a remote host already serving at addr
// (e.g. `netkitd -ipc-host`): the real two-process deployment.
func IsolateAt(name, typeName string, cfg map[string]string, addr string) (*RemoteComponent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: isolate %q at %s: %w", name, addr, err)
	}
	client := Dial(conn)
	rc, err := client.Instantiate(name, typeName, cfg)
	if err != nil {
		_ = client.Close()
		return nil, fmt.Errorf("ipc: isolate %q at %s: %w", name, addr, err)
	}
	rc.stop = func() { _ = client.Close() }
	return rc, nil
}

// ListenAndServe accepts connections on ln and serves one Host per conn
// against reg (nil = process-wide registry). It returns when the listener
// closes. This is the `netkitd -ipc-host` entry point: a daemon willing
// to host isolated constituents for parent capsules elsewhere.
func ListenAndServe(ln net.Listener, reg *core.ComponentRegistry) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		go func() { _ = NewHost(conn, reg).Serve() }()
	}
}
