// Package ipc realises §5's isolation mechanism: "untrusted constituents
// can be instantiated, and remotely managed by the parent composite, in a
// separate address-space from the parent ... inter-component bindings in
// this case are transparently realised in terms of OS-level IPC mechanisms
// rather than intra-address space vtables".
//
// A Host owns a private capsule in the isolated domain and serves a wire
// protocol (gob over any net.Conn: net.Pipe in tests, TCP between real
// processes). The parent side holds a RemoteComponent — an ordinary
// core.Component stand-in whose IPacketPush/IClassifier calls marshal over
// the wire, and whose receptacles deliver packets the remote side emits.
// A panic inside a hosted component is contained by the host and surfaces
// to the caller as an error (crash containment), which experiment E6
// checks alongside the in-proc/out-of-proc cost gap.
package ipc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/router"
)

// Sentinel errors.
var (
	// ErrRemote wraps an error reported by the remote host.
	ErrRemote = errors.New("ipc: remote error")
	// ErrClosed indicates use of a closed client or host.
	ErrClosed = errors.New("ipc: connection closed")
	// ErrContained indicates a panic inside a hosted component that the
	// host absorbed.
	ErrContained = errors.New("ipc: hosted component crashed (contained)")
)

// message is the single wire frame (requests, responses and emissions).
type message struct {
	ID   uint64 // correlation; 0 on emissions
	Kind string // "req", "resp", "emit"
	Op   string // req: instantiate|push|bindout|regfilter|unregfilter|outputs

	Name    string // component instance name
	Type    string
	Cfg     map[string]string
	Port    string // receptacle name (bindout, emit)
	Payload []byte

	Spec     string
	Priority int
	Output   string
	FilterID uint64

	Err         string
	Contained   bool
	Provided    []string
	Receptacles []string
	Outputs     []string
}

// wire wraps a conn with gob codecs and a write lock.
type wire struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (w *wire) send(m *message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.enc.Encode(m)
}

func (w *wire) recv() (*message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ---------------------------------------------------------------------------
// Host (isolated address space side)

// reflector is the host-side terminus for a hosted component's output: it
// emits packets back over the wire tagged with the source port.
type reflector struct {
	*core.Base
	w    *wire
	name string
	port string
}

func (r *reflector) Push(p *router.Packet) error {
	data := append([]byte(nil), p.Data...)
	p.Release()
	return r.w.send(&message{Kind: "emit", Name: r.name, Port: r.port, Payload: data})
}

// Host serves one isolated capsule over one connection.
type Host struct {
	capsule *core.Capsule
	w       *wire
	closed  atomic.Bool
}

// NewHost creates a host over conn, instantiating components via reg (nil
// uses the process-wide registry).
func NewHost(conn net.Conn, reg *core.ComponentRegistry) *Host {
	opts := []core.CapsuleOption{}
	if reg != nil {
		opts = append(opts, core.WithComponentRegistry(reg))
	}
	return &Host{
		capsule: core.NewCapsule("ipc-host", opts...),
		w:       newWire(conn),
	}
}

// Serve processes requests until the connection closes. It returns nil on
// orderly shutdown (EOF / closed pipe).
func (h *Host) Serve() error {
	for {
		m, err := h.w.recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || h.closed.Load() {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ipc: host recv: %w", err)
		}
		resp := h.handle(m)
		resp.ID = m.ID
		resp.Kind = "resp"
		if err := h.w.send(resp); err != nil {
			return fmt.Errorf("ipc: host send: %w", err)
		}
	}
}

// Close shuts the host down.
func (h *Host) Close() error {
	h.closed.Store(true)
	return h.w.conn.Close()
}

// handle dispatches one request, containing panics from hosted code.
func (h *Host) handle(m *message) (resp *message) {
	resp = &message{}
	defer func() {
		if r := recover(); r != nil {
			resp.Err = fmt.Sprintf("panic: %v", r)
			resp.Contained = true
		}
	}()
	switch m.Op {
	case "instantiate":
		comp, err := h.capsule.Instantiate(m.Name, m.Type, m.Cfg)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		for _, id := range comp.ProvidedIDs() {
			resp.Provided = append(resp.Provided, string(id))
		}
		for _, rn := range comp.ReceptacleNames() {
			r, _ := comp.Receptacle(rn)
			if r.Iface() == router.IPacketPushID {
				resp.Receptacles = append(resp.Receptacles, rn)
			}
		}
		return resp
	case "bindout":
		// Bind the hosted component's named receptacle to a reflector.
		refl := &reflector{
			Base: core.NewBase("netkit.ipc.Reflector"),
			w:    h.w, name: m.Name, port: m.Port,
		}
		refl.Provide(router.IPacketPushID, refl)
		rname := "refl-" + m.Name + "-" + m.Port
		if err := h.capsule.Insert(rname, refl); err != nil {
			resp.Err = err.Error()
			return resp
		}
		if _, err := h.capsule.Bind(m.Name, m.Port, rname, router.IPacketPushID); err != nil {
			resp.Err = err.Error()
			return resp
		}
		return resp
	case "push":
		comp, ok := h.capsule.Component(m.Name)
		if !ok {
			resp.Err = "no such component"
			return resp
		}
		impl, ok := comp.Provided(router.IPacketPushID)
		if !ok {
			resp.Err = "component does not provide IPacketPush"
			return resp
		}
		if err := impl.(router.IPacketPush).Push(router.NewPacket(m.Payload)); err != nil {
			resp.Err = err.Error()
		}
		return resp
	case "regfilter":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		id, err := cls.RegisterFilter(m.Spec, m.Priority, m.Output)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.FilterID = id
		return resp
	case "unregfilter":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		if err := cls.UnregisterFilter(m.FilterID); err != nil {
			resp.Err = err.Error()
		}
		return resp
	case "outputs":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Outputs = cls.FilterOutputs()
		return resp
	default:
		resp.Err = fmt.Sprintf("unknown op %q", m.Op)
		return resp
	}
}

func (h *Host) classifier(name string) (router.IClassifier, error) {
	comp, ok := h.capsule.Component(name)
	if !ok {
		return nil, fmt.Errorf("no such component %q", name)
	}
	impl, ok := comp.Provided(router.IClassifierID)
	if !ok {
		return nil, fmt.Errorf("component %q does not provide IClassifier", name)
	}
	return impl.(router.IClassifier), nil
}
