// Package ipc realises §5's isolation mechanism: "untrusted constituents
// can be instantiated, and remotely managed by the parent composite, in a
// separate address-space from the parent ... inter-component bindings in
// this case are transparently realised in terms of OS-level IPC mechanisms
// rather than intra-address space vtables".
//
// A Host owns a private capsule in the isolated domain and serves a wire
// protocol over any net.Conn (net.Pipe in tests, TCP between real
// processes). Control operations — instantiate, bind, filter management —
// travel as gob messages; the packet hot path travels as length-prefixed
// binary batch frames pipelined under a credit window (frame.go), which is
// what turns the E6 per-packet crossing cost of ~372× in-proc into the
// bounded amortised cost E18 measures. The parent side holds a
// RemoteComponent — an ordinary core.Component stand-in whose
// IPacketPush/IPacketPushBatch/IClassifier calls cross the wire, and whose
// receptacles deliver packets the remote side emits (batched the same
// way). A panic inside a hosted component is contained by the host and
// surfaces to the caller as an error (crash containment), which E6 checks
// alongside the in-proc/out-of-proc cost gap.
package ipc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/router"
)

// Sentinel errors.
var (
	// ErrRemote wraps an error reported by the remote host.
	ErrRemote = errors.New("ipc: remote error")
	// ErrClosed indicates use of a closed client or host.
	ErrClosed = errors.New("ipc: connection closed")
	// ErrContained indicates a panic inside a hosted component that the
	// host absorbed.
	ErrContained = errors.New("ipc: hosted component crashed (contained)")
)

// message is the gob control frame (requests, responses and fallback
// emissions). Packet batches do not pass through it — see frame.go.
type message struct {
	ID   uint64 // correlation; 0 on emissions
	Kind string // "req", "resp", "emit"
	Op   string // req: instantiate|push|bindout|regfilter|unregfilter|outputs

	Name    string // component instance name
	Type    string
	Cfg     map[string]string
	Port    string // receptacle name (bindout, emit)
	Payload []byte

	Spec     string
	Priority int
	Output   string
	FilterID uint64

	Err         string
	Contained   bool
	Provided    []string
	Receptacles []string
	Outputs     []string
}

// ---------------------------------------------------------------------------
// Host (isolated address space side)

// reflector is the host-side terminus for a hosted component's output: it
// hands emitted packets to the host's emission accumulator, which streams
// them back over the wire as batched 'E' frames.
type reflector struct {
	*core.Base
	h    *Host
	name string
	port string
}

func (r *reflector) Push(p *router.Packet) error {
	err := r.h.emitAppend(r.name, r.port, p.Data)
	p.Release()
	return err
}

// PushBatch keeps the batch capability intact through the boundary: a
// hosted batch-aware component forwards whole batches into the
// accumulator, which coalesces them into as few wire frames as possible.
func (r *reflector) PushBatch(batch []*router.Packet) error {
	failed := 0
	var firstErr error
	for _, p := range batch {
		if err := r.Push(p); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed == 0 {
		return nil
	}
	return &router.BatchError{Failed: failed, Err: firstErr}
}

// emission batching thresholds: flush when the accumulator holds this many
// frames or bytes, at the end of every processed job, and immediately
// while no job is in progress (asynchronous emitters must not stall).
const (
	emitMaxFrames = 128
	emitMaxBytes  = 256 << 10
)

// hostJob is one unit of serialised work: a gob control op or a decoded
// packet batch. A single processor goroutine drains them in arrival order,
// which is what preserves per-flow delivery order across the boundary.
type hostJob struct {
	gob   *message
	slot  uint32
	name  string
	batch []*router.Packet
}

// hostQueueDepth bounds decoded-but-unprocessed batches; beyond it the
// reader stops consuming the conn and backpressure reaches the client's
// credit window through the transport.
const hostQueueDepth = 2 * DefaultWindow

// Host serves one isolated capsule over one connection.
type Host struct {
	capsule *core.Capsule
	w       *wire
	closed  atomic.Bool

	// processor-goroutine state (no locking needed).
	targets  map[string]router.IPacketPush
	lastName string

	// emission accumulator (reflectors append, processor flushes).
	emu        sync.Mutex
	ename      string
	eport      string
	ecount     int
	elens      []int
	edata      []byte
	processing atomic.Bool

	rxBatches       atomic.Uint64
	rxFrames        atomic.Uint64
	rxBytes         atomic.Uint64
	containedFrames atomic.Uint64
	emitBatchN      atomic.Uint64
	emitFrameN      atomic.Uint64
	emitByteN       atomic.Uint64
	gobOps          atomic.Uint64
}

// NewHost creates a host over conn, instantiating components via reg (nil
// uses the process-wide registry).
func NewHost(conn net.Conn, reg *core.ComponentRegistry) *Host {
	opts := []core.CapsuleOption{}
	if reg != nil {
		opts = append(opts, core.WithComponentRegistry(reg))
	}
	return &Host{
		capsule: core.NewCapsule("ipc-host", opts...),
		w:       newWire(conn),
		targets: make(map[string]router.IPacketPush),
	}
}

// Serve processes requests until the connection closes. It returns nil on
// orderly shutdown (EOF / closed pipe). A reader goroutine decodes frames
// into a bounded work queue; a single processor executes them in order and
// writes responses, acks and emission frames.
func (h *Host) Serve() error {
	work := make(chan hostJob, hostQueueDepth)
	procDone := make(chan struct{})
	go h.process(work, procDone)
	err := h.readFrames(work)
	close(work)
	<-procDone
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) || h.closed.Load() {
		return nil
	}
	return fmt.Errorf("ipc: host recv: %w", err)
}

// readFrames decodes the inbound stream into jobs.
func (h *Host) readFrames(work chan<- hostJob) error {
	for {
		kind, err := h.w.readKind()
		if err != nil {
			return err
		}
		switch kind {
		case frameGob:
			m, err := h.w.readGob()
			if err != nil {
				return err
			}
			work <- hostJob{gob: m}
		case frameBatch:
			job, err := h.readBatch()
			if err != nil {
				return err
			}
			work <- job
		default:
			return fmt.Errorf("ipc: unexpected frame kind %q", kind)
		}
	}
}

// readBatch decodes one 'B' frame into carved packets. The payload lands
// in a refcounted slab and every packet aliases it zero-copy, holding one
// slab reference; the slab recycles when the last packet is released.
func (h *Host) readBatch() (hostJob, error) {
	payload, slab, err := h.w.readPayload(nil)
	if err != nil {
		return hostJob{}, err
	}
	release := func() {
		if slab != nil {
			_ = slab.Release()
		}
	}
	r := binReader{b: payload}
	slot := r.u32()
	nameB := r.bytes(int(r.u16()))
	count := int(r.u32())
	if r.err || count < 0 || count > len(payload) {
		release()
		return hostJob{}, errors.New("ipc: malformed batch frame")
	}
	// Intern the hot name: batches from one binding repeat it every frame.
	if string(nameB) != h.lastName {
		h.lastName = string(nameB)
	}
	name := h.lastName
	lens := make([]int, count)
	total := 0
	for i := range lens {
		lens[i] = int(r.u32())
		total += lens[i]
	}
	batch := router.GetBatch()
	pkts := make([]router.Packet, count)
	for i := 0; i < count; i++ {
		data := r.bytes(lens[i])
		if r.err {
			for _, p := range batch {
				p.Release()
			}
			router.PutBatch(batch)
			release()
			return hostJob{}, errors.New("ipc: truncated batch frame")
		}
		pkts[i].Data = data
		pkts[i].Buf = slab // nil when the payload is heap-owned
		batch = append(batch, &pkts[i])
	}
	if slab != nil {
		if count == 0 {
			_ = slab.Release()
		} else {
			slab.RetainN(count - 1) // Get's reference covers the first packet
		}
	}
	h.rxBatches.Add(1)
	h.rxFrames.Add(uint64(count))
	h.rxBytes.Add(uint64(total))
	return hostJob{slot: slot, name: name, batch: batch}, nil
}

// process executes jobs in order: gob ops get a gob response, batches get
// an 'A' ack; buffered emissions flush before either, so by the time the
// client observes a batch outcome its emissions have already landed.
func (h *Host) process(work <-chan hostJob, done chan<- struct{}) {
	defer close(done)
	for job := range work {
		h.processing.Store(true)
		if job.gob != nil {
			h.gobOps.Add(1)
			resp := h.handle(job.gob)
			resp.ID = job.gob.ID
			resp.Kind = "resp"
			h.processing.Store(false)
			h.flushEmit()
			_ = h.w.send(resp)
			continue
		}
		h.deliverBatch(job)
		h.processing.Store(false)
	}
}

// deliverBatch pushes a decoded batch into the hosted component one packet
// at a time, containing per-packet panics, then acks with exact delivered/
// failed counts. Per-packet delivery (rather than handing the component
// the whole batch) is what keeps the counts exact under a mid-batch crash:
// the wire crossing is already amortised, and host-side per-packet push
// costs what the in-proc baseline costs.
func (h *Host) deliverBatch(job hostJob) {
	delivered, failed := 0, 0
	contained := false
	var firstErr string
	dst, err := h.pushTarget(job.name)
	if err != nil {
		for _, p := range job.batch {
			p.Release()
		}
		failed = len(job.batch)
		firstErr = err.Error()
	} else {
		for _, p := range job.batch {
			perr, panicked := pushContained(dst, p)
			if perr != nil {
				failed++
				if panicked {
					contained = true
					h.containedFrames.Add(1)
				}
				if firstErr == "" {
					firstErr = perr.Error()
				}
			} else {
				delivered++
			}
		}
	}
	router.PutBatch(job.batch)
	h.processing.Store(false)
	h.flushEmit()
	ack := encodeAck(job.slot, uint32(delivered), uint32(failed), contained, firstErr)
	_ = h.w.sendRaw(ack)
	putFrame(ack)
}

// pushContained delivers one packet, absorbing a panic from hosted code.
func pushContained(dst router.IPacketPush, p *router.Packet) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
			panicked = true
			p.Release() // idempotent; the component may have died holding it
		}
	}()
	return dst.Push(p), false
}

// pushTarget resolves (and caches) a hosted component's IPacketPush.
func (h *Host) pushTarget(name string) (router.IPacketPush, error) {
	if dst, ok := h.targets[name]; ok {
		return dst, nil
	}
	comp, ok := h.capsule.Component(name)
	if !ok {
		return nil, fmt.Errorf("no such component %q", name)
	}
	impl, ok := comp.Provided(router.IPacketPushID)
	if !ok {
		return nil, fmt.Errorf("component %q does not provide IPacketPush", name)
	}
	dst := impl.(router.IPacketPush)
	h.targets[name] = dst
	return dst, nil
}

// emitAppend accumulates one emitted packet for (name, port). Same-key
// emissions coalesce into one 'E' frame; a key change, a full buffer, the
// end of the current job, or an idle host all flush.
func (h *Host) emitAppend(name, port string, data []byte) error {
	h.emu.Lock()
	defer h.emu.Unlock()
	if h.ecount > 0 && (h.ename != name || h.eport != port) {
		if err := h.flushEmitLocked(); err != nil {
			return err
		}
	}
	h.ename, h.eport = name, port
	h.elens = append(h.elens, len(data))
	h.edata = append(h.edata, data...)
	h.ecount++
	if h.ecount >= emitMaxFrames || len(h.edata) >= emitMaxBytes || !h.processing.Load() {
		return h.flushEmitLocked()
	}
	return nil
}

func (h *Host) flushEmit() {
	h.emu.Lock()
	_ = h.flushEmitLocked()
	h.emu.Unlock()
}

func (h *Host) flushEmitLocked() error {
	if h.ecount == 0 {
		return nil
	}
	buf := beginFrame(getFrame(), frameEmit)
	buf = appendStr(buf, h.ename)
	buf = appendStr(buf, h.eport)
	buf = appendU32(buf, uint32(h.ecount))
	for _, n := range h.elens {
		buf = appendU32(buf, uint32(n))
	}
	buf = append(buf, h.edata...)
	buf = finishFrame(buf)
	err := h.w.sendRaw(buf)
	putFrame(buf)
	h.emitBatchN.Add(1)
	h.emitFrameN.Add(uint64(h.ecount))
	h.emitByteN.Add(uint64(len(h.edata)))
	h.ecount = 0
	h.elens = h.elens[:0]
	h.edata = h.edata[:0]
	return err
}

// Close shuts the host down.
func (h *Host) Close() error {
	h.closed.Store(true)
	return h.w.conn.Close()
}

// Stats implements core.IStats for the host side of the lane.
func (h *Host) Stats() []core.Stat {
	return []core.Stat{
		core.C("ipc_host_rx_batches", "batches", h.rxBatches.Load()),
		core.C("ipc_host_rx_frames", "packets", h.rxFrames.Load()),
		core.C("ipc_host_rx_bytes", "bytes", h.rxBytes.Load()),
		core.C("ipc_host_contained_frames", "packets", h.containedFrames.Load()),
		core.C("ipc_host_emit_batches", "batches", h.emitBatchN.Load()),
		core.C("ipc_host_emit_frames", "packets", h.emitFrameN.Load()),
		core.C("ipc_host_emit_bytes", "bytes", h.emitByteN.Load()),
		core.C("ipc_host_gob_ops", "calls", h.gobOps.Load()),
	}
}

// StatsTree implements core.IStatsTree: the host's own wire counters at
// the root, the isolated capsule's components as children — so a stats
// reader on the host side sees through the boundary.
func (h *Host) StatsTree() core.StatNode {
	node := core.CapsuleStats(h.capsule)
	node.Name = "ipc-host"
	node.Stats = h.Stats()
	return node
}

// handle dispatches one control request, containing panics from hosted
// code.
func (h *Host) handle(m *message) (resp *message) {
	resp = &message{}
	defer func() {
		if r := recover(); r != nil {
			resp.Err = fmt.Sprintf("panic: %v", r)
			resp.Contained = true
		}
	}()
	switch m.Op {
	case "instantiate":
		comp, err := h.capsule.Instantiate(m.Name, m.Type, m.Cfg)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		for _, id := range comp.ProvidedIDs() {
			resp.Provided = append(resp.Provided, string(id))
		}
		for _, rn := range comp.ReceptacleNames() {
			r, _ := comp.Receptacle(rn)
			if r.Iface() == router.IPacketPushID {
				resp.Receptacles = append(resp.Receptacles, rn)
			}
		}
		return resp
	case "bindout":
		// Bind the hosted component's named receptacle to a reflector.
		refl := &reflector{
			Base: core.NewBase("netkit.ipc.Reflector"),
			h:    h, name: m.Name, port: m.Port,
		}
		refl.Provide(router.IPacketPushID, refl)
		rname := "refl-" + m.Name + "-" + m.Port
		if err := h.capsule.Insert(rname, refl); err != nil {
			resp.Err = err.Error()
			return resp
		}
		if _, err := h.capsule.Bind(m.Name, m.Port, rname, router.IPacketPushID); err != nil {
			resp.Err = err.Error()
			return resp
		}
		return resp
	case "push":
		dst, err := h.pushTarget(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		if err := dst.Push(router.NewPacket(m.Payload)); err != nil {
			resp.Err = err.Error()
		}
		return resp
	case "regfilter":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		id, err := cls.RegisterFilter(m.Spec, m.Priority, m.Output)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.FilterID = id
		return resp
	case "unregfilter":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		if err := cls.UnregisterFilter(m.FilterID); err != nil {
			resp.Err = err.Error()
		}
		return resp
	case "outputs":
		cls, err := h.classifier(m.Name)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Outputs = cls.FilterOutputs()
		return resp
	default:
		resp.Err = fmt.Sprintf("unknown op %q", m.Op)
		return resp
	}
}

func (h *Host) classifier(name string) (router.IClassifier, error) {
	comp, ok := h.capsule.Component(name)
	if !ok {
		return nil, fmt.Errorf("no such component %q", name)
	}
	impl, ok := comp.Provided(router.IClassifierID)
	if !ok {
		return nil, fmt.Errorf("component %q does not provide IClassifier", name)
	}
	return impl.(router.IClassifier), nil
}
