// Package nkconfig implements NETKIT's textual configuration language, the
// front-end netkitd loads router configurations from. The syntax is
// Click-inspired (§6 discusses Click's configuration language) but drives
// the Router CF, so everything it builds remains introspectable and
// reconfigurable at run time:
//
//	// declarations
//	src  :: netkit.router.NICSource(device=eth0);
//	cls  :: netkit.router.Classifier(outputs=1);
//	q    :: netkit.router.FIFOQueue(capacity=256);
//	sink :: netkit.router.NICSink(device=eth1);
//
//	// push bindings ("out" is the default port)
//	src -> cls;
//	cls.out0 -> q;
//
//	// pull bindings
//	sched.in0 ~> q;
//
//	// classifier filters
//	filter cls "udp and dst port 53" -> out0 priority 10;
package nkconfig

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"netkit/cf"
	"netkit/core"
	"netkit/router"
)

// Sentinel errors.
var (
	// ErrSyntax indicates a malformed configuration.
	ErrSyntax = errors.New("nkconfig: syntax error")
	// ErrDuplicate indicates a redeclared instance name.
	ErrDuplicate = errors.New("nkconfig: duplicate declaration")
	// ErrUnknownName indicates a binding or filter referencing an
	// undeclared instance.
	ErrUnknownName = errors.New("nkconfig: unknown instance")
)

// Decl is one instance declaration.
type Decl struct {
	Name string
	Type string
	Args map[string]string
	Line int
}

// Bind is one binding statement.
type Bind struct {
	From string
	Port string
	To   string
	Pull bool
	Line int
}

// FilterStmt is one filter installation.
type FilterStmt struct {
	Classifier string
	Spec       string
	Output     string
	Priority   int
	Line       int
}

// Config is a parsed configuration.
type Config struct {
	Decls   []Decl
	Binds   []Bind
	Filters []FilterStmt
}

// Parse reads a configuration text.
func Parse(src string) (*Config, error) {
	cfg := &Config{}
	names := map[string]bool{}
	for _, stmt := range splitStatements(src) {
		line, text := stmt.line, strings.TrimSpace(stmt.text)
		if text == "" {
			continue
		}
		switch {
		case strings.Contains(text, "::"):
			d, err := parseDecl(text, line)
			if err != nil {
				return nil, err
			}
			if names[d.Name] {
				return nil, fmt.Errorf("nkconfig: line %d: %q: %w", line, d.Name, ErrDuplicate)
			}
			names[d.Name] = true
			cfg.Decls = append(cfg.Decls, d)
		case strings.HasPrefix(text, "filter "):
			f, err := parseFilter(text, line)
			if err != nil {
				return nil, err
			}
			cfg.Filters = append(cfg.Filters, f)
		case strings.Contains(text, "->") || strings.Contains(text, "~>"):
			b, err := parseBind(text, line)
			if err != nil {
				return nil, err
			}
			cfg.Binds = append(cfg.Binds, b)
		default:
			return nil, fmt.Errorf("nkconfig: line %d: unrecognised statement %q: %w",
				line, text, ErrSyntax)
		}
	}
	// Reference checking.
	for _, b := range cfg.Binds {
		if !names[b.From] {
			return nil, fmt.Errorf("nkconfig: line %d: %q: %w", b.Line, b.From, ErrUnknownName)
		}
		if !names[b.To] {
			return nil, fmt.Errorf("nkconfig: line %d: %q: %w", b.Line, b.To, ErrUnknownName)
		}
	}
	for _, f := range cfg.Filters {
		if !names[f.Classifier] {
			return nil, fmt.Errorf("nkconfig: line %d: %q: %w", f.Line, f.Classifier, ErrUnknownName)
		}
	}
	return cfg, nil
}

type rawStmt struct {
	text string
	line int
}

// splitStatements strips comments and splits on ';', tracking line
// numbers. Semicolons inside double-quoted strings are preserved.
func splitStatements(src string) []rawStmt {
	var out []rawStmt
	var cur strings.Builder
	line := 1
	startLine := 1
	inStr := false
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			cur.WriteByte(' ')
			i++
		case !inStr && c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
			i++
		case !inStr && c == ';':
			out = append(out, rawStmt{text: cur.String(), line: startLine})
			cur.Reset()
			i++
			startLine = line
		default:
			cur.WriteByte(c)
			i++
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, rawStmt{text: cur.String(), line: startLine})
	}
	return out
}

func parseDecl(text string, line int) (Decl, error) {
	parts := strings.SplitN(text, "::", 2)
	name := strings.TrimSpace(parts[0])
	rest := strings.TrimSpace(parts[1])
	if name == "" || strings.ContainsAny(name, " \t.") {
		return Decl{}, fmt.Errorf("nkconfig: line %d: bad instance name %q: %w", line, name, ErrSyntax)
	}
	d := Decl{Name: name, Args: map[string]string{}, Line: line}
	if i := strings.IndexByte(rest, '('); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return Decl{}, fmt.Errorf("nkconfig: line %d: unterminated args: %w", line, ErrSyntax)
		}
		d.Type = strings.TrimSpace(rest[:i])
		args := rest[i+1 : len(rest)-1]
		if strings.TrimSpace(args) != "" {
			for _, kv := range strings.Split(args, ",") {
				eq := strings.SplitN(kv, "=", 2)
				if len(eq) != 2 {
					return Decl{}, fmt.Errorf("nkconfig: line %d: bad arg %q: %w", line, kv, ErrSyntax)
				}
				k := strings.TrimSpace(eq[0])
				v := strings.Trim(strings.TrimSpace(eq[1]), `"`)
				if k == "" {
					return Decl{}, fmt.Errorf("nkconfig: line %d: empty arg key: %w", line, ErrSyntax)
				}
				d.Args[k] = v
			}
		}
	} else {
		d.Type = rest
	}
	if d.Type == "" {
		return Decl{}, fmt.Errorf("nkconfig: line %d: missing type: %w", line, ErrSyntax)
	}
	return d, nil
}

func parseBind(text string, line int) (Bind, error) {
	pull := strings.Contains(text, "~>")
	sep := "->"
	if pull {
		sep = "~>"
	}
	parts := strings.SplitN(text, sep, 2)
	lhs := strings.TrimSpace(parts[0])
	rhs := strings.TrimSpace(parts[1])
	if lhs == "" || rhs == "" || strings.ContainsAny(rhs, " \t.") {
		return Bind{}, fmt.Errorf("nkconfig: line %d: bad binding %q: %w", line, text, ErrSyntax)
	}
	b := Bind{To: rhs, Pull: pull, Port: "out", Line: line}
	if i := strings.IndexByte(lhs, '.'); i >= 0 {
		b.From = strings.TrimSpace(lhs[:i])
		b.Port = strings.TrimSpace(lhs[i+1:])
	} else {
		b.From = lhs
	}
	if b.From == "" || b.Port == "" {
		return Bind{}, fmt.Errorf("nkconfig: line %d: bad binding %q: %w", line, text, ErrSyntax)
	}
	return b, nil
}

func parseFilter(text string, line int) (FilterStmt, error) {
	// filter <cls> "<spec>" -> <output> [priority N]
	rest := strings.TrimSpace(strings.TrimPrefix(text, "filter"))
	i := strings.IndexByte(rest, '"')
	j := strings.LastIndexByte(rest, '"')
	if i < 0 || j <= i {
		return FilterStmt{}, fmt.Errorf("nkconfig: line %d: filter needs a quoted spec: %w", line, ErrSyntax)
	}
	cls := strings.TrimSpace(rest[:i])
	spec := rest[i+1 : j]
	tail := strings.TrimSpace(rest[j+1:])
	if cls == "" || spec == "" {
		return FilterStmt{}, fmt.Errorf("nkconfig: line %d: bad filter statement: %w", line, ErrSyntax)
	}
	if !strings.HasPrefix(tail, "->") {
		return FilterStmt{}, fmt.Errorf("nkconfig: line %d: filter needs '-> output': %w", line, ErrSyntax)
	}
	tail = strings.TrimSpace(strings.TrimPrefix(tail, "->"))
	fields := strings.Fields(tail)
	f := FilterStmt{Classifier: cls, Spec: spec, Line: line}
	switch len(fields) {
	case 1:
		f.Output = fields[0]
	case 3:
		if fields[1] != "priority" {
			return FilterStmt{}, fmt.Errorf("nkconfig: line %d: expected 'priority': %w", line, ErrSyntax)
		}
		f.Output = fields[0]
		p, err := strconv.Atoi(fields[2])
		if err != nil {
			return FilterStmt{}, fmt.Errorf("nkconfig: line %d: bad priority %q: %w", line, fields[2], ErrSyntax)
		}
		f.Priority = p
	default:
		return FilterStmt{}, fmt.Errorf("nkconfig: line %d: bad filter tail %q: %w", line, tail, ErrSyntax)
	}
	return f, nil
}

// Apply instantiates the configuration into the framework: every declared
// component is constructed through the capsule's loader registry and
// admitted through the CF (so admission rules run), then bindings and
// filters are installed. It returns the first error encountered.
func Apply(cfg *Config, fw *cf.Framework) error {
	capsule := fw.Capsule()
	for _, d := range cfg.Decls {
		comp, err := capsule.ComponentRegistry().New(d.Type, d.Args)
		if err != nil {
			return fmt.Errorf("nkconfig: line %d: %w", d.Line, err)
		}
		if err := fw.Admit(d.Name, comp); err != nil {
			return fmt.Errorf("nkconfig: line %d: %w", d.Line, err)
		}
	}
	for _, b := range cfg.Binds {
		iface := router.IPacketPushID
		if b.Pull {
			iface = router.IPacketPullID
		}
		if _, err := capsule.Bind(b.From, b.Port, b.To, iface); err != nil {
			return fmt.Errorf("nkconfig: line %d: %w", b.Line, err)
		}
	}
	for _, f := range cfg.Filters {
		comp, ok := capsule.Component(f.Classifier)
		if !ok {
			return fmt.Errorf("nkconfig: line %d: %q: %w", f.Line, f.Classifier, ErrUnknownName)
		}
		impl, ok := comp.Provided(router.IClassifierID)
		if !ok {
			return fmt.Errorf("nkconfig: line %d: %q is not a classifier: %w",
				f.Line, f.Classifier, ErrUnknownName)
		}
		cls, ok := impl.(router.IClassifier)
		if !ok {
			return fmt.Errorf("nkconfig: line %d: %q: non-conforming classifier: %w",
				f.Line, f.Classifier, core.ErrTypeMismatch)
		}
		if _, err := cls.RegisterFilter(f.Spec, f.Priority, f.Output); err != nil {
			return fmt.Errorf("nkconfig: line %d: %w", f.Line, err)
		}
	}
	return nil
}

// Load parses and applies in one step.
func Load(src string, fw *cf.Framework) (*Config, error) {
	cfg, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Apply(cfg, fw); err != nil {
		return nil, err
	}
	return cfg, nil
}
