package nkconfig

import (
	"net/netip"
	"testing"

	"netkit/packet"
	"netkit/router"
)

func testPacket(t *testing.T, dstPort uint16) *router.Packet {
	t.Helper()
	b, err := packet.BuildUDP4(
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("192.168.1.1"),
		4000, dstPort, 64, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return router.NewPacket(b)
}
