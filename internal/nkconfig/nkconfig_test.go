package nkconfig

import (
	"errors"
	"testing"

	"netkit/core"
	"netkit/router"
)

const sample = `
// a tiny forwarding configuration
cnt  :: netkit.router.Counter;
cls  :: netkit.router.Classifier(outputs=1);
q    :: netkit.router.FIFOQueue(capacity=8);
sched :: netkit.router.LinkScheduler(policy=drr, inputs=1);
drop :: netkit.router.Dropper;

cnt -> cls;
cls.out0 -> q;
cls.default -> drop;
sched.in0 ~> q;
sched -> drop;

filter cls "udp and dst port 53" -> out0 priority 10;
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 5 {
		t.Fatalf("decls = %d", len(cfg.Decls))
	}
	if len(cfg.Binds) != 5 {
		t.Fatalf("binds = %d", len(cfg.Binds))
	}
	if len(cfg.Filters) != 1 {
		t.Fatalf("filters = %d", len(cfg.Filters))
	}
	if cfg.Decls[1].Args["outputs"] != "1" {
		t.Fatalf("args = %v", cfg.Decls[1].Args)
	}
	if cfg.Binds[0].Port != "out" || cfg.Binds[1].Port != "out0" {
		t.Fatalf("ports = %+v", cfg.Binds[:2])
	}
	pull := cfg.Binds[3]
	if !pull.Pull || pull.From != "sched" || pull.Port != "in0" || pull.To != "q" {
		t.Fatalf("pull bind = %+v", pull)
	}
	f := cfg.Filters[0]
	if f.Classifier != "cls" || f.Spec != "udp and dst port 53" ||
		f.Output != "out0" || f.Priority != 10 {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		src  string
		want error
	}{
		{"x ::;", ErrSyntax},
		{"x y :: t;", ErrSyntax},
		{"x :: t(;", ErrSyntax},
		{"x :: t(a);", ErrSyntax},
		{"x :: t(=v);", ErrSyntax},
		{"x :: t; x :: t;", ErrDuplicate},
		{"x :: t; -> x;", ErrSyntax},
		{"x :: t; x -> ;", ErrSyntax},
		{"x :: t; x -> y;", ErrUnknownName},
		{"x :: t; y -> x;", ErrUnknownName},
		{"x :: t; filter x udp -> a;", ErrSyntax},
		{"x :: t; filter x \"udp\" a;", ErrSyntax},
		{"x :: t; filter x \"udp\" -> a priority b;", ErrSyntax},
		{"x :: t; filter x \"udp\" -> a b c;", ErrSyntax},
		{"x :: t; filter y \"udp\" -> a;", ErrUnknownName},
		{"garbage here;", ErrSyntax},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.src); !errors.Is(err, tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.src, err, tc.want)
		}
	}
}

func TestCommentsAndQuotedSemicolons(t *testing.T) {
	cfg, err := Parse(`
		a :: t1; // trailing comment
		// whole-line comment with ; semicolon
		b :: t2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Decls) != 2 {
		t.Fatalf("decls = %+v", cfg.Decls)
	}
}

func TestApplyBuildsWorkingRouter(t *testing.T) {
	capsule := core.NewCapsule("nk-test")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(sample, fw)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg
	// The graph validates and the CF admitted every declaration.
	if err := capsule.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fw.Members()) != 5 {
		t.Fatalf("members = %v", fw.Members())
	}
	// Push a DNS packet through: counter -> classifier -> queue.
	cnt, _ := capsule.Component("cnt")
	push := mustPush(t, cnt)
	pkt := dnsPacket(t)
	if err := push.Push(pkt); err != nil {
		t.Fatal(err)
	}
	q, _ := capsule.Component("q")
	if got := q.(*router.FIFOQueue).Len(); got != 1 {
		t.Fatalf("queue len = %d", got)
	}
	// The scheduler drains it.
	sched, _ := capsule.Component("sched")
	if served := sched.(*router.LinkScheduler).RunOnce(10); served != 1 {
		t.Fatalf("served = %d", served)
	}
}

func TestApplyRespectsCFRules(t *testing.T) {
	capsule := core.NewCapsule("nk-rules")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		t.Fatal(err)
	}
	// resources task manager is not a packet component: Apply must refuse
	// it through the CF rules. Use a registered non-packet type: none
	// exists, so simulate via an unknown type and a bad-wiring case.
	if _, err := Load("x :: no.such.Type;", fw); err == nil {
		t.Fatal("want error for unknown type")
	}
	// Binding a non-existent receptacle fails at bind time.
	_, err = Load(`
		a :: netkit.router.Counter;
		b :: netkit.router.Counter;
		a.nothere -> b;
	`, fw)
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestApplyFilterToNonClassifier(t *testing.T) {
	capsule := core.NewCapsule("nk-filter")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(`
		a :: netkit.router.Counter;
		filter a "udp" -> out;
	`, fw)
	if !errors.Is(err, ErrUnknownName) {
		t.Fatalf("want ErrUnknownName, got %v", err)
	}
}

func mustPush(t *testing.T, comp core.Component) router.IPacketPush {
	t.Helper()
	impl, ok := comp.Provided(router.IPacketPushID)
	if !ok {
		t.Fatal("component does not provide IPacketPush")
	}
	return impl.(router.IPacketPush)
}

func dnsPacket(t *testing.T) *router.Packet {
	t.Helper()
	return testPacket(t, 53)
}
