package filter

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"netkit/packet"
)

// mkTable installs the given (spec, priority, output) triples.
func mkTable(t *testing.T, rules [][3]string) *Table {
	t.Helper()
	tbl := NewTable()
	for _, r := range rules {
		var prio int
		fmt.Sscanf(r[1], "%d", &prio)
		if _, err := tbl.Add(r[0], prio, r[2]); err != nil {
			t.Fatalf("add %q: %v", r[0], err)
		}
	}
	return tbl
}

func udpView(t *testing.T, srcPort, dstPort uint16) View {
	t.Helper()
	raw, err := packet.BuildUDP4(
		netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		srcPort, dstPort, 64, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	return Extract(raw)
}

// TestCompiledHomogeneousCollapsesToOneSpace: an ACL built from one
// syntactic family compiles into a single tuple space with no residual —
// the shape that makes lookup cost flat in the rule count.
func TestCompiledHomogeneousCollapsesToOneSpace(t *testing.T) {
	tbl := NewTable()
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := tbl.Add(fmt.Sprintf("udp and dst port %d", 20000+i), i, fmt.Sprintf("out%d", i%4)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tbl.Snapshot()
	ct := snap.Compiled()
	if ct.Spaces() != 1 {
		t.Fatalf("expected 1 tuple space, got %d", ct.Spaces())
	}
	if ct.ResidualLen() != 0 {
		t.Fatalf("expected empty residual, got %d", ct.ResidualLen())
	}
	if !snap.FlowSafe() || !snap.CacheWorthwhile() {
		t.Fatalf("port/proto rules should be flow-safe and cache-worthy")
	}
	for _, port := range []uint16{20000, 20999, 20500} {
		v := udpView(t, 1234, port)
		out, ok := snap.Lookup(&v)
		wantOut, wantOk := tbl.LookupViewVM(&v)
		if out != wantOut || ok != wantOk {
			t.Fatalf("port %d: compiled (%q,%v) vs vm (%q,%v)", port, out, ok, wantOut, wantOk)
		}
		if !ok {
			t.Fatalf("port %d should match", port)
		}
	}
	v := udpView(t, 1234, 53)
	if _, ok := snap.Lookup(&v); ok {
		t.Fatal("port 53 should miss")
	}
}

// TestCompiledFirstMatchOrder: overlapping rules resolve by (priority,
// insertion) order even when the candidates come from different tuple
// spaces and the residual list.
func TestCompiledFirstMatchOrder(t *testing.T) {
	tbl := NewTable()
	// Force tuple-space mode with filler beyond linearCutoff.
	for i := 0; i < linearCutoff+1; i++ {
		if _, err := tbl.Add(fmt.Sprintf("tcp and dst port %d", 40000+i), 90, "filler"); err != nil {
			t.Fatal(err)
		}
	}
	// Three overlapping matches for a udp dst-port-53 packet:
	//  - priority 10, hashed (proto+dstport space)
	//  - priority 5, residual (port range)
	//  - priority 7, different space (proto only)
	if _, err := tbl.Add("udp and dst port 53", 10, "hashed"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add("udp and dst port 50-60", 5, "residual"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add("udp", 7, "space2"); err != nil {
		t.Fatal(err)
	}
	v := udpView(t, 1111, 53)
	assertBoth := func(want string) {
		t.Helper()
		out, ok := tbl.Snapshot().Lookup(&v)
		if !ok || out != want {
			t.Fatalf("compiled gave (%q,%v), want %q", out, ok, want)
		}
		out, ok = tbl.LookupViewVM(&v)
		if !ok || out != want {
			t.Fatalf("vm gave (%q,%v), want %q", out, ok, want)
		}
	}
	assertBoth("residual")

	// Remove the best; the next by priority wins — and the compiled
	// snapshot rebuilds on the new generation.
	var residualID uint64
	for _, r := range tbl.Rules() {
		if r.Output == "residual" {
			residualID = r.ID
		}
	}
	if err := tbl.Remove(residualID); err != nil {
		t.Fatal(err)
	}
	assertBoth("space2")
}

// TestCompiledSmallTableStaysLinear: tables at or under the cutoff keep
// the ordered VM walk and are never cache-worthy.
func TestCompiledSmallTableStaysLinear(t *testing.T) {
	tbl := mkTable(t, [][3]string{
		{"udp and dst port 53", "1", "dns"},
		{"tcp", "2", "tcp"},
	})
	snap := tbl.Snapshot()
	if snap.Compiled().Spaces() != 0 {
		t.Fatalf("small table should be linear, got %d spaces", snap.Compiled().Spaces())
	}
	if snap.CacheWorthwhile() {
		t.Fatal("small table should not be cache-worthy")
	}
	v := udpView(t, 9, 53)
	if out, ok := snap.Lookup(&v); !ok || out != "dns" {
		t.Fatalf("got (%q,%v)", out, ok)
	}
}

// TestCompiledFlowSafety: any ttl/len/tos comparison anywhere in the
// table (including under NOT) must mark the whole snapshot unsafe for
// per-flow caching; removing it restores safety.
func TestCompiledFlowSafety(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < linearCutoff+2; i++ {
		if _, err := tbl.Add(fmt.Sprintf("udp and dst port %d", 100+i), i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.Snapshot().FlowSafe() {
		t.Fatal("pure 5-tuple table should be flow-safe")
	}
	id, err := tbl.Add("not (ttl > 3)", 50, "lowttl")
	if err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	if snap.FlowSafe() || snap.CacheWorthwhile() {
		t.Fatal("ttl comparison must disable flow-caching")
	}
	if err := tbl.Remove(id); err != nil {
		t.Fatal(err)
	}
	if !tbl.Snapshot().FlowSafe() {
		t.Fatal("flow safety should return once the cmp rule is gone")
	}
}

// TestCompiledDNFCapFallsBack: a rule whose DNF expansion exceeds the cap
// still matches, via the residual VM program.
func TestCompiledDNFCapFallsBack(t *testing.T) {
	// (a or b) and (c or d) and ... beyond maxClauses clauses.
	spec := "(dst port 1 or dst port 2) and (src port 1 or src port 2) and " +
		"(ttl > 0 or ttl < 5) and (len > 0 or len < 5) and (tos == 0 or tos != 1)"
	tbl := NewTable()
	for i := 0; i < linearCutoff+1; i++ {
		if _, err := tbl.Add(fmt.Sprintf("tcp and dst port %d", 300+i), 1, "filler"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Add(spec, 0, "big"); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	if snap.Compiled().ResidualLen() == 0 {
		t.Fatal("exploding rule should land in the residual list")
	}
	v := udpView(t, 1, 2)
	out, ok := snap.Lookup(&v)
	wantOut, wantOk := tbl.LookupViewVM(&v)
	if out != wantOut || ok != wantOk {
		t.Fatalf("compiled (%q,%v) vs vm (%q,%v)", out, ok, wantOut, wantOk)
	}
}

// TestSnapshotGenerationFreeze: a snapshot taken before a mutation keeps
// answering from its own generation, while the table moves on — the
// contract batch classification relies on.
func TestSnapshotGenerationFreeze(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < linearCutoff+3; i++ {
		if _, err := tbl.Add(fmt.Sprintf("udp and dst port %d", 7000+i), i, "old"); err != nil {
			t.Fatal(err)
		}
	}
	before := tbl.Snapshot()
	g := before.Gen()
	if tbl.Gen() != g {
		t.Fatalf("table gen %d, snapshot gen %d", tbl.Gen(), g)
	}
	if _, err := tbl.Add("udp and dst port 7000", -1, "new"); err != nil {
		t.Fatal(err)
	}
	if tbl.Gen() == g {
		t.Fatal("mutation must advance the generation")
	}
	v := udpView(t, 1, 7000)
	if out, _ := before.Lookup(&v); out != "old" {
		t.Fatalf("frozen snapshot gave %q", out)
	}
	if out, _ := tbl.Snapshot().Lookup(&v); out != "new" {
		t.Fatalf("fresh snapshot gave %q", out)
	}
}

// TestCompiledRandomisedEquivalence is the in-process cousin of
// FuzzCompiledEquivalence: random rule sets (sizes straddling the linear
// cutoff) against random views, compiled verdict == VM verdict.
func TestCompiledRandomisedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for round := 0; round < 150; round++ {
		nRules := 1 + rng.Intn(24)
		tbl := NewTable()
		for i := 0; i < nRules; i++ {
			n := genNode(rng, 3)
			if _, err := tbl.Add(n.String(), rng.Intn(5), fmt.Sprintf("o%d", rng.Intn(3))); err != nil {
				t.Fatalf("add %q: %v", n.String(), err)
			}
		}
		snap := tbl.Snapshot()
		for i := 0; i < 48; i++ {
			v := randView(rng)
			gotOut, gotOk := snap.Lookup(&v)
			wantOut, wantOk := tbl.LookupViewVM(&v)
			if gotOut != wantOut || gotOk != wantOk {
				t.Fatalf("round %d view %+v: compiled (%q,%v) vs vm (%q,%v); rules %v",
					round, v, gotOut, gotOk, wantOut, wantOk, tbl.Rules())
			}
		}
	}
}
