package filter

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// genNode builds a random AST of bounded depth from a seeded PRNG.
func genNode(rng *rand.Rand, depth int) Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(7) {
		case 0:
			v := 4
			if rng.Intn(2) == 0 {
				v = 6
			}
			return &VersionNode{V: v}
		case 1:
			return &ProtoNode{Proto: uint8(rng.Intn(256))}
		case 2:
			return &HostNode{Dir: Dir(1 + rng.Intn(2)), Addr: randAddr(rng)}
		case 3:
			bits := rng.Intn(33)
			pfx, _ := randAddr4(rng).Prefix(bits)
			return &NetNode{Dir: Dir(1 + rng.Intn(2)), Prefix: pfx}
		case 4:
			lo := uint16(rng.Intn(65536))
			hi := lo + uint16(rng.Intn(int(65535-lo)+1))
			return &PortNode{Dir: Dir(rng.Intn(3)), Lo: lo, Hi: hi}
		default:
			return &CmpNode{
				Field: NumField(1 + rng.Intn(3)),
				Op:    CmpOp(1 + rng.Intn(6)),
				Val:   rng.Intn(300),
			}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &AndNode{L: genNode(rng, depth-1), R: genNode(rng, depth-1)}
	case 1:
		return &OrNode{L: genNode(rng, depth-1), R: genNode(rng, depth-1)}
	default:
		return &NotNode{X: genNode(rng, depth-1)}
	}
}

func randAddr4(rng *rand.Rand) netip.Addr {
	var b [4]byte
	rng.Read(b[:])
	return netip.AddrFrom4(b)
}

func randAddr(rng *rand.Rand) netip.Addr {
	if rng.Intn(2) == 0 {
		return randAddr4(rng)
	}
	var b [16]byte
	rng.Read(b[:])
	return netip.AddrFrom16(b)
}

func randView(rng *rand.Rand) View {
	v := View{
		Version:  []int{0, 4, 6}[rng.Intn(3)],
		Proto:    uint8(rng.Intn(256)),
		SrcPort:  uint16(rng.Intn(65536)),
		DstPort:  uint16(rng.Intn(65536)),
		HasPorts: rng.Intn(2) == 0,
		TTL:      uint8(rng.Intn(256)),
		TOS:      uint8(rng.Intn(256)),
		Len:      rng.Intn(2000),
	}
	if v.Version == 4 {
		v.Src, v.Dst = randAddr4(rng), randAddr4(rng)
	} else if v.Version == 6 {
		var b [16]byte
		rng.Read(b[:])
		v.Src = netip.AddrFrom16(b)
		rng.Read(b[:])
		v.Dst = netip.AddrFrom16(b)
	}
	return v
}

// TestQuickClosureVMEquivalence: for random ASTs and random packet views,
// the closure compiler and the instruction VM agree. This pins the VM (the
// in-band representation) to the reference semantics.
func TestQuickClosureVMEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genNode(rng, 4)
		c, err := CompileClosure(n)
		if err != nil {
			return false
		}
		p, err := CompileProgram(n)
		if err != nil {
			return false
		}
		for i := 0; i < 32; i++ {
			v := randView(rng)
			if c.Match(&v) != p.Match(&v) {
				t.Logf("divergence on %s with view %+v", n, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRenderReparse: rendering a random AST and reparsing it yields an
// AST with identical matching behaviour (String() is a faithful syntax).
func TestQuickRenderReparse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genNode(rng, 3)
		n2, err := Parse(n.String())
		if err != nil {
			t.Logf("reparse of %q failed: %v", n.String(), err)
			return false
		}
		c1, err := CompileClosure(n)
		if err != nil {
			return false
		}
		c2, err := CompileClosure(n2)
		if err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			v := randView(rng)
			if c1.Match(&v) != c2.Match(&v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
