package filter

import (
	"errors"
	"net/netip"
	"testing"

	"netkit/packet"
)

var (
	srcA = netip.MustParseAddr("10.1.2.3")
	dstA = netip.MustParseAddr("192.168.0.9")
	src6 = netip.MustParseAddr("2001:db8::1")
	dst6 = netip.MustParseAddr("2001:db8::2")
)

func udp4(t *testing.T, sp, dp uint16, ttl uint8) []byte {
	t.Helper()
	b, err := packet.BuildUDP4(srcA, dstA, sp, dp, ttl, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func tcp4(t *testing.T, sp, dp uint16) []byte {
	t.Helper()
	b, err := packet.BuildTCP4(srcA, dstA, sp, dp, 64, packet.TCPSyn, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func udp6(t *testing.T, sp, dp uint16) []byte {
	t.Helper()
	b, err := packet.BuildUDP6(src6, dst6, sp, dp, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// match compiles spec with BOTH compilers and asserts they agree before
// returning the verdict; every test therefore doubles as an equivalence
// check between the closure and VM matchers.
func match(t *testing.T, spec string, raw []byte) bool {
	t.Helper()
	c, err := Compile(spec)
	if err != nil {
		t.Fatalf("Compile(%q): %v", spec, err)
	}
	p, err := CompileToProgram(spec)
	if err != nil {
		t.Fatalf("CompileToProgram(%q): %v", spec, err)
	}
	v := Extract(raw)
	got, gotVM := c.Match(&v), p.Match(&v)
	if got != gotVM {
		t.Fatalf("spec %q: closure=%v vm=%v", spec, got, gotVM)
	}
	return got
}

func TestBasicMatches(t *testing.T) {
	u := udp4(t, 5000, 53, 64)
	cases := []struct {
		spec string
		want bool
	}{
		{"ip", true},
		{"ip6", false},
		{"udp", true},
		{"tcp", false},
		{"icmp", false},
		{"proto 17", true},
		{"proto 6", false},
		{"src host 10.1.2.3", true},
		{"src host 10.1.2.4", false},
		{"dst host 192.168.0.9", true},
		{"dst host 10.1.2.3", false},
		{"src net 10.0.0.0/8", true},
		{"src net 11.0.0.0/8", false},
		{"dst net 192.168.0.0/16", true},
		{"src port 5000", true},
		{"dst port 53", true},
		{"dst port 54", false},
		{"port 53", true},
		{"port 5000", true},
		{"port 54", false},
		{"dst port 50-60", true},
		{"dst port 54-60", false},
		{"ttl == 64", true},
		{"ttl 64", true},
		{"ttl != 64", false},
		{"ttl < 65", true},
		{"ttl <= 64", true},
		{"ttl > 64", false},
		{"ttl >= 65", false},
		{"len > 10", true},
		{"tos == 0", true},
	}
	for _, tc := range cases {
		if got := match(t, tc.spec, u); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	u := udp4(t, 5000, 53, 64)
	tc6 := udp6(t, 1, 2)
	cases := []struct {
		spec string
		raw  []byte
		want bool
	}{
		{"ip and udp", u, true},
		{"ip and tcp", u, false},
		{"tcp or udp", u, true},
		{"tcp or icmp", u, false},
		{"not tcp", u, true},
		{"not udp", u, false},
		{"not not udp", u, true},
		{"ip and (dst port 53 or dst port 80)", u, true},
		{"ip and (dst port 81 or dst port 80)", u, false},
		{"ip6 and udp", tc6, true},
		{"ip6 and udp and src host 2001:db8::1", tc6, true},
		{"ip6 and src net 2001:db8::/32", tc6, true},
		{"ip or ip6", tc6, true},
		{"not (tcp or icmp)", u, true},
	}
	for _, tc := range cases {
		if got := match(t, tc.spec, tc.raw); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestTCPMatch(t *testing.T) {
	p := tcp4(t, 443, 55000)
	if !match(t, "tcp and src port 443", p) {
		t.Fatal("tcp match failed")
	}
	if match(t, "udp and src port 443", p) {
		t.Fatal("udp should not match tcp packet")
	}
}

func TestUnparseablePacketFailsClosed(t *testing.T) {
	junk := []byte{0xff, 0x01, 0x02}
	for _, spec := range []string{"ip", "udp", "not udp", "ttl < 200", "port 1"} {
		if match(t, spec, junk) {
			t.Errorf("%q matched junk packet", spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"and",
		"ip and",
		"ip banana",
		"(ip",
		"ip)",
		"src",
		"src host",
		"src host notanaddr",
		"src net 10.0.0.1", // not a CIDR
		"port",
		"port 70000",      // out of range
		"dst port 100-50", // inverted
		"proto 300",       // out of range
		"ttl ^ 5",         // bad operator
		"ttl <",
		"ip ip",        // trailing
		"src port 1 2", // trailing
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error %v is not *SyntaxError", spec, err)
			}
		}
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	specs := []string{
		"ip and udp",
		"(tcp or udp) and dst port 53",
		"not icmp",
		"src net 10.0.0.0/8 and ttl < 5",
		"dst port 1000-2000",
		"ip6 and src host 2001:db8::1",
		"tos >= 46",
		"proto 47",
	}
	for _, spec := range specs {
		n, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", spec, n.String(), err)
		}
		if n.String() != n2.String() {
			t.Errorf("unstable render: %q -> %q -> %q", spec, n.String(), n2.String())
		}
	}
}

func TestProgramLenAndString(t *testing.T) {
	p, err := CompileToProgram("ip and udp and dst port 53")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 { // 3 tests + 2 ands
		t.Fatalf("program length = %d, want 5", p.Len())
	}
	if p.String() == "" {
		t.Fatal("empty program string")
	}
}

func TestDeepExpressionStack(t *testing.T) {
	// Build an expression deeper than the VM's fixed stack (16) to exercise
	// the allocating path: right-leaning ors need one stack slot per level.
	spec := "dst port 1"
	for i := 2; i <= 40; i++ {
		spec = "dst port " + itoa(i) + " or (" + spec + ")"
	}
	u := udp4(t, 9, 1, 64)
	if !match(t, spec, u) {
		t.Fatal("deep expression failed to match")
	}
	u2 := udp4(t, 9, 500, 64)
	if match(t, spec, u2) {
		t.Fatal("deep expression false positive")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestProtoConstantsAgreeWithPacket(t *testing.T) {
	if protoTCP != packet.ProtoTCP || protoUDP != packet.ProtoUDP || protoICMP != packet.ProtoICMP {
		t.Fatal("filter proto constants diverge from packet package")
	}
}

// ---- table -----------------------------------------------------------------

func TestTableFirstMatchWins(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Add("udp and dst port 53", 10, "dns"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add("udp", 20, "udp-any"); err != nil {
		t.Fatal(err)
	}
	out, ok := tbl.Lookup(udp4(t, 1, 53, 64))
	if !ok || out != "dns" {
		t.Fatalf("lookup = %q %v", out, ok)
	}
	out, ok = tbl.Lookup(udp4(t, 1, 80, 64))
	if !ok || out != "udp-any" {
		t.Fatalf("lookup = %q %v", out, ok)
	}
}

func TestTablePriorityOrdering(t *testing.T) {
	tbl := NewTable()
	// Insert the broad rule first but with a later priority.
	if _, err := tbl.Add("udp", 20, "broad"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add("udp and dst port 53", 10, "specific"); err != nil {
		t.Fatal(err)
	}
	out, _ := tbl.Lookup(udp4(t, 1, 53, 64))
	if out != "specific" {
		t.Fatalf("priority not honoured: got %q", out)
	}
	rules := tbl.Rules()
	if len(rules) != 2 || rules[0].Output != "specific" {
		t.Fatalf("rules order = %+v", rules)
	}
}

func TestTableTieBreakByInsertion(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Add("udp", 10, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add("udp", 10, "second"); err != nil {
		t.Fatal(err)
	}
	out, _ := tbl.Lookup(udp4(t, 1, 1, 64))
	if out != "first" {
		t.Fatalf("tie break = %q", out)
	}
}

func TestTableRemove(t *testing.T) {
	tbl := NewTable()
	id, err := tbl.Add("udp", 10, "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(id); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if err := tbl.Remove(id); !errors.Is(err, ErrRuleNotFound) {
		t.Fatalf("want ErrRuleNotFound, got %v", err)
	}
	if _, ok := tbl.Lookup(udp4(t, 1, 1, 64)); ok {
		t.Fatal("matched after removal")
	}
}

func TestTableBadSpecRejected(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Add("not a valid ((", 1, "x"); err == nil {
		t.Fatal("want error")
	}
	if tbl.Len() != 0 {
		t.Fatal("bad rule installed")
	}
}

func TestTableStats(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Add("udp", 1, "u"); err != nil {
		t.Fatal(err)
	}
	tbl.Lookup(udp4(t, 1, 1, 64)) // match
	tbl.Lookup(tcp4(t, 1, 2))     // miss
	m, mi := tbl.Stats()
	if m != 1 || mi != 1 {
		t.Fatalf("stats = %d/%d", m, mi)
	}
}

func TestTableConcurrentLookupDuringMutation(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Add("udp", 100, "base"); err != nil {
		t.Fatal(err)
	}
	pkt := udp4(t, 1, 53, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if _, ok := tbl.Lookup(pkt); !ok {
				t.Error("base rule vanished")
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		id, err := tbl.Add("udp and dst port 53", 10, "dns")
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
