package filter

import (
	"fmt"
	"net/netip"
	"strconv"
)

// Parse compiles a filter specification into its AST. An empty or
// whitespace-only spec is an error; use the explicit "ip or ip6" to match
// everything.
func Parse(spec string) (Node, error) {
	toks, err := lex(spec)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, &SyntaxError{p.peek().pos, fmt.Sprintf("trailing input %q", p.peek().text)}
	}
	return n, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectWord(w string) error {
	t := p.next()
	if t.kind != tokWord || t.text != w {
		return &SyntaxError{t.pos, fmt.Sprintf("expected %q, got %q", w, t.text)}
	}
	return nil
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrNode{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndNode{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokWord && t.text == "not":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotNode{X: x}, nil
	case t.kind == tokLParen:
		p.next()
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if tt := p.next(); tt.kind != tokRParen {
			return nil, &SyntaxError{tt.pos, "expected )"}
		}
		return x, nil
	default:
		return p.parseTest()
	}
}

func (p *parser) parseTest() (Node, error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected test, got %q", t.text)}
	}
	switch t.text {
	case "ip":
		return &VersionNode{V: 4}, nil
	case "ip6":
		return &VersionNode{V: 6}, nil
	case "tcp":
		return &ProtoNode{Proto: protoTCP}, nil
	case "udp":
		return &ProtoNode{Proto: protoUDP}, nil
	case "icmp":
		return &ProtoNode{Proto: protoICMP}, nil
	case "proto":
		n, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		if n > 255 {
			return nil, &SyntaxError{t.pos, fmt.Sprintf("proto %d out of range", n)}
		}
		return &ProtoNode{Proto: uint8(n)}, nil
	case "src", "dst":
		dir := DirSrc
		if t.text == "dst" {
			dir = DirDst
		}
		return p.parseDirectedTest(dir)
	case "port":
		return p.parsePortTail(DirEither, t.pos)
	case "ttl", "len", "tos":
		var f NumField
		switch t.text {
		case "ttl":
			f = FieldTTL
		case "len":
			f = FieldLen
		case "tos":
			f = FieldTOS
		}
		return p.parseCmpTail(f)
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unknown test %q", t.text)}
	}
}

func (p *parser) parseDirectedTest(dir Dir) (Node, error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected host/net/port after %s", dir)}
	}
	switch t.text {
	case "host":
		a := p.next()
		if a.kind != tokAddr {
			return nil, &SyntaxError{a.pos, fmt.Sprintf("expected address, got %q", a.text)}
		}
		addr, err := netip.ParseAddr(a.text)
		if err != nil {
			return nil, &SyntaxError{a.pos, fmt.Sprintf("bad address %q: %v", a.text, err)}
		}
		return &HostNode{Dir: dir, Addr: addr}, nil
	case "net":
		a := p.next()
		if a.kind != tokAddr {
			return nil, &SyntaxError{a.pos, fmt.Sprintf("expected CIDR, got %q", a.text)}
		}
		pfx, err := netip.ParsePrefix(a.text)
		if err != nil {
			return nil, &SyntaxError{a.pos, fmt.Sprintf("bad CIDR %q: %v", a.text, err)}
		}
		return &NetNode{Dir: dir, Prefix: pfx.Masked()}, nil
	case "port":
		return p.parsePortTail(dir, t.pos)
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unknown directed test %q", t.text)}
	}
}

func (p *parser) parsePortTail(dir Dir, pos int) (Node, error) {
	lo, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	hi := lo
	if p.peek().kind == tokDash {
		p.next()
		hi, err = p.parseNum()
		if err != nil {
			return nil, err
		}
	}
	if lo > 65535 || hi > 65535 {
		return nil, &SyntaxError{pos, fmt.Sprintf("port %d-%d out of range", lo, hi)}
	}
	if hi < lo {
		return nil, &SyntaxError{pos, fmt.Sprintf("inverted port range %d-%d", lo, hi)}
	}
	return &PortNode{Dir: dir, Lo: uint16(lo), Hi: uint16(hi)}, nil
}

func (p *parser) parseCmpTail(f NumField) (Node, error) {
	t := p.next()
	var op CmpOp
	if t.kind == tokOp {
		switch t.text {
		case "==":
			op = CmpEq
		case "!=":
			op = CmpNe
		case "<":
			op = CmpLt
		case "<=":
			op = CmpLe
		case ">":
			op = CmpGt
		case ">=":
			op = CmpGe
		}
	} else if t.kind == tokNum {
		// "ttl 5" sugar for "ttl == 5"
		v, _ := strconv.Atoi(t.text)
		return &CmpNode{Field: f, Op: CmpEq, Val: v}, nil
	} else {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected comparison after %s", f)}
	}
	v, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	return &CmpNode{Field: f, Op: op, Val: v}, nil
}

func (p *parser) parseNum() (int, error) {
	t := p.next()
	if t.kind != tokNum {
		return 0, &SyntaxError{t.pos, fmt.Sprintf("expected number, got %q", t.text)}
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, &SyntaxError{t.pos, fmt.Sprintf("bad number %q", t.text)}
	}
	return n, nil
}
