package filter

import (
	"net/netip"
	"sort"
)

// This file is the compiled classification backend (DESIGN.md §7): a
// tuple-space-search structure that makes table lookup cost flat in the
// rule count, replacing the linear walk over per-rule VM programs that E5
// shows degrading ~1000× from 1 to 1024 rules. The VM interpreter stays
// as the reference oracle (Table.LookupViewVM); FuzzCompiledEquivalence
// pins this backend to it for arbitrary rule sets and packets.
//
// The scheme, in the match-action-table tradition of the programmable
// data-plane literature:
//
//  1. Each rule's AST is expanded to disjunctive normal form, treating
//     NOT subtrees as opaque literals (the VM's "not" carries a parsed
//     guard, so De Morgan pushdown would change semantics; AND/OR are
//     pure booleans over position-independent leaf tests, so
//     distribution is exact). Expansion is capped — a rule whose DNF
//     exceeds maxClauses falls back to the residual list, matched by its
//     own VM program.
//  2. Each conjunctive clause contributes exact-match dimensions —
//     version, protocol, src/dst host, src/dst single port — forming a
//     field mask. Clauses sharing a mask live in one tuple space: a hash
//     table keyed by the masked field values. Range ports, prefixes,
//     either-direction ports, comparisons and NOT literals stay out of
//     the key and are re-checked by the clause's verify matcher, so a
//     hash probe only ever *narrows* to candidates — it never decides.
//  3. Lookup probes each space once (one key computation + one map
//     access), verifies candidates in rule order, scans the residual
//     list, and returns the first match by (priority, insertion) order —
//     identical first-match semantics to the linear walk.
//
// Cost is O(#spaces + residual) per lookup: rule sets built from one
// syntactic family (the common case — an ACL of "proto and port" rules)
// collapse into a single space, giving the flat E15 curve. Tables at or
// under linearCutoff rules skip the machinery entirely and keep the
// linear VM walk, which is cheaper than hashing at that size.

// tssDim enumerates the exact-match key dimensions.
type tssDim int

const (
	dimVersion tssDim = iota
	dimProto
	dimSrcAddr
	dimDstAddr
	dimSrcPort
	dimDstPort
	numDims
)

// dimMask is a bitset of tssDim.
type dimMask uint8

// maxClauses bounds the DNF expansion of one rule; beyond it the rule is
// matched linearly from the residual list.
const maxClauses = 16

// linearCutoff is the table size at or below which compilation keeps the
// plain ordered VM walk (hashing costs more than it saves there).
const linearCutoff = 4

// 64-bit FNV-1a parameters, word-at-a-time (key mixing, not a wire format).
const (
	fnv64Init  uint64 = 14695981039346656037
	fnv64Prime uint64 = 1099511628211
)

func mix64(h, v uint64) uint64 { return (h ^ v) * fnv64Prime }

// addrKey collapses a netip.Addr to a key word such that a == b implies
// addrKey(a) == addrKey(b): the 16-byte form plus the Is4 bit (which
// distinguishes a v4 address from its 4-in-6 mapping, exactly as ==
// does). Collisions between unequal addresses are harmless — the verify
// matcher re-checks equality.
func addrKey(a netip.Addr) uint64 {
	b := a.As16()
	h := fnv64Init
	for i := 0; i < 16; i += 8 {
		w := uint64(b[i])<<56 | uint64(b[i+1])<<48 | uint64(b[i+2])<<40 |
			uint64(b[i+3])<<32 | uint64(b[i+4])<<24 | uint64(b[i+5])<<16 |
			uint64(b[i+6])<<8 | uint64(b[i+7])
		h = mix64(h, w)
	}
	if a.Is4() {
		h = mix64(h, 4)
	}
	return h
}

// tssEntry is one matchable unit: a clause (or whole residual rule) with
// its global evaluation order and routed output.
type tssEntry struct {
	order  int // index into the priority-ordered rule list
	verify Matcher
	output string
}

// tupleSpace is one mask's hash table. Buckets keep entries in ascending
// order, so the first verified candidate in a bucket is the best the
// space can offer.
type tupleSpace struct {
	mask    dimMask
	buckets map[uint64][]tssEntry
}

// keyOf computes the lookup key of v under the space's mask. Dimension
// order is fixed (ascending tssDim) so rule-side and view-side keys agree.
func (sp *tupleSpace) keyOf(v *View) uint64 {
	h := fnv64Init
	m := sp.mask
	if m&(1<<dimVersion) != 0 {
		h = mix64(h, uint64(v.Version))
	}
	if m&(1<<dimProto) != 0 {
		h = mix64(h, uint64(v.Proto))
	}
	if m&(1<<dimSrcAddr) != 0 {
		h = mix64(h, addrKey(v.Src))
	}
	if m&(1<<dimDstAddr) != 0 {
		h = mix64(h, addrKey(v.Dst))
	}
	if m&(1<<dimSrcPort) != 0 {
		h = mix64(h, uint64(v.SrcPort))
	}
	if m&(1<<dimDstPort) != 0 {
		h = mix64(h, uint64(v.DstPort))
	}
	return h
}

// CompiledTable is the compiled form of one rule-set snapshot.
type CompiledTable struct {
	linear   []tssEntry // small-table mode: plain ordered walk, spaces nil
	spaces   []*tupleSpace
	residual []tssEntry // non-decomposable / keyless clauses, ascending order
	flowSafe bool
	rules    int
}

// Rules returns the number of rules compiled in.
func (ct *CompiledTable) Rules() int { return ct.rules }

// Spaces returns the tuple-space count (diagnostic; the per-lookup probe
// cost is proportional to it).
func (ct *CompiledTable) Spaces() int { return len(ct.spaces) }

// ResidualLen returns the number of linearly-scanned entries.
func (ct *CompiledTable) ResidualLen() int { return len(ct.residual) + len(ct.linear) }

// FlowSafe reports whether every verdict is a pure function of the flow
// identity fields a View carries for the 5-tuple — Version, Src, Dst,
// Proto, SrcPort, DstPort, HasPorts. Numeric comparisons (ttl/len/tos)
// read outside that set and vary packet-to-packet within one flow, so
// their presence anywhere in the table makes per-flow verdict caching
// unsound; the router's megaflow cache keys on exactly those fields and
// engages only when this holds.
func (ct *CompiledTable) FlowSafe() bool { return ct.flowSafe }

// Lookup classifies v: the output of the first matching rule in
// (priority, insertion) order, or "" and false. Behaviourally identical
// to the linear VM walk (fuzz-proven).
func (ct *CompiledTable) Lookup(v *View) (string, bool) {
	if ct.spaces == nil {
		for _, e := range ct.linear {
			if e.verify.Match(v) {
				return e.output, true
			}
		}
		return "", false
	}
	best := -1
	var out string
	for _, sp := range ct.spaces {
		bucket := sp.buckets[sp.keyOf(v)]
		for i := range bucket {
			e := &bucket[i]
			if best >= 0 && e.order >= best {
				break
			}
			if e.verify.Match(v) {
				best, out = e.order, e.output
				break
			}
		}
	}
	for i := range ct.residual {
		e := &ct.residual[i]
		if best >= 0 && e.order >= best {
			break
		}
		if e.verify.Match(v) {
			best, out = e.order, e.output
			break
		}
	}
	if best >= 0 {
		return out, true
	}
	return "", false
}

// CompileTable builds the tuple-space structure over rules, which must be
// in evaluation (priority, insertion) order — the order Table snapshots
// maintain. Rules whose AST is unavailable or whose DNF explodes are kept
// on the residual list under their VM program, so compilation never
// rejects a rule the interpreter accepts.
func CompileTable(rules []*Rule) *CompiledTable {
	ct := &CompiledTable{flowSafe: true, rules: len(rules)}
	for _, r := range rules {
		if r.ast != nil && usesNumCmp(r.ast) {
			ct.flowSafe = false
		}
	}
	if len(rules) <= linearCutoff {
		for i, r := range rules {
			ct.linear = append(ct.linear, tssEntry{order: i, verify: r.prog, output: r.Output})
		}
		return ct
	}
	spaces := make(map[dimMask]*tupleSpace)
	for i, r := range rules {
		entryFor := func(verify Matcher) tssEntry {
			return tssEntry{order: i, verify: verify, output: r.Output}
		}
		clauses, ok := [][]Node(nil), false
		if r.ast != nil {
			clauses, ok = dnf(r.ast, maxClauses)
		}
		if !ok {
			ct.residual = append(ct.residual, entryFor(r.prog))
			continue
		}
		for _, clause := range clauses {
			verify, err := clauseMatcher(clause)
			if err != nil {
				// Unknown node kind: fall back to the whole rule's program.
				ct.residual = append(ct.residual, entryFor(r.prog))
				break
			}
			mask, key := clauseKey(clause)
			if mask == 0 {
				ct.residual = append(ct.residual, entryFor(verify))
				continue
			}
			sp := spaces[mask]
			if sp == nil {
				sp = &tupleSpace{mask: mask, buckets: make(map[uint64][]tssEntry)}
				spaces[mask] = sp
			}
			// Rules iterate in ascending order, so buckets stay sorted.
			sp.buckets[key] = append(sp.buckets[key], entryFor(verify))
		}
	}
	ct.spaces = make([]*tupleSpace, 0, len(spaces))
	for _, sp := range spaces {
		ct.spaces = append(ct.spaces, sp)
	}
	// Deterministic probe order (map iteration order is not): by mask.
	sort.Slice(ct.spaces, func(i, j int) bool { return ct.spaces[i].mask < ct.spaces[j].mask })
	return ct
}

// dnf expands n into disjunctive normal form: a list of conjunctive
// clauses, each a list of literal nodes (leaves and whole NOT subtrees).
// AND/OR in the filter VM are pure boolean combiners of position-
// independent leaf tests, so ∧-over-∨ distribution preserves semantics
// exactly; NOT carries a parsed guard and is therefore never pushed down.
// Returns ok=false when the clause count would exceed limit.
func dnf(n Node, limit int) ([][]Node, bool) {
	switch t := n.(type) {
	case *AndNode:
		ls, ok := dnf(t.L, limit)
		if !ok {
			return nil, false
		}
		rs, ok := dnf(t.R, limit)
		if !ok {
			return nil, false
		}
		if len(ls)*len(rs) > limit {
			return nil, false
		}
		out := make([][]Node, 0, len(ls)*len(rs))
		for _, l := range ls {
			for _, r := range rs {
				clause := make([]Node, 0, len(l)+len(r))
				clause = append(clause, l...)
				clause = append(clause, r...)
				out = append(out, clause)
			}
		}
		return out, true
	case *OrNode:
		ls, ok := dnf(t.L, limit)
		if !ok {
			return nil, false
		}
		rs, ok := dnf(t.R, limit)
		if !ok {
			return nil, false
		}
		if len(ls)+len(rs) > limit {
			return nil, false
		}
		return append(ls, rs...), true
	default:
		return [][]Node{{n}}, true
	}
}

// clauseMatcher compiles the conjunction of the clause's literals to the
// closure reference semantics.
func clauseMatcher(clause []Node) (Matcher, error) {
	node := clause[0]
	for _, n := range clause[1:] {
		node = &AndNode{L: node, R: n}
	}
	return CompileClosure(node)
}

// clauseKey extracts the clause's exact-match dimensions and computes its
// bucket key (same dimension order and mixing as tupleSpace.keyOf). When
// a clause constrains one dimension twice, the first occurrence keys it;
// the verify matcher enforces the rest (a contradictory clause simply
// never verifies).
func clauseKey(clause []Node) (dimMask, uint64) {
	var vals [numDims]uint64
	var mask dimMask
	set := func(d tssDim, v uint64) {
		if mask&(1<<d) == 0 {
			mask |= 1 << d
			vals[d] = v
		}
	}
	for _, n := range clause {
		switch t := n.(type) {
		case *VersionNode:
			set(dimVersion, uint64(t.V))
		case *ProtoNode:
			set(dimProto, uint64(t.Proto))
		case *HostNode:
			if t.Dir == DirSrc {
				set(dimSrcAddr, addrKey(t.Addr))
			} else {
				set(dimDstAddr, addrKey(t.Addr))
			}
		case *PortNode:
			if t.Lo != t.Hi {
				continue // range: verify-only
			}
			switch t.Dir {
			case DirSrc:
				set(dimSrcPort, uint64(t.Lo))
			case DirDst:
				set(dimDstPort, uint64(t.Lo))
			}
			// DirEither: verify-only (matches on either port; no single
			// dimension captures it).
		}
	}
	h := fnv64Init
	for d := tssDim(0); d < numDims; d++ {
		if mask&(1<<d) != 0 {
			h = mix64(h, vals[d])
		}
	}
	return mask, h
}

// usesNumCmp reports whether the AST contains a numeric-field comparison
// (ttl/len/tos) anywhere — the tests whose inputs vary within one flow.
func usesNumCmp(n Node) bool {
	switch t := n.(type) {
	case *AndNode:
		return usesNumCmp(t.L) || usesNumCmp(t.R)
	case *OrNode:
		return usesNumCmp(t.L) || usesNumCmp(t.R)
	case *NotNode:
		return usesNumCmp(t.X)
	case *CmpNode:
		return true
	default:
		return false
	}
}
