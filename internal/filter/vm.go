package filter

import (
	"fmt"
	"net/netip"
)

// opcode is a VM instruction code. The VM is a postfix stack machine over
// booleans and small integers — the flattened, data-driven representation
// the classifier runs in-band where instruction counts matter.
type opcode uint8

const (
	opVersion opcode = iota + 1 // push bool: Version == arg
	opProto                     // push bool: Proto == arg (and parseable)
	opHostSrc                   // push bool: Src == addr
	opHostDst                   // push bool: Dst == addr
	opNetSrc                    // push bool: prefix contains Src
	opNetDst                    // push bool: prefix contains Dst
	opPortSrc                   // push bool: lo <= SrcPort <= hi
	opPortDst                   // push bool: lo <= DstPort <= hi
	opPortAny                   // push bool: either port in range
	opCmp                       // push bool: field `cmpOp` arg
	opAnd                       // pop 2 bools, push conjunction
	opOr                        // pop 2 bools, push disjunction
	opNot                       // pop bool, push negation (false when unparseable)
)

// instr is one VM instruction. Only the fields relevant to the opcode are
// populated.
type instr struct {
	op     opcode
	arg    int
	arg2   int
	field  NumField
	cmp    CmpOp
	addr   netip.Addr
	prefix netip.Prefix
}

// Program is a compiled filter: a linear postfix instruction sequence.
type Program struct {
	ins      []instr
	maxStack int
	src      string
}

// Len returns the instruction count (E5 reports matcher cost per
// instruction).
func (p *Program) Len() int { return len(p.ins) }

// String returns the original specification if known.
func (p *Program) String() string { return p.src }

// CompileProgram flattens the AST into a postfix Program.
func CompileProgram(n Node) (*Program, error) {
	p := &Program{}
	depth, err := p.emit(n)
	if err != nil {
		return nil, err
	}
	p.maxStack = depth
	p.src = n.String()
	return p, nil
}

// CompileToProgram parses and program-compiles a spec in one step.
func CompileToProgram(spec string) (*Program, error) {
	n, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return CompileProgram(n)
}

// emit appends instructions for n and returns the maximum stack depth the
// subtree needs.
func (p *Program) emit(n Node) (int, error) {
	switch t := n.(type) {
	case *AndNode:
		dl, err := p.emit(t.L)
		if err != nil {
			return 0, err
		}
		dr, err := p.emit(t.R)
		if err != nil {
			return 0, err
		}
		p.ins = append(p.ins, instr{op: opAnd})
		return maxInt(dl, dr+1), nil
	case *OrNode:
		dl, err := p.emit(t.L)
		if err != nil {
			return 0, err
		}
		dr, err := p.emit(t.R)
		if err != nil {
			return 0, err
		}
		p.ins = append(p.ins, instr{op: opOr})
		return maxInt(dl, dr+1), nil
	case *NotNode:
		d, err := p.emit(t.X)
		if err != nil {
			return 0, err
		}
		p.ins = append(p.ins, instr{op: opNot})
		return d, nil
	case *VersionNode:
		p.ins = append(p.ins, instr{op: opVersion, arg: t.V})
		return 1, nil
	case *ProtoNode:
		p.ins = append(p.ins, instr{op: opProto, arg: int(t.Proto)})
		return 1, nil
	case *HostNode:
		op := opHostSrc
		if t.Dir == DirDst {
			op = opHostDst
		}
		p.ins = append(p.ins, instr{op: op, addr: t.Addr})
		return 1, nil
	case *NetNode:
		op := opNetSrc
		if t.Dir == DirDst {
			op = opNetDst
		}
		p.ins = append(p.ins, instr{op: op, prefix: t.Prefix})
		return 1, nil
	case *PortNode:
		var op opcode
		switch t.Dir {
		case DirSrc:
			op = opPortSrc
		case DirDst:
			op = opPortDst
		default:
			op = opPortAny
		}
		p.ins = append(p.ins, instr{op: op, arg: int(t.Lo), arg2: int(t.Hi)})
		return 1, nil
	case *CmpNode:
		p.ins = append(p.ins, instr{op: opCmp, field: t.Field, cmp: t.Op, arg: t.Val})
		return 1, nil
	default:
		return 0, fmt.Errorf("filter: cannot compile node %T", n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Match implements Matcher by executing the program over a fixed-size
// stack. Programs with maxStack <= 16 run allocation-free.
func (p *Program) Match(v *View) bool {
	var fixed [16]bool
	stack := fixed[:0]
	if p.maxStack > len(fixed) {
		stack = make([]bool, 0, p.maxStack)
	}
	parsed := v.Version != 0
	for i := range p.ins {
		in := &p.ins[i]
		switch in.op {
		case opVersion:
			stack = append(stack, v.Version == in.arg)
		case opProto:
			stack = append(stack, parsed && int(v.Proto) == in.arg)
		case opHostSrc:
			stack = append(stack, parsed && v.Src == in.addr)
		case opHostDst:
			stack = append(stack, parsed && v.Dst == in.addr)
		case opNetSrc:
			stack = append(stack, parsed && in.prefix.Contains(v.Src))
		case opNetDst:
			stack = append(stack, parsed && in.prefix.Contains(v.Dst))
		case opPortSrc:
			stack = append(stack, v.HasPorts &&
				int(v.SrcPort) >= in.arg && int(v.SrcPort) <= in.arg2)
		case opPortDst:
			stack = append(stack, v.HasPorts &&
				int(v.DstPort) >= in.arg && int(v.DstPort) <= in.arg2)
		case opPortAny:
			stack = append(stack, v.HasPorts &&
				((int(v.SrcPort) >= in.arg && int(v.SrcPort) <= in.arg2) ||
					(int(v.DstPort) >= in.arg && int(v.DstPort) <= in.arg2)))
		case opCmp:
			stack = append(stack, parsed && in.cmp.eval(v.numField(in.field), in.arg))
		case opAnd:
			n := len(stack)
			stack[n-2] = stack[n-2] && stack[n-1]
			stack = stack[:n-1]
		case opOr:
			n := len(stack)
			stack[n-2] = stack[n-2] || stack[n-1]
			stack = stack[:n-1]
		case opNot:
			n := len(stack)
			stack[n-1] = parsed && !stack[n-1]
		}
	}
	return len(stack) == 1 && stack[0]
}

var _ Matcher = (*Program)(nil)
