package filter

import (
	"net/netip"

	"netkit/packet"
)

// View is the per-packet field cache both matchers evaluate against. It is
// extracted once per packet (by the classifier) and shared across all
// filter evaluations, so the per-rule cost is pure field comparison.
type View struct {
	Version  int // 4, 6, or 0 when unparseable
	Src, Dst netip.Addr
	Proto    uint8
	SrcPort  uint16
	DstPort  uint16
	HasPorts bool
	TTL      uint8 // hop limit for v6
	TOS      uint8 // traffic class for v6
	Len      int   // total packet length in bytes
}

// Extract builds a View from a raw IP packet. Unparseable packets yield a
// zero-version View, which matches no test (so filters fail closed).
func Extract(raw []byte) View {
	v := View{Len: len(raw)}
	switch packet.Version(raw) {
	case 4:
		h, err := packet.ParseIPv4(raw)
		if err != nil {
			return v
		}
		v.Version = 4
		v.Src, v.Dst = h.Src, h.Dst
		v.Proto = h.Protocol
		v.TTL = h.TTL
		v.TOS = h.TOS
		fillViewPorts(&v, raw[h.IHL:h.TotalLen])
	case 6:
		h, err := packet.ParseIPv6(raw)
		if err != nil {
			return v
		}
		v.Version = 6
		v.Src, v.Dst = h.Src, h.Dst
		v.Proto = h.NextHeader
		v.TTL = h.HopLimit
		v.TOS = h.TrafficClass
		fillViewPorts(&v, raw[packet.IPv6HeaderLen:])
	}
	return v
}

func fillViewPorts(v *View, payload []byte) {
	switch v.Proto {
	case packet.ProtoTCP, packet.ProtoUDP:
		if len(payload) >= 4 {
			v.SrcPort = uint16(payload[0])<<8 | uint16(payload[1])
			v.DstPort = uint16(payload[2])<<8 | uint16(payload[3])
			v.HasPorts = true
		}
	}
}

// numField reads the named numeric field.
func (v *View) numField(f NumField) int {
	switch f {
	case FieldTTL:
		return int(v.TTL)
	case FieldLen:
		return v.Len
	case FieldTOS:
		return int(v.TOS)
	default:
		return 0
	}
}
