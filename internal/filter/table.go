package filter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Table errors.
var (
	// ErrRuleNotFound indicates removal of an unknown rule ID.
	ErrRuleNotFound = errors.New("filter: rule not found")
)

// Rule is one installed filter: a compiled specification routed to a named
// output. Rules are evaluated in priority order (lower first; insertion
// order breaks ties), matching the paper's requirement that a classifier
// honours "the semantics of installed filter specifications in terms of
// the particular named outgoing interface(s)".
type Rule struct {
	ID       uint64
	Spec     string
	Priority int
	Output   string
	prog     *Program
}

// Table is an ordered, concurrency-safe rule set. Lookup is lock-free on
// the fast path: the rule list is an immutable snapshot swapped atomically
// on mutation (classification happens on every packet; rule churn is rare).
type Table struct {
	mu     sync.Mutex // serialises mutations
	nextID uint64
	rules  atomic.Pointer[[]*Rule]

	matches atomic.Uint64
	misses  atomic.Uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	empty := make([]*Rule, 0)
	t.rules.Store(&empty)
	return t
}

// Add compiles spec and installs it routed to output with the given
// priority, returning the rule ID.
func (t *Table) Add(spec string, priority int, output string) (uint64, error) {
	prog, err := CompileToProgram(spec)
	if err != nil {
		return 0, fmt.Errorf("filter: add rule: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	r := &Rule{ID: t.nextID, Spec: spec, Priority: priority, Output: output, prog: prog}
	old := *t.rules.Load()
	next := make([]*Rule, 0, len(old)+1)
	inserted := false
	for _, have := range old {
		if !inserted && r.Priority < have.Priority {
			next = append(next, r)
			inserted = true
		}
		next = append(next, have)
	}
	if !inserted {
		next = append(next, r)
	}
	t.rules.Store(&next)
	return r.ID, nil
}

// Remove uninstalls a rule by ID.
func (t *Table) Remove(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.rules.Load()
	next := make([]*Rule, 0, len(old))
	found := false
	for _, r := range old {
		if r.ID == id {
			found = true
			continue
		}
		next = append(next, r)
	}
	if !found {
		return fmt.Errorf("filter: rule %d: %w", id, ErrRuleNotFound)
	}
	t.rules.Store(&next)
	return nil
}

// Lookup classifies a packet, returning the output of the first matching
// rule and true, or "" and false when nothing matches.
func (t *Table) Lookup(raw []byte) (string, bool) {
	v := Extract(raw)
	return t.LookupView(&v)
}

// LookupView classifies a pre-extracted view.
func (t *Table) LookupView(v *View) (string, bool) {
	for _, r := range *t.rules.Load() {
		if r.prog.Match(v) {
			t.matches.Add(1)
			return r.Output, true
		}
	}
	t.misses.Add(1)
	return "", false
}

// Rules returns a snapshot of the installed rules in evaluation order.
func (t *Table) Rules() []Rule {
	cur := *t.rules.Load()
	out := make([]Rule, len(cur))
	for i, r := range cur {
		out[i] = *r
	}
	return out
}

// Len returns the installed rule count.
func (t *Table) Len() int { return len(*t.rules.Load()) }

// Stats returns (matches, misses) counters.
func (t *Table) Stats() (matches, misses uint64) {
	return t.matches.Load(), t.misses.Load()
}
