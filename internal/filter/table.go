package filter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Table errors.
var (
	// ErrRuleNotFound indicates removal of an unknown rule ID.
	ErrRuleNotFound = errors.New("filter: rule not found")
)

// Rule is one installed filter: a compiled specification routed to a named
// output. Rules are evaluated in priority order (lower first; insertion
// order breaks ties), matching the paper's requirement that a classifier
// honours "the semantics of installed filter specifications in terms of
// the particular named outgoing interface(s)".
type Rule struct {
	ID       uint64
	Spec     string
	Priority int
	Output   string
	prog     *Program
	ast      Node // retained for the tuple-space compiler (DESIGN.md §7)
}

// ruleSet is one immutable rule-list snapshot plus its generation stamp.
// The generation increments on every mutation; downstream per-flow verdict
// caches key their entries on it, so a rule change invalidates cached
// verdicts with the same atomic publication that makes the change itself
// visible — no separate flush protocol.
type ruleSet struct {
	rules []*Rule
	gen   uint64
}

// Table is an ordered, concurrency-safe rule set. Lookup is lock-free on
// the fast path: the rule list is an immutable snapshot swapped atomically
// on mutation (classification happens on every packet; rule churn is rare),
// and the tuple-space compiled form of the snapshot (tss.go) is built
// lazily, once per generation, on first lookup after a mutation.
type Table struct {
	mu     sync.Mutex // serialises mutations
	nextID uint64
	rules  atomic.Pointer[ruleSet]

	compileMu sync.Mutex // serialises lazy compilation
	compiled  atomic.Pointer[Snapshot]

	matches atomic.Uint64
	misses  atomic.Uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	t.rules.Store(&ruleSet{rules: make([]*Rule, 0), gen: 1})
	return t
}

// Add compiles spec and installs it routed to output with the given
// priority, returning the rule ID.
func (t *Table) Add(spec string, priority int, output string) (uint64, error) {
	n, err := Parse(spec)
	if err != nil {
		return 0, fmt.Errorf("filter: add rule: %w", err)
	}
	prog, err := CompileProgram(n)
	if err != nil {
		return 0, fmt.Errorf("filter: add rule: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	r := &Rule{ID: t.nextID, Spec: spec, Priority: priority, Output: output, prog: prog, ast: n}
	cur := t.rules.Load()
	next := make([]*Rule, 0, len(cur.rules)+1)
	inserted := false
	for _, have := range cur.rules {
		if !inserted && r.Priority < have.Priority {
			next = append(next, r)
			inserted = true
		}
		next = append(next, have)
	}
	if !inserted {
		next = append(next, r)
	}
	t.rules.Store(&ruleSet{rules: next, gen: cur.gen + 1})
	return r.ID, nil
}

// Remove uninstalls a rule by ID.
func (t *Table) Remove(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.rules.Load()
	next := make([]*Rule, 0, len(cur.rules))
	found := false
	for _, r := range cur.rules {
		if r.ID == id {
			found = true
			continue
		}
		next = append(next, r)
	}
	if !found {
		return fmt.Errorf("filter: rule %d: %w", id, ErrRuleNotFound)
	}
	t.rules.Store(&ruleSet{rules: next, gen: cur.gen + 1})
	return nil
}

// Gen returns the rule-set generation: it changes on every Add/Remove, so
// a cached verdict stamped with the generation it was computed under is
// provably from the current rule set iff the stamps match.
func (t *Table) Gen() uint64 { return t.rules.Load().gen }

// Snapshot is one generation's compiled lookup structure. It stays valid
// (and behaviourally frozen) after further table mutations — callers that
// batch lookups take one snapshot per batch, exactly like the classifier's
// output-set snapshot discipline.
type Snapshot struct {
	t   *Table
	ct  *CompiledTable
	gen uint64
}

// Gen returns the generation this snapshot was compiled from.
func (s *Snapshot) Gen() uint64 { return s.gen }

// FlowSafe reports whether verdicts are pure functions of the 5-tuple
// flow identity (see CompiledTable.FlowSafe) — the precondition for
// fronting this snapshot with a per-flow verdict cache.
func (s *Snapshot) FlowSafe() bool { return s.ct.FlowSafe() }

// Compiled exposes the underlying compiled table (diagnostics, benches).
func (s *Snapshot) Compiled() *CompiledTable { return s.ct }

// CacheWorthwhile reports whether fronting this snapshot with a per-flow
// cache can pay off: the verdict must be flow-pure, and the table large
// enough that a probe beats reclassification (small tables run the linear
// walk, which is already cheaper than a cache probe).
func (s *Snapshot) CacheWorthwhile() bool {
	return s.ct.FlowSafe() && s.ct.spaces != nil
}

// Lookup classifies a view against this snapshot, counting the verdict on
// the owning table.
func (s *Snapshot) Lookup(v *View) (string, bool) {
	out, ok := s.ct.Lookup(v)
	if ok {
		s.t.matches.Add(1)
	} else {
		s.t.misses.Add(1)
	}
	return out, ok
}

// Snapshot returns the compiled form of the current rule set, building it
// (once per generation, under compileMu) if this generation has not been
// looked up yet. The fast path is two atomic loads and a comparison.
func (t *Table) Snapshot() *Snapshot {
	rs := t.rules.Load()
	if cs := t.compiled.Load(); cs != nil && cs.gen == rs.gen {
		return cs
	}
	t.compileMu.Lock()
	defer t.compileMu.Unlock()
	rs = t.rules.Load()
	if cs := t.compiled.Load(); cs != nil && cs.gen == rs.gen {
		return cs
	}
	cs := &Snapshot{t: t, ct: CompileTable(rs.rules), gen: rs.gen}
	t.compiled.Store(cs)
	return cs
}

// Lookup classifies a packet, returning the output of the first matching
// rule and true, or "" and false when nothing matches.
func (t *Table) Lookup(raw []byte) (string, bool) {
	v := Extract(raw)
	return t.LookupView(&v)
}

// LookupView classifies a pre-extracted view through the compiled backend.
func (t *Table) LookupView(v *View) (string, bool) {
	return t.Snapshot().Lookup(v)
}

// LookupViewVM classifies through the linear walk of per-rule VM programs
// — the reference oracle the compiled backend is fuzz-checked against
// (FuzzCompiledEquivalence), kept as the independent semantics. It does
// not touch the match/miss counters.
func (t *Table) LookupViewVM(v *View) (string, bool) {
	for _, r := range t.rules.Load().rules {
		if r.prog.Match(v) {
			return r.Output, true
		}
	}
	return "", false
}

// Rules returns a snapshot of the installed rules in evaluation order.
func (t *Table) Rules() []Rule {
	cur := t.rules.Load()
	out := make([]Rule, len(cur.rules))
	for i, r := range cur.rules {
		out[i] = *r
	}
	return out
}

// Len returns the installed rule count.
func (t *Table) Len() int { return len(t.rules.Load().rules) }

// Stats returns (matches, misses) counters.
func (t *Table) Stats() (matches, misses uint64) {
	return t.matches.Load(), t.misses.Load()
}
