package filter

import "fmt"

// Matcher decides whether a packet (as a pre-extracted View) satisfies a
// filter specification.
type Matcher interface {
	Match(v *View) bool
}

// MatcherFunc adapts a function to the Matcher interface.
type MatcherFunc func(v *View) bool

// Match implements Matcher.
func (f MatcherFunc) Match(v *View) bool { return f(v) }

// CompileClosure compiles the AST into a tree of Go closures: the reference
// semantics. Each node becomes a function; evaluation short-circuits like
// the source expression.
func CompileClosure(n Node) (Matcher, error) {
	f, err := closure(n)
	if err != nil {
		return nil, err
	}
	return MatcherFunc(f), nil
}

func closure(n Node) (func(*View) bool, error) {
	switch t := n.(type) {
	case *AndNode:
		l, err := closure(t.L)
		if err != nil {
			return nil, err
		}
		r, err := closure(t.R)
		if err != nil {
			return nil, err
		}
		return func(v *View) bool { return l(v) && r(v) }, nil
	case *OrNode:
		l, err := closure(t.L)
		if err != nil {
			return nil, err
		}
		r, err := closure(t.R)
		if err != nil {
			return nil, err
		}
		return func(v *View) bool { return l(v) || r(v) }, nil
	case *NotNode:
		x, err := closure(t.X)
		if err != nil {
			return nil, err
		}
		return func(v *View) bool { return v.Version != 0 && !x(v) }, nil
	case *VersionNode:
		ver := t.V
		return func(v *View) bool { return v.Version == ver }, nil
	case *ProtoNode:
		p := t.Proto
		return func(v *View) bool { return v.Version != 0 && v.Proto == p }, nil
	case *HostNode:
		addr, dir := t.Addr, t.Dir
		return func(v *View) bool {
			if v.Version == 0 {
				return false
			}
			if dir == DirSrc {
				return v.Src == addr
			}
			return v.Dst == addr
		}, nil
	case *NetNode:
		pfx, dir := t.Prefix, t.Dir
		return func(v *View) bool {
			if v.Version == 0 {
				return false
			}
			if dir == DirSrc {
				return pfx.Contains(v.Src)
			}
			return pfx.Contains(v.Dst)
		}, nil
	case *PortNode:
		lo, hi, dir := t.Lo, t.Hi, t.Dir
		return func(v *View) bool {
			if !v.HasPorts {
				return false
			}
			switch dir {
			case DirSrc:
				return v.SrcPort >= lo && v.SrcPort <= hi
			case DirDst:
				return v.DstPort >= lo && v.DstPort <= hi
			default:
				return (v.SrcPort >= lo && v.SrcPort <= hi) ||
					(v.DstPort >= lo && v.DstPort <= hi)
			}
		}, nil
	case *CmpNode:
		f, op, val := t.Field, t.Op, t.Val
		return func(v *View) bool {
			return v.Version != 0 && op.eval(v.numField(f), val)
		}, nil
	default:
		return nil, fmt.Errorf("filter: unknown node %T", n)
	}
}

// Compile parses and closure-compiles a specification in one step.
func Compile(spec string) (Matcher, error) {
	n, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return CompileClosure(n)
}
