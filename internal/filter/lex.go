// Package filter implements the packet-filter specification language used
// by the Router CF's IClassifier interface (§5: "register_filter() ... the
// component must honour the semantics of installed filter specifications").
//
// The language is a tcpdump-flavoured boolean expression grammar:
//
//	expr    = or
//	or      = and { "or" and }
//	and     = unary { "and" unary }
//	unary   = "not" unary | "(" expr ")" | test
//	test    = "ip" | "ip6" | "tcp" | "udp" | "icmp"
//	        | ("src"|"dst") "host" ADDR
//	        | ("src"|"dst") "net" CIDR
//	        | ["src"|"dst"] "port" NUM [ "-" NUM ]
//	        | "proto" NUM
//	        | ("ttl"|"len"|"tos") CMP NUM
//	CMP     = "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Specifications compile to two interchangeable matchers: a closure tree
// (simple, used as the reference semantics) and a postfix instruction
// program executed by a small stack VM (the performance representation,
// analogous to the paper's concern that in-band functions must count
// machine instructions with care). Experiment E5 compares the two.
package filter

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF  tokenKind = iota + 1
	tokWord           // identifiers/keywords: ip, tcp, src, host, ...
	tokNum            // decimal number
	tokAddr           // something address-like: 10.0.0.1, 2001:db8::1, 10.0.0.0/8
	tokLParen
	tokRParen
	tokOp // comparison operator
	tokDash
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("filter: syntax error at %d: %s", e.Pos, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '-':
			toks = append(toks, token{tokDash, "-", i})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			start := i
			i++
			if i < len(src) && src[i] == '=' {
				i++
			}
			op := src[start:i]
			switch op {
			case "==", "!=", "<", "<=", ">", ">=":
				toks = append(toks, token{tokOp, op, start})
			default:
				return nil, &SyntaxError{start, fmt.Sprintf("bad operator %q", op)}
			}
		case isAddrByte(c):
			start := i
			for i < len(src) && isAddrByte(src[i]) {
				i++
			}
			text := src[start:i]
			switch {
			case isNumber(text):
				toks = append(toks, token{tokNum, text, start})
			case strings.ContainsAny(text, ".:/"):
				toks = append(toks, token{tokAddr, text, start})
			case isWord(text):
				toks = append(toks, token{tokWord, strings.ToLower(text), start})
			default:
				return nil, &SyntaxError{start, fmt.Sprintf("bad token %q", text)}
			}
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isAddrByte(c byte) bool {
	return c == '.' || c == ':' || c == '/' ||
		('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c == '_'
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func isWord(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return unicode.IsLetter(rune(s[0]))
}
