package filter

import (
	"fmt"
	"net/netip"
	"strings"
)

// Node is a filter expression AST node.
type Node interface {
	// String renders the node back to valid filter syntax.
	String() string
}

// AndNode is logical conjunction.
type AndNode struct{ L, R Node }

// OrNode is logical disjunction.
type OrNode struct{ L, R Node }

// NotNode is logical negation.
type NotNode struct{ X Node }

// String implements Node.
func (n *AndNode) String() string { return fmt.Sprintf("(%s and %s)", n.L, n.R) }

// String implements Node.
func (n *OrNode) String() string { return fmt.Sprintf("(%s or %s)", n.L, n.R) }

// String implements Node.
func (n *NotNode) String() string { return fmt.Sprintf("not %s", n.X) }

// Dir selects which address/port a test applies to.
type Dir int

// Direction values.
const (
	DirEither Dir = iota // either src or dst (ports only)
	DirSrc
	DirDst
)

func (d Dir) String() string {
	switch d {
	case DirSrc:
		return "src"
	case DirDst:
		return "dst"
	default:
		return "either"
	}
}

// VersionNode tests the IP version (4 or 6).
type VersionNode struct{ V int }

// String implements Node.
func (n *VersionNode) String() string {
	if n.V == 6 {
		return "ip6"
	}
	return "ip"
}

// ProtoNode tests the IP protocol / next header.
type ProtoNode struct{ Proto uint8 }

// String implements Node.
func (n *ProtoNode) String() string {
	switch n.Proto {
	case protoTCP:
		return "tcp"
	case protoUDP:
		return "udp"
	case protoICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto %d", n.Proto)
	}
}

// HostNode tests an exact src/dst address.
type HostNode struct {
	Dir  Dir
	Addr netip.Addr
}

// String implements Node.
func (n *HostNode) String() string { return fmt.Sprintf("%s host %s", n.Dir, n.Addr) }

// NetNode tests src/dst membership in a prefix.
type NetNode struct {
	Dir    Dir
	Prefix netip.Prefix
}

// String implements Node.
func (n *NetNode) String() string { return fmt.Sprintf("%s net %s", n.Dir, n.Prefix) }

// PortNode tests a src/dst/either port against an inclusive range
// (Lo == Hi for a single port).
type PortNode struct {
	Dir    Dir
	Lo, Hi uint16
}

// String implements Node.
func (n *PortNode) String() string {
	var b strings.Builder
	if n.Dir != DirEither {
		fmt.Fprintf(&b, "%s ", n.Dir)
	}
	fmt.Fprintf(&b, "port %d", n.Lo)
	if n.Hi != n.Lo {
		fmt.Fprintf(&b, "-%d", n.Hi)
	}
	return b.String()
}

// CmpOp is a numeric comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// eval applies the operator.
func (o CmpOp) eval(a, b int) bool {
	switch o {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	default:
		return false
	}
}

// NumField identifies a numeric packet field usable in comparisons.
type NumField int

// Numeric fields.
const (
	FieldTTL NumField = iota + 1
	FieldLen
	FieldTOS
)

func (f NumField) String() string {
	switch f {
	case FieldTTL:
		return "ttl"
	case FieldLen:
		return "len"
	case FieldTOS:
		return "tos"
	default:
		return "?"
	}
}

// CmpNode compares a numeric field against a constant.
type CmpNode struct {
	Field NumField
	Op    CmpOp
	Val   int
}

// String implements Node.
func (n *CmpNode) String() string { return fmt.Sprintf("%s %s %d", n.Field, n.Op, n.Val) }

// protocol numbers, local to avoid importing packet (keeps the language
// layer dependency-free; equivalence with packet's constants is asserted
// in tests).
const (
	protoICMP = 1
	protoTCP  = 6
	protoUDP  = 17
)
