package filter

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzCompiledEquivalence pins the tuple-space compiled backend to the VM
// interpreter: for ANY rule set (derived from the fuzzed seed through the
// same AST generator the quick tests use) and ANY packet bytes, the
// compiled verdict must equal the linear VM walk — same output name, same
// match/miss. The rule-set size straddles the linear cutoff so the fuzzer
// exercises both the ordered-walk and hashed modes, and every table also
// gets probed with generator-built Views to cover field combinations raw
// bytes rarely hit.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(1), []byte{})
	f.Add(uint64(2), uint8(3), []byte{0x45, 0x00, 0x00, 0x1c})
	f.Add(uint64(3), uint8(7), mustUDPBytes(1234, 53))
	f.Add(uint64(4), uint8(12), mustUDPBytes(8080, 20000))
	f.Add(uint64(5), uint8(24), mustUDPBytes(1, 65535))
	f.Fuzz(func(t *testing.T, seed uint64, nRules uint8, raw []byte) {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 1 + int(nRules)%32
		tbl := NewTable()
		for i := 0; i < n; i++ {
			node := genNode(rng, 3)
			if _, err := tbl.Add(node.String(), rng.Intn(6), fmt.Sprintf("o%d", i)); err != nil {
				t.Fatalf("add %q: %v", node.String(), err)
			}
		}
		snap := tbl.Snapshot()
		check := func(v *View, what string) {
			gotOut, gotOk := snap.Compiled().Lookup(v)
			wantOut, wantOk := tbl.LookupViewVM(v)
			if gotOut != wantOut || gotOk != wantOk {
				t.Fatalf("%s view %+v: compiled (%q,%v) vs vm (%q,%v); rules %v",
					what, *v, gotOut, gotOk, wantOut, wantOk, tbl.Rules())
			}
		}
		v := Extract(raw)
		check(&v, "raw")
		for i := 0; i < 16; i++ {
			rv := randView(rng)
			check(&rv, "generated")
		}
	})
}

// mustUDPBytes builds a valid UDP/IPv4 packet for the seed corpus.
func mustUDPBytes(srcPort, dstPort uint16) []byte {
	rng := rand.New(rand.NewSource(int64(srcPort)*65536 + int64(dstPort)))
	_ = rng
	// Hand-rolled minimal IPv4+UDP header (20+8 bytes), proto 17.
	b := make([]byte, 28)
	b[0] = 0x45
	b[2], b[3] = 0, 28
	b[8] = 64
	b[9] = 17
	copy(b[12:16], []byte{10, 0, 0, 1})
	copy(b[16:20], []byte{10, 0, 0, 2})
	b[20], b[21] = byte(srcPort>>8), byte(srcPort)
	b[22], b[23] = byte(dstPort>>8), byte(dstPort)
	b[25] = 8
	return b
}
