package coord

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"netkit/internal/netsim"
	"netkit/resources"
)

// spawnType enumerates spawning-protocol messages.
type spawnType uint8

const (
	spawnReq spawnType = iota + 1
	spawnAck
	spawnTear
	spawnTearAck
)

// spawnMessage is the control-plane wire form. Control messages are
// source-routed over the parent network (Route/RouteIdx), exercising
// multi-hop coordination exactly as a Genesis-style "spawning network"
// profile distribution would.
type spawnMessage struct {
	Type     spawnType
	VNet     string
	Route    []string
	RouteIdx int

	// spawnReq payload: the member's slice of the child network.
	Addr    byte                // this member's child address
	AddrOf  map[string]byte     // node name -> child address
	NextHop map[byte]string     // child dest addr -> child next-hop MEMBER
	Tunnels map[string][]string // child next-hop member -> parent path (tunnel)
	RatePps int64               // per-member capacity slice, packets/sec (0 = unlimited)

	Err string
}

// vdataMessage is a child-network data packet. Between child hops it is
// tunnelled over a parent path (Route/RouteIdx): virtual links are parent
// paths, exactly as Genesis realises spawned-network links on the
// underlying substrate.
type vdataMessage struct {
	VNet     string
	Src, Dst byte
	TTL      uint8
	Route    []string // parent tunnel for the current child hop
	RouteIdx int
	Payload  []byte
}

func encodeSpawn(m *spawnMessage) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("coord: encode spawn: %v", err))
	}
	return buf.Bytes()
}

func decodeSpawn(b []byte) (*spawnMessage, error) {
	var m spawnMessage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("coord: decode spawn: %w", err)
	}
	return &m, nil
}

func encodeVData(m *vdataMessage) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("coord: encode vdata: %v", err))
	}
	return buf.Bytes()
}

func decodeVData(b []byte) (*vdataMessage, error) {
	var m vdataMessage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("coord: decode vdata: %w", err)
	}
	return &m, nil
}

// VNetInstance is one node's slice of a spawned virtual network: its child
// address, the child routing table, and its capacity slice.
type VNetInstance struct {
	Name    string
	Addr    byte
	addrOf  map[string]byte
	next    map[byte]string
	tunnels map[string][]string

	bucket *resources.TokenBucket // nil = unlimited

	mu        sync.Mutex
	delivered [][]byte
	forwarded uint64
	dropped   uint64
}

// AddrOf returns the child address of a member node.
func (v *VNetInstance) AddrOf(node string) (byte, bool) {
	a, ok := v.addrOf[node]
	return a, ok
}

// Delivered returns payloads addressed to this member, in arrival order.
func (v *VNetInstance) Delivered() [][]byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([][]byte, len(v.delivered))
	copy(out, v.delivered)
	return out
}

// Counters reports (forwarded, dropped) at this member.
func (v *VNetInstance) Counters() (forwarded, dropped uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.forwarded, v.dropped
}

// Spawner is the per-node Genesis-like agent: it installs, serves and
// tears down virtual-network slices, and forwards child data packets.
type Spawner struct {
	node *netsim.Node

	mu    sync.Mutex
	vnets map[string]*VNetInstance
	acks  map[string]chan *spawnMessage // coordinator side, keyed vnet+kind
}

// NewSpawner attaches a spawner to a node.
func NewSpawner(node *netsim.Node) *Spawner {
	s := &Spawner{
		node:  node,
		vnets: make(map[string]*VNetInstance),
		acks:  make(map[string]chan *spawnMessage),
	}
	node.Register(ProtoSpawn, s.onSpawnFrame)
	node.Register(ProtoVData, s.onVDataFrame)
	return s
}

// VNet returns this node's instance of a spawned network.
func (s *Spawner) VNet(name string) (*VNetInstance, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vnets[name]
	return v, ok
}

// VNets lists installed vnet names, sorted.
func (s *Spawner) VNets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.vnets))
	for n := range s.vnets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SpawnSpec describes a child network to spawn.
type SpawnSpec struct {
	Name    string
	Members []string            // parent node names; Members[0] hosts the coordinator
	Adj     map[string][]string // child topology over member names
	RatePps int64               // per-member capacity slice (packets/sec, 0 = unlimited)
	Timeout time.Duration       // ack-collection timeout (default 2s)
}

// Spawn instantiates the child network described by spec. It must be
// called on the Spawner of spec.Members[0] (the coordinator). The parent
// network is consulted for control-plane routes; per-member routing tables
// for the child topology are computed here (profiling), shipped in
// spawnReq messages, and acknowledged by every member.
func (s *Spawner) Spawn(parent *netsim.Network, spec SpawnSpec) error {
	if spec.Name == "" || len(spec.Members) == 0 {
		return fmt.Errorf("coord: spawn: empty spec: %w", ErrBadPath)
	}
	if spec.Members[0] != s.node.Name() {
		return fmt.Errorf("coord: spawn must run on coordinator %q: %w",
			spec.Members[0], ErrBadPath)
	}
	if spec.Timeout <= 0 {
		spec.Timeout = 2 * time.Second
	}
	// Address assignment: 1..n in member order.
	addrOf := make(map[string]byte, len(spec.Members))
	for i, m := range spec.Members {
		if i > 254 {
			return fmt.Errorf("coord: spawn: too many members: %w", ErrBadPath)
		}
		addrOf[m] = byte(i + 1)
	}
	// Child routing tables: BFS per member over the child adjacency; plus
	// parent tunnels realising each child-adjacent virtual link.
	tables := make(map[string]map[byte]string, len(spec.Members))
	tunnels := make(map[string]map[string][]string, len(spec.Members))
	for _, m := range spec.Members {
		nh, err := childRoutes(m, spec.Adj, addrOf)
		if err != nil {
			return err
		}
		tables[m] = nh
		tunnels[m] = make(map[string][]string)
		for _, nb := range spec.Adj[m] {
			route, err := parent.ShortestPath(m, nb)
			if err != nil {
				return fmt.Errorf("coord: spawn: no parent path %s->%s: %w", m, nb, err)
			}
			tunnels[m][nb] = route
		}
	}

	ackCh := make(chan *spawnMessage, len(spec.Members))
	s.mu.Lock()
	s.acks[spec.Name+"/spawn"] = ackCh
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.acks, spec.Name+"/spawn")
		s.mu.Unlock()
	}()

	for _, m := range spec.Members {
		req := &spawnMessage{
			Type: spawnReq, VNet: spec.Name,
			Addr: addrOf[m], AddrOf: addrOf, NextHop: tables[m],
			Tunnels: tunnels[m], RatePps: spec.RatePps,
		}
		if m == s.node.Name() {
			s.install(req)
			ackCh <- &spawnMessage{Type: spawnAck, VNet: spec.Name}
			continue
		}
		route, err := parent.ShortestPath(s.node.Name(), m)
		if err != nil {
			return fmt.Errorf("coord: spawn: no control route to %q: %w", m, err)
		}
		req.Route = route
		req.RouteIdx = 1
		if err := s.node.Send(route[1], ProtoSpawn, encodeSpawn(req)); err != nil {
			return err
		}
	}
	// Collect acknowledgements.
	deadline := time.After(spec.Timeout)
	for got := 0; got < len(spec.Members); got++ {
		select {
		case ack := <-ackCh:
			if ack.Err != "" {
				return fmt.Errorf("coord: spawn %q: member error: %s: %w",
					spec.Name, ack.Err, ErrAdmission)
			}
		case <-deadline:
			return fmt.Errorf("coord: spawn %q: %d/%d acks: %w",
				spec.Name, got, len(spec.Members), ErrTimeout)
		}
	}
	return nil
}

// Teardown removes the named vnet from all members (coordinator side).
func (s *Spawner) Teardown(parent *netsim.Network, name string, members []string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ackCh := make(chan *spawnMessage, len(members))
	s.mu.Lock()
	s.acks[name+"/tear"] = ackCh
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.acks, name+"/tear")
		s.mu.Unlock()
	}()
	for _, m := range members {
		if m == s.node.Name() {
			s.uninstall(name)
			ackCh <- &spawnMessage{Type: spawnTearAck, VNet: name}
			continue
		}
		route, err := parent.ShortestPath(s.node.Name(), m)
		if err != nil {
			return err
		}
		msg := &spawnMessage{Type: spawnTear, VNet: name, Route: route, RouteIdx: 1}
		if err := s.node.Send(route[1], ProtoSpawn, encodeSpawn(msg)); err != nil {
			return err
		}
	}
	deadline := time.After(timeout)
	for got := 0; got < len(members); got++ {
		select {
		case <-ackCh:
		case <-deadline:
			return fmt.Errorf("coord: teardown %q: %d/%d acks: %w", name, got, len(members), ErrTimeout)
		}
	}
	return nil
}

// childRoutes computes the next-hop table for one member via BFS over the
// child adjacency.
func childRoutes(from string, adj map[string][]string, addrOf map[string]byte) (map[byte]string, error) {
	next := make(map[byte]string)
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if _, ok := addrOf[nb]; !ok {
				return nil, fmt.Errorf("coord: child adjacency references non-member %q: %w",
					nb, ErrBadPath)
			}
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			queue = append(queue, nb)
		}
	}
	for member, addr := range addrOf {
		if member == from {
			continue
		}
		if _, reachable := prev[member]; !reachable {
			return nil, fmt.Errorf("coord: member %q unreachable from %q in child topology: %w",
				member, from, ErrBadPath)
		}
		// Walk back from member to from to find the first hop.
		hop := member
		for prev[hop] != from {
			hop = prev[hop]
		}
		next[addr] = hop
	}
	return next, nil
}

// install creates the local VNetInstance.
func (s *Spawner) install(req *spawnMessage) {
	inst := &VNetInstance{
		Name:    req.VNet,
		Addr:    req.Addr,
		addrOf:  req.AddrOf,
		next:    req.NextHop,
		tunnels: req.Tunnels,
	}
	if req.RatePps > 0 {
		b, err := resources.NewTokenBucket(float64(req.RatePps), float64(req.RatePps), nil)
		if err == nil {
			inst.bucket = b
		}
	}
	s.mu.Lock()
	s.vnets[req.VNet] = inst
	s.mu.Unlock()
}

func (s *Spawner) uninstall(name string) {
	s.mu.Lock()
	delete(s.vnets, name)
	s.mu.Unlock()
}

// onSpawnFrame handles control messages, forwarding source-routed frames
// not addressed to this node.
func (s *Spawner) onSpawnFrame(from string, payload []byte) {
	m, err := decodeSpawn(payload)
	if err != nil {
		return
	}
	// Relay if this node is a transit hop on the control route.
	if len(m.Route) > 0 && m.RouteIdx < len(m.Route)-1 && m.Route[m.RouteIdx] == s.node.Name() {
		fwd := *m
		fwd.RouteIdx++
		_ = s.node.Send(m.Route[fwd.RouteIdx], ProtoSpawn, encodeSpawn(&fwd))
		return
	}
	switch m.Type {
	case spawnReq:
		s.install(m)
		// Ack back along the reversed route.
		ack := &spawnMessage{Type: spawnAck, VNet: m.VNet, Route: reverse(m.Route), RouteIdx: 1}
		if len(ack.Route) > 1 {
			_ = s.node.Send(ack.Route[1], ProtoSpawn, encodeSpawn(ack))
		}
	case spawnAck:
		s.deliverAck(m.VNet+"/spawn", m)
	case spawnTear:
		s.uninstall(m.VNet)
		ack := &spawnMessage{Type: spawnTearAck, VNet: m.VNet, Route: reverse(m.Route), RouteIdx: 1}
		if len(ack.Route) > 1 {
			_ = s.node.Send(ack.Route[1], ProtoSpawn, encodeSpawn(ack))
		}
	case spawnTearAck:
		s.deliverAck(m.VNet+"/tear", m)
	}
}

func (s *Spawner) deliverAck(key string, m *spawnMessage) {
	s.mu.Lock()
	ch := s.acks[key]
	s.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default:
		}
	}
}

func reverse(in []string) []string {
	out := make([]string, len(in))
	for i, v := range in {
		out[len(in)-1-i] = v
	}
	return out
}

// SendTo transmits payload to the member with child address dst through
// the spawned network's own routing.
func (s *Spawner) SendTo(vnet string, dst byte, payload []byte) error {
	s.mu.Lock()
	inst, ok := s.vnets[vnet]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("coord: vnet %q: %w", vnet, ErrNoSession)
	}
	if dst == inst.Addr {
		inst.mu.Lock()
		inst.delivered = append(inst.delivered, payload)
		inst.mu.Unlock()
		return nil
	}
	return s.forward(inst, &vdataMessage{
		VNet: vnet, Src: inst.Addr, Dst: dst, TTL: 32, Payload: payload,
	})
}

// forward sends a child packet one CHILD hop per the instance's routing
// table, tunnelling it over the corresponding parent path, subject to the
// member's capacity slice.
func (s *Spawner) forward(inst *VNetInstance, m *vdataMessage) error {
	if inst.bucket != nil && !inst.bucket.Allow(1) {
		inst.mu.Lock()
		inst.dropped++
		inst.mu.Unlock()
		return nil
	}
	hop, ok := inst.next[m.Dst]
	if !ok {
		inst.mu.Lock()
		inst.dropped++
		inst.mu.Unlock()
		return fmt.Errorf("coord: vnet %q: no route to %d: %w", inst.Name, m.Dst, netsim.ErrNoRoute)
	}
	route, ok := inst.tunnels[hop]
	if !ok || len(route) < 2 {
		// Fall back to a direct parent link (child link == parent link).
		route = []string{s.node.Name(), hop}
	}
	inst.mu.Lock()
	inst.forwarded++
	inst.mu.Unlock()
	m.Route = route
	m.RouteIdx = 1
	return s.node.Send(route[1], ProtoVData, encodeVData(m))
}

// onVDataFrame relays tunnelled frames, and forwards or delivers child
// packets at child hops. Transit nodes relay opaque tunnelled frames
// without needing vnet membership; only child hops (members) interpret
// them — non-member frames outside a valid tunnel are dropped: spawned
// networks are isolated.
func (s *Spawner) onVDataFrame(from string, payload []byte) {
	m, err := decodeVData(payload)
	if err != nil {
		return
	}
	// Transit relay within a tunnel.
	if m.RouteIdx < len(m.Route)-1 && m.Route[m.RouteIdx] == s.node.Name() {
		fwd := *m
		fwd.RouteIdx++
		_ = s.node.Send(m.Route[fwd.RouteIdx], ProtoVData, encodeVData(&fwd))
		return
	}
	// Tunnel endpoint: must be a member.
	s.mu.Lock()
	inst, ok := s.vnets[m.VNet]
	s.mu.Unlock()
	if !ok {
		return // not a member: isolation drop
	}
	if m.Dst == inst.Addr {
		inst.mu.Lock()
		inst.delivered = append(inst.delivered, m.Payload)
		inst.mu.Unlock()
		return
	}
	if m.TTL == 0 {
		inst.mu.Lock()
		inst.dropped++
		inst.mu.Unlock()
		return
	}
	m.TTL--
	_ = s.forward(inst, m)
}
