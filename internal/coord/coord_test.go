package coord

import (
	"errors"
	"testing"
	"time"

	"netkit/internal/netsim"
)

// lineFixture builds an n-node line with agents of the given per-link
// capacity.
func lineFixture(t *testing.T, n int, capacity int64) (*netsim.Network, []string, []*Agent) {
	t.Helper()
	w := netsim.NewNetwork()
	names, err := netsim.Line(w, "r", n, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, n)
	for i, name := range names {
		node, err := w.Node(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := map[string]int64{}
		for _, nb := range node.Neighbors() {
			caps[nb] = capacity
		}
		agents[i] = NewAgent(node, AgentConfig{Capacity: caps})
	}
	t.Cleanup(w.Stop)
	return w, names, agents
}

func TestReserveEndToEnd(t *testing.T) {
	_, names, agents := lineFixture(t, 4, 1000)
	err := agents[0].Reserve("s1", names, 400, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Every hop except the terminus reserved toward its downstream.
	for i := 0; i < 3; i++ {
		if got := agents[i].Reserved(names[i+1]); got != 400 {
			t.Fatalf("hop %d reserved %d, want 400", i, got)
		}
	}
	if got := agents[3].Sessions(); len(got) != 0 {
		t.Fatalf("terminus holds reservations: %v", got)
	}
}

func TestReserveAdmissionFailure(t *testing.T) {
	_, names, agents := lineFixture(t, 4, 1000)
	if err := agents[0].Reserve("s1", names, 800, time.Second); err != nil {
		t.Fatal(err)
	}
	// Second session exceeds remaining capacity at every hop.
	err := agents[0].Reserve("s2", names, 500, time.Second)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission, got %v", err)
	}
	// Failed reservation left no residue anywhere.
	for i := 0; i < 3; i++ {
		if got := agents[i].Reserved(names[i+1]); got != 800 {
			t.Fatalf("hop %d reserved %d after failed s2, want 800", i, got)
		}
	}
	// A fitting reservation still succeeds.
	if err := agents[0].Reserve("s3", names, 200, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestReserveBadPath(t *testing.T) {
	_, names, agents := lineFixture(t, 3, 1000)
	if err := agents[0].Reserve("s", []string{names[0]}, 1, time.Second); !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath, got %v", err)
	}
	if err := agents[0].Reserve("s", []string{names[1], names[2]}, 1, time.Second); !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath for foreign origin, got %v", err)
	}
}

func TestReserveTimeoutOnPartitionedPath(t *testing.T) {
	w, names, agents := lineFixture(t, 3, 1000)
	if err := w.SetLinkDown(names[1], names[2], true); err != nil {
		t.Fatal(err)
	}
	err := agents[0].Reserve("s", names, 10, 100*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestTeardownReleasesEverywhere(t *testing.T) {
	_, names, agents := lineFixture(t, 4, 1000)
	if err := agents[0].Reserve("s1", names, 600, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := agents[0].Teardown("s1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for {
		clean := true
		for i := 0; i < 3; i++ {
			if agents[i].Reserved(names[i+1]) != 0 {
				clean = false
			}
		}
		if clean {
			break
		}
		select {
		case <-deadline:
			t.Fatal("teardown did not release all hops")
		case <-time.After(time.Millisecond):
		}
	}
	if err := agents[0].Teardown("s1"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("want ErrNoSession, got %v", err)
	}
}

func TestSoftStateExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w := netsim.NewNetwork()
	names, err := netsim.Line(w, "r", 3, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	agents := make([]*Agent, 3)
	for i, name := range names {
		node, err := w.Node(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := map[string]int64{}
		for _, nb := range node.Neighbors() {
			caps[nb] = 1000
		}
		agents[i] = NewAgent(node, AgentConfig{Capacity: caps, TTL: 10 * time.Second, Clock: clock})
	}
	if err := agents[0].Reserve("s1", names, 100, time.Second); err != nil {
		t.Fatal(err)
	}
	// Refresh keeps the middle hop alive past the original TTL.
	now = now.Add(8 * time.Second)
	if err := agents[1].Refresh("s1"); err != nil {
		t.Fatal(err)
	}
	if n := agents[1].SweepExpired(now.Add(5 * time.Second)); n != 0 {
		t.Fatalf("refreshed state expired: %d", n)
	}
	// Without refresh, the state lapses and bandwidth is released.
	if n := agents[1].SweepExpired(now.Add(20 * time.Second)); n == 0 {
		t.Fatal("stale state survived sweep")
	}
	if got := agents[1].Reserved(names[2]); got != 0 {
		t.Fatalf("expired reservation still holds %d", got)
	}
	if err := agents[1].Refresh("ghost"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("want ErrNoSession, got %v", err)
	}
}

func TestConcurrentSessionsShareCapacity(t *testing.T) {
	_, names, agents := lineFixture(t, 3, 1000)
	for i := 0; i < 5; i++ {
		s := string(rune('a' + i))
		if err := agents[0].Reserve("s-"+s, names, 200, time.Second); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if err := agents[0].Reserve("s-over", names, 1, time.Second); !errors.Is(err, ErrAdmission) {
		t.Fatalf("capacity exhausted but admission passed: %v", err)
	}
	if got := agents[0].Reserved(names[1]); got != 1000 {
		t.Fatalf("reserved = %d", got)
	}
}

// ---- spawning ------------------------------------------------------------------

// spawnFixture: a 5-node line with spawners everywhere.
func spawnFixture(t *testing.T, n int) (*netsim.Network, []string, []*Spawner) {
	t.Helper()
	w := netsim.NewNetwork()
	names, err := netsim.Line(w, "p", n, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sp := make([]*Spawner, n)
	for i, name := range names {
		node, err := w.Node(name)
		if err != nil {
			t.Fatal(err)
		}
		sp[i] = NewSpawner(node)
	}
	t.Cleanup(w.Stop)
	return w, names, sp
}

func TestSpawnInstallsOnAllMembers(t *testing.T) {
	w, names, sp := spawnFixture(t, 5)
	spec := SpawnSpec{
		Name:    "blue",
		Members: []string{names[0], names[2], names[4]},
		Adj: map[string][]string{
			names[0]: {names[2]},
			names[2]: {names[0], names[4]},
			names[4]: {names[2]},
		},
	}
	if err := sp[0].Spawn(w, spec); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		inst, ok := sp[i].VNet("blue")
		if !ok {
			t.Fatalf("member %d missing instance", i)
		}
		if inst.Addr == 0 {
			t.Fatalf("member %d unaddressed", i)
		}
	}
	// Non-members have no instance.
	for _, i := range []int{1, 3} {
		if _, ok := sp[i].VNet("blue"); ok {
			t.Fatalf("non-member %d has instance", i)
		}
	}
}

func TestSpawnedNetworkDataDelivery(t *testing.T) {
	w, names, sp := spawnFixture(t, 5)
	spec := SpawnSpec{
		Name:    "blue",
		Members: []string{names[0], names[2], names[4]},
		Adj: map[string][]string{
			names[0]: {names[2]},
			names[2]: {names[0], names[4]},
			names[4]: {names[2]},
		},
	}
	if err := sp[0].Spawn(w, spec); err != nil {
		t.Fatal(err)
	}
	inst0, _ := sp[0].VNet("blue")
	dstAddr, ok := inst0.AddrOf(names[4])
	if !ok {
		t.Fatal("no address for far member")
	}
	if err := sp[0].SendTo("blue", dstAddr, []byte("via vnet")); err != nil {
		t.Fatal(err)
	}
	inst4, _ := sp[4].VNet("blue")
	deadline := time.After(2 * time.Second)
	for len(inst4.Delivered()) == 0 {
		select {
		case <-deadline:
			t.Fatal("vnet data never arrived")
		case <-time.After(time.Millisecond):
		}
	}
	if string(inst4.Delivered()[0]) != "via vnet" {
		t.Fatalf("payload = %q", inst4.Delivered()[0])
	}
	// Self-delivery short-circuits.
	if err := sp[0].SendTo("blue", inst0.Addr, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if len(inst0.Delivered()) != 1 {
		t.Fatal("self delivery failed")
	}
}

func TestSpawnedNetworksIsolated(t *testing.T) {
	w, names, sp := spawnFixture(t, 5)
	blue := SpawnSpec{
		Name:    "blue",
		Members: []string{names[0], names[2]},
		Adj:     map[string][]string{names[0]: {names[2]}, names[2]: {names[0]}},
	}
	red := SpawnSpec{
		Name:    "red",
		Members: []string{names[2], names[4]},
		Adj:     map[string][]string{names[2]: {names[4]}, names[4]: {names[2]}},
	}
	if err := sp[0].Spawn(w, blue); err != nil {
		t.Fatal(err)
	}
	if err := sp[2].Spawn(w, red); err != nil {
		t.Fatal(err)
	}
	// Blue cannot reach red's address space: blue has no route to addr of
	// names[4] (not a blue member).
	if err := sp[0].SendTo("blue", 99, nil); !errors.Is(err, netsim.ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
	// Sending on a vnet this node is not a member of fails.
	if err := sp[0].SendTo("red", 1, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("want ErrNoSession, got %v", err)
	}
	// Node 2 is in both: it can use either, independently.
	blueInst, _ := sp[2].VNet("blue")
	redInst, _ := sp[2].VNet("red")
	if blueInst.Addr == 0 || redInst.Addr == 0 {
		t.Fatal("dual membership broken")
	}
}

func TestSpawnValidation(t *testing.T) {
	w, names, sp := spawnFixture(t, 3)
	// Wrong coordinator.
	err := sp[0].Spawn(w, SpawnSpec{Name: "x", Members: []string{names[1]}})
	if !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath, got %v", err)
	}
	// Disconnected child topology.
	err = sp[0].Spawn(w, SpawnSpec{
		Name:    "x",
		Members: []string{names[0], names[2]},
		Adj:     map[string][]string{},
	})
	if !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath for unreachable member, got %v", err)
	}
	// Adjacency referencing a non-member.
	err = sp[0].Spawn(w, SpawnSpec{
		Name:    "x",
		Members: []string{names[0]},
		Adj:     map[string][]string{names[0]: {"ghost"}},
	})
	if !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath for non-member adjacency, got %v", err)
	}
	// Empty spec.
	if err := sp[0].Spawn(w, SpawnSpec{}); !errors.Is(err, ErrBadPath) {
		t.Fatalf("want ErrBadPath, got %v", err)
	}
}

func TestSpawnTeardown(t *testing.T) {
	w, names, sp := spawnFixture(t, 3)
	spec := SpawnSpec{
		Name:    "temp",
		Members: []string{names[0], names[2]},
		Adj:     map[string][]string{names[0]: {names[2]}, names[2]: {names[0]}},
	}
	if err := sp[0].Spawn(w, spec); err != nil {
		t.Fatal(err)
	}
	if err := sp[0].Teardown(w, "temp", spec.Members, time.Second); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if _, ok := sp[i].VNet("temp"); ok {
			t.Fatalf("member %d still has instance after teardown", i)
		}
	}
	if got := sp[0].VNets(); len(got) != 0 {
		t.Fatalf("vnets = %v", got)
	}
}

func TestSpawnCapacitySlice(t *testing.T) {
	w, names, sp := spawnFixture(t, 3)
	spec := SpawnSpec{
		Name:    "limited",
		Members: []string{names[0], names[2]},
		Adj:     map[string][]string{names[0]: {names[2]}, names[2]: {names[0]}},
		RatePps: 5, // 5 packets/sec slice
	}
	if err := sp[0].Spawn(w, spec); err != nil {
		t.Fatal(err)
	}
	inst0, _ := sp[0].VNet("limited")
	dst, _ := inst0.AddrOf(names[2])
	// Burst beyond the slice: extra packets are dropped by the bucket.
	for i := 0; i < 50; i++ {
		if err := sp[0].SendTo("limited", dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, dropped := inst0.Counters()
	if dropped == 0 {
		t.Fatal("capacity slice not enforced")
	}
}

func TestVDataTTLExpires(t *testing.T) {
	// Craft a two-member vnet and send a packet with a poisoned routing
	// loop by making each side route through the other: TTL must kill it.
	w, names, sp := spawnFixture(t, 2)
	spec := SpawnSpec{
		Name:    "loop",
		Members: []string{names[0], names[1]},
		Adj:     map[string][]string{names[0]: {names[1]}, names[1]: {names[0]}},
	}
	if err := sp[0].Spawn(w, spec); err != nil {
		t.Fatal(err)
	}
	inst0, _ := sp[0].VNet("loop")
	inst1, _ := sp[1].VNet("loop")
	// Poison: node1 routes address 99 back to node0 and vice versa.
	inst0.next[99] = names[1]
	inst1.next[99] = names[0]
	if err := sp[0].SendTo("loop", 99, []byte("spin")); err != nil {
		t.Fatal(err)
	}
	// Wait for the loop to burn out; forwarded counters stabilise.
	time.Sleep(50 * time.Millisecond)
	f0, _ := inst0.Counters()
	f1, _ := inst1.Counters()
	total := f0 + f1
	if total == 0 || total > 40 {
		t.Fatalf("loop forwarded %d frames, want bounded by TTL 32", total)
	}
}
