// Package coord implements the stratum-4 coordination layer of Figure 1:
// "out-of-band signalling protocols that perform distributed coordination
// and (re)configuration of the lower strata. Examples are RSVP, or
// protocols that coordinate resource allocation on a set of routers
// participating in a dynamic private virtual network, as employed by
// systems like Genesis."
//
// Two subsystems are provided over internal/netsim: a soft-state
// reservation protocol in the style of RSVP (PATH/RESV/TEAR with per-hop
// admission control and timed state), and a Genesis-like spawning
// framework that instantiates child virtual networks — each with its own
// addressing, routing and capacity slices — on a subset of parent nodes.
package coord

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"netkit/internal/netsim"
)

// Protocol tags on the simulated wire.
const (
	// ProtoSignal carries reservation signalling.
	ProtoSignal byte = 1
	// ProtoSpawn carries spawning control.
	ProtoSpawn byte = 2
	// ProtoVData carries spawned-network data packets.
	ProtoVData byte = 3
)

// Sentinel errors.
var (
	// ErrAdmission indicates insufficient capacity at some hop.
	ErrAdmission = errors.New("coord: admission control rejected reservation")
	// ErrTimeout indicates a signalling exchange that never completed.
	ErrTimeout = errors.New("coord: signalling timeout")
	// ErrNoSession indicates an unknown reservation session.
	ErrNoSession = errors.New("coord: no such session")
	// ErrBadPath indicates a malformed explicit path.
	ErrBadPath = errors.New("coord: bad path")
)

// sigType enumerates signalling messages.
type sigType uint8

const (
	msgPath sigType = iota + 1
	msgResv
	msgResvErr
	msgTear
	msgRelease
)

// sigMessage is the wire form of all reservation signalling.
type sigMessage struct {
	Type      sigType
	Session   string
	Path      []string // full explicit route, sender first
	HopIndex  int      // receiver's position in Path
	Bandwidth int64
	Reason    string
}

func encodeSig(m *sigMessage) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("coord: encode: %v", err)) // static type; cannot fail
	}
	return buf.Bytes()
}

func decodeSig(b []byte) (*sigMessage, error) {
	var m sigMessage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("coord: decode: %w", err)
	}
	return &m, nil
}

// pathState is per-session soft state installed by PATH.
type pathState struct {
	path    []string
	hopIdx  int
	expires time.Time
}

// resvState is per-session reservation state installed by RESV.
type resvState struct {
	bandwidth int64
	nextHop   string // downstream neighbour the bandwidth is reserved toward
	expires   time.Time
}

// Agent is the per-node reservation signalling agent. Capacity is
// administered per outgoing link (neighbour name → bytes/sec available to
// reservations).
type Agent struct {
	node  *netsim.Node
	clock func() time.Time
	ttl   time.Duration

	mu       sync.Mutex
	capacity map[string]int64
	reserved map[string]int64
	paths    map[string]*pathState
	resvs    map[string]*resvState
	waiters  map[string]chan error
}

// AgentConfig parameterises an Agent.
type AgentConfig struct {
	// Capacity is per-neighbour reservable bandwidth (bytes/sec).
	Capacity map[string]int64
	// TTL is the soft-state lifetime (default 30s).
	TTL time.Duration
	// Clock is injectable time (default time.Now).
	Clock func() time.Time
}

// NewAgent attaches a signalling agent to a node.
func NewAgent(node *netsim.Node, cfg AgentConfig) *Agent {
	if cfg.TTL <= 0 {
		cfg.TTL = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	a := &Agent{
		node:     node,
		clock:    cfg.Clock,
		ttl:      cfg.TTL,
		capacity: make(map[string]int64, len(cfg.Capacity)),
		reserved: make(map[string]int64),
		paths:    make(map[string]*pathState),
		resvs:    make(map[string]*resvState),
		waiters:  make(map[string]chan error),
	}
	for k, v := range cfg.Capacity {
		a.capacity[k] = v
	}
	node.Register(ProtoSignal, a.onFrame)
	return a
}

// Reserve requests bandwidth along the explicit path (which must start at
// this agent's node). It blocks until the reservation confirms, fails
// admission, or times out.
func (a *Agent) Reserve(session string, path []string, bandwidth int64, timeout time.Duration) error {
	if len(path) < 2 || path[0] != a.node.Name() {
		return fmt.Errorf("coord: path %v from %s: %w", path, a.node.Name(), ErrBadPath)
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	wait := make(chan error, 1)
	a.mu.Lock()
	if _, dup := a.waiters[session]; dup {
		a.mu.Unlock()
		return fmt.Errorf("coord: session %q already pending: %w", session, ErrBadPath)
	}
	a.waiters[session] = wait
	a.paths[session] = &pathState{path: path, hopIdx: 0, expires: a.clock().Add(a.ttl)}
	a.mu.Unlock()

	m := &sigMessage{Type: msgPath, Session: session, Path: path, HopIndex: 1, Bandwidth: bandwidth}
	if err := a.node.Send(path[1], ProtoSignal, encodeSig(m)); err != nil {
		a.clearWaiter(session)
		return err
	}
	select {
	case err := <-wait:
		return err
	case <-time.After(timeout):
		a.clearWaiter(session)
		return fmt.Errorf("coord: session %q: %w", session, ErrTimeout)
	}
}

func (a *Agent) clearWaiter(session string) {
	a.mu.Lock()
	delete(a.waiters, session)
	a.mu.Unlock()
}

// Teardown releases a session end-to-end from the sender.
func (a *Agent) Teardown(session string) error {
	a.mu.Lock()
	ps, ok := a.paths[session]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("coord: %q: %w", session, ErrNoSession)
	}
	a.releaseLocal(session)
	if ps.hopIdx+1 < len(ps.path) {
		m := &sigMessage{Type: msgTear, Session: session, Path: ps.path, HopIndex: ps.hopIdx + 1}
		return a.node.Send(ps.path[ps.hopIdx+1], ProtoSignal, encodeSig(m))
	}
	return nil
}

// Refresh re-arms the soft state for a session this node knows about.
func (a *Agent) Refresh(session string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	found := false
	now := a.clock()
	if ps, ok := a.paths[session]; ok {
		ps.expires = now.Add(a.ttl)
		found = true
	}
	if rs, ok := a.resvs[session]; ok {
		rs.expires = now.Add(a.ttl)
		found = true
	}
	if !found {
		return fmt.Errorf("coord: %q: %w", session, ErrNoSession)
	}
	return nil
}

// SweepExpired drops all soft state older than now, releasing bandwidth.
// It returns the number of sessions expired.
func (a *Agent) SweepExpired(now time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for s, ps := range a.paths {
		if ps.expires.Before(now) {
			delete(a.paths, s)
			n++
		}
	}
	for s, rs := range a.resvs {
		if rs.expires.Before(now) {
			a.reserved[rs.nextHop] -= rs.bandwidth
			delete(a.resvs, s)
			n++
		}
	}
	return n
}

// Reserved reports bandwidth currently reserved toward a neighbour.
func (a *Agent) Reserved(neighbor string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserved[neighbor]
}

// Sessions returns sessions with live reservation state at this node.
func (a *Agent) Sessions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.resvs))
	for s := range a.resvs {
		out = append(out, s)
	}
	return out
}

// onFrame handles signalling frames.
func (a *Agent) onFrame(from string, payload []byte) {
	m, err := decodeSig(payload)
	if err != nil {
		return
	}
	switch m.Type {
	case msgPath:
		a.onPath(m)
	case msgResv:
		a.onResv(m)
	case msgResvErr:
		a.onResvErr(m)
	case msgTear:
		a.onTear(m)
	case msgRelease:
		a.onRelease(m)
	}
}

// onPath installs path state and forwards; the terminus answers with RESV.
func (a *Agent) onPath(m *sigMessage) {
	if m.HopIndex < 0 || m.HopIndex >= len(m.Path) || m.Path[m.HopIndex] != a.node.Name() {
		return
	}
	a.mu.Lock()
	a.paths[m.Session] = &pathState{path: m.Path, hopIdx: m.HopIndex, expires: a.clock().Add(a.ttl)}
	a.mu.Unlock()
	if m.HopIndex == len(m.Path)-1 {
		// Terminus: start RESV back toward the sender.
		r := &sigMessage{Type: msgResv, Session: m.Session, Path: m.Path,
			HopIndex: m.HopIndex - 1, Bandwidth: m.Bandwidth}
		_ = a.node.Send(m.Path[m.HopIndex-1], ProtoSignal, encodeSig(r))
		return
	}
	fwd := *m
	fwd.HopIndex++
	_ = a.node.Send(m.Path[fwd.HopIndex], ProtoSignal, encodeSig(&fwd))
}

// onResv performs admission control for the downstream link and continues
// toward the sender; the sender's agent completes the waiting Reserve.
func (a *Agent) onResv(m *sigMessage) {
	if m.HopIndex < 0 || m.HopIndex >= len(m.Path) || m.Path[m.HopIndex] != a.node.Name() {
		return
	}
	downstream := m.Path[m.HopIndex+1]
	a.mu.Lock()
	capTo, haveCap := a.capacity[downstream]
	ok := haveCap && a.reserved[downstream]+m.Bandwidth <= capTo
	if ok {
		a.reserved[downstream] += m.Bandwidth
		a.resvs[m.Session] = &resvState{
			bandwidth: m.Bandwidth, nextHop: downstream, expires: a.clock().Add(a.ttl),
		}
	}
	a.mu.Unlock()

	if !ok {
		// Admission failure: tell the sender (continue upstream as an error)
		// and release everything already reserved downstream.
		reason := fmt.Sprintf("no capacity at %s toward %s", a.node.Name(), downstream)
		if m.HopIndex == 0 {
			a.fail(m.Session, reason)
		} else {
			e := &sigMessage{Type: msgResvErr, Session: m.Session, Path: m.Path,
				HopIndex: m.HopIndex - 1, Reason: reason}
			_ = a.node.Send(m.Path[m.HopIndex-1], ProtoSignal, encodeSig(e))
		}
		rel := &sigMessage{Type: msgRelease, Session: m.Session, Path: m.Path, HopIndex: m.HopIndex + 1}
		_ = a.node.Send(downstream, ProtoSignal, encodeSig(rel))
		return
	}
	if m.HopIndex == 0 {
		// Sender: the reservation is complete end-to-end.
		a.complete(m.Session, nil)
		return
	}
	up := *m
	up.HopIndex--
	_ = a.node.Send(m.Path[up.HopIndex], ProtoSignal, encodeSig(&up))
}

// onResvErr relays failure toward the sender.
func (a *Agent) onResvErr(m *sigMessage) {
	if m.Path[m.HopIndex] != a.node.Name() {
		return
	}
	if m.HopIndex == 0 {
		a.fail(m.Session, m.Reason)
		return
	}
	up := *m
	up.HopIndex--
	_ = a.node.Send(m.Path[up.HopIndex], ProtoSignal, encodeSig(&up))
}

// onTear releases state and forwards toward the terminus.
func (a *Agent) onTear(m *sigMessage) {
	if m.HopIndex >= len(m.Path) || m.Path[m.HopIndex] != a.node.Name() {
		return
	}
	a.releaseLocal(m.Session)
	if m.HopIndex+1 < len(m.Path) {
		fwd := *m
		fwd.HopIndex++
		_ = a.node.Send(m.Path[fwd.HopIndex], ProtoSignal, encodeSig(&fwd))
	}
}

// onRelease undoes reservations downstream after an admission failure.
func (a *Agent) onRelease(m *sigMessage) {
	if m.HopIndex >= len(m.Path) || m.Path[m.HopIndex] != a.node.Name() {
		return
	}
	a.releaseLocal(m.Session)
	if m.HopIndex+1 < len(m.Path) {
		fwd := *m
		fwd.HopIndex++
		_ = a.node.Send(m.Path[fwd.HopIndex], ProtoSignal, encodeSig(&fwd))
	}
}

// releaseLocal frees session state at this node.
func (a *Agent) releaseLocal(session string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rs, ok := a.resvs[session]; ok {
		a.reserved[rs.nextHop] -= rs.bandwidth
		delete(a.resvs, session)
	}
	delete(a.paths, session)
}

// complete fulfils a waiting Reserve.
func (a *Agent) complete(session string, err error) {
	a.mu.Lock()
	ch := a.waiters[session]
	delete(a.waiters, session)
	a.mu.Unlock()
	if ch != nil {
		ch <- err
	}
}

func (a *Agent) fail(session, reason string) {
	a.releaseLocal(session)
	a.complete(session, fmt.Errorf("coord: %s: %w", reason, ErrAdmission))
}
