// Package control is netkitd's management plane: a JSON-lines protocol
// over TCP through which operators (and nkctl) exercise the reflective
// capabilities remotely. Every verb dispatches onto the unified netkit
// meta-space — architecture introspection and constraints, interface
// descriptor lookup, interception chains on live bindings, and resource
// accounting — plus the Router-CF conveniences (stats, filters,
// hot-swap). It demonstrates the paper's claim that a causally-connected
// runtime makes "deployment, inspection, (re)configuration, and
// evolution" uniform management operations rather than restart
// procedures.
package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netkit"
	"netkit/cf"
	"netkit/core"
	"netkit/resources"
	"netkit/router"
)

// Sentinel errors.
var (
	// ErrBadRequest indicates a malformed or unknown request.
	ErrBadRequest = errors.New("control: bad request")
	// ErrRemote wraps an error string reported by the server.
	ErrRemote = errors.New("control: server error")
)

// Request is one management operation.
type Request struct {
	Op string `json:"op"`

	Name       string            `json:"name,omitempty"`
	New        string            `json:"new,omitempty"`
	Type       string            `json:"type,omitempty"`
	Cfg        map[string]string `json:"cfg,omitempty"`
	Classifier string            `json:"classifier,omitempty"`
	Spec       string            `json:"spec,omitempty"`
	Output     string            `json:"output,omitempty"`
	Priority   int               `json:"priority,omitempty"`
	FilterID   uint64            `json:"filter_id,omitempty"`

	// Meta-space addressing: the client-side endpoint of a binding and
	// the name of an interceptor or interface on it.
	Component  string `json:"component,omitempty"`
	Receptacle string `json:"receptacle,omitempty"`
	Iface      string `json:"iface,omitempty"`

	// Watch parameters: sample count and inter-sample interval.
	Samples    int `json:"samples,omitempty"`
	IntervalMS int `json:"interval_ms,omitempty"`
}

// IfaceData is the payload of "iface": one interface descriptor.
type IfaceData struct {
	ID  core.InterfaceID `json:"id"`
	Doc string           `json:"doc,omitempty"`
	Ops []core.OpDesc    `json:"ops,omitempty"`
}

// AuditData is the payload of "audit": one remotely installed counting
// interceptor. Calls counts units of work, not chain invocations: a
// batched data-path crossing (op "PushBatch") contributes one count per
// packet in the batch, so audits read the same whether the pipeline runs
// the batched fast path or per-packet pushes.
type AuditData struct {
	Component  string `json:"component"`
	Receptacle string `json:"receptacle"`
	Calls      uint64 `json:"calls"`
}

// Response is the reply to one Request.
type Response struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// StatsData is the payload of "stats": the uniform stats tree — the whole
// capsule when no name was given, one component's subtree otherwise.
type StatsData struct {
	Tree core.StatNode `json:"tree"`
}

// WatchSample is one element of the "watch" payload.
type WatchSample struct {
	ElapsedMS int64         `json:"elapsed_ms"`
	Tree      core.StatNode `json:"tree"`
}

// Server exposes one framework — and its capsule's meta-space — over a
// listener.
type Server struct {
	fw   *cf.Framework
	meta *netkit.MetaSpace

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	audits   map[string]*atomic.Uint64 // "component\x00receptacle" -> call count
}

// NewServer wraps a framework.
func NewServer(fw *cf.Framework) *Server {
	return &Server{
		fw:     fw,
		meta:   netkit.Meta(fw.Capsule()),
		audits: make(map[string]*atomic.Uint64),
	}
}

// Serve accepts connections until the listener closes. Call Close to stop.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		return l.Close()
	}
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle dispatches one request.
func (s *Server) handle(req *Request) *Response {
	data, err := s.dispatch(req)
	if err != nil {
		return &Response{Error: err.Error()}
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return &Response{Error: err.Error()}
	}
	return &Response{OK: true, Data: raw}
}

func (s *Server) dispatch(req *Request) (any, error) {
	capsule := s.fw.Capsule()
	switch req.Op {
	case "ping":
		return "pong", nil
	case "graph":
		return s.meta.Architecture().Snapshot(), nil
	case "validate":
		if err := s.meta.Architecture().Validate(); err != nil {
			return nil, err
		}
		return "valid", nil
	case "constraints":
		return s.meta.Architecture().Constraints(), nil
	case "dropped":
		return s.meta.Architecture().DroppedEvents(), nil
	case "ifaces":
		return s.meta.Interface().IDs(), nil
	case "iface":
		d, ok := s.meta.Interface().Lookup(core.InterfaceID(req.Iface))
		if !ok {
			return nil, fmt.Errorf("control: interface %q: %w", req.Iface, core.ErrNotFound)
		}
		return IfaceData{ID: d.ID, Doc: d.Doc, Ops: d.Ops}, nil
	case "provided":
		ids, err := s.meta.Interface().ProvidedBy(req.Component)
		if err != nil {
			return nil, err
		}
		return ids, nil
	case "intercept":
		return s.intercept(req.Component, req.Receptacle)
	case "unintercept":
		return s.unintercept(req.Component, req.Receptacle)
	case "chain":
		return s.meta.Interception().Chain(req.Component, req.Receptacle)
	case "audit":
		s.mu.Lock()
		cnt, ok := s.audits[req.Component+"\x00"+req.Receptacle]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("control: no audit at %s.%s: %w",
				req.Component, req.Receptacle, core.ErrNotFound)
		}
		return AuditData{Component: req.Component, Receptacle: req.Receptacle,
			Calls: cnt.Load()}, nil
	case "tasks":
		mgr := s.meta.Resources()
		names := mgr.Tasks()
		out := make([]resources.TaskStats, 0, len(names))
		for _, name := range names {
			t, err := mgr.Task(name)
			if err != nil {
				continue
			}
			out = append(out, t.Stats())
		}
		return out, nil
	case "types":
		return capsule.ComponentRegistry().Types(), nil
	case "members":
		return s.fw.Members(), nil
	case "stats":
		tree, err := s.statsTree(req.Name)
		if err != nil {
			return nil, err
		}
		return StatsData{Tree: tree}, nil
	case "watch":
		return s.watch(req)
	case "swap":
		if req.Name == "" || req.New == "" || req.Type == "" {
			return nil, fmt.Errorf("control: swap needs name/new/type: %w", ErrBadRequest)
		}
		repl, err := capsule.ComponentRegistry().New(req.Type, req.Cfg)
		if err != nil {
			return nil, err
		}
		if err := router.HotSwap(capsule, req.Name, req.New, repl); err != nil {
			return nil, err
		}
		return "swapped", nil
	case "filter":
		cls, err := s.classifier(req.Classifier)
		if err != nil {
			return nil, err
		}
		id, err := cls.RegisterFilter(req.Spec, req.Priority, req.Output)
		if err != nil {
			return nil, err
		}
		return id, nil
	case "unfilter":
		cls, err := s.classifier(req.Classifier)
		if err != nil {
			return nil, err
		}
		if err := cls.UnregisterFilter(req.FilterID); err != nil {
			return nil, err
		}
		return "removed", nil
	default:
		return nil, fmt.Errorf("control: op %q: %w", req.Op, ErrBadRequest)
	}
}

// statsTree resolves the "stats"/"watch" subject: the capsule-wide tree
// when name is empty, one component's subtree otherwise — both through
// the stats meta-view, so nkctl sees exactly what the adaptation engine
// samples.
func (s *Server) statsTree(name string) (core.StatNode, error) {
	if name == "" {
		return s.meta.Stats().Tree(), nil
	}
	return s.meta.Stats().Component(name)
}

// watch samples the stats tree Samples times, IntervalMS apart, and
// returns the whole series in one response (the protocol is strictly
// request/response; streaming watches belong to a client-side loop).
// Bounds keep a typo from pinning a connection.
func (s *Server) watch(req *Request) (any, error) {
	samples := req.Samples
	if samples <= 0 {
		samples = 2
	}
	if samples > 100 {
		return nil, fmt.Errorf("control: watch samples %d > 100: %w", samples, ErrBadRequest)
	}
	interval := time.Duration(req.IntervalMS) * time.Millisecond
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if d := time.Duration(samples) * interval; d > 30*time.Second {
		return nil, fmt.Errorf("control: watch span %v > 30s: %w", d, ErrBadRequest)
	}
	start := time.Now()
	out := make([]WatchSample, 0, samples)
	for i := 0; i < samples; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		tree, err := s.statsTree(req.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, WatchSample{ElapsedMS: time.Since(start).Milliseconds(), Tree: tree})
	}
	return out, nil
}

// auditName is the interceptor name used by remotely installed audits.
const auditName = "control.audit"

// intercept installs a counting interceptor on the binding at the given
// client-side endpoint through the interception meta-model. The count is
// readable with the "audit" verb.
func (s *Server) intercept(component, receptacle string) (any, error) {
	cnt := new(atomic.Uint64)
	wrap := core.PrePost(func(op string, args []any) {
		cnt.Add(uint64(router.PacketCount(op, args)))
	}, nil)
	if err := s.meta.Interception().Install(component, receptacle, auditName, wrap); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.audits[component+"\x00"+receptacle] = cnt
	s.mu.Unlock()
	return "intercepting", nil
}

// unintercept removes a previously installed counting interceptor and
// returns its final call count.
func (s *Server) unintercept(component, receptacle string) (any, error) {
	if err := s.meta.Interception().Remove(component, receptacle, auditName); err != nil {
		return nil, err
	}
	key := component + "\x00" + receptacle
	s.mu.Lock()
	cnt := s.audits[key]
	delete(s.audits, key)
	s.mu.Unlock()
	var calls uint64
	if cnt != nil {
		calls = cnt.Load()
	}
	return AuditData{Component: component, Receptacle: receptacle, Calls: calls}, nil
}

func (s *Server) classifier(name string) (router.IClassifier, error) {
	comp, ok := s.fw.Capsule().Component(name)
	if !ok {
		return nil, fmt.Errorf("control: %q: %w", name, core.ErrNotFound)
	}
	impl, ok := comp.Provided(router.IClassifierID)
	if !ok {
		return nil, fmt.Errorf("control: %q is not a classifier: %w", name, ErrBadRequest)
	}
	cls, ok := impl.(router.IClassifier)
	if !ok {
		return nil, fmt.Errorf("control: %q: %w", name, core.ErrTypeMismatch)
	}
	return cls, nil
}

// Client is the nkctl side.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a control server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one request, decoding the response payload into out (out may
// be nil to discard).
func (c *Client) Do(req *Request, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("control: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return fmt.Errorf("control: recv: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("control: %s: %w", resp.Error, ErrRemote)
	}
	if out != nil && resp.Data != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("control: decode payload: %w", err)
		}
	}
	return nil
}
