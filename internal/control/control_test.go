package control

import (
	"errors"
	"net"
	"net/netip"
	"testing"

	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

func fixture(t *testing.T) (*Client, *core.Capsule) {
	t.Helper()
	capsule := core.NewCapsule("ctl-test")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		t.Fatal(err)
	}
	cnt := router.NewCounter()
	if err := fw.Admit("cnt", cnt); err != nil {
		t.Fatal(err)
	}
	cls, err := router.NewClassifier("a", "default")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("cls", cls); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "cnt", "out", "cls"); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(fw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
	})
	return client, capsule
}

func TestPing(t *testing.T) {
	client, _ := fixture(t)
	var pong string
	if err := client.Do(&Request{Op: "ping"}, &pong); err != nil {
		t.Fatal(err)
	}
	if pong != "pong" {
		t.Fatalf("pong = %q", pong)
	}
}

func TestGraphAndMembers(t *testing.T) {
	client, _ := fixture(t)
	var g core.Graph
	if err := client.Do(&Request{Op: "graph"}, &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 || len(g.Edges) != 1 {
		t.Fatalf("graph = %d nodes %d edges", len(g.Nodes), len(g.Edges))
	}
	var members []string
	if err := client.Do(&Request{Op: "members"}, &members); err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	var types []string
	if err := client.Do(&Request{Op: "types"}, &types); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 {
		t.Fatal("no registered types")
	}
}

func TestStats(t *testing.T) {
	client, capsule := fixture(t)
	cnt, _ := capsule.Component("cnt")
	push := cnt.(router.IPacketPush)
	b, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"), 1, 2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := push.Push(router.NewPacket(b)); err != nil {
		t.Fatal(err)
	}
	var sd StatsData
	if err := client.Do(&Request{Op: "stats", Name: "cnt"}, &sd); err != nil {
		t.Fatal(err)
	}
	if in, ok := sd.Tree.Stat("packets_in"); !ok || in.Value != 1 {
		t.Fatalf("stats = %+v", sd)
	}
	// The capsule-wide form returns one child per component.
	var full StatsData
	if err := client.Do(&Request{Op: "stats"}, &full); err != nil {
		t.Fatal(err)
	}
	if n, ok := full.Tree.Find("cnt"); !ok {
		t.Fatalf("no cnt node in full tree: %+v", full.Tree)
	} else if in, ok := n.Stat("packets_in"); !ok || in.Value != 1 {
		t.Fatalf("cnt node = %+v", n)
	}
	if err := client.Do(&Request{Op: "stats", Name: "ghost"}, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	// Watch returns a sampled series of the same tree.
	var samples []WatchSample
	if err := client.Do(&Request{Op: "watch", Name: "cnt", Samples: 3, IntervalMS: 1}, &samples); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("watch returned %d samples, want 3", len(samples))
	}
	if in, ok := samples[2].Tree.Stat("packets_in"); !ok || in.Value != 1 {
		t.Fatalf("watch sample = %+v", samples[2])
	}
	if err := client.Do(&Request{Op: "watch", Samples: 500}, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("unbounded watch accepted: %v", err)
	}
}

func TestFilterInstallRemove(t *testing.T) {
	client, _ := fixture(t)
	var id uint64
	err := client.Do(&Request{
		Op: "filter", Classifier: "cls",
		Spec: "udp and dst port 53", Output: "a", Priority: 5,
	}, &id)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero filter id")
	}
	if err := client.Do(&Request{Op: "unfilter", Classifier: "cls", FilterID: id}, nil); err != nil {
		t.Fatal(err)
	}
	// Installing to a non-classifier fails.
	err = client.Do(&Request{Op: "filter", Classifier: "cnt", Spec: "udp", Output: "a"}, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestSwapViaControl(t *testing.T) {
	client, capsule := fixture(t)
	err := client.Do(&Request{
		Op: "swap", Name: "cnt", New: "cnt2", Type: router.TypeCounter,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := capsule.Component("cnt"); ok {
		t.Fatal("old component still present")
	}
	if _, ok := capsule.Component("cnt2"); !ok {
		t.Fatal("replacement missing")
	}
	if err := capsule.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing fields are rejected.
	err = client.Do(&Request{Op: "swap", Name: "cnt2"}, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	client, _ := fixture(t)
	if err := client.Do(&Request{Op: "nonsense"}, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}
