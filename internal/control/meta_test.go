package control

// Tests for the control verbs that dispatch onto the unified meta-space.

import (
	"net/netip"
	"testing"

	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

func pushInto(t *testing.T, capsule *core.Capsule, component string, n int) {
	t.Helper()
	comp, ok := capsule.Component(component)
	if !ok {
		t.Fatalf("component %q missing", component)
	}
	impl, _ := comp.Provided(router.IPacketPushID)
	push := impl.(router.IPacketPush)
	raw, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"), 9000, 53, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := push.Push(router.NewPacket(raw)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMetaArchitectureVerbs(t *testing.T) {
	client, _ := fixture(t)
	var verdict string
	if err := client.Do(&Request{Op: "validate"}, &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict != "valid" {
		t.Fatalf("validate = %q", verdict)
	}
	var constraints []string
	if err := client.Do(&Request{Op: "constraints"}, &constraints); err != nil {
		t.Fatal(err)
	}
	var dropped uint64
	if err := client.Do(&Request{Op: "dropped"}, &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d on an unsubscribed capsule", dropped)
	}
}

func TestMetaInterfaceVerbs(t *testing.T) {
	client, _ := fixture(t)
	var ids []string
	if err := client.Do(&Request{Op: "ifaces"}, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no interfaces registered")
	}
	var d IfaceData
	if err := client.Do(&Request{Op: "iface", Iface: string(router.IPacketPushID)}, &d); err != nil {
		t.Fatal(err)
	}
	if d.ID != router.IPacketPushID || len(d.Ops) == 0 {
		t.Fatalf("iface data = %+v", d)
	}
	if err := client.Do(&Request{Op: "iface", Iface: "no.such/1"}, nil); err == nil {
		t.Fatal("lookup of unknown interface succeeded")
	}
	var provided []string
	if err := client.Do(&Request{Op: "provided", Component: "cnt"}, &provided); err != nil {
		t.Fatal(err)
	}
	if len(provided) == 0 {
		t.Fatal("cnt provides nothing")
	}
}

func TestMetaInterceptionVerbs(t *testing.T) {
	client, capsule := fixture(t)
	if err := client.Do(&Request{
		Op: "intercept", Component: "cnt", Receptacle: "out",
	}, nil); err != nil {
		t.Fatal(err)
	}
	var chain []string
	if err := client.Do(&Request{
		Op: "chain", Component: "cnt", Receptacle: "out",
	}, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != auditName {
		t.Fatalf("chain = %v", chain)
	}

	pushInto(t, capsule, "cnt", 7)
	var ad AuditData
	if err := client.Do(&Request{
		Op: "audit", Component: "cnt", Receptacle: "out",
	}, &ad); err != nil {
		t.Fatal(err)
	}
	if ad.Calls != 7 {
		t.Fatalf("audit counted %d calls, want 7", ad.Calls)
	}

	if err := client.Do(&Request{
		Op: "unintercept", Component: "cnt", Receptacle: "out",
	}, &ad); err != nil {
		t.Fatal(err)
	}
	if ad.Calls != 7 {
		t.Fatalf("unintercept reported %d calls, want 7", ad.Calls)
	}
	if err := client.Do(&Request{
		Op: "chain", Component: "cnt", Receptacle: "out",
	}, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 0 {
		t.Fatalf("chain after unintercept = %v", chain)
	}
	// The audit is gone: a further audit query must fail.
	if err := client.Do(&Request{
		Op: "audit", Component: "cnt", Receptacle: "out",
	}, nil); err == nil {
		t.Fatal("audit of removed interceptor succeeded")
	}
}

func TestMetaTasksVerb(t *testing.T) {
	client, _ := fixture(t)
	var tasks []any
	if err := client.Do(&Request{Op: "tasks"}, &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("tasks = %v on a fresh capsule", tasks)
	}
}
