package control

// Tests for the control verbs that dispatch onto the unified meta-space.

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

func pushInto(t *testing.T, capsule *core.Capsule, component string, n int) {
	t.Helper()
	comp, ok := capsule.Component(component)
	if !ok {
		t.Fatalf("component %q missing", component)
	}
	impl, _ := comp.Provided(router.IPacketPushID)
	push := impl.(router.IPacketPush)
	raw, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"), 9000, 53, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := push.Push(router.NewPacket(raw)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMetaArchitectureVerbs(t *testing.T) {
	client, _ := fixture(t)
	var verdict string
	if err := client.Do(&Request{Op: "validate"}, &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict != "valid" {
		t.Fatalf("validate = %q", verdict)
	}
	var constraints []string
	if err := client.Do(&Request{Op: "constraints"}, &constraints); err != nil {
		t.Fatal(err)
	}
	var dropped uint64
	if err := client.Do(&Request{Op: "dropped"}, &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d on an unsubscribed capsule", dropped)
	}
}

func TestMetaInterfaceVerbs(t *testing.T) {
	client, _ := fixture(t)
	var ids []string
	if err := client.Do(&Request{Op: "ifaces"}, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no interfaces registered")
	}
	var d IfaceData
	if err := client.Do(&Request{Op: "iface", Iface: string(router.IPacketPushID)}, &d); err != nil {
		t.Fatal(err)
	}
	if d.ID != router.IPacketPushID || len(d.Ops) == 0 {
		t.Fatalf("iface data = %+v", d)
	}
	if err := client.Do(&Request{Op: "iface", Iface: "no.such/1"}, nil); err == nil {
		t.Fatal("lookup of unknown interface succeeded")
	}
	var provided []string
	if err := client.Do(&Request{Op: "provided", Component: "cnt"}, &provided); err != nil {
		t.Fatal(err)
	}
	if len(provided) == 0 {
		t.Fatal("cnt provides nothing")
	}
}

func TestMetaInterceptionVerbs(t *testing.T) {
	client, capsule := fixture(t)
	if err := client.Do(&Request{
		Op: "intercept", Component: "cnt", Receptacle: "out",
	}, nil); err != nil {
		t.Fatal(err)
	}
	var chain []string
	if err := client.Do(&Request{
		Op: "chain", Component: "cnt", Receptacle: "out",
	}, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != auditName {
		t.Fatalf("chain = %v", chain)
	}

	pushInto(t, capsule, "cnt", 7)
	var ad AuditData
	if err := client.Do(&Request{
		Op: "audit", Component: "cnt", Receptacle: "out",
	}, &ad); err != nil {
		t.Fatal(err)
	}
	if ad.Calls != 7 {
		t.Fatalf("audit counted %d calls, want 7", ad.Calls)
	}

	if err := client.Do(&Request{
		Op: "unintercept", Component: "cnt", Receptacle: "out",
	}, &ad); err != nil {
		t.Fatal(err)
	}
	if ad.Calls != 7 {
		t.Fatalf("unintercept reported %d calls, want 7", ad.Calls)
	}
	if err := client.Do(&Request{
		Op: "chain", Component: "cnt", Receptacle: "out",
	}, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 0 {
		t.Fatalf("chain after unintercept = %v", chain)
	}
	// The audit is gone: a further audit query must fail.
	if err := client.Do(&Request{
		Op: "audit", Component: "cnt", Receptacle: "out",
	}, nil); err == nil {
		t.Fatal("audit of removed interceptor succeeded")
	}
}

func TestMetaTasksVerb(t *testing.T) {
	client, _ := fixture(t)
	var tasks []any
	if err := client.Do(&Request{Op: "tasks"}, &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("tasks = %v on a fresh capsule", tasks)
	}
}

// TestMetaShardedAuditVerbs runs the control protocol against a sharded
// data plane: the server wraps the ShardedCF's inner framework, the
// intercept/audit/unintercept verbs address each replica's ingress
// binding, and the per-shard audit counts must sum to exactly the packets
// pushed through the sharded dispatcher (batched or not, via PacketCount).
func TestMetaShardedAuditVerbs(t *testing.T) {
	outer := core.NewCapsule("sharded-ctl")
	const shards = 3
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := fw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sharded, err := router.NewShardedCF(outer, router.ShardConfig{Shards: shards}, replica)
	if err != nil {
		t.Fatal(err)
	}
	sink := router.NewDropper()
	if err := outer.Insert("fwd", sharded); err != nil {
		t.Fatal(err)
	}
	if err := outer.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(outer, "fwd", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := outer.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = outer.StopAll(ctx) })

	srv := NewServer(sharded.Framework())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
	})

	// intercept every replica's ingress binding.
	for i := 0; i < shards; i++ {
		if err := client.Do(&Request{Op: "intercept",
			Component: router.ShardName(i, "ingress"), Receptacle: "out"}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Drive traffic across many flows through the sharded dispatcher, in
	// batches so the audits count through PushBatch crossings.
	const total = 640
	batch := make([]*router.Packet, 0, 16)
	for i := 0; i < total; i++ {
		raw, err := packet.BuildUDP4(
			netip.AddrFrom4([4]byte{10, 1, 0, byte(i % 32)}),
			netip.MustParseAddr("10.0.0.2"), 9000, 53, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, router.NewPacket(raw))
		if len(batch) == 16 {
			if err := sharded.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}

	// audit: the per-shard counts must sum to the dispatched total.
	var sum, busy uint64
	for i := 0; i < shards; i++ {
		var data AuditData
		if err := client.Do(&Request{Op: "audit",
			Component: router.ShardName(i, "ingress"), Receptacle: "out"}, &data); err != nil {
			t.Fatal(err)
		}
		if data.Calls != sharded.ShardStats(i).In {
			t.Fatalf("shard %d: audit %d != ShardStats.In %d",
				i, data.Calls, sharded.ShardStats(i).In)
		}
		sum += data.Calls
		if data.Calls > 0 {
			busy++
		}
	}
	if sum != total {
		t.Fatalf("per-shard audit sum %d, want %d", sum, total)
	}
	if busy < 2 {
		t.Fatalf("only %d shards audited traffic across 32 flows", busy)
	}

	// unintercept returns each final count; the sum must still conserve.
	var final uint64
	for i := 0; i < shards; i++ {
		var data AuditData
		if err := client.Do(&Request{Op: "unintercept",
			Component: router.ShardName(i, "ingress"), Receptacle: "out"}, &data); err != nil {
			t.Fatal(err)
		}
		final += data.Calls
	}
	if final != total {
		t.Fatalf("unintercept counts sum %d, want %d", final, total)
	}
	// Chains are re-fused: the chain verb reports empty on every replica.
	for i := 0; i < shards; i++ {
		var chain []string
		if err := client.Do(&Request{Op: "chain",
			Component: router.ShardName(i, "ingress"), Receptacle: "out"}, &chain); err != nil {
			t.Fatal(err)
		}
		if len(chain) != 0 {
			t.Fatalf("shard %d chain %v after unintercept", i, chain)
		}
	}
}

// TestStatsTreeShardedCapsule is the control-protocol half of the
// reflective loop's observation surface: for a capsule containing a
// sharded CF, the parameterless "stats" verb (what `nkctl stats` sends)
// returns the full aggregated tree — the CF's merged element stats at
// its node, one lane child per replica whose arrival counters sum to
// the dispatched total, and the replicas' inner constituents under the
// lanes.
func TestStatsTreeShardedCapsule(t *testing.T) {
	outer := core.NewCapsule("sharded-stats")
	fw, err := router.NewFramework(outer, false)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	replica := func(shard int, rfw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := rfw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := rfw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sharded, err := router.NewShardedCF(outer, router.ShardConfig{Shards: shards}, replica)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("fwd", sharded); err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("sink", router.NewDropper()); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(outer, "fwd", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := outer.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = outer.StopAll(ctx) })

	const total = 480
	batch := make([]*router.Packet, 0, 16)
	for i := 0; i < total; i++ {
		raw, err := packet.BuildUDP4(
			netip.AddrFrom4([4]byte{10, 2, 0, byte(i % 24)}),
			netip.MustParseAddr("10.0.0.9"), 7000, 53, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, router.NewPacket(raw))
		if len(batch) == 16 {
			if err := sharded.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(fw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
	})

	var sd StatsData
	if err := client.Do(&Request{Op: "stats"}, &sd); err != nil {
		t.Fatal(err)
	}
	fwd, ok := sd.Tree.Find("fwd")
	if !ok {
		t.Fatalf("no fwd node in tree: %+v", sd.Tree)
	}
	if in, ok := fwd.Stat("packets_in"); !ok || in.Value != total {
		t.Fatalf("fwd packets_in = %+v", fwd.Stats)
	}
	if out, ok := fwd.Stat("packets_out"); !ok || out.Value != total {
		t.Fatalf("fwd packets_out = %+v", fwd.Stats)
	}
	if len(fwd.Children) != shards {
		t.Fatalf("fwd has %d lanes, want %d", len(fwd.Children), shards)
	}
	var laneSum float64
	for _, lane := range fwd.Children {
		in, ok := lane.Stat("packets_in")
		if !ok {
			t.Fatalf("lane %s lacks packets_in", lane.Name)
		}
		laneSum += in.Value
		if len(lane.Children) == 0 {
			t.Fatalf("lane %s has no inner constituents", lane.Name)
		}
	}
	if laneSum != total {
		t.Fatalf("lane sum %v != dispatched %d", laneSum, total)
	}
	// The sink's uniform stats ride the same tree.
	if sink, ok := sd.Tree.Find("sink"); !ok {
		t.Fatal("no sink node")
	} else if in, ok := sink.Stat("packets_in"); !ok || in.Value != total {
		t.Fatalf("sink packets_in = %+v", sink.Stats)
	}
}
