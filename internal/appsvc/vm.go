// Package appsvc implements the stratum-3 application-services layer of
// Figure 1: "coarser-grained 'programs' — in the active networking
// execution-environment sense — that are less performance critical and act
// on pre-selected packet flows in application-specific ways (e.g. per-flow
// media filters). Here, security is typically more of a concern than raw
// performance."
//
// Two mechanisms are provided. The ExecEnv is a Router-CF component that
// attaches per-flow programs (native Go Program implementations) to
// filter-selected flows under a resource sandbox. The capsule VM is an
// ANTS-like mobile-code interpreter: a small gas-metered stack machine
// whose bytecode travels in active packets, so untrusted code injected
// into a node terminates deterministically and can only touch the packet
// it rode in on.
package appsvc

import (
	"errors"
	"fmt"
)

// VM errors.
var (
	// ErrOutOfGas indicates the program exceeded its instruction budget.
	ErrOutOfGas = errors.New("appsvc: out of gas")
	// ErrStack indicates stack underflow or overflow.
	ErrStack = errors.New("appsvc: stack fault")
	// ErrBadOpcode indicates an unknown instruction.
	ErrBadOpcode = errors.New("appsvc: bad opcode")
	// ErrBounds indicates an out-of-range payload or jump access.
	ErrBounds = errors.New("appsvc: bounds fault")
	// ErrDivZero indicates division by zero.
	ErrDivZero = errors.New("appsvc: division by zero")
	// ErrNoVerdict indicates the program halted without deciding.
	ErrNoVerdict = errors.New("appsvc: no verdict")
)

// Op is a VM opcode.
type Op uint8

// Instruction set. Operand-carrying opcodes read the following word in
// the code stream.
const (
	OpPush Op = iota + 1 // push immediate
	OpPop
	OpDup
	OpSwap
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq     // push a==b
	OpLt     // push a<b  (a pushed first)
	OpGt     // push a>b
	OpNot    // logical negation (0 -> 1, else 0)
	OpJmp    // absolute jump to operand
	OpJz     // pop; jump if zero
	OpJnz    // pop; jump if non-zero
	OpLoadF  // push packet field (operand = Field)
	OpStoreF // pop; store into packet field (operand = Field)
	OpLoadB  // pop index; push payload byte
	OpStoreB // pop index, pop value; store payload byte
	OpLen    // push payload length
	OpForward
	OpDrop
	OpHalt
)

// Field identifies packet fields the VM can read/write.
type Field int64

// VM-visible packet fields.
const (
	FieldVersion Field = iota + 1
	FieldTTL
	FieldProto
	FieldSrcPort
	FieldDstPort
	FieldTOS
	FieldLen
)

// Verdict is a program's decision about its packet.
type Verdict int

// Verdicts.
const (
	VerdictForward Verdict = iota + 1
	VerdictDrop
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// PacketEnv is the VM's view of the packet it runs against. Field access
// goes through the env so the VM stays decoupled from wire formats.
type PacketEnv interface {
	LoadField(f Field) (int64, bool)
	StoreField(f Field, v int64) bool
	PayloadLen() int
	LoadByte(i int) (byte, bool)
	StoreByte(i int, b byte) bool
}

// Code is assembled VM bytecode: a flat []int64 of opcodes and operands.
type Code []int64

// hasOperand reports whether op consumes an operand word.
func hasOperand(op Op) bool {
	switch op {
	case OpPush, OpJmp, OpJz, OpJnz, OpLoadF, OpStoreF:
		return true
	default:
		return false
	}
}

// maxStack is the VM stack depth.
const maxStack = 64

// Result captures one execution.
type Result struct {
	Verdict Verdict
	GasUsed int
}

// Exec runs the program against env with the given gas budget. Every
// instruction costs one gas. The program must end with Forward, Drop, or
// fall off the end / Halt (which is ErrNoVerdict — the caller decides the
// fail-safe, usually drop).
func Exec(p Code, env PacketEnv, gas int) (Result, error) {
	var stack [maxStack]int64
	sp := 0 // next free slot
	pc := 0
	used := 0

	pop := func() (int64, bool) {
		if sp == 0 {
			return 0, false
		}
		sp--
		return stack[sp], true
	}
	push := func(v int64) bool {
		if sp == maxStack {
			return false
		}
		stack[sp] = v
		sp++
		return true
	}

	for pc < len(p) {
		if used >= gas {
			return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d: %w", pc, ErrOutOfGas)
		}
		used++
		op := Op(p[pc])
		var operand int64
		width := 1
		if hasOperand(op) {
			if pc+1 >= len(p) {
				return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d truncated operand: %w", pc, ErrBadOpcode)
			}
			operand = p[pc+1]
			width = 2
		}
		next := pc + width

		switch op {
		case OpPush:
			if !push(operand) {
				return Result{GasUsed: used}, overflow(pc)
			}
		case OpPop:
			if _, ok := pop(); !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
		case OpDup:
			v, ok := pop()
			if !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
			if !push(v) || !push(v) {
				return Result{GasUsed: used}, overflow(pc)
			}
		case OpSwap:
			b, ok1 := pop()
			a, ok2 := pop()
			if !ok1 || !ok2 {
				return Result{GasUsed: used}, underflow(pc)
			}
			push(b)
			push(a)
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpLt, OpGt:
			b, ok1 := pop()
			a, ok2 := pop()
			if !ok1 || !ok2 {
				return Result{GasUsed: used}, underflow(pc)
			}
			var v int64
			switch op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv:
				if b == 0 {
					return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d: %w", pc, ErrDivZero)
				}
				v = a / b
			case OpMod:
				if b == 0 {
					return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d: %w", pc, ErrDivZero)
				}
				v = a % b
			case OpEq:
				v = b2i(a == b)
			case OpLt:
				v = b2i(a < b)
			case OpGt:
				v = b2i(a > b)
			}
			push(v)
		case OpNot:
			a, ok := pop()
			if !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
			push(b2i(a == 0))
		case OpJmp:
			next = int(operand)
		case OpJz, OpJnz:
			v, ok := pop()
			if !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
			if (op == OpJz && v == 0) || (op == OpJnz && v != 0) {
				next = int(operand)
			}
		case OpLoadF:
			v, ok := env.LoadField(Field(operand))
			if !ok {
				return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d field %d: %w", pc, operand, ErrBounds)
			}
			if !push(v) {
				return Result{GasUsed: used}, overflow(pc)
			}
		case OpStoreF:
			v, ok := pop()
			if !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
			if !env.StoreField(Field(operand), v) {
				return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d field %d: %w", pc, operand, ErrBounds)
			}
		case OpLoadB:
			i, ok := pop()
			if !ok {
				return Result{GasUsed: used}, underflow(pc)
			}
			b, ok := env.LoadByte(int(i))
			if !ok {
				return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d byte %d: %w", pc, i, ErrBounds)
			}
			push(int64(b))
		case OpStoreB:
			i, ok1 := pop()
			v, ok2 := pop()
			if !ok1 || !ok2 {
				return Result{GasUsed: used}, underflow(pc)
			}
			if !env.StoreByte(int(i), byte(v)) {
				return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d byte %d: %w", pc, i, ErrBounds)
			}
		case OpLen:
			if !push(int64(env.PayloadLen())) {
				return Result{GasUsed: used}, overflow(pc)
			}
		case OpForward:
			return Result{Verdict: VerdictForward, GasUsed: used}, nil
		case OpDrop:
			return Result{Verdict: VerdictDrop, GasUsed: used}, nil
		case OpHalt:
			return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d: %w", pc, ErrNoVerdict)
		default:
			return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d op %d: %w", pc, p[pc], ErrBadOpcode)
		}
		if next < 0 || next > len(p) {
			return Result{GasUsed: used}, fmt.Errorf("appsvc: pc=%d jump to %d: %w", pc, next, ErrBounds)
		}
		pc = next
	}
	return Result{GasUsed: used}, fmt.Errorf("appsvc: fell off end: %w", ErrNoVerdict)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func underflow(pc int) error {
	return fmt.Errorf("appsvc: pc=%d stack underflow: %w", pc, ErrStack)
}

func overflow(pc int) error {
	return fmt.Errorf("appsvc: pc=%d stack overflow: %w", pc, ErrStack)
}
