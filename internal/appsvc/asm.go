package appsvc

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler for the capsule VM: one instruction per line, ';' comments,
// labels as "name:", label references as operands of jumps. Field operands
// accept symbolic names (ttl, proto, ...).
//
//	; drop packets with ttl < 5
//	loadf ttl
//	push 5
//	lt
//	jnz kill
//	forward
//	kill: drop

var opNames = map[string]Op{
	"push": OpPush, "pop": OpPop, "dup": OpDup, "swap": OpSwap,
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "mod": OpMod,
	"eq": OpEq, "lt": OpLt, "gt": OpGt, "not": OpNot,
	"jmp": OpJmp, "jz": OpJz, "jnz": OpJnz,
	"loadf": OpLoadF, "storef": OpStoreF,
	"loadb": OpLoadB, "storeb": OpStoreB, "len": OpLen,
	"forward": OpForward, "drop": OpDrop, "halt": OpHalt,
}

var nameOfOp = func() map[Op]string {
	m := make(map[Op]string, len(opNames))
	for n, o := range opNames {
		m[o] = n
	}
	return m
}()

var fieldNames = map[string]Field{
	"version": FieldVersion, "ttl": FieldTTL, "proto": FieldProto,
	"srcport": FieldSrcPort, "dstport": FieldDstPort, "tos": FieldTOS,
	"len": FieldLen,
}

var nameOfField = func() map[Field]string {
	m := make(map[Field]string, len(fieldNames))
	for n, f := range fieldNames {
		m[f] = n
	}
	return m
}()

// Assemble compiles source text into a Program.
func Assemble(src string) (Code, error) {
	type pending struct {
		pos   int // operand slot to patch
		label string
		line  int
	}
	var prog Code
	labels := map[string]int64{}
	var patches []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("appsvc: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("appsvc: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = int64(len(prog))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op, ok := opNames[strings.ToLower(fields[0])]
		if !ok {
			return nil, fmt.Errorf("appsvc: line %d: unknown op %q", lineNo+1, fields[0])
		}
		prog = append(prog, int64(op))
		if hasOperand(op) {
			if len(fields) != 2 {
				return nil, fmt.Errorf("appsvc: line %d: %s needs one operand", lineNo+1, fields[0])
			}
			arg := fields[1]
			switch op {
			case OpLoadF, OpStoreF:
				f, ok := fieldNames[strings.ToLower(arg)]
				if !ok {
					return nil, fmt.Errorf("appsvc: line %d: unknown field %q", lineNo+1, arg)
				}
				prog = append(prog, int64(f))
			case OpJmp, OpJz, OpJnz:
				if v, err := strconv.ParseInt(arg, 10, 64); err == nil {
					prog = append(prog, v)
				} else {
					patches = append(patches, pending{pos: len(prog), label: arg, line: lineNo + 1})
					prog = append(prog, 0)
				}
			default: // push
				v, err := strconv.ParseInt(arg, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("appsvc: line %d: bad immediate %q", lineNo+1, arg)
				}
				prog = append(prog, v)
			}
		} else if len(fields) != 1 {
			return nil, fmt.Errorf("appsvc: line %d: %s takes no operand", lineNo+1, fields[0])
		}
	}
	for _, p := range patches {
		target, ok := labels[p.label]
		if !ok {
			return nil, fmt.Errorf("appsvc: line %d: undefined label %q", p.line, p.label)
		}
		prog[p.pos] = target
	}
	return prog, nil
}

// MustAssemble panics on assembly errors; for package-level program
// literals in examples and tests.
func MustAssemble(src string) Code {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program back to assembly (without labels: jump
// targets are absolute offsets).
func Disassemble(p Code) (string, error) {
	var b strings.Builder
	pc := 0
	for pc < len(p) {
		op := Op(p[pc])
		name, ok := nameOfOp[op]
		if !ok {
			return "", fmt.Errorf("appsvc: offset %d: %w", pc, ErrBadOpcode)
		}
		fmt.Fprintf(&b, "%d: %s", pc, name)
		if hasOperand(op) {
			if pc+1 >= len(p) {
				return "", fmt.Errorf("appsvc: offset %d truncated: %w", pc, ErrBadOpcode)
			}
			switch op {
			case OpLoadF, OpStoreF:
				fn, ok := nameOfField[Field(p[pc+1])]
				if !ok {
					fn = strconv.FormatInt(p[pc+1], 10)
				}
				fmt.Fprintf(&b, " %s", fn)
			default:
				fmt.Fprintf(&b, " %d", p[pc+1])
			}
			pc += 2
		} else {
			pc++
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
