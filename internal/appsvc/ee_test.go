package appsvc

import (
	"errors"
	"net/netip"
	"sync"
	"testing"

	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

var (
	srcA = netip.MustParseAddr("10.0.0.1")
	dstA = netip.MustParseAddr("192.168.1.1")
)

func mediaPkt(t *testing.T, dstPort uint16, payload []byte) *router.Packet {
	t.Helper()
	b, err := packet.BuildUDP4(srcA, dstA, 4000, dstPort, 64, payload)
	if err != nil {
		t.Fatal(err)
	}
	return router.NewPacket(b)
}

type collectorSink struct {
	*core.Base
	mu   sync.Mutex
	pkts []*router.Packet
}

func newCollector() *collectorSink {
	s := &collectorSink{Base: core.NewBase("test.Sink")}
	s.Provide(router.IPacketPushID, s)
	return s
}

func (s *collectorSink) Push(p *router.Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkts = append(s.pkts, p)
	return nil
}

func (s *collectorSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkts)
}

func eeFixture(t *testing.T) (*ExecEnv, *collectorSink) {
	t.Helper()
	c := core.NewCapsule("ee-test")
	ee := NewExecEnv()
	out := newCollector()
	if err := c.Insert("ee", ee); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Bind("ee", "out", "out", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	return ee, out
}

func TestEEPassThroughNoPrograms(t *testing.T) {
	ee, out := eeFixture(t)
	if err := ee.Push(mediaPkt(t, 5004, []byte("frame"))); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatal("pass-through failed")
	}
}

func TestEEMediaFilterThinsFlow(t *testing.T) {
	ee, out := eeFixture(t)
	mf := &MediaFilter{KeepOneIn: 3}
	if err := ee.Attach("udp and dst port 5004", mf, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := ee.Push(mediaPkt(t, 5004, []byte("frame"))); err != nil {
			t.Fatal(err)
		}
	}
	if out.count() != 10 {
		t.Fatalf("kept %d of 30, want 10", out.count())
	}
	// Unmatched traffic is untouched.
	for i := 0; i < 5; i++ {
		if err := ee.Push(mediaPkt(t, 9999, []byte("other"))); err != nil {
			t.Fatal(err)
		}
	}
	if out.count() != 15 {
		t.Fatalf("unmatched traffic filtered: %d", out.count())
	}
	st, err := ee.StatsOf("media-filter")
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 30 || st.Drops != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEEFlowMeterAccumulates(t *testing.T) {
	ee, _ := eeFixture(t)
	if err := ee.Attach("udp", FlowMeter{}, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	var total int
	for i := 0; i < 7; i++ {
		p := mediaPkt(t, 5004, []byte("x"))
		total += len(p.Data)
		if err := ee.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	// Dig the flow state out through the public surface: re-run OnPacket's
	// accounting by reading state via a fresh meter on the same attachment
	// is not possible, so verify through the attachment stats instead.
	st, err := ee.StatsOf("flow-meter")
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 7 || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEEVMProgramDropsLowTTL(t *testing.T) {
	ee, out := eeFixture(t)
	code := MustAssemble(`
		loadf ttl
		push 10
		lt
		jnz kill
		forward
		kill: drop
	`)
	if err := ee.AttachVM("ttl-guard", "ip", code, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	ok, err := packet.BuildUDP4(srcA, dstA, 1, 2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	low, err := packet.BuildUDP4(srcA, dstA, 1, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(router.NewPacket(ok)); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(router.NewPacket(low)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatalf("forwarded = %d, want 1", out.count())
	}
}

func TestEEVMProgramMutatesPacket(t *testing.T) {
	ee, out := eeFixture(t)
	code := MustAssemble(`
		push 46
		storef tos
		forward
	`)
	if err := ee.AttachVM("dscp-mark", "udp and dst port 5004", code, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(mediaPkt(t, 5004, []byte("av"))); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatal("packet lost")
	}
	out.mu.Lock()
	data := out.pkts[0].Data
	out.mu.Unlock()
	h, err := packet.ParseIPv4(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.TOS != 46 {
		t.Fatalf("tos = %d, want 46", h.TOS)
	}
	if err := packet.ValidateIPv4Checksum(data); err != nil {
		t.Fatalf("checksum invalid after VM mutation: %v", err)
	}
}

func TestEEFaultingProgramDropsPacket(t *testing.T) {
	ee, out := eeFixture(t)
	// Infinite loop: burns its gas, faults, packet must be dropped.
	if err := ee.AttachVM("runaway", "ip", MustAssemble("spin: jmp spin"),
		Sandbox{Gas: 50}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(mediaPkt(t, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 0 {
		t.Fatal("faulting program's packet forwarded")
	}
	st, err := ee.StatsOf("runaway")
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != 1 {
		t.Fatalf("faults = %d", st.Faults)
	}
}

func TestEESandboxRateLimitFailsOpen(t *testing.T) {
	ee, out := eeFixture(t)
	mf := &MediaFilter{KeepOneIn: 1000000} // drops ~everything it sees
	if err := ee.Attach("udp", mf, Sandbox{RatePps: 1}); err != nil {
		t.Fatal(err)
	}
	// First packet consumes the program budget (dropped by the filter);
	// the rest bypass the over-budget program and pass through.
	for i := 0; i < 10; i++ {
		if err := ee.Push(mediaPkt(t, 5004, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if out.count() < 8 {
		t.Fatalf("rate-limited program still swallowed traffic: %d forwarded", out.count())
	}
}

func TestEEStateBudgetEnforced(t *testing.T) {
	st := &FlowState{limit: 10}
	if err := st.Put("k", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k2", []byte("123456")); !errors.Is(err, ErrSandbox) {
		t.Fatalf("want ErrSandbox, got %v", err)
	}
	// Overwriting reclaims the old value's budget.
	if err := st.Put("k", []byte("1234567890")); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get("k"); !ok || len(v) != 10 {
		t.Fatalf("get = %v %v", v, ok)
	}
}

func TestEEAttachValidation(t *testing.T) {
	ee, _ := eeFixture(t)
	if err := ee.Attach("not a filter ((", &MediaFilter{}, Sandbox{}); err == nil {
		t.Fatal("want filter error")
	}
	if err := ee.Attach("udp", nil, Sandbox{}); err == nil {
		t.Fatal("want nil program error")
	}
	if err := ee.AttachVM("x", "udp", nil, Sandbox{}); err == nil {
		t.Fatal("want empty code error")
	}
	if err := ee.Attach("udp", &MediaFilter{}, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Attach("udp", &MediaFilter{}, Sandbox{}); !errors.Is(err, ErrProgramExists) {
		t.Fatalf("want ErrProgramExists, got %v", err)
	}
}

func TestEEDetach(t *testing.T) {
	ee, out := eeFixture(t)
	mf := &MediaFilter{KeepOneIn: 1000000}
	if err := ee.Attach("udp", mf, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(mediaPkt(t, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 { // first packet is the kept one (count%n==1)
		t.Fatalf("first packet should pass: %d", out.count())
	}
	if err := ee.Push(mediaPkt(t, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatal("second packet should drop")
	}
	if err := ee.Detach("media-filter"); err != nil {
		t.Fatal(err)
	}
	if err := ee.Detach("media-filter"); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("want ErrNoProgram, got %v", err)
	}
	if err := ee.Push(mediaPkt(t, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 2 {
		t.Fatal("detached program still filtering")
	}
	if got := ee.Programs(); len(got) != 0 {
		t.Fatalf("programs = %v", got)
	}
	if _, err := ee.StatsOf("media-filter"); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("want ErrNoProgram, got %v", err)
	}
}

func TestEETTLFloorProgram(t *testing.T) {
	ee, out := eeFixture(t)
	if err := ee.Attach("ip", TTLFloor{Min: 10}, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	high, err := packet.BuildUDP4(srcA, dstA, 1, 2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	low, err := packet.BuildUDP4(srcA, dstA, 1, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(router.NewPacket(high)); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(router.NewPacket(low)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatalf("forwarded = %d", out.count())
	}
}

func TestEEChainedPrograms(t *testing.T) {
	ee, out := eeFixture(t)
	// Two programs on the same flow: both must run, in attach order.
	if err := ee.Attach("udp", TTLFloor{Min: 5}, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Attach("udp", FlowMeter{}, Sandbox{}); err != nil {
		t.Fatal(err)
	}
	if err := ee.Push(mediaPkt(t, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if out.count() != 1 {
		t.Fatal("chained programs broke forwarding")
	}
	stMeter, err := ee.StatsOf("flow-meter")
	if err != nil {
		t.Fatal(err)
	}
	if stMeter.Hits != 1 {
		t.Fatal("second program did not run")
	}
}

func TestEEFactoryRegistered(t *testing.T) {
	comp, err := core.Components.New(TypeExecEnv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if comp.TypeName() != TypeExecEnv {
		t.Fatalf("type = %q", comp.TypeName())
	}
}
