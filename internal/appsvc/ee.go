package appsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netkit/core"
	"netkit/internal/filter"
	"netkit/packet"
	"netkit/resources"
	"netkit/router"
)

// EE errors.
var (
	// ErrSandbox indicates a program exceeded its sandbox budget.
	ErrSandbox = errors.New("appsvc: sandbox limit")
	// ErrProgramExists indicates a duplicate program name.
	ErrProgramExists = errors.New("appsvc: program exists")
	// ErrNoProgram indicates an unknown program.
	ErrNoProgram = errors.New("appsvc: no such program")
)

// TypeExecEnv is the EE's component type name.
const TypeExecEnv = "netkit.appsvc.ExecEnv"

// Program is a native per-flow application-service program.
type Program interface {
	// Name identifies the program.
	Name() string
	// OnPacket processes one packet of an attached flow; it may mutate the
	// payload in place and must return the verdict.
	OnPacket(state *FlowState, pkt *router.Packet) (Verdict, error)
}

// FlowState is per-(program, flow) storage, bounded by the sandbox.
type FlowState struct {
	limit int
	mu    sync.Mutex
	kv    map[string][]byte
	used  int
}

// Put stores a value, enforcing the memory budget.
func (s *FlowState) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.used - len(s.kv[key]) + len(val)
	if s.limit > 0 && next > s.limit {
		return fmt.Errorf("appsvc: state %d > %d bytes: %w", next, s.limit, ErrSandbox)
	}
	if s.kv == nil {
		s.kv = make(map[string][]byte)
	}
	s.kv[key] = append([]byte(nil), val...)
	s.used = next
	return nil
}

// Get retrieves a value.
func (s *FlowState) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	return v, ok
}

// Sandbox bounds one attached program.
type Sandbox struct {
	// MaxStateBytes bounds per-flow storage (0 = 4096).
	MaxStateBytes int
	// RatePps bounds packets/sec through the program (0 = unlimited).
	RatePps float64
	// Gas bounds VM programs per packet (0 = 4096). Ignored for native
	// programs.
	Gas int
}

// attachment is one program bound to a flow selector.
type attachment struct {
	name    string
	match   filter.Matcher
	prog    Program
	vm      Code // nil unless VM-backed
	sandbox Sandbox
	bucket  *resources.TokenBucket

	mu     sync.Mutex
	flows  map[packet.FlowKey]*FlowState
	hits   atomic.Uint64
	drops  atomic.Uint64
	faults atomic.Uint64
}

func (a *attachment) state(k packet.FlowKey) *FlowState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.flows[k]
	if !ok {
		st = &FlowState{limit: a.sandbox.MaxStateBytes}
		a.flows[k] = st
	}
	return st
}

// AttachStats reports one attachment's counters.
type AttachStats struct {
	Name   string
	Hits   uint64
	Drops  uint64
	Faults uint64
}

// ExecEnv is the stratum-3 execution environment, packaged as a Router CF
// component: packets pushed in are matched against program attachments;
// matching programs run under their sandboxes; surviving packets continue
// out the "out" receptacle.
type ExecEnv struct {
	*core.Base
	out *core.Receptacle[router.IPacketPush]

	mu      sync.RWMutex
	attach  []*attachment
	in      atomic.Uint64
	forward atomic.Uint64
	dropped atomic.Uint64
}

// NewExecEnv returns an empty EE.
func NewExecEnv() *ExecEnv {
	ee := &ExecEnv{Base: core.NewBase(TypeExecEnv)}
	ee.out = core.NewReceptacle[router.IPacketPush](router.IPacketPushID)
	ee.AddReceptacle("out", ee.out)
	ee.Provide(router.IPacketPushID, ee)
	return ee
}

// Attach binds a native program to the flows selected by spec.
func (ee *ExecEnv) Attach(spec string, prog Program, sb Sandbox) error {
	if prog == nil {
		return fmt.Errorf("appsvc: nil program")
	}
	return ee.attachAny(prog.Name(), spec, prog, nil, sb)
}

// AttachVM binds a capsule-VM program to the flows selected by spec.
func (ee *ExecEnv) AttachVM(name, spec string, code Code, sb Sandbox) error {
	if len(code) == 0 {
		return fmt.Errorf("appsvc: empty code")
	}
	return ee.attachAny(name, spec, nil, code, sb)
}

func (ee *ExecEnv) attachAny(name, spec string, prog Program, code Code, sb Sandbox) error {
	m, err := filter.Compile(spec)
	if err != nil {
		return fmt.Errorf("appsvc: attach %q: %w", name, err)
	}
	if sb.MaxStateBytes == 0 {
		sb.MaxStateBytes = 4096
	}
	if sb.Gas == 0 {
		sb.Gas = 4096
	}
	a := &attachment{
		name: name, match: m, prog: prog, vm: code, sandbox: sb,
		flows: make(map[packet.FlowKey]*FlowState),
	}
	if sb.RatePps > 0 {
		bucket, err := resources.NewTokenBucket(sb.RatePps, sb.RatePps, nil)
		if err != nil {
			return err
		}
		a.bucket = bucket
	}
	ee.mu.Lock()
	defer ee.mu.Unlock()
	for _, have := range ee.attach {
		if have.name == name {
			return fmt.Errorf("appsvc: %q: %w", name, ErrProgramExists)
		}
	}
	ee.attach = append(ee.attach, a)
	return nil
}

// Detach removes a program by name.
func (ee *ExecEnv) Detach(name string) error {
	ee.mu.Lock()
	defer ee.mu.Unlock()
	for i, a := range ee.attach {
		if a.name == name {
			ee.attach = append(ee.attach[:i], ee.attach[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("appsvc: %q: %w", name, ErrNoProgram)
}

// Programs lists attachment names in evaluation order.
func (ee *ExecEnv) Programs() []string {
	ee.mu.RLock()
	defer ee.mu.RUnlock()
	out := make([]string, len(ee.attach))
	for i, a := range ee.attach {
		out[i] = a.name
	}
	return out
}

// StatsOf reports one attachment's counters.
func (ee *ExecEnv) StatsOf(name string) (AttachStats, error) {
	ee.mu.RLock()
	defer ee.mu.RUnlock()
	for _, a := range ee.attach {
		if a.name == name {
			return AttachStats{
				Name: a.name, Hits: a.hits.Load(),
				Drops: a.drops.Load(), Faults: a.faults.Load(),
			}, nil
		}
	}
	return AttachStats{}, fmt.Errorf("appsvc: %q: %w", name, ErrNoProgram)
}

// Push implements router.IPacketPush.
func (ee *ExecEnv) Push(p *router.Packet) error {
	ee.in.Add(1)
	view := p.View()
	ee.mu.RLock()
	attach := ee.attach
	ee.mu.RUnlock()
	for _, a := range attach {
		if !a.match.Match(view) {
			continue
		}
		a.hits.Add(1)
		if a.bucket != nil && !a.bucket.Allow(1) {
			// Over the program's packet budget: the program is skipped, the
			// packet passes through untouched (fail-open for rate limits).
			continue
		}
		verdict, err := ee.run(a, p)
		if err != nil {
			// Program fault: fail-safe is drop (security over availability
			// for injected code).
			a.faults.Add(1)
			ee.dropped.Add(1)
			p.Release()
			return nil
		}
		if verdict == VerdictDrop {
			a.drops.Add(1)
			ee.dropped.Add(1)
			p.Release()
			return nil
		}
		p.InvalidateView()
		view = p.View()
	}
	next, ok := ee.out.Get()
	if !ok {
		ee.dropped.Add(1)
		p.Release()
		return nil
	}
	ee.forward.Add(1)
	return next.Push(p)
}

// run executes one attachment against one packet.
func (ee *ExecEnv) run(a *attachment, p *router.Packet) (Verdict, error) {
	if a.vm != nil {
		env, err := NewPacketEnv(p)
		if err != nil {
			return 0, err
		}
		res, err := Exec(a.vm, env, a.sandbox.Gas)
		if err != nil {
			return 0, err
		}
		if env.Dirty() {
			env.Commit()
		}
		return res.Verdict, nil
	}
	flow, err := packet.Flow(p.Data)
	if err != nil {
		return 0, err
	}
	return a.prog.OnPacket(a.state(flow), p)
}

// Stats reports (in, forwarded, dropped).
func (ee *ExecEnv) Stats() (in, forwarded, dropped uint64) {
	return ee.in.Load(), ee.forward.Load(), ee.dropped.Load()
}

var _ router.IPacketPush = (*ExecEnv)(nil)

func init() {
	core.Components.MustRegister(TypeExecEnv, func(map[string]string) (core.Component, error) {
		return NewExecEnv(), nil
	})
}

// ---------------------------------------------------------------------------
// PacketEnv adapter

// pktEnv adapts a router.Packet to the VM's PacketEnv. Header fields are
// parsed once; stores are applied on Commit (TTL/TOS rewrites re-checksum).
type pktEnv struct {
	pkt     *router.Packet
	isV4    bool
	hdrLen  int
	ttl     int64
	tos     int64
	view    filter.View
	dirty   bool
	payload []byte // aliases pkt.Data[hdrLen:]
}

// NewPacketEnv builds the VM environment for a packet.
func NewPacketEnv(p *router.Packet) (*pktEnv, error) {
	e := &pktEnv{pkt: p, view: filter.Extract(p.Data)}
	switch e.view.Version {
	case 4:
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			return nil, err
		}
		e.isV4 = true
		e.hdrLen = h.IHL
	case 6:
		e.hdrLen = packet.IPv6HeaderLen
	default:
		return nil, fmt.Errorf("appsvc: unparseable packet: %w", packet.ErrVersion)
	}
	e.ttl = int64(e.view.TTL)
	e.tos = int64(e.view.TOS)
	e.payload = p.Data[e.hdrLen:]
	return e, nil
}

// LoadField implements PacketEnv.
func (e *pktEnv) LoadField(f Field) (int64, bool) {
	switch f {
	case FieldVersion:
		return int64(e.view.Version), true
	case FieldTTL:
		return e.ttl, true
	case FieldProto:
		return int64(e.view.Proto), true
	case FieldSrcPort:
		return int64(e.view.SrcPort), true
	case FieldDstPort:
		return int64(e.view.DstPort), true
	case FieldTOS:
		return e.tos, true
	case FieldLen:
		return int64(len(e.pkt.Data)), true
	default:
		return 0, false
	}
}

// StoreField implements PacketEnv (TTL and TOS are writable).
func (e *pktEnv) StoreField(f Field, v int64) bool {
	if v < 0 || v > 255 {
		return false
	}
	switch f {
	case FieldTTL:
		e.ttl = v
		e.dirty = true
		return true
	case FieldTOS:
		e.tos = v
		e.dirty = true
		return true
	default:
		return false
	}
}

// PayloadLen implements PacketEnv.
func (e *pktEnv) PayloadLen() int { return len(e.payload) }

// LoadByte implements PacketEnv.
func (e *pktEnv) LoadByte(i int) (byte, bool) {
	if i < 0 || i >= len(e.payload) {
		return 0, false
	}
	return e.payload[i], true
}

// StoreByte implements PacketEnv.
func (e *pktEnv) StoreByte(i int, b byte) bool {
	if i < 0 || i >= len(e.payload) {
		return false
	}
	e.payload[i] = b
	e.dirty = true
	return true
}

// Dirty reports whether Commit has work to do.
func (e *pktEnv) Dirty() bool { return e.dirty }

// Commit applies header field writes back to the wire form, refreshing the
// IPv4 checksum.
func (e *pktEnv) Commit() {
	d := e.pkt.Data
	if e.isV4 {
		d[1] = byte(e.tos)
		d[8] = byte(e.ttl)
		d[10], d[11] = 0, 0
		cs := packet.Checksum(d[:e.hdrLen])
		binary.BigEndian.PutUint16(d[10:12], cs)
	} else {
		d[0] = 0x60 | byte(e.tos)>>4
		d[1] = byte(e.tos)<<4 | d[1]&0x0f
		d[7] = byte(e.ttl)
	}
	e.pkt.InvalidateView()
}

// ---------------------------------------------------------------------------
// Built-in native programs

// MediaFilter is the paper's canonical stratum-3 example ("per-flow media
// filters"): it passes only every Nth packet of the flow, thinning a media
// stream to a fraction of its rate.
type MediaFilter struct {
	// KeepOneIn passes 1 packet in every KeepOneIn (>= 1).
	KeepOneIn uint64
	count     atomic.Uint64
}

// Name implements Program.
func (m *MediaFilter) Name() string { return "media-filter" }

// OnPacket implements Program.
func (m *MediaFilter) OnPacket(_ *FlowState, _ *router.Packet) (Verdict, error) {
	n := m.KeepOneIn
	if n <= 1 {
		return VerdictForward, nil
	}
	if m.count.Add(1)%n == 1 {
		return VerdictForward, nil
	}
	return VerdictDrop, nil
}

// FlowMeter counts per-flow packets and bytes into flow state — an
// application-specific monitor exercising the per-flow store.
type FlowMeter struct{}

// Name implements Program.
func (FlowMeter) Name() string { return "flow-meter" }

// OnPacket implements Program.
func (FlowMeter) OnPacket(st *FlowState, p *router.Packet) (Verdict, error) {
	var pkts, bytes uint64
	if raw, ok := st.Get("pkts"); ok && len(raw) == 16 {
		pkts = binary.BigEndian.Uint64(raw[:8])
		bytes = binary.BigEndian.Uint64(raw[8:])
	}
	pkts++
	bytes += uint64(len(p.Data))
	var raw [16]byte
	binary.BigEndian.PutUint64(raw[:8], pkts)
	binary.BigEndian.PutUint64(raw[8:], bytes)
	if err := st.Put("pkts", raw[:]); err != nil {
		return 0, err
	}
	return VerdictForward, nil
}

// ReadMeter extracts the FlowMeter counters from a flow state.
func ReadMeter(st *FlowState) (pkts, bytes uint64) {
	if raw, ok := st.Get("pkts"); ok && len(raw) == 16 {
		return binary.BigEndian.Uint64(raw[:8]), binary.BigEndian.Uint64(raw[8:])
	}
	return 0, 0
}

// TTLFloor drops packets whose TTL has fallen below a floor — a trivial
// security-ish program used in tests and examples.
type TTLFloor struct {
	Min uint8
}

// Name implements Program.
func (t TTLFloor) Name() string { return "ttl-floor" }

// OnPacket implements Program.
func (t TTLFloor) OnPacket(_ *FlowState, p *router.Packet) (Verdict, error) {
	v := p.View()
	if v.TTL < t.Min {
		return VerdictDrop, nil
	}
	return VerdictForward, nil
}

// ---------------------------------------------------------------------------
// Rate helpers

// PacketsPerSecond converts a count over a window into pps for reporting.
func PacketsPerSecond(count uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}
