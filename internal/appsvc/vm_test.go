package appsvc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// memEnv is a simple in-memory PacketEnv for VM unit tests.
type memEnv struct {
	fields  map[Field]int64
	payload []byte
	stores  int
}

func newMemEnv(payload []byte) *memEnv {
	return &memEnv{
		fields: map[Field]int64{
			FieldVersion: 4, FieldTTL: 64, FieldProto: 17,
			FieldSrcPort: 1000, FieldDstPort: 53, FieldTOS: 0,
			FieldLen: int64(len(payload)) + 28,
		},
		payload: payload,
	}
}

func (m *memEnv) LoadField(f Field) (int64, bool) {
	v, ok := m.fields[f]
	return v, ok
}

func (m *memEnv) StoreField(f Field, v int64) bool {
	if f != FieldTTL && f != FieldTOS {
		return false
	}
	m.fields[f] = v
	m.stores++
	return true
}

func (m *memEnv) PayloadLen() int { return len(m.payload) }

func (m *memEnv) LoadByte(i int) (byte, bool) {
	if i < 0 || i >= len(m.payload) {
		return 0, false
	}
	return m.payload[i], true
}

func (m *memEnv) StoreByte(i int, b byte) bool {
	if i < 0 || i >= len(m.payload) {
		return false
	}
	m.payload[i] = b
	return true
}

func run(t *testing.T, src string, env PacketEnv) (Result, error) {
	t.Helper()
	code, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Exec(code, env, 10000)
}

func TestVMForwardDrop(t *testing.T) {
	r, err := run(t, "forward", newMemEnv(nil))
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("forward: %+v %v", r, err)
	}
	r, err = run(t, "drop", newMemEnv(nil))
	if err != nil || r.Verdict != VerdictDrop {
		t.Fatalf("drop: %+v %v", r, err)
	}
}

func TestVMArithmetic(t *testing.T) {
	// (3+4)*5-2 = 33; 33 % 10 = 3; 3/3 = 1 -> nonzero -> forward
	src := `
		push 3
		push 4
		add
		push 5
		mul
		push 2
		sub    ; 33
		push 10
		mod    ; 3
		push 3
		div    ; 1
		jnz ok
		drop
		ok: forward
	`
	r, err := run(t, src, newMemEnv(nil))
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("%+v %v", r, err)
	}
}

func TestVMComparisonsAndNot(t *testing.T) {
	cases := []struct {
		src  string
		want Verdict
	}{
		{"push 1\npush 2\nlt\njnz f\ndrop\nf: forward", VerdictForward},
		{"push 2\npush 1\nlt\njnz f\ndrop\nf: forward", VerdictDrop},
		{"push 2\npush 1\ngt\njnz f\ndrop\nf: forward", VerdictForward},
		{"push 5\npush 5\neq\njnz f\ndrop\nf: forward", VerdictForward},
		{"push 0\nnot\njnz f\ndrop\nf: forward", VerdictForward},
		{"push 7\nnot\njnz f\ndrop\nf: forward", VerdictDrop},
	}
	for i, tc := range cases {
		r, err := run(t, tc.src, newMemEnv(nil))
		if err != nil || r.Verdict != tc.want {
			t.Fatalf("case %d: %+v %v", i, r, err)
		}
	}
}

func TestVMTTLFilter(t *testing.T) {
	src := `
		loadf ttl
		push 5
		lt
		jnz kill
		forward
		kill: drop
	`
	env := newMemEnv(nil)
	r, err := run(t, src, env)
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("%+v %v", r, err)
	}
	env.fields[FieldTTL] = 3
	r, err = run(t, src, env)
	if err != nil || r.Verdict != VerdictDrop {
		t.Fatalf("low ttl: %+v %v", r, err)
	}
}

func TestVMFieldStore(t *testing.T) {
	src := `
		push 46
		storef tos
		forward
	`
	env := newMemEnv(nil)
	if _, err := run(t, src, env); err != nil {
		t.Fatal(err)
	}
	if env.fields[FieldTOS] != 46 || env.stores != 1 {
		t.Fatalf("tos = %d stores = %d", env.fields[FieldTOS], env.stores)
	}
	// Read-only fields refuse stores.
	if _, err := run(t, "push 1\nstoref proto\nforward", env); !errors.Is(err, ErrBounds) {
		t.Fatalf("want ErrBounds, got %v", err)
	}
}

func TestVMPayloadAccess(t *testing.T) {
	src := `
		push 0
		loadb      ; payload[0]
		push 65
		eq
		jnz patch
		drop
		patch:
		push 90    ; 'Z'
		push 1
		storeb     ; payload[1] = 'Z'
		forward
	`
	env := newMemEnv([]byte("AB"))
	r, err := run(t, src, env)
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("%+v %v", r, err)
	}
	if string(env.payload) != "AZ" {
		t.Fatalf("payload = %q", env.payload)
	}
}

func TestVMLenOpcode(t *testing.T) {
	src := `
		len
		push 3
		eq
		jnz f
		drop
		f: forward
	`
	r, err := run(t, src, newMemEnv([]byte("abc")))
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("%+v %v", r, err)
	}
}

func TestVMGasExhaustion(t *testing.T) {
	code := MustAssemble("spin: jmp spin")
	_, err := Exec(code, newMemEnv(nil), 100)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("want ErrOutOfGas, got %v", err)
	}
}

func TestVMFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"underflow", "pop\nforward", ErrStack},
		{"div zero", "push 1\npush 0\ndiv\nforward", ErrDivZero},
		{"mod zero", "push 1\npush 0\nmod\nforward", ErrDivZero},
		{"oob load", "push 99\nloadb\nforward", ErrBounds},
		{"oob store", "push 1\npush 99\nstoreb\nforward", ErrBounds},
		{"no verdict halt", "halt", ErrNoVerdict},
		{"no verdict end", "push 1\npop", ErrNoVerdict},
		{"bad jump", "jmp 99", ErrBounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := run(t, tc.src, newMemEnv([]byte("ab")))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestVMStackOverflow(t *testing.T) {
	var b strings.Builder
	for i := 0; i < maxStack+1; i++ {
		b.WriteString("push 1\n")
	}
	b.WriteString("forward")
	_, err := run(t, b.String(), newMemEnv(nil))
	if !errors.Is(err, ErrStack) {
		t.Fatalf("want ErrStack, got %v", err)
	}
}

func TestVMBadBytecode(t *testing.T) {
	_, err := Exec(Code{999}, newMemEnv(nil), 10)
	if !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want ErrBadOpcode, got %v", err)
	}
	_, err = Exec(Code{int64(OpPush)}, newMemEnv(nil), 10) // truncated operand
	if !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want ErrBadOpcode for truncation, got %v", err)
	}
}

func TestVMDupSwap(t *testing.T) {
	src := `
		push 1
		push 2
		swap    ; 2 1
		sub     ; 2-1 = 1
		dup
		add     ; 2
		push 2
		eq
		jnz f
		drop
		f: forward
	`
	r, err := run(t, src, newMemEnv(nil))
	if err != nil || r.Verdict != VerdictForward {
		t.Fatalf("%+v %v", r, err)
	}
}

// ---- assembler --------------------------------------------------------------

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"push",
		"push x",
		"forward 1",
		"loadf nosuchfield",
		"jmp nowhere",
		"dup: dup\ndup: drop", // duplicate label
		"a b: drop",           // label with space
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	code, err := Assemble("; nothing\n\n  forward  ; done\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 1 || Op(code[0]) != OpForward {
		t.Fatalf("code = %v", code)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		loadf ttl
		push 5
		lt
		jnz 7
		forward
		drop
	`
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(code)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "loadf ttl") || !strings.Contains(text, "jnz 7") {
		t.Fatalf("disassembly:\n%s", text)
	}
	if _, err := Disassemble(Code{999}); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want ErrBadOpcode, got %v", err)
	}
}

// Property: execution is deterministic — same code, same env contents,
// same result, and gas use is bounded by the budget.
func TestQuickVMDeterministicAndGasBounded(t *testing.T) {
	progs := []string{
		"loadf ttl\npush 10\nlt\njnz k\nforward\nk: drop",
		"len\njz e\npush 0\nloadb\npush 128\ngt\njnz k\ne: forward\nk: drop",
		"loadf dstport\npush 53\neq\njnz k\nforward\nk: drop",
	}
	check := func(which uint8, ttl uint8, payload []byte) bool {
		src := progs[int(which)%len(progs)]
		code, err := Assemble(src)
		if err != nil {
			return false
		}
		mk := func() *memEnv {
			env := newMemEnv(append([]byte(nil), payload...))
			env.fields[FieldTTL] = int64(ttl)
			return env
		}
		r1, err1 := Exec(code, mk(), 500)
		r2, err2 := Exec(code, mk(), 500)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 == nil && (r1.Verdict != r2.Verdict || r1.GasUsed != r2.GasUsed) {
			return false
		}
		return r1.GasUsed <= 500
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
