//go:build !linux

package osabs

import (
	"errors"
	"net"
)

// ErrReusePortUnsupported gates SO_REUSEPORT socket groups to platforms
// that implement them; single-device UDP backends work everywhere.
var ErrReusePortUnsupported = errors.New("osabs: SO_REUSEPORT groups unsupported on this platform")

func reusePortControl(*net.ListenConfig) error { return ErrReusePortUnsupported }
