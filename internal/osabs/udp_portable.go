// udp_portable.go is the per-datagram UDP backend: pure net package, so
// it builds on every platform. It implements the same udpSocket contract
// as the batched Linux backend — recvInto fills the same slab layout one
// ReadFromUDP at a time — which is what lets the backend-equivalence
// tests run the two against each other. Non-blocking polling is
// approximated with short read deadlines: the first read of a poll may
// wait portablePollWait, drains after it wait at most portableDrainWait.
package osabs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// portableDrainWait bounds the per-datagram wait while draining a batch
// after the first datagram of a poll has arrived.
const portableDrainWait = 5 * time.Microsecond

type portableSocket struct {
	conn  *net.UDPConn
	peer  *net.UDPAddr
	local string
}

func newPortableSocket(cfg UDPConfig) (*portableSocket, error) {
	var lc net.ListenConfig
	if cfg.ReusePort {
		if err := reusePortControl(&lc); err != nil {
			return nil, fmt.Errorf("osabs: udp %q: %w", cfg.Listen, err)
		}
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("osabs: udp listen %q: %w", cfg.Listen, err)
	}
	conn := pc.(*net.UDPConn)
	// Match the batched backend's buffer sizing (best-effort): a
	// dataplane socket absorbing bursts wants more than the stock
	// couple-hundred-KB default, whichever syscall strategy serves it.
	_ = conn.SetReadBuffer(1 << 21)
	_ = conn.SetWriteBuffer(1 << 21)
	s := &portableSocket{conn: conn, local: conn.LocalAddr().String()}
	if cfg.Peer != "" {
		ua, err := net.ResolveUDPAddr("udp", cfg.Peer)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("osabs: udp peer %q: %w", cfg.Peer, err)
		}
		s.peer = ua
	}
	return s, nil
}

func (s *portableSocket) recvInto(slab []byte, fs int, lens []int) (int, int, uint64, error) {
	n := 0
	// The first read of a poll may park briefly; once a datagram has
	// arrived, drain whatever else is queued with a near-immediate
	// deadline so batch fill reflects actual queue depth, not waiting.
	_ = s.conn.SetReadDeadline(time.Now().Add(portablePollWait))
	for n < len(lens) {
		m, _, err := s.conn.ReadFromUDP(slab[n*fs : (n+1)*fs])
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return n, n + 1, 0, nil
			}
			return n, n + 1, 0, err
		}
		lens[n] = m
		n++
		if n == 1 {
			_ = s.conn.SetReadDeadline(time.Now().Add(portableDrainWait))
		}
	}
	return n, n, 0, nil
}

func (s *portableSocket) sendBatch(frames [][]byte) (int, int, error) {
	if s.peer == nil {
		return 0, 0, fmt.Errorf("osabs: udp %s: send without a peer", s.local)
	}
	sent := 0
	for _, f := range frames {
		if _, err := s.conn.WriteToUDP(f, s.peer); err != nil {
			return sent, sent + 1, err
		}
		sent++
	}
	return sent, sent, nil
}

func (s *portableSocket) localAddr() string { return s.local }

func (s *portableSocket) close() error { return s.conn.Close() }
