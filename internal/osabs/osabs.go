// Package osabs is the stratum-1 hardware abstraction of Figure 1: the
// minimal OS-like services a participating node must offer — access to
// network hardware (simulated NICs), efficient kernel/user-space packet
// channels, and a clock. The paper notes that the nature of these services
// largely determines the QoS capabilities of the strata above; the
// simulated devices therefore expose explicit capacity limits and drop
// counters so the higher strata see realistic back-pressure.
package osabs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netkit/core"
	"netkit/internal/buffers"
)

// Sentinel errors.
var (
	// ErrClosed indicates use of a closed device or channel.
	ErrClosed = errors.New("osabs: closed")
	// ErrEmpty indicates a non-blocking receive found nothing.
	ErrEmpty = errors.New("osabs: empty")
	// ErrOverflow indicates a full ring; the frame was dropped.
	ErrOverflow = errors.New("osabs: ring overflow")
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// NIC is a simulated network interface: an RX ring frames arrive on and a
// TX ring the router drains to "the wire". Injection (the traffic source)
// and transmission observe ring capacities, so overload manifests as drops
// exactly where a real device would drop.
type NIC struct {
	name string
	rx   chan []byte
	tx   chan []byte

	closed atomic.Bool

	rxFrames atomic.Uint64
	txFrames atomic.Uint64
	rxDrops  atomic.Uint64
	txDrops  atomic.Uint64
	rxBytes  atomic.Uint64
	txBytes  atomic.Uint64

	// opMu fences Inject against Close: injectors hold the read side for
	// the duration of one send on rx, Close takes the write side before
	// closing the channel, so a concurrent Inject can never panic on a
	// closed channel (the same discipline netsim uses for Stop-vs-Send).
	opMu      sync.RWMutex
	closeOnce sync.Once
}

// NewNIC creates a device with the given ring depths.
func NewNIC(name string, rxDepth, txDepth int) (*NIC, error) {
	if name == "" {
		return nil, fmt.Errorf("osabs: empty NIC name")
	}
	if rxDepth <= 0 || txDepth <= 0 {
		return nil, fmt.Errorf("osabs: NIC %q ring depths %d/%d", name, rxDepth, txDepth)
	}
	return &NIC{
		name: name,
		rx:   make(chan []byte, rxDepth),
		tx:   make(chan []byte, txDepth),
	}, nil
}

// Name returns the device name.
func (n *NIC) Name() string { return n.name }

// Inject delivers a frame to the RX ring (the simulated wire side). A full
// ring drops the frame and returns ErrOverflow.
func (n *NIC) Inject(frame []byte) error {
	n.opMu.RLock()
	defer n.opMu.RUnlock()
	if n.closed.Load() {
		return fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
	}
	select {
	case n.rx <- frame:
		n.rxFrames.Add(1)
		n.rxBytes.Add(uint64(len(frame)))
		return nil
	default:
		n.rxDrops.Add(1)
		return fmt.Errorf("osabs: nic %q rx: %w", n.name, ErrOverflow)
	}
}

// Recv takes the next received frame without blocking; ErrEmpty when
// idle. After Close, frames already queued still drain in order; once the
// ring is dry it reports ErrClosed (never a nil frame with a nil error).
func (n *NIC) Recv() ([]byte, error) {
	select {
	case f, ok := <-n.rx:
		if !ok {
			return nil, fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
		}
		return f, nil
	default:
		if n.closed.Load() {
			return nil, fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
		}
		return nil, ErrEmpty
	}
}

// RecvBlock blocks for the next frame or channel close.
func (n *NIC) RecvBlock() ([]byte, error) {
	f, ok := <-n.rx
	if !ok {
		return nil, fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
	}
	return f, nil
}

// RecvChan exposes the RX ring for select-based pumps (closed when the NIC
// closes). Consumers must treat it as receive-only.
func (n *NIC) RecvChan() <-chan []byte { return n.rx }

// Send queues a frame for transmission; a full TX ring drops it.
func (n *NIC) Send(frame []byte) error {
	if n.closed.Load() {
		return fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
	}
	select {
	case n.tx <- frame:
		n.txFrames.Add(1)
		n.txBytes.Add(uint64(len(frame)))
		return nil
	default:
		n.txDrops.Add(1)
		return fmt.Errorf("osabs: nic %q tx: %w", n.name, ErrOverflow)
	}
}

// DrainTx removes one transmitted frame (the simulated wire side);
// ErrEmpty when none.
func (n *NIC) DrainTx() ([]byte, error) {
	select {
	case f := <-n.tx:
		return f, nil
	default:
		return nil, ErrEmpty
	}
}

// Close shuts the device. Frames already queued on the RX ring remain
// drainable; subsequent injects and post-drain receives report ErrClosed.
func (n *NIC) Close() error {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		n.opMu.Lock()
		close(n.rx)
		n.opMu.Unlock()
	})
	return nil
}

// RecvBatchInto implements Device over the RX ring: a non-blocking drain
// of up to max frames. The slab result is always nil — channel frames are
// independently owned. After Close an empty drain reports ErrClosed.
func (n *NIC) RecvBatchInto(dst [][]byte, max int) ([][]byte, *buffers.Buffer, error) {
	appended := 0
	for appended < max {
		select {
		case f, ok := <-n.rx:
			if !ok {
				if appended == 0 {
					return dst, nil, fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
				}
				return dst, nil, nil
			}
			dst = append(dst, f)
			appended++
		default:
			return dst, nil, nil
		}
	}
	return dst, nil, nil
}

// SendBatch implements Device over the TX ring: frames queue in order,
// each observing Send's overflow semantics, with the accepted count
// returned (the remainder were dropped and counted).
func (n *NIC) SendBatch(frames [][]byte) (int, error) {
	if n.closed.Load() {
		return 0, fmt.Errorf("osabs: nic %q: %w", n.name, ErrClosed)
	}
	sent := 0
	for _, f := range frames {
		if n.Send(f) == nil {
			sent++
		}
	}
	return sent, nil
}

// StatList implements Device with the counter snapshot in uniform form.
func (n *NIC) StatList() []core.Stat { return n.Stats().List() }

// NICStats is a counter snapshot.
type NICStats struct {
	RxFrames, TxFrames uint64
	RxDrops, TxDrops   uint64
	RxBytes, TxBytes   uint64
}

// List converts the snapshot into the uniform core.Stat representation,
// so stratum-1 device counters flow into the same stats tree as the
// component counters above them.
func (st NICStats) List() []core.Stat {
	return []core.Stat{
		core.C("nic_rx_frames", "frames", st.RxFrames),
		core.C("nic_tx_frames", "frames", st.TxFrames),
		core.C("nic_rx_drops", "frames", st.RxDrops),
		core.C("nic_tx_drops", "frames", st.TxDrops),
		core.C("nic_rx_bytes", "bytes", st.RxBytes),
		core.C("nic_tx_bytes", "bytes", st.TxBytes),
	}
}

// Stats returns the device counters.
func (n *NIC) Stats() NICStats {
	return NICStats{
		RxFrames: n.rxFrames.Load(), TxFrames: n.txFrames.Load(),
		RxDrops: n.rxDrops.Load(), TxDrops: n.txDrops.Load(),
		RxBytes: n.rxBytes.Load(), TxBytes: n.txBytes.Load(),
	}
}

// MultiQueueNIC models a multi-queue device with receive-side scaling:
// N independent RX/TX queue pairs under one device name, each queue an
// ordinary NIC so the strata above wrap queues exactly like single-queue
// devices (one NICSource per queue feeds one pipeline replica). The wire
// side steers frames with InjectRSS, which — like hardware RSS — applies a
// caller-supplied flow hash so one flow always lands on one queue and
// keeps its arrival order there.
type MultiQueueNIC struct {
	name   string
	queues []*NIC
}

// NewMultiQueueNIC creates a device with the given queue count and
// per-queue ring depths. Queues are named "<name>:q<i>".
func NewMultiQueueNIC(name string, queues, rxDepth, txDepth int) (*MultiQueueNIC, error) {
	if queues < 1 {
		return nil, fmt.Errorf("osabs: NIC %q needs >=1 queue, got %d", name, queues)
	}
	m := &MultiQueueNIC{name: name, queues: make([]*NIC, queues)}
	for i := range m.queues {
		q, err := NewNIC(fmt.Sprintf("%s:q%d", name, i), rxDepth, txDepth)
		if err != nil {
			return nil, err
		}
		m.queues[i] = q
	}
	return m, nil
}

// Name returns the device name.
func (m *MultiQueueNIC) Name() string { return m.name }

// Queues returns the queue count.
func (m *MultiQueueNIC) Queues() int { return len(m.queues) }

// Queue returns queue i as an ordinary NIC.
func (m *MultiQueueNIC) Queue(i int) *NIC { return m.queues[i] }

// InjectRSS delivers a frame to the queue selected by hash%queues — the
// simulated wire side of receive-side scaling. Overflow semantics are the
// selected queue's (a full ring drops and returns ErrOverflow).
func (m *MultiQueueNIC) InjectRSS(frame []byte, hash uint32) error {
	return m.queues[int(hash%uint32(len(m.queues)))].Inject(frame)
}

// Close shuts every queue.
func (m *MultiQueueNIC) Close() error {
	for _, q := range m.queues {
		_ = q.Close()
	}
	return nil
}

// Stats aggregates the per-queue counters.
func (m *MultiQueueNIC) Stats() NICStats {
	var agg NICStats
	for _, q := range m.queues {
		st := q.Stats()
		agg.RxFrames += st.RxFrames
		agg.TxFrames += st.TxFrames
		agg.RxDrops += st.RxDrops
		agg.TxDrops += st.TxDrops
		agg.RxBytes += st.RxBytes
		agg.TxBytes += st.TxBytes
	}
	return agg
}

// KernelChannel models the "efficient kernel-user space communication
// mechanisms" the Router CF's standard components wrap (§5): a bounded
// SPSC-style frame queue with batch dequeue to amortise crossing costs.
type KernelChannel struct {
	q      chan []byte
	closed atomic.Bool
	once   sync.Once
	drops  atomic.Uint64
	passed atomic.Uint64

	// opMu fences Put/PutBatch against Close (see NIC.opMu).
	opMu sync.RWMutex
}

// NewKernelChannel creates a channel with the given depth.
func NewKernelChannel(depth int) (*KernelChannel, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("osabs: kernel channel depth %d", depth)
	}
	return &KernelChannel{q: make(chan []byte, depth)}, nil
}

// Put enqueues a frame; a full queue drops it (counted) — the kernel never
// blocks on user space.
func (k *KernelChannel) Put(frame []byte) error {
	k.opMu.RLock()
	defer k.opMu.RUnlock()
	if k.closed.Load() {
		return ErrClosed
	}
	select {
	case k.q <- frame:
		k.passed.Add(1)
		return nil
	default:
		k.drops.Add(1)
		return ErrOverflow
	}
}

// PutBatch enqueues frames in order, stopping at the first overflow-free
// prefix the queue can hold; the remainder is dropped, exactly as
// len(frames) Puts would drop it. Counters are settled once per batch
// (one atomic op per outcome class, not one per frame) — the symmetric
// amortisation to GetBatchInto. It returns the accepted count.
func (k *KernelChannel) PutBatch(frames [][]byte) (int, error) {
	k.opMu.RLock()
	defer k.opMu.RUnlock()
	if k.closed.Load() {
		return 0, ErrClosed
	}
	accepted := 0
	for _, f := range frames {
		select {
		case k.q <- f:
			accepted++
		default:
		}
	}
	if accepted > 0 {
		k.passed.Add(uint64(accepted))
	}
	if d := len(frames) - accepted; d > 0 {
		k.drops.Add(uint64(d))
	}
	if accepted < len(frames) {
		return accepted, ErrOverflow
	}
	return accepted, nil
}

// GetBatch dequeues up to max frames without blocking.
func (k *KernelChannel) GetBatch(max int) [][]byte {
	return k.GetBatchInto(nil, max)
}

// GetBatchInto dequeues up to max frames without blocking, appending them
// to dst and returning the extended slice. Passing a recycled slice (e.g.
// from a buffers.BatchPool) makes the crossing allocation-free in the
// steady state — the [:0]-reset pattern callers use with pooled batches.
func (k *KernelChannel) GetBatchInto(dst [][]byte, max int) [][]byte {
	for n := 0; n < max; n++ {
		select {
		case f, ok := <-k.q:
			if !ok {
				return dst
			}
			dst = append(dst, f)
		default:
			return dst
		}
	}
	return dst
}

// Close shuts the channel.
func (k *KernelChannel) Close() {
	k.once.Do(func() {
		k.closed.Store(true)
		k.opMu.Lock()
		close(k.q)
		k.opMu.Unlock()
	})
}

// Stats reports (passed, dropped) frames.
func (k *KernelChannel) Stats() (passed, dropped uint64) {
	return k.passed.Load(), k.drops.Load()
}

// StatList reports the channel counters in the uniform core.Stat
// representation (see NICStats.List).
func (k *KernelChannel) StatList() []core.Stat {
	return []core.Stat{
		core.C("kchan_passed", "frames", k.passed.Load()),
		core.C("kchan_drops", "frames", k.drops.Load()),
		core.G("kchan_len", "frames", float64(len(k.q))),
	}
}

// Len reports queued frames.
func (k *KernelChannel) Len() int { return len(k.q) }
