// device.go defines the stratum-1 packet-device contract shared by every
// I/O backend: the channel-backed simulated NIC, the netsim-fronted
// kernel channel, and the real UDP datapath (udp.go). The strata above
// (router.NICSource / router.NICSink) program against this interface
// only, so swapping a simulation for real sockets is a constructor-level
// decision, not a pipeline rewrite — the substitution discipline of
// DESIGN.md §2.4 applied to the bottom of the stack.
package osabs

import (
	"fmt"

	"netkit/core"
	"netkit/internal/buffers"
)

// Device is a batched packet device. All methods are safe for one
// receiver goroutine plus one transmitter goroutine (the NICSource /
// NICSink split); Close may race either.
//
// RecvBatchInto appends up to max received frames to dst and returns the
// extended slice without blocking; an empty poll returns dst unchanged
// with a nil error. The second result is the arena slab backing the
// appended frames: when non-nil, every appended frame aliases the slab
// and the slab's reference count equals the number of appended frames —
// the consumer must release exactly one reference per frame (a
// router.Packet carries the slab as Packet.Buf, so the ordinary
// Packet.Release path settles it). A nil slab means the frames are
// independently owned (heap or ring memory) and need no release.
// After Close, RecvBatchInto drains any frames still queued and then
// reports ErrClosed.
//
// SendBatch queues frames for transmission in order and returns how many
// the device accepted; the remainder were dropped (counted in the device
// stats) the way a full TX ring drops — the caller does not retry.
// Devices copy or finish with the frame bytes before returning, except
// the channel-backed NIC whose simulated TX ring retains the slices
// until drained (its DrainTx consumers own the recycling discipline).
type Device interface {
	// Name returns the device name (the stats-tree and InPort label).
	Name() string
	// RecvBatchInto appends up to max frames to dst; see the contract
	// above.
	RecvBatchInto(dst [][]byte, max int) ([][]byte, *buffers.Buffer, error)
	// SendBatch queues frames in order, returning the accepted count.
	SendBatch(frames [][]byte) (int, error)
	// StatList reports device counters in the uniform core.Stat form.
	StatList() []core.Stat
	// Close shuts the device down; concurrent senders and receivers
	// observe ErrClosed.
	Close() error
}

// FrameArena hands out flat byte slabs for zero-copy RX batches: one
// pooled allocation per batch, carved by the device into per-frame
// slices. Slabs are reference-counted buffers.Buffer values, so released
// frames ride the existing buffer refcount path — when the last packet
// of a batch releases, the whole slab returns to the arena in one step.
type FrameArena struct {
	pool      *buffers.Pool
	frameSize int
	batch     int
}

// NewFrameArena creates an arena cutting batch frames of frameSize bytes
// out of each slab. depth bounds the free-slab list (recycled slabs
// beyond it fall to the GC).
func NewFrameArena(frameSize, batch, depth int) (*FrameArena, error) {
	if frameSize <= 0 || batch <= 0 {
		return nil, fmt.Errorf("osabs: arena frame %d x batch %d", frameSize, batch)
	}
	pool, err := buffers.NewPool([]int{frameSize * batch}, depth, 0)
	if err != nil {
		return nil, err
	}
	return &FrameArena{pool: pool, frameSize: frameSize, batch: batch}, nil
}

// Slab draws one slab (frameSize*batch bytes, refcount 1) from the pool.
// The device that fills it with n frames settles the count to n with
// RetainN(n-1) — or releases it straight back when the poll was empty.
func (a *FrameArena) Slab() (*buffers.Buffer, error) {
	return a.pool.Get(a.frameSize * a.batch)
}

// FrameSize returns the per-frame byte budget.
func (a *FrameArena) FrameSize() int { return a.frameSize }

// Batch returns the frames carved per slab.
func (a *FrameArena) Batch() int { return a.batch }

// Stats exposes the slab pool counters (diagnostic).
func (a *FrameArena) Stats() buffers.Stats { return a.pool.Stats() }

var _ Device = (*NIC)(nil)

// MmsgSupported reports whether the batched recvmmsg/sendmmsg syscall
// backend is compiled into this binary (Linux on the architectures the
// syscall tables cover). Portable backends work everywhere regardless.
func MmsgSupported() bool { return mmsgSupported }
