package osabs

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// udpPair opens a transmit device aimed at a fresh receive device over
// loopback, with each side's backend forced portable or left to the
// platform default.
func udpPair(t *testing.T, txPortable, rxPortable bool, batch int) (tx, rx *UDPDevice) {
	t.Helper()
	rx, err := NewUDPDevice(UDPConfig{
		Name: "rx", Listen: "127.0.0.1:0", Batch: batch, ForcePortable: rxPortable,
	})
	if err != nil {
		t.Fatalf("rx device: %v", err)
	}
	t.Cleanup(func() { _ = rx.Close() })
	tx, err = NewUDPDevice(UDPConfig{
		Name: "tx", Listen: "127.0.0.1:0", Peer: rx.LocalAddr(),
		Batch: batch, ForcePortable: txPortable,
	})
	if err != nil {
		t.Fatalf("tx device: %v", err)
	}
	t.Cleanup(func() { _ = tx.Close() })
	return tx, rx
}

// recvAll polls rx until want frames arrive (or the deadline lapses),
// releasing every arena reference before returning the payload copies.
func recvAll(t *testing.T, rx *UDPDevice, want int, deadline time.Duration) [][]byte {
	t.Helper()
	var got [][]byte
	stop := time.Now().Add(deadline)
	for len(got) < want && time.Now().Before(stop) {
		frames, slab, err := rx.RecvBatchInto(nil, rx.Batch())
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		for _, f := range frames {
			got = append(got, append([]byte(nil), f...))
			if slab != nil {
				if err := slab.Release(); err != nil {
					t.Fatalf("slab release: %v", err)
				}
			}
		}
	}
	return got
}

func TestUDPDeviceRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name                   string
		txPortable, rxPortable bool
	}{
		{"default-backends", false, false},
		{"portable-backends", true, true},
		{"mmsg-to-portable", false, true},
		{"portable-to-mmsg", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tx, rx := udpPair(t, tc.txPortable, tc.rxPortable, 32)
			const frames = 96
			batch := make([][]byte, 0, 32)
			sent := 0
			for sent < frames {
				batch = batch[:0]
				for i := 0; i < 32 && sent+i < frames; i++ {
					batch = append(batch, []byte(fmt.Sprintf("frame-%03d", sent+i)))
				}
				n, err := tx.SendBatch(batch)
				if err != nil {
					t.Fatalf("send: %v", err)
				}
				if n != len(batch) {
					t.Fatalf("sent %d of %d", n, len(batch))
				}
				sent += n
			}
			got := recvAll(t, rx, frames, 5*time.Second)
			if len(got) != frames {
				t.Fatalf("received %d of %d frames", len(got), frames)
			}
			// Loopback UDP from one connected socket preserves order.
			for i, f := range got {
				if want := fmt.Sprintf("frame-%03d", i); string(f) != want {
					t.Fatalf("frame %d: got %q want %q", i, f, want)
				}
			}
			st := rx.Stats()
			if st.RxFrames != frames {
				t.Fatalf("rx_frames %d want %d", st.RxFrames, frames)
			}
			if st.RxSyscalls == 0 || st.RxSyscalls > st.RxFrames {
				t.Fatalf("rx_syscalls %d out of range (frames %d)", st.RxSyscalls, st.RxFrames)
			}
			tst := tx.Stats()
			if tst.TxFrames != frames {
				t.Fatalf("tx_frames %d want %d", tst.TxFrames, frames)
			}
			if !tc.txPortable && mmsgSupported && tst.TxSyscalls >= frames {
				t.Fatalf("mmsg tx spent %d syscalls for %d frames: no amortisation", tst.TxSyscalls, frames)
			}
		})
	}
}

func TestUDPSendBatchAmortizesSyscalls(t *testing.T) {
	if !mmsgSupported {
		t.Skip("batched syscall backend not compiled on this platform")
	}
	tx, rx := udpPair(t, false, false, 32)
	batch := make([][]byte, 32)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("b-%02d", i))
	}
	if _, err := tx.SendBatch(batch); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := recvAll(t, rx, 32, 5*time.Second); len(got) != 32 {
		t.Fatalf("received %d of 32", len(got))
	}
	if st := tx.Stats(); st.TxSyscalls != 1 {
		t.Fatalf("tx syscalls %d for one 32-frame batch, want 1", st.TxSyscalls)
	}
	// The receive side should also have moved multiple frames per
	// syscall once the socket queue held the burst.
	if st := rx.Stats(); st.RxSyscalls >= st.RxFrames {
		t.Fatalf("rx %d frames in %d syscalls: no batching", st.RxFrames, st.RxSyscalls)
	}
}

func TestUDPArenaSlabRecycles(t *testing.T) {
	arena, err := NewFrameArena(512, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewUDPDevice(UDPConfig{
		Listen: "127.0.0.1:0", Batch: 8, FrameSize: 512, Arena: arena,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewUDPDevice(UDPConfig{Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if _, err := tx.SendBatch([][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}); err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	stop := time.Now().Add(5 * time.Second)
	for len(frames) < 3 && time.Now().Before(stop) {
		var slab interface{ Release() error }
		fs, s, err := rx.RecvBatchInto(nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) == 0 {
			continue
		}
		slab = s
		if s == nil {
			t.Fatal("arena-backed device returned nil slab for non-empty batch")
		}
		frames = append(frames, fs...)
		// One release per carved frame; the last one must recycle.
		for range fs {
			if err := slab.Release(); err != nil {
				t.Fatalf("release: %v", err)
			}
		}
	}
	if len(frames) != 3 {
		t.Fatalf("received %d of 3", len(frames))
	}
	if live := arena.Stats().Live; live != 0 {
		t.Fatalf("arena has %d live slabs after full release", live)
	}
	// An empty poll must not leak its slab either.
	if _, slab, err := rx.RecvBatchInto(nil, 8); err != nil || slab != nil {
		t.Fatalf("empty poll: slab=%v err=%v", slab, err)
	}
	if live := arena.Stats().Live; live != 0 {
		t.Fatalf("arena has %d live slabs after empty poll", live)
	}
}

func TestUDPDeviceGroupSpreadsFlows(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("SO_REUSEPORT groups are Linux-gated")
	}
	group, err := NewUDPDeviceGroup(UDPConfig{Name: "grp", Listen: "127.0.0.1:0", Batch: 16}, 4)
	if err != nil {
		t.Fatalf("group: %v", err)
	}
	defer func() {
		for _, d := range group {
			_ = d.Close()
		}
	}()
	if got := group[1].Name(); got != "grp:q1" {
		t.Fatalf("queue name %q", got)
	}
	target := group[0].LocalAddr()
	// Many distinct source sockets = many kernel-hashed "flows".
	const senders, perSender = 16, 8
	for s := 0; s < senders; s++ {
		tx, err := NewUDPDevice(UDPConfig{Listen: "127.0.0.1:0", Peer: target, Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		batch := make([][]byte, perSender)
		for i := range batch {
			batch[i] = []byte(fmt.Sprintf("s%02d-%d", s, i))
		}
		if n, err := tx.SendBatch(batch); err != nil || n != perSender {
			t.Fatalf("sender %d: n=%d err=%v", s, n, err)
		}
		_ = tx.Close()
	}
	const want = senders * perSender
	got := 0
	stop := time.Now().Add(5 * time.Second)
	for got < want && time.Now().Before(stop) {
		for _, d := range group {
			frames, slab, err := d.RecvBatchInto(nil, 16)
			if err != nil {
				t.Fatal(err)
			}
			for range frames {
				got++
				_ = slab.Release()
			}
		}
	}
	if got != want {
		t.Fatalf("group received %d of %d frames", got, want)
	}
}

func TestUDPSendWithoutPeerFails(t *testing.T) {
	for _, portable := range []bool{false, true} {
		d, err := NewUDPDevice(UDPConfig{Listen: "127.0.0.1:0", ForcePortable: portable})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.SendBatch([][]byte{[]byte("x")}); err == nil {
			t.Fatalf("portable=%v: send without peer succeeded", portable)
		}
		_ = d.Close()
	}
}

func TestUDPDeviceClosedErrors(t *testing.T) {
	d, err := NewUDPDevice(UDPConfig{Listen: "127.0.0.1:0", Peer: "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.RecvBatchInto(nil, 8); err == nil {
		t.Fatal("recv on closed device succeeded")
	}
	if _, err := d.SendBatch([][]byte{[]byte("x")}); err == nil {
		t.Fatal("send on closed device succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestUDPStatListShape(t *testing.T) {
	tx, rx := udpPair(t, false, false, 32)
	batch := make([][]byte, 32)
	for i := range batch {
		batch[i] = []byte("payload")
	}
	if _, err := tx.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, rx, 32, 5*time.Second); len(got) != 32 {
		t.Fatalf("received %d of 32", len(got))
	}
	stats := map[string]bool{}
	for _, s := range rx.StatList() {
		stats[s.Name] = true
	}
	for _, want := range []string{
		"udp_rx_frames", "udp_tx_frames", "udp_rx_syscalls", "udp_tx_syscalls",
		"udp_rx_frames_per_syscall", "udp_batch_fill", "udp_sock_drops", "udp_tx_drops",
	} {
		if !stats[want] {
			t.Fatalf("StatList lacks %s (have %v)", want, stats)
		}
	}
}
