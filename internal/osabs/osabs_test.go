package osabs

import (
	"errors"
	"testing"
)

func TestNICValidation(t *testing.T) {
	if _, err := NewNIC("", 1, 1); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := NewNIC("eth0", 0, 1); err == nil {
		t.Fatal("want error for zero rx depth")
	}
	if _, err := NewNIC("eth0", 1, 0); err == nil {
		t.Fatal("want error for zero tx depth")
	}
}

func TestNICInjectRecv(t *testing.T) {
	n, err := NewNIC("eth0", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "eth0" {
		t.Fatal("name")
	}
	if err := n.Inject([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err := n.Recv()
	if err != nil || len(f) != 3 {
		t.Fatalf("recv = %v %v", f, err)
	}
	if _, err := n.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	s := n.Stats()
	if s.RxFrames != 1 || s.RxBytes != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNICRxOverflowDrops(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n.Inject([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject([]byte{9}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if n.Stats().RxDrops != 1 {
		t.Fatalf("drops = %d", n.Stats().RxDrops)
	}
}

func TestNICSendDrain(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{3}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	f, err := n.DrainTx()
	if err != nil || f[0] != 1 {
		t.Fatalf("drain = %v %v", f, err)
	}
	if _, err := n.DrainTx(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.DrainTx(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if n.Stats().TxDrops != 1 || n.Stats().TxFrames != 2 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestNICClose(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // idempotent
	if err := n.Inject([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := n.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := n.RecvBlock(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestNICRecvBlock(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		f, err := n.RecvBlock()
		if err != nil {
			done <- nil
			return
		}
		done <- f
	}()
	if err := n.Inject([]byte{7}); err != nil {
		t.Fatal(err)
	}
	if f := <-done; f == nil || f[0] != 7 {
		t.Fatalf("blocked recv = %v", f)
	}
}

func TestKernelChannel(t *testing.T) {
	if _, err := NewKernelChannel(0); err == nil {
		t.Fatal("want error for zero depth")
	}
	k, err := NewKernelChannel(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := k.Put([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Put([]byte{9}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if k.Len() != 3 {
		t.Fatalf("len = %d", k.Len())
	}
	batch := k.GetBatch(2)
	if len(batch) != 2 || batch[0][0] != 0 || batch[1][0] != 1 {
		t.Fatalf("batch = %v", batch)
	}
	batch = k.GetBatch(10)
	if len(batch) != 1 {
		t.Fatalf("second batch = %v", batch)
	}
	if got := k.GetBatch(10); len(got) != 0 {
		t.Fatalf("empty batch = %v", got)
	}
	if got := k.GetBatch(0); got != nil {
		t.Fatalf("zero batch = %v", got)
	}
	passed, dropped := k.Stats()
	if passed != 3 || dropped != 1 {
		t.Fatalf("stats = %d/%d", passed, dropped)
	}
	k.Close()
	k.Close() // idempotent
	if err := k.Put([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestMultiQueueNICValidation(t *testing.T) {
	if _, err := NewMultiQueueNIC("mq", 0, 8, 8); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewMultiQueueNIC("mq", 2, 0, 8); err == nil {
		t.Fatal("zero ring depth accepted")
	}
}

// TestMultiQueueNICRSSSteering proves the multi-queue receive path: frames
// steered by hash land on hash%queues, same-hash frames keep arrival order
// on their queue, and Stats aggregates all queues.
func TestMultiQueueNICRSSSteering(t *testing.T) {
	m, err := NewMultiQueueNIC("mq", 3, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Queues() != 3 {
		t.Fatalf("queues = %d", m.Queues())
	}
	const perFlow = 10
	for seq := byte(0); seq < perFlow; seq++ {
		for flow := uint32(0); flow < 7; flow++ {
			if err := m.InjectRSS([]byte{byte(flow), seq}, flow); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := 0
	for q := 0; q < 3; q++ {
		seen := map[byte]byte{}
		for {
			f, err := m.Queue(q).Recv()
			if errors.Is(err, ErrEmpty) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			total++
			flow, seq := f[0], f[1]
			if int(flow)%3 != q {
				t.Fatalf("flow %d on queue %d", flow, q)
			}
			if seq != seen[flow] {
				t.Fatalf("queue %d flow %d: seq %d, want %d", q, flow, seq, seen[flow])
			}
			seen[flow]++
		}
	}
	if total != 7*perFlow {
		t.Fatalf("received %d frames, want %d", total, 7*perFlow)
	}
	if st := m.Stats(); st.RxFrames != 7*perFlow || st.RxDrops != 0 {
		t.Fatalf("aggregate stats %+v", st)
	}
}

func TestMultiQueueNICOverflowIsPerQueue(t *testing.T) {
	m, err := NewMultiQueueNIC("mq", 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.InjectRSS([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectRSS([]byte{2}, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("queue 0 overflow: %v", err)
	}
	// Queue 1 is unaffected by queue 0's full ring.
	if err := m.InjectRSS([]byte{3}, 1); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.RxFrames != 2 || st.RxDrops != 1 {
		t.Fatalf("aggregate stats %+v", st)
	}
}

// TestNICOverflowAccountingExact floods both rings past capacity and
// asserts the conservation law the stats tree depends on: every offered
// frame is either counted delivered or counted dropped, with byte
// counters tracking only the delivered ones.
func TestNICOverflowAccountingExact(t *testing.T) {
	n, err := NewNIC("eth0", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const offered = 50
	frame := []byte{1, 2, 3, 4, 5}
	var injectOK, sendOK int
	for i := 0; i < offered; i++ {
		if n.Inject(frame) == nil {
			injectOK++
		}
		if n.Send(frame) == nil {
			sendOK++
		}
	}
	st := n.Stats()
	if st.RxFrames != uint64(injectOK) || st.RxFrames+st.RxDrops != offered {
		t.Fatalf("rx conservation: frames %d drops %d offered %d (accepted %d)",
			st.RxFrames, st.RxDrops, offered, injectOK)
	}
	if st.TxFrames != uint64(sendOK) || st.TxFrames+st.TxDrops != offered {
		t.Fatalf("tx conservation: frames %d drops %d offered %d (accepted %d)",
			st.TxFrames, st.TxDrops, offered, sendOK)
	}
	if st.RxBytes != uint64(len(frame))*st.RxFrames || st.TxBytes != uint64(len(frame))*st.TxFrames {
		t.Fatalf("byte counters count dropped frames: %+v", st)
	}
	// Rings were sized 8: exactly 8 of each must have been accepted.
	if injectOK != 8 || sendOK != 8 {
		t.Fatalf("accepted %d/%d, want 8/8", injectOK, sendOK)
	}
	// Draining and re-offering accounts the second wave on top.
	for i := 0; i < 8; i++ {
		if _, err := n.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := n.DrainTx(); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject(frame); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(frame); err != nil {
		t.Fatal(err)
	}
	st = n.Stats()
	if st.RxFrames != 9 || st.TxFrames != 9 || st.RxDrops != offered-8 || st.TxDrops != offered-8 {
		t.Fatalf("post-drain accounting: %+v", st)
	}
}

// TestNICSendBatchAccounting: the Device batch path must account exactly
// like the per-frame path — accepted+dropped == offered, prefix-agnostic.
func TestNICSendBatchAccounting(t *testing.T) {
	n, err := NewNIC("eth0", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	sent, err := n.SendBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 4 {
		t.Fatalf("sent %d of 10 into a 4-deep ring", sent)
	}
	st := n.Stats()
	if st.TxFrames != 4 || st.TxDrops != 6 {
		t.Fatalf("batch accounting: %+v", st)
	}
}

// TestNICRecvAfterClose: Close must not turn Recv into a stream of
// (nil, nil); queued frames drain, then ErrClosed.
func TestNICRecvAfterClose(t *testing.T) {
	n, err := NewNIC("eth0", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Inject([]byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := n.Recv()
	if err != nil || len(f) != 1 || f[0] != 42 {
		t.Fatalf("queued frame after close: %v %v", f, err)
	}
	if _, err := n.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed NIC: want ErrClosed, got %v", err)
	}
	if err := n.Inject([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("inject after close: %v", err)
	}
}

// TestNICRecvBatchInto: the Device receive path drains non-blocking and
// reports closure only when dry.
func TestNICRecvBatchInto(t *testing.T) {
	n, err := NewNIC("eth0", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := n.Inject([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dst, slab, err := n.RecvBatchInto(nil, 3)
	if err != nil || slab != nil || len(dst) != 3 {
		t.Fatalf("first drain: %d frames slab=%v err=%v", len(dst), slab, err)
	}
	dst, _, err = n.RecvBatchInto(dst, 8)
	if err != nil || len(dst) != 5 {
		t.Fatalf("second drain: %d frames err=%v", len(dst), err)
	}
	for i, f := range dst {
		if f[0] != byte(i) {
			t.Fatalf("order: frame %d = %d", i, f[0])
		}
	}
	if dst, _, err := n.RecvBatchInto(nil, 8); err != nil || len(dst) != 0 {
		t.Fatalf("idle drain: %d frames err=%v", len(dst), err)
	}
	_ = n.Close()
	if _, _, err := n.RecvBatchInto(nil, 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed drain: %v", err)
	}
}

// TestKernelChannelPutBatch: batch symmetry with GetBatchInto — exact
// accepted prefix-free accounting, counters settled per batch.
func TestKernelChannelPutBatch(t *testing.T) {
	k, err := NewKernelChannel(4)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 7)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	accepted, err := k.PutBatch(frames)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflowing PutBatch: %v", err)
	}
	if accepted != 4 {
		t.Fatalf("accepted %d of 7 into depth 4", accepted)
	}
	passed, dropped := k.Stats()
	if passed != 4 || dropped != 3 {
		t.Fatalf("counters: passed %d dropped %d", passed, dropped)
	}
	got := k.GetBatch(16)
	if len(got) != 4 {
		t.Fatalf("drained %d", len(got))
	}
	for i, f := range got {
		if f[0] != byte(i) {
			t.Fatalf("order: %d = %d", i, f[0])
		}
	}
	if n, err := k.PutBatch(frames[:2]); n != 2 || err != nil {
		t.Fatalf("fitting PutBatch: n=%d err=%v", n, err)
	}
	k.Close()
	if _, err := k.PutBatch(frames[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed PutBatch: %v", err)
	}
}
