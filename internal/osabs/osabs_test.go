package osabs

import (
	"errors"
	"testing"
)

func TestNICValidation(t *testing.T) {
	if _, err := NewNIC("", 1, 1); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := NewNIC("eth0", 0, 1); err == nil {
		t.Fatal("want error for zero rx depth")
	}
	if _, err := NewNIC("eth0", 1, 0); err == nil {
		t.Fatal("want error for zero tx depth")
	}
}

func TestNICInjectRecv(t *testing.T) {
	n, err := NewNIC("eth0", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "eth0" {
		t.Fatal("name")
	}
	if err := n.Inject([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err := n.Recv()
	if err != nil || len(f) != 3 {
		t.Fatalf("recv = %v %v", f, err)
	}
	if _, err := n.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	s := n.Stats()
	if s.RxFrames != 1 || s.RxBytes != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNICRxOverflowDrops(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n.Inject([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject([]byte{9}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if n.Stats().RxDrops != 1 {
		t.Fatalf("drops = %d", n.Stats().RxDrops)
	}
}

func TestNICSendDrain(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte{3}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	f, err := n.DrainTx()
	if err != nil || f[0] != 1 {
		t.Fatalf("drain = %v %v", f, err)
	}
	if _, err := n.DrainTx(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.DrainTx(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if n.Stats().TxDrops != 1 || n.Stats().TxFrames != 2 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestNICClose(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // idempotent
	if err := n.Inject([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := n.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := n.RecvBlock(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestNICRecvBlock(t *testing.T) {
	n, err := NewNIC("eth0", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		f, err := n.RecvBlock()
		if err != nil {
			done <- nil
			return
		}
		done <- f
	}()
	if err := n.Inject([]byte{7}); err != nil {
		t.Fatal(err)
	}
	if f := <-done; f == nil || f[0] != 7 {
		t.Fatalf("blocked recv = %v", f)
	}
}

func TestKernelChannel(t *testing.T) {
	if _, err := NewKernelChannel(0); err == nil {
		t.Fatal("want error for zero depth")
	}
	k, err := NewKernelChannel(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := k.Put([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Put([]byte{9}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if k.Len() != 3 {
		t.Fatalf("len = %d", k.Len())
	}
	batch := k.GetBatch(2)
	if len(batch) != 2 || batch[0][0] != 0 || batch[1][0] != 1 {
		t.Fatalf("batch = %v", batch)
	}
	batch = k.GetBatch(10)
	if len(batch) != 1 {
		t.Fatalf("second batch = %v", batch)
	}
	if got := k.GetBatch(10); len(got) != 0 {
		t.Fatalf("empty batch = %v", got)
	}
	if got := k.GetBatch(0); got != nil {
		t.Fatalf("zero batch = %v", got)
	}
	passed, dropped := k.Stats()
	if passed != 3 || dropped != 1 {
		t.Fatalf("stats = %d/%d", passed, dropped)
	}
	k.Close()
	k.Close() // idempotent
	if err := k.Put([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
