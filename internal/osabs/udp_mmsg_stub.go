//go:build !linux || (!amd64 && !arm64)

package osabs

// The batched recvmmsg/sendmmsg backend is Linux-only (and wired for the
// syscall tables this repo carries numbers for); every other platform
// takes the portable per-datagram backend.
const mmsgSupported = false

func newMmsgSocket(UDPConfig) (udpSocket, error, bool) { return nil, nil, false }
