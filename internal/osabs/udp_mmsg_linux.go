//go:build linux && (amd64 || arm64)

// udp_mmsg_linux.go is the batched UDP backend: whole RX/TX batches move
// through single recvmmsg/sendmmsg syscalls on a non-blocking IPv4
// socket. Each recvmmsg scatter-gathers directly into the caller's arena
// slab (one iovec per frame region), so bytes travel kernel -> slab ->
// Packet.Data with no user-space copy; SO_RXQ_OVFL ancillary data carries
// the kernel's cumulative RX drop counter, which recvInto differentiates
// into per-poll drop deltas for the stats tree.
package osabs

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

const mmsgSupported = true

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// per-message byte count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// rxCtrlSpace is CMSG_SPACE(4) on 64-bit Linux: a 16-byte cmsghdr plus a
// uint32 payload (the SO_RXQ_OVFL counter), padded to 8 bytes.
const rxCtrlSpace = 24

// soRxqOvfl is SOL_SOCKET/SO_RXQ_OVFL.
const soRxqOvfl = 40

type mmsgSocket struct {
	fd        int
	local     string
	connected bool

	// opMu fences in-flight syscalls against close so the fd number can
	// never be recycled under a live recvmmsg/sendmmsg.
	opMu   sync.RWMutex
	closed bool

	// Receiver-goroutine-owned scratch.
	rhdrs []mmsghdr
	riovs []syscall.Iovec
	rctrl []byte
	// Transmitter-goroutine-owned scratch.
	shdrs []mmsghdr
	siovs []syscall.Iovec

	lastOvfl  uint32
	ovflSeen  bool
	dummyByte byte // iovec base for zero-length datagrams
}

// newMmsgSocket opens the batched backend. applicable=false (with a nil
// error) means the address shape needs the portable backend instead
// (hostnames, IPv6); a true applicable with a non-nil error is fatal.
func newMmsgSocket(cfg UDPConfig) (udpSocket, error, bool) {
	laddr, ok := resolveUDP4(cfg.Listen)
	if !ok {
		return nil, nil, false
	}
	var raddr *net.UDPAddr
	if cfg.Peer != "" {
		if raddr, ok = resolveUDP4(cfg.Peer); !ok {
			return nil, nil, false
		}
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return nil, fmt.Errorf("osabs: udp socket: %w", err), true
	}
	fail := func(err error) (udpSocket, error, bool) {
		_ = syscall.Close(fd)
		return nil, err, true
	}
	if cfg.ReusePort {
		if err := syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, soReusePort, 1); err != nil {
			return fail(fmt.Errorf("osabs: SO_REUSEPORT: %w", err))
		}
	}
	// Socket-drop visibility is reflective surface, not correctness;
	// tolerate kernels without SO_RXQ_OVFL.
	_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, soRxqOvfl, 1)
	// Grow the buffers best-effort: a dataplane socket absorbing bursts
	// wants more than the 200KB default.
	_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_RCVBUF, 1<<21)
	_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_SNDBUF, 1<<21)
	sa := &syscall.SockaddrInet4{Port: laddr.Port}
	copy(sa.Addr[:], laddr.IP.To4())
	if err := syscall.Bind(fd, sa); err != nil {
		return fail(fmt.Errorf("osabs: udp bind %s: %w", cfg.Listen, err))
	}
	bound, err := syscall.Getsockname(fd)
	if err != nil {
		return fail(fmt.Errorf("osabs: udp getsockname: %w", err))
	}
	b4 := bound.(*syscall.SockaddrInet4)
	s := &mmsgSocket{
		fd:    fd,
		local: fmt.Sprintf("%s:%d", net.IP(b4.Addr[:]).String(), b4.Port),
	}
	if raddr != nil {
		rsa := &syscall.SockaddrInet4{Port: raddr.Port}
		copy(rsa.Addr[:], raddr.IP.To4())
		if err := syscall.Connect(fd, rsa); err != nil {
			return fail(fmt.Errorf("osabs: udp connect %s: %w", cfg.Peer, err))
		}
		s.connected = true
	}
	return s, nil, true
}

// growRecv sizes the receive scratch vectors for n messages.
func (s *mmsgSocket) growRecv(n int) {
	if cap(s.rhdrs) < n {
		s.rhdrs = make([]mmsghdr, n)
		s.riovs = make([]syscall.Iovec, n)
		s.rctrl = make([]byte, n*rxCtrlSpace)
	}
	s.rhdrs = s.rhdrs[:n]
	s.riovs = s.riovs[:n]
}

func (s *mmsgSocket) recvInto(slab []byte, fs int, lens []int) (int, int, uint64, error) {
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	if s.closed {
		return 0, 0, 0, ErrClosed
	}
	n := len(lens)
	s.growRecv(n)
	for i := 0; i < n; i++ {
		s.riovs[i].Base = &slab[i*fs]
		s.riovs[i].SetLen(fs)
		h := &s.rhdrs[i].hdr
		h.Name = nil
		h.Namelen = 0
		h.Iov = &s.riovs[i]
		h.Iovlen = 1
		h.Control = &s.rctrl[i*rxCtrlSpace]
		h.SetControllen(rxCtrlSpace)
		h.Flags = 0
		s.rhdrs[i].n = 0
	}
	r, _, errno := syscall.Syscall6(sysRecvmmsg,
		uintptr(s.fd), uintptr(unsafe.Pointer(&s.rhdrs[0])), uintptr(n),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	runtime.KeepAlive(slab)
	if errno != 0 {
		if errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK || errno == syscall.EINTR {
			return 0, 1, 0, nil
		}
		if errno == syscall.EBADF {
			return 0, 1, 0, ErrClosed
		}
		return 0, 1, 0, errno
	}
	got := int(r)
	var kdrops uint64
	for i := 0; i < got; i++ {
		lens[i] = int(s.rhdrs[i].n)
		if d, ok := s.parseOvfl(i); ok {
			// The counter is cumulative per socket; successive messages
			// carry non-decreasing values, so the last one wins and the
			// delta against the previous poll is this poll's drop count.
			if s.ovflSeen {
				kdrops = uint64(d - s.lastOvfl) // wraps correctly in uint32
			}
			s.lastOvfl, s.ovflSeen = d, true
		}
	}
	return got, 1, kdrops, nil
}

// parseOvfl extracts the SO_RXQ_OVFL uint32 from message i's ancillary
// data, if the kernel attached one.
func (s *mmsgSocket) parseOvfl(i int) (uint32, bool) {
	cl := int(s.rhdrs[i].hdr.Controllen)
	if cl < syscall.SizeofCmsghdr+4 {
		return 0, false
	}
	ctrl := s.rctrl[i*rxCtrlSpace : i*rxCtrlSpace+cl]
	cm := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
	if cm.Level != syscall.SOL_SOCKET || cm.Type != soRxqOvfl {
		return 0, false
	}
	return *(*uint32)(unsafe.Pointer(&ctrl[syscall.SizeofCmsghdr])), true
}

func (s *mmsgSocket) sendBatch(frames [][]byte) (int, int, error) {
	s.opMu.RLock()
	defer s.opMu.RUnlock()
	if s.closed {
		return 0, 0, ErrClosed
	}
	if !s.connected {
		return 0, 0, fmt.Errorf("osabs: udp %s: send without a peer", s.local)
	}
	n := len(frames)
	if cap(s.shdrs) < n {
		s.shdrs = make([]mmsghdr, n)
		s.siovs = make([]syscall.Iovec, n)
	}
	s.shdrs = s.shdrs[:n]
	s.siovs = s.siovs[:n]
	for i, f := range frames {
		if len(f) > 0 {
			s.siovs[i].Base = &f[0]
		} else {
			s.siovs[i].Base = &s.dummyByte
		}
		s.siovs[i].SetLen(len(f))
		h := &s.shdrs[i].hdr
		h.Name = nil
		h.Namelen = 0
		h.Iov = &s.siovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.SetControllen(0)
		h.Flags = 0
	}
	sent, syscalls := 0, 0
	for sent < n {
		r, _, errno := syscall.Syscall6(sysSendmmsg,
			uintptr(s.fd), uintptr(unsafe.Pointer(&s.shdrs[sent])), uintptr(n-sent), 0, 0, 0)
		syscalls++
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK ||
				errno == syscall.ENOBUFS || errno == syscall.ECONNREFUSED {
				// Buffer pressure (or a not-yet-listening peer's ICMP
				// bounce on a connected socket): the remainder drops,
				// exactly as a full TX ring drops.
				break
			}
			if errno == syscall.EBADF {
				runtime.KeepAlive(frames)
				return sent, syscalls, ErrClosed
			}
			runtime.KeepAlive(frames)
			return sent, syscalls, errno
		}
		if r == 0 {
			break
		}
		sent += int(r)
	}
	runtime.KeepAlive(frames)
	return sent, syscalls, nil
}

func (s *mmsgSocket) localAddr() string { return s.local }

func (s *mmsgSocket) close() error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return syscall.Close(s.fd)
}
