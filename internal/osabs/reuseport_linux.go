//go:build linux

package osabs

import (
	"net"
	"syscall"
)

// soReusePort is SOL_SOCKET/SO_REUSEPORT, absent from the stdlib syscall
// package (the repo vendors no golang.org/x/sys).
const soReusePort = 0xf

// reusePortControl arms a ListenConfig to join an SO_REUSEPORT group.
func reusePortControl(lc *net.ListenConfig) error {
	lc.Control = func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}
	return nil
}
