//go:build linux && arm64

package osabs

// Linux syscall numbers for the batched datagram calls (generic unistd
// table, shared by arm64/riscv64): recvmmsg 243, sendmmsg 269.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
