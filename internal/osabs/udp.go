// udp.go is the first REAL packet I/O backend: a UDP datagram device
// implementing the Device contract over actual kernel sockets, so the
// strata above forward genuine traffic instead of simulated frames. On
// Linux (amd64/arm64) batches move through recvmmsg/sendmmsg — one
// syscall per batch, the amortisation lever that separates toy software
// dataplanes from production ones (Michel et al., arXiv:2110.00631) —
// with SO_RXQ_OVFL surfacing kernel-side socket drops into the stats
// tree. Everywhere else a portable per-datagram net.UDPConn fallback
// implements the same contract behind build-tag gated backend selection.
// Multi-queue devices come from SO_REUSEPORT socket groups: the kernel
// flow-hashes datagrams across the group the way hardware RSS spreads
// flows across NIC queues.
package osabs

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"netkit/core"
	"netkit/internal/buffers"
)

// UDP device defaults.
const (
	// DefaultUDPBatch is the frames-per-syscall ceiling.
	DefaultUDPBatch = 32
	// DefaultUDPFrameSize is the per-frame byte budget carved from each
	// arena slab (>= max datagram the pipeline expects).
	DefaultUDPFrameSize = 2048
	// maxUDPBatch bounds scratch vector sizes.
	maxUDPBatch = 512
	// portablePollWait bounds how long the portable backend's first read
	// of a poll may wait for a datagram; the mmsg backend never waits.
	portablePollWait = 100 * time.Microsecond
)

// UDPConfig parameterises one UDP device.
type UDPConfig struct {
	// Name labels the device in stats and Packet.InPort; default
	// "udp:<local addr>".
	Name string
	// Listen is the local address to bind ("127.0.0.1:0" picks a port).
	Listen string
	// Peer, when set, is where SendBatch transmits; a device without a
	// peer is receive-only.
	Peer string
	// Batch caps frames moved per syscall (default DefaultUDPBatch).
	Batch int
	// FrameSize is the per-frame RX byte budget (default
	// DefaultUDPFrameSize); longer datagrams are truncated by the kernel.
	FrameSize int
	// Arena overrides the device-private frame arena (e.g. to share one
	// slab pool across a queue group). Its FrameSize/Batch must be >= the
	// device's.
	Arena *FrameArena
	// ReusePort joins an SO_REUSEPORT group on Listen, letting several
	// devices share one port with kernel flow-hash steering. Linux only.
	ReusePort bool
	// ForcePortable skips the batched-syscall backend even where it is
	// available — the lever the backend-equivalence tests use.
	ForcePortable bool
}

func (c UDPConfig) withDefaults() UDPConfig {
	if c.Batch <= 0 {
		c.Batch = DefaultUDPBatch
	}
	if c.Batch > maxUDPBatch {
		c.Batch = maxUDPBatch
	}
	if c.FrameSize <= 0 {
		c.FrameSize = DefaultUDPFrameSize
	}
	return c
}

// udpSocket is the backend seam between the portable and mmsg paths.
// recvInto reads up to len(lens) datagrams into slab regions
// slab[i*fs:(i+1)*fs], recording each length in lens[i]; it returns the
// datagram count, the syscalls spent, and the kernel-reported socket
// drop delta (SO_RXQ_OVFL; 0 where unsupported). It must not block
// beyond a short bounded poll. sendBatch transmits frames in order,
// returning how many the kernel accepted and the syscalls spent.
type udpSocket interface {
	recvInto(slab []byte, fs int, lens []int) (n, syscalls int, kdrops uint64, err error)
	sendBatch(frames [][]byte) (sent, syscalls int, err error)
	localAddr() string
	close() error
}

// UDPDevice is a real-socket Device. One receiver goroutine and one
// transmitter goroutine may use it concurrently; Close may race both.
type UDPDevice struct {
	name  string
	sock  udpSocket
	arena *FrameArena
	batch int
	fs    int

	closed atomic.Bool

	rxFrames   atomic.Uint64
	txFrames   atomic.Uint64
	rxBytes    atomic.Uint64
	txBytes    atomic.Uint64
	rxSyscalls atomic.Uint64 // syscalls that returned >=1 frame
	rxEmpty    atomic.Uint64 // syscalls that returned none
	txSyscalls atomic.Uint64
	txDrops    atomic.Uint64 // frames the kernel refused (full buffers)
	sockDrops  atomic.Uint64 // kernel-side RX drops (SO_RXQ_OVFL)
	arenaFails atomic.Uint64

	lens []int // recv scratch; receiver-goroutine-owned
}

// NewUDPDevice opens a UDP device. The batched-syscall backend is chosen
// on Linux amd64/arm64 for IPv4 addresses; everything else takes the
// portable per-datagram backend.
func NewUDPDevice(cfg UDPConfig) (*UDPDevice, error) {
	cfg = cfg.withDefaults()
	if cfg.Listen == "" {
		return nil, fmt.Errorf("osabs: udp device needs a listen address")
	}
	arena := cfg.Arena
	if arena == nil {
		var err error
		// Depth 8: the steady state needs one slab in flight per pipeline
		// stage that still holds frames, and overflow falls to the GC.
		arena, err = NewFrameArena(cfg.FrameSize, cfg.Batch, 8)
		if err != nil {
			return nil, err
		}
	} else if arena.FrameSize() < cfg.FrameSize || arena.Batch() < cfg.Batch {
		return nil, fmt.Errorf("osabs: shared arena %dx%d smaller than device %dx%d",
			arena.FrameSize(), arena.Batch(), cfg.FrameSize, cfg.Batch)
	}
	sock, err := openUDPSocket(cfg)
	if err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "udp:" + sock.localAddr()
	}
	return &UDPDevice{
		name:  name,
		sock:  sock,
		arena: arena,
		batch: cfg.Batch,
		fs:    cfg.FrameSize,
		lens:  make([]int, cfg.Batch),
	}, nil
}

// openUDPSocket picks the backend: mmsg where compiled in and applicable,
// portable otherwise.
func openUDPSocket(cfg UDPConfig) (udpSocket, error) {
	if !cfg.ForcePortable && mmsgSupported {
		s, err, applicable := newMmsgSocket(cfg)
		if applicable {
			return s, err
		}
	}
	return newPortableSocket(cfg)
}

// Name implements Device.
func (d *UDPDevice) Name() string { return d.name }

// LocalAddr returns the bound address (resolved, so ":0" binds report
// their picked port).
func (d *UDPDevice) LocalAddr() string { return d.sock.localAddr() }

// Batch returns the configured frames-per-syscall ceiling.
func (d *UDPDevice) Batch() int { return d.batch }

// RecvBatchInto implements Device: one slab is drawn from the arena, one
// recvmmsg (or a bounded portable read loop) fills it, and the filled
// prefix is carved into frame slices appended to dst. The returned slab
// carries one reference per appended frame; an empty poll returns the
// slab to the arena and appends nothing.
func (d *UDPDevice) RecvBatchInto(dst [][]byte, max int) ([][]byte, *buffers.Buffer, error) {
	if d.closed.Load() {
		return dst, nil, fmt.Errorf("osabs: udp %q: %w", d.name, ErrClosed)
	}
	if max > d.batch {
		max = d.batch
	}
	if max <= 0 {
		return dst, nil, nil
	}
	slab, err := d.arena.Slab()
	if err != nil {
		d.arenaFails.Add(1)
		return dst, nil, fmt.Errorf("osabs: udp %q arena: %w", d.name, err)
	}
	lens := d.lens[:max]
	n, syscalls, kdrops, err := d.sock.recvInto(slab.Bytes(), d.fs, lens)
	if kdrops > 0 {
		d.sockDrops.Add(kdrops)
	}
	if err != nil {
		_ = slab.Release()
		if d.closed.Load() {
			return dst, nil, fmt.Errorf("osabs: udp %q: %w", d.name, ErrClosed)
		}
		return dst, nil, fmt.Errorf("osabs: udp %q recv: %w", d.name, err)
	}
	if n == 0 {
		_ = slab.Release()
		d.rxEmpty.Add(uint64(syscalls))
		return dst, nil, nil
	}
	raw := slab.Bytes()
	var bytes uint64
	for i := 0; i < n; i++ {
		f := raw[i*d.fs : i*d.fs+lens[i] : (i+1)*d.fs]
		bytes += uint64(lens[i])
		dst = append(dst, f)
	}
	// The arena Get supplied one reference; settle the count to one per
	// carved frame so the last Packet.Release of the batch recycles the
	// slab.
	slab.RetainN(n - 1)
	d.rxFrames.Add(uint64(n))
	d.rxBytes.Add(bytes)
	d.rxSyscalls.Add(uint64(syscalls))
	return dst, slab, nil
}

// SendBatch implements Device: the whole batch is offered to the kernel
// in as few syscalls as the backend manages; frames the kernel refuses
// (full socket buffers) are dropped and counted, never retried — the
// same discipline as a full TX ring.
func (d *UDPDevice) SendBatch(frames [][]byte) (int, error) {
	if d.closed.Load() {
		return 0, fmt.Errorf("osabs: udp %q: %w", d.name, ErrClosed)
	}
	if len(frames) == 0 {
		return 0, nil
	}
	sent, syscalls, err := d.sock.sendBatch(frames)
	d.txSyscalls.Add(uint64(syscalls))
	if sent > 0 {
		var bytes uint64
		for _, f := range frames[:sent] {
			bytes += uint64(len(f))
		}
		d.txFrames.Add(uint64(sent))
		d.txBytes.Add(bytes)
	}
	if dropped := len(frames) - sent; dropped > 0 {
		d.txDrops.Add(uint64(dropped))
	}
	if err != nil {
		if d.closed.Load() {
			return sent, fmt.Errorf("osabs: udp %q: %w", d.name, ErrClosed)
		}
		return sent, fmt.Errorf("osabs: udp %q send: %w", d.name, err)
	}
	return sent, nil
}

// Close implements Device.
func (d *UDPDevice) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.sock.close()
}

// UDPStats is the typed counter snapshot.
type UDPStats struct {
	RxFrames, TxFrames     uint64
	RxBytes, TxBytes       uint64
	RxSyscalls, TxSyscalls uint64 // productive syscalls (>=1 frame)
	RxEmptyPolls           uint64
	TxDrops                uint64 // kernel refused (buffer full)
	SockDrops              uint64 // kernel RX drops (SO_RXQ_OVFL)
	ArenaFailures          uint64
}

// Stats returns the device counters.
func (d *UDPDevice) Stats() UDPStats {
	return UDPStats{
		RxFrames: d.rxFrames.Load(), TxFrames: d.txFrames.Load(),
		RxBytes: d.rxBytes.Load(), TxBytes: d.txBytes.Load(),
		RxSyscalls: d.rxSyscalls.Load(), TxSyscalls: d.txSyscalls.Load(),
		RxEmptyPolls:  d.rxEmpty.Load(),
		TxDrops:       d.txDrops.Load(),
		SockDrops:     d.sockDrops.Load(),
		ArenaFailures: d.arenaFails.Load(),
	}
}

// StatList implements Device: the syscall-amortisation observables E17
// measures, in the uniform stats-tree form. The frames-per-syscall and
// batch-fill ratio gauges are weighted by syscall count so queue-group
// merges average honestly (core.GW / MergeStats semantics).
func (d *UDPDevice) StatList() []core.Stat {
	st := d.Stats()
	rxCalls := st.RxSyscalls
	fps := 0.0
	if rxCalls > 0 {
		fps = float64(st.RxFrames) / float64(rxCalls)
	}
	txFps := 0.0
	if st.TxSyscalls > 0 {
		txFps = float64(st.TxFrames) / float64(st.TxSyscalls)
	}
	return []core.Stat{
		core.C("udp_rx_frames", "frames", st.RxFrames),
		core.C("udp_tx_frames", "frames", st.TxFrames),
		core.C("udp_rx_bytes", "bytes", st.RxBytes),
		core.C("udp_tx_bytes", "bytes", st.TxBytes),
		core.C("udp_rx_syscalls", "syscalls", st.RxSyscalls),
		core.C("udp_tx_syscalls", "syscalls", st.TxSyscalls),
		core.C("udp_rx_empty_polls", "syscalls", st.RxEmptyPolls),
		core.C("udp_tx_drops", "frames", st.TxDrops),
		core.C("udp_sock_drops", "frames", st.SockDrops),
		core.C("udp_arena_failures", "slabs", st.ArenaFailures),
		core.GW("udp_rx_frames_per_syscall", "frames", fps, float64(rxCalls)),
		core.GW("udp_tx_frames_per_syscall", "frames", txFps, float64(st.TxSyscalls)),
		core.GW("udp_batch_fill", "ratio", fps/float64(d.batch), float64(rxCalls)),
	}
}

// NewUDPDeviceGroup opens n devices sharing one listen port through
// SO_REUSEPORT — the real-socket analogue of a MultiQueueNIC: the kernel
// spreads inbound flows across the group (a flow-consistent hash, so one
// flow keeps its order on one socket), and each device feeds one pipeline
// replica or ShardedCF lane. Devices are named "<name>:q<i>". n == 1
// degrades to a single plain device, so group construction is portable;
// n > 1 requires SO_REUSEPORT (Linux).
func NewUDPDeviceGroup(cfg UDPConfig, n int) ([]*UDPDevice, error) {
	if n < 1 {
		return nil, fmt.Errorf("osabs: udp group needs >=1 device, got %d", n)
	}
	cfg = cfg.withDefaults()
	base := cfg.Name
	if n > 1 {
		cfg.ReusePort = true
	}
	devs := make([]*UDPDevice, 0, n)
	fail := func(err error) ([]*UDPDevice, error) {
		for _, d := range devs {
			_ = d.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		c := cfg
		if base != "" {
			c.Name = fmt.Sprintf("%s:q%d", base, i)
		}
		d, err := NewUDPDevice(c)
		if err != nil {
			return fail(err)
		}
		devs = append(devs, d)
		if i == 0 {
			// Later members must join the exact port the first bind
			// resolved (Listen may have been ":0").
			cfg.Listen = d.LocalAddr()
		}
	}
	return devs, nil
}

// resolveUDP4 reports the IPv4 form of addr, or ok=false for names and
// v6 addresses (which fall to the portable backend).
func resolveUDP4(addr string) (*net.UDPAddr, bool) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil || ua.IP == nil {
		if err == nil && ua.IP == nil {
			// Unspecified host: treat as v4 any-address.
			ua.IP = net.IPv4zero
			return ua, true
		}
		return nil, false
	}
	if ua.IP.To4() == nil {
		return nil, false
	}
	return ua, true
}

var _ Device = (*UDPDevice)(nil)
