//go:build linux && amd64

package osabs

// Linux syscall numbers for the batched datagram calls, which the stdlib
// syscall package does not wrap (and the repo deliberately vendors no
// golang.org/x/sys): see arch/x86/entry/syscalls/syscall_64.tbl.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
