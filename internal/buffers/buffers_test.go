package buffers

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPool([]int{64, 256, 1024}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, 8, 0); err == nil {
		t.Fatal("want error for no classes")
	}
	if _, err := NewPool([]int{256, 128}, 8, 0); err == nil {
		t.Fatal("want error for descending classes")
	}
	if _, err := NewPool([]int{128, 128}, 8, 0); err == nil {
		t.Fatal("want error for duplicate classes")
	}
	if p, err := NewPool([]int{64}, 0, 0); err != nil || p == nil {
		t.Fatalf("depth defaulting failed: %v", err)
	}
}

func TestGetRoundsUpToClass(t *testing.T) {
	p := newTestPool(t)
	cases := []struct{ req, wantCap int }{
		{1, 64}, {64, 64}, {65, 256}, {256, 256}, {1000, 1024}, {1024, 1024},
	}
	for _, tc := range cases {
		b, err := p.Get(tc.req)
		if err != nil {
			t.Fatalf("Get(%d): %v", tc.req, err)
		}
		if b.Cap() != tc.wantCap {
			t.Fatalf("Get(%d) cap = %d, want %d", tc.req, b.Cap(), tc.wantCap)
		}
		if b.Len() != tc.req {
			t.Fatalf("Get(%d) len = %d", tc.req, b.Len())
		}
		if err := b.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetTooLarge(t *testing.T) {
	p := newTestPool(t)
	_, err := p.Get(4096)
	if !errors.Is(err, ErrBufferTooLarge) {
		t.Fatalf("want ErrBufferTooLarge, got %v", err)
	}
	if p.Stats().Failures != 1 {
		t.Fatalf("failures = %d", p.Stats().Failures)
	}
}

func TestReuseAfterRelease(t *testing.T) {
	p := newTestPool(t)
	b1, err := p.Get(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.Release(); err != nil {
		t.Fatal(err)
	}
	b2, err := p.Get(50)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("buffer not reused from free list")
	}
	s := p.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (second Get should hit)", s.Misses)
	}
}

func TestDoubleReleaseDetected(t *testing.T) {
	p := newTestPool(t)
	b, err := p.Get(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("want ErrDoubleRelease, got %v", err)
	}
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("live = %d after double release", live)
	}
}

func TestRetainRelease(t *testing.T) {
	p := newTestPool(t)
	b, err := p.Get(10)
	if err != nil {
		t.Fatal(err)
	}
	b.Retain()
	if b.Refs() != 2 {
		t.Fatalf("refs = %d", b.Refs())
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Live != 1 {
		t.Fatal("buffer freed while a reference remained")
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Live != 0 {
		t.Fatal("buffer not freed at zero refs")
	}
}

func TestMaxLiveEnforced(t *testing.T) {
	p, err := NewPool([]int{64}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if err := b1.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err != nil {
		t.Fatalf("Get after release: %v", err)
	}
}

func TestCopyFromAndBytes(t *testing.T) {
	p := newTestPool(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello packet")
	if n := b.CopyFrom(payload); n != len(payload) {
		t.Fatalf("copied %d", n)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatalf("bytes = %q", b.Bytes())
	}
	// CopyFrom larger than capacity truncates at capacity.
	big := make([]byte, 100)
	if n := b.CopyFrom(big); n != 64 {
		t.Fatalf("truncated copy = %d, want 64", n)
	}
}

func TestSetLenBounds(t *testing.T) {
	p := newTestPool(t)
	b, err := p.Get(10)
	if err != nil {
		t.Fatal(err)
	}
	b.SetLen(64)
	if b.Len() != 64 {
		t.Fatalf("len = %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range SetLen")
		}
	}()
	b.SetLen(65)
}

func TestStatsAccounting(t *testing.T) {
	p := newTestPool(t)
	var bufs []*Buffer
	for i := 0; i < 5; i++ {
		b, err := p.Get(100)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	s := p.Stats()
	if s.Gets != 5 || s.Live != 5 {
		t.Fatalf("stats = %+v", s)
	}
	for _, b := range bufs {
		if err := b.Release(); err != nil {
			t.Fatal(err)
		}
	}
	s = p.Stats()
	if s.Puts != 5 || s.Live != 0 {
		t.Fatalf("stats after release = %+v", s)
	}
}

func TestClassesCopied(t *testing.T) {
	p := newTestPool(t)
	cls := p.Classes()
	cls[0] = 9999
	if p.Classes()[0] == 9999 {
		t.Fatal("Classes() exposed internal slice")
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	p := MustNewPool(DefaultClasses, 32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b, err := p.Get(64 + i%1024)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				b.Retain()
				if err := b.Release(); err != nil {
					t.Errorf("release: %v", err)
					return
				}
				if err := b.Release(); err != nil {
					t.Errorf("release2: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("leak: live = %d", live)
	}
}

// Property: for any sequence of get sizes within range, live count equals
// gets minus releases at every prefix, and every buffer's capacity is the
// smallest class that fits.
func TestQuickPoolInvariants(t *testing.T) {
	classes := []int{32, 128, 512}
	check := func(sizes []uint16) bool {
		p := MustNewPool(classes, 4, 0)
		var live []*Buffer
		for _, s := range sizes {
			size := int(s)%512 + 1
			b, err := p.Get(size)
			if err != nil {
				return false
			}
			want := 0
			for _, c := range classes {
				if size <= c {
					want = c
					break
				}
			}
			if b.Cap() != want {
				return false
			}
			live = append(live, b)
			if p.Stats().Live != int64(len(live)) {
				return false
			}
		}
		for i, b := range live {
			if err := b.Release(); err != nil {
				return false
			}
			if p.Stats().Live != int64(len(live)-i-1) {
				return false
			}
		}
		return p.Stats().Live == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
