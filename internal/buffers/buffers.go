// Package buffers implements the buffer-management component framework
// mentioned in §2/§5 of the paper ("components can also take advantage of
// our existing buffer management CF"). It provides reference-counted
// packet buffers drawn from size-classed pools, zero-copy views, and
// accounting that the resources meta-model can budget against.
package buffers

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel errors.
var (
	// ErrBufferTooLarge indicates a request above the pool's largest class.
	ErrBufferTooLarge = errors.New("buffers: request exceeds largest size class")
	// ErrDoubleRelease indicates a Release on an already-freed buffer.
	ErrDoubleRelease = errors.New("buffers: release of free buffer")
	// ErrExhausted indicates the pool's capacity limit was reached.
	ErrExhausted = errors.New("buffers: pool exhausted")
)

// Buffer is a reference-counted, pooled byte buffer. The data path hands
// buffers between components without copying; Retain/Release manage
// lifetime across asynchronous hand-offs (queues, out-of-process stubs).
type Buffer struct {
	data []byte // full capacity slab
	n    int    // live length
	refs atomic.Int32
	pool *Pool
	cls  int
}

// Bytes returns the live contents. The returned slice aliases the buffer;
// it must not be used after Release.
func (b *Buffer) Bytes() []byte { return b.data[:b.n] }

// Cap returns the slab capacity.
func (b *Buffer) Cap() int { return cap(b.data) }

// Len returns the live length.
func (b *Buffer) Len() int { return b.n }

// SetLen adjusts the live length; it must not exceed Cap.
func (b *Buffer) SetLen(n int) {
	if n < 0 || n > cap(b.data) {
		panic(fmt.Sprintf("buffers: SetLen(%d) outside [0,%d]", n, cap(b.data)))
	}
	b.n = n
	b.data = b.data[:cap(b.data)]
}

// Retain increments the reference count; each Retain requires a matching
// Release.
func (b *Buffer) Retain() { b.refs.Add(1) }

// RetainN adds n references in one atomic step: the batch form used when
// a slab is carved into n frames that will each be released separately.
// RetainN(0) is a no-op; n must not be negative.
func (b *Buffer) RetainN(n int) {
	if n < 0 {
		panic(fmt.Sprintf("buffers: RetainN(%d)", n))
	}
	if n > 0 {
		b.refs.Add(int32(n))
	}
}

// Refs returns the current reference count (diagnostic).
func (b *Buffer) Refs() int32 { return b.refs.Load() }

// Release drops one reference; on reaching zero the buffer returns to its
// pool. Releasing a free buffer returns ErrDoubleRelease (and leaves the
// pool consistent), because double-release is exactly the class of plug-in
// bug a router CF must survive.
func (b *Buffer) Release() error {
	for {
		cur := b.refs.Load()
		if cur <= 0 {
			return ErrDoubleRelease
		}
		if b.refs.CompareAndSwap(cur, cur-1) {
			if cur == 1 {
				b.pool.put(b)
			}
			return nil
		}
	}
}

// CopyFrom replaces the buffer's contents with p, growing n as needed
// within capacity. It returns the number of bytes copied.
func (b *Buffer) CopyFrom(p []byte) int {
	n := copy(b.data[:cap(b.data)], p)
	b.n = n
	return n
}

// Pool is a size-classed buffer pool. Classes are fixed at construction;
// Get rounds requests up to the next class. A Pool with maxLive > 0
// enforces a live-buffer ceiling, the hook the resources meta-model uses
// to budget memory for a task.
type Pool struct {
	classes []int // sorted slab sizes
	free    []chan *Buffer
	maxLive int64

	live     atomic.Int64
	gets     atomic.Uint64
	puts     atomic.Uint64
	misses   atomic.Uint64 // allocations (pool empty)
	failures atomic.Uint64

	mu sync.Mutex // guards nothing hot; reserved for Stats consistency
}

// DefaultClasses is a spread suitable for packet workloads: small control
// packets, typical MTU frames and jumbo frames.
var DefaultClasses = []int{128, 512, 2048, 9216}

// NewPool creates a pool with the given size classes (ascending) and a
// per-class free-list depth. maxLive caps the number of live buffers
// (0 = unlimited).
func NewPool(classes []int, depth int, maxLive int64) (*Pool, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("buffers: no size classes")
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			return nil, fmt.Errorf("buffers: classes must be strictly ascending, got %v", classes)
		}
	}
	if depth < 1 {
		depth = 64
	}
	p := &Pool{
		classes: append([]int(nil), classes...),
		free:    make([]chan *Buffer, len(classes)),
		maxLive: maxLive,
	}
	for i := range p.free {
		p.free[i] = make(chan *Buffer, depth)
	}
	return p, nil
}

// MustNewPool is NewPool panicking on error, for package-level defaults.
func MustNewPool(classes []int, depth int, maxLive int64) *Pool {
	p, err := NewPool(classes, depth, maxLive)
	if err != nil {
		panic(err)
	}
	return p
}

// classFor returns the index of the smallest class >= size, or -1.
func (p *Pool) classFor(size int) int {
	for i, c := range p.classes {
		if size <= c {
			return i
		}
	}
	return -1
}

// Get returns a buffer with at least size capacity and length set to size,
// reference count 1.
func (p *Pool) Get(size int) (*Buffer, error) {
	cls := p.classFor(size)
	if cls < 0 {
		p.failures.Add(1)
		return nil, fmt.Errorf("buffers: %d bytes: %w", size, ErrBufferTooLarge)
	}
	if p.maxLive > 0 && p.live.Load() >= p.maxLive {
		p.failures.Add(1)
		return nil, fmt.Errorf("buffers: live limit %d: %w", p.maxLive, ErrExhausted)
	}
	p.gets.Add(1)
	p.live.Add(1)
	var b *Buffer
	select {
	case b = <-p.free[cls]:
	default:
		p.misses.Add(1)
		b = &Buffer{data: make([]byte, p.classes[cls]), pool: p, cls: cls}
	}
	b.n = size
	b.refs.Store(1)
	return b, nil
}

// put returns a buffer to its free list (or drops it when full).
func (p *Pool) put(b *Buffer) {
	p.puts.Add(1)
	p.live.Add(-1)
	select {
	case p.free[b.cls] <- b:
	default: // free list full; let GC take it
	}
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Live     int64  // buffers currently out
	Gets     uint64 // successful Get calls
	Puts     uint64 // buffers returned
	Misses   uint64 // Gets that had to allocate
	Failures uint64 // rejected Gets (too large / exhausted)
}

// Stats returns current counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Live:     p.live.Load(),
		Gets:     p.gets.Load(),
		Puts:     p.puts.Load(),
		Misses:   p.misses.Load(),
		Failures: p.failures.Load(),
	}
}

// Classes returns the configured size classes.
func (p *Pool) Classes() []int {
	return append([]int(nil), p.classes...)
}
