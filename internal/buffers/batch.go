package buffers

import "sync"

// BatchPool recycles batch slices for the batched fast path (DESIGN.md
// §4). One generic implementation serves both strata: stratum-1 ingress
// dequeues [][]byte frame batches from devices, and the router pipeline
// recycles []*Packet batches (via router.GetBatch/PutBatch), so neither
// pump allocates a fresh header-and-backing array per poll in the steady
// state.
//
// Ownership mirrors the router's batch rule: the batch slice belongs to
// whoever Got it; the elements inside follow their own lifetime (callee
// takes ownership on hand-off). Put clears the slice so the pool never
// pins element memory.
type BatchPool[T any] struct {
	size int
	pool sync.Pool
}

// NewBatchPool creates a pool of batches with the given capacity
// (elements per batch). Batches that outgrow the capacity are still
// recycled — the grown backing array simply replaces the original.
func NewBatchPool[T any](size int) *BatchPool[T] {
	if size <= 0 {
		size = 256
	}
	bp := &BatchPool[T]{size: size}
	bp.pool.New = func() any {
		b := make([]T, 0, bp.size)
		return &b
	}
	return bp
}

// Get returns a zero-length batch with at least the pool's configured
// capacity.
func (bp *BatchPool[T]) Get() []T {
	return (*bp.pool.Get().(*[]T))[:0]
}

// Put recycles a batch obtained from Get, clearing element references.
func (bp *BatchPool[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	var zero T
	b = b[:cap(b)]
	for i := range b {
		b[i] = zero
	}
	b = b[:0]
	bp.pool.Put(&b)
}

// Size returns the configured elements-per-batch capacity.
func (bp *BatchPool[T]) Size() int { return bp.size }

// Batches is the package-default frame-batch pool, sized for the largest
// batch the benchmarks drive (128) with headroom.
var Batches = NewBatchPool[[]byte](256)
