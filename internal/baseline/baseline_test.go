package baseline

import (
	"errors"
	"net/netip"
	"testing"

	"netkit/packet"
)

var (
	srcA = netip.MustParseAddr("10.0.0.1")
	dstA = netip.MustParseAddr("192.168.1.1")
)

func udp(t *testing.T, port uint16, ttl uint8) []byte {
	t.Helper()
	b, err := packet.BuildUDP4(srcA, dstA, 999, port, ttl, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClickBuildAndRun(t *testing.T) {
	var count uint64
	c := NewClickRouter()
	for _, e := range []Element{CheckIPHeader(), DecTTL(), CountPkts(&count)} {
		if err := c.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if c.Built() {
		t.Fatal("built before Build")
	}
	if _, err := c.Run(udp(t, 1, 64)); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("want ErrNotBuilt, got %v", err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Run(udp(t, 1, 64))
	if err != nil || !ok {
		t.Fatalf("run = %v %v", ok, err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if got := c.Elements(); len(got) != 3 || got[0] != "CheckIPHeader" {
		t.Fatalf("elements = %v", got)
	}
}

func TestClickFrozenAfterBuild(t *testing.T) {
	c := NewClickRouter()
	if err := c.Add(DecTTL()); err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(DecTTL()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen, got %v", err)
	}
	if err := c.Build(); !errors.Is(err, ErrFrozen) {
		t.Fatalf("want ErrFrozen on rebuild, got %v", err)
	}
}

func TestClickValidation(t *testing.T) {
	c := NewClickRouter()
	if err := c.Add(nil); err == nil {
		t.Fatal("want error for nil element")
	}
	if err := c.Build(); err == nil {
		t.Fatal("want error for empty config")
	}
}

func TestClickDropsExpiredTTL(t *testing.T) {
	c := NewClickRouter()
	if err := c.Add(DecTTL()); err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Run(udp(t, 1, 1))
	if err != nil || ok {
		t.Fatalf("expired packet survived: %v %v", ok, err)
	}
	handled, dropped := c.Stats()
	if handled != 0 || dropped != 1 {
		t.Fatalf("stats = %d/%d", handled, dropped)
	}
}

func TestClickChecksumElement(t *testing.T) {
	c := NewClickRouter()
	if err := c.Add(CheckIPHeader()); err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	bad := udp(t, 1, 64)
	bad[14] ^= 0xaa
	if ok, _ := c.Run(bad); ok {
		t.Fatal("bad checksum survived")
	}
	if ok, _ := c.Run(udp(t, 1, 64)); !ok {
		t.Fatal("good packet dropped")
	}
}

func TestClickClassifier(t *testing.T) {
	c := NewClickRouter()
	if err := c.Add(ClassifyUDPPort(53)); err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Run(udp(t, 53, 64)); !ok {
		t.Fatal("dns dropped")
	}
	if ok, _ := c.Run(udp(t, 80, 64)); ok {
		t.Fatal("non-dns survived")
	}
	if ok, _ := c.Run([]byte{0xff}); ok {
		t.Fatal("junk survived")
	}
}

func TestClickReconfigureIsRebuild(t *testing.T) {
	var c1Count, c2Count uint64
	c := NewClickRouter()
	if err := c.Add(CountPkts(&c1Count)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(DecTTL()); err != nil {
		t.Fatal(err)
	}
	if err := c.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(udp(t, 1, 64)); err != nil {
		t.Fatal(err)
	}

	next, err := c.Reconfigure(0, CountPkts(&c2Count))
	if err != nil {
		t.Fatal(err)
	}
	if next == c {
		t.Fatal("reconfigure must produce a new instance")
	}
	if _, err := next.Run(udp(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if c1Count != 1 || c2Count != 1 {
		t.Fatalf("counters = %d/%d", c1Count, c2Count)
	}
	// Old stats do not carry over: state was lost in the rebuild.
	h1, _ := c.Stats()
	h2, _ := next.Stats()
	if h1 != 1 || h2 != 1 {
		t.Fatalf("stats lost/shared incorrectly: %d %d", h1, h2)
	}
	if _, err := c.Reconfigure(9, DecTTL()); !errors.Is(err, ErrUnknownElement) {
		t.Fatalf("want ErrUnknownElement, got %v", err)
	}
}

func TestMonolith(t *testing.T) {
	m := NewMonolith(true)
	if !m.Run(udp(t, 1, 64)) {
		t.Fatal("good packet dropped")
	}
	if m.Run(udp(t, 1, 1)) {
		t.Fatal("expired survived")
	}
	bad := udp(t, 1, 64)
	bad[13] ^= 0x01
	if m.Run(bad) {
		t.Fatal("bad checksum survived")
	}
	if m.Run([]byte{0x00}) {
		t.Fatal("junk survived")
	}
	v6, err := packet.BuildUDP6(netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("2001:db8::2"), 1, 2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Run(v6) {
		t.Fatal("v6 dropped")
	}
	handled, dropped := m.Stats()
	if handled != 2 || dropped != 3 {
		t.Fatalf("stats = %d/%d", handled, dropped)
	}
}

// TestBehaviouralEquivalence: the Click chain, the monolith and (by
// construction in the router package) the CF pipeline implement the same
// forwarding semantics on the same inputs.
func TestBehaviouralEquivalence(t *testing.T) {
	click := NewClickRouter()
	if err := click.Add(CheckIPHeader()); err != nil {
		t.Fatal(err)
	}
	if err := click.Add(DecTTL()); err != nil {
		t.Fatal(err)
	}
	if err := click.Build(); err != nil {
		t.Fatal(err)
	}
	mono := NewMonolith(true)
	inputs := [][]byte{
		udp(t, 53, 64),
		udp(t, 80, 1),
		{0xde, 0xad},
	}
	bad := udp(t, 1, 64)
	bad[12] ^= 0xff
	inputs = append(inputs, bad)
	for i, in := range inputs {
		a := append([]byte(nil), in...)
		b := append([]byte(nil), in...)
		okClick, err := click.Run(a)
		if err != nil {
			t.Fatal(err)
		}
		okMono := mono.Run(b)
		if okClick != okMono {
			t.Fatalf("input %d: click=%v mono=%v", i, okClick, okMono)
		}
	}
}
