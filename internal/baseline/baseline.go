// Package baseline implements the related-work comparators the paper
// positions itself against (§6): a Click-like statically-composed modular
// router — "flexible support for the configuration (but not
// reconfiguration)" — and a hand-fused monolithic forwarder representing
// the zero-indirection upper bound. Experiment E3 runs the same workloads
// through these and the NETKIT Router CF; experiment E4 demonstrates that
// reconfiguring the Click-like router requires a full rebuild (packets in
// flight are lost), unlike the CF's lossless hot-swap.
package baseline

import (
	"errors"
	"fmt"

	"netkit/packet"
)

// Sentinel errors.
var (
	// ErrFrozen indicates mutation of an already-built Click graph.
	ErrFrozen = errors.New("baseline: configuration is frozen")
	// ErrNotBuilt indicates running an unbuilt graph.
	ErrNotBuilt = errors.New("baseline: configuration not built")
	// ErrUnknownElement indicates a bad element reference.
	ErrUnknownElement = errors.New("baseline: unknown element")
)

// Element is a Click-style processing element: a pure function from packet
// to verdict. Elements are composed at build time into a fixed chain of
// direct calls — no receptacles, no interception, no reconfiguration.
type Element interface {
	// Name identifies the element in the configuration.
	Name() string
	// Process handles one packet; returning false drops it.
	Process(pkt []byte) bool
}

// ElementFunc adapts a function to Element.
type ElementFunc struct {
	ID string
	Fn func(pkt []byte) bool
}

// Name implements Element.
func (e ElementFunc) Name() string { return e.ID }

// Process implements Element.
func (e ElementFunc) Process(pkt []byte) bool { return e.Fn(pkt) }

// Standard Click-like elements mirroring the Router CF's components.

// CheckIPHeader validates the IPv4 header checksum (drops invalid).
func CheckIPHeader() Element {
	return ElementFunc{ID: "CheckIPHeader", Fn: func(pkt []byte) bool {
		if packet.Version(pkt) != 4 {
			return true
		}
		return packet.ValidateIPv4Checksum(pkt) == nil
	}}
}

// DecTTL decrements the TTL/hop limit (drops expired).
func DecTTL() Element {
	return ElementFunc{ID: "DecTTL", Fn: func(pkt []byte) bool {
		switch packet.Version(pkt) {
		case 4:
			return packet.DecrementTTL(pkt) == nil
		case 6:
			return packet.DecrementHopLimit(pkt) == nil
		default:
			return false
		}
	}}
}

// CountPkts counts packets passing through.
func CountPkts(counter *uint64) Element {
	return ElementFunc{ID: "Counter", Fn: func(pkt []byte) bool {
		*counter++
		return true
	}}
}

// ClassifyUDPPort drops packets that are not UDP to the given port —
// standing in for a one-rule classifier on the static path.
func ClassifyUDPPort(port uint16) Element {
	return ElementFunc{ID: "Classifier", Fn: func(pkt []byte) bool {
		k, err := packet.Flow(pkt)
		if err != nil {
			return false
		}
		return k.Proto == packet.ProtoUDP && k.DstPort == port
	}}
}

// ClickRouter is the configure-once router: elements are added, the graph
// is built (frozen into a direct-call chain), and thereafter only Run is
// possible. Reconfiguration requires constructing a NEW router and
// abandoning the old one, losing any in-flight state — exactly the
// limitation §6 attributes to Click.
type ClickRouter struct {
	elems   []Element
	built   bool
	chain   []func([]byte) bool // flattened at build time
	handled uint64
	dropped uint64
}

// NewClickRouter returns an empty configuration.
func NewClickRouter() *ClickRouter { return &ClickRouter{} }

// Add appends an element to the chain; it fails after Build.
func (c *ClickRouter) Add(e Element) error {
	if c.built {
		return ErrFrozen
	}
	if e == nil {
		return fmt.Errorf("baseline: nil element")
	}
	c.elems = append(c.elems, e)
	return nil
}

// Build freezes the configuration, flattening the chain.
func (c *ClickRouter) Build() error {
	if c.built {
		return ErrFrozen
	}
	if len(c.elems) == 0 {
		return fmt.Errorf("baseline: empty configuration")
	}
	c.chain = make([]func([]byte) bool, len(c.elems))
	for i, e := range c.elems {
		c.chain[i] = e.Process
	}
	c.built = true
	return nil
}

// Built reports whether the graph is frozen.
func (c *ClickRouter) Built() bool { return c.built }

// Elements returns the element names in chain order.
func (c *ClickRouter) Elements() []string {
	out := make([]string, len(c.elems))
	for i, e := range c.elems {
		out[i] = e.Name()
	}
	return out
}

// Run pushes one packet through the chain, reporting whether it survived.
func (c *ClickRouter) Run(pkt []byte) (bool, error) {
	if !c.built {
		return false, ErrNotBuilt
	}
	for _, f := range c.chain {
		if !f(pkt) {
			c.dropped++
			return false, nil
		}
	}
	c.handled++
	return true, nil
}

// Stats reports (forwarded, dropped).
func (c *ClickRouter) Stats() (handled, dropped uint64) { return c.handled, c.dropped }

// Reconfigure models Click's restart-to-reconfigure: it returns a NEW
// router with the element at index replaced, leaving the old one frozen.
// The caller must cut traffic over; anything queued in the old instance is
// lost (E4 measures this gap against the CF's hot-swap).
func (c *ClickRouter) Reconfigure(index int, replacement Element) (*ClickRouter, error) {
	if index < 0 || index >= len(c.elems) {
		return nil, fmt.Errorf("baseline: index %d of %d: %w", index, len(c.elems), ErrUnknownElement)
	}
	next := NewClickRouter()
	for i, e := range c.elems {
		el := e
		if i == index {
			el = replacement
		}
		if err := next.Add(el); err != nil {
			return nil, err
		}
	}
	if err := next.Build(); err != nil {
		return nil, err
	}
	return next, nil
}

// ---------------------------------------------------------------------------
// Monolithic forwarder

// Monolith is the hand-fused fast path: checksum check, TTL decrement and
// counting in one function, no indirection at all. It bounds from above
// what any composition framework can achieve on this workload.
type Monolith struct {
	validate bool
	handled  uint64
	dropped  uint64
}

// NewMonolith returns a fused forwarder; validate enables IPv4 checksum
// verification.
func NewMonolith(validate bool) *Monolith { return &Monolith{validate: validate} }

// Run processes one packet.
func (m *Monolith) Run(pkt []byte) bool {
	switch packet.Version(pkt) {
	case 4:
		if m.validate && packet.ValidateIPv4Checksum(pkt) != nil {
			m.dropped++
			return false
		}
		if packet.DecrementTTL(pkt) != nil {
			m.dropped++
			return false
		}
	case 6:
		if packet.DecrementHopLimit(pkt) != nil {
			m.dropped++
			return false
		}
	default:
		m.dropped++
		return false
	}
	m.handled++
	return true
}

// Stats reports (forwarded, dropped).
func (m *Monolith) Stats() (handled, dropped uint64) { return m.handled, m.dropped }
