// Package ixp is a deterministic performance model of the Intel IXP1200
// network processor the paper targets in §5: a StrongARM control processor
// plus six 'micro-engine' packet processors, each with four hardware
// thread contexts, over a hierarchical memory system (scratchpad, SRAM,
// SDRAM). The paper leaves the IXP port as future work but sketches its
// central problem — component placement: "we need to additionally place
// components (whether on the control processor or a micro-engine)
// according to performance and load-balancing considerations. We think
// that the CF itself should contain the 'intelligence' to transparently
// manage this placement, but with the possibility to control/override this
// via a 'placement' meta-model." This package implements that placement
// meta-model against the cycle model, and experiment E7 evaluates it.
//
// The model is analytic and fully deterministic: each pipeline stage has a
// compute-cycle cost and per-memory-kind reference counts; hardware
// threads overlap memory latency with other contexts' compute, so an
// engine's effective per-packet cost is max(compute, memory/threads).
// Pipeline throughput is bottlenecked by the busiest processor.
package ixp

import (
	"errors"
	"fmt"
)

// Sentinel errors.
var (
	// ErrBadChip indicates an invalid chip description.
	ErrBadChip = errors.New("ixp: bad chip")
	// ErrBadStage indicates an invalid pipeline stage.
	ErrBadStage = errors.New("ixp: bad stage")
	// ErrBadPlacement indicates an assignment referencing unknown stages
	// or engines.
	ErrBadPlacement = errors.New("ixp: bad placement")
)

// MemKind identifies a level of the IXP memory hierarchy.
type MemKind int

// Memory kinds.
const (
	MemScratch MemKind = iota + 1 // on-chip scratchpad
	MemSRAM                       // external SRAM (tables, queues)
	MemSDRAM                      // external SDRAM (packet bodies)
)

// String implements fmt.Stringer.
func (k MemKind) String() string {
	switch k {
	case MemScratch:
		return "scratch"
	case MemSRAM:
		return "sram"
	case MemSDRAM:
		return "sdram"
	default:
		return fmt.Sprintf("MemKind(%d)", int(k))
	}
}

// Chip describes the processor complex.
type Chip struct {
	// EngineClockHz is the micro-engine clock.
	EngineClockHz float64
	// CtrlClockHz is the StrongARM clock.
	CtrlClockHz float64
	// Engines is the micro-engine count.
	Engines int
	// Threads is the hardware contexts per engine.
	Threads int
	// MemLatency is cycles per reference per kind.
	MemLatency map[MemKind]int
	// CtrlPenalty multiplies stage cost on the control processor (no
	// packet-path hardware assists, cache effects): > 1.
	CtrlPenalty float64
}

// DefaultIXP1200 returns the published IXP1200 configuration: 232 MHz
// StrongARM + 6 micro-engines at 232 MHz with 4 contexts each; scratchpad
// ~12 cycles, SRAM ~20, SDRAM ~40 per reference; control-path penalty 4x.
func DefaultIXP1200() Chip {
	return Chip{
		EngineClockHz: 232e6,
		CtrlClockHz:   232e6,
		Engines:       6,
		Threads:       4,
		MemLatency: map[MemKind]int{
			MemScratch: 12,
			MemSRAM:    20,
			MemSDRAM:   40,
		},
		CtrlPenalty: 4,
	}
}

// validate checks chip sanity.
func (c Chip) validate() error {
	if c.EngineClockHz <= 0 || c.CtrlClockHz <= 0 || c.Engines < 1 ||
		c.Threads < 1 || c.CtrlPenalty < 1 {
		return fmt.Errorf("ixp: %+v: %w", c, ErrBadChip)
	}
	return nil
}

// Stage is one packet-processing component with its cost model.
type Stage struct {
	Name          string
	ComputeCycles int
	MemRefs       map[MemKind]int
}

// memCycles is the total memory latency per packet for this stage.
func (s Stage) memCycles(chip Chip) int {
	total := 0
	for kind, n := range s.MemRefs {
		total += n * chip.MemLatency[kind]
	}
	return total
}

// Pipeline is an ordered chain of stages every packet traverses.
type Pipeline []Stage

// validate checks stage sanity and name uniqueness.
func (p Pipeline) validate() error {
	if len(p) == 0 {
		return fmt.Errorf("ixp: empty pipeline: %w", ErrBadStage)
	}
	seen := make(map[string]bool, len(p))
	for _, s := range p {
		if s.Name == "" || s.ComputeCycles < 0 {
			return fmt.Errorf("ixp: stage %+v: %w", s, ErrBadStage)
		}
		if seen[s.Name] {
			return fmt.Errorf("ixp: duplicate stage %q: %w", s.Name, ErrBadStage)
		}
		seen[s.Name] = true
		for _, n := range s.MemRefs {
			if n < 0 {
				return fmt.Errorf("ixp: stage %q negative mem refs: %w", s.Name, ErrBadStage)
			}
		}
	}
	return nil
}

// Target is a placement destination.
type Target struct {
	// Control selects the StrongARM; otherwise Engine indexes a
	// micro-engine.
	Control bool
	Engine  int
}

// String implements fmt.Stringer.
func (t Target) String() string {
	if t.Control {
		return "strongarm"
	}
	return fmt.Sprintf("ue%d", t.Engine)
}

// Assignment maps stage names to targets: the reflective state of the
// placement meta-model.
type Assignment map[string]Target

// Report is the evaluation of one placement.
type Report struct {
	// CyclesPerPacket is each used target's effective per-packet cost.
	CyclesPerPacket map[Target]float64
	// Bottleneck is the slowest target.
	Bottleneck Target
	// ThroughputPPS is the pipeline's packets/sec.
	ThroughputPPS float64
	// Utilization is each used target's busy fraction at the bottleneck
	// rate (the bottleneck runs at 1.0).
	Utilization map[Target]float64
}

// Evaluate computes the steady-state throughput of the pipeline under the
// given placement.
func Evaluate(chip Chip, pipe Pipeline, asg Assignment) (*Report, error) {
	if err := chip.validate(); err != nil {
		return nil, err
	}
	if err := pipe.validate(); err != nil {
		return nil, err
	}
	// Aggregate compute and memory cycles per target.
	type load struct{ compute, mem float64 }
	loads := make(map[Target]*load)
	for _, s := range pipe {
		t, ok := asg[s.Name]
		if !ok {
			return nil, fmt.Errorf("ixp: stage %q unplaced: %w", s.Name, ErrBadPlacement)
		}
		if !t.Control && (t.Engine < 0 || t.Engine >= chip.Engines) {
			return nil, fmt.Errorf("ixp: stage %q on engine %d of %d: %w",
				s.Name, t.Engine, chip.Engines, ErrBadPlacement)
		}
		l := loads[t]
		if l == nil {
			l = &load{}
			loads[t] = l
		}
		c := float64(s.ComputeCycles)
		m := float64(s.memCycles(chip))
		if t.Control {
			// The control processor has one context and pays the penalty;
			// memory cannot be overlapped.
			l.compute += (c + m) * chip.CtrlPenalty
		} else {
			l.compute += c
			l.mem += m
		}
	}
	r := &Report{
		CyclesPerPacket: make(map[Target]float64, len(loads)),
		Utilization:     make(map[Target]float64, len(loads)),
	}
	worstTime := 0.0
	for t, l := range loads {
		var cycles, clock float64
		if t.Control {
			cycles = l.compute
			clock = chip.CtrlClockHz
		} else {
			// Hardware threads overlap memory stalls with compute from
			// other contexts.
			overlapped := l.mem / float64(chip.Threads)
			cycles = l.compute
			if overlapped > cycles {
				cycles = overlapped
			}
			// A context switch per stage visit is unavoidable.
			cycles += 2
			clock = chip.EngineClockHz
		}
		r.CyclesPerPacket[t] = cycles
		secPerPkt := cycles / clock
		if secPerPkt > worstTime {
			worstTime = secPerPkt
			r.Bottleneck = t
		}
	}
	if worstTime <= 0 {
		return nil, fmt.Errorf("ixp: degenerate pipeline: %w", ErrBadStage)
	}
	r.ThroughputPPS = 1 / worstTime
	for t, cycles := range r.CyclesPerPacket {
		clock := chip.EngineClockHz
		if t.Control {
			clock = chip.CtrlClockHz
		}
		r.Utilization[t] = (cycles / clock) / worstTime
	}
	return r, nil
}

// StandardPipeline returns the Figure-3 pipeline's cost model: the stages
// of the paper's composite with costs in the ballpark of published IXP1200
// measurements (header processing tens of cycles of compute, table lookups
// in SRAM, packet-body touches in SDRAM).
func StandardPipeline() Pipeline {
	return Pipeline{
		{Name: "rx", ComputeCycles: 30, MemRefs: map[MemKind]int{MemSDRAM: 2, MemScratch: 1}},
		{Name: "classify", ComputeCycles: 60, MemRefs: map[MemKind]int{MemSRAM: 3}},
		{Name: "iphdr", ComputeCycles: 45, MemRefs: map[MemKind]int{MemSRAM: 1, MemSDRAM: 1}},
		{Name: "queue", ComputeCycles: 25, MemRefs: map[MemKind]int{MemSRAM: 2, MemScratch: 2}},
		{Name: "sched", ComputeCycles: 40, MemRefs: map[MemKind]int{MemScratch: 3}},
		{Name: "tx", ComputeCycles: 30, MemRefs: map[MemKind]int{MemSDRAM: 2}},
	}
}
