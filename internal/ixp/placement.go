package ixp

import (
	"fmt"
	"sort"
)

// The placement meta-model: strategies produce Assignments; the Manager
// reflects on an evaluated placement and migrates stages, honouring
// manual overrides ("the possibility to control/override this via a
// 'placement' meta-model", §5).

// PlaceAllControl puts every stage on the StrongARM — the degenerate
// deployment a port without a placement meta-model would start from.
func PlaceAllControl(pipe Pipeline) Assignment {
	asg := make(Assignment, len(pipe))
	for _, s := range pipe {
		asg[s.Name] = Target{Control: true}
	}
	return asg
}

// PlaceRoundRobin spreads stages across engines in pipeline order,
// ignoring cost.
func PlaceRoundRobin(chip Chip, pipe Pipeline) Assignment {
	asg := make(Assignment, len(pipe))
	for i, s := range pipe {
		asg[s.Name] = Target{Engine: i % chip.Engines}
	}
	return asg
}

// PlaceGreedy performs longest-processing-time-first bin packing: stages
// sorted by effective cost, each assigned to the least-loaded engine. This
// is the CF's automatic placement intelligence.
func PlaceGreedy(chip Chip, pipe Pipeline) Assignment {
	type stageCost struct {
		name string
		cost float64
	}
	costs := make([]stageCost, len(pipe))
	for i, s := range pipe {
		eff := float64(s.ComputeCycles)
		if m := float64(s.memCycles(chip)) / float64(chip.Threads); m > eff {
			eff = m
		}
		costs[i] = stageCost{name: s.Name, cost: eff}
	}
	sort.SliceStable(costs, func(i, j int) bool { return costs[i].cost > costs[j].cost })
	engineLoad := make([]float64, chip.Engines)
	asg := make(Assignment, len(pipe))
	for _, sc := range costs {
		best := 0
		for e := 1; e < chip.Engines; e++ {
			if engineLoad[e] < engineLoad[best] {
				best = e
			}
		}
		asg[sc.name] = Target{Engine: best}
		engineLoad[best] += sc.cost
	}
	return asg
}

// Manager is the runtime half of the placement meta-model: it owns the
// current assignment, accepts manual pins, and iteratively migrates the
// hottest unpinned stage off the bottleneck.
type Manager struct {
	chip Chip
	pipe Pipeline
	asg  Assignment
	pins map[string]Target
}

// NewManager starts from an initial assignment (copied).
func NewManager(chip Chip, pipe Pipeline, initial Assignment) (*Manager, error) {
	if err := chip.validate(); err != nil {
		return nil, err
	}
	if err := pipe.validate(); err != nil {
		return nil, err
	}
	asg := make(Assignment, len(initial))
	for k, v := range initial {
		asg[k] = v
	}
	if _, err := Evaluate(chip, pipe, asg); err != nil {
		return nil, err
	}
	return &Manager{chip: chip, pipe: pipe, asg: asg, pins: make(map[string]Target)}, nil
}

// Assignment returns a copy of the current placement.
func (m *Manager) Assignment() Assignment {
	out := make(Assignment, len(m.asg))
	for k, v := range m.asg {
		out[k] = v
	}
	return out
}

// Pin overrides the automatic placement for one stage (the manual
// control/override path). The stage moves immediately.
func (m *Manager) Pin(stage string, t Target) error {
	if _, ok := m.asg[stage]; !ok {
		return fmt.Errorf("ixp: pin %q: %w", stage, ErrBadPlacement)
	}
	if !t.Control && (t.Engine < 0 || t.Engine >= m.chip.Engines) {
		return fmt.Errorf("ixp: pin %q to %s: %w", stage, t, ErrBadPlacement)
	}
	m.pins[stage] = t
	m.asg[stage] = t
	return nil
}

// Unpin releases a manual override (the stage stays put until the next
// Rebalance moves it).
func (m *Manager) Unpin(stage string) {
	delete(m.pins, stage)
}

// Evaluate reports on the current placement.
func (m *Manager) Evaluate() (*Report, error) {
	return Evaluate(m.chip, m.pipe, m.asg)
}

// Rebalance performs up to maxMoves greedy migrations: each move takes the
// costliest unpinned stage on the bottleneck target and moves it to the
// target that minimises the new bottleneck. It stops early when no move
// improves throughput. Returns the number of moves made.
func (m *Manager) Rebalance(maxMoves int) (int, error) {
	moves := 0
	for moves < maxMoves {
		rep, err := Evaluate(m.chip, m.pipe, m.asg)
		if err != nil {
			return moves, err
		}
		stage, ok := m.hottestUnpinnedOn(rep.Bottleneck)
		if !ok {
			return moves, nil
		}
		bestTarget, bestTput := m.asg[stage], rep.ThroughputPPS
		for e := 0; e < m.chip.Engines; e++ {
			cand := Target{Engine: e}
			if cand == m.asg[stage] {
				continue
			}
			m.asg[stage] = cand
			r2, err := Evaluate(m.chip, m.pipe, m.asg)
			if err == nil && r2.ThroughputPPS > bestTput {
				bestTput, bestTarget = r2.ThroughputPPS, cand
			}
		}
		m.asg[stage] = bestTarget
		if bestTput <= rep.ThroughputPPS {
			return moves, nil // converged
		}
		moves++
	}
	return moves, nil
}

// hottestUnpinnedOn finds the costliest migratable stage on a target.
func (m *Manager) hottestUnpinnedOn(t Target) (string, bool) {
	bestCost := -1.0
	bestName := ""
	for _, s := range m.pipe {
		if m.asg[s.Name] != t {
			continue
		}
		if _, pinned := m.pins[s.Name]; pinned {
			continue
		}
		eff := float64(s.ComputeCycles)
		if mm := float64(s.memCycles(m.chip)) / float64(m.chip.Threads); mm > eff {
			eff = mm
		}
		if eff > bestCost {
			bestCost, bestName = eff, s.Name
		}
	}
	return bestName, bestName != ""
}
