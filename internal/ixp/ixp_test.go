package ixp

import (
	"errors"
	"testing"
	"testing/quick"
)

func chip(t *testing.T) Chip {
	t.Helper()
	return DefaultIXP1200()
}

func TestEvaluateValidation(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	if _, err := Evaluate(Chip{}, pipe, PlaceAllControl(pipe)); !errors.Is(err, ErrBadChip) {
		t.Fatalf("want ErrBadChip, got %v", err)
	}
	if _, err := Evaluate(c, Pipeline{}, Assignment{}); !errors.Is(err, ErrBadStage) {
		t.Fatalf("want ErrBadStage, got %v", err)
	}
	if _, err := Evaluate(c, pipe, Assignment{}); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("want ErrBadPlacement for unplaced, got %v", err)
	}
	bad := PlaceRoundRobin(c, pipe)
	bad[pipe[0].Name] = Target{Engine: 99}
	if _, err := Evaluate(c, pipe, bad); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("want ErrBadPlacement for engine 99, got %v", err)
	}
	dup := Pipeline{{Name: "a", ComputeCycles: 1}, {Name: "a", ComputeCycles: 1}}
	if _, err := Evaluate(c, dup, Assignment{"a": {}}); !errors.Is(err, ErrBadStage) {
		t.Fatalf("want ErrBadStage for duplicate, got %v", err)
	}
}

func TestAllControlSlowerThanEngines(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	ctrl, err := Evaluate(c, pipe, PlaceAllControl(pipe))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Evaluate(c, pipe, PlaceRoundRobin(c, pipe))
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.ThroughputPPS >= rr.ThroughputPPS {
		t.Fatalf("control-only %.0f pps >= spread %.0f pps", ctrl.ThroughputPPS, rr.ThroughputPPS)
	}
	if !ctrl.Bottleneck.Control {
		t.Fatal("control-only bottleneck should be the StrongARM")
	}
}

func TestGreedyBeatsOrMatchesRoundRobin(t *testing.T) {
	c := chip(t)
	// A deliberately skewed pipeline: round-robin colocates heavy stages.
	pipe := Pipeline{
		{Name: "a", ComputeCycles: 500},
		{Name: "b", ComputeCycles: 10},
		{Name: "c", ComputeCycles: 10},
		{Name: "d", ComputeCycles: 480},
		{Name: "e", ComputeCycles: 10},
		{Name: "f", ComputeCycles: 10},
		{Name: "g", ComputeCycles: 490},
	}
	small := c
	small.Engines = 3
	rr, err := Evaluate(small, pipe, PlaceRoundRobin(small, pipe))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Evaluate(small, pipe, PlaceGreedy(small, pipe))
	if err != nil {
		t.Fatal(err)
	}
	if gr.ThroughputPPS < rr.ThroughputPPS {
		t.Fatalf("greedy %.0f < round-robin %.0f", gr.ThroughputPPS, rr.ThroughputPPS)
	}
}

func TestMoreEnginesNeverHurt(t *testing.T) {
	pipe := StandardPipeline()
	prev := 0.0
	for engines := 1; engines <= 6; engines++ {
		c := chip(t)
		c.Engines = engines
		rep, err := Evaluate(c, pipe, PlaceGreedy(c, pipe))
		if err != nil {
			t.Fatal(err)
		}
		if rep.ThroughputPPS+1e-9 < prev {
			t.Fatalf("throughput fell from %.0f to %.0f at %d engines",
				prev, rep.ThroughputPPS, engines)
		}
		prev = rep.ThroughputPPS
	}
}

func TestThreadsHideMemoryLatency(t *testing.T) {
	// A memory-bound stage: more hardware contexts must increase
	// throughput.
	pipe := Pipeline{
		{Name: "memhog", ComputeCycles: 10, MemRefs: map[MemKind]int{MemSDRAM: 10}},
	}
	asg := Assignment{"memhog": {Engine: 0}}
	c1 := chip(t)
	c1.Threads = 1
	c4 := chip(t)
	c4.Threads = 4
	r1, err := Evaluate(c1, pipe, asg)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Evaluate(c4, pipe, asg)
	if err != nil {
		t.Fatal(err)
	}
	if r4.ThroughputPPS <= r1.ThroughputPPS {
		t.Fatalf("4 threads %.0f <= 1 thread %.0f", r4.ThroughputPPS, r1.ThroughputPPS)
	}
	// A compute-bound stage gains nothing from threading.
	pipe2 := Pipeline{{Name: "cpu", ComputeCycles: 400}}
	asg2 := Assignment{"cpu": {Engine: 0}}
	r1c, err := Evaluate(c1, pipe2, asg2)
	if err != nil {
		t.Fatal(err)
	}
	r4c, err := Evaluate(c4, pipe2, asg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1c.ThroughputPPS != r4c.ThroughputPPS {
		t.Fatalf("compute-bound gained from threads: %.0f vs %.0f",
			r1c.ThroughputPPS, r4c.ThroughputPPS)
	}
}

func TestUtilizationBottleneckIsOne(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	rep, err := Evaluate(c, pipe, PlaceGreedy(c, pipe))
	if err != nil {
		t.Fatal(err)
	}
	if u := rep.Utilization[rep.Bottleneck]; u < 0.999 || u > 1.001 {
		t.Fatalf("bottleneck utilization = %f", u)
	}
	for tgt, u := range rep.Utilization {
		if u > 1.001 {
			t.Fatalf("target %s over-utilised: %f", tgt, u)
		}
	}
}

func TestManagerRebalanceImproves(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	// Start from the worst placement: everything on engine 0.
	bad := make(Assignment, len(pipe))
	for _, s := range pipe {
		bad[s.Name] = Target{Engine: 0}
	}
	m, err := NewManager(c, pipe, bad)
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	moves, err := m.Rebalance(20)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("no migrations from the all-on-one placement")
	}
	after, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if after.ThroughputPPS <= before.ThroughputPPS {
		t.Fatalf("rebalance did not improve: %.0f -> %.0f",
			before.ThroughputPPS, after.ThroughputPPS)
	}
	// Rebalance converges: a second call makes no moves.
	again, err := m.Rebalance(20)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("rebalance not converged: %d more moves", again)
	}
}

func TestManagerPinOverridesRebalance(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	bad := make(Assignment, len(pipe))
	for _, s := range pipe {
		bad[s.Name] = Target{Engine: 0}
	}
	m, err := NewManager(c, pipe, bad)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the classify stage to engine 0 and rebalance: it must not move.
	if err := m.Pin("classify", Target{Engine: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rebalance(20); err != nil {
		t.Fatal(err)
	}
	if got := m.Assignment()["classify"]; got != (Target{Engine: 0}) {
		t.Fatalf("pinned stage moved to %s", got)
	}
	// Unpinned, the next rebalance may move it.
	m.Unpin("classify")
	if _, err := m.Rebalance(20); err != nil {
		t.Fatal(err)
	}
	// Pin validation.
	if err := m.Pin("ghost", Target{}); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("want ErrBadPlacement, got %v", err)
	}
	if err := m.Pin("rx", Target{Engine: 99}); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("want ErrBadPlacement, got %v", err)
	}
}

func TestManagerValidation(t *testing.T) {
	c := chip(t)
	pipe := StandardPipeline()
	if _, err := NewManager(c, pipe, Assignment{}); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("want ErrBadPlacement, got %v", err)
	}
	if _, err := NewManager(Chip{}, pipe, PlaceAllControl(pipe)); !errors.Is(err, ErrBadChip) {
		t.Fatalf("want ErrBadChip, got %v", err)
	}
}

func TestTargetString(t *testing.T) {
	if (Target{Control: true}).String() != "strongarm" {
		t.Fatal("control string")
	}
	if (Target{Engine: 3}).String() != "ue3" {
		t.Fatal("engine string")
	}
	if MemScratch.String() != "scratch" || MemSRAM.String() != "sram" || MemSDRAM.String() != "sdram" {
		t.Fatal("memkind strings")
	}
}

// Property: greedy placement's throughput is never below the single-engine
// placement (consolidating everything on engine 0), for arbitrary
// pipelines.
func TestQuickGreedyNotWorseThanSingleEngine(t *testing.T) {
	c := chip(t)
	check := func(costs []uint16) bool {
		if len(costs) == 0 {
			return true
		}
		if len(costs) > 12 {
			costs = costs[:12]
		}
		pipe := make(Pipeline, len(costs))
		for i, cost := range costs {
			pipe[i] = Stage{
				Name:          string(rune('a' + i)),
				ComputeCycles: int(cost%2000) + 1,
				MemRefs:       map[MemKind]int{MemSRAM: int(cost % 7)},
			}
		}
		single := make(Assignment, len(pipe))
		for _, s := range pipe {
			single[s.Name] = Target{Engine: 0}
		}
		rs, err := Evaluate(c, pipe, single)
		if err != nil {
			return false
		}
		rg, err := Evaluate(c, pipe, PlaceGreedy(c, pipe))
		if err != nil {
			return false
		}
		return rg.ThroughputPPS+1e-9 >= rs.ThroughputPPS
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
