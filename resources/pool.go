package resources

import (
	"fmt"
	"sync"
	"time"
)

// Pool is a worker pool draining a pluggable Scheduler: the thread-
// management CF of the paper, with schedulers as the plug-ins. All
// scheduler access is serialised under the pool's mutex; workers block on
// a condition variable when idle.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	sched    Scheduler
	seq      uint64
	stopped  bool
	draining bool

	workers int
	wg      sync.WaitGroup
}

// NewPool creates a pool with the given parallelism and scheduling policy
// and starts its workers.
func NewPool(workers int, sched Scheduler) (*Pool, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("resources: pool needs >=1 worker, got %d", workers)
	}
	if sched == nil {
		return nil, fmt.Errorf("resources: nil scheduler")
	}
	p := &Pool{sched: sched, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p, nil
}

// Submit enqueues fn attributed to task. It fails after Stop.
func (p *Pool) Submit(task *Task, fn func()) error {
	if task == nil || fn == nil {
		return fmt.Errorf("resources: submit with nil task or fn")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return ErrPoolStopped
	}
	p.seq++
	p.sched.Push(&WorkItem{Task: task, Run: fn, seq: p.seq})
	p.cond.Signal()
	return nil
}

// SwapScheduler replaces the scheduling policy, migrating queued items in
// their current dispatch order. This is the "pluggable scheduler"
// reconfiguration path; it is safe under load.
func (p *Pool) SwapScheduler(next Scheduler) error {
	if next == nil {
		return fmt.Errorf("resources: nil scheduler")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		it := p.sched.Pop()
		if it == nil {
			break
		}
		next.Push(it)
	}
	p.sched = next
	p.cond.Broadcast()
	return nil
}

// SchedulerName reports the active policy name.
func (p *Pool) SchedulerName() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sched.Name()
}

// Pending reports queued (not yet running) items.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sched.Len()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for !p.stopped && p.sched.Len() == 0 {
			p.cond.Wait()
		}
		if p.stopped && (!p.draining || p.sched.Len() == 0) {
			p.mu.Unlock()
			return
		}
		it := p.sched.Pop()
		p.mu.Unlock()
		if it == nil {
			continue
		}
		start := time.Now()
		it.Run()
		it.Task.recordRun(time.Since(start))
	}
}

// Stop shuts the pool down and waits for all workers to exit. When drain
// is true, queued items are executed first; otherwise they are abandoned.
// Stop is idempotent.
func (p *Pool) Stop(drain bool) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.draining = drain
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
