package resources

import "container/heap"

// WorkItem is one schedulable unit: a function attributed to a task.
type WorkItem struct {
	Task *Task
	Run  func()
	seq  uint64 // FIFO tie-break, assigned by the pool
}

// Scheduler orders work items for a worker pool. Implementations are the
// "pluggable schedulers" of the paper's thread-management CF: the pool is
// configured with one at construction and it can be swapped while quiesced.
// Schedulers are NOT safe for concurrent use; the pool serialises access.
type Scheduler interface {
	// Name identifies the policy ("fifo", "priority", "wfq").
	Name() string
	// Push enqueues an item.
	Push(it *WorkItem)
	// Pop dequeues the next item per policy, or nil when empty.
	Pop() *WorkItem
	// Len reports queued items.
	Len() int
}

// ---------------------------------------------------------------------------
// FIFO

// FIFOScheduler serves items strictly in arrival order.
type FIFOScheduler struct {
	q []*WorkItem
}

// NewFIFOScheduler returns an empty FIFO policy.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Name implements Scheduler.
func (s *FIFOScheduler) Name() string { return "fifo" }

// Push implements Scheduler.
func (s *FIFOScheduler) Push(it *WorkItem) { s.q = append(s.q, it) }

// Pop implements Scheduler.
func (s *FIFOScheduler) Pop() *WorkItem {
	if len(s.q) == 0 {
		return nil
	}
	it := s.q[0]
	s.q[0] = nil
	s.q = s.q[1:]
	return it
}

// Len implements Scheduler.
func (s *FIFOScheduler) Len() int { return len(s.q) }

// ---------------------------------------------------------------------------
// Priority

// PriorityScheduler serves the highest task priority first; FIFO within a
// priority level.
type PriorityScheduler struct {
	h prioHeap
}

// NewPriorityScheduler returns an empty priority policy.
func NewPriorityScheduler() *PriorityScheduler { return &PriorityScheduler{} }

// Name implements Scheduler.
func (s *PriorityScheduler) Name() string { return "priority" }

// Push implements Scheduler.
func (s *PriorityScheduler) Push(it *WorkItem) { heap.Push(&s.h, it) }

// Pop implements Scheduler.
func (s *PriorityScheduler) Pop() *WorkItem {
	if s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*WorkItem)
}

// Len implements Scheduler.
func (s *PriorityScheduler) Len() int { return s.h.Len() }

type prioHeap []*WorkItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	pi, pj := h[i].Task.Priority(), h[j].Task.Priority()
	if pi != pj {
		return pi > pj // higher priority first
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(*WorkItem)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ---------------------------------------------------------------------------
// Weighted fair (stride scheduling)

// strideOne is the stride numerator; pass advances by strideOne/weight per
// dispatch, so a task with twice the weight receives twice the service.
const strideOne = 1 << 20

// WFQScheduler implements stride scheduling across tasks: each task has a
// virtual "pass"; the runnable task with the smallest pass is served and
// its pass advances inversely to its weight.
type WFQScheduler struct {
	queues map[*Task][]*WorkItem
	pass   map[*Task]uint64
	global uint64 // min pass floor so newly-busy tasks don't starve others
	n      int
}

// NewWFQScheduler returns an empty weighted-fair policy.
func NewWFQScheduler() *WFQScheduler {
	return &WFQScheduler{
		queues: make(map[*Task][]*WorkItem),
		pass:   make(map[*Task]uint64),
	}
}

// Name implements Scheduler.
func (s *WFQScheduler) Name() string { return "wfq" }

// Push implements Scheduler.
func (s *WFQScheduler) Push(it *WorkItem) {
	q := s.queues[it.Task]
	if len(q) == 0 {
		// Task becomes runnable: charge it at least the global floor so it
		// cannot bank service while idle.
		if s.pass[it.Task] < s.global {
			s.pass[it.Task] = s.global
		}
	}
	s.queues[it.Task] = append(q, it)
	s.n++
}

// Pop implements Scheduler.
func (s *WFQScheduler) Pop() *WorkItem {
	if s.n == 0 {
		return nil
	}
	var best *Task
	var bestPass uint64
	var bestSeq uint64
	for task, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		p := s.pass[task]
		if best == nil || p < bestPass || (p == bestPass && q[0].seq < bestSeq) {
			best, bestPass, bestSeq = task, p, q[0].seq
		}
	}
	q := s.queues[best]
	it := q[0]
	q[0] = nil
	if len(q) == 1 {
		delete(s.queues, best)
	} else {
		s.queues[best] = q[1:]
	}
	s.n--
	s.pass[best] = bestPass + strideOne/uint64(best.Weight())
	if bestPass > s.global {
		s.global = bestPass
	}
	return it
}

// Len implements Scheduler.
func (s *WFQScheduler) Len() int { return s.n }
