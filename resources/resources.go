// Package resources implements the paper's resources meta-model
// ([Blair,99], §2): a privileged, per-capsule component framework giving
// fine-grained control over the resourcing of dynamically-delineable units
// of work called tasks. Tasks are deliberately orthogonal to the component
// architecture — a task may account for work spanning many components, and
// one component may serve many tasks.
//
// "Resources" subsume threads (worker pools with pluggable schedulers),
// memory (byte budgets charged/released around allocations), network
// bandwidth (token buckets) and abstract application-defined units of
// allocation (named counted capacities).
//
// # Relation to the data path
//
// The meta-model meters the router's batched fast path without changing
// its ownership rules: a token bucket admits each packet of a PushBatch
// individually (bytes are bytes, batched or not — see TokenShaper in the
// router package), and memory budgets cap the live buffers a pipeline may
// hold, not who holds them. Slice recycling (the [][]byte batch pools in
// internal/buffers, the []*Packet pools in the router package) is
// deliberately outside budget accounting: pooled batch headers carry no
// payload, so charging them would double-count the buffers they point at.
// The contract is the router package's: batch slices belong to their
// caller, packets to whoever was pushed them — budgets follow the packet,
// never the slice.
package resources

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors.
var (
	// ErrTaskExists indicates a duplicate task name.
	ErrTaskExists = errors.New("resources: task exists")
	// ErrTaskNotFound indicates an unknown task.
	ErrTaskNotFound = errors.New("resources: task not found")
	// ErrBudgetExceeded indicates a memory/abstract charge above budget.
	ErrBudgetExceeded = errors.New("resources: budget exceeded")
	// ErrPoolStopped indicates a submit to a stopped pool.
	ErrPoolStopped = errors.New("resources: pool stopped")
	// ErrNoSuchResource indicates an unknown abstract resource name.
	ErrNoSuchResource = errors.New("resources: no such abstract resource")
)

// Task is a unit of resource accounting. All fields are managed through
// methods; Tasks are safe for concurrent use.
type Task struct {
	name     string
	weight   int // scheduler weight (WFQ) — higher = more service
	priority int // scheduler priority — higher = sooner

	memBudget int64 // bytes; 0 = unlimited
	memUsed   atomic.Int64

	jobs     atomic.Uint64 // work items completed
	busy     atomic.Int64  // cumulative execution time, ns
	memPeak  atomic.Int64
	rejected atomic.Uint64 // charges refused

	abstract sync.Map // name -> *int64 (used), capacity in manager
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Weight returns the task's WFQ weight.
func (t *Task) Weight() int { return t.weight }

// Priority returns the task's priority.
func (t *Task) Priority() int { return t.priority }

// ChargeMemory accounts n bytes against the task's memory budget,
// refusing with ErrBudgetExceeded when the budget would be passed. The
// buffer-management CF calls this around pooled allocations.
func (t *Task) ChargeMemory(n int64) error {
	if n < 0 {
		return fmt.Errorf("resources: negative charge %d", n)
	}
	for {
		cur := t.memUsed.Load()
		next := cur + n
		if t.memBudget > 0 && next > t.memBudget {
			t.rejected.Add(1)
			return fmt.Errorf("resources: task %q: %d+%d > %d: %w",
				t.name, cur, n, t.memBudget, ErrBudgetExceeded)
		}
		if t.memUsed.CompareAndSwap(cur, next) {
			for {
				peak := t.memPeak.Load()
				if next <= peak || t.memPeak.CompareAndSwap(peak, next) {
					break
				}
			}
			return nil
		}
	}
}

// ReleaseMemory returns n bytes to the budget.
func (t *Task) ReleaseMemory(n int64) {
	if n < 0 {
		return
	}
	if after := t.memUsed.Add(-n); after < 0 {
		// Releasing more than charged is a plug-in bug; clamp and count.
		t.memUsed.Store(0)
		t.rejected.Add(1)
	}
}

// TaskStats is a snapshot of per-task accounting.
type TaskStats struct {
	Name      string
	Jobs      uint64
	BusyNanos int64
	MemUsed   int64
	MemPeak   int64
	Rejected  uint64
}

// Stats returns the task's counters.
func (t *Task) Stats() TaskStats {
	return TaskStats{
		Name:      t.name,
		Jobs:      t.jobs.Load(),
		BusyNanos: t.busy.Load(),
		MemUsed:   t.memUsed.Load(),
		MemPeak:   t.memPeak.Load(),
		Rejected:  t.rejected.Load(),
	}
}

// recordRun is called by worker pools after executing an item.
func (t *Task) recordRun(d time.Duration) {
	t.jobs.Add(1)
	t.busy.Add(int64(d))
}

// TaskSpec configures a new task.
type TaskSpec struct {
	Name      string
	Weight    int   // WFQ weight; default 1
	Priority  int   // priority-scheduler rank; default 0
	MemBudget int64 // bytes; 0 = unlimited
}

// abstractResource is a named counted capacity.
type abstractResource struct {
	capacity int64
	used     atomic.Int64
}

// Manager is the per-capsule resources meta-model instance: the task table
// plus the abstract resource pools.
type Manager struct {
	mu    sync.RWMutex
	tasks map[string]*Task
	abs   map[string]*abstractResource
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{tasks: make(map[string]*Task), abs: make(map[string]*abstractResource)}
}

// CreateTask registers a new task.
func (m *Manager) CreateTask(spec TaskSpec) (*Task, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("resources: empty task name")
	}
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tasks[spec.Name]; ok {
		return nil, fmt.Errorf("resources: %q: %w", spec.Name, ErrTaskExists)
	}
	t := &Task{
		name: spec.Name, weight: spec.Weight,
		priority: spec.Priority, memBudget: spec.MemBudget,
	}
	m.tasks[spec.Name] = t
	return t, nil
}

// Task returns the named task.
func (m *Manager) Task(name string) (*Task, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tasks[name]
	if !ok {
		return nil, fmt.Errorf("resources: %q: %w", name, ErrTaskNotFound)
	}
	return t, nil
}

// DeleteTask removes a task from the table (its outstanding accounting is
// abandoned — the caller owns quiescence).
func (m *Manager) DeleteTask(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tasks[name]; !ok {
		return fmt.Errorf("resources: %q: %w", name, ErrTaskNotFound)
	}
	delete(m.tasks, name)
	return nil
}

// Tasks returns all task names, sorted.
func (m *Manager) Tasks() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tasks))
	for n := range m.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefineAbstract creates a named abstract resource with the given capacity
// (the paper: "abstract, application-defined, units of allocation").
func (m *Manager) DefineAbstract(name string, capacity int64) error {
	if name == "" || capacity <= 0 {
		return fmt.Errorf("resources: bad abstract resource %q cap %d", name, capacity)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.abs[name]; ok {
		return fmt.Errorf("resources: abstract %q: %w", name, ErrTaskExists)
	}
	m.abs[name] = &abstractResource{capacity: capacity}
	return nil
}

// AcquireAbstract takes n units of the named resource.
func (m *Manager) AcquireAbstract(name string, n int64) error {
	m.mu.RLock()
	r, ok := m.abs[name]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("resources: %q: %w", name, ErrNoSuchResource)
	}
	for {
		cur := r.used.Load()
		if cur+n > r.capacity {
			return fmt.Errorf("resources: abstract %q %d+%d > %d: %w",
				name, cur, n, r.capacity, ErrBudgetExceeded)
		}
		if r.used.CompareAndSwap(cur, cur+n) {
			return nil
		}
	}
}

// ReleaseAbstract returns n units.
func (m *Manager) ReleaseAbstract(name string, n int64) error {
	m.mu.RLock()
	r, ok := m.abs[name]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("resources: %q: %w", name, ErrNoSuchResource)
	}
	if after := r.used.Add(-n); after < 0 {
		r.used.Store(0)
	}
	return nil
}

// AbstractUsage reports (used, capacity).
func (m *Manager) AbstractUsage(name string) (used, capacity int64, err error) {
	m.mu.RLock()
	r, ok := m.abs[name]
	m.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("resources: %q: %w", name, ErrNoSuchResource)
	}
	return r.used.Load(), r.capacity, nil
}
