package resources

import (
	"fmt"
	"sync"
	"time"
)

// TokenBucket is the bandwidth resource: a classic token bucket with a
// byte-per-second rate and a burst ceiling. The clock is injectable so
// shaping behaviour is testable deterministically.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time

	allowed atomic64
	denied  atomic64
}

// atomic64 is a tiny counter; separate type to keep TokenBucket copies
// detectable by vet (the mutex already does that).
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add() {
	a.mu.Lock()
	a.v++
	a.mu.Unlock()
}

func (a *atomic64) load() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// NewTokenBucket creates a bucket with the given rate (bytes/sec) and burst
// (bytes). A nil clock uses time.Now. The bucket starts full.
func NewTokenBucket(rate, burst float64, clock func() time.Time) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("resources: token bucket rate %f burst %f", rate, burst)
	}
	if clock == nil {
		clock = time.Now
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: clock(), now: clock}, nil
}

// Allow consumes n tokens if available, reporting whether the consumption
// happened. Non-conforming traffic is the caller's problem (drop or queue).
func (b *TokenBucket) Allow(n int) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if float64(n) <= b.tokens {
		b.tokens -= float64(n)
		b.allowed.add()
		return true
	}
	b.denied.add()
	return false
}

// SetRate retunes the fill rate (bytes/sec) of a live bucket: the
// resources meta-model's adaptation knob. Accumulated tokens are settled
// at the old rate first, so the change takes effect from now, not
// retroactively.
func (b *TokenBucket) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("resources: token bucket rate %f", rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	b.rate = rate
	return nil
}

// Rate reports the configured fill rate (bytes/sec).
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// Burst reports the configured burst ceiling (bytes).
func (b *TokenBucket) Burst() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.burst
}

// Tokens reports the current token level (after refill).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

// Stats reports (allowed, denied) decision counts.
func (b *TokenBucket) Stats() (allowed, denied uint64) {
	return b.allowed.load(), b.denied.load()
}

// refill adds tokens for elapsed time; caller holds the lock.
func (b *TokenBucket) refill() {
	now := b.now()
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
