package resources

import (
	"fmt"

	"netkit/internal/buffers"
)

// ShardedBufferPool partitions buffer capacity across per-shard pools so
// the replicas of a sharded data plane never contend on one pool's hot
// counters and free lists: each replica drains and refills only its own
// pool, keeping buffer recycling core-local. The resources meta-model
// still sees one budget — the per-shard live ceilings partition an overall
// ceiling, and Stats aggregates the shards — so accounting reads exactly
// like a single pool's.
type ShardedBufferPool struct {
	pools []*buffers.Pool
}

// NewShardedBufferPool creates shards independent pools with the given
// size classes and per-class free-list depth. maxLive caps live buffers
// across the whole set (0 = unlimited); it is partitioned evenly with the
// remainder spread over the first shards, so the aggregate ceiling is
// exactly maxLive.
func NewShardedBufferPool(shards int, classes []int, depth int, maxLive int64) (*ShardedBufferPool, error) {
	if shards < 1 {
		return nil, fmt.Errorf("resources: sharded pool needs >=1 shard, got %d", shards)
	}
	s := &ShardedBufferPool{pools: make([]*buffers.Pool, shards)}
	for i := range s.pools {
		per := int64(0)
		if maxLive > 0 {
			per = maxLive / int64(shards)
			if int64(i) < maxLive%int64(shards) {
				per++
			}
			if per == 0 {
				return nil, fmt.Errorf("resources: maxLive %d < %d shards", maxLive, shards)
			}
		}
		p, err := buffers.NewPool(classes, depth, per)
		if err != nil {
			return nil, err
		}
		s.pools[i] = p
	}
	return s, nil
}

// Shards returns the pool count.
func (s *ShardedBufferPool) Shards() int { return len(s.pools) }

// Shard returns shard i's private pool; hand it to that shard's replica
// (its NIC source, its packet-copy path) and to nothing else.
func (s *ShardedBufferPool) Shard(i int) *buffers.Pool { return s.pools[i] }

// Stats aggregates the per-shard counters into one pool-shaped snapshot.
func (s *ShardedBufferPool) Stats() buffers.Stats {
	var agg buffers.Stats
	for _, p := range s.pools {
		st := p.Stats()
		agg.Live += st.Live
		agg.Gets += st.Gets
		agg.Puts += st.Puts
		agg.Misses += st.Misses
		agg.Failures += st.Failures
	}
	return agg
}
