package resources

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustTask(t *testing.T, m *Manager, spec TaskSpec) *Task {
	t.Helper()
	task, err := m.CreateTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// ---- manager / tasks --------------------------------------------------------

func TestCreateAndLookupTask(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "fwd", Weight: 3, Priority: 2})
	if task.Name() != "fwd" || task.Weight() != 3 || task.Priority() != 2 {
		t.Fatalf("task = %+v", task)
	}
	got, err := m.Task("fwd")
	if err != nil || got != task {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := m.Task("nope"); !errors.Is(err, ErrTaskNotFound) {
		t.Fatalf("want ErrTaskNotFound, got %v", err)
	}
	if _, err := m.CreateTask(TaskSpec{Name: "fwd"}); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("want ErrTaskExists, got %v", err)
	}
	if _, err := m.CreateTask(TaskSpec{}); err == nil {
		t.Fatal("want error for empty name")
	}
	if names := m.Tasks(); len(names) != 1 || names[0] != "fwd" {
		t.Fatalf("tasks = %v", names)
	}
}

func TestDeleteTask(t *testing.T) {
	m := NewManager()
	mustTask(t, m, TaskSpec{Name: "a"})
	if err := m.DeleteTask("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteTask("a"); !errors.Is(err, ErrTaskNotFound) {
		t.Fatalf("want ErrTaskNotFound, got %v", err)
	}
}

func TestDefaultWeight(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "w0", Weight: 0})
	if task.Weight() != 1 {
		t.Fatalf("weight = %d, want defaulted 1", task.Weight())
	}
}

// ---- memory budget ------------------------------------------------------------

func TestMemoryBudgetEnforced(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "mem", MemBudget: 100})
	if err := task.ChargeMemory(60); err != nil {
		t.Fatal(err)
	}
	if err := task.ChargeMemory(41); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if err := task.ChargeMemory(40); err != nil {
		t.Fatal(err)
	}
	task.ReleaseMemory(50)
	if err := task.ChargeMemory(50); err != nil {
		t.Fatal(err)
	}
	s := task.Stats()
	if s.MemUsed != 100 || s.MemPeak != 100 || s.Rejected != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemoryUnlimitedByDefault(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "mem"})
	if err := task.ChargeMemory(1 << 40); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryOverReleaseClamps(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "mem", MemBudget: 10})
	if err := task.ChargeMemory(5); err != nil {
		t.Fatal(err)
	}
	task.ReleaseMemory(50)
	if used := task.Stats().MemUsed; used != 0 {
		t.Fatalf("used = %d after over-release", used)
	}
	if task.Stats().Rejected == 0 {
		t.Fatal("over-release not counted")
	}
}

func TestNegativeChargeRejected(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "mem"})
	if err := task.ChargeMemory(-1); err == nil {
		t.Fatal("want error")
	}
}

func TestConcurrentMemoryAccounting(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "mem", MemBudget: 1000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if task.ChargeMemory(10) == nil {
					task.ReleaseMemory(10)
				}
			}
		}()
	}
	wg.Wait()
	if used := task.Stats().MemUsed; used != 0 {
		t.Fatalf("leaked %d bytes", used)
	}
}

// ---- abstract resources ----------------------------------------------------------

func TestAbstractResources(t *testing.T) {
	m := NewManager()
	if err := m.DefineAbstract("flows", 3); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineAbstract("flows", 3); !errors.Is(err, ErrTaskExists) {
		t.Fatalf("want ErrTaskExists, got %v", err)
	}
	if err := m.DefineAbstract("", 3); err == nil {
		t.Fatal("want error for empty name")
	}
	if err := m.AcquireAbstract("flows", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireAbstract("flows", 2); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	used, capacity, err := m.AbstractUsage("flows")
	if err != nil || used != 2 || capacity != 3 {
		t.Fatalf("usage = %d/%d %v", used, capacity, err)
	}
	if err := m.ReleaseAbstract("flows", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireAbstract("flows", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireAbstract("ghost", 1); !errors.Is(err, ErrNoSuchResource) {
		t.Fatalf("want ErrNoSuchResource, got %v", err)
	}
	if err := m.ReleaseAbstract("ghost", 1); !errors.Is(err, ErrNoSuchResource) {
		t.Fatalf("want ErrNoSuchResource, got %v", err)
	}
	if _, _, err := m.AbstractUsage("ghost"); !errors.Is(err, ErrNoSuchResource) {
		t.Fatalf("want ErrNoSuchResource, got %v", err)
	}
}

// ---- schedulers -------------------------------------------------------------------

func item(task *Task, seq uint64) *WorkItem {
	return &WorkItem{Task: task, Run: func() {}, seq: seq}
}

func TestFIFOOrder(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	s := NewFIFOScheduler()
	for i := uint64(1); i <= 5; i++ {
		s.Push(item(task, i))
	}
	for i := uint64(1); i <= 5; i++ {
		it := s.Pop()
		if it == nil || it.seq != i {
			t.Fatalf("pop %d = %+v", i, it)
		}
	}
	if s.Pop() != nil {
		t.Fatal("pop from empty")
	}
	if s.Name() != "fifo" {
		t.Fatal("name")
	}
}

func TestPriorityOrder(t *testing.T) {
	m := NewManager()
	lo := mustTask(t, m, TaskSpec{Name: "lo", Priority: 1})
	hi := mustTask(t, m, TaskSpec{Name: "hi", Priority: 9})
	s := NewPriorityScheduler()
	s.Push(item(lo, 1))
	s.Push(item(lo, 2))
	s.Push(item(hi, 3))
	s.Push(item(hi, 4))
	order := []*Task{hi, hi, lo, lo}
	seqs := []uint64{3, 4, 1, 2}
	for i, want := range order {
		it := s.Pop()
		if it.Task != want || it.seq != seqs[i] {
			t.Fatalf("pop %d = task %s seq %d", i, it.Task.Name(), it.seq)
		}
	}
	if s.Len() != 0 || s.Pop() != nil {
		t.Fatal("not empty")
	}
	if s.Name() != "priority" {
		t.Fatal("name")
	}
}

func TestWFQProportionalService(t *testing.T) {
	m := NewManager()
	heavy := mustTask(t, m, TaskSpec{Name: "heavy", Weight: 3})
	light := mustTask(t, m, TaskSpec{Name: "light", Weight: 1})
	s := NewWFQScheduler()
	seq := uint64(0)
	for i := 0; i < 400; i++ {
		seq++
		s.Push(item(heavy, seq))
		seq++
		s.Push(item(light, seq))
	}
	// Serve 200 items; heavy should get ~3x light's service.
	served := map[*Task]int{}
	for i := 0; i < 200; i++ {
		it := s.Pop()
		served[it.Task]++
	}
	h, l := served[heavy], served[light]
	if h < l*2 {
		t.Fatalf("service ratio h=%d l=%d, want ~3:1", h, l)
	}
	if l == 0 {
		t.Fatal("light task starved")
	}
}

func TestWFQIdleTaskDoesNotBankCredit(t *testing.T) {
	m := NewManager()
	a := mustTask(t, m, TaskSpec{Name: "a", Weight: 1})
	b := mustTask(t, m, TaskSpec{Name: "b", Weight: 1})
	s := NewWFQScheduler()
	seq := uint64(0)
	push := func(task *Task) {
		seq++
		s.Push(item(task, seq))
	}
	// a runs alone for a while, advancing its pass.
	for i := 0; i < 100; i++ {
		push(a)
	}
	for i := 0; i < 100; i++ {
		s.Pop()
	}
	// b wakes up; it must not monopolise service to "catch up".
	for i := 0; i < 100; i++ {
		push(a)
		push(b)
	}
	served := map[*Task]int{}
	for i := 0; i < 100; i++ {
		served[s.Pop().Task]++
	}
	if served[a] < 30 || served[b] < 30 {
		t.Fatalf("post-idle service skew: a=%d b=%d", served[a], served[b])
	}
}

func TestWFQEmptyPop(t *testing.T) {
	s := NewWFQScheduler()
	if s.Pop() != nil || s.Len() != 0 {
		t.Fatal("empty scheduler misbehaved")
	}
	if s.Name() != "wfq" {
		t.Fatal("name")
	}
}

// Property: every scheduler conserves items — what goes in comes out
// exactly once, regardless of interleaving.
func TestQuickSchedulerConservation(t *testing.T) {
	m := NewManager()
	tasks := []*Task{
		mustTask(t, m, TaskSpec{Name: "q1", Weight: 1, Priority: 1}),
		mustTask(t, m, TaskSpec{Name: "q2", Weight: 2, Priority: 5}),
		mustTask(t, m, TaskSpec{Name: "q3", Weight: 7, Priority: 3}),
	}
	mk := []func() Scheduler{
		func() Scheduler { return NewFIFOScheduler() },
		func() Scheduler { return NewPriorityScheduler() },
		func() Scheduler { return NewWFQScheduler() },
	}
	check := func(ops []uint8, which uint8) bool {
		s := mk[int(which)%len(mk)]()
		seen := map[uint64]bool{}
		var pushed, popped int
		seq := uint64(0)
		for _, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				seq++
				s.Push(item(tasks[int(op)%len(tasks)], seq))
				pushed++
			} else {
				if it := s.Pop(); it != nil {
					if seen[it.seq] {
						return false // duplicate delivery
					}
					seen[it.seq] = true
					popped++
				}
			}
			if s.Len() != pushed-popped {
				return false
			}
		}
		for {
			it := s.Pop()
			if it == nil {
				break
			}
			if seen[it.seq] {
				return false
			}
			seen[it.seq] = true
			popped++
		}
		return pushed == popped
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ---- pool ------------------------------------------------------------------------

func TestPoolExecutesAndAccounts(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(4, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(task, func() {
			defer wg.Done()
			mu.Lock()
			count++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Stop(false)
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if task.Stats().Jobs != 100 {
		t.Fatalf("jobs = %d", task.Stats().Jobs)
	}
}

func TestPoolStopDrain(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(1, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ran := 0
	block := make(chan struct{})
	if err := p.Submit(task, func() { <-block }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Submit(task, func() {
			mu.Lock()
			ran++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	p.Stop(true)
	mu.Lock()
	defer mu.Unlock()
	if ran != 10 {
		t.Fatalf("drained %d of 10", ran)
	}
}

func TestPoolStopAbandons(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(1, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(task, func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran sync.Map
	for i := 0; i < 5; i++ {
		if err := p.Submit(task, func() { ran.Store("x", true) }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	p.Stop(false)
	if _, found := ran.Load("x"); found && p.Pending() == 0 {
		// Some queued work may have raced in before stop; that's acceptable —
		// the assertion is that Stop returned with all workers exited.
		return
	}
}

func TestPoolSubmitAfterStop(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(1, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	p.Stop(false)
	if err := p.Submit(task, func() {}); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("want ErrPoolStopped, got %v", err)
	}
	p.Stop(false) // idempotent
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, NewFIFOScheduler()); err == nil {
		t.Fatal("want error for 0 workers")
	}
	if _, err := NewPool(1, nil); err == nil {
		t.Fatal("want error for nil scheduler")
	}
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(1, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop(false)
	if err := p.Submit(nil, func() {}); err == nil {
		t.Fatal("want error for nil task")
	}
	if err := p.Submit(task, nil); err == nil {
		t.Fatal("want error for nil fn")
	}
}

func TestPoolSwapSchedulerUnderLoad(t *testing.T) {
	m := NewManager()
	task := mustTask(t, m, TaskSpec{Name: "t"})
	p, err := NewPool(2, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		if err := p.Submit(task, func() { defer wg.Done(); time.Sleep(time.Microsecond) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SwapScheduler(NewWFQScheduler()); err != nil {
		t.Fatal(err)
	}
	if got := p.SchedulerName(); got != "wfq" {
		t.Fatalf("scheduler = %q", got)
	}
	wg.Wait()
	p.Stop(false)
	if task.Stats().Jobs != 200 {
		t.Fatalf("jobs = %d: items lost across swap", task.Stats().Jobs)
	}
}

func TestPoolSwapNil(t *testing.T) {
	p, err := NewPool(1, NewFIFOScheduler())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop(false)
	if err := p.SwapScheduler(nil); err == nil {
		t.Fatal("want error")
	}
}

// ---- token bucket -------------------------------------------------------------------

func TestTokenBucketConformance(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b, err := NewTokenBucket(1000, 500, clock) // 1000 B/s, 500 B burst
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(500) {
		t.Fatal("burst not available")
	}
	if b.Allow(1) {
		t.Fatal("over-burst allowed")
	}
	now = now.Add(100 * time.Millisecond) // +100 tokens
	if !b.Allow(100) {
		t.Fatal("refilled tokens unavailable")
	}
	if b.Allow(1) {
		t.Fatal("tokens over-refilled")
	}
	now = now.Add(10 * time.Second) // cap at burst
	if got := b.Tokens(); got != 500 {
		t.Fatalf("tokens = %f, want capped 500", got)
	}
	allowed, denied := b.Stats()
	if allowed != 2 || denied != 2 {
		t.Fatalf("stats = %d/%d", allowed, denied)
	}
}

func TestTokenBucketZeroAndNegative(t *testing.T) {
	b, err := NewTokenBucket(10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0) || !b.Allow(-5) {
		t.Fatal("non-positive requests should be free")
	}
	if _, err := NewTokenBucket(0, 1, nil); err == nil {
		t.Fatal("want error for zero rate")
	}
	if _, err := NewTokenBucket(1, 0, nil); err == nil {
		t.Fatal("want error for zero burst")
	}
}

// Property: over any sequence of draws and waits, cumulative allowed bytes
// never exceed burst + rate * elapsed (the token bucket conformance bound).
func TestQuickTokenBucketBound(t *testing.T) {
	check := func(draws []uint16, waitsMs []uint8) bool {
		now := time.Unix(0, 0)
		clock := func() time.Time { return now }
		const rate, burst = 1000.0, 800.0
		b, err := NewTokenBucket(rate, burst, clock)
		if err != nil {
			return false
		}
		start := now
		var allowed float64
		for i, d := range draws {
			if i < len(waitsMs) {
				now = now.Add(time.Duration(waitsMs[i]) * time.Millisecond)
			}
			n := int(d) % 1000
			if b.Allow(n) {
				allowed += float64(n)
			}
			elapsed := now.Sub(start).Seconds()
			if allowed > burst+rate*elapsed+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedBufferPoolValidation(t *testing.T) {
	if _, err := NewShardedBufferPool(0, []int{128}, 4, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewShardedBufferPool(2, nil, 4, 0); err == nil {
		t.Fatal("empty classes accepted")
	}
	if _, err := NewShardedBufferPool(4, []int{128}, 4, 2); err == nil {
		t.Fatal("ceiling below one per shard accepted")
	}
}

// TestShardedBufferPoolPartitioning proves shard independence and exact
// ceiling partitioning: each shard enforces its share of maxLive, and the
// aggregate Stats read like one pool's.
func TestShardedBufferPoolPartitioning(t *testing.T) {
	s, err := NewShardedBufferPool(3, []int{128}, 4, 7) // shares 3,2,2
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 {
		t.Fatalf("shards = %d", s.Shards())
	}
	wantShare := []int{3, 2, 2}
	for i, want := range wantShare {
		p := s.Shard(i)
		for j := 0; j < want; j++ {
			if _, err := p.Get(64); err != nil {
				t.Fatalf("shard %d get %d: %v", i, j, err)
			}
		}
		if _, err := p.Get(64); err == nil {
			t.Fatalf("shard %d exceeded its share of the ceiling", i)
		}
	}
	st := s.Stats()
	if st.Live != 7 || st.Gets != 7 || st.Failures != 3 {
		t.Fatalf("aggregate stats %+v", st)
	}
	// One shard's exhaustion never borrows from another: shard 0's
	// failure count is its own.
	if s.Shard(0).Stats().Failures != 1 {
		t.Fatalf("shard 0 stats %+v", s.Shard(0).Stats())
	}
}
