// nkload runs the scenario-driver load harness against the standard
// capsule topologies and gates the numbers against a committed baseline.
//
// Usage:
//
//	nkload -list                               # show available scenarios
//	nkload                                     # run the full suite, human summary
//	nkload -scenarios stream/fused,rr/sharded  # run a selection
//	nkload -json                               # uniform result document on stdout
//	nkload -out BENCH_seed.json                # write the document to a file
//	nkload -baseline BENCH_seed.json -tolerance 5
//	                                           # compare against a baseline and
//	                                           # exit 1 on regression (CI gate)
//	nkload -throttle 5ms ...                   # artificially stalled run, for
//	                                           # proving the gate trips
//
// The tolerance is the default adverse-movement budget in percent;
// metrics carrying their own tolerance in the baseline document (latency
// quantiles, B/op) keep it. See DESIGN.md §6 for the result schema and
// gate semantics.
//
// Exit status: 0 clean, 2 when the regression gate failed (the run and
// comparison themselves succeeded), 1 on any other error — so CI can
// tell "regression" from "broken harness".
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"netkit/nkload"
	"netkit/nkload/drivers"
	"netkit/nkload/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nkload:", err)
		if errors.Is(err, errGate) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errGate distinguishes "the gate failed" (already reported) from real
// errors.
var errGate = fmt.Errorf("regression gate failed")

func run() error {
	var (
		list      = flag.Bool("list", false, "list scenarios and exit")
		scenarios = flag.String("scenarios", "all", "comma-separated scenario selection")
		jsonOut   = flag.Bool("json", false, "print the result document as JSON")
		out       = flag.String("out", "", "write the result document to this file")
		baseline  = flag.String("baseline", "", "compare against this baseline document")
		tolerance = flag.Float64("tolerance", 5, "default adverse-movement tolerance, percent")
		duration  = flag.Duration("duration", 300*time.Millisecond, "offered-load time per scenario")
		batch     = flag.Int("batch", 64, "frames per inject batch")
		flows     = flag.Int("flows", 64, "generated flow population")
		shards    = flag.Int("shards", 4, "lanes in sharded topologies")
		seed      = flag.Uint64("seed", 1, "traffic generator seed")
		throttle  = flag.Duration("throttle", 0, "artificial stall before every inject (gate self-test)")
	)
	flag.Parse()

	if *list {
		for _, sc := range drivers.Suite() {
			fmt.Printf("%-16s driver=%s\n", sc.Name, sc.Driver.Name())
		}
		for _, sc := range drivers.Extras() {
			fmt.Printf("%-16s driver=%s  (opt-in: excluded from 'all')\n", sc.Name, sc.Driver.Name())
		}
		return nil
	}

	scs, err := drivers.ByName(*scenarios)
	if err != nil {
		return err
	}
	opts := nkload.Options{
		Duration: *duration,
		Batch:    *batch,
		Flows:    *flows,
		Shards:   *shards,
		Seed:     *seed,
		Throttle: *throttle,
	}
	doc, err := nkload.Run(scs, opts)
	if err != nil {
		return err
	}

	if *out != "" {
		if err := doc.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nkload: wrote %s\n", *out)
	}
	if *jsonOut {
		if err := doc.Encode(os.Stdout); err != nil {
			return err
		}
	} else {
		summarize(doc)
	}

	if *baseline != "" {
		base, err := results.Load(*baseline)
		if err != nil {
			return err
		}
		rep := results.Compare(base, doc, *tolerance)
		fmt.Print(rep.String())
		if rep.Failed() {
			return errGate
		}
	}
	return nil
}

// summarize prints the human one-line-per-scenario table.
func summarize(doc *results.Document) {
	fmt.Printf("%-16s %10s %10s %12s %12s %12s %10s\n",
		"SCENARIO", "KPPS", "DROPS", "P50(us)", "P99(us)", "P999(us)", "B/OP")
	for _, r := range doc.Results {
		get := func(name string) float64 {
			m, _ := r.Metric(name)
			return m.Value
		}
		fmt.Printf("%-16s %10.1f %10.0f %12.1f %12.1f %12.1f %10.1f\n",
			r.Scenario, get("kpps"), get("drops"),
			get("p50_ns")/1e3, get("p99_ns")/1e3, get("p999_ns")/1e3, get("b_op"))
	}
}
