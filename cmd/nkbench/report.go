// The nkbench reporting layer, split from the experiment code: human
// tables on the one hand, and on the other the structured -json path,
// which emits the uniform result document shared with the nkload harness
// (nkload/results). One experiment becomes one Result keyed by its ID;
// each record() call becomes one Metric, with any labels flattened into
// the metric name ("forwarding_netkit{chain=4}") so the (scenario,
// metric) pair stays a stable comparison key for results.Compare.
package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"netkit/internal/trace"
	"netkit/nkload/results"
	"netkit/router"
)

var (
	jsonOut bool
	doc     = results.Document{Suite: "nkbench"}
)

// printf writes a human-readable table line, suppressed under -json.
func printf(format string, a ...any) {
	if !jsonOut {
		fmt.Printf(format, a...)
	}
}

// header opens an experiment: the human banner and the result document
// entry every subsequent record() lands in.
func header(id, claim string) {
	doc.Results = append(doc.Results, results.Result{
		Scenario: id,
		Driver:   "nkbench",
		Config:   map[string]string{"claim": claim},
	})
	printf("=== %s — %s\n", id, claim)
}

// record appends one structured metric under the current experiment.
func record(name string, value float64, unit string, labels map[string]string) {
	r := &doc.Results[len(doc.Results)-1]
	r.Metrics = append(r.Metrics, results.Metric{
		Name:   flatName(name, labels),
		Unit:   unit,
		Value:  value,
		Better: betterFor(unit),
	})
}

// flatName folds labels into the metric name with deterministic key order.
func flatName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := name + "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + labels[k]
	}
	return s + "}"
}

// betterFor infers the gate direction from the unit: throughput improves
// upward, times downward; everything else is informational (compared but
// never gated — nkbench numbers span microbenchmarks too noisy to gate by
// default, so thresholds are opt-in via a baseline document's tolerances).
func betterFor(unit string) string {
	switch unit {
	case "kpps":
		return results.BetterHigher
	case "ns", "ns/op", "ns/lookup":
		return results.BetterLower
	}
	return ""
}

// emitJSON writes the collected result document with the host envelope.
func emitJSON(w io.Writer) error {
	doc.Config = map[string]string{
		"timestamp": time.Now().UTC().Format(time.RFC3339),
		"go":        runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
		"cpus":      fmt.Sprint(runtime.NumCPU()),
	}
	return doc.Encode(w)
}

// measure runs fn n times and returns ns/op.
func measure(n int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func mustPacket(dstPort uint16) *router.Packet {
	gen, err := trace.NewGenerator(trace.Config{Seed: 11, Flows: 1, UDPShare: 100})
	if err != nil {
		panic(err)
	}
	raw, err := gen.NextFixed(64)
	if err != nil {
		panic(err)
	}
	return router.NewPacket(raw)
}
