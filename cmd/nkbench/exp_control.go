// Control-plane experiments: reconfiguration, coordination, adaptation.
// E4 lossless hot-swap, E7 IXP1200 placement, E8 reservation signaling,
// E9 virtual-network spawning, E13 closed-loop adaptation.
package main

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"netkit/adapt"
	"netkit/core"
	"netkit/internal/baseline"
	"netkit/internal/coord"
	"netkit/internal/ixp"
	"netkit/internal/netsim"
	"netkit/internal/trace"
	"netkit/router"
)

func e4Reconfigure() {
	header("E4", "run-time reconfiguration: lossless hot-swap vs Click rebuild")
	capsule := core.NewCapsule("e4")
	head := router.NewCounter()
	mid := router.NewCounter()
	tail := router.NewCounter()
	must(capsule.Insert("head", head))
	must(capsule.Insert("mid", mid))
	must(capsule.Insert("tail", tail))
	_, err := router.ConnectPush(capsule, "head", "out", "mid")
	must(err)
	_, err = router.ConnectPush(capsule, "mid", "out", "tail")
	must(err)

	const total = 100_000
	done := make(chan int)
	go func() {
		sent := 0
		for i := 0; i < total; i++ {
			if head.Push(mustPacket(1)) == nil {
				sent++
			}
		}
		done <- sent
	}()
	swapStart := time.Now()
	must(router.HotSwap(capsule, "mid", "mid2", router.NewCounter()))
	swapNs := time.Since(swapStart)
	sent := <-done
	received := tail.ElemStats().In
	printf("netkit hot-swap latency       %10v\n", swapNs)
	record("hotswap_latency", float64(swapNs.Nanoseconds()), "ns", nil)
	printf("packets sent during swap      %10d\n", sent)
	record("packets_sent", float64(sent), "packets", nil)
	printf("packets received              %10d (lost %d)\n", received, uint64(sent)-received)
	record("packets_lost", float64(uint64(sent)-received), "packets", nil)

	// Click: reconfiguration is a rebuild; anything queued is abandoned.
	var c1, c2 uint64
	click := baseline.NewClickRouter()
	must(click.Add(baseline.CountPkts(&c1)))
	must(click.Build())
	rebuildStart := time.Now()
	click2, err := click.Reconfigure(0, baseline.CountPkts(&c2))
	must(err)
	rebuildNs := time.Since(rebuildStart)
	_ = click2
	printf("click rebuild latency         %10v (state lost by construction)\n", rebuildNs)
	record("click_rebuild_latency", float64(rebuildNs.Nanoseconds()), "ns", nil)
}

// ---------------------------------------------------------------------------

func e7Placement() {
	header("E7", "IXP1200 placement meta-model: strategy and engine-count sweeps")
	pipe := ixp.StandardPipeline()
	chip := ixp.DefaultIXP1200()
	strategies := []struct {
		name string
		mk   func() ixp.Assignment
	}{
		{"all-on-strongarm", func() ixp.Assignment { return ixp.PlaceAllControl(pipe) }},
		{"round-robin", func() ixp.Assignment { return ixp.PlaceRoundRobin(chip, pipe) }},
		{"greedy", func() ixp.Assignment { return ixp.PlaceGreedy(chip, pipe) }},
	}
	for _, s := range strategies {
		rep, err := ixp.Evaluate(chip, pipe, s.mk())
		must(err)
		printf("%-20s %12.0f kpps   bottleneck %s\n",
			s.name, rep.ThroughputPPS/1e3, rep.Bottleneck)
		record("placement", rep.ThroughputPPS/1e3, "kpps",
			map[string]string{"strategy": s.name, "bottleneck": fmt.Sprint(rep.Bottleneck)})
	}
	// Rebalance from a bad start.
	bad := make(ixp.Assignment)
	for _, st := range pipe {
		bad[st.Name] = ixp.Target{Engine: 0}
	}
	mgr, err := ixp.NewManager(chip, pipe, bad)
	must(err)
	before, err := mgr.Evaluate()
	must(err)
	moves, err := mgr.Rebalance(16)
	must(err)
	after, err := mgr.Evaluate()
	must(err)
	printf("%-20s %12.0f -> %.0f kpps in %d migrations\n",
		"manager rebalance", before.ThroughputPPS/1e3, after.ThroughputPPS/1e3, moves)
	record("rebalance_after", after.ThroughputPPS/1e3, "kpps",
		map[string]string{"migrations": fmt.Sprint(moves)})

	printf("%-8s %14s\n", "engines", "greedy kpps")
	for engines := 1; engines <= 6; engines++ {
		c := chip
		c.Engines = engines
		rep, err := ixp.Evaluate(c, pipe, ixp.PlaceGreedy(c, pipe))
		must(err)
		printf("%-8d %14.0f\n", engines, rep.ThroughputPPS/1e3)
		record("placement_greedy_sweep", rep.ThroughputPPS/1e3, "kpps",
			map[string]string{"engines": fmt.Sprint(engines)})
	}
}

// ---------------------------------------------------------------------------

func e8Signaling() {
	header("E8", "RSVP-like reservation setup latency vs path length")
	printf("%-8s %16s\n", "hops", "setup latency")
	for _, hops := range []int{1, 2, 4, 8} {
		w := netsim.NewNetwork()
		names, err := netsim.Line(w, "r", hops+1, netsim.LinkConfig{})
		must(err)
		agents := make([]*coord.Agent, len(names))
		for i, name := range names {
			node, err := w.Node(name)
			must(err)
			caps := map[string]int64{}
			for _, nb := range node.Neighbors() {
				caps[nb] = 1 << 30
			}
			agents[i] = coord.NewAgent(node, coord.AgentConfig{Capacity: caps})
		}
		const rounds = 200
		start := time.Now()
		for i := 0; i < rounds; i++ {
			must(agents[0].Reserve(fmt.Sprintf("s%d", i), names, 100, 5*time.Second))
		}
		per := time.Since(start) / rounds
		w.Stop()
		printf("%-8d %16v\n", hops, per)
		record("reservation_setup", float64(per.Nanoseconds()), "ns",
			map[string]string{"hops": fmt.Sprint(hops)})
	}
}

// ---------------------------------------------------------------------------

func e9Spawn() {
	header("E9", "Genesis-like spawning: child virtual network instantiation time vs size")
	printf("%-8s %16s\n", "members", "spawn time")
	for _, members := range []int{3, 6, 12, 24} {
		w := netsim.NewNetwork()
		names, err := netsim.Line(w, "p", members, netsim.LinkConfig{})
		must(err)
		spawners := make([]*coord.Spawner, members)
		for i, name := range names {
			node, err := w.Node(name)
			must(err)
			spawners[i] = coord.NewSpawner(node)
		}
		adj := map[string][]string{}
		for i := range names {
			if i > 0 {
				adj[names[i]] = append(adj[names[i]], names[i-1])
			}
			if i < len(names)-1 {
				adj[names[i]] = append(adj[names[i]], names[i+1])
			}
		}
		const rounds = 50
		start := time.Now()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("vnet%d", i)
			must(spawners[0].Spawn(w, coord.SpawnSpec{
				Name: name, Members: names, Adj: adj, Timeout: 5 * time.Second,
			}))
		}
		per := time.Since(start) / rounds
		w.Stop()
		printf("%-8d %16v\n", members, per)
		record("vnet_spawn", float64(per.Nanoseconds()), "ns",
			map[string]string{"members": fmt.Sprint(members)})
	}
}

// ---------------------------------------------------------------------------

func e13Adaptation() {
	header("E13", "closed-loop adaptation: rule-driven FIFO<->RED swap from observed stats (DESIGN.md §5)")
	capsule := core.NewCapsule("e13")
	in := router.NewCounter()
	must(capsule.Insert("in", in))
	const qCap = 4096
	fifo, err := router.NewFIFOQueue(qCap)
	must(err)
	must(capsule.Insert("q", fifo))
	sched, err := router.NewLinkScheduler(router.PolicyRR)
	must(err)
	must(sched.AddInput("in0", 1500, 0))
	must(capsule.Insert("sched", sched))
	egress := router.NewCounter()
	must(capsule.Insert("egress", egress))
	must(capsule.Insert("drop", router.NewDropper()))
	_, err = capsule.Bind("in", "out", "q", router.IPacketPushID)
	must(err)
	_, err = capsule.Bind("sched", "in0", "q", router.IPacketPullID)
	must(err)
	_, err = capsule.Bind("sched", "out", "egress", router.IPacketPushID)
	must(err)
	_, err = capsule.Bind("egress", "out", "drop", router.IPacketPushID)
	must(err)

	// Current queue, for the driver's own occupancy view. The engine uses
	// only the stats tree; this mirror is bench instrumentation.
	type lenQueue interface{ Len() int }
	type queueRef struct{ q lenQueue }
	var curQ atomic.Value // queueRef
	curQ.Store(queueRef{fifo})

	// RED thresholds sit above the swap trigger so the experiment stays
	// drop-free and loss accounting is exact.
	mkRED := func() (core.Component, error) {
		q, err := router.NewREDQueue(router.REDConfig{
			Capacity: qCap, MinTh: qCap * 7 / 8, MaxTh: qCap*15/16 + 1, MaxP: 0.05,
		})
		if err == nil {
			curQ.Store(queueRef{q})
		}
		return q, err
	}
	mkFIFO := func() (core.Component, error) {
		q, err := router.NewFIFOQueue(qCap)
		if err == nil {
			curQ.Store(queueRef{q})
		}
		return q, err
	}

	firings := make(chan adapt.Firing, 8)
	eng := adapt.NewEngine(capsule,
		adapt.Options{Interval: time.Millisecond, OnFire: func(f adapt.Firing) { firings <- f }},
		adapt.Rule{
			Name:    "fifo-to-red",
			When:    adapt.GaugeAbove("q", "queue_occupancy", 0.6),
			Sustain: 2,
			Once:    true,
			Then:    adapt.Swap("q", "q-red", mkRED),
		},
		adapt.Rule{
			Name:    "red-to-fifo",
			When:    adapt.GaugeBelow("q-red", "queue_occupancy", 0.1),
			Sustain: 3,
			Once:    true,
			Then:    adapt.Swap("q-red", "q", mkFIFO),
		})
	must(capsule.Insert("adapt", eng))
	ctx := context.Background()
	must(capsule.StartComponent(ctx, "adapt"))
	defer func() { _ = capsule.Close(ctx) }()

	gen, err := trace.NewGenerator(trace.Config{Seed: 13, Flows: 64, UDPShare: 100})
	must(err)
	nextBatch := func(n int) []*router.Packet {
		out := make([]*router.Packet, n)
		for i := range out {
			raw, err := gen.Next() // Zipf flow choice, IMIX sizes
			must(err)
			out[i] = router.NewPacket(raw)
		}
		return out
	}

	waitFiring := func(rule string) adapt.Firing {
		for {
			select {
			case f := <-firings:
				if f.Err != "" {
					panic(fmt.Sprintf("E13: rule %s failed: %s", f.Rule, f.Err))
				}
				if f.Rule == rule {
					return f
				}
			case <-time.After(30 * time.Second):
				panic("E13: adaptation did not fire")
			}
		}
	}

	occupancy := func() float64 {
		return float64(curQ.Load().(queueRef).q.Len()) / float64(qCap)
	}

	// Phase 1 — overload: injection outruns the drain, occupancy climbs,
	// the engine swaps FIFO -> RED. Reaction time is measured from the
	// moment the driver first sees the trigger level to the firing.
	var injected uint64
	start := time.Now()
	var overloadAt time.Time
	fired1 := make(chan adapt.Firing, 1)
	go func() { fired1 <- waitFiring("fifo-to-red") }()
	var f1 adapt.Firing
phase1:
	for {
		for _, p := range nextBatch(48) {
			_ = in.Push(p)
		}
		injected += 48
		sched.RunOnce(16)
		if overloadAt.IsZero() && occupancy() > 0.6 {
			overloadAt = time.Now()
		}
		select {
		case f1 = <-fired1:
			break phase1
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	react1 := f1.At.Sub(overloadAt)
	if react1 < 0 {
		react1 = 0
	}

	// Phase 2 — relief: the drain outruns injection, occupancy falls, the
	// engine swaps RED -> FIFO (migrating the backlog back).
	fired2 := make(chan adapt.Firing, 1)
	go func() { fired2 <- waitFiring("red-to-fifo") }()
	var reliefAt time.Time
	var f2 adapt.Firing
phase2:
	for {
		sched.RunOnce(256)
		if reliefAt.IsZero() && occupancy() < 0.1 {
			reliefAt = time.Now()
		}
		select {
		case f2 = <-fired2:
			break phase2
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	react2 := f2.At.Sub(reliefAt)
	if react2 < 0 {
		react2 = 0
	}

	// Drain the remainder and settle the books.
	for occupancy() > 0 {
		if sched.RunOnce(256) == 0 {
			break
		}
	}
	elapsed := time.Since(start)
	delivered := egress.ElemStats().In
	lost := injected - delivered
	kpps := float64(delivered) / elapsed.Seconds() / 1e3

	printf("reaction fifo->red            %10v\n", react1)
	record("adapt_reaction", float64(react1.Nanoseconds()), "ns", map[string]string{"swap": "fifo-to-red"})
	printf("reaction red->fifo            %10v\n", react2)
	record("adapt_reaction", float64(react2.Nanoseconds()), "ns", map[string]string{"swap": "red-to-fifo"})
	printf("throughput across both swaps  %10.0f kpps\n", kpps)
	record("adapt_throughput", kpps, "kpps", nil)
	printf("packets injected/delivered    %10d / %d (lost %d)\n", injected, delivered, lost)
	record("adapt_packets_lost", float64(lost), "packets", nil)
	printf("firings: %d (engine ticks %d)\n", eng.Firings(), eng.Ticks())
	if lost != 0 {
		panic(fmt.Sprintf("E13: lost %d packets across adaptation", lost))
	}
}
