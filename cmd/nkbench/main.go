// Command nkbench runs the NETKIT experiment suite E1–E13 and E15–E18 (see
// DESIGN.md §3 for the claim-to-experiment mapping) and prints one table
// per experiment. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	nkbench                 # run everything
//	nkbench -run E1,E4      # selected experiments
//	nkbench -json           # machine-readable results on stdout
//	nkbench -batch 1,8,32   # batch sizes the E11, E17 and E18 sweeps drive
//	nkbench -shards 1,2,4   # shard counts the E12 sweep drives
//	nkbench -adapt          # only E13, the closed-loop adaptation run
//
// With -json the human tables are suppressed and the uniform result
// document shared with the nkload harness (nkload/results, suite
// "nkbench") is printed instead: one result per experiment, one metric
// record per measured value, so experiment trajectories can be tracked
// across commits — and gated — by the same tooling that consumes nkload
// baselines.
//
// The experiment implementations live beside this file: exp_micro.go
// (E1/E2/E5/E6/E10/E15/E18), exp_forwarding.go (E3/E11/E12/E16),
// exp_control.go (E4/E7/E8/E9/E13), exp_udp.go (E17); report.go is the
// shared reporting layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

var (
	batchSizes  []int // -batch flag; E11's sweep
	shardCounts []int // -shards flag; E12's sweep
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment list (E1..E13,E15..E18) or 'all'")
	flag.BoolVar(&jsonOut, "json", false, "emit the uniform result document instead of tables")
	batchList := flag.String("batch", "1,8,32,128", "comma-separated batch sizes driven by E11")
	shardList := flag.String("shards", "1,2,4", "comma-separated shard counts driven by E12")
	adaptOnly := flag.Bool("adapt", false, "run only E13, the closed-loop adaptation experiment")
	flag.Parse()
	for _, s := range strings.Split(*batchList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "nkbench: bad batch size %q\n", s)
			os.Exit(1)
		}
		batchSizes = append(batchSizes, v)
	}
	for _, s := range strings.Split(*shardList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "nkbench: bad shard count %q\n", s)
			os.Exit(1)
		}
		shardCounts = append(shardCounts, v)
	}
	experiments := map[string]func(){
		"E1": e1CallOverhead, "E2": e2Footprint, "E3": e3Forwarding,
		"E4": e4Reconfigure, "E5": e5Classifier, "E6": e6OutOfProc,
		"E7": e7Placement, "E8": e8Signaling, "E9": e9Spawn, "E10": e10Resources,
		"E11": e11Batched, "E12": e12Sharded, "E13": e13Adaptation,
		"E15": e15Compiled, "E16": e16Fused, "E17": e17UDPBatch,
		"E18": e18BatchedIPC,
	}
	var names []string
	switch {
	case *adaptOnly:
		names = []string{"E13"}
	case *runList == "all":
		names = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E15", "E16", "E17", "E18"}
	default:
		names = strings.Split(*runList, ",")
	}
	for _, n := range names {
		n = strings.TrimSpace(strings.ToUpper(n))
		fn, ok := experiments[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "nkbench: unknown experiment %q\n", n)
			os.Exit(1)
		}
		fn()
		printf("\n")
	}
	if jsonOut {
		if err := emitJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "nkbench:", err)
			os.Exit(1)
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
