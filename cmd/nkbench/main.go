// Command nkbench runs the NETKIT experiment suite E1–E13 (see DESIGN.md
// §3 for the claim-to-experiment mapping) and prints one table per
// experiment. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	nkbench                 # run everything
//	nkbench -run E1,E4      # selected experiments
//	nkbench -json           # machine-readable results on stdout
//	nkbench -batch 1,8,32   # batch sizes the E11 sweep drives
//	nkbench -shards 1,2,4   # shard counts the E12 sweep drives
//	nkbench -adapt          # only E13, the closed-loop adaptation run
//
// With -json the human tables are suppressed and a single JSON document
// is printed instead: an envelope identifying the host plus one metric
// record per measured value, so experiment trajectories can be tracked
// across commits by tooling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"netkit/adapt"
	"netkit/cf"
	"netkit/core"
	"netkit/internal/appsvc"
	"netkit/internal/baseline"
	"netkit/internal/buffers"
	"netkit/internal/coord"
	"netkit/internal/filter"
	"netkit/internal/ipc"
	"netkit/internal/ixp"
	"netkit/internal/netsim"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment list (E1..E13) or 'all'")
	flag.BoolVar(&jsonOut, "json", false, "emit machine-readable JSON instead of tables")
	batchList := flag.String("batch", "1,8,32,128", "comma-separated batch sizes driven by E11")
	shardList := flag.String("shards", "1,2,4", "comma-separated shard counts driven by E12")
	adaptOnly := flag.Bool("adapt", false, "run only E13, the closed-loop adaptation experiment")
	flag.Parse()
	for _, s := range strings.Split(*batchList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "nkbench: bad batch size %q\n", s)
			os.Exit(1)
		}
		batchSizes = append(batchSizes, v)
	}
	for _, s := range strings.Split(*shardList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "nkbench: bad shard count %q\n", s)
			os.Exit(1)
		}
		shardCounts = append(shardCounts, v)
	}
	experiments := map[string]func(){
		"E1": e1CallOverhead, "E2": e2Footprint, "E3": e3Forwarding,
		"E4": e4Reconfigure, "E5": e5Classifier, "E6": e6OutOfProc,
		"E7": e7Placement, "E8": e8Signaling, "E9": e9Spawn, "E10": e10Resources,
		"E11": e11Batched, "E12": e12Sharded, "E13": e13Adaptation,
	}
	var names []string
	switch {
	case *adaptOnly:
		names = []string{"E13"}
	case *runList == "all":
		names = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	default:
		names = strings.Split(*runList, ",")
	}
	for _, n := range names {
		n = strings.TrimSpace(strings.ToUpper(n))
		fn, ok := experiments[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "nkbench: unknown experiment %q\n", n)
			os.Exit(1)
		}
		fn()
		printf("\n")
	}
	if jsonOut {
		doc := jsonDoc{
			Version:   1,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Go:        runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			Metrics:   metrics,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "nkbench:", err)
			os.Exit(1)
		}
	}
}

// Metric is one measured value in -json output.
type Metric struct {
	Experiment string            `json:"experiment"`
	Name       string            `json:"name"`
	Value      float64           `json:"value"`
	Unit       string            `json:"unit"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// jsonDoc is the -json envelope.
type jsonDoc struct {
	Version   int      `json:"version"`
	Timestamp string   `json:"timestamp"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Metrics   []Metric `json:"metrics"`
}

var (
	jsonOut     bool
	curExp      string
	metrics     []Metric
	batchSizes  []int // -batch flag; E11's sweep
	shardCounts []int // -shards flag; E12's sweep
)

// printf writes a human-readable table line, suppressed under -json.
func printf(format string, a ...any) {
	if !jsonOut {
		fmt.Printf(format, a...)
	}
}

// record appends one structured metric under the current experiment.
func record(name string, value float64, unit string, labels map[string]string) {
	metrics = append(metrics, Metric{
		Experiment: curExp, Name: name, Value: value, Unit: unit, Labels: labels,
	})
}

func header(id, claim string) {
	curExp = id
	printf("=== %s — %s\n", id, claim)
}

// measure runs fn n times and returns ns/op.
func measure(n int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func mustPacket(dstPort uint16) *router.Packet {
	gen, err := trace.NewGenerator(trace.Config{Seed: 11, Flows: 1, UDPShare: 100})
	if err != nil {
		panic(err)
	}
	raw, err := gen.NextFixed(64)
	if err != nil {
		panic(err)
	}
	return router.NewPacket(raw)
}

// ---------------------------------------------------------------------------

func e1CallOverhead() {
	header("E1", "cross-component call overhead: fused bindings vs interception chains")
	const iters = 2_000_000
	sinkComp := router.NewDropper()
	pkt := mustPacket(53)

	// Direct function call baseline.
	directNs := measure(iters, func() { _ = sinkComp.Push(pkt) })

	// Receptacle-mediated (fused) call.
	capsule := core.NewCapsule("e1")
	cnt := router.NewCounter()
	must(capsule.Insert("cnt", cnt))
	must(capsule.Insert("drop", router.NewDropper()))
	b, err := router.ConnectPush(capsule, "cnt", "out", "drop")
	must(err)
	fusedNs := measure(iters, func() { _ = cnt.Push(pkt) })

	printf("%-28s %10.1f ns/op  (x%.2f)\n", "direct method call", directNs, 1.0)
	record("direct_call", directNs, "ns/op", nil)
	printf("%-28s %10.1f ns/op  (x%.2f)\n", "fused binding (receptacle)", fusedNs, fusedNs/directNs)
	record("fused_binding", fusedNs, "ns/op", nil)
	for _, k := range []int{1, 2, 4, 8} {
		for b.Interceptors() != nil && len(b.Interceptors()) > 0 {
			must(b.RemoveInterceptor(b.Interceptors()[0]))
		}
		for i := 0; i < k; i++ {
			must(b.AddInterceptor(core.Interceptor{
				Name: fmt.Sprintf("noop%d", i),
				Wrap: core.PrePost(nil, nil),
			}))
		}
		ns := measure(iters/4, func() { _ = cnt.Push(pkt) })
		printf("binding + %d interceptor(s)   %10.1f ns/op  (x%.2f)\n", k, ns, ns/directNs)
		record("intercepted_binding", ns, "ns/op", map[string]string{"interceptors": fmt.Sprint(k)})
	}
}

// ---------------------------------------------------------------------------

func e2Footprint() {
	header("E2", "bespoke configurations minimise memory footprint (cf. 18KB WinCE OpenCOM)")
	configs := []struct {
		name  string
		build func() any
	}{
		{"empty capsule", func() any { return core.NewCapsule("empty") }},
		{"minimal forwarder (3 comps)", func() any {
			c := core.NewCapsule("min")
			must(c.Insert("cnt", router.NewCounter()))
			must(c.Insert("v4", router.NewIPv4Proc(false)))
			must(c.Insert("drop", router.NewDropper()))
			_, err := router.ConnectPush(c, "cnt", "out", "v4")
			must(err)
			_, err = router.ConnectPush(c, "v4", "out", "drop")
			must(err)
			return c
		}},
		{"figure-3 composite", func() any {
			c := core.NewCapsule("f3")
			comp, err := router.NewFigure3Composite(c, router.Figure3Config{})
			must(err)
			must(c.Insert("gw", comp))
			return c
		}},
		{"figure-3 + classifier + EE", func() any {
			c := core.NewCapsule("full")
			comp, err := router.NewFigure3Composite(c, router.Figure3Config{})
			must(err)
			must(c.Insert("gw", comp))
			cls, err := router.NewClassifier("fast", "default")
			must(err)
			must(c.Insert("cls", cls))
			must(c.Insert("ee", appsvc.NewExecEnv()))
			return c
		}},
	}
	for _, cfg := range configs {
		bytes := heapDelta(cfg.build)
		printf("%-32s %10.1f KiB\n", cfg.name, float64(bytes)/1024)
		record("footprint", float64(bytes)/1024, "KiB", map[string]string{"config": cfg.name})
	}
}

// heapDelta measures the live-heap growth caused by build (median of 5).
func heapDelta(build func() any) uint64 {
	samples := make([]uint64, 0, 5)
	for i := 0; i < 5; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		obj := build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			samples = append(samples, after.HeapAlloc-before.HeapAlloc)
		} else {
			samples = append(samples, 0)
		}
		runtime.KeepAlive(obj)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// ---------------------------------------------------------------------------

func e3Forwarding() {
	header("E3", "forwarding throughput: Router CF vs Click-like static vs monolith")
	gen, err := trace.NewGenerator(trace.Config{Seed: 3, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	// Fresh copies per system per run: every packet is processed exactly
	// once from its pristine state, so TTL mutation cannot leak between
	// runs.
	freshRaw := func() [][]byte {
		out := make([][]byte, len(master))
		for i, p := range master {
			out[i] = append([]byte(nil), p...)
		}
		return out
	}
	// Every system performs the same per-packet function: one IPv4 TTL
	// decrement (with incremental checksum) plus k counting stages.
	printf("%-10s %14s %14s %14s\n", "chain", "netkit kpps", "click kpps", "monolith kpps")
	for _, chainLen := range []int{1, 2, 4, 8} {
		// NETKIT: IPv4Proc then a chain of counters ending in a dropper.
		capsule := core.NewCapsule("e3")
		v4 := router.NewIPv4Proc(false)
		must(capsule.Insert("v4", v4))
		first := router.IPacketPush(v4)
		prev := "v4"
		for i := 0; i < chainLen; i++ {
			name := fmt.Sprintf("c%d", i)
			cnt := router.NewCounter()
			must(capsule.Insert(name, cnt))
			_, err := router.ConnectPush(capsule, prev, "out", name)
			must(err)
			prev = name
		}
		must(capsule.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(capsule, prev, "out", "drop")
		must(err)
		// Packets are wrapped once at ingress (the NIC source's job), so
		// wrapping happens outside the timed loop.
		nkPkts := make([]*router.Packet, nPkts)
		for i, raw := range freshRaw() {
			nkPkts[i] = router.NewPacket(raw)
		}
		runtime.GC()
		start := time.Now()
		for _, p := range nkPkts {
			_ = first.Push(p)
		}
		nkKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Click-like: same chain statically composed.
		click := baseline.NewClickRouter()
		must(click.Add(baseline.DecTTL()))
		counters := make([]uint64, chainLen)
		for i := 0; i < chainLen; i++ {
			must(click.Add(baseline.CountPkts(&counters[i])))
		}
		must(click.Build())
		clickPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range clickPkts {
			_, _ = click.Run(raw)
		}
		clickKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Monolith: hand-fused decrement+count, by construction flat in k.
		mono := baseline.NewMonolith(false)
		monoPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range monoPkts {
			_ = mono.Run(raw)
		}
		monoKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		printf("%-10d %14.0f %14.0f %14.0f\n", chainLen, nkKpps, clickKpps, monoKpps)
		chain := map[string]string{"chain": fmt.Sprint(chainLen)}
		record("forwarding_netkit", nkKpps, "kpps", chain)
		record("forwarding_click", clickKpps, "kpps", chain)
		record("forwarding_monolith", monoKpps, "kpps", chain)
	}
}

// ---------------------------------------------------------------------------

func e4Reconfigure() {
	header("E4", "run-time reconfiguration: lossless hot-swap vs Click rebuild")
	capsule := core.NewCapsule("e4")
	head := router.NewCounter()
	mid := router.NewCounter()
	tail := router.NewCounter()
	must(capsule.Insert("head", head))
	must(capsule.Insert("mid", mid))
	must(capsule.Insert("tail", tail))
	_, err := router.ConnectPush(capsule, "head", "out", "mid")
	must(err)
	_, err = router.ConnectPush(capsule, "mid", "out", "tail")
	must(err)

	const total = 100_000
	done := make(chan int)
	go func() {
		sent := 0
		for i := 0; i < total; i++ {
			if head.Push(mustPacket(1)) == nil {
				sent++
			}
		}
		done <- sent
	}()
	swapStart := time.Now()
	must(router.HotSwap(capsule, "mid", "mid2", router.NewCounter()))
	swapNs := time.Since(swapStart)
	sent := <-done
	received := tail.ElemStats().In
	printf("netkit hot-swap latency       %10v\n", swapNs)
	record("hotswap_latency", float64(swapNs.Nanoseconds()), "ns", nil)
	printf("packets sent during swap      %10d\n", sent)
	record("packets_sent", float64(sent), "packets", nil)
	printf("packets received              %10d (lost %d)\n", received, uint64(sent)-received)
	record("packets_lost", float64(uint64(sent)-received), "packets", nil)

	// Click: reconfiguration is a rebuild; anything queued is abandoned.
	var c1, c2 uint64
	click := baseline.NewClickRouter()
	must(click.Add(baseline.CountPkts(&c1)))
	must(click.Build())
	rebuildStart := time.Now()
	click2, err := click.Reconfigure(0, baseline.CountPkts(&c2))
	must(err)
	rebuildNs := time.Since(rebuildStart)
	_ = click2
	printf("click rebuild latency         %10v (state lost by construction)\n", rebuildNs)
	record("click_rebuild_latency", float64(rebuildNs.Nanoseconds()), "ns", nil)
}

// ---------------------------------------------------------------------------

func e5Classifier() {
	header("E5", "register_filter classification cost vs table size (VM vs closure matcher)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 5, Flows: 256, UDPShare: 100})
	must(err)
	views := make([]filter.View, 4096)
	for i := range views {
		raw, err := gen.Next()
		must(err)
		views[i] = filter.Extract(raw)
	}
	printf("%-8s %16s %16s\n", "rules", "vm ns/lookup", "closure ns/lookup")
	for _, n := range []int{1, 4, 16, 64, 256, 1024} {
		specs := make([]string, n)
		for i := range specs {
			specs[i] = fmt.Sprintf("udp and dst port %d", 20000+i) // never match: worst case
		}
		progs := make([]*filter.Program, n)
		closures := make([]filter.Matcher, n)
		for i, s := range specs {
			progs[i], err = filter.CompileToProgram(s)
			must(err)
			closures[i], err = filter.Compile(s)
			must(err)
		}
		iters := 200_000 / n
		if iters < 200 {
			iters = 200
		}
		vmNs := measure(iters, func() {
			v := &views[0]
			for _, p := range progs {
				if p.Match(v) {
					break
				}
			}
		})
		clNs := measure(iters, func() {
			v := &views[0]
			for _, c := range closures {
				if c.Match(v) {
					break
				}
			}
		})
		printf("%-8d %16.1f %16.1f\n", n, vmNs, clNs)
		rules := map[string]string{"rules": fmt.Sprint(n)}
		record("classify_vm", vmNs, "ns/lookup", rules)
		record("classify_closure", clNs, "ns/lookup", rules)
	}
}

// ---------------------------------------------------------------------------

func e6OutOfProc() {
	header("E6", "in-process vs out-of-process (isolated) bindings; crash containment")
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})

	inProc := router.NewCounter()
	pkt := mustPacket(1)
	inNs := measure(1_000_000, func() { _ = inProc.Push(pkt) })

	client, _, cleanup := ipc.HostPair(reg)
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	must(err)
	raw := append([]byte(nil), pkt.Data...)
	outNs := measure(5_000, func() { _ = rc.Push(router.NewPacket(raw)) })

	printf("in-process push               %10.1f ns/op\n", inNs)
	record("inproc_push", inNs, "ns/op", nil)
	printf("out-of-process push           %10.1f ns/op  (x%.0f)\n", outNs, outNs/inNs)
	record("outproc_push", outNs, "ns/op", nil)
	printf("crash containment             verified by internal/ipc tests (panic -> error, host survives)\n")
}

// ---------------------------------------------------------------------------

func e7Placement() {
	header("E7", "IXP1200 placement meta-model: strategy and engine-count sweeps")
	pipe := ixp.StandardPipeline()
	chip := ixp.DefaultIXP1200()
	strategies := []struct {
		name string
		mk   func() ixp.Assignment
	}{
		{"all-on-strongarm", func() ixp.Assignment { return ixp.PlaceAllControl(pipe) }},
		{"round-robin", func() ixp.Assignment { return ixp.PlaceRoundRobin(chip, pipe) }},
		{"greedy", func() ixp.Assignment { return ixp.PlaceGreedy(chip, pipe) }},
	}
	for _, s := range strategies {
		rep, err := ixp.Evaluate(chip, pipe, s.mk())
		must(err)
		printf("%-20s %12.0f kpps   bottleneck %s\n",
			s.name, rep.ThroughputPPS/1e3, rep.Bottleneck)
		record("placement", rep.ThroughputPPS/1e3, "kpps",
			map[string]string{"strategy": s.name, "bottleneck": fmt.Sprint(rep.Bottleneck)})
	}
	// Rebalance from a bad start.
	bad := make(ixp.Assignment)
	for _, st := range pipe {
		bad[st.Name] = ixp.Target{Engine: 0}
	}
	mgr, err := ixp.NewManager(chip, pipe, bad)
	must(err)
	before, err := mgr.Evaluate()
	must(err)
	moves, err := mgr.Rebalance(16)
	must(err)
	after, err := mgr.Evaluate()
	must(err)
	printf("%-20s %12.0f -> %.0f kpps in %d migrations\n",
		"manager rebalance", before.ThroughputPPS/1e3, after.ThroughputPPS/1e3, moves)
	record("rebalance_after", after.ThroughputPPS/1e3, "kpps",
		map[string]string{"migrations": fmt.Sprint(moves)})

	printf("%-8s %14s\n", "engines", "greedy kpps")
	for engines := 1; engines <= 6; engines++ {
		c := chip
		c.Engines = engines
		rep, err := ixp.Evaluate(c, pipe, ixp.PlaceGreedy(c, pipe))
		must(err)
		printf("%-8d %14.0f\n", engines, rep.ThroughputPPS/1e3)
		record("placement_greedy_sweep", rep.ThroughputPPS/1e3, "kpps",
			map[string]string{"engines": fmt.Sprint(engines)})
	}
}

// ---------------------------------------------------------------------------

func e8Signaling() {
	header("E8", "RSVP-like reservation setup latency vs path length")
	printf("%-8s %16s\n", "hops", "setup latency")
	for _, hops := range []int{1, 2, 4, 8} {
		w := netsim.NewNetwork()
		names, err := netsim.Line(w, "r", hops+1, netsim.LinkConfig{})
		must(err)
		agents := make([]*coord.Agent, len(names))
		for i, name := range names {
			node, err := w.Node(name)
			must(err)
			caps := map[string]int64{}
			for _, nb := range node.Neighbors() {
				caps[nb] = 1 << 30
			}
			agents[i] = coord.NewAgent(node, coord.AgentConfig{Capacity: caps})
		}
		const rounds = 200
		start := time.Now()
		for i := 0; i < rounds; i++ {
			must(agents[0].Reserve(fmt.Sprintf("s%d", i), names, 100, 5*time.Second))
		}
		per := time.Since(start) / rounds
		w.Stop()
		printf("%-8d %16v\n", hops, per)
		record("reservation_setup", float64(per.Nanoseconds()), "ns",
			map[string]string{"hops": fmt.Sprint(hops)})
	}
}

// ---------------------------------------------------------------------------

func e9Spawn() {
	header("E9", "Genesis-like spawning: child virtual network instantiation time vs size")
	printf("%-8s %16s\n", "members", "spawn time")
	for _, members := range []int{3, 6, 12, 24} {
		w := netsim.NewNetwork()
		names, err := netsim.Line(w, "p", members, netsim.LinkConfig{})
		must(err)
		spawners := make([]*coord.Spawner, members)
		for i, name := range names {
			node, err := w.Node(name)
			must(err)
			spawners[i] = coord.NewSpawner(node)
		}
		adj := map[string][]string{}
		for i := range names {
			if i > 0 {
				adj[names[i]] = append(adj[names[i]], names[i-1])
			}
			if i < len(names)-1 {
				adj[names[i]] = append(adj[names[i]], names[i+1])
			}
		}
		const rounds = 50
		start := time.Now()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("vnet%d", i)
			must(spawners[0].Spawn(w, coord.SpawnSpec{
				Name: name, Members: names, Adj: adj, Timeout: 5 * time.Second,
			}))
		}
		per := time.Since(start) / rounds
		w.Stop()
		printf("%-8d %16v\n", members, per)
		record("vnet_spawn", float64(per.Nanoseconds()), "ns",
			map[string]string{"members": fmt.Sprint(members)})
	}
}

// ---------------------------------------------------------------------------

func e10Resources() {
	header("E10", "buffer-management CF and pluggable schedulers")
	pool := buffers.MustNewPool(buffers.DefaultClasses, 256, 0)
	pooledNs := measure(1_000_000, func() {
		b, err := pool.Get(1500)
		if err == nil {
			_ = b.Release()
		}
	})
	// The raw allocation must escape, as packet buffers do in practice.
	rawNs := measure(1_000_000, func() {
		allocSink = make([]byte, 1500)
	})
	printf("pooled buffer get/release     %10.1f ns/op\n", pooledNs)
	record("buffer_pooled", pooledNs, "ns/op", nil)
	printf("heap make([]byte, 1500)       %10.1f ns/op\n", rawNs)
	record("buffer_heap", rawNs, "ns/op", nil)

	// WFQ service proportions under 3:1 weights.
	mgr := resources.NewManager()
	heavy, err := mgr.CreateTask(resources.TaskSpec{Name: "heavy", Weight: 3})
	must(err)
	light, err := mgr.CreateTask(resources.TaskSpec{Name: "light", Weight: 1})
	must(err)
	sched := resources.NewWFQScheduler()
	for i := 0; i < 4000; i++ {
		sched.Push(&resources.WorkItem{Task: heavy, Run: func() {}})
		sched.Push(&resources.WorkItem{Task: light, Run: func() {}})
	}
	served := map[string]int{}
	for i := 0; i < 4000; i++ {
		it := sched.Pop()
		served[it.Task.Name()]++
	}
	printf("wfq service at weights 3:1    heavy=%d light=%d (ratio %.2f)\n",
		served["heavy"], served["light"], float64(served["heavy"])/float64(served["light"]))
	record("wfq_ratio", float64(served["heavy"])/float64(served["light"]), "ratio",
		map[string]string{"weights": "3:1"})
}

// ---------------------------------------------------------------------------

func e11Batched() {
	header("E11", "batched fast path: PushBatch amortises the binding crossing (DESIGN.md §4)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 7, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000

	// The forwarding function under test: IPv4 TTL decrement plus two
	// counting stages ending in a dropper (the E3 netkit chain).
	build := func() router.IPacketPush {
		c := core.NewCapsule("e11")
		v4 := router.NewIPv4Proc(false)
		must(c.Insert("v4", v4))
		prev := "v4"
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("c%d", i)
			must(c.Insert(name, router.NewCounter()))
			_, err := router.ConnectPush(c, prev, "out", name)
			must(err)
			prev = name
		}
		must(c.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(c, prev, "out", "drop")
		must(err)
		return v4
	}
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	wrap := func() []*router.Packet {
		out := make([]*router.Packet, len(master))
		for i, raw := range master {
			out[i] = router.NewPacket(append([]byte(nil), raw...))
		}
		return out
	}

	first := build()
	pkts := wrap()
	runtime.GC()
	start := time.Now()
	for _, p := range pkts {
		_ = first.Push(p)
	}
	perKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
	printf("%-14s %14.0f kpps  (x%.2f)\n", "per-packet", perKpps, 1.0)
	record("batch_forwarding", perKpps, "kpps", map[string]string{"batch": "per-packet"})

	for _, k := range batchSizes {
		first := build()
		pkts := wrap()
		runtime.GC()
		start := time.Now()
		for lo := 0; lo < len(pkts); lo += k {
			hi := lo + k
			if hi > len(pkts) {
				hi = len(pkts)
			}
			_ = router.ForwardBatch(first, pkts[lo:hi])
		}
		kpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
		printf("batch=%-8d %14.0f kpps  (x%.2f)\n", k, kpps, kpps/perKpps)
		record("batch_forwarding", kpps, "kpps", map[string]string{"batch": fmt.Sprint(k)})
	}
}

// ---------------------------------------------------------------------------

func e12Sharded() {
	header("E12", "sharded multi-core scale-out: RSS flow dispatch over parallel Router CF replicas (DESIGN.md §4.5)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 12, Flows: 64, UDPShare: 100})
	must(err)
	const nPool = 1024
	pkts := make([]*router.Packet, nPool)
	for i := range pkts {
		raw, err := gen.NextFixed(64)
		must(err)
		pkts[i] = router.NewPacket(raw)
	}
	// Per-shard replica: two checksum validations plus a counter — enough
	// read-only per-packet work for parallel replicas to matter.
	replica := func(shard int, fw *cf.Framework) (string, error) {
		names := []string{
			router.ShardName(shard, "val1"),
			router.ShardName(shard, "val2"),
			router.ShardName(shard, "cnt"),
		}
		comps := []core.Component{
			router.NewChecksumValidator(), router.NewChecksumValidator(), router.NewCounter(),
		}
		for i, n := range names {
			if err := fw.Admit(n, comps[i]); err != nil {
				return "", err
			}
		}
		chain := append(names, router.ShardName(shard, "egress"))
		for i := 0; i+1 < len(chain); i++ {
			if _, err := fw.Capsule().Bind(chain[i], "out", chain[i+1], router.IPacketPushID); err != nil {
				return "", err
			}
		}
		return names[0], nil
	}
	const total = 200_000
	printf("host CPUs: %d (near-linear scaling needs >= the shard count)\n", runtime.NumCPU())
	type e12Point struct {
		n    int
		kpps float64
	}
	var points []e12Point
	for _, n := range shardCounts {
		capsule := core.NewCapsule("e12")
		s, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: n}, replica)
		must(err)
		must(capsule.Insert("fwd", s))
		must(capsule.Insert("drop", router.NewDropper()))
		_, err = router.ConnectPush(capsule, "fwd", "out", "drop")
		must(err)
		ctx := context.Background()
		must(capsule.StartAll(ctx))
		drive := func(count int) time.Duration {
			start := time.Now()
			sent := 0
			for sent < count {
				lo := sent % nPool
				hi := lo + 32
				if hi > nPool {
					hi = nPool
				}
				if hi-lo > count-sent {
					hi = lo + (count - sent)
				}
				must(s.PushBatch(pkts[lo:hi]))
				sent += hi - lo
			}
			qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			must(s.Quiesce(qctx))
			return time.Since(start)
		}
		drive(total / 4) // warm-up
		before := make([]uint64, n)
		for i := 0; i < n; i++ {
			before[i] = s.ShardStats(i).In
		}
		elapsed := drive(total)
		// Per-shard kpps breakdown from the per-replica stats, so the
		// -json trajectory shows how evenly RSS spread the flows.
		for i := 0; i < n; i++ {
			lane := float64(s.ShardStats(i).In-before[i]) / elapsed.Seconds() / 1e3
			record("sharded_forwarding_shard", lane, "kpps", map[string]string{
				"shards": fmt.Sprint(n), "shard": fmt.Sprint(i), "batch": "32",
			})
		}
		must(capsule.StopAll(ctx))
		kpps := float64(total) / elapsed.Seconds() / 1e3
		points = append(points, e12Point{n: n, kpps: kpps})
		record("sharded_forwarding", kpps, "kpps", map[string]string{
			"shards": fmt.Sprint(n), "batch": "32", "cpus": fmt.Sprint(runtime.NumCPU()),
		})
	}
	// The speedup column is anchored to the shards=1 point regardless of
	// sweep order (falling back to the first point when 1 isn't swept),
	// so "x at 4 shards" always means "vs one shard".
	base := points[0].kpps
	baseN := points[0].n
	for _, p := range points {
		if p.n == 1 {
			base, baseN = p.kpps, 1
			break
		}
	}
	printf("%-10s %14s %16s\n", "shards", "kpps", fmt.Sprintf("vs shards=%d", baseN))
	for _, p := range points {
		printf("%-10d %14.0f %15.2fx\n", p.n, p.kpps, p.kpps/base)
	}
}

// ---------------------------------------------------------------------------

func e13Adaptation() {
	header("E13", "closed-loop adaptation: rule-driven FIFO<->RED swap from observed stats (DESIGN.md §5)")
	capsule := core.NewCapsule("e13")
	in := router.NewCounter()
	must(capsule.Insert("in", in))
	const qCap = 4096
	fifo, err := router.NewFIFOQueue(qCap)
	must(err)
	must(capsule.Insert("q", fifo))
	sched, err := router.NewLinkScheduler(router.PolicyRR)
	must(err)
	must(sched.AddInput("in0", 1500, 0))
	must(capsule.Insert("sched", sched))
	egress := router.NewCounter()
	must(capsule.Insert("egress", egress))
	must(capsule.Insert("drop", router.NewDropper()))
	_, err = capsule.Bind("in", "out", "q", router.IPacketPushID)
	must(err)
	_, err = capsule.Bind("sched", "in0", "q", router.IPacketPullID)
	must(err)
	_, err = capsule.Bind("sched", "out", "egress", router.IPacketPushID)
	must(err)
	_, err = capsule.Bind("egress", "out", "drop", router.IPacketPushID)
	must(err)

	// Current queue, for the driver's own occupancy view. The engine uses
	// only the stats tree; this mirror is bench instrumentation.
	type lenQueue interface{ Len() int }
	type queueRef struct{ q lenQueue }
	var curQ atomic.Value // queueRef
	curQ.Store(queueRef{fifo})

	// RED thresholds sit above the swap trigger so the experiment stays
	// drop-free and loss accounting is exact.
	mkRED := func() (core.Component, error) {
		q, err := router.NewREDQueue(router.REDConfig{
			Capacity: qCap, MinTh: qCap * 7 / 8, MaxTh: qCap*15/16 + 1, MaxP: 0.05,
		})
		if err == nil {
			curQ.Store(queueRef{q})
		}
		return q, err
	}
	mkFIFO := func() (core.Component, error) {
		q, err := router.NewFIFOQueue(qCap)
		if err == nil {
			curQ.Store(queueRef{q})
		}
		return q, err
	}

	firings := make(chan adapt.Firing, 8)
	eng := adapt.NewEngine(capsule,
		adapt.Options{Interval: time.Millisecond, OnFire: func(f adapt.Firing) { firings <- f }},
		adapt.Rule{
			Name:    "fifo-to-red",
			When:    adapt.GaugeAbove("q", "queue_occupancy", 0.6),
			Sustain: 2,
			Once:    true,
			Then:    adapt.Swap("q", "q-red", mkRED),
		},
		adapt.Rule{
			Name:    "red-to-fifo",
			When:    adapt.GaugeBelow("q-red", "queue_occupancy", 0.1),
			Sustain: 3,
			Once:    true,
			Then:    adapt.Swap("q-red", "q", mkFIFO),
		})
	must(capsule.Insert("adapt", eng))
	ctx := context.Background()
	must(capsule.StartComponent(ctx, "adapt"))
	defer func() { _ = capsule.Close(ctx) }()

	gen, err := trace.NewGenerator(trace.Config{Seed: 13, Flows: 64, UDPShare: 100})
	must(err)
	nextBatch := func(n int) []*router.Packet {
		out := make([]*router.Packet, n)
		for i := range out {
			raw, err := gen.Next() // Zipf flow choice, IMIX sizes
			must(err)
			out[i] = router.NewPacket(raw)
		}
		return out
	}

	waitFiring := func(rule string) adapt.Firing {
		for {
			select {
			case f := <-firings:
				if f.Err != "" {
					panic(fmt.Sprintf("E13: rule %s failed: %s", f.Rule, f.Err))
				}
				if f.Rule == rule {
					return f
				}
			case <-time.After(30 * time.Second):
				panic("E13: adaptation did not fire")
			}
		}
	}

	occupancy := func() float64 {
		return float64(curQ.Load().(queueRef).q.Len()) / float64(qCap)
	}

	// Phase 1 — overload: injection outruns the drain, occupancy climbs,
	// the engine swaps FIFO -> RED. Reaction time is measured from the
	// moment the driver first sees the trigger level to the firing.
	var injected uint64
	start := time.Now()
	var overloadAt time.Time
	fired1 := make(chan adapt.Firing, 1)
	go func() { fired1 <- waitFiring("fifo-to-red") }()
	var f1 adapt.Firing
phase1:
	for {
		for _, p := range nextBatch(48) {
			_ = in.Push(p)
		}
		injected += 48
		sched.RunOnce(16)
		if overloadAt.IsZero() && occupancy() > 0.6 {
			overloadAt = time.Now()
		}
		select {
		case f1 = <-fired1:
			break phase1
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	react1 := f1.At.Sub(overloadAt)
	if react1 < 0 {
		react1 = 0
	}

	// Phase 2 — relief: the drain outruns injection, occupancy falls, the
	// engine swaps RED -> FIFO (migrating the backlog back).
	fired2 := make(chan adapt.Firing, 1)
	go func() { fired2 <- waitFiring("red-to-fifo") }()
	var reliefAt time.Time
	var f2 adapt.Firing
phase2:
	for {
		sched.RunOnce(256)
		if reliefAt.IsZero() && occupancy() < 0.1 {
			reliefAt = time.Now()
		}
		select {
		case f2 = <-fired2:
			break phase2
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	react2 := f2.At.Sub(reliefAt)
	if react2 < 0 {
		react2 = 0
	}

	// Drain the remainder and settle the books.
	for occupancy() > 0 {
		if sched.RunOnce(256) == 0 {
			break
		}
	}
	elapsed := time.Since(start)
	delivered := egress.ElemStats().In
	lost := injected - delivered
	kpps := float64(delivered) / elapsed.Seconds() / 1e3

	printf("reaction fifo->red            %10v\n", react1)
	record("adapt_reaction", float64(react1.Nanoseconds()), "ns", map[string]string{"swap": "fifo-to-red"})
	printf("reaction red->fifo            %10v\n", react2)
	record("adapt_reaction", float64(react2.Nanoseconds()), "ns", map[string]string{"swap": "red-to-fifo"})
	printf("throughput across both swaps  %10.0f kpps\n", kpps)
	record("adapt_throughput", kpps, "kpps", nil)
	printf("packets injected/delivered    %10d / %d (lost %d)\n", injected, delivered, lost)
	record("adapt_packets_lost", float64(lost), "packets", nil)
	printf("firings: %d (engine ticks %d)\n", eng.Firings(), eng.Ticks())
	if lost != 0 {
		panic(fmt.Sprintf("E13: lost %d packets across adaptation", lost))
	}
}

// allocSink defeats escape analysis in E10's raw-allocation baseline.
var allocSink []byte

func must(err error) {
	if err != nil {
		panic(err)
	}
}
