// exp_udp.go — E17: the real-socket syscall-amortisation curve. Every
// other experiment runs in-process; E17 pushes frames through actual
// kernel UDP sockets over loopback and measures what batching buys at
// the syscall boundary (DESIGN.md §9).
//
// Method: windowed send-then-drain rounds. Each round transmits a window
// of frames (sized to fit a stock socket buffer, so the round is
// loss-free by construction), lets them settle, then times the receive
// drain and the transmit burst separately — so the receive number is the
// per-frame cost of moving queued datagrams across the syscall boundary,
// not a round-trip entangled with the peer. The swept rows are the
// batched recvmmsg/sendmmsg strategy at -batch sizes; the batch=1 row of
// record is the per-datagram portable read path (ForcePortable — one
// ReadFromUDP per frame, the exact pattern every non-mmsg platform
// pays), which is the baseline the ≥3x amortisation claim is gated
// against in bench_test.go. The pure-mmsg batch-1 row stays in the table
// too: the distance between it and the portable row is the Go netpoller
// tax, and the distance to batch-32 is raw syscall amortisation.
package main

import (
	"fmt"
	"runtime"
	"time"

	"netkit/internal/buffers"
	"netkit/internal/osabs"
)

const (
	// e17Window is the frames per send-then-drain round: well within the
	// 2MB socket buffers both backends request, so every round is
	// loss-free by construction.
	e17Window = 1024
	// e17Rounds x e17Window = 32768 measured frames per row.
	e17Rounds = 32
)

// e17Row measures one device configuration and returns per-frame receive
// and transmit costs in nanoseconds plus the receive frames-per-syscall.
func e17Row(batch int, portable bool) (rxNs, txNs, fps float64, err error) {
	arena, err := osabs.NewFrameArena(osabs.DefaultUDPFrameSize, batch, 8)
	if err != nil {
		return 0, 0, 0, err
	}
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "e17-rx", Listen: "127.0.0.1:0", Batch: batch, Arena: arena,
		ForcePortable: portable,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = rx.Close() }()
	tx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "e17-tx", Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: batch,
		ForcePortable: portable,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = tx.Close() }()

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	out := make([][]byte, batch)
	for i := range out {
		out[i] = payload
	}
	scratch := make([][]byte, 0, batch)
	var rxTotal, txTotal int64
	for r := 0; r < e17Rounds; r++ {
		start := time.Now()
		for sent := 0; sent < e17Window; sent += batch {
			n, err := tx.SendBatch(out)
			if err != nil {
				return 0, 0, 0, err
			}
			if n != batch {
				return 0, 0, 0, fmt.Errorf("tx accepted %d of %d frames", n, batch)
			}
		}
		txTotal += time.Since(start).Nanoseconds()
		// Let the window settle into the receive queue so drain timing
		// measures the syscall boundary, not loopback delivery latency.
		time.Sleep(200 * time.Microsecond)
		// The drain clock starts at the first PRODUCTIVE poll: the
		// settle wait and any residual empty polls before data is ready
		// are scheduler artifacts, not syscall-boundary cost, and at a
		// small window they would swamp the quantity under test.
		got := 0
		var startSet bool
		for got < e17Window {
			var slab *buffers.Buffer
			var err error
			tCall := time.Now()
			scratch, slab, err = rx.RecvBatchInto(scratch[:0], batch)
			if err != nil {
				return 0, 0, 0, err
			}
			if len(scratch) == 0 {
				runtime.Gosched()
				continue
			}
			if !startSet {
				start, startSet = tCall, true
			}
			if slab != nil {
				for range scratch {
					_ = slab.Release()
				}
			}
			got += len(scratch)
		}
		rxTotal += time.Since(start).Nanoseconds()
	}
	total := float64(e17Window * e17Rounds)
	st := rx.Stats()
	if st.RxSyscalls > 0 {
		fps = float64(st.RxFrames) / float64(st.RxSyscalls)
	}
	return float64(rxTotal) / total, float64(txTotal) / total, fps, nil
}

func e17UDPBatch() {
	header("E17", "real-socket syscall amortisation: recvmmsg/sendmmsg batch curve over loopback (DESIGN.md §9)")
	printf("windowed send-then-drain, %d frames/row; rx is queued-datagram drain cost\n",
		e17Window*e17Rounds)

	// The per-datagram baseline: one blocking-style read per frame, the
	// pattern every platform without the mmsg tables pays.
	baseRx, baseTx, _, err := e17Row(1, true)
	must(err)
	printf("%-18s %8.0f rx ns/f %8.0f tx ns/f %10.0f kpps rx  (x1.00 baseline)\n",
		"portable batch=1", baseRx, baseTx, 1e6/baseRx)
	labels := map[string]string{"batch": "1", "backend": "portable"}
	record("udp_rx_drain", baseRx, "ns/op", labels)
	record("udp_tx_send", baseTx, "ns/op", labels)

	if !osabs.MmsgSupported() {
		printf("mmsg backend not compiled in; batch sweep == portable rows\n")
	}
	for _, k := range batchSizes {
		rxNs, txNs, fps, err := e17Row(k, false)
		must(err)
		printf("mmsg  batch=%-6d %8.0f rx ns/f %8.0f tx ns/f %10.0f kpps rx  %6.1f frames/syscall  (x%.2f)\n",
			k, rxNs, txNs, 1e6/rxNs, fps, baseRx/rxNs)
		labels := map[string]string{"batch": fmt.Sprint(k), "backend": "mmsg"}
		record("udp_rx_drain", rxNs, "ns/op", labels)
		record("udp_tx_send", txNs, "ns/op", labels)
		record("udp_rx_frames_per_syscall", fps, "frames/syscall", labels)
	}
}
