// Forwarding-throughput experiments: the data-plane fast path.
// E3 Router CF vs static baselines, E11 batched fast path, E12 sharded
// multi-core scale-out.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/internal/baseline"
	"netkit/internal/trace"
	"netkit/router"
)

func e3Forwarding() {
	header("E3", "forwarding throughput: Router CF vs Click-like static vs monolith")
	gen, err := trace.NewGenerator(trace.Config{Seed: 3, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	// Fresh copies per system per run: every packet is processed exactly
	// once from its pristine state, so TTL mutation cannot leak between
	// runs.
	freshRaw := func() [][]byte {
		out := make([][]byte, len(master))
		for i, p := range master {
			out[i] = append([]byte(nil), p...)
		}
		return out
	}
	// Every system performs the same per-packet function: one IPv4 TTL
	// decrement (with incremental checksum) plus k counting stages.
	printf("%-10s %14s %14s %14s\n", "chain", "netkit kpps", "click kpps", "monolith kpps")
	for _, chainLen := range []int{1, 2, 4, 8} {
		// NETKIT: IPv4Proc then a chain of counters ending in a dropper.
		capsule := core.NewCapsule("e3")
		v4 := router.NewIPv4Proc(false)
		must(capsule.Insert("v4", v4))
		first := router.IPacketPush(v4)
		prev := "v4"
		for i := 0; i < chainLen; i++ {
			name := fmt.Sprintf("c%d", i)
			cnt := router.NewCounter()
			must(capsule.Insert(name, cnt))
			_, err := router.ConnectPush(capsule, prev, "out", name)
			must(err)
			prev = name
		}
		must(capsule.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(capsule, prev, "out", "drop")
		must(err)
		// Packets are wrapped once at ingress (the NIC source's job), so
		// wrapping happens outside the timed loop.
		nkPkts := make([]*router.Packet, nPkts)
		for i, raw := range freshRaw() {
			nkPkts[i] = router.NewPacket(raw)
		}
		runtime.GC()
		start := time.Now()
		for _, p := range nkPkts {
			_ = first.Push(p)
		}
		nkKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Click-like: same chain statically composed.
		click := baseline.NewClickRouter()
		must(click.Add(baseline.DecTTL()))
		counters := make([]uint64, chainLen)
		for i := 0; i < chainLen; i++ {
			must(click.Add(baseline.CountPkts(&counters[i])))
		}
		must(click.Build())
		clickPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range clickPkts {
			_, _ = click.Run(raw)
		}
		clickKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Monolith: hand-fused decrement+count, by construction flat in k.
		mono := baseline.NewMonolith(false)
		monoPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range monoPkts {
			_ = mono.Run(raw)
		}
		monoKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		printf("%-10d %14.0f %14.0f %14.0f\n", chainLen, nkKpps, clickKpps, monoKpps)
		chain := map[string]string{"chain": fmt.Sprint(chainLen)}
		record("forwarding_netkit", nkKpps, "kpps", chain)
		record("forwarding_click", clickKpps, "kpps", chain)
		record("forwarding_monolith", monoKpps, "kpps", chain)
	}
}

// ---------------------------------------------------------------------------

func e11Batched() {
	header("E11", "batched fast path: PushBatch amortises the binding crossing (DESIGN.md §4)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 7, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000

	// The forwarding function under test: IPv4 TTL decrement plus two
	// counting stages ending in a dropper (the E3 netkit chain).
	build := func() router.IPacketPush {
		c := core.NewCapsule("e11")
		v4 := router.NewIPv4Proc(false)
		must(c.Insert("v4", v4))
		prev := "v4"
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("c%d", i)
			must(c.Insert(name, router.NewCounter()))
			_, err := router.ConnectPush(c, prev, "out", name)
			must(err)
			prev = name
		}
		must(c.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(c, prev, "out", "drop")
		must(err)
		return v4
	}
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	wrap := func() []*router.Packet {
		out := make([]*router.Packet, len(master))
		for i, raw := range master {
			out[i] = router.NewPacket(append([]byte(nil), raw...))
		}
		return out
	}

	first := build()
	pkts := wrap()
	runtime.GC()
	start := time.Now()
	for _, p := range pkts {
		_ = first.Push(p)
	}
	perKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
	printf("%-14s %14.0f kpps  (x%.2f)\n", "per-packet", perKpps, 1.0)
	record("batch_forwarding", perKpps, "kpps", map[string]string{"batch": "per-packet"})

	for _, k := range batchSizes {
		first := build()
		pkts := wrap()
		runtime.GC()
		start := time.Now()
		for lo := 0; lo < len(pkts); lo += k {
			hi := lo + k
			if hi > len(pkts) {
				hi = len(pkts)
			}
			_ = router.ForwardBatch(first, pkts[lo:hi])
		}
		kpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
		printf("batch=%-8d %14.0f kpps  (x%.2f)\n", k, kpps, kpps/perKpps)
		record("batch_forwarding", kpps, "kpps", map[string]string{"batch": fmt.Sprint(k)})
	}
}

// ---------------------------------------------------------------------------

func e12Sharded() {
	header("E12", "sharded multi-core scale-out: RSS flow dispatch over parallel Router CF replicas (DESIGN.md §4.5)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 12, Flows: 64, UDPShare: 100})
	must(err)
	const nPool = 1024
	pkts := make([]*router.Packet, nPool)
	for i := range pkts {
		raw, err := gen.NextFixed(64)
		must(err)
		pkts[i] = router.NewPacket(raw)
	}
	// Per-shard replica: two checksum validations plus a counter — enough
	// read-only per-packet work for parallel replicas to matter.
	replica := func(shard int, fw *cf.Framework) (string, error) {
		names := []string{
			router.ShardName(shard, "val1"),
			router.ShardName(shard, "val2"),
			router.ShardName(shard, "cnt"),
		}
		comps := []core.Component{
			router.NewChecksumValidator(), router.NewChecksumValidator(), router.NewCounter(),
		}
		for i, n := range names {
			if err := fw.Admit(n, comps[i]); err != nil {
				return "", err
			}
		}
		chain := append(names, router.ShardName(shard, "egress"))
		for i := 0; i+1 < len(chain); i++ {
			if _, err := fw.Capsule().Bind(chain[i], "out", chain[i+1], router.IPacketPushID); err != nil {
				return "", err
			}
		}
		return names[0], nil
	}
	const total = 200_000
	printf("host CPUs: %d (near-linear scaling needs >= the shard count)\n", runtime.NumCPU())
	type e12Point struct {
		n    int
		kpps float64
	}
	var points []e12Point
	for _, n := range shardCounts {
		capsule := core.NewCapsule("e12")
		s, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: n}, replica)
		must(err)
		must(capsule.Insert("fwd", s))
		must(capsule.Insert("drop", router.NewDropper()))
		_, err = router.ConnectPush(capsule, "fwd", "out", "drop")
		must(err)
		ctx := context.Background()
		must(capsule.StartAll(ctx))
		drive := func(count int) time.Duration {
			start := time.Now()
			sent := 0
			for sent < count {
				lo := sent % nPool
				hi := lo + 32
				if hi > nPool {
					hi = nPool
				}
				if hi-lo > count-sent {
					hi = lo + (count - sent)
				}
				must(s.PushBatch(pkts[lo:hi]))
				sent += hi - lo
			}
			qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			must(s.Quiesce(qctx))
			return time.Since(start)
		}
		drive(total / 4) // warm-up
		before := make([]uint64, n)
		for i := 0; i < n; i++ {
			before[i] = s.ShardStats(i).In
		}
		elapsed := drive(total)
		// Per-shard kpps breakdown from the per-replica stats, so the
		// -json trajectory shows how evenly RSS spread the flows.
		for i := 0; i < n; i++ {
			lane := float64(s.ShardStats(i).In-before[i]) / elapsed.Seconds() / 1e3
			record("sharded_forwarding_shard", lane, "kpps", map[string]string{
				"shards": fmt.Sprint(n), "shard": fmt.Sprint(i), "batch": "32",
			})
		}
		must(capsule.StopAll(ctx))
		kpps := float64(total) / elapsed.Seconds() / 1e3
		points = append(points, e12Point{n: n, kpps: kpps})
		record("sharded_forwarding", kpps, "kpps", map[string]string{
			"shards": fmt.Sprint(n), "batch": "32", "cpus": fmt.Sprint(runtime.NumCPU()),
		})
	}
	// The speedup column is anchored to the shards=1 point regardless of
	// sweep order (falling back to the first point when 1 isn't swept),
	// so "x at 4 shards" always means "vs one shard".
	base := points[0].kpps
	baseN := points[0].n
	for _, p := range points {
		if p.n == 1 {
			base, baseN = p.kpps, 1
			break
		}
	}
	printf("%-10s %14s %16s\n", "shards", "kpps", fmt.Sprintf("vs shards=%d", baseN))
	for _, p := range points {
		printf("%-10d %14.0f %15.2fx\n", p.n, p.kpps, p.kpps/base)
	}
}
