// Forwarding-throughput experiments: the data-plane fast path.
// E3 Router CF vs static baselines, E11 batched fast path, E12 sharded
// multi-core scale-out, E16 bind-time chain fusion.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/internal/baseline"
	"netkit/internal/trace"
	"netkit/router"
)

func e3Forwarding() {
	header("E3", "forwarding throughput: Router CF vs Click-like static vs monolith")
	gen, err := trace.NewGenerator(trace.Config{Seed: 3, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	// Fresh copies per system per run: every packet is processed exactly
	// once from its pristine state, so TTL mutation cannot leak between
	// runs.
	freshRaw := func() [][]byte {
		out := make([][]byte, len(master))
		for i, p := range master {
			out[i] = append([]byte(nil), p...)
		}
		return out
	}
	// Every system performs the same per-packet function: one IPv4 TTL
	// decrement (with incremental checksum) plus k counting stages.
	printf("%-10s %14s %14s %14s\n", "chain", "netkit kpps", "click kpps", "monolith kpps")
	for _, chainLen := range []int{1, 2, 4, 8} {
		// NETKIT: IPv4Proc then a chain of counters ending in a dropper.
		capsule := core.NewCapsule("e3")
		v4 := router.NewIPv4Proc(false)
		must(capsule.Insert("v4", v4))
		first := router.IPacketPush(v4)
		prev := "v4"
		for i := 0; i < chainLen; i++ {
			name := fmt.Sprintf("c%d", i)
			cnt := router.NewCounter()
			must(capsule.Insert(name, cnt))
			_, err := router.ConnectPush(capsule, prev, "out", name)
			must(err)
			prev = name
		}
		must(capsule.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(capsule, prev, "out", "drop")
		must(err)
		// Packets are wrapped once at ingress (the NIC source's job), so
		// wrapping happens outside the timed loop.
		nkPkts := make([]*router.Packet, nPkts)
		for i, raw := range freshRaw() {
			nkPkts[i] = router.NewPacket(raw)
		}
		runtime.GC()
		start := time.Now()
		for _, p := range nkPkts {
			_ = first.Push(p)
		}
		nkKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Click-like: same chain statically composed.
		click := baseline.NewClickRouter()
		must(click.Add(baseline.DecTTL()))
		counters := make([]uint64, chainLen)
		for i := 0; i < chainLen; i++ {
			must(click.Add(baseline.CountPkts(&counters[i])))
		}
		must(click.Build())
		clickPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range clickPkts {
			_, _ = click.Run(raw)
		}
		clickKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		// Monolith: hand-fused decrement+count, by construction flat in k.
		mono := baseline.NewMonolith(false)
		monoPkts := freshRaw()
		runtime.GC()
		start = time.Now()
		for _, raw := range monoPkts {
			_ = mono.Run(raw)
		}
		monoKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		printf("%-10d %14.0f %14.0f %14.0f\n", chainLen, nkKpps, clickKpps, monoKpps)
		chain := map[string]string{"chain": fmt.Sprint(chainLen)}
		record("forwarding_netkit", nkKpps, "kpps", chain)
		record("forwarding_click", clickKpps, "kpps", chain)
		record("forwarding_monolith", monoKpps, "kpps", chain)
	}
}

// ---------------------------------------------------------------------------

func e11Batched() {
	header("E11", "batched fast path: PushBatch amortises the binding crossing (DESIGN.md §4)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 7, Flows: 32, UDPShare: 100})
	must(err)
	const nPkts = 200_000

	// The forwarding function under test: IPv4 TTL decrement plus two
	// counting stages ending in a dropper (the E3 netkit chain).
	build := func() router.IPacketPush {
		c := core.NewCapsule("e11")
		v4 := router.NewIPv4Proc(false)
		must(c.Insert("v4", v4))
		prev := "v4"
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("c%d", i)
			must(c.Insert(name, router.NewCounter()))
			_, err := router.ConnectPush(c, prev, "out", name)
			must(err)
			prev = name
		}
		must(c.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(c, prev, "out", "drop")
		must(err)
		return v4
	}
	master := make([][]byte, nPkts)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	wrap := func() []*router.Packet {
		out := make([]*router.Packet, len(master))
		for i, raw := range master {
			out[i] = router.NewPacket(append([]byte(nil), raw...))
		}
		return out
	}

	first := build()
	pkts := wrap()
	runtime.GC()
	start := time.Now()
	for _, p := range pkts {
		_ = first.Push(p)
	}
	perKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
	printf("%-14s %14.0f kpps  (x%.2f)\n", "per-packet", perKpps, 1.0)
	record("batch_forwarding", perKpps, "kpps", map[string]string{"batch": "per-packet"})

	for _, k := range batchSizes {
		first := build()
		pkts := wrap()
		runtime.GC()
		start := time.Now()
		for lo := 0; lo < len(pkts); lo += k {
			hi := lo + k
			if hi > len(pkts) {
				hi = len(pkts)
			}
			_ = router.ForwardBatch(first, pkts[lo:hi])
		}
		kpps := float64(nPkts) / time.Since(start).Seconds() / 1e3
		printf("batch=%-8d %14.0f kpps  (x%.2f)\n", k, kpps, kpps/perKpps)
		record("batch_forwarding", kpps, "kpps", map[string]string{"batch": fmt.Sprint(k)})
	}
}

// ---------------------------------------------------------------------------

func e12Sharded() {
	header("E12", "sharded multi-core scale-out: RSS flow dispatch over parallel Router CF replicas (DESIGN.md §4.5)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 12, Flows: 64, UDPShare: 100})
	must(err)
	const nPool = 1024
	pkts := make([]*router.Packet, nPool)
	for i := range pkts {
		raw, err := gen.NextFixed(64)
		must(err)
		pkts[i] = router.NewPacket(raw)
	}
	// Per-shard replica: two checksum validations plus a counter — enough
	// read-only per-packet work for parallel replicas to matter.
	replica := func(shard int, fw *cf.Framework) (string, error) {
		names := []string{
			router.ShardName(shard, "val1"),
			router.ShardName(shard, "val2"),
			router.ShardName(shard, "cnt"),
		}
		comps := []core.Component{
			router.NewChecksumValidator(), router.NewChecksumValidator(), router.NewCounter(),
		}
		for i, n := range names {
			if err := fw.Admit(n, comps[i]); err != nil {
				return "", err
			}
		}
		chain := append(names, router.ShardName(shard, "egress"))
		for i := 0; i+1 < len(chain); i++ {
			if _, err := fw.Capsule().Bind(chain[i], "out", chain[i+1], router.IPacketPushID); err != nil {
				return "", err
			}
		}
		return names[0], nil
	}
	const total = 200_000
	printf("host CPUs: %d (near-linear scaling needs >= the shard count)\n", runtime.NumCPU())
	type e12Point struct {
		n    int
		kpps float64
	}
	var points []e12Point
	for _, n := range shardCounts {
		capsule := core.NewCapsule("e12")
		s, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: n}, replica)
		must(err)
		must(capsule.Insert("fwd", s))
		must(capsule.Insert("drop", router.NewDropper()))
		_, err = router.ConnectPush(capsule, "fwd", "out", "drop")
		must(err)
		ctx := context.Background()
		must(capsule.StartAll(ctx))
		drive := func(count int) time.Duration {
			start := time.Now()
			sent := 0
			for sent < count {
				lo := sent % nPool
				hi := lo + 32
				if hi > nPool {
					hi = nPool
				}
				if hi-lo > count-sent {
					hi = lo + (count - sent)
				}
				must(s.PushBatch(pkts[lo:hi]))
				sent += hi - lo
			}
			qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			must(s.Quiesce(qctx))
			return time.Since(start)
		}
		drive(total / 4) // warm-up
		before := make([]uint64, n)
		for i := 0; i < n; i++ {
			before[i] = s.ShardStats(i).In
		}
		elapsed := drive(total)
		// Per-shard kpps breakdown from the per-replica stats, so the
		// -json trajectory shows how evenly RSS spread the flows.
		for i := 0; i < n; i++ {
			lane := float64(s.ShardStats(i).In-before[i]) / elapsed.Seconds() / 1e3
			record("sharded_forwarding_shard", lane, "kpps", map[string]string{
				"shards": fmt.Sprint(n), "shard": fmt.Sprint(i), "batch": "32",
			})
		}
		must(capsule.StopAll(ctx))
		kpps := float64(total) / elapsed.Seconds() / 1e3
		points = append(points, e12Point{n: n, kpps: kpps})
		record("sharded_forwarding", kpps, "kpps", map[string]string{
			"shards": fmt.Sprint(n), "batch": "32", "cpus": fmt.Sprint(runtime.NumCPU()),
		})
	}
	// The speedup column is anchored to the shards=1 point regardless of
	// sweep order (falling back to the first point when 1 isn't swept),
	// so "x at 4 shards" always means "vs one shard".
	base := points[0].kpps
	baseN := points[0].n
	for _, p := range points {
		if p.n == 1 {
			base, baseN = p.kpps, 1
			break
		}
	}
	printf("%-10s %14s %16s\n", "shards", "kpps", fmt.Sprintf("vs shards=%d", baseN))
	for _, p := range points {
		printf("%-10d %14.0f %15.2fx\n", p.n, p.kpps, p.kpps/base)
	}
}

// ---------------------------------------------------------------------------

func e16Fused() {
	header("E16", "bind-time chain fusion: the E3 chain compiled into one plan vs hop-by-hop and the monolith (DESIGN.md §8)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 16, Flows: 32, UDPShare: 100})
	must(err)
	// The drive recycles a bounded descriptor ring (as a NIC would) rather
	// than streaming a fresh multi-megabyte packet array: E16's claim is
	// about the per-hop binding-crossing tax, and a cold-DRAM stream hides
	// it behind memory latency that no amount of devirtualisation removes.
	const nPkts = 200_000 // packets offered per measurement
	const ring = 8192     // recycled descriptor ring
	const batch = 128
	master := make([][]byte, ring)
	for i := range master {
		master[i], err = gen.NextFixed(64)
		must(err)
	}
	freshPkts := func() ([]*router.Packet, []byte) {
		out := make([]*router.Packet, len(master))
		ttls := make([]byte, len(master))
		for i, raw := range master {
			out[i] = router.NewPacket(append([]byte(nil), raw...))
			ttls[i] = raw[8]
		}
		return out, ttls
	}
	driveBatched := func(push func([]*router.Packet) error) float64 {
		pkts, ttls := freshPkts()
		runtime.GC()
		start := time.Now()
		for sent := 0; sent < nPkts; sent += batch {
			lo := sent % ring
			hi := lo + batch
			if hi > ring {
				hi = ring
			}
			// Rearm TTLs: the recycled packets were decremented last lap.
			for i := lo; i < hi; i++ {
				pkts[i].Data[8] = ttls[i]
			}
			_ = push(pkts[lo:hi])
		}
		return float64(nPkts) / time.Since(start).Seconds() / 1e3
	}
	// The same per-packet function as E3 — one IPv4 TTL decrement plus k
	// counting stages into a dropper — batched at 128 everywhere, so the
	// fused/unfused delta isolates the binding-crossing tax, not batching.
	buildChain := func(chainLen int, head func(c *core.Capsule) string) (*core.Capsule, string) {
		capsule := core.NewCapsule("e16")
		prev := head(capsule)
		must(capsule.Insert("v4", router.NewIPv4Proc(false)))
		_, err := router.ConnectPush(capsule, prev, "out", "v4")
		must(err)
		prev = "v4"
		for i := 0; i < chainLen; i++ {
			name := fmt.Sprintf("c%d", i)
			must(capsule.Insert(name, router.NewCounter()))
			_, err := router.ConnectPush(capsule, prev, "out", name)
			must(err)
			prev = name
		}
		must(capsule.Insert("drop", router.NewDropper()))
		_, err = router.ConnectPush(capsule, prev, "out", "drop")
		must(err)
		return capsule, prev
	}
	printf("%-10s %14s %14s %14s %12s\n", "chain", "fused kpps", "unfused kpps", "monolith kpps", "vs monolith")
	for _, chainLen := range []int{1, 2, 4, 8} {
		// Fused: the chain headed by a FastPath, compiled into one plan.
		capsule, _ := buildChain(chainLen, func(c *core.Capsule) string {
			must(c.Insert("fp", router.NewFastPath(c)))
			return "fp"
		})
		comp, _ := capsule.Component("fp")
		fp := comp.(*router.FastPath)
		fusedKpps := driveBatched(fp.PushBatch)
		if got, want := fp.Fuser().FusedHops(), chainLen+2; got != want {
			must(fmt.Errorf("E16: plan fused %d hops, want %d", got, want))
		}

		// Unfused control: the identical chain driven hop-by-hop batched.
		ucapsule := core.NewCapsule("e16u")
		must(ucapsule.Insert("v4", router.NewIPv4Proc(false)))
		uprev := "v4"
		for i := 0; i < chainLen; i++ {
			name := fmt.Sprintf("c%d", i)
			must(ucapsule.Insert(name, router.NewCounter()))
			_, err := router.ConnectPush(ucapsule, uprev, "out", name)
			must(err)
			uprev = name
		}
		must(ucapsule.Insert("drop", router.NewDropper()))
		_, err := router.ConnectPush(ucapsule, uprev, "out", "drop")
		must(err)
		ucomp, _ := ucapsule.Component("v4")
		uentry := ucomp.(router.IPacketPush)
		unfusedKpps := driveBatched(func(b []*router.Packet) error {
			return router.ForwardBatch(uentry, b)
		})

		// Monolith: hand-fused decrement+count, by construction flat in k,
		// driven over the same recycled ring with the same TTL rearm.
		mono := baseline.NewMonolith(false)
		monoPkts := make([][]byte, len(master))
		monoTTLs := make([]byte, len(master))
		for i, p := range master {
			monoPkts[i] = append([]byte(nil), p...)
			monoTTLs[i] = p[8]
		}
		runtime.GC()
		start := time.Now()
		for sent := 0; sent < nPkts; sent += batch {
			lo := sent % ring
			hi := lo + batch
			if hi > ring {
				hi = ring
			}
			for i := lo; i < hi; i++ {
				monoPkts[i][8] = monoTTLs[i]
				_ = mono.Run(monoPkts[i])
			}
		}
		monoKpps := float64(nPkts) / time.Since(start).Seconds() / 1e3

		printf("%-10d %14.0f %14.0f %14.0f %11.2fx\n",
			chainLen, fusedKpps, unfusedKpps, monoKpps, monoKpps/fusedKpps)
		chain := map[string]string{"chain": fmt.Sprint(chainLen), "batch": fmt.Sprint(batch)}
		record("fused_forwarding", fusedKpps, "kpps", chain)
		record("unfused_forwarding", unfusedKpps, "kpps", chain)
		record("fused_monolith", monoKpps, "kpps", chain)
	}

	// The meta-level price: one de-specialise (interceptor install +
	// idle fence) / re-fuse round trip on the chain-8 plan.
	capsule, _ := buildChain(8, func(c *core.Capsule) string {
		must(c.Insert("fp", router.NewFastPath(c)))
		return "fp"
	})
	comp, _ := capsule.Component("fp")
	fp := comp.(*router.FastPath)
	warm, _ := freshPkts()
	must(fp.PushBatch(warm[:1]))
	var mid *core.Binding
	for _, bd := range capsule.BindingsOf("c0") {
		mid = bd
	}
	noop := core.PrePost(nil, nil)
	const rounds = 2000
	runtime.GC()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		must(mid.AddInterceptor(core.Interceptor{Name: "probe", Wrap: noop}))
		fp.Fuser().WaitIdle(time.Second)
		must(mid.RemoveInterceptor("probe"))
		p := router.NewPacket(append([]byte(nil), master[0]...))
		_ = fp.Push(p) // first crossing after removal re-fuses
	}
	rt := time.Since(start).Seconds() / rounds * 1e6
	printf("despecialise/re-fuse round trip: %.2f us\n", rt)
	record("fuse_roundtrip", rt, "us", map[string]string{"chain": "8"})
}
