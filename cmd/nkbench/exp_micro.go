// Microbenchmark experiments: per-call overheads and footprints.
// E1 call overhead, E2 memory footprint, E5 classification cost,
// E6 out-of-process bindings, E10 buffer management and schedulers,
// E15 compiled classification and the megaflow verdict cache,
// E18 batched pipelined out-of-process bindings.
package main

import (
	"fmt"
	"runtime"
	"sort"

	"netkit/core"
	"netkit/internal/appsvc"
	"netkit/internal/buffers"
	"netkit/internal/filter"
	"netkit/internal/ipc"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func e1CallOverhead() {
	header("E1", "cross-component call overhead: fused bindings vs interception chains")
	const iters = 2_000_000
	sinkComp := router.NewDropper()
	pkt := mustPacket(53)

	// Direct function call baseline.
	directNs := measure(iters, func() { _ = sinkComp.Push(pkt) })

	// Receptacle-mediated (fused) call.
	capsule := core.NewCapsule("e1")
	cnt := router.NewCounter()
	must(capsule.Insert("cnt", cnt))
	must(capsule.Insert("drop", router.NewDropper()))
	b, err := router.ConnectPush(capsule, "cnt", "out", "drop")
	must(err)
	fusedNs := measure(iters, func() { _ = cnt.Push(pkt) })

	printf("%-28s %10.1f ns/op  (x%.2f)\n", "direct method call", directNs, 1.0)
	record("direct_call", directNs, "ns/op", nil)
	printf("%-28s %10.1f ns/op  (x%.2f)\n", "fused binding (receptacle)", fusedNs, fusedNs/directNs)
	record("fused_binding", fusedNs, "ns/op", nil)
	for _, k := range []int{1, 2, 4, 8} {
		for b.Interceptors() != nil && len(b.Interceptors()) > 0 {
			must(b.RemoveInterceptor(b.Interceptors()[0]))
		}
		for i := 0; i < k; i++ {
			must(b.AddInterceptor(core.Interceptor{
				Name: fmt.Sprintf("noop%d", i),
				Wrap: core.PrePost(nil, nil),
			}))
		}
		ns := measure(iters/4, func() { _ = cnt.Push(pkt) })
		printf("binding + %d interceptor(s)   %10.1f ns/op  (x%.2f)\n", k, ns, ns/directNs)
		record("intercepted_binding", ns, "ns/op", map[string]string{"interceptors": fmt.Sprint(k)})
	}
}

// ---------------------------------------------------------------------------

func e2Footprint() {
	header("E2", "bespoke configurations minimise memory footprint (cf. 18KB WinCE OpenCOM)")
	configs := []struct {
		name  string
		build func() any
	}{
		{"empty capsule", func() any { return core.NewCapsule("empty") }},
		{"minimal forwarder (3 comps)", func() any {
			c := core.NewCapsule("min")
			must(c.Insert("cnt", router.NewCounter()))
			must(c.Insert("v4", router.NewIPv4Proc(false)))
			must(c.Insert("drop", router.NewDropper()))
			_, err := router.ConnectPush(c, "cnt", "out", "v4")
			must(err)
			_, err = router.ConnectPush(c, "v4", "out", "drop")
			must(err)
			return c
		}},
		{"figure-3 composite", func() any {
			c := core.NewCapsule("f3")
			comp, err := router.NewFigure3Composite(c, router.Figure3Config{})
			must(err)
			must(c.Insert("gw", comp))
			return c
		}},
		{"figure-3 + classifier + EE", func() any {
			c := core.NewCapsule("full")
			comp, err := router.NewFigure3Composite(c, router.Figure3Config{})
			must(err)
			must(c.Insert("gw", comp))
			cls, err := router.NewClassifier("fast", "default")
			must(err)
			must(c.Insert("cls", cls))
			must(c.Insert("ee", appsvc.NewExecEnv()))
			return c
		}},
	}
	for _, cfg := range configs {
		bytes := heapDelta(cfg.build)
		printf("%-32s %10.1f KiB\n", cfg.name, float64(bytes)/1024)
		record("footprint", float64(bytes)/1024, "KiB", map[string]string{"config": cfg.name})
	}
}

// heapDelta measures the live-heap growth caused by build (median of 5).
func heapDelta(build func() any) uint64 {
	samples := make([]uint64, 0, 5)
	for i := 0; i < 5; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		obj := build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			samples = append(samples, after.HeapAlloc-before.HeapAlloc)
		} else {
			samples = append(samples, 0)
		}
		runtime.KeepAlive(obj)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// ---------------------------------------------------------------------------

func e5Classifier() {
	header("E5", "register_filter classification cost vs table size (VM vs closure matcher)")
	gen, err := trace.NewGenerator(trace.Config{Seed: 5, Flows: 256, UDPShare: 100})
	must(err)
	views := make([]filter.View, 4096)
	for i := range views {
		raw, err := gen.Next()
		must(err)
		views[i] = filter.Extract(raw)
	}
	printf("%-8s %16s %16s\n", "rules", "vm ns/lookup", "closure ns/lookup")
	for _, n := range []int{1, 4, 16, 64, 256, 1024} {
		specs := make([]string, n)
		for i := range specs {
			specs[i] = fmt.Sprintf("udp and dst port %d", 20000+i) // never match: worst case
		}
		progs := make([]*filter.Program, n)
		closures := make([]filter.Matcher, n)
		for i, s := range specs {
			progs[i], err = filter.CompileToProgram(s)
			must(err)
			closures[i], err = filter.Compile(s)
			must(err)
		}
		iters := 200_000 / n
		if iters < 200 {
			iters = 200
		}
		vmNs := measure(iters, func() {
			v := &views[0]
			for _, p := range progs {
				if p.Match(v) {
					break
				}
			}
		})
		clNs := measure(iters, func() {
			v := &views[0]
			for _, c := range closures {
				if c.Match(v) {
					break
				}
			}
		})
		printf("%-8d %16.1f %16.1f\n", n, vmNs, clNs)
		rules := map[string]string{"rules": fmt.Sprint(n)}
		record("classify_vm", vmNs, "ns/lookup", rules)
		record("classify_closure", clNs, "ns/lookup", rules)
	}
}

// ---------------------------------------------------------------------------

func e6OutOfProc() {
	header("E6", "in-process vs out-of-process (isolated) bindings; crash containment")
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})

	inProc := router.NewCounter()
	pkt := mustPacket(1)
	inNs := measure(1_000_000, func() { _ = inProc.Push(pkt) })

	client, _, cleanup := ipc.HostPair(reg)
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	must(err)
	raw := append([]byte(nil), pkt.Data...)
	outNs := measure(5_000, func() { _ = rc.Push(router.NewPacket(raw)) })

	printf("in-process push               %10.1f ns/op\n", inNs)
	record("inproc_push", inNs, "ns/op", nil)
	printf("out-of-process push           %10.1f ns/op  (x%.0f)\n", outNs, outNs/inNs)
	record("outproc_push", outNs, "ns/op", nil)
	printf("crash containment             verified by internal/ipc tests (panic -> error, host survives)\n")
}

// ---------------------------------------------------------------------------

func e10Resources() {
	header("E10", "buffer-management CF and pluggable schedulers")
	pool := buffers.MustNewPool(buffers.DefaultClasses, 256, 0)
	pooledNs := measure(1_000_000, func() {
		b, err := pool.Get(1500)
		if err == nil {
			_ = b.Release()
		}
	})
	// The raw allocation must escape, as packet buffers do in practice.
	rawNs := measure(1_000_000, func() {
		allocSink = make([]byte, 1500)
	})
	printf("pooled buffer get/release     %10.1f ns/op\n", pooledNs)
	record("buffer_pooled", pooledNs, "ns/op", nil)
	printf("heap make([]byte, 1500)       %10.1f ns/op\n", rawNs)
	record("buffer_heap", rawNs, "ns/op", nil)

	// WFQ service proportions under 3:1 weights.
	mgr := resources.NewManager()
	heavy, err := mgr.CreateTask(resources.TaskSpec{Name: "heavy", Weight: 3})
	must(err)
	light, err := mgr.CreateTask(resources.TaskSpec{Name: "light", Weight: 1})
	must(err)
	sched := resources.NewWFQScheduler()
	for i := 0; i < 4000; i++ {
		sched.Push(&resources.WorkItem{Task: heavy, Run: func() {}})
		sched.Push(&resources.WorkItem{Task: light, Run: func() {}})
	}
	served := map[string]int{}
	for i := 0; i < 4000; i++ {
		it := sched.Pop()
		served[it.Task.Name()]++
	}
	printf("wfq service at weights 3:1    heavy=%d light=%d (ratio %.2f)\n",
		served["heavy"], served["light"], float64(served["heavy"])/float64(served["light"]))
	record("wfq_ratio", float64(served["heavy"])/float64(served["light"]), "ratio",
		map[string]string{"weights": "3:1"})
}

// allocSink defeats escape analysis in E10's raw-allocation baseline.
var allocSink []byte

// ---------------------------------------------------------------------------

func e15Compiled() {
	header("E15", "compiled classification + megaflow cache: flat lookup from 1 to 10k rules")
	gen, err := trace.NewGenerator(trace.Config{Seed: 15, Flows: 1, UDPShare: 100})
	must(err)
	raw, err := gen.NextFixed(64)
	must(err)
	view := filter.Extract(raw)
	printf("%-8s %16s %20s %16s\n", "rules", "vm ns/lookup", "compiled ns/lookup", "cached ns/push")
	for _, n := range []int{1, 64, 1000, 10000} {
		tbl := filter.NewTable()
		for i := 0; i < n; i++ {
			_, err := tbl.Add(fmt.Sprintf("udp and dst port %d", 20000+i), i, "out")
			must(err)
		}
		iters := 200_000 / n
		if iters < 200 {
			iters = 200
		}
		vmNs := measure(iters, func() { _, _ = tbl.LookupViewVM(&view) })
		snap := tbl.Snapshot()
		compiledNs := measure(400_000, func() { _, _ = snap.Lookup(&view) })

		// End-to-end classifier push with the flow's verdict warm in the
		// megaflow cache — the steady state of a repeat flow.
		capsule := core.NewCapsule("e15")
		cls, err := router.NewClassifier("out", "default")
		must(err)
		must(capsule.Insert("cls", cls))
		must(capsule.Insert("sink", router.NewDropper()))
		must(capsule.Insert("dsink", router.NewDropper()))
		_, err = router.ConnectPush(capsule, "cls", "out", "sink")
		must(err)
		_, err = router.ConnectPush(capsule, "cls", "default", "dsink")
		must(err)
		for i := 0; i < n; i++ {
			_, err := cls.RegisterFilter(fmt.Sprintf("udp and dst port %d", 20000+i), i, "out")
			must(err)
		}
		p := router.NewPacket(raw)
		must(cls.Push(p)) // warm
		cachedNs := measure(400_000, func() { _ = cls.Push(p) })

		printf("%-8d %16.1f %20.1f %16.1f\n", n, vmNs, compiledNs, cachedNs)
		rules := map[string]string{"rules": fmt.Sprint(n)}
		record("classify_vm", vmNs, "ns/lookup", rules)
		record("classify_compiled", compiledNs, "ns/lookup", rules)
		record("classify_cached", cachedNs, "ns/op", rules)
	}
	// The probe alone — the constant a repeat flow pays regardless of the
	// table behind it.
	fc := router.NewFlowCache(router.DefaultFlowCacheCap)
	p := router.NewPacket(raw)
	h := router.FlowHash(p)
	fc.InsertView(h, &view, 1, "out", true)
	probeNs := measure(1_000_000, func() { _, _, _ = fc.ProbeView(h, &view, 1) })
	printf("%-28s %10.1f ns/op\n", "megaflow probe (hit)", probeNs)
	record("cache_probe", probeNs, "ns/op", nil)
}

// ---------------------------------------------------------------------------

// e18RemoteCounter builds the standard E18 fixture: a Counter isolated
// behind an ipc.HostPair, reached through its RemoteComponent stand-in.
func e18RemoteCounter(cfg ipc.Config) (*ipc.RemoteComponent, func()) {
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})
	client, _, cleanup := ipc.HostPairCfg(reg, cfg)
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	must(err)
	return rc, cleanup
}

// e18PushBatch measures one pipelined PushBatch configuration: iters
// batches stream into the credit window, one Flush settles the tail, and
// the elapsed time is divided by the packets moved.
func e18PushBatch(cfg ipc.Config, batch, iters int) float64 {
	rc, cleanup := e18RemoteCounter(cfg)
	defer cleanup()
	raw := append([]byte(nil), mustPacket(18).Data...)
	pkts := make([]*router.Packet, batch)
	for i := range pkts {
		pkts[i] = router.NewPacket(raw)
	}
	must(rc.PushBatch(pkts)) // warm: name interning, pool priming
	must(rc.Flush())
	ns := measure(iters, func() { must(rc.PushBatch(pkts)) })
	must(rc.Flush())
	return ns / float64(batch)
}

func e18BatchedIPC() {
	header("E18", "batched pipelined out-of-proc bindings amortise the isolation crossing")

	inProc := router.NewCounter()
	pkt := mustPacket(18)
	inNs := measure(1_000_000, func() { _ = inProc.Push(pkt) })
	printf("%-28s %10.1f ns/pkt  (x%.1f)\n", "in-process push", inNs, 1.0)
	record("inproc_push", inNs, "ns/op", nil)

	// The despecialised reference: one gob round-trip per packet, the
	// E6 shape every cross-version fallback degrades to.
	gobRC, gobCleanup := e18RemoteCounter(ipc.Config{ForceGob: true})
	raw := append([]byte(nil), pkt.Data...)
	gobNs := measure(5_000, func() { must(gobRC.Push(router.NewPacket(raw))) })
	gobCleanup()
	printf("%-28s %10.1f ns/pkt  (x%.0f)\n", "per-packet gob round-trip", gobNs, gobNs/inNs)
	record("outproc_gob", gobNs, "ns/op", nil)

	for _, k := range batchSizes {
		iters := 200_000 / k
		if iters < 500 {
			iters = 500
		}
		ns := e18PushBatch(ipc.Config{}, k, iters)
		printf("pipelined batch=%-4d          %10.1f ns/pkt  (x%.1f)\n", k, ns, ns/inNs)
		record("outproc_pushbatch", ns, "ns/op", map[string]string{"batch": fmt.Sprint(k)})
	}
}
