// Command nkctl is the operator CLI for a running netkitd: it exercises
// the reflective control protocol — architecture inspection, per-component
// stats, filter management, and live component hot-swap.
//
// Usage:
//
//	nkctl [-addr host:port] graph
//	nkctl validate | constraints | dropped
//	nkctl stats [component]                      # uniform stats tree, JSON
//	nkctl watch [component] [samples] [interval] # sampled series, JSON
//	nkctl members
//	nkctl types
//	nkctl ifaces
//	nkctl iface <interface-id>
//	nkctl provided <component>
//	nkctl intercept <component> <receptacle>
//	nkctl audit <component> <receptacle>
//	nkctl chain <component> <receptacle>
//	nkctl unintercept <component> <receptacle>
//	nkctl tasks
//	nkctl filter <classifier> "<spec>" <output> [priority]
//	nkctl unfilter <classifier> <filter-id>
//	nkctl swap <old> <new> <type> [key=value ...]
//	nkctl ping
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"netkit/core"
	"netkit/internal/control"
	"netkit/resources"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nkctl:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7341", "netkitd control address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("no command; see -h")
	}
	client, err := control.Dial(*addr)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	switch args[0] {
	case "ping":
		var pong string
		if err := client.Do(&control.Request{Op: "ping"}, &pong); err != nil {
			return err
		}
		fmt.Println(pong)
		return nil
	case "graph":
		var g core.Graph
		if err := client.Do(&control.Request{Op: "graph"}, &g); err != nil {
			return err
		}
		printGraph(&g)
		return nil
	case "members", "types", "constraints", "ifaces":
		var list []string
		if err := client.Do(&control.Request{Op: args[0]}, &list); err != nil {
			return err
		}
		for _, m := range list {
			fmt.Println(m)
		}
		return nil
	case "validate":
		var verdict string
		if err := client.Do(&control.Request{Op: "validate"}, &verdict); err != nil {
			return err
		}
		fmt.Println(verdict)
		return nil
	case "dropped":
		var n uint64
		if err := client.Do(&control.Request{Op: "dropped"}, &n); err != nil {
			return err
		}
		fmt.Printf("dropped events: %d\n", n)
		return nil
	case "iface":
		if len(args) != 2 {
			return fmt.Errorf("usage: nkctl iface <interface-id>")
		}
		var d control.IfaceData
		if err := client.Do(&control.Request{Op: "iface", Iface: args[1]}, &d); err != nil {
			return err
		}
		fmt.Printf("%s — %s\n", d.ID, d.Doc)
		for _, op := range d.Ops {
			fmt.Printf("  %s(%d) -> %d  %s\n", op.Name, op.NumIn, op.NumOut, op.Doc)
		}
		return nil
	case "provided":
		if len(args) != 2 {
			return fmt.Errorf("usage: nkctl provided <component>")
		}
		var ids []string
		if err := client.Do(&control.Request{Op: "provided", Component: args[1]}, &ids); err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	case "intercept", "chain":
		if len(args) != 3 {
			return fmt.Errorf("usage: nkctl %s <component> <receptacle>", args[0])
		}
		req := &control.Request{Op: args[0], Component: args[1], Receptacle: args[2]}
		if args[0] == "intercept" {
			var ack string
			if err := client.Do(req, &ack); err != nil {
				return err
			}
			fmt.Printf("%s %s.%s\n", ack, args[1], args[2])
			return nil
		}
		var names []string
		if err := client.Do(req, &names); err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "audit", "unintercept":
		if len(args) != 3 {
			return fmt.Errorf("usage: nkctl %s <component> <receptacle>", args[0])
		}
		var ad control.AuditData
		if err := client.Do(&control.Request{
			Op: args[0], Component: args[1], Receptacle: args[2],
		}, &ad); err != nil {
			return err
		}
		fmt.Printf("%s.%s: %d calls\n", ad.Component, ad.Receptacle, ad.Calls)
		return nil
	case "tasks":
		var stats []resources.TaskStats
		if err := client.Do(&control.Request{Op: "tasks"}, &stats); err != nil {
			return err
		}
		for _, t := range stats {
			fmt.Printf("%-16s jobs=%d busy=%v mem=%d peak=%d rejected=%d\n",
				t.Name, t.Jobs, time.Duration(t.BusyNanos), t.MemUsed, t.MemPeak, t.Rejected)
		}
		return nil
	case "stats":
		if len(args) > 2 {
			return fmt.Errorf("usage: nkctl stats [component]")
		}
		req := &control.Request{Op: "stats"}
		if len(args) == 2 {
			req.Name = args[1]
		}
		var sd control.StatsData
		if err := client.Do(req, &sd); err != nil {
			return err
		}
		return printJSON(sd.Tree)
	case "watch":
		// nkctl watch [component] [samples] [interval-ms]: server-side
		// sampled series of the stats tree, printed as one JSON array.
		req := &control.Request{Op: "watch", Samples: 5, IntervalMS: 200}
		rest := args[1:]
		if len(rest) > 0 {
			if _, err := strconv.Atoi(rest[0]); err != nil {
				req.Name = rest[0]
				rest = rest[1:]
			}
		}
		if len(rest) > 0 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("bad sample count %q: %w", rest[0], err)
			}
			req.Samples = v
			rest = rest[1:]
		}
		if len(rest) > 0 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("bad interval %q: %w", rest[0], err)
			}
			req.IntervalMS = v
		}
		var samples []control.WatchSample
		if err := client.Do(req, &samples); err != nil {
			return err
		}
		return printJSON(samples)
	case "filter":
		if len(args) < 4 || len(args) > 5 {
			return fmt.Errorf("usage: nkctl filter <classifier> <spec> <output> [priority]")
		}
		req := &control.Request{
			Op: "filter", Classifier: args[1], Spec: args[2], Output: args[3],
		}
		if len(args) == 5 {
			p, err := strconv.Atoi(args[4])
			if err != nil {
				return fmt.Errorf("bad priority %q: %w", args[4], err)
			}
			req.Priority = p
		}
		var id uint64
		if err := client.Do(req, &id); err != nil {
			return err
		}
		fmt.Printf("filter %d installed\n", id)
		return nil
	case "unfilter":
		if len(args) != 3 {
			return fmt.Errorf("usage: nkctl unfilter <classifier> <filter-id>")
		}
		id, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad filter id %q: %w", args[2], err)
		}
		return client.Do(&control.Request{Op: "unfilter", Classifier: args[1], FilterID: id}, nil)
	case "swap":
		if len(args) < 4 {
			return fmt.Errorf("usage: nkctl swap <old> <new> <type> [key=value ...]")
		}
		cfg := map[string]string{}
		for _, kv := range args[4:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad config %q", kv)
			}
			cfg[parts[0]] = parts[1]
		}
		err := client.Do(&control.Request{
			Op: "swap", Name: args[1], New: args[2], Type: args[3], Cfg: cfg,
		}, nil)
		if err != nil {
			return err
		}
		fmt.Printf("swapped %s -> %s (%s)\n", args[1], args[2], args[3])
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// printJSON writes v to stdout as indented JSON: the machine-readable
// mirror of the stats meta-view, consumable by dashboards and scripts.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printGraph(g *core.Graph) {
	fmt.Printf("capsule %s: %d components, %d bindings\n", g.Capsule, len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		state := "stopped"
		if n.Started {
			state = "started"
		}
		fmt.Printf("  %-16s %-36s %s\n", n.Name, n.Type, state)
		for _, r := range n.Receptacles {
			bound := "unbound"
			if r.Bound {
				bound = "bound"
			}
			fmt.Printf("    .%-14s %-28s %s\n", r.Name, r.Iface, bound)
		}
	}
	for _, e := range g.Edges {
		ic := ""
		if len(e.Interceptors) > 0 {
			ic = fmt.Sprintf("  [interceptors: %s]", strings.Join(e.Interceptors, ","))
		}
		fmt.Printf("  #%d %s.%s -> %s (%s)%s\n", e.ID, e.From, e.Receptacle, e.To, e.Iface, ic)
	}
}
