// Command netkitd is the NETKIT router daemon: it loads a .nk
// configuration into a Router CF, starts the components, optionally drives
// synthetic traffic into a named component, and serves the reflective
// control protocol for nkctl.
//
// Usage:
//
//	netkitd -config router.nk -listen 127.0.0.1:7341 \
//	        -traffic-into cnt -pps 1000 -duration 10s
//
// With -adapt the daemon arms the reflective adaptation loop: every FIFO
// queue in the configuration gains a rule that hot-swaps it for a RED
// queue (state migrated, no packet lost) when its occupancy stays above
// 85% — decided purely from the capsule's stats tree, the same view
// `nkctl stats` serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"netkit"
	"netkit/adapt"
	"netkit/core"
	"netkit/internal/control"
	"netkit/internal/nkconfig"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netkitd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath  = flag.String("config", "", "path to .nk configuration (required)")
		listen      = flag.String("listen", "127.0.0.1:7341", "control protocol address")
		trafficInto = flag.String("traffic-into", "", "component to push synthetic traffic into")
		pps         = flag.Int("pps", 1000, "synthetic traffic rate (packets/sec)")
		flows       = flag.Int("flows", 64, "synthetic flow population")
		seed        = flag.Uint64("seed", 1, "traffic generator seed")
		duration    = flag.Duration("duration", 0, "run time (0 = until interrupted)")
		strict      = flag.Bool("strict-trust", false, "enforce out-of-process isolation for untrusted components")
		adaptLoop   = flag.Bool("adapt", false, "run the reflective adaptation loop (FIFO->RED swap on sustained queue occupancy)")
	)
	flag.Parse()
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	src, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}

	capsule := core.NewCapsule("netkitd")
	fw, err := router.NewFramework(capsule, *strict)
	if err != nil {
		return err
	}
	if _, err := nkconfig.Load(string(src), fw); err != nil {
		return err
	}
	meta := netkit.Meta(capsule)
	if err := meta.Architecture().Validate(); err != nil {
		return err
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		return err
	}
	defer func() { _ = capsule.StopAll(ctx) }()
	fmt.Printf("netkitd: %d components started from %s\n",
		len(capsule.ComponentNames()), *configPath)

	// Optional reflective loop: one rule per FIFO queue in the loaded
	// configuration, swapping it for a RED queue (state migrated) when
	// occupancy stays above 85% — the E13 policy, driven purely by the
	// stats tree. Firings are logged so operators can correlate them with
	// `nkctl stats` output.
	if *adaptLoop {
		var rules []adapt.Rule
		for _, name := range capsule.ComponentNames() {
			comp, ok := capsule.Component(name)
			if !ok {
				continue
			}
			q, ok := comp.(*router.FIFOQueue)
			if !ok {
				continue
			}
			name := name
			capQ := q.Capacity()
			rules = append(rules, adapt.Rule{
				Name:    "fifo-to-red:" + name,
				When:    adapt.GaugeAbove(name, "queue_occupancy", 0.85),
				Sustain: 4,
				Once:    true,
				Then: adapt.Swap(name, name+"-red", func() (core.Component, error) {
					return router.NewREDQueue(router.REDConfig{
						Capacity: capQ,
						MinTh:    float64(capQ) / 4,
						MaxTh:    float64(capQ) * 3 / 4,
						MaxP:     0.1,
					})
				}),
			})
		}
		eng := adapt.NewEngine(capsule, adapt.Options{
			Interval: 50 * time.Millisecond,
			OnFire: func(f adapt.Firing) {
				if f.Err != "" {
					fmt.Printf("netkitd: adapt: rule %s failed: %s\n", f.Rule, f.Err)
					return
				}
				fmt.Printf("netkitd: adapt: rule %s fired (tick %d)\n", f.Rule, f.Tick)
			},
		}, rules...)
		if err := capsule.Insert("adapt", eng); err != nil {
			return err
		}
		if err := capsule.StartComponent(ctx, "adapt"); err != nil {
			return err
		}
		fmt.Printf("netkitd: adaptation loop armed (%d rules)\n", len(rules))
	}

	// Control plane.
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := control.NewServer(fw)
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	fmt.Printf("netkitd: control protocol on %s\n", l.Addr())

	// Optional synthetic traffic pump.
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	close(trafficDone)
	if *trafficInto != "" {
		push, err := netkit.Service[router.IPacketPush](capsule, *trafficInto, router.IPacketPushID)
		if err != nil {
			return fmt.Errorf("traffic target: %w", err)
		}
		gen, err := trace.NewGenerator(trace.Config{Seed: *seed, Flows: *flows})
		if err != nil {
			return err
		}
		// The pump runs as a task on the capsule's resources meta-model,
		// so its work is visible to operators via `nkctl tasks`.
		pumpTask, err := meta.Resources().CreateTask(resources.TaskSpec{Name: "traffic-pump"})
		if err != nil {
			return err
		}
		pumpPool, err := resources.NewPool(1, resources.NewFIFOScheduler())
		if err != nil {
			return err
		}
		defer pumpPool.Stop(false)
		trafficDone = make(chan struct{})
		go func() {
			defer close(trafficDone)
			interval := time.Second / time.Duration(*pps)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stopTraffic:
					return
				case <-ticker.C:
					raw, err := gen.Next()
					if err != nil {
						continue
					}
					if err := pumpPool.Submit(pumpTask, func() {
						_ = push.Push(router.NewPacket(raw))
					}); err != nil {
						return
					}
				}
			}
		}()
		fmt.Printf("netkitd: driving %d pps into %q\n", *pps, *trafficInto)
	}

	// Wait for signal or duration.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}
	close(stopTraffic)
	<-trafficDone
	fmt.Println("netkitd: shutting down")
	return nil
}
