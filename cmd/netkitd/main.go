// Command netkitd is the NETKIT router daemon: it loads a .nk
// configuration into a Router CF, starts the components, optionally drives
// synthetic traffic into a named component, and serves the reflective
// control protocol for nkctl.
//
// Usage:
//
//	netkitd -config router.nk -listen 127.0.0.1:7341 \
//	        -traffic-into cnt -pps 1000 -duration 10s
//
// With -io udp the daemon skips the .nk configuration and runs the real
// packet plane instead: one or more SO_REUSEPORT UDP receive queues
// (recvmmsg-batched on Linux) pump frames through a sharded Router CF —
// counter -> checksum-validator lanes, fused at bind time — and out
// through a sendmmsg-batched UDP sink aimed at -udp-peer. Without a
// peer the plane terminates in a dropper, which still counts: a
// receive-side echo target for another netkitd. All device counters
// (frames per syscall, batch fill, kernel socket drops) appear under the
// source/sink components in `nkctl stats`.
//
//	netkitd -io udp -udp-listen 127.0.0.1:9101 -udp-peer 127.0.0.1:9102
//
// With -adapt the daemon arms the reflective adaptation loop: every FIFO
// queue in the configuration gains a rule that hot-swaps it for a RED
// queue (state migrated, no packet lost) when its occupancy stays above
// 85% — decided purely from the capsule's stats tree, the same view
// `nkctl stats` serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"netkit"
	"netkit/adapt"
	"netkit/cf"
	"netkit/core"
	"netkit/internal/control"
	"netkit/internal/ipc"
	"netkit/internal/nkconfig"
	"netkit/internal/osabs"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netkitd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath  = flag.String("config", "", "path to .nk configuration (required unless -io udp)")
		ioMode      = flag.String("io", "config", `packet I/O mode: "config" loads -config, "udp" runs the real UDP forwarding plane`)
		udpListen   = flag.String("udp-listen", "127.0.0.1:0", "UDP plane receive address")
		udpPeer     = flag.String("udp-peer", "", "UDP plane forwarding destination (empty = count and drop)")
		udpQueues   = flag.Int("udp-queues", 1, "SO_REUSEPORT receive queues (Linux; 1 elsewhere)")
		udpBatch    = flag.Int("udp-batch", osabs.DefaultUDPBatch, "frames per batched syscall")
		udpSpin     = flag.Int("udp-busypoll", 0, "busy-poll spin budget: empty polls burned before a pump parks")
		udpShards   = flag.Int("udp-shards", 0, "data-plane lanes (default = receive queues)")
		listen      = flag.String("listen", "127.0.0.1:7341", "control protocol address")
		trafficInto = flag.String("traffic-into", "", "component to push synthetic traffic into")
		pps         = flag.Int("pps", 1000, "synthetic traffic rate (packets/sec)")
		flows       = flag.Int("flows", 64, "synthetic flow population")
		seed        = flag.Uint64("seed", 1, "traffic generator seed")
		duration    = flag.Duration("duration", 0, "run time (0 = until interrupted)")
		strict      = flag.Bool("strict-trust", false, "enforce out-of-process isolation for untrusted components")
		adaptLoop   = flag.Bool("adapt", false, "run the reflective adaptation loop (FIFO->RED swap on sustained queue occupancy)")
		ipcHost     = flag.String("ipc-host", "", "serve isolated component hosting on this TCP address (parents connect with ipc.IsolateAt)")
	)
	flag.Parse()

	capsule := core.NewCapsule("netkitd")
	fw, err := router.NewFramework(capsule, *strict)
	if err != nil {
		return err
	}
	switch *ioMode {
	case "udp":
		closeDevices, err := buildUDPPlane(fw, udpPlaneConfig{
			listen: *udpListen, peer: *udpPeer,
			queues: *udpQueues, batch: *udpBatch, spin: *udpSpin, shards: *udpShards,
		})
		if err != nil {
			return err
		}
		// Runs after the StopAll defer below (LIFO): pumps are joined
		// first, then the sockets close.
		defer closeDevices()
	case "config":
		if *configPath == "" {
			return fmt.Errorf("-config is required")
		}
		src, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if _, err := nkconfig.Load(string(src), fw); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-io %q: want \"config\" or \"udp\"", *ioMode)
	}
	meta := netkit.Meta(capsule)
	if err := meta.Architecture().Validate(); err != nil {
		return err
	}
	if *ipcHost != "" {
		// Host isolated constituents for remote parents: each accepted
		// connection gets a private capsule served over the batched ipc
		// protocol, instantiating through the process-wide registry (every
		// standard router component type registers there).
		ipcLn, err := net.Listen("tcp", *ipcHost)
		if err != nil {
			return fmt.Errorf("ipc-host listen: %w", err)
		}
		defer func() { _ = ipcLn.Close() }()
		go func() { _ = ipc.ListenAndServe(ipcLn, nil) }()
		fmt.Printf("netkitd: hosting isolated components on %s\n", ipcLn.Addr())
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		return err
	}
	defer func() { _ = capsule.StopAll(ctx) }()
	origin := *configPath
	if *ioMode == "udp" {
		origin = "the -io udp plane"
	}
	fmt.Printf("netkitd: %d components started from %s\n",
		len(capsule.ComponentNames()), origin)

	// Optional reflective loop: one rule per FIFO queue in the loaded
	// configuration, swapping it for a RED queue (state migrated) when
	// occupancy stays above 85% — the E13 policy, driven purely by the
	// stats tree. Firings are logged so operators can correlate them with
	// `nkctl stats` output.
	if *adaptLoop {
		var rules []adapt.Rule
		for _, name := range capsule.ComponentNames() {
			comp, ok := capsule.Component(name)
			if !ok {
				continue
			}
			q, ok := comp.(*router.FIFOQueue)
			if !ok {
				continue
			}
			name := name
			capQ := q.Capacity()
			rules = append(rules, adapt.Rule{
				Name:    "fifo-to-red:" + name,
				When:    adapt.GaugeAbove(name, "queue_occupancy", 0.85),
				Sustain: 4,
				Once:    true,
				Then: adapt.Swap(name, name+"-red", func() (core.Component, error) {
					return router.NewREDQueue(router.REDConfig{
						Capacity: capQ,
						MinTh:    float64(capQ) / 4,
						MaxTh:    float64(capQ) * 3 / 4,
						MaxP:     0.1,
					})
				}),
			})
		}
		eng := adapt.NewEngine(capsule, adapt.Options{
			Interval: 50 * time.Millisecond,
			OnFire: func(f adapt.Firing) {
				if f.Err != "" {
					fmt.Printf("netkitd: adapt: rule %s failed: %s\n", f.Rule, f.Err)
					return
				}
				fmt.Printf("netkitd: adapt: rule %s fired (tick %d)\n", f.Rule, f.Tick)
			},
		}, rules...)
		if err := capsule.Insert("adapt", eng); err != nil {
			return err
		}
		if err := capsule.StartComponent(ctx, "adapt"); err != nil {
			return err
		}
		fmt.Printf("netkitd: adaptation loop armed (%d rules)\n", len(rules))
	}

	// Control plane.
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := control.NewServer(fw)
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	fmt.Printf("netkitd: control protocol on %s\n", l.Addr())

	// Optional synthetic traffic pump.
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	close(trafficDone)
	if *trafficInto != "" {
		push, err := netkit.Service[router.IPacketPush](capsule, *trafficInto, router.IPacketPushID)
		if err != nil {
			return fmt.Errorf("traffic target: %w", err)
		}
		gen, err := trace.NewGenerator(trace.Config{Seed: *seed, Flows: *flows})
		if err != nil {
			return err
		}
		// The pump runs as a task on the capsule's resources meta-model,
		// so its work is visible to operators via `nkctl tasks`.
		pumpTask, err := meta.Resources().CreateTask(resources.TaskSpec{Name: "traffic-pump"})
		if err != nil {
			return err
		}
		pumpPool, err := resources.NewPool(1, resources.NewFIFOScheduler())
		if err != nil {
			return err
		}
		defer pumpPool.Stop(false)
		trafficDone = make(chan struct{})
		go func() {
			defer close(trafficDone)
			interval := time.Second / time.Duration(*pps)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stopTraffic:
					return
				case <-ticker.C:
					raw, err := gen.Next()
					if err != nil {
						continue
					}
					if err := pumpPool.Submit(pumpTask, func() {
						_ = push.Push(router.NewPacket(raw))
					}); err != nil {
						return
					}
				}
			}
		}()
		fmt.Printf("netkitd: driving %d pps into %q\n", *pps, *trafficInto)
	}

	// Wait for signal or duration.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}
	close(stopTraffic)
	<-trafficDone
	fmt.Println("netkitd: shutting down")
	return nil
}

// udpPlaneConfig parameterises the -io udp forwarding plane.
type udpPlaneConfig struct {
	listen, peer                string
	queues, batch, spin, shards int
}

// buildUDPPlane assembles the real packet plane inside fw's capsule:
// arena-backed SO_REUSEPORT receive queues -> per-queue NICSource pumps
// -> RSS-sharded counter->validator lanes (fused at bind time) -> a
// batched UDP sink (or a dropper when no peer is configured). It returns
// a closer for the devices, to run after the capsule stops.
func buildUDPPlane(fw *cf.Framework, cfg udpPlaneConfig) (func(), error) {
	if cfg.queues <= 0 {
		cfg.queues = 1
	}
	if cfg.batch <= 0 {
		cfg.batch = osabs.DefaultUDPBatch
	}
	if cfg.shards <= 0 {
		cfg.shards = cfg.queues
	}
	arena, err := osabs.NewFrameArena(osabs.DefaultUDPFrameSize, cfg.batch, cfg.queues*8)
	if err != nil {
		return nil, err
	}
	group, err := osabs.NewUDPDeviceGroup(osabs.UDPConfig{
		Name: "udp0", Listen: cfg.listen, Batch: cfg.batch, Arena: arena,
	}, cfg.queues)
	if err != nil {
		return nil, err
	}
	var devices []*osabs.UDPDevice
	devices = append(devices, group...)
	closeAll := func() {
		for _, d := range devices {
			_ = d.Close()
		}
	}
	fail := func(err error) (func(), error) {
		closeAll()
		return nil, err
	}

	capsule := fw.Capsule()
	replica := func(shard int, sfw *cf.Framework) (string, error) {
		cnt := router.ShardName(shard, "cnt")
		val := router.ShardName(shard, "val")
		if err := sfw.Admit(cnt, router.NewCounter()); err != nil {
			return "", err
		}
		if err := sfw.Admit(val, router.NewChecksumValidator()); err != nil {
			return "", err
		}
		if _, err := sfw.Capsule().Bind(cnt, "out", val, router.IPacketPushID); err != nil {
			return "", err
		}
		if _, err := sfw.Capsule().Bind(val, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return cnt, nil
	}
	plane, err := router.NewShardedCF(capsule,
		router.ShardConfig{Shards: cfg.shards, LatencyHistogram: true}, replica)
	if err != nil {
		return fail(err)
	}
	if err := capsule.Insert("plane", plane); err != nil {
		return fail(err)
	}

	for i, dev := range group {
		src, err := router.NewNICSourcePump(dev, nil,
			router.PumpConfig{Batch: cfg.batch, Spin: cfg.spin})
		if err != nil {
			return fail(err)
		}
		name := fmt.Sprintf("udp-src-q%d", i)
		if err := fw.Admit(name, src); err != nil {
			return fail(err)
		}
		if _, err := capsule.Bind(name, "out", "plane", router.IPacketPushID); err != nil {
			return fail(err)
		}
	}

	if cfg.peer != "" {
		tx, err := osabs.NewUDPDevice(osabs.UDPConfig{
			Name: "udp-tx", Listen: "127.0.0.1:0", Peer: cfg.peer, Batch: cfg.batch,
		})
		if err != nil {
			return fail(err)
		}
		devices = append(devices, tx)
		snk, err := router.NewNICSink(tx)
		if err != nil {
			return fail(err)
		}
		if err := fw.Admit("udp-sink", snk); err != nil {
			return fail(err)
		}
	} else {
		if err := fw.Admit("udp-sink", router.NewDropper()); err != nil {
			return fail(err)
		}
	}
	if _, err := capsule.Bind("plane", "out", "udp-sink", router.IPacketPushID); err != nil {
		return fail(err)
	}

	fmt.Printf("netkitd: udp plane on %s (%d queue(s), batch %d, %d lane(s)",
		group[0].LocalAddr(), cfg.queues, cfg.batch, cfg.shards)
	if cfg.peer != "" {
		fmt.Printf(", forwarding to %s)\n", cfg.peer)
	} else {
		fmt.Printf(", terminating in a dropper)\n")
	}
	return closeAll, nil
}
