// Command netkitd is the NETKIT router daemon: it loads a .nk
// configuration into a Router CF, starts the components, optionally drives
// synthetic traffic into a named component, and serves the reflective
// control protocol for nkctl.
//
// Usage:
//
//	netkitd -config router.nk -listen 127.0.0.1:7341 \
//	        -traffic-into cnt -pps 1000 -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"netkit"
	"netkit/core"
	"netkit/internal/control"
	"netkit/internal/nkconfig"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netkitd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath  = flag.String("config", "", "path to .nk configuration (required)")
		listen      = flag.String("listen", "127.0.0.1:7341", "control protocol address")
		trafficInto = flag.String("traffic-into", "", "component to push synthetic traffic into")
		pps         = flag.Int("pps", 1000, "synthetic traffic rate (packets/sec)")
		flows       = flag.Int("flows", 64, "synthetic flow population")
		seed        = flag.Uint64("seed", 1, "traffic generator seed")
		duration    = flag.Duration("duration", 0, "run time (0 = until interrupted)")
		strict      = flag.Bool("strict-trust", false, "enforce out-of-process isolation for untrusted components")
	)
	flag.Parse()
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	src, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}

	capsule := core.NewCapsule("netkitd")
	fw, err := router.NewFramework(capsule, *strict)
	if err != nil {
		return err
	}
	if _, err := nkconfig.Load(string(src), fw); err != nil {
		return err
	}
	meta := netkit.Meta(capsule)
	if err := meta.Architecture().Validate(); err != nil {
		return err
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		return err
	}
	defer func() { _ = capsule.StopAll(ctx) }()
	fmt.Printf("netkitd: %d components started from %s\n",
		len(capsule.ComponentNames()), *configPath)

	// Control plane.
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := control.NewServer(fw)
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	fmt.Printf("netkitd: control protocol on %s\n", l.Addr())

	// Optional synthetic traffic pump.
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	close(trafficDone)
	if *trafficInto != "" {
		push, err := netkit.Service[router.IPacketPush](capsule, *trafficInto, router.IPacketPushID)
		if err != nil {
			return fmt.Errorf("traffic target: %w", err)
		}
		gen, err := trace.NewGenerator(trace.Config{Seed: *seed, Flows: *flows})
		if err != nil {
			return err
		}
		// The pump runs as a task on the capsule's resources meta-model,
		// so its work is visible to operators via `nkctl tasks`.
		pumpTask, err := meta.Resources().CreateTask(resources.TaskSpec{Name: "traffic-pump"})
		if err != nil {
			return err
		}
		pumpPool, err := resources.NewPool(1, resources.NewFIFOScheduler())
		if err != nil {
			return err
		}
		defer pumpPool.Stop(false)
		trafficDone = make(chan struct{})
		go func() {
			defer close(trafficDone)
			interval := time.Second / time.Duration(*pps)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stopTraffic:
					return
				case <-ticker.C:
					raw, err := gen.Next()
					if err != nil {
						continue
					}
					if err := pumpPool.Submit(pumpTask, func() {
						_ = push.Push(router.NewPacket(raw))
					}); err != nil {
						return
					}
				}
			}
		}()
		fmt.Printf("netkitd: driving %d pps into %q\n", *pps, *trafficInto)
	}

	// Wait for signal or duration.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}
	close(stopTraffic)
	<-trafficDone
	fmt.Println("netkitd: shutting down")
	return nil
}
