package adapt

import (
	"context"
	"fmt"

	"netkit/core"
	"netkit/router"
)

// The standard actions. Every one of them is a thin closure over an
// EXISTING meta-space operation — the adapt package adds policy, never
// mechanism: architecture hot-swap (router.HotSwap, ShardedCF.HotSwap),
// architecture rescaling (ShardedCF.SetActiveShards), interception
// install/remove (core.Binding chains), and resources retuning
// (TokenShaper.SetRate over the token bucket). An action that needs a
// verb the meta-space lacks is a missing meta-space feature, not a new
// kind of action.

// Swap hot-swaps component old for a fresh instance from mk, inserted as
// new — the lossless architecture-meta-model reconfiguration (E4). The
// names flip roles in a reverse rule, so a FIFO↔RED pair oscillates
// between two stable names.
func Swap(old, new string, mk func() (core.Component, error)) Action {
	return func(_ context.Context, c *core.Capsule, _ View) error {
		repl, err := mk()
		if err != nil {
			return fmt.Errorf("adapt: swap %s: %w", old, err)
		}
		return router.HotSwap(c, old, new, repl)
	}
}

// ShardSwap hot-swaps the component known (unscoped) as old in EVERY
// replica of the named sharded CF, pausing all shard workers at a batch
// boundary (ShardedCF.HotSwap) so the fleet-wide swap is lossless.
func ShardSwap(cf, old, new string, mk func(shard int) (core.Component, error)) Action {
	return func(_ context.Context, c *core.Capsule, _ View) error {
		s, err := shardedCF(c, cf)
		if err != nil {
			return err
		}
		return s.HotSwap(old, new, mk)
	}
}

// ScaleShards rescales the named sharded CF's active lane count to
// target's answer (clamped by the CF). The drain wait is the action's
// context, bounded by the engine tick's lifetime.
func ScaleShards(cf string, target func(View) int) Action {
	return func(ctx context.Context, c *core.Capsule, v View) error {
		s, err := shardedCF(c, cf)
		if err != nil {
			return err
		}
		return s.SetActiveShards(ctx, target(v))
	}
}

// RetuneShaper sets the named shaper's token-bucket fill rate to rate's
// answer — the resources meta-model knob, driven by observed drops.
func RetuneShaper(name string, rate func(View) float64) Action {
	return func(_ context.Context, c *core.Capsule, v View) error {
		comp, ok := c.Component(name)
		if !ok {
			return fmt.Errorf("adapt: shaper %q: %w", name, core.ErrNotFound)
		}
		s, ok := comp.(interface{ SetRate(float64) error })
		if !ok {
			return fmt.Errorf("adapt: %q is not rate-tunable: %w", name, core.ErrTypeMismatch)
		}
		return s.SetRate(rate(v))
	}
}

// Intercept installs a named Around on the binding rooted at the
// client-side (component, receptacle) endpoint — the interception
// meta-model's diagnostic-probe verb. Already-installed probes are left
// alone (no error), so a spike that persists across cooldowns does not
// fail the rule.
func Intercept(component, receptacle, name string, around core.Around) Action {
	return func(_ context.Context, c *core.Capsule, _ View) error {
		b, err := bindingAt(c, component, receptacle)
		if err != nil {
			return err
		}
		for _, have := range b.Interceptors() {
			if have == name {
				return nil
			}
		}
		return b.AddInterceptor(core.Interceptor{Name: name, Wrap: around})
	}
}

// Unintercept removes the named interceptor from the binding rooted at
// (component, receptacle). A probe that is already gone is not an error.
func Unintercept(component, receptacle, name string) Action {
	return func(_ context.Context, c *core.Capsule, _ View) error {
		b, err := bindingAt(c, component, receptacle)
		if err != nil {
			return err
		}
		for _, have := range b.Interceptors() {
			if have == name {
				return b.RemoveInterceptor(name)
			}
		}
		return nil
	}
}

// flowCached is the duck-typed surface of a component carrying a megaflow
// verdict cache (router.Classifier today; anything exposing the verbs
// tomorrow) — the same pattern RetuneShaper uses for SetRate.
type flowCached interface {
	FlowCacheResize(int) error
	FlowCacheFlush()
}

// ResizeFlowCache swaps the named component's flow-verdict cache for one
// of capacity's answer (<= 0 disables it) — the response half of the
// HitRateBelow loop. The swap is atomic and lossless: a cache is an
// accelerator, so replacing it costs re-misses, never packets.
func ResizeFlowCache(name string, capacity func(View) int) Action {
	return func(_ context.Context, c *core.Capsule, v View) error {
		fcc, err := flowCachedAt(c, name)
		if err != nil {
			return err
		}
		return fcc.FlowCacheResize(capacity(v))
	}
}

// FlushFlowCache empties the named component's flow-verdict cache without
// touching its capacity — the cheap "known-stale" response when policy
// outside the rule table changes.
func FlushFlowCache(name string) Action {
	return func(_ context.Context, c *core.Capsule, _ View) error {
		fcc, err := flowCachedAt(c, name)
		if err != nil {
			return err
		}
		fcc.FlowCacheFlush()
		return nil
	}
}

// ShardFlowCacheResize resizes the flow-verdict cache of the component
// known (unscoped) as name inside EVERY replica of the named sharded CF,
// all to capacity's answer — the fleet-wide form of ResizeFlowCache,
// addressed the same way ShardSwap addresses replicas.
func ShardFlowCacheResize(cf, name string, capacity func(View) int) Action {
	return func(_ context.Context, c *core.Capsule, v View) error {
		s, err := shardedCF(c, cf)
		if err != nil {
			return err
		}
		want := capacity(v)
		for i := 0; i < s.Shards(); i++ {
			comp, ok := s.Inner().Component(router.ShardName(i, name))
			if !ok {
				return fmt.Errorf("adapt: shard %d has no %q: %w", i, name, core.ErrNotFound)
			}
			fcc, ok := comp.(flowCached)
			if !ok {
				return fmt.Errorf("adapt: %q is not flow-cached: %w", name, core.ErrTypeMismatch)
			}
			if err := fcc.FlowCacheResize(want); err != nil {
				return err
			}
		}
		return nil
	}
}

// flowCachedAt resolves a component name to its flow-cache surface.
func flowCachedAt(c *core.Capsule, name string) (flowCached, error) {
	comp, ok := c.Component(name)
	if !ok {
		return nil, fmt.Errorf("adapt: flow cache %q: %w", name, core.ErrNotFound)
	}
	fcc, ok := comp.(flowCached)
	if !ok {
		return nil, fmt.Errorf("adapt: %q is not flow-cached: %w", name, core.ErrTypeMismatch)
	}
	return fcc, nil
}

// Seq runs actions in order, stopping at the first error.
func Seq(actions ...Action) Action {
	return func(ctx context.Context, c *core.Capsule, v View) error {
		for _, a := range actions {
			if err := a(ctx, c, v); err != nil {
				return err
			}
		}
		return nil
	}
}

// shardedCF resolves a component name to the sharded data plane.
func shardedCF(c *core.Capsule, name string) (*router.ShardedCF, error) {
	comp, ok := c.Component(name)
	if !ok {
		return nil, fmt.Errorf("adapt: sharded CF %q: %w", name, core.ErrNotFound)
	}
	s, ok := comp.(*router.ShardedCF)
	if !ok {
		return nil, fmt.Errorf("adapt: %q is not a sharded CF: %w", name, core.ErrTypeMismatch)
	}
	return s, nil
}

// bindingAt resolves the client-side endpoint to its (at most one)
// binding, mirroring the interception meta-model's addressing.
func bindingAt(c *core.Capsule, component, receptacle string) (*core.Binding, error) {
	for _, b := range c.BindingsOf(component) {
		from, recp := b.From()
		if from == component && recp == receptacle {
			return b, nil
		}
	}
	return nil, fmt.Errorf("adapt: no binding at %s.%s: %w", component, receptacle, core.ErrNotFound)
}
