package adapt

import (
	"context"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/router"
)

// buildShardedClassifiers inserts an n-shard CF named "plane" whose
// replicas are cached classifiers with both outputs wired to the shard
// egress.
func buildShardedClassifiers(t *testing.T, capsule *core.Capsule, n int) *router.ShardedCF {
	t.Helper()
	factory := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cls")
		cls, err := router.NewClassifier("a", "default")
		if err != nil {
			return "", err
		}
		if err := fw.Admit(name, cls); err != nil {
			return "", err
		}
		for _, out := range []string{"a", "default"} {
			if _, err := fw.Capsule().Bind(name, out, router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
				return "", err
			}
		}
		return name, nil
	}
	s, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: n}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("plane", s); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("void", router.NewDropper()); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "plane", "out", "void"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClosedLoopFlowCacheResize is the cache half of the reflective loop
// (mirroring TestClosedLoopQueueSwap for queues): a classifier with a
// deliberately undersized megaflow cache thrashes under flow-rich traffic;
// the adaptation engine — watching only the flowcache_hits/flowcache_misses
// counters in the stats tree — detects the sustained hit-rate collapse via
// HitRateBelow and regrows the cache through ResizeFlowCache. Afterwards
// the same traffic runs mostly from the cache, i.e. the loop actually
// fixed the regression it observed.
func TestClosedLoopFlowCacheResize(t *testing.T) {
	const (
		flows    = 512
		smallCap = 64
		grownCap = 1 << 14
	)
	capsule := core.NewCapsule("cacheloop")
	cls, err := router.NewClassifier("a", "default")
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("cls", cls); err != nil {
		t.Fatal(err)
	}
	sinkA, sinkD := router.NewDropper(), router.NewDropper()
	if err := capsule.Insert("sa", sinkA); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sd", sinkD); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "cls", "a", "sa"); err != nil {
		t.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "cls", "default", "sd"); err != nil {
		t.Fatal(err)
	}
	// Cache-worthy rule table the traffic never matches: every packet takes
	// the default path, and the verdict cache is the only thing thrashing.
	for i := 0; i < 8; i++ {
		if _, err := cls.RegisterFilter("udp and src port 3000", 10, "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cls.FlowCacheResize(smallCap); err != nil {
		t.Fatal(err)
	}

	fired := make(chan Firing, 4)
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name:    "cache-grow",
			When:    HitRateBelow("cls", 0.5, 50),
			Sustain: 2,
			Once:    true,
			Then:    ResizeFlowCache("cls", func(View) int { return grownCap }),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()

	// Pre-build one packet per flow; rounds re-push the same flow set, so
	// a big-enough cache would serve every round after the first from
	// cached verdicts, while the small cache evicts every flow before its
	// next appearance (round-robin is LRU's worst case).
	mk := func(fl uint16) *router.Packet {
		return router.NewPacket(mkUDP(t, fl, 0))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		for fl := 0; fl < flows; fl++ {
			if err := cls.Push(mk(uint16(fl))); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case f := <-fired:
			if f.Err != "" {
				t.Fatalf("rule fired with error: %s", f.Err)
			}
			if f.Rule != "cache-grow" {
				t.Fatalf("unexpected rule %q fired", f.Rule)
			}
		default:
			if time.Now().After(deadline) {
				t.Fatal("cache-grow never fired under sustained thrash")
			}
			continue
		}
		break
	}

	// The meta-space now shows the grown cache...
	fc := cls.FlowCache()
	if fc == nil || fc.Cap() != grownCap {
		t.Fatalf("cache not regrown: %+v", fc)
	}
	// ...and the regression is actually gone: after one warm-up round, a
	// full round of the same flows is served (almost) entirely from cache.
	for fl := 0; fl < flows; fl++ {
		if err := cls.Push(mk(uint16(fl))); err != nil {
			t.Fatal(err)
		}
	}
	h0, _, _ := fc.Counters()
	for fl := 0; fl < flows; fl++ {
		if err := cls.Push(mk(uint16(fl))); err != nil {
			t.Fatal(err)
		}
	}
	h1, _, _ := fc.Counters()
	if gained := h1 - h0; gained < flows*9/10 {
		t.Fatalf("post-resize round hit only %d of %d lookups", gained, flows)
	}
	if got := eng.History(); len(got) != 1 {
		t.Fatalf("history = %+v, want exactly one firing", got)
	}
}

// TestShardFlowCacheActions exercises the fleet-wide action surface
// directly: ShardFlowCacheResize retunes every replica classifier of a
// sharded CF, FlushFlowCache empties a named cache, and both fail loudly
// on wrong targets.
func TestShardFlowCacheActions(t *testing.T) {
	capsule := core.NewCapsule("fleet")
	s := buildShardedClassifiers(t, capsule, 3)
	v := View{}
	if err := ShardFlowCacheResize("plane", "cls", func(View) int { return 256 })(context.Background(), capsule, v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Shards(); i++ {
		comp, _ := s.Inner().Component(router.ShardName(i, "cls"))
		fc := comp.(*router.Classifier).FlowCache()
		if fc == nil || fc.Cap() != 256 {
			t.Fatalf("shard %d cache not resized", i)
		}
	}
	if err := ShardFlowCacheResize("plane", "nosuch", func(View) int { return 1 })(context.Background(), capsule, v); err == nil {
		t.Fatal("unknown replica component accepted")
	}
	if err := ShardFlowCacheResize("nosuch", "cls", func(View) int { return 1 })(context.Background(), capsule, v); err == nil {
		t.Fatal("unknown CF accepted")
	}
	if err := FlushFlowCache("nosuch")(context.Background(), capsule, v); err == nil {
		t.Fatal("unknown component accepted by flush")
	}
	// A sharded CF is not itself flow-cached; the duck-typing must say so.
	if err := FlushFlowCache("plane")(context.Background(), capsule, v); err == nil {
		t.Fatal("non-cached component accepted by flush")
	}
}
