package adapt

import (
	"strings"
	"time"

	"netkit/router"
)

// Condition combinators and the standard observations rules are built
// from. Every helper resolves its subject in the stats tree by the same
// slash-separated paths core.StatNode.Find uses, so a condition reads
// exactly what `nkctl stats` shows.

// GaugeAbove holds when the stat at path exceeds threshold. Missing paths
// and stats read as "not holding" — a rule never fires on absent data.
func GaugeAbove(path, stat string, threshold float64) Condition {
	return func(v View) bool {
		val, ok := v.Gauge(path, stat)
		return ok && val > threshold
	}
}

// GaugeBelow holds when the stat at path is under threshold.
func GaugeBelow(path, stat string, threshold float64) Condition {
	return func(v View) bool {
		val, ok := v.Gauge(path, stat)
		return ok && val < threshold
	}
}

// RateAbove holds when a counter at path grows faster than perSec.
func RateAbove(path, stat string, perSec float64) Condition {
	return func(v View) bool {
		r, ok := v.Rate(path, stat)
		return ok && r > perSec
	}
}

// DeltaAbove holds when a counter at path grew by more than delta over
// the last tick — the "loss spike" trigger shape.
func DeltaAbove(path, stat string, delta float64) Condition {
	return func(v View) bool {
		d, ok := v.Delta(path, stat)
		return ok && d > delta
	}
}

// QuantileAbove holds when the q-quantile of the histogram stat at path —
// cumulative since start — exceeds threshold. For SLO rules prefer
// P99Above: a cumulative quantile answers "how has the system done so
// far", which both lags regressions and never un-holds after one.
func QuantileAbove(path, stat string, q, threshold float64) Condition {
	return func(v View) bool {
		val, ok := v.Quantile(path, stat, q)
		return ok && val > threshold
	}
}

// P99Above is the standard tail-latency SLO trigger: it holds when the
// 99th percentile of the router.StatLatency histogram at path, measured
// over the LAST TICK ONLY (windowed via core.HistSnapshot.Sub), exceeds
// threshold. Pair it with Sustain to ride out one-tick spikes and with a
// reconfiguration action (shard rescale, hot-swap to a cheaper stage) to
// close the loop; the windowed reading then recovers as soon as the
// reconfigured plane's tail does, so the rule also un-holds by itself.
func P99Above(path string, threshold time.Duration) Condition {
	return func(v View) bool {
		val, ok := v.WindowQuantile(path, router.StatLatency, 0.99)
		return ok && val > float64(threshold)
	}
}

// HitRateBelow holds when the flow-cache hit rate at path — computed over
// the LAST TICK ONLY from the flowcache_hits / flowcache_misses counter
// deltas, not the lifetime ratio gauge — drops under ratio. It needs at
// least minLookups lookups in the window to count, so an idle (or
// cache-bypassing) classifier never reads as thrashing. This is the
// trigger half of the cache-retuning loop; pair it with ResizeFlowCache
// or ShardFlowCacheResize, plus Sustain to ride out one-tick flow churn.
func HitRateBelow(path string, ratio, minLookups float64) Condition {
	return func(v View) bool {
		hits, ok := v.Delta(path, "flowcache_hits")
		if !ok {
			return false
		}
		misses, ok := v.Delta(path, "flowcache_misses")
		if !ok {
			return false
		}
		lookups := hits + misses
		if lookups < minLookups {
			return false
		}
		return hits/lookups < ratio
	}
}

// BatchFillBelow holds when a UDP device's batch fill — RX frames moved
// per receive syscall over the LAST TICK ONLY, computed from the
// udp_rx_frames / udp_rx_syscalls counter deltas and divided by the
// device's configured batch ceiling — drops under ratio. A low fill
// means the device is paying a near-full syscall price per handful of
// frames; the paired action shrinks the pump batch (or widens Park) so
// the syscall budget tracks the offered load. It needs at least
// minSyscalls receive calls in the window to count, so an idle device
// never reads as underfilled. The lifetime-weighted udp_batch_fill gauge
// the stats tree shows answers "how has this device amortised so far";
// this condition reads the current tick, so it both fires on and
// recovers from load shifts.
func BatchFillBelow(path string, batch, ratio, minSyscalls float64) Condition {
	return func(v View) bool {
		frames, ok := v.Delta(path, "udp_rx_frames")
		if !ok {
			return false
		}
		calls, ok := v.Delta(path, "udp_rx_syscalls")
		if !ok || calls < minSyscalls || batch <= 0 {
			return false
		}
		return frames/calls/batch < ratio
	}
}

// FramesPerRoundtripBelow holds when an IPC lane's amortisation — acked
// frames moved per wire round-trip over the LAST TICK ONLY, computed from
// the ipc_acked_frames / ipc_roundtrips counter deltas and divided by the
// sender's nominal batch size — drops under ratio. It is the isolation-
// boundary analogue of BatchFillBelow: a low reading means the parent is
// paying a near-full crossing price per handful of packets, so the paired
// action grows the sender's batch (or re-fuses the binding in-proc). It
// needs at least minRoundtrips acks in the window to count, so an idle
// lane never reads as underfilled. The lifetime-weighted
// ipc_frames_per_roundtrip gauge the stats tree shows answers "how has
// this lane amortised so far"; this condition reads the current tick, so
// it both fires on and recovers from load shifts.
func FramesPerRoundtripBelow(path string, batch, ratio, minRoundtrips float64) Condition {
	return func(v View) bool {
		frames, ok := v.Delta(path, "ipc_acked_frames")
		if !ok {
			return false
		}
		trips, ok := v.Delta(path, "ipc_roundtrips")
		if !ok || trips < minRoundtrips || batch <= 0 {
			return false
		}
		return frames/trips/batch < ratio
	}
}

// All holds when every condition holds.
func All(conds ...Condition) Condition {
	return func(v View) bool {
		for _, c := range conds {
			if !c(v) {
				return false
			}
		}
		return true
	}
}

// Any holds when at least one condition holds.
func Any(conds ...Condition) Condition {
	return func(v View) bool {
		for _, c := range conds {
			if c(v) {
				return true
			}
		}
		return false
	}
}

// Not inverts a condition.
func Not(c Condition) Condition {
	return func(v View) bool { return !c(v) }
}

// ShardSkewAbove holds when, among ALL of the named sharded CF's lanes,
// the busiest lane's arrival delta over the last tick exceeds ratio times
// the mean — the load-concentration signal a shard scale-up rule keys
// on. Inactive lanes count as zero-load deliberately: traffic squeezed
// onto 1 of N lanes reads as skew ≈ N, which is exactly the condition a
// scale-up should fire on. Consequently a rule built on this condition
// should carry Once (or a Cooldown plus a target that rescales to the
// lane count that dissolves the skew) — while fewer lanes than Shards
// are active under load, the condition keeps holding, and rescaling to
// an unchanged target is a cheap no-op but still a logged firing. It
// needs at least minDelta new packets across the lanes to count, so an
// idle plane never looks skewed.
func ShardSkewAbove(cf string, ratio, minDelta float64) Condition {
	return func(v View) bool {
		node, ok := v.Now.Find(cf)
		if !ok {
			return false
		}
		var deltas []float64
		var total float64
		for _, ch := range node.Children {
			if !strings.HasPrefix(ch.Name, "shard") {
				continue
			}
			d, ok := v.Delta(cf+"/"+ch.Name, "packets_in")
			if !ok {
				return false
			}
			deltas = append(deltas, d)
			total += d
		}
		if len(deltas) < 2 || total < minDelta {
			return false
		}
		mean := total / float64(len(deltas))
		if mean <= 0 {
			return false
		}
		max := deltas[0]
		for _, d := range deltas[1:] {
			if d > max {
				max = d
			}
		}
		return max > ratio*mean
	}
}
