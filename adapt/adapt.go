// Package adapt closes the reflective loop: a policy engine that watches
// the capsule-wide stats tree (the uniform core.IStats capability) and,
// when a rule's condition holds, reconfigures the running data plane —
// expressing every action through existing meta-space operations only
// (architecture hot-swap and rescaling, interception install/remove,
// resources retuning). It is the paper's "inspect itself and adapt"
// claim made executable: nothing in here touches a packet; the engine
// observes and then drives the same reflective verbs an operator would.
//
// The engine is itself a component (core.Component + Starter/Stopper), so
// inserting it into the capsule it manages makes the adaptation loop
// visible to the meta-space it operates through: the architecture
// meta-model enumerates it, and the stats tree carries its tick/firing
// counters like any other element's.
//
// DESIGN.md §5 documents the rule grammar and the action-to-meta-model
// mapping; experiment E13 measures reaction time and throughput across a
// rule-triggered queue swap.
package adapt

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"netkit/core"
)

// TypeEngine is the adaptation engine's registered component type name.
const TypeEngine = "netkit.adapt.Engine"

// View is what a condition (and an action) sees on one sampling tick: the
// current and previous stats-tree snapshots and the wall time between
// them, so rules can express both levels ("occupancy above x") and rates
// ("drops per second above y").
type View struct {
	Now     core.StatNode
	Prev    core.StatNode
	Elapsed time.Duration
}

// Gauge resolves a gauge (or any stat's instantaneous value) at the
// slash-separated component path in the current snapshot.
func (v View) Gauge(path, stat string) (float64, bool) {
	n, ok := v.Now.Find(path)
	if !ok {
		return 0, false
	}
	s, ok := n.Stat(stat)
	return s.Value, ok
}

// Delta returns the increase of a counter at path between the previous
// and current snapshots. The first tick has no previous snapshot and
// reports false.
func (v View) Delta(path, stat string) (float64, bool) {
	now, ok := v.Gauge(path, stat)
	if !ok {
		return 0, false
	}
	pn, ok := v.Prev.Find(path)
	if !ok {
		return 0, false
	}
	ps, ok := pn.Stat(stat)
	if !ok {
		return 0, false
	}
	return now - ps.Value, true
}

// Rate returns a counter's increase per second over the last tick.
func (v View) Rate(path, stat string) (float64, bool) {
	d, ok := v.Delta(path, stat)
	if !ok || v.Elapsed <= 0 {
		return 0, false
	}
	return d / v.Elapsed.Seconds(), true
}

// Quantile resolves the q-quantile of a histogram stat at path in the
// current snapshot — the cumulative, since-start distribution.
func (v View) Quantile(path, stat string, q float64) (float64, bool) {
	n, ok := v.Now.Find(path)
	if !ok {
		return 0, false
	}
	s, ok := n.Stat(stat)
	if !ok || s.Kind != core.KindHistogram || s.Hist == nil || s.Hist.Count == 0 {
		return 0, false
	}
	return s.Hist.Quantile(q), true
}

// WindowQuantile resolves the q-quantile of a histogram stat over the last
// tick only: the bucket-wise difference of the current and previous
// cumulative snapshots (core.HistSnapshot.Sub). This is the SLO view — a
// latency regression shows up here within one tick, where the cumulative
// quantile would stay diluted by history. The first tick, a missing stat,
// and an empty window all report false.
func (v View) WindowQuantile(path, stat string, q float64) (float64, bool) {
	n, ok := v.Now.Find(path)
	if !ok {
		return 0, false
	}
	s, ok := n.Stat(stat)
	if !ok || s.Kind != core.KindHistogram || s.Hist == nil {
		return 0, false
	}
	var prev *core.HistSnapshot
	if pn, ok := v.Prev.Find(path); ok {
		if ps, ok := pn.Stat(stat); ok {
			prev = ps.Hist
		}
	}
	w := s.Hist.Sub(prev)
	if w == nil || w.Count == 0 {
		return 0, false
	}
	return w.Quantile(q), true
}

// Condition decides, from one View, whether a rule wants to fire.
// Conditions must be pure observations: no meta-space mutation.
type Condition func(View) bool

// Action performs one reconfiguration through the capsule's meta-space.
// The View is the evidence the rule fired on, so actions can scale their
// response to the observed magnitude (e.g. retune a rate from measured
// drops).
type Action func(ctx context.Context, c *core.Capsule, v View) error

// Rule is one adaptation policy: When the condition holds (for Sustain
// consecutive ticks), Then runs, and the rule is refractory for Cooldown.
type Rule struct {
	// Name identifies the rule in firings and history.
	Name string
	// When is the observed trigger.
	When Condition
	// Then is the meta-space response.
	Then Action
	// Sustain is how many consecutive ticks When must hold before the
	// rule fires (default 1). Hysteresis against transient spikes.
	Sustain int
	// Cooldown is the refractory period after a firing during which the
	// rule is not evaluated. Guards against reconfiguration thrash.
	Cooldown time.Duration
	// Once disarms the rule after its first successful firing.
	Once bool
}

// Firing records one rule activation.
type Firing struct {
	Rule string    `json:"rule"`
	Tick uint64    `json:"tick"`
	At   time.Time `json:"at"`
	Err  string    `json:"err,omitempty"`
}

// Options parameterises an Engine.
type Options struct {
	// Interval is the sampling tick (default 25ms).
	Interval time.Duration
	// ActionTimeout bounds each action's context (default 10s). The
	// context is also cancelled by Stop, so a blocking action (e.g. a
	// rescale's drain wait) can never wedge the engine's shutdown.
	ActionTimeout time.Duration
	// OnFire, when set, observes every firing (after the action ran).
	OnFire func(Firing)
}

// ruleState is the engine's per-rule bookkeeping.
type ruleState struct {
	run       int // consecutive ticks When has held
	lastFired time.Time
	disarmed  bool
}

// Engine samples the capsule's stats tree on a tick and evaluates its
// rules against consecutive snapshots. Actions run on the tick goroutine,
// one at a time — adaptation is deliberately serial, because concurrent
// reconfigurations of one capsule are how control loops fight each other.
type Engine struct {
	*core.Base
	capsule *core.Capsule
	opts    Options
	rules   []Rule

	mu        sync.Mutex
	states    []ruleState
	quit      chan struct{}
	done      chan struct{}
	actCtx    context.Context
	actCancel context.CancelFunc

	ticks   atomic.Uint64
	firings atomic.Uint64
	actErrs atomic.Uint64

	histMu  sync.Mutex
	history []Firing
}

// maxHistory bounds the retained firing log.
const maxHistory = 256

// NewEngine builds an adaptation engine over the given capsule. Insert it
// into that same capsule and start it (StartAll does both halves under a
// Blueprint); it may equally observe a capsule from outside.
func NewEngine(c *core.Capsule, opts Options, rules ...Rule) *Engine {
	if opts.Interval <= 0 {
		opts.Interval = 25 * time.Millisecond
	}
	if opts.ActionTimeout <= 0 {
		opts.ActionTimeout = 10 * time.Second
	}
	e := &Engine{
		Base:    core.NewBase(TypeEngine),
		capsule: c,
		opts:    opts,
		rules:   rules,
		states:  make([]ruleState, len(rules)),
	}
	return e
}

// Rules returns the rule names in evaluation order.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Name
	}
	return out
}

// Start implements core.Starter: launches the sampling tick.
func (e *Engine) Start(context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quit != nil {
		return nil
	}
	e.quit = make(chan struct{})
	e.done = make(chan struct{})
	e.actCtx, e.actCancel = context.WithCancel(context.Background())
	go e.loop(e.quit, e.done)
	return nil
}

// Stop implements core.Stopper: terminates and joins the tick goroutine.
// An in-flight action has its context cancelled first, so even an action
// stuck in a drain wait unwinds and Stop returns.
func (e *Engine) Stop(context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quit == nil {
		return nil
	}
	e.actCancel()
	close(e.quit)
	<-e.done
	e.quit, e.done = nil, nil
	return nil
}

func (e *Engine) loop(quit, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(e.opts.Interval)
	defer ticker.Stop()
	prev := core.CapsuleStats(e.capsule)
	last := time.Now()
	for {
		select {
		case <-quit:
			return
		case <-ticker.C:
		}
		now := time.Now()
		view := View{
			Now:     core.CapsuleStats(e.capsule),
			Prev:    prev,
			Elapsed: now.Sub(last),
		}
		e.tick(view, now)
		prev, last = view.Now, now
	}
}

// tick evaluates every rule against one view.
func (e *Engine) tick(v View, now time.Time) {
	tickN := e.ticks.Add(1)
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		if st.disarmed {
			continue
		}
		if r.Cooldown > 0 && !st.lastFired.IsZero() && now.Sub(st.lastFired) < r.Cooldown {
			st.run = 0
			continue
		}
		if r.When == nil || !r.When(v) {
			st.run = 0
			continue
		}
		st.run++
		need := r.Sustain
		if need < 1 {
			need = 1
		}
		if st.run < need {
			continue
		}
		st.run = 0
		st.lastFired = now
		f := Firing{Rule: r.Name, Tick: tickN, At: now}
		if r.Then != nil {
			ctx, cancel := context.WithTimeout(e.actCtx, e.opts.ActionTimeout)
			err := r.Then(ctx, e.capsule, v)
			cancel()
			if err != nil {
				f.Err = err.Error()
				e.actErrs.Add(1)
			} else if r.Once {
				st.disarmed = true
			}
		} else if r.Once {
			st.disarmed = true
		}
		e.firings.Add(1)
		e.histMu.Lock()
		if len(e.history) >= maxHistory {
			copy(e.history, e.history[1:])
			e.history = e.history[:len(e.history)-1]
		}
		e.history = append(e.history, f)
		e.histMu.Unlock()
		if e.opts.OnFire != nil {
			e.opts.OnFire(f)
		}
	}
}

// Ticks reports how many sampling ticks have run. The first tick's view
// has the engine-start snapshot as its Prev, so callers that want delta
// rules to observe an event should let at least one tick pass first.
func (e *Engine) Ticks() uint64 { return e.ticks.Load() }

// Firings reports how many rule activations have run.
func (e *Engine) Firings() uint64 { return e.firings.Load() }

// History returns the retained firing log, oldest first.
func (e *Engine) History() []Firing {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	return append([]Firing(nil), e.history...)
}

// Stats implements core.IStats: the loop observes itself through the same
// capability it samples.
func (e *Engine) Stats() []core.Stat {
	return []core.Stat{
		core.C("adapt_ticks", "ticks", e.ticks.Load()),
		core.C("adapt_firings", "firings", e.firings.Load()),
		core.C("adapt_action_errors", "errors", e.actErrs.Load()),
		core.G("adapt_rules", "rules", float64(len(e.rules))),
	}
}

var (
	_ core.Component = (*Engine)(nil)
	_ core.Starter   = (*Engine)(nil)
	_ core.Stopper   = (*Engine)(nil)
	_ core.IStats    = (*Engine)(nil)
)
