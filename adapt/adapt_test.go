package adapt

import (
	"context"
	"encoding/binary"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/internal/netsim"
	"netkit/internal/trace"
	"netkit/packet"
	"netkit/router"
)

// mkUDP builds one UDP/IPv4 packet whose payload carries (flow, seq) for
// the ordering checks.
func mkUDP(t testing.TB, flow uint16, seq uint32) []byte {
	t.Helper()
	payload := make([]byte, 6)
	binary.BigEndian.PutUint16(payload[0:2], flow)
	binary.BigEndian.PutUint32(payload[2:6], seq)
	b, err := packet.BuildUDP4(
		netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		netip.AddrFrom4([4]byte{10, 9, byte(flow >> 8), byte(flow)}),
		uint16(1024+flow), uint16(2000+flow), 64, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// seqSink terminates a pipeline, recording per-flow delivery order.
type seqSink struct {
	*core.Base
	mu    sync.Mutex
	next  map[uint16]uint32
	count uint64
	bad   int
}

func newSeqSink() *seqSink {
	s := &seqSink{Base: core.NewBase("test.seqSink"), next: make(map[uint16]uint32)}
	s.Provide(router.IPacketPushID, s)
	return s
}

func (s *seqSink) Push(p *router.Packet) error {
	data := p.Data
	s.mu.Lock()
	if len(data) >= 34 {
		flow := binary.BigEndian.Uint16(data[28:30])
		seq := binary.BigEndian.Uint32(data[30:34])
		if s.next[flow] != seq {
			s.bad++
		}
		s.next[flow] = seq + 1
	}
	s.count++
	s.mu.Unlock()
	p.Release()
	return nil
}

func (s *seqSink) totals() (count uint64, bad int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.bad
}

// waitTick blocks until the engine has taken its baseline and at least n
// ticks, so delta conditions observe subsequent events.
func waitTick(t *testing.T, eng *Engine, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Ticks() < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck at %d ticks", eng.Ticks())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitFiring blocks until the named rule fires or the deadline passes.
func waitFiring(t *testing.T, ch <-chan Firing, rule string, d time.Duration) Firing {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case f := <-ch:
			if f.Err != "" {
				t.Fatalf("rule %s fired with error: %s", f.Rule, f.Err)
			}
			if f.Rule == rule {
				return f
			}
		case <-deadline:
			t.Fatalf("rule %q did not fire within %v", rule, d)
		}
	}
}

// TestClosedLoopQueueSwap is the acceptance scenario for the queue half of
// the reflective loop: netsim replays Zipf/IMIX-flavoured traffic into a
// capsule whose FIFO queue has no drain; the adaptation engine — watching
// the stats tree only — detects sustained occupancy and hot-swaps the
// FIFO for a RED queue through the architecture meta-model, migrating the
// buffered packets. No manual reconfiguration call appears anywhere, and
// no packet is lost.
func TestClosedLoopQueueSwap(t *testing.T) {
	capsule := core.NewCapsule("loop")
	in := router.NewCounter()
	if err := capsule.Insert("in", in); err != nil {
		t.Fatal(err)
	}
	const qCap = 1024
	q, err := router.NewFIFOQueue(qCap)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("q", q); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("in", "out", "q", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}

	fired := make(chan Firing, 8)
	// Thresholds sit above the migrated backlog: the EWMA is seeded to
	// the imported queue length (so a congestion-triggered swap-in would
	// early-drop immediately), and this test wants exact conservation,
	// not RED's policy drops.
	mkRED := func() (core.Component, error) {
		return router.NewREDQueue(router.REDConfig{
			Capacity: qCap, MinTh: qCap * 7 / 8, MaxTh: qCap*15/16 + 1, MaxP: 0.1,
		})
	}
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name:    "fifo-to-red",
			When:    GaugeAbove("q", "queue_occupancy", 0.5),
			Sustain: 2,
			Once:    true,
			Then:    Swap("q", "q2", mkRED),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()

	// netsim replay: a source node streams generated traffic to the
	// router node, whose handler feeds the capsule's entry component.
	w := netsim.NewNetwork()
	src, err := w.AddNode("src")
	if err != nil {
		t.Fatal(err)
	}
	rtr, err := w.AddNode("rtr")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Connect("src", "rtr", netsim.LinkConfig{Queue: 4096}); err != nil {
		t.Fatal(err)
	}
	rtr.Register(7, func(_ string, payload []byte) {
		_ = in.Push(router.NewPacket(payload))
	})
	defer w.Stop()

	gen, err := trace.NewGenerator(trace.Config{Seed: 13, Flows: 32, UDPShare: 100})
	if err != nil {
		t.Fatal(err)
	}
	const total = 768 // enough to cross 50% occupancy, below capacity
	for sent := 0; sent < total; sent += 32 {
		batch := make([][]byte, 0, 32)
		for i := 0; i < 32 && sent+i < total; i++ {
			raw, err := gen.Next()
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, raw)
		}
		if err := src.SendBatch("rtr", 7, batch); err != nil {
			t.Fatal(err)
		}
		time.Sleep(300 * time.Microsecond) // paced, so the swap runs under traffic
	}

	waitFiring(t, fired, "fifo-to-red", 10*time.Second)

	// The link must not have dropped (zero loss starts at the wire).
	if _, drops, err := w.LinkStats("src", "rtr"); err != nil || drops != 0 {
		t.Fatalf("link dropped %d frames (err %v)", drops, err)
	}
	// Wait until every sent frame reached the entry component.
	for deadline := time.Now().Add(5 * time.Second); in.ElemStats().In < total; {
		if time.Now().After(deadline) {
			t.Fatalf("entry saw %d of %d packets", in.ElemStats().In, total)
		}
		time.Sleep(time.Millisecond)
	}

	// The architecture changed: q replaced by a RED queue under q2.
	if _, ok := capsule.Component("q"); ok {
		t.Fatal("FIFO queue still present after adaptation")
	}
	comp, ok := capsule.Component("q2")
	if !ok {
		t.Fatal("RED queue not inserted")
	}
	red, ok := comp.(*router.REDQueue)
	if !ok {
		t.Fatalf("q2 is %T, want *router.REDQueue", comp)
	}

	// Zero loss: every packet the entry forwarded — before, during and
	// after the swap — is buffered in the RED queue (state migration
	// included the FIFO backlog).
	if st := in.ElemStats(); st.In != total || st.Out != total || st.Dropped != 0 {
		t.Fatalf("entry stats %+v, want in=out=%d", st, total)
	}
	drained := 0
	for {
		if _, err := red.Pull(); err != nil {
			break
		}
		drained++
	}
	if drained != total {
		t.Fatalf("drained %d packets from RED queue, want %d (lost %d)",
			drained, total, total-drained)
	}
	if st := red.ElemStats(); st.Dropped != 0 {
		t.Fatalf("RED queue dropped %d during migration", st.Dropped)
	}

	// The loop converged: the rule disarmed after its firing.
	if got := eng.History(); len(got) != 1 {
		t.Fatalf("history = %+v, want exactly one firing", got)
	}
}

// TestClosedLoopShardScaleUp is the acceptance scenario for the scaling
// half: a sharded data plane starts with one active lane of four; netsim
// replays flow-rich traffic; the engine observes the lane skew in the
// per-replica stats and rescales the dispatcher through the architecture
// meta-model. Per-flow ordering and packet conservation hold across the
// rescale.
func TestClosedLoopShardScaleUp(t *testing.T) {
	capsule := core.NewCapsule("scale")
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := fw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	const lanes = 4
	sharded, err := router.NewShardedCF(capsule,
		router.ShardConfig{Shards: lanes, ActiveShards: 1}, replica)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("fwd", sharded); err != nil {
		t.Fatal(err)
	}
	sink := newSeqSink()
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("fwd", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}

	fired := make(chan Firing, 8)
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name:    "scale-up",
			When:    ShardSkewAbove("fwd", 1.5, 64),
			Sustain: 2,
			Once:    true,
			Then:    ScaleShards("fwd", func(View) int { return lanes }),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()

	// netsim replay into the dispatcher: 64 flows, sequenced payloads.
	w := netsim.NewNetwork()
	src, err := w.AddNode("src")
	if err != nil {
		t.Fatal(err)
	}
	rtr, err := w.AddNode("rtr")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Connect("src", "rtr", netsim.LinkConfig{Queue: 1 << 15}); err != nil {
		t.Fatal(err)
	}
	rtr.Register(7, func(_ string, payload []byte) {
		_ = sharded.Push(router.NewPacket(payload))
	})
	defer w.Stop()

	const flows = 64
	seqs := make([]uint32, flows)
	var sent uint64
	sendRound := func(rounds int) {
		for r := 0; r < rounds; r++ {
			batch := make([][]byte, 0, flows)
			for f := 0; f < flows; f++ {
				batch = append(batch, mkUDP(t, uint16(f), seqs[f]))
				seqs[f]++
			}
			if err := src.SendBatch("rtr", 7, batch); err != nil {
				t.Fatal(err)
			}
			sent += flows
			time.Sleep(200 * time.Microsecond)
		}
	}
	sendRound(40) // one active lane: every flow lands on it -> max skew

	waitFiring(t, fired, "scale-up", 10*time.Second)
	if got := sharded.ActiveShards(); got != lanes {
		t.Fatalf("active shards = %d, want %d", got, lanes)
	}
	if v, _ := sharded.Annotations()[router.AnnotActiveShards]; v != "4" {
		t.Fatalf("annotation = %q, want 4", v)
	}

	sendRound(40) // traffic continues over the rescaled plane

	// Drain: link, then dispatcher, then replicas.
	if _, drops, err := w.LinkStats("src", "rtr"); err != nil || drops != 0 {
		t.Fatalf("link dropped %d frames (err %v)", drops, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sharded.ElemStats().In < sent {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher saw %d of %d", sharded.ElemStats().In, sent)
		}
		time.Sleep(time.Millisecond)
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}

	// Conservation and ordering across the rescale.
	count, bad := sink.totals()
	if count != sent {
		t.Fatalf("sink saw %d of %d packets", count, sent)
	}
	if bad != 0 {
		t.Fatalf("%d out-of-order deliveries across rescale", bad)
	}
	if st := sharded.ElemStats(); st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("sharded CF stats %+v", st)
	}
	// Post-scale, more than one lane carried traffic.
	busy := 0
	for i := 0; i < lanes; i++ {
		if sharded.ShardStats(i).In > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d lanes carried traffic after scale-up", busy)
	}
}

// TestRetuneShaperFromDrops closes the resources-meta-model loop: the
// engine watches the shaper's denial counter and retunes the token-bucket
// rate when drops spike.
func TestRetuneShaperFromDrops(t *testing.T) {
	capsule := core.NewCapsule("shape")
	in := router.NewCounter()
	if err := capsule.Insert("in", in); err != nil {
		t.Fatal(err)
	}
	sh, err := router.NewTokenShaper(1000, 2000, nil) // tiny: denies quickly
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sh", sh); err != nil {
		t.Fatal(err)
	}
	sink := router.NewCounter()
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("in", "out", "sh", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("sh", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}

	fired := make(chan Firing, 8)
	const tuned = 1e9
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name: "open-up",
			When: DeltaAbove("sh", "shaper_denied", 0),
			Once: true,
			Then: RetuneShaper("sh", func(View) float64 { return tuned }),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()
	waitTick(t, eng, 1)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = in.Push(router.NewPacket(mkUDP(t, uint16(i%8), uint32(i))))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	waitFiring(t, fired, "open-up", 10*time.Second)
	close(stop)
	<-done

	if got := sh.Rate(); got != tuned {
		t.Fatalf("shaper rate = %g, want %g", got, tuned)
	}
	// The retuned bucket admits traffic again.
	before := sink.ElemStats().In
	for i := 0; i < 10; i++ {
		_ = in.Push(router.NewPacket(mkUDP(t, 1, uint32(i))))
	}
	if got := sink.ElemStats().In; got != before+10 {
		t.Fatalf("post-retune sink in = %d, want %d", got, before+10)
	}
}

// TestDiagnosticProbeOnLossSpike closes the interception-meta-model loop:
// a drop spike at the queue triggers installation of a named diagnostic
// audit on the upstream binding, which then observes traffic.
func TestDiagnosticProbeOnLossSpike(t *testing.T) {
	capsule := core.NewCapsule("probe")
	in := router.NewCounter()
	if err := capsule.Insert("in", in); err != nil {
		t.Fatal(err)
	}
	q, err := router.NewFIFOQueue(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("q", q); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("in", "out", "q", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}

	var audited atomic.Uint64
	probe := core.PrePost(func(op string, args []any) {
		audited.Add(uint64(router.PacketCount(op, args)))
	}, nil)
	fired := make(chan Firing, 8)
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name: "probe-on-loss",
			When: DeltaAbove("q", "packets_dropped", 0),
			Once: true,
			Then: Intercept("in", "out", "adapt.diag", probe),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()
	waitTick(t, eng, 1)

	// Overflow the tiny queue so drops spike.
	for i := 0; i < 64; i++ {
		_ = in.Push(router.NewPacket(mkUDP(t, 1, uint32(i))))
	}
	waitFiring(t, fired, "probe-on-loss", 10*time.Second)

	b := capsule.BindingsOf("in")[0]
	found := false
	for _, name := range b.Interceptors() {
		if name == "adapt.diag" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic probe not installed; chain = %v", b.Interceptors())
	}
	// The probe observes subsequent traffic.
	before := audited.Load()
	for i := 0; i < 5; i++ {
		_ = in.Push(router.NewPacket(mkUDP(t, 2, uint32(i))))
	}
	if got := audited.Load(); got != before+5 {
		t.Fatalf("probe counted %d, want %d", got, before+5)
	}
	// Unintercept is idempotent and removes the probe.
	v := View{}
	if err := Unintercept("in", "out", "adapt.diag")(ctx, capsule, v); err != nil {
		t.Fatal(err)
	}
	if err := Unintercept("in", "out", "adapt.diag")(ctx, capsule, v); err != nil {
		t.Fatal(err)
	}
	if got := b.Interceptors(); len(got) != 0 {
		t.Fatalf("chain after removal = %v", got)
	}
}

// TestEngineMechanics covers sustain, cooldown, once, and the engine's
// own stats.
func TestEngineMechanics(t *testing.T) {
	capsule := core.NewCapsule("mech")
	var always atomic.Uint64
	fireCount := func() uint64 { return always.Load() }
	eng := NewEngine(capsule,
		Options{Interval: time.Millisecond},
		Rule{
			Name:     "steady",
			When:     func(View) bool { return true },
			Sustain:  2,
			Cooldown: time.Hour, // fires once per hour at most
			Then: func(context.Context, *core.Capsule, View) error {
				always.Add(1)
				return nil
			},
		},
		Rule{
			Name: "missing-path",
			When: GaugeAbove("ghost", "nothing", 0), // absent data never fires
			Then: func(context.Context, *core.Capsule, View) error {
				t.Error("fired on missing data")
				return nil
			},
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fireCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sustained rule never fired")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // more ticks pass...
	if got := fireCount(); got != 1 {
		t.Fatalf("cooldown violated: %d firings", got)
	}
	// The engine observes itself through the same capability it samples.
	tree := core.CapsuleStats(capsule)
	node, ok := tree.Find("adapt")
	if !ok {
		t.Fatal("engine missing from stats tree")
	}
	if ticks, ok := node.Stat("adapt_ticks"); !ok || ticks.Value < 2 {
		t.Fatalf("engine stats = %+v", node.Stats)
	}
	if f, ok := node.Stat("adapt_firings"); !ok || f.Value != 1 {
		t.Fatalf("engine firings stat = %+v", node.Stats)
	}
	if err := capsule.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Stop is idempotent through Close; a second Stop is a no-op.
	if err := eng.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// delayStage is a pass-through pipeline stage that sleeps per packet — the
// latency fault the P99 SLO loop detects and removes.
type delayStage struct {
	*core.Base
	out   *core.Receptacle[router.IPacketPush]
	delay time.Duration
}

func newDelayStage(d time.Duration) *delayStage {
	s := &delayStage{Base: core.NewBase("test.delayStage"), delay: d}
	s.out = core.NewReceptacle[router.IPacketPush](router.IPacketPushID)
	s.AddReceptacle("out", s.out)
	s.Provide(router.IPacketPushID, s)
	return s
}

func (s *delayStage) Push(p *router.Packet) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	dst, ok := s.out.Get()
	if !ok {
		p.Release()
		return core.ErrNotBound
	}
	return dst.Push(p)
}

func (s *delayStage) PushBatch(batch []*router.Packet) error {
	if s.delay > 0 {
		time.Sleep(s.delay * time.Duration(len(batch)))
	}
	dst, ok := s.out.Get()
	if !ok {
		for _, p := range batch {
			p.Release()
		}
		return core.ErrNotBound
	}
	return router.ForwardBatch(dst, batch)
}

// TestViewQuantileHelpers pins the windowed-vs-cumulative semantics the
// SLO conditions rely on: a small latency regression is invisible to the
// cumulative quantile (diluted by history) but trips the windowed one
// immediately.
func TestViewQuantileHelpers(t *testing.T) {
	const fast, slow = uint64(50_000), uint64(20_000_000) // 50µs vs 20ms
	h := core.NewHistogram()
	for i := 0; i < 10_000; i++ {
		h.Record(fast)
	}
	prev := core.StatNode{Children: []core.StatNode{{
		Name: "fwd", Stats: []core.Stat{core.H(router.StatLatency, "ns", h.Snapshot())},
	}}}
	for i := 0; i < 50; i++ { // regression: 50 slow packets, 0.5% of total
		h.Record(slow)
	}
	now := core.StatNode{Children: []core.StatNode{{
		Name: "fwd", Stats: []core.Stat{core.H(router.StatLatency, "ns", h.Snapshot())},
	}}}
	v := View{Now: now, Prev: prev, Elapsed: time.Second}

	if q, ok := v.Quantile("fwd", router.StatLatency, 0.99); !ok || q > float64(fast)*1.1 {
		t.Fatalf("cumulative p99 %v/%v should still read fast", q, ok)
	}
	if q, ok := v.WindowQuantile("fwd", router.StatLatency, 0.99); !ok || q < float64(slow)*0.9 {
		t.Fatalf("windowed p99 %v/%v should read the regression", q, ok)
	}
	if QuantileAbove("fwd", router.StatLatency, 0.99, float64(time.Millisecond))(v) {
		t.Fatal("cumulative condition must not see a 0.5%% regression yet")
	}
	if !P99Above("fwd", time.Millisecond)(v) {
		t.Fatal("windowed P99Above must see the regression")
	}
	// Absent data reads as "not holding", like every other condition.
	if P99Above("nope", time.Millisecond)(v) {
		t.Fatal("missing path must not hold")
	}
	if _, ok := v.WindowQuantile("fwd", "packets_in", 0.99); ok {
		t.Fatal("non-histogram stat must not answer quantiles")
	}
	// Empty window (no new observations) reads false too.
	same := View{Now: now, Prev: now, Elapsed: time.Second}
	if _, ok := same.WindowQuantile("fwd", router.StatLatency, 0.99); ok {
		t.Fatal("empty window must not answer")
	}
}

// TestClosedLoopP99HotSwap is the acceptance scenario for the tail-latency
// half of the SLO loop: a sharded plane whose replicas contain a slow
// stage; the engine — watching only the windowed p99 of the plane's
// latency histogram stat — detects the SLO breach and hot-swaps the stage
// in every replica through the architecture meta-model. The windowed p99
// then recovers below the threshold, demonstrating the loop closes.
func TestClosedLoopP99HotSwap(t *testing.T) {
	const lanes = 2
	const slo = 2 * time.Millisecond
	capsule := core.NewCapsule("slo")
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "stage")
		if err := fw.Admit(name, newDelayStage(5*time.Millisecond)); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sharded, err := router.NewShardedCF(capsule,
		router.ShardConfig{Shards: lanes, LatencyHistogram: true}, replica)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("fwd", sharded); err != nil {
		t.Fatal(err)
	}
	sink := newSeqSink()
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("fwd", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}

	fired := make(chan Firing, 8)
	eng := NewEngine(capsule,
		Options{Interval: 2 * time.Millisecond, OnFire: func(f Firing) { fired <- f }},
		Rule{
			Name:    "p99-slo",
			When:    P99Above("fwd", slo),
			Sustain: 2,
			Once:    true,
			Then: ShardSwap("fwd", "stage", "stage2", func(int) (core.Component, error) {
				return newDelayStage(0), nil
			}),
		})
	if err := capsule.Insert("adapt", eng); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()

	// Pre-built frames so the pump goroutine never touches testing.T.
	const flows = 16
	frames := make([][]byte, flows)
	for f := range frames {
		frames[f] = mkUDP(t, uint16(f), 0)
	}
	var sent atomic.Uint64
	pump := func(stop <-chan struct{}) {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sharded.Push(router.NewPacket(frames[i%flows]))
			sent.Add(1)
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}
	stopSlow := make(chan struct{})
	go pump(stopSlow)
	waitFiring(t, fired, "p99-slo", 15*time.Second)
	close(stopSlow)

	// The architecture changed in every replica: stage -> stage2.
	inner := sharded.Inner()
	for i := 0; i < lanes; i++ {
		if _, ok := inner.Component(router.ShardName(i, "stage")); ok {
			t.Fatalf("shard %d still carries the slow stage", i)
		}
		if _, ok := inner.Component(router.ShardName(i, "stage2")); !ok {
			t.Fatalf("shard %d missing the replacement stage", i)
		}
	}

	// Drain the slow-era backlog (old Born stamps would pollute the
	// recovery window), then measure a fresh window over the fast plane.
	latHist := func() *core.HistSnapshot {
		for _, s := range sharded.Stats() {
			if s.Name == router.StatLatency {
				return s.Hist
			}
		}
		t.Fatal("no latency stat on the sharded CF")
		return nil
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}
	base := latHist()
	stopFast := make(chan struct{})
	go pump(stopFast)
	time.Sleep(100 * time.Millisecond)
	close(stopFast)
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}
	window := latHist().Sub(base)
	if window.Count == 0 {
		t.Fatal("recovery window recorded nothing")
	}
	if p99 := window.Quantile(0.99); p99 >= float64(slo) {
		t.Fatalf("post-swap windowed p99 = %vns, SLO %v not recovered", p99, slo)
	}
	if got := eng.History(); len(got) != 1 {
		t.Fatalf("history = %+v, want exactly one firing", got)
	}
}

// TestBatchFillBelow pins the windowed batch-fill condition: it fires on
// a tick whose frames-per-syscall delta underfills the configured batch,
// stays quiet on a well-amortised tick, and — like every condition —
// reads absent data and idle windows as "not holding".
func TestBatchFillBelow(t *testing.T) {
	dev := func(frames, calls uint64) core.StatNode {
		return core.StatNode{Children: []core.StatNode{{
			Name: "src",
			Stats: []core.Stat{
				core.C("udp_rx_frames", "frames", frames),
				core.C("udp_rx_syscalls", "syscalls", calls),
			},
		}}}
	}
	// 100 syscalls moving 3200 frames out of a batch-32 ceiling: full.
	full := View{Now: dev(3200, 100), Prev: dev(0, 0), Elapsed: time.Second}
	if BatchFillBelow("src", 32, 0.5, 10)(full) {
		t.Fatal("a fully amortised window must not hold")
	}
	// 100 syscalls moving 100 frames: fill 1/32, far under ratio 0.5.
	trickle := View{Now: dev(100, 100), Prev: dev(0, 0), Elapsed: time.Second}
	if !BatchFillBelow("src", 32, 0.5, 10)(trickle) {
		t.Fatal("a trickle window must hold")
	}
	// Under the minSyscalls floor the same fill reads as idle, not thin.
	if BatchFillBelow("src", 32, 0.5, 1000)(trickle) {
		t.Fatal("a window under the syscall floor must not hold")
	}
	// No growth at all: zero-delta window never holds.
	idle := View{Now: dev(100, 100), Prev: dev(100, 100), Elapsed: time.Second}
	if BatchFillBelow("src", 32, 0.5, 10)(idle) {
		t.Fatal("an idle window must not hold")
	}
	// Missing component path never holds.
	if BatchFillBelow("nope", 32, 0.5, 10)(trickle) {
		t.Fatal("a missing path must not hold")
	}
}

// TestFramesPerRoundtripBelow pins the IPC-lane analogue of the batch-fill
// condition: it fires on a tick whose frames-per-roundtrip delta underfills
// the sender's batch, stays quiet when the lane amortises well, and reads
// absent or idle lanes as "not holding".
func TestFramesPerRoundtripBelow(t *testing.T) {
	lane := func(frames, trips uint64) core.StatNode {
		return core.StatNode{Children: []core.StatNode{{
			Name: "remote",
			Stats: []core.Stat{
				core.C("ipc_acked_frames", "packets", frames),
				core.C("ipc_roundtrips", "acks", trips),
			},
		}}}
	}
	// 100 round-trips carrying 3200 frames against a batch-32 sender: full.
	full := View{Now: lane(3200, 100), Prev: lane(0, 0), Elapsed: time.Second}
	if FramesPerRoundtripBelow("remote", 32, 0.5, 10)(full) {
		t.Fatal("a fully amortised lane must not hold")
	}
	// 100 round-trips carrying 100 frames: the lane pays a near-full
	// crossing per packet — exactly what the condition exists to catch.
	trickle := View{Now: lane(100, 100), Prev: lane(0, 0), Elapsed: time.Second}
	if !FramesPerRoundtripBelow("remote", 32, 0.5, 10)(trickle) {
		t.Fatal("a per-packet lane must hold")
	}
	// Under the round-trip floor the same fill reads as idle, not thin.
	if FramesPerRoundtripBelow("remote", 32, 0.5, 1000)(trickle) {
		t.Fatal("a lane under the round-trip floor must not hold")
	}
	// No growth at all: zero-delta window never holds.
	idle := View{Now: lane(100, 100), Prev: lane(100, 100), Elapsed: time.Second}
	if FramesPerRoundtripBelow("remote", 32, 0.5, 10)(idle) {
		t.Fatal("an idle lane must not hold")
	}
	// Missing lane path never holds.
	if FramesPerRoundtripBelow("nope", 32, 0.5, 10)(trickle) {
		t.Fatal("a missing path must not hold")
	}
}
