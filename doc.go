// Package netkit is a Go reproduction of "Reflective Middleware-based
// Programmable Networking" (Coulson et al., RM2003): an OpenCOM-style
// reflective component runtime (internal/core), a component-framework kit
// (internal/cf), and one component framework per stratum of the paper's
// Figure 1 — hardware abstraction (internal/osabs), in-band functions
// (internal/router), application services (internal/appsvc) and
// coordination (internal/coord) — plus the substrates, baselines and
// experiment harness described in DESIGN.md.
//
// The root package carries the repository-level benchmark suite
// (bench_test.go, experiments E1–E10) and the cross-strata integration
// tests; the library lives under internal/ and the executables under cmd/.
package netkit
