// Package netkit is a Go reproduction of "Reflective Middleware-based
// Programmable Networking" (Coulson et al., RM2003), packaged as an
// importable middleware SDK.
//
// The public surface is layered exactly as the paper's Figure 2:
//
//   - netkit/core — the OpenCOM-style reflective kernel: capsules,
//     components, receptacles, first-class bindings, and the raw
//     meta-object protocols.
//   - netkit/packet — wire-format packet construction and parsing.
//   - netkit/router — the Router CF (in-band functions stratum): packet
//     components, classifier, scheduler, hot-swap.
//   - netkit/cf — the component-framework kit (admission rules, ACLs,
//     composites).
//   - netkit/resources — the resources meta-model (tasks, pools,
//     schedulers, abstract capacities).
//   - netkit (this package) — the facade: Meta(capsule) is the unified
//     meta-space entry point exposing the Architecture, Interface,
//     Interception and Resources meta-models, and Blueprint is the
//     declarative builder that collapses instantiate/bind/start
//     boilerplate into a few chained calls.
//
// Genuinely private machinery (substrates, baselines, the experiment
// harness, the control protocol) remains under internal/; the executables
// live under cmd/ and runnable walkthroughs under examples/.
//
// The root package also carries the repository-level benchmark suite
// (bench_test.go, experiments E1–E10) and the cross-strata integration
// tests.
package netkit
