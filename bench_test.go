package netkit

// Benchmark suite: one Benchmark family per experiment in DESIGN.md §3.
// Run with:  go test -bench=. -benchmem
// cmd/nkbench prints the same series as formatted tables.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"netkit/adapt"
	"netkit/cf"
	"netkit/core"
	"netkit/internal/appsvc"
	"netkit/internal/baseline"
	"netkit/internal/buffers"
	"netkit/internal/coord"
	"netkit/internal/filter"
	"netkit/internal/ipc"
	"netkit/internal/ixp"
	"netkit/internal/netsim"
	"netkit/internal/osabs"
	"netkit/internal/trace"
	"netkit/resources"
	"netkit/router"
)

func benchPacketRaw(b testing.TB) []byte {
	b.Helper()
	gen, err := trace.NewGenerator(trace.Config{Seed: 7, Flows: 1, UDPShare: 100})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := gen.NextFixed(64)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// ---------------------------------------------------------------------------
// E1 — call overhead: direct vs fused binding vs interception chains

func BenchmarkE1_DirectCall(b *testing.B) {
	sink := router.NewDropper()
	p := router.NewPacket(benchPacketRaw(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sink.Push(p)
	}
}

func BenchmarkE1_FusedBinding(b *testing.B) {
	capsule := core.NewCapsule("e1")
	cnt := router.NewCounter()
	if err := capsule.Insert("cnt", cnt); err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "cnt", "out", "drop"); err != nil {
		b.Fatal(err)
	}
	p := router.NewPacket(benchPacketRaw(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cnt.Push(p)
	}
}

func BenchmarkE1_Interceptors(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chain-%d", k), func(b *testing.B) {
			capsule := core.NewCapsule("e1i")
			cnt := router.NewCounter()
			if err := capsule.Insert("cnt", cnt); err != nil {
				b.Fatal(err)
			}
			if err := capsule.Insert("drop", router.NewDropper()); err != nil {
				b.Fatal(err)
			}
			bind, err := router.ConnectPush(capsule, "cnt", "out", "drop")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := bind.AddInterceptor(core.Interceptor{
					Name: fmt.Sprintf("i%d", i),
					Wrap: core.PrePost(nil, nil),
				}); err != nil {
					b.Fatal(err)
				}
			}
			p := router.NewPacket(benchPacketRaw(b))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = cnt.Push(p)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E2 — configuration footprint (allocation volume per build)

func BenchmarkE2_FootprintMinimalForwarder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := core.NewCapsule("min")
		_ = c.Insert("cnt", router.NewCounter())
		_ = c.Insert("v4", router.NewIPv4Proc(false))
		_ = c.Insert("drop", router.NewDropper())
		_, _ = router.ConnectPush(c, "cnt", "out", "v4")
		_, _ = router.ConnectPush(c, "v4", "out", "drop")
	}
}

func BenchmarkE2_FootprintFigure3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := core.NewCapsule("f3")
		comp, err := router.NewFigure3Composite(c, router.Figure3Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Insert("gw", comp); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — forwarding throughput vs chain length, three systems

func e3Chain(b *testing.B, chainLen int) (router.IPacketPush, *core.Capsule) {
	b.Helper()
	capsule := core.NewCapsule("e3")
	v4 := router.NewIPv4Proc(false)
	if err := capsule.Insert("v4", v4); err != nil {
		b.Fatal(err)
	}
	prev := "v4"
	for i := 0; i < chainLen; i++ {
		name := fmt.Sprintf("c%d", i)
		if err := capsule.Insert(name, router.NewCounter()); err != nil {
			b.Fatal(err)
		}
		if _, err := router.ConnectPush(capsule, prev, "out", name); err != nil {
			b.Fatal(err)
		}
		prev = name
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, prev, "out", "drop"); err != nil {
		b.Fatal(err)
	}
	return v4, capsule
}

func BenchmarkE3_NetkitChain(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("len-%d", k), func(b *testing.B) {
			first, _ := e3Chain(b, k)
			raw := benchPacketRaw(b)
			p := router.NewPacket(raw)
			ttl := raw[8]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				raw[8] = ttl // rearm TTL so the packet never expires
				_ = first.Push(p)
			}
		})
	}
}

func BenchmarkE3_ClickChain(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("len-%d", k), func(b *testing.B) {
			click := baseline.NewClickRouter()
			if err := click.Add(baseline.DecTTL()); err != nil {
				b.Fatal(err)
			}
			counters := make([]uint64, k)
			for i := 0; i < k; i++ {
				if err := click.Add(baseline.CountPkts(&counters[i])); err != nil {
					b.Fatal(err)
				}
			}
			if err := click.Build(); err != nil {
				b.Fatal(err)
			}
			raw := benchPacketRaw(b)
			ttl := raw[8]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				raw[8] = ttl
				_, _ = click.Run(raw)
			}
		})
	}
}

func BenchmarkE3_Monolith(b *testing.B) {
	mono := baseline.NewMonolith(false)
	raw := benchPacketRaw(b)
	ttl := raw[8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw[8] = ttl
		_ = mono.Run(raw)
	}
}

// ---------------------------------------------------------------------------
// E4 — reconfiguration latency

func BenchmarkE4_HotSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		capsule := core.NewCapsule("e4")
		head := router.NewCounter()
		mid := router.NewCounter()
		if err := capsule.Insert("head", head); err != nil {
			b.Fatal(err)
		}
		if err := capsule.Insert("mid", mid); err != nil {
			b.Fatal(err)
		}
		if err := capsule.Insert("tail", router.NewDropper()); err != nil {
			b.Fatal(err)
		}
		if _, err := router.ConnectPush(capsule, "head", "out", "mid"); err != nil {
			b.Fatal(err)
		}
		if _, err := router.ConnectPush(capsule, "mid", "out", "tail"); err != nil {
			b.Fatal(err)
		}
		repl := router.NewCounter()
		b.StartTimer()
		if err := router.HotSwap(capsule, "mid", "mid2", repl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_ClickRebuild(b *testing.B) {
	var c1 uint64
	click := baseline.NewClickRouter()
	if err := click.Add(baseline.CountPkts(&c1)); err != nil {
		b.Fatal(err)
	}
	if err := click.Add(baseline.DecTTL()); err != nil {
		b.Fatal(err)
	}
	if err := click.Build(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c2 uint64
		if _, err := click.Reconfigure(0, baseline.CountPkts(&c2)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E5 — classification cost vs rule count

func BenchmarkE5_ClassifierLookup(b *testing.B) {
	raw := benchPacketRaw(b)
	view := filter.Extract(raw)
	for _, n := range []int{1, 16, 256, 1024} {
		b.Run(fmt.Sprintf("rules-%d", n), func(b *testing.B) {
			tbl := filter.NewTable()
			for i := 0; i < n; i++ {
				spec := fmt.Sprintf("udp and dst port %d", 20000+i)
				if _, err := tbl.Add(spec, i, "out"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = tbl.LookupView(&view)
			}
		})
	}
}

func BenchmarkE5_VMvsClosure(b *testing.B) {
	raw := benchPacketRaw(b)
	view := filter.Extract(raw)
	const spec = "ip and udp and (dst port 53 or dst port 5353) and ttl > 1"
	prog, err := filter.CompileToProgram(spec)
	if err != nil {
		b.Fatal(err)
	}
	clo, err := filter.Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = prog.Match(&view)
		}
	})
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = clo.Match(&view)
		}
	})
}

// ---------------------------------------------------------------------------
// E6 — in-proc vs out-of-proc binding

func BenchmarkE6_InProcPush(b *testing.B) {
	cnt := router.NewCounter()
	p := router.NewPacket(benchPacketRaw(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cnt.Push(p)
	}
}

func BenchmarkE6_OutOfProcPush(b *testing.B) {
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})
	client, _, cleanup := ipc.HostPair(reg)
	defer cleanup()
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		b.Fatal(err)
	}
	raw := benchPacketRaw(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rc.Push(router.NewPacket(raw))
	}
}

// ---------------------------------------------------------------------------
// E18 — batched, pipelined out-of-proc bindings

// e18Remote builds a one-component isolated capsule (a Counter behind an
// ipc.HostPair) and returns its stand-in plus a teardown.
func e18Remote(tb testing.TB, cfg ipc.Config) (*ipc.RemoteComponent, func()) {
	tb.Helper()
	reg := core.NewComponentRegistry()
	reg.MustRegister(router.TypeCounter, func(map[string]string) (core.Component, error) {
		return router.NewCounter(), nil
	})
	client, _, cleanup := ipc.HostPairCfg(reg, cfg)
	rc, err := client.Instantiate("cnt", router.TypeCounter, nil)
	if err != nil {
		cleanup()
		tb.Fatal(err)
	}
	return rc, cleanup
}

// e18PushBatchNs measures the pipelined out-of-proc cost per packet:
// iters PushBatch calls of the same batch-sized packet slice stream into
// the credit window, one Flush settles the tail, and the elapsed wall
// time is divided by the packets moved.
func e18PushBatchNs(tb testing.TB, cfg ipc.Config, batch, iters int) float64 {
	tb.Helper()
	rc, cleanup := e18Remote(tb, cfg)
	defer cleanup()
	raw := benchPacketRaw(tb)
	pkts := make([]*router.Packet, batch)
	for i := range pkts {
		pkts[i] = router.NewPacket(raw)
	}
	// Warm the path (name interning, pool priming) outside the clock.
	if err := rc.PushBatch(pkts); err != nil {
		tb.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := rc.PushBatch(pkts); err != nil {
			tb.Fatal(err)
		}
	}
	if err := rc.Flush(); err != nil {
		tb.Fatal(err)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters*batch)
}

// e18InProcNs is the in-proc reference: the same Counter.Push the remote
// side runs, called through nothing at all.
func e18InProcNs(tb testing.TB, iters int) float64 {
	tb.Helper()
	cnt := router.NewCounter()
	p := router.NewPacket(benchPacketRaw(tb))
	start := time.Now()
	for i := 0; i < iters; i++ {
		_ = cnt.Push(p)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// TestE18BatchAmortization is the acceptance gate for the batched ipc
// transport: pushing batch-32 through the pipelined binary framing must
// land within 25x of the in-proc call — against the ~372x the per-packet
// gob round-trip costs (E6). Best of five attempts is gated: the
// capability is what is asserted, and shared-runner noise only ever
// degrades a measurement, never flatters it.
func TestE18BatchAmortization(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate meaningless under the race detector")
	}
	const (
		want  = 25.0
		batch = 32
	)
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		inProc := e18InProcNs(t, 200_000)
		outOfProc := e18PushBatchNs(t, ipc.Config{}, batch, 5_000)
		if ratio := outOfProc / inProc; best == 0 || ratio < best {
			best = ratio
		}
		if best <= want {
			break
		}
	}
	if best > want {
		t.Fatalf("batch-%d out-of-proc push costs x%.1f the in-proc call, want <= x%.1f", batch, best, want)
	}
}

// BenchmarkE18_OutOfProcPushBatch reports the pipelined out-of-proc cost
// per packet by batch size. One op is one packet; compare against
// BenchmarkE6_OutOfProcPush (the per-packet gob round-trip) and
// BenchmarkE6_InProcPush (the floor).
func BenchmarkE18_OutOfProcPushBatch(b *testing.B) {
	for _, k := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			rc, cleanup := e18Remote(b, ipc.Config{})
			defer cleanup()
			raw := benchPacketRaw(b)
			pkts := make([]*router.Packet, k)
			for i := range pkts {
				pkts[i] = router.NewPacket(raw)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += k {
				if err := rc.PushBatch(pkts); err != nil {
					b.Fatal(err)
				}
			}
			if err := rc.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE18_OutOfProcPushBatchGob is the despecialised reference: the
// same PushBatch surface forced down the per-packet gob path (the
// cross-version fallback), batch 32.
func BenchmarkE18_OutOfProcPushBatchGob(b *testing.B) {
	const k = 32
	rc, cleanup := e18Remote(b, ipc.Config{ForceGob: true})
	defer cleanup()
	raw := benchPacketRaw(b)
	pkts := make([]*router.Packet, k)
	for i := range pkts {
		pkts[i] = router.NewPacket(raw)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += k {
		if err := rc.PushBatch(pkts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — placement evaluation and rebalancing

func BenchmarkE7_EvaluatePlacement(b *testing.B) {
	chip := ixp.DefaultIXP1200()
	pipe := ixp.StandardPipeline()
	asg := ixp.PlaceGreedy(chip, pipe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ixp.Evaluate(chip, pipe, asg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_Rebalance(b *testing.B) {
	chip := ixp.DefaultIXP1200()
	pipe := ixp.StandardPipeline()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bad := make(ixp.Assignment)
		for _, s := range pipe {
			bad[s.Name] = ixp.Target{Engine: 0}
		}
		mgr, err := ixp.NewManager(chip, pipe, bad)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := mgr.Rebalance(16); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E8 — reservation signalling vs hops

func BenchmarkE8_Reserve(b *testing.B) {
	for _, hops := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("hops-%d", hops), func(b *testing.B) {
			w := netsim.NewNetwork()
			defer w.Stop()
			names, err := netsim.Line(w, "r", hops+1, netsim.LinkConfig{})
			if err != nil {
				b.Fatal(err)
			}
			agents := make([]*coord.Agent, len(names))
			for i, name := range names {
				node, err := w.Node(name)
				if err != nil {
					b.Fatal(err)
				}
				caps := map[string]int64{}
				for _, nb := range node.Neighbors() {
					caps[nb] = 1 << 40
				}
				agents[i] = coord.NewAgent(node, coord.AgentConfig{Capacity: caps})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				session := fmt.Sprintf("s%d", i)
				if err := agents[0].Reserve(session, names, 1, 10*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — spawning vs member count

func BenchmarkE9_Spawn(b *testing.B) {
	for _, members := range []int{3, 12, 24} {
		b.Run(fmt.Sprintf("members-%d", members), func(b *testing.B) {
			w := netsim.NewNetwork()
			defer w.Stop()
			names, err := netsim.Line(w, "p", members, netsim.LinkConfig{})
			if err != nil {
				b.Fatal(err)
			}
			spawners := make([]*coord.Spawner, members)
			for i, name := range names {
				node, err := w.Node(name)
				if err != nil {
					b.Fatal(err)
				}
				spawners[i] = coord.NewSpawner(node)
			}
			adj := map[string][]string{}
			for i := range names {
				if i > 0 {
					adj[names[i]] = append(adj[names[i]], names[i-1])
				}
				if i < len(names)-1 {
					adj[names[i]] = append(adj[names[i]], names[i+1])
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("v%d", i)
				if err := spawners[0].Spawn(w, coord.SpawnSpec{
					Name: name, Members: names, Adj: adj, Timeout: 10 * time.Second,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E10 — buffers and schedulers

func BenchmarkE10_PooledBuffer(b *testing.B) {
	pool := buffers.MustNewPool(buffers.DefaultClasses, 256, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := pool.Get(1500)
		if err != nil {
			b.Fatal(err)
		}
		if err := buf.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

var benchAllocSink []byte

func BenchmarkE10_HeapAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchAllocSink = make([]byte, 1500)
	}
}

func BenchmarkE10_Schedulers(b *testing.B) {
	mgr := resources.NewManager()
	tasks := make([]*resources.Task, 4)
	for i := range tasks {
		t, err := mgr.CreateTask(resources.TaskSpec{
			Name: fmt.Sprintf("t%d", i), Weight: i + 1, Priority: i,
		})
		if err != nil {
			b.Fatal(err)
		}
		tasks[i] = t
	}
	scheds := map[string]func() resources.Scheduler{
		"fifo":     func() resources.Scheduler { return resources.NewFIFOScheduler() },
		"priority": func() resources.Scheduler { return resources.NewPriorityScheduler() },
		"wfq":      func() resources.Scheduler { return resources.NewWFQScheduler() },
	}
	for name, mk := range scheds {
		b.Run(name, func(b *testing.B) {
			s := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Push(&resources.WorkItem{Task: tasks[i%4], Run: func() {}})
				if i%2 == 1 {
					s.Pop()
					s.Pop()
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E11 — batched fast path: per-packet Push vs PushBatch through the
// forwarding chain (DESIGN.md §3/§4). All variants process one packet per
// benchmark op, so ns/op and B/op are directly comparable.

// e11Packets builds k distinct E-series trace packets plus their TTL
// bytes for rearming between iterations.
func e11Packets(b *testing.B, k int) (pkts []*router.Packet, raws [][]byte, ttls []byte) {
	b.Helper()
	gen, err := trace.NewGenerator(trace.Config{Seed: 7, Flows: 32, UDPShare: 100})
	if err != nil {
		b.Fatal(err)
	}
	pkts = make([]*router.Packet, k)
	raws = make([][]byte, k)
	ttls = make([]byte, k)
	for i := 0; i < k; i++ {
		raw, err := gen.NextFixed(64)
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = raw
		ttls[i] = raw[8]
		pkts[i] = router.NewPacket(raw)
	}
	return pkts, raws, ttls
}

func BenchmarkE11_PerPacket(b *testing.B) {
	first, _ := e3Chain(b, 2)
	pkts, raws, ttls := e11Packets(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raws[0][8] = ttls[0]
		_ = first.Push(pkts[0])
	}
}

func BenchmarkE11_Batched(b *testing.B) {
	for _, k := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch-%d", k), func(b *testing.B) {
			first, _ := e3Chain(b, 2)
			pkts, raws, ttls := e11Packets(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += k {
				n := k // process exactly b.N packets so ns/op is per packet
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					raws[j][8] = ttls[j] // rearm TTLs so packets never expire
				}
				_ = router.ForwardBatch(first, pkts[:n])
			}
		})
	}
}

// BenchmarkE11_Intercepted measures the batch dividend under live
// interception: the chain wraps a batch crossing once, so per-packet
// interception overhead (and its []any allocations) shrinks by the batch
// factor.
func BenchmarkE11_Intercepted(b *testing.B) {
	setup := func(b *testing.B) router.IPacketPush {
		b.Helper()
		capsule := core.NewCapsule("e11i")
		cnt := router.NewCounter()
		if err := capsule.Insert("cnt", cnt); err != nil {
			b.Fatal(err)
		}
		if err := capsule.Insert("drop", router.NewDropper()); err != nil {
			b.Fatal(err)
		}
		bind, err := router.ConnectPush(capsule, "cnt", "out", "drop")
		if err != nil {
			b.Fatal(err)
		}
		if err := bind.AddInterceptor(core.Interceptor{
			Name: "audit", Wrap: core.PrePost(nil, nil),
		}); err != nil {
			b.Fatal(err)
		}
		return cnt
	}
	b.Run("perpacket", func(b *testing.B) {
		first := setup(b)
		pkts, _, _ := e11Packets(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = first.Push(pkts[0])
		}
	})
	for _, k := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("batch-%d", k), func(b *testing.B) {
			first := setup(b)
			pkts, _, _ := e11Packets(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += k {
				n := k
				if rem := b.N - i; rem < n {
					n = rem
				}
				_ = router.ForwardBatch(first, pkts[:n])
			}
		})
	}
}

// ---------------------------------------------------------------------------
// EE — stratum-3 program dispatch (ablation for E1/E5)

func BenchmarkEE_NativeProgram(b *testing.B) {
	capsule := core.NewCapsule("ee")
	ee := appsvc.NewExecEnv()
	if err := capsule.Insert("ee", ee); err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "ee", "out", "drop"); err != nil {
		b.Fatal(err)
	}
	if err := ee.Attach("udp", appsvc.TTLFloor{Min: 2}, appsvc.Sandbox{}); err != nil {
		b.Fatal(err)
	}
	p := router.NewPacket(benchPacketRaw(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ee.Push(p)
	}
}

func BenchmarkEE_VMProgram(b *testing.B) {
	capsule := core.NewCapsule("eevm")
	ee := appsvc.NewExecEnv()
	if err := capsule.Insert("ee", ee); err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "ee", "out", "drop"); err != nil {
		b.Fatal(err)
	}
	code := appsvc.MustAssemble(`
		loadf ttl
		push 2
		lt
		jnz kill
		forward
		kill: drop
	`)
	if err := ee.AttachVM("guard", "udp", code, appsvc.Sandbox{}); err != nil {
		b.Fatal(err)
	}
	p := router.NewPacket(benchPacketRaw(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ee.Push(p)
	}
}

// ---------------------------------------------------------------------------
// E12 — sharded multi-core scale-out: the RSS dispatcher fans flows over N
// Router CF replicas (DESIGN.md §4.5). Replica work is read-only per
// packet (two checksum validations + a counter), so packets can recycle
// across iterations while shard workers process concurrently.

// e12Replica builds validator -> validator -> counter -> egress.
func e12Replica(shard int, fw *cf.Framework) (string, error) {
	v1, v2 := router.ShardName(shard, "val1"), router.ShardName(shard, "val2")
	cnt := router.ShardName(shard, "cnt")
	if err := fw.Admit(v1, router.NewChecksumValidator()); err != nil {
		return "", err
	}
	if err := fw.Admit(v2, router.NewChecksumValidator()); err != nil {
		return "", err
	}
	if err := fw.Admit(cnt, router.NewCounter()); err != nil {
		return "", err
	}
	capsule := fw.Capsule()
	if _, err := capsule.Bind(v1, "out", v2, router.IPacketPushID); err != nil {
		return "", err
	}
	if _, err := capsule.Bind(v2, "out", cnt, router.IPacketPushID); err != nil {
		return "", err
	}
	if _, err := capsule.Bind(cnt, "out", router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
		return "", err
	}
	return v1, nil
}

// e12Build returns a started n-shard CF draining into a dropper.
func e12Build(tb testing.TB, n int) *router.ShardedCF {
	tb.Helper()
	capsule := core.NewCapsule("e12")
	s, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: n}, e12Replica)
	if err != nil {
		tb.Fatal(err)
	}
	if err := capsule.Insert("fwd", s); err != nil {
		tb.Fatal(err)
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		tb.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "fwd", "out", "drop"); err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = capsule.StopAll(ctx) })
	return s
}

// e12Packets pregenerates a flow-diverse packet set (valid checksums, so
// the validating replicas never drop).
func e12Packets(tb testing.TB, k int) []*router.Packet {
	tb.Helper()
	gen, err := trace.NewGenerator(trace.Config{Seed: 12, Flows: 64, UDPShare: 100})
	if err != nil {
		tb.Fatal(err)
	}
	pkts := make([]*router.Packet, k)
	for i := range pkts {
		raw, err := gen.NextFixed(64)
		if err != nil {
			tb.Fatal(err)
		}
		pkts[i] = router.NewPacket(raw)
	}
	return pkts
}

// e12Drive pushes pkts through s in batches of 32, cycling the set until
// total packets have been dispatched, then quiesces. Returns wall time.
func e12Drive(tb testing.TB, s *router.ShardedCF, pkts []*router.Packet, total int) time.Duration {
	tb.Helper()
	start := time.Now()
	sent := 0
	for sent < total {
		lo := sent % len(pkts)
		hi := lo + 32
		if hi > len(pkts) {
			hi = len(pkts)
		}
		if hi-lo > total-sent {
			hi = lo + (total - sent)
		}
		if err := s.PushBatch(pkts[lo:hi]); err != nil {
			tb.Fatal(err)
		}
		sent += hi - lo
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Quiesce(ctx); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

func BenchmarkE12_Sharded(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			s := e12Build(b, n)
			pkts := e12Packets(b, 1024)
			b.ResetTimer()
			e12Drive(b, s, pkts, b.N)
		})
	}
}

// TestE12ShardScaling asserts the scale-out claim where the hardware can
// express it: with >=4 CPUs, 4 shards must deliver at least 2x the kpps
// of 1 shard on the same replica work. On smaller hosts the assertion is
// skipped (as it is under -race and -short) — the correctness of
// sharding is covered by the router package's race/fuzz/stress tests,
// which do not need parallel hardware. Because shared CI runners are
// noisy neighbours, the comparison is best-of-3 per point and gets one
// full retry before the test fails.
func TestE12ShardScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if raceEnabled {
		t.Skip("throughput bound not meaningful under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling assertion needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	const total = 400_000
	measure := func(shards int) float64 {
		s := e12Build(t, shards)
		pkts := e12Packets(t, 1024)
		e12Drive(t, s, pkts, total/4) // warm-up
		elapsed := e12Drive(t, s, pkts, total)
		return float64(total) / elapsed.Seconds() / 1e3
	}
	// Best-of-3 per point to shrug off scheduler noise.
	best := func(shards int) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if k := measure(shards); k > b {
				b = k
			}
		}
		return b
	}
	const attempts = 2
	var one, four float64
	for attempt := 1; attempt <= attempts; attempt++ {
		one = best(1)
		four = best(4)
		t.Logf("E12 attempt %d: shards=1 %.0f kpps, shards=4 %.0f kpps (x%.2f)",
			attempt, one, four, four/one)
		if four >= 2*one {
			return
		}
	}
	t.Fatalf("shards=4 delivered %.0f kpps, want >= 2x shards=1 (%.0f kpps) in %d attempts",
		four, one, attempts)
}

// ---------------------------------------------------------------------------
// E13 — closed-loop adaptation (DESIGN.md §5)

// BenchmarkE13_StatsTreeSample measures the cost of one stats-tree
// snapshot over a representative capsule — the per-tick observation price
// of the adaptation engine.
func BenchmarkE13_StatsTreeSample(b *testing.B) {
	capsule := core.NewCapsule("e13-sample")
	for i := 0; i < 8; i++ {
		if err := capsule.Insert(fmt.Sprintf("c%d", i), router.NewCounter()); err != nil {
			b.Fatal(err)
		}
	}
	q, err := router.NewFIFOQueue(128)
	if err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("q", q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := core.CapsuleStats(capsule)
		if len(tree.Children) != 9 {
			b.Fatal("bad tree")
		}
	}
}

// BenchmarkE13_EngineTick measures a full engine tick — snapshot plus
// rule evaluation — for a small rule set, i.e. the steady-state overhead
// the reflective loop adds while nothing fires.
func BenchmarkE13_EngineTick(b *testing.B) {
	capsule := core.NewCapsule("e13-tick")
	q, err := router.NewFIFOQueue(128)
	if err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("q", q); err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("in", router.NewCounter()); err != nil {
		b.Fatal(err)
	}
	rules := []adapt.Rule{
		{Name: "r1", When: adapt.GaugeAbove("q", "queue_occupancy", 0.99)},
		{Name: "r2", When: adapt.RateAbove("q", "packets_dropped", 1e12)},
		{Name: "r3", When: adapt.All(
			adapt.GaugeAbove("in", "packets_in", 1e18),
			adapt.GaugeBelow("q", "queue_len", -1))},
	}
	prev := core.CapsuleStats(capsule)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := core.CapsuleStats(capsule)
		v := adapt.View{Now: now, Prev: prev, Elapsed: time.Millisecond}
		for _, r := range rules {
			if r.When(v) {
				b.Fatal("rule fired unexpectedly")
			}
		}
		prev = now
	}
}

// ---------------------------------------------------------------------------
// E15 — compiled classification + megaflow cache: flat lookup 1 → 10k rules

// BenchmarkE15_LookupCurve charts the three classification regimes the
// compiled backend introduces, against the same worst-case (never-matching)
// packet E5 uses: the linear VM oracle, the compiled tuple-space lookup
// (cold: every lookup classifies), and the end-to-end classifier push with
// a warm megaflow cache (the steady state of a real flow). The point of
// the experiment is the SHAPE: vm grows linearly with the rule count,
// compiled and cached stay flat.
func BenchmarkE15_LookupCurve(b *testing.B) {
	raw := benchPacketRaw(b)
	view := filter.Extract(raw)
	for _, n := range []int{1, 64, 1000, 10000} {
		tbl := filter.NewTable()
		for i := 0; i < n; i++ {
			spec := fmt.Sprintf("udp and dst port %d", 20000+i)
			if _, err := tbl.Add(spec, i, "out"); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("vm/rules-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = tbl.LookupViewVM(&view)
			}
		})
		b.Run(fmt.Sprintf("compiled/rules-%d", n), func(b *testing.B) {
			snap := tbl.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = snap.Lookup(&view)
			}
		})
		b.Run(fmt.Sprintf("cached/rules-%d", n), func(b *testing.B) {
			cls, err := router.NewClassifier("out", "default")
			if err != nil {
				b.Fatal(err)
			}
			capsule := core.NewCapsule("e15")
			if err := capsule.Insert("cls", cls); err != nil {
				b.Fatal(err)
			}
			if err := capsule.Insert("sink", router.NewDropper()); err != nil {
				b.Fatal(err)
			}
			if err := capsule.Insert("dsink", router.NewDropper()); err != nil {
				b.Fatal(err)
			}
			if _, err := router.ConnectPush(capsule, "cls", "out", "sink"); err != nil {
				b.Fatal(err)
			}
			if _, err := router.ConnectPush(capsule, "cls", "default", "dsink"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				spec := fmt.Sprintf("udp and dst port %d", 20000+i)
				if _, err := cls.RegisterFilter(spec, i, "out"); err != nil {
					b.Fatal(err)
				}
			}
			p := router.NewPacket(raw)
			if err := cls.Push(p); err != nil { // warm the flow's verdict
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = cls.Push(p)
			}
		})
	}
}

// BenchmarkE15_CacheProbe isolates the megaflow probe itself — the cost a
// repeat flow pays regardless of table size.
func BenchmarkE15_CacheProbe(b *testing.B) {
	fc := router.NewFlowCache(router.DefaultFlowCacheCap)
	raw := benchPacketRaw(b)
	p := router.NewPacket(raw)
	view := filter.Extract(raw)
	h := router.FlowHash(p)
	fc.InsertView(h, &view, 1, "out", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = fc.ProbeView(h, &view, 1)
	}
}

// ---------------------------------------------------------------------------
// E16 — bind-time chain fusion: the flattened fast path vs the hop-by-hop
// chain (E3) and the monolith bound. One packet per op everywhere, so
// ns/op is directly comparable across E3, E11 and E16.

// e16Chain is e3Chain headed by a FastPath: fp -> v4 -> c0..ck-1 -> drop.
// The whole chain is fusible and terminal, so it compiles into a single
// plan of chainLen+2 hops.
func e16Chain(b *testing.B, chainLen int) (*router.FastPath, *core.Capsule) {
	b.Helper()
	capsule := core.NewCapsule("e16")
	fp := router.NewFastPath(capsule)
	if err := capsule.Insert("fp", fp); err != nil {
		b.Fatal(err)
	}
	if err := capsule.Insert("v4", router.NewIPv4Proc(false)); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, "fp", "out", "v4"); err != nil {
		b.Fatal(err)
	}
	prev := "v4"
	for i := 0; i < chainLen; i++ {
		name := fmt.Sprintf("c%d", i)
		if err := capsule.Insert(name, router.NewCounter()); err != nil {
			b.Fatal(err)
		}
		if _, err := router.ConnectPush(capsule, prev, "out", name); err != nil {
			b.Fatal(err)
		}
		prev = name
	}
	if err := capsule.Insert("drop", router.NewDropper()); err != nil {
		b.Fatal(err)
	}
	if _, err := router.ConnectPush(capsule, prev, "out", "drop"); err != nil {
		b.Fatal(err)
	}
	// Warm the plan and pin that fusion actually happened — the benchmark
	// is meaningless hop-by-hop.
	raw := benchPacketRaw(b)
	ttl := raw[8]
	if err := fp.Push(router.NewPacket(raw)); err != nil {
		b.Fatal(err)
	}
	raw[8] = ttl
	if got, want := fp.Fuser().FusedHops(), chainLen+2; got != want {
		b.Fatalf("fused %d hops, want %d", got, want)
	}
	return fp, capsule
}

// BenchmarkE16_FusedChain is the per-packet drive of the fused chain — the
// direct counterpart of BenchmarkE3_NetkitChain.
func BenchmarkE16_FusedChain(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("len-%d", k), func(b *testing.B) {
			fp, _ := e16Chain(b, k)
			raw := benchPacketRaw(b)
			p := router.NewPacket(raw)
			ttl := raw[8]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				raw[8] = ttl // rearm TTL so the packet never expires
				_ = fp.Push(p)
			}
		})
	}
}

// BenchmarkE16_FusedChainBatched is the batched drive — the deployment
// configuration (shard lanes run ring batches through the fused plan), and
// the figure the §8 acceptance ratios are read from.
func BenchmarkE16_FusedChainBatched(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("len-%d", k), func(b *testing.B) {
			fp, _ := e16Chain(b, k)
			const batch = 128
			pkts, raws, ttls := e11Packets(b, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch // one packet per op: ns/op comparable to E3/E16 per-packet
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					raws[j][8] = ttls[j]
				}
				_ = fp.PushBatch(pkts[:n])
			}
		})
	}
}

// BenchmarkE16_UnfusedChainBatched is the batched hop-by-hop control: the
// same chain shape driven through ForwardBatch without a FastPath, so the
// fusion dividend can be separated from the batching dividend.
func BenchmarkE16_UnfusedChainBatched(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("len-%d", k), func(b *testing.B) {
			first, _ := e3Chain(b, k)
			const batch = 128
			pkts, raws, ttls := e11Packets(b, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					raws[j][8] = ttls[j]
				}
				_ = router.ForwardBatch(first, pkts[:n])
			}
		})
	}
}

// BenchmarkE16_DespecializeRefuse prices one full meta-level round trip on
// the fused path: install an interceptor (synchronous invalidation + idle
// fence), remove it, and re-fuse on the next crossing. This is the cost
// the adaptation engine pays to look inside a fused chain.
func BenchmarkE16_DespecializeRefuse(b *testing.B) {
	fp, capsule := e16Chain(b, 8)
	var mid *core.Binding
	for _, bd := range capsule.BindingsOf("c0") {
		mid = bd
	}
	if mid == nil {
		b.Fatal("mid-chain binding not found")
	}
	raw := benchPacketRaw(b)
	p := router.NewPacket(raw)
	ttl := raw[8]
	noop := core.PrePost(nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mid.AddInterceptor(core.Interceptor{Name: "probe", Wrap: noop}); err != nil {
			b.Fatal(err)
		}
		fp.Fuser().WaitIdle(time.Second)
		raw[8] = ttl
		_ = fp.Push(p) // hop-by-hop while intercepted
		if err := mid.RemoveInterceptor("probe"); err != nil {
			b.Fatal(err)
		}
		raw[8] = ttl
		_ = fp.Push(p) // re-fuses on this crossing
	}
	if got := fp.Fuser().FusedHops(); got != 10 {
		b.Fatalf("chain did not re-fuse: %d hops", got)
	}
}

// ---------------------------------------------------------------------------
// E17 — real-socket syscall amortisation (DESIGN.md §9). The measurement
// mirrors cmd/nkbench exp_udp.go: windowed send-then-drain rounds over
// loopback, the drain clock starting at the first productive poll, so the
// rx number is the per-frame cost of moving queued datagrams across the
// syscall boundary.

// e17DrainNs drives rounds x window frames through a fresh loopback
// device pair and returns the per-frame receive-drain cost in
// nanoseconds. portable selects the per-datagram fallback strategy.
func e17DrainNs(tb testing.TB, batch, window, rounds int, portable bool) float64 {
	tb.Helper()
	arena, err := osabs.NewFrameArena(osabs.DefaultUDPFrameSize, batch, 8)
	if err != nil {
		tb.Fatal(err)
	}
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Listen: "127.0.0.1:0", Batch: batch, Arena: arena, ForcePortable: portable,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer rx.Close()
	tx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: batch, ForcePortable: portable,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer tx.Close()
	payload := make([]byte, 64)
	out := make([][]byte, batch)
	for i := range out {
		out[i] = payload
	}
	scratch := make([][]byte, 0, batch)
	var rxTotal int64
	for r := 0; r < rounds; r++ {
		for sent := 0; sent < window; sent += batch {
			n, err := tx.SendBatch(out)
			if err != nil || n != batch {
				tb.Fatalf("tx %d/%d: %v", n, batch, err)
			}
		}
		time.Sleep(200 * time.Microsecond)
		got := 0
		var start time.Time
		for got < window {
			var slab *buffers.Buffer
			var err error
			tCall := time.Now()
			scratch, slab, err = rx.RecvBatchInto(scratch[:0], batch)
			if err != nil {
				tb.Fatal(err)
			}
			if len(scratch) == 0 {
				runtime.Gosched()
				continue
			}
			if start.IsZero() {
				start = tCall
			}
			if slab != nil {
				for range scratch {
					_ = slab.Release()
				}
			}
			got += len(scratch)
		}
		rxTotal += time.Since(start).Nanoseconds()
	}
	if st := rx.Stats(); st.SockDrops > 0 {
		tb.Fatalf("lossy round: %d socket drops", st.SockDrops)
	}
	return float64(rxTotal) / float64(window*rounds)
}

// TestE17SyscallAmortization is the acceptance gate for the batched UDP
// backend: draining queued datagrams 32 per recvmmsg must beat the
// per-datagram read path (the portable strategy, one syscall per frame —
// what batch-1 means everywhere the mmsg tables are absent) by >= 3x
// per frame. The comparison is repeated and the best attempt gated: the
// capability is what is asserted, and shared-runner noise only ever
// degrades a measurement, never flatters it.
func TestE17SyscallAmortization(t *testing.T) {
	if !osabs.MmsgSupported() {
		t.Skip("mmsg backend not compiled in; covered by backend-equivalence tests")
	}
	if testing.Short() {
		t.Skip("real-socket measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate meaningless under the race detector")
	}
	const want = 3.0
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		perDatagram := e17DrainNs(t, 1, 1024, 16, true)
		batched := e17DrainNs(t, 32, 1024, 16, false)
		if ratio := perDatagram / batched; ratio > best {
			best = ratio
		}
		if best >= want {
			break
		}
	}
	if best < want {
		t.Fatalf("batch-32 recvmmsg amortisation x%.2f, want >= x%.1f", best, want)
	}
}

// BenchmarkE17_RxDrain reports the per-frame receive-drain cost per
// batch size; one iteration is one 1024-frame send-then-drain round.
func BenchmarkE17_RxDrain(b *testing.B) {
	for _, k := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			ns := e17DrainNs(b, k, 1024, b.N, !osabs.MmsgSupported())
			b.ReportMetric(ns, "rx-ns/frame")
		})
	}
}
