package netkit_test

// Round-trip tests for the unified meta-space: each meta-model reached
// through the netkit.Meta facade must observe and mutate the very same
// state as the underlying capsule — the causal connection the paper
// requires of a reflective runtime.

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netkit"
	"netkit/cf"
	"netkit/core"
	"netkit/packet"
	"netkit/resources"
	"netkit/router"
)

// testPacket builds one minimal UDP/IPv4 packet.
func testPacket() *router.Packet {
	raw, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"), 4000, 53, 64, []byte("x"))
	if err != nil {
		panic(err)
	}
	return router.NewPacket(raw)
}

// buildPipeline returns a started a->b->sink system.
func buildPipeline(t *testing.T) *netkit.System {
	t.Helper()
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("rt").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeCounter, nil).
		Add("sink", router.TypeDropper, nil).
		Pipe("a", "b", "sink").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close(ctx) })
	return sys
}

// TestMetaArchitectureRoundTrip: a snapshot taken through the facade
// after Blueprint.Pipe reflects exactly the bindings the capsule holds,
// and a constraint installed through the facade vetoes a direct capsule
// bind (mutation flows facade -> capsule).
func TestMetaArchitectureRoundTrip(t *testing.T) {
	sys := buildPipeline(t)
	capsule := sys.Capsule()
	arch := netkit.Meta(capsule).Architecture()

	g := arch.Snapshot()
	if len(g.Nodes) != 3 || len(g.Edges) != 2 {
		t.Fatalf("facade snapshot: %d nodes %d edges, want 3/2", len(g.Nodes), len(g.Edges))
	}
	direct := capsule.Snapshot()
	if len(direct.Edges) != len(g.Edges) {
		t.Fatalf("facade sees %d edges, capsule %d", len(g.Edges), len(direct.Edges))
	}
	for i, e := range g.Edges {
		d := direct.Edges[i]
		if e.ID != d.ID || e.From != d.From || e.To != d.To || e.Iface != d.Iface {
			t.Fatalf("edge %d: facade %+v != capsule %+v", i, e, d)
		}
	}
	if err := arch.Validate(); err != nil {
		t.Fatalf("facade validate: %v", err)
	}

	// Facade-installed constraint must police capsule-level binds.
	veto := func(*core.Capsule, core.BindRequest) error { return core.ErrVetoed }
	if err := arch.Constrain("no-more", veto); err != nil {
		t.Fatal(err)
	}
	if got := capsule.Constraints(); len(got) != 1 || got[0] != "no-more" {
		t.Fatalf("capsule constraints = %v, want [no-more]", got)
	}
	if _, err := capsule.Instantiate("c", router.TypeDropper, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("b", "out", "c", router.IPacketPushID); err == nil {
		t.Fatal("bind succeeded despite facade-installed constraint")
	}
	if err := arch.Unconstrain("no-more"); err != nil {
		t.Fatal(err)
	}
	if got := capsule.Constraints(); len(got) != 0 {
		t.Fatalf("capsule constraints after Unconstrain = %v", got)
	}
}

// TestMetaArchitectureEvents: mutations performed on the capsule surface
// as events on a facade subscription, and event loss is visible through
// both the Subscription and Capsule.DroppedEvents.
func TestMetaArchitectureEvents(t *testing.T) {
	sys := buildPipeline(t)
	capsule := sys.Capsule()
	arch := netkit.Meta(capsule).Architecture()

	sub := arch.Subscribe(4)
	defer sub.Cancel()
	if _, err := capsule.Instantiate("x", router.TypeDropper, nil); err != nil {
		t.Fatal(err)
	}
	ev := <-sub.Events()
	if ev.Kind != core.EventInsert || ev.Component != "x" {
		t.Fatalf("facade subscription got %+v, want insert of x", ev)
	}

	// Overflow the buffer without draining: loss must be counted.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("p%d", i)
		if _, err := capsule.Instantiate(name, router.TypeDropper, nil); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Dropped() == 0 {
		t.Fatal("subscription overflowed but Dropped() == 0")
	}
	if capsule.DroppedEvents() == 0 {
		t.Fatal("capsule overflowed but DroppedEvents() == 0")
	}
	if arch.DroppedEvents() != capsule.DroppedEvents() {
		t.Fatalf("facade dropped %d != capsule dropped %d",
			arch.DroppedEvents(), capsule.DroppedEvents())
	}
}

// TestMetaInterfaceRoundTrip: the facade's interface meta-model is the
// registry in force for the capsule, not a copy.
func TestMetaInterfaceRoundTrip(t *testing.T) {
	sys := buildPipeline(t)
	capsule := sys.Capsule()
	im := netkit.Meta(capsule).Interface()

	if im.Registry() != capsule.InterfaceRegistry() {
		t.Fatal("facade registry is not the capsule's registry")
	}
	d, ok := im.Lookup(router.IPacketPushID)
	if !ok {
		t.Fatalf("facade cannot find %q", router.IPacketPushID)
	}
	if !im.Conforms(router.IPacketPushID, router.NewCounter()) {
		t.Fatal("facade conformance check rejects a Counter")
	}
	if _, ok := d.Op("Push"); !ok {
		t.Fatal("descriptor lost its Push op through the facade")
	}
	ids, err := im.ProvidedBy("a")
	if err != nil || len(ids) == 0 {
		t.Fatalf("ProvidedBy(a) = %v, %v", ids, err)
	}
}

// TestMetaInterceptionUnderTraffic: an interceptor installed through the
// facade observes live traffic, shows up on the underlying binding's
// chain, and removal re-fuses the path — all while packets keep flowing
// from a concurrent pusher and none are lost.
func TestMetaInterceptionUnderTraffic(t *testing.T) {
	sys := buildPipeline(t)
	capsule := sys.Capsule()
	ic := netkit.Meta(capsule).Interception()

	push, err := netkit.Service[router.IPacketPush](capsule, "a", router.IPacketPushID)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := push.Push(testPacket()); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
	}()

	// Repeatedly install/remove a counting interceptor mid-traffic. The
	// main goroutine pushes one packet of its own per cycle while the
	// interceptor is installed, so observation is guaranteed even when
	// the concurrent pusher is starved.
	const cycles = 50
	var seen int
	var mu sync.Mutex
	wrap := netkit.PrePost(func(string, []any) { mu.Lock(); seen++; mu.Unlock() }, nil)
	for i := 0; i < cycles; i++ {
		if err := ic.Install("a", "out", "audit", wrap); err != nil {
			t.Fatal(err)
		}
		// The capsule's own binding must show the facade-installed chain.
		b, err := ic.Binding("a", "out")
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Interceptors(); len(got) != 1 || got[0] != "audit" {
			t.Fatalf("binding chain = %v, want [audit]", got)
		}
		if err := push.Push(testPacket()); err != nil {
			t.Fatal(err)
		}
		if err := ic.Remove("a", "out", "audit"); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	chain, err := ic.Chain("a", "out")
	if err != nil || len(chain) != 0 {
		t.Fatalf("chain after removal = %v, %v", chain, err)
	}
	mu.Lock()
	observed := seen
	mu.Unlock()
	if observed < cycles {
		t.Fatalf("interceptor observed %d calls, want at least %d", observed, cycles)
	}
	// Atomic reroute: every packet pushed was delivered downstream.
	bStats, _ := netkit.Service[*router.Counter](capsule, "b", router.IPacketPushID)
	if got := bStats.ElemStats().In; got != total+cycles {
		t.Fatalf("downstream saw %d packets, want %d (lost during reroute)", got, total+cycles)
	}
}

// TestMetaResourcesRoundTrip: every Meta handle onto the same capsule
// shares one resources meta-model; distinct capsules get distinct ones.
func TestMetaResourcesRoundTrip(t *testing.T) {
	sys := buildPipeline(t)
	capsule := sys.Capsule()

	m1 := netkit.Meta(capsule).Resources()
	if _, err := m1.CreateTask(resources.TaskSpec{Name: "t1"}); err != nil {
		t.Fatal(err)
	}
	m2 := netkit.Meta(capsule).Resources()
	if m1 != m2 {
		t.Fatal("two Meta handles returned distinct resource managers")
	}
	if tasks := m2.Tasks(); len(tasks) != 1 || tasks[0] != "t1" {
		t.Fatalf("second handle sees tasks %v, want [t1]", tasks)
	}

	other := core.NewCapsule("other")
	if got := netkit.Meta(other).Resources().Tasks(); len(got) != 0 {
		t.Fatalf("fresh capsule's resource manager already has tasks %v", got)
	}

	// Closing a capsule drops the facade's association (no leak): a
	// later Meta call yields a fresh manager without the old tasks.
	tmp := core.NewCapsule("tmp")
	mgrA := netkit.Meta(tmp).Resources()
	if _, err := mgrA.CreateTask(resources.TaskSpec{Name: "gone"}); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mgrB := netkit.Meta(tmp).Resources()
	if mgrA == mgrB {
		t.Fatal("closed capsule still pinned its resource manager")
	}
	if got := mgrB.Tasks(); len(got) != 0 {
		t.Fatalf("manager for closed capsule carries tasks %v", got)
	}
}

// shardedPipeline builds a started 3-shard system "fwd" -> "sink" via
// Blueprint.Shards and returns the system plus the ShardedCF.
func shardedPipeline(t *testing.T) (*netkit.System, *router.ShardedCF) {
	t.Helper()
	ctx := context.Background()
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := fw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sys, err := netkit.NewBlueprint("sharded").
		Shards("fwd", 3, replica).
		Add("sink", router.TypeDropper, nil).
		Pipe("fwd", "sink").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close(ctx) })
	comp, ok := sys.Capsule().Component("fwd")
	if !ok {
		t.Fatal("fwd missing")
	}
	sharded, ok := comp.(*router.ShardedCF)
	if !ok {
		t.Fatalf("fwd has type %T", comp)
	}
	return sys, sharded
}

// shardedFlowPacket builds a packet in one of several distinct flows so
// the dispatcher exercises every shard.
func shardedFlowPacket(flow uint32) *router.Packet {
	raw, err := packet.BuildUDP4(
		netip.AddrFrom4([4]byte{10, 0, byte(flow >> 8), byte(flow)}),
		netip.MustParseAddr("10.9.9.9"), 4000, 53, 64, []byte("x"))
	if err != nil {
		panic(err)
	}
	return router.NewPacket(raw)
}

// TestMetaShardedInterceptionAggregates is the meta-space consistency
// check for the sharded data plane: per-shard audits installed through
// netkit.Meta on each replica's ingress binding, plus ONE aggregate audit
// installed on all replicas with InstallAll, must satisfy
// aggregate == sum(per-shard) == packets pushed — the round-trip proof
// that the meta-space observes a sharded CF as one causally connected
// component.
func TestMetaShardedInterceptionAggregates(t *testing.T) {
	sys, sharded := shardedPipeline(t)
	inner := sharded.Inner()
	im := netkit.Meta(inner).Interception()

	const shards = 3
	endpoints := make([]netkit.Endpoint, shards)
	perShard := make([]uint64, shards)
	var perMu sync.Mutex
	for i := 0; i < shards; i++ {
		endpoints[i] = netkit.Endpoint{
			Component: router.ShardName(i, "ingress"), Receptacle: "out",
		}
		i := i
		wrap := netkit.PrePost(func(op string, args []any) {
			perMu.Lock()
			perShard[i] += uint64(router.PacketCount(op, args))
			perMu.Unlock()
		}, nil)
		if err := im.Install(endpoints[i].Component, "out", "per-shard", wrap); err != nil {
			t.Fatal(err)
		}
	}
	var agg uint64
	var aggMu sync.Mutex
	if err := im.InstallAll(endpoints, "aggregate", netkit.PrePost(func(op string, args []any) {
		aggMu.Lock()
		agg += uint64(router.PacketCount(op, args))
		aggMu.Unlock()
	}, nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		chain, err := im.Chain(endpoints[i].Component, "out")
		if err != nil || len(chain) != 2 || chain[0] != "per-shard" || chain[1] != "aggregate" {
			t.Fatalf("shard %d chain %v, %v", i, chain, err)
		}
	}

	push, err := netkit.Service[router.IPacketPush](sys.Capsule(), "fwd", router.IPacketPushID)
	if err != nil {
		t.Fatal(err)
	}
	const total = 900
	for i := 0; i < total; i++ {
		if err := push.Push(shardedFlowPacket(uint32(i % 64))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	perMu.Lock()
	var sum uint64
	busy := 0
	for _, c := range perShard {
		sum += c
		if c > 0 {
			busy++
		}
	}
	perMu.Unlock()
	aggMu.Lock()
	aggTotal := agg
	aggMu.Unlock()
	if aggTotal != total || sum != total {
		t.Fatalf("aggregate %d, per-shard sum %d, want both %d", aggTotal, sum, total)
	}
	if busy < 2 {
		t.Fatalf("only %d shards saw traffic across 64 flows", busy)
	}
	// The CF's own shard stats agree with the meta-level audits.
	var statSum uint64
	for i := 0; i < shards; i++ {
		statSum += sharded.ShardStats(i).In
	}
	if statSum != total {
		t.Fatalf("ShardStats sum %d != %d", statSum, total)
	}

	// Round-trip removal: RemoveAll + per-shard Remove empty every chain.
	if err := im.RemoveAll(endpoints, "aggregate"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		if err := im.Remove(endpoints[i].Component, "out", "per-shard"); err != nil {
			t.Fatal(err)
		}
		chain, err := im.Chain(endpoints[i].Component, "out")
		if err != nil || len(chain) != 0 {
			t.Fatalf("shard %d chain %v after removal, %v", i, chain, err)
		}
	}
}

// TestMetaShardedInstallAllAtomic: InstallAll against endpoints where one
// chain already holds the name must fail and leave every chain unchanged
// (the all-or-nothing contract, observed through the facade).
func TestMetaShardedInstallAllAtomic(t *testing.T) {
	_, sharded := shardedPipeline(t)
	im := netkit.Meta(sharded.Inner()).Interception()
	endpoints := []netkit.Endpoint{
		{Component: router.ShardName(0, "ingress"), Receptacle: "out"},
		{Component: router.ShardName(1, "ingress"), Receptacle: "out"},
		{Component: router.ShardName(2, "ingress"), Receptacle: "out"},
	}
	noop := netkit.PrePost(nil, nil)
	if err := im.Install(endpoints[1].Component, "out", "clash", noop); err != nil {
		t.Fatal(err)
	}
	if err := im.InstallAll(endpoints, "clash", noop); !errors.Is(err, core.ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	for i, ep := range endpoints {
		chain, err := im.Chain(ep.Component, "out")
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if i == 1 {
			want = 1
		}
		if len(chain) != want {
			t.Fatalf("endpoint %d chain %v after failed InstallAll", i, chain)
		}
	}
	bad := append(endpoints, netkit.Endpoint{Component: "nosuch", Receptacle: "out"})
	if err := im.InstallAll(bad, "x", noop); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown endpoint: %v", err)
	}
}

// TestStatsMetaTree exercises the stats meta-view over a sharded capsule:
// the full tree resolves per-replica lanes, component addressing works,
// and Watch delivers successive snapshots.
func TestStatsMetaTree(t *testing.T) {
	capsule := core.NewCapsule("statsmeta")
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := fw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sharded, err := router.NewShardedCF(capsule, router.ShardConfig{Shards: 2}, replica)
	if err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("fwd", sharded); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sink", router.NewDropper()); err != nil {
		t.Fatal(err)
	}
	if _, err := capsule.Bind("fwd", "out", "sink", router.IPacketPushID); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = capsule.Close(ctx) }()

	const total = 96
	for i := 0; i < total; i++ {
		b, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.7"),
			netip.MustParseAddr("10.8.0.9"), uint16(1000+i%8), 99, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sharded.Push(router.NewPacket(b)); err != nil {
			t.Fatal(err)
		}
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sharded.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}

	sm := netkit.Meta(capsule).Stats()
	tree := sm.Tree()
	fwd, ok := tree.Find("fwd")
	if !ok {
		t.Fatalf("no fwd in tree: %+v", tree)
	}
	if in, ok := fwd.Stat("packets_in"); !ok || in.Value != total {
		t.Fatalf("fwd packets_in = %+v", fwd.Stats)
	}
	// Per-replica lanes are addressable, and their arrivals sum to the
	// dispatcher's count.
	var laneSum float64
	for i := 0; i < 2; i++ {
		lane, ok := tree.Find(fmt.Sprintf("fwd/shard%d", i))
		if !ok {
			t.Fatalf("lane %d missing", i)
		}
		in, ok := lane.Stat("packets_in")
		if !ok {
			t.Fatalf("lane %d has no packets_in", i)
		}
		laneSum += in.Value
		// The replica's inner constituents hang off the lane.
		if _, ok := tree.Find(fmt.Sprintf("fwd/shard%d/s%d/cnt", i, i)); !ok {
			t.Fatalf("lane %d constituents missing", i)
		}
	}
	if laneSum != total {
		t.Fatalf("lane sum %v != %d", laneSum, total)
	}
	// Component addressing matches the tree's subtree.
	node, err := sm.Component("fwd")
	if err != nil {
		t.Fatal(err)
	}
	if len(node.Children) != 2 {
		t.Fatalf("fwd subtree has %d lanes", len(node.Children))
	}
	if _, err := sm.Component("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("ghost lookup: %v", err)
	}
	// Merged aggregation follows the composite rule.
	merged := sm.Merged()
	found := false
	for _, s := range merged {
		if s.Name == "packets_in" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged stats lack packets_in: %+v", merged)
	}
	// Watch streams snapshots until cancelled.
	wctx, wcancel := context.WithCancel(ctx)
	ch := sm.Watch(wctx, time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, ok := <-ch; !ok {
			t.Fatal("watch closed early")
		}
	}
	wcancel()
	for range ch {
	}
}
