package netkit_test

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"netkit"
	"netkit/adapt"
	"netkit/cf"
	"netkit/core"
	"netkit/internal/ipc"
	"netkit/packet"
	"netkit/router"
)

// TestBlueprintBuildsAndStarts: Build instantiates, wires and starts the
// declared architecture; the result validates.
func TestBlueprintBuildsAndStarts(t *testing.T) {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("ok").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Pipe("a", "b").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	capsule := sys.Capsule()
	for _, name := range []string{"a", "b"} {
		if !capsule.Started(name) {
			t.Fatalf("component %q not started by Build", name)
		}
	}
	if err := sys.Meta().Architecture().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pump(capsule, "a", 3); err != nil {
		t.Fatal(err)
	}
}

// TestBlueprintConnectInfersInterface: Connect binds through the client
// receptacle's declared interface without the caller naming it.
func TestBlueprintConnectInfersInterface(t *testing.T) {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("infer").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Connect("a", "out", "b").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	edges := sys.Capsule().Snapshot().Edges
	if len(edges) != 1 || edges[0].Iface != router.IPacketPushID {
		t.Fatalf("edges = %+v, want one %q binding", edges, router.IPacketPushID)
	}
}

// TestBlueprintIsolate: Isolate hosts a component behind an ipc boundary;
// the stand-in binds and pushes batches like an in-proc component, its
// emissions flow back into the local pipeline, the IPC lane shows its
// transport counters in the stats tree, and closing the system tears the
// transport down with it.
func TestBlueprintIsolate(t *testing.T) {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("iso-bp").
		Isolate("iso", router.TypeCounter, nil).
		Add("sink", router.TypeCounter, nil).
		Connect("iso", "out", "sink").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	capsule := sys.Capsule()
	comp, ok := capsule.Component("iso")
	if !ok {
		t.Fatal("isolated component missing")
	}
	rc, ok := comp.(*ipc.RemoteComponent)
	if !ok {
		t.Fatalf("component is %T, want *ipc.RemoteComponent", comp)
	}
	raw, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("192.168.1.1"), 1000, 53, 64, []byte("isolated"))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*router.Packet, 8)
	for i := range batch {
		batch[i] = router.NewPacket(raw)
	}
	if err := rc.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rc.Emitted(); got != 8 {
		t.Fatalf("emitted = %d, want 8", got)
	}
	tree := core.CapsuleStats(capsule)
	node, ok := tree.Find("iso")
	if !ok {
		t.Fatal("IPC lane missing from stats tree")
	}
	if s, _ := node.Stat("ipc_tx_frames"); s.Value != 8 {
		t.Fatalf("ipc_tx_frames = %v, want 8", s.Value)
	}
	if err := sys.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rc.PushBatch([]*router.Packet{router.NewPacket(raw)}); !errors.Is(err, ipc.ErrClosed) {
		t.Fatalf("transport survived Close: %v", err)
	}
}

// TestBlueprintErrorsNameFailingStep: a failing step aborts Build, names
// the step, and leaves no half-built running system behind.
func TestBlueprintErrorsNameFailingStep(t *testing.T) {
	ctx := context.Background()
	_, err := netkit.NewBlueprint("bad").
		Add("a", router.TypeCounter, nil).
		Pipe("a", "ghost").
		Build(ctx)
	if err == nil {
		t.Fatal("Build succeeded with a dangling pipe")
	}
	if !strings.Contains(err.Error(), "connect a.out -> ghost") {
		t.Fatalf("error does not name the failing step: %v", err)
	}
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("error lost its cause: %v", err)
	}

	if _, err := netkit.NewBlueprint("short").Pipe("only").Build(ctx); err == nil {
		t.Fatal("Pipe with one component must fail Build")
	}
	if _, err := netkit.NewBlueprint("unknown").
		Add("a", "no.such.type", nil).Build(ctx); err == nil {
		t.Fatal("Add of unknown type must fail Build")
	}
}

// TestBlueprintConstraintOrder: a constraint polices only the binds
// declared after it, matching declaration-order replay.
func TestBlueprintConstraintOrder(t *testing.T) {
	ctx := context.Background()
	deny := func(c *core.Capsule, req core.BindRequest) error {
		if req.To == "sink" {
			return fmt.Errorf("sink is off limits")
		}
		return nil
	}
	// Pipe before the constraint: allowed.
	sys, err := netkit.NewBlueprint("order").
		Add("a", router.TypeCounter, nil).
		Add("sink", router.TypeDropper, nil).
		Pipe("a", "sink").
		Constrain("no-sink", deny).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Close(ctx)

	// Pipe after the constraint: vetoed.
	_, err = netkit.NewBlueprint("order2").
		Add("a", router.TypeCounter, nil).
		Add("sink", router.TypeDropper, nil).
		Constrain("no-sink", deny).
		Pipe("a", "sink").
		Build(ctx)
	if !errors.Is(err, core.ErrVetoed) {
		t.Fatalf("bind after constraint: err = %v, want ErrVetoed", err)
	}
}

// TestBlueprintIntercept: an interceptor declared in the blueprint is
// installed on the built system's binding.
func TestBlueprintIntercept(t *testing.T) {
	ctx := context.Background()
	var seen int
	sys, err := netkit.NewBlueprint("icept").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Pipe("a", "b").
		Intercept("a", "out", "tap", netkit.PrePost(func(string, []any) { seen++ }, nil)).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	if err := pump(sys.Capsule(), "a", 4); err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Fatalf("declared interceptor observed %d calls, want 4", seen)
	}
}

// TestBlueprintShards: the Shards verb declares a sharded data plane that
// composes with Pipe like any single-lane component — Build starts its
// workers, traffic flows through the replicas to the downstream sink, and
// the replicas are enumerable through the composite.
func TestBlueprintShards(t *testing.T) {
	ctx := context.Background()
	replica := func(shard int, fw *cf.Framework) (string, error) {
		name := router.ShardName(shard, "cnt")
		if err := fw.Admit(name, router.NewCounter()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(name, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return name, nil
	}
	sys, err := netkit.NewBlueprint("sharded-bp").
		Shards("fwd", 2, replica).
		Add("sink", router.TypeCounter, nil).
		Pipe("fwd", "sink").
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close(ctx) }()

	sharded, ok := sys.Capsule().Component("fwd")
	if !ok {
		t.Fatal("fwd missing")
	}
	sc := sharded.(*router.ShardedCF)
	if sc.Shards() != 2 || len(sc.Replicas()) != 2 {
		t.Fatalf("shards %d, replicas %v", sc.Shards(), sc.Replicas())
	}
	if err := pump(sys.Capsule(), "fwd", 40); err != nil {
		t.Fatal(err)
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sc.Quiesce(qctx); err != nil {
		t.Fatal(err)
	}
	sink, err := netkit.Service[*router.Counter](sys.Capsule(), "sink", router.IPacketPushID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.ElemStats().In; got != 40 {
		t.Fatalf("sink saw %d of 40", got)
	}
}

// TestBlueprintShardsFailureNamesStep: a failing replica factory surfaces
// through Build with the shards step named.
func TestBlueprintShardsFailureNamesStep(t *testing.T) {
	ctx := context.Background()
	bad := func(shard int, fw *cf.Framework) (string, error) {
		return "", errors.New("replica refused")
	}
	_, err := netkit.NewBlueprint("sharded-bad").Shards("fwd", 2, bad).Build(ctx)
	if err == nil {
		t.Fatal("build succeeded with failing replica factory")
	}
	if !strings.Contains(err.Error(), "shards fwd x2") {
		t.Fatalf("error does not name the shards step: %v", err)
	}
}

// TestBlueprintAdapt proves the declarative route into the reflective
// loop: a Blueprint declares a pipeline plus an adaptation rule, Build
// starts the engine with everything else, and the rule reconfigures the
// architecture with no manual meta-space call.
func TestBlueprintAdapt(t *testing.T) {
	fired := make(chan adapt.Firing, 4)
	sys, err := netkit.NewBlueprint("bp-adapt").
		Add("in", router.TypeCounter, nil).
		Add("q", router.TypeFIFOQueue, map[string]string{"capacity": "64"}).
		Pipe("in", "q").
		Adapt(adapt.Options{Interval: time.Millisecond, OnFire: func(f adapt.Firing) { fired <- f }},
			adapt.Rule{
				Name: "swap-on-pressure",
				When: adapt.GaugeAbove("q", "queue_occupancy", 0.5),
				Once: true,
				Then: adapt.Swap("q", "q2", func() (core.Component, error) {
					return router.NewFIFOQueue(256)
				}),
			}).
		Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close(context.Background()) }()

	// The engine is an ordinary, meta-space-visible component.
	if _, ok := sys.Capsule().Component(netkit.AdaptName); !ok {
		t.Fatal("engine not inserted")
	}
	if !sys.Capsule().Started(netkit.AdaptName) {
		t.Fatal("engine not started by Build")
	}

	in, err := netkit.Service[router.IPacketPush](sys.Capsule(), "in", router.IPacketPushID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := packet.BuildUDP4(netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"), 5, 6, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	const sent = 48 // 75% of the small queue
	for i := 0; i < sent; i++ {
		if err := in.Push(router.NewPacket(raw)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case f := <-fired:
		if f.Err != "" {
			t.Fatalf("rule failed: %s", f.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blueprint-declared rule never fired")
	}
	comp, ok := sys.Capsule().Component("q2")
	if !ok {
		t.Fatal("swap did not run")
	}
	q2 := comp.(*router.FIFOQueue)
	if got := q2.Len(); got != sent {
		t.Fatalf("replacement holds %d packets, want %d", got, sent)
	}
}
