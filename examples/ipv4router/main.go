// ipv4router: the paper's Figure 3 end to end — a composite gateway
// component (protocol recogniser, IPv4/IPv6 header processors, per-version
// queues, DRR link scheduler, internal controller) admitted into a Router
// CF, fed by a simulated NIC and drained to another, under live IMIX
// traffic, then reconfigured while forwarding.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"netkit"
	"netkit/core"
	"netkit/internal/osabs"
	"netkit/internal/trace"
	"netkit/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ipv4router:", err)
		os.Exit(1)
	}
}

func run() error {
	capsule := core.NewCapsule("ipv4router")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		return err
	}

	// Devices (stratum 1).
	inNIC, err := osabs.NewNIC("eth0", 1024, 1024)
	if err != nil {
		return err
	}
	outNIC, err := osabs.NewNIC("eth1", 1024, 4096)
	if err != nil {
		return err
	}

	// Components: NIC source -> Figure-3 composite -> NIC sink. Everything
	// is admitted through the CF so the §5 rules are enforced.
	src, err := router.NewNICSource(inNIC, nil)
	if err != nil {
		return err
	}
	gw, err := router.NewFigure3Composite(capsule, router.Figure3Config{
		QueueCapacity:   512,
		SchedulerPolicy: router.PolicyDRR,
		QuantumV4:       3000, // IPv4 gets 2x the IPv6 service
		QuantumV6:       1500,
	})
	if err != nil {
		return err
	}
	snk, err := router.NewNICSink(outNIC)
	if err != nil {
		return err
	}
	for name, comp := range map[string]core.Component{"src": src, "gw": gw, "snk": snk} {
		if err := fw.Admit(name, comp); err != nil {
			return err
		}
	}
	if _, err := router.ConnectPush(capsule, "src", "out", "gw"); err != nil {
		return err
	}
	if _, err := router.ConnectPush(capsule, "gw", "out", "snk"); err != nil {
		return err
	}

	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		return err
	}
	defer func() { _ = capsule.StopAll(ctx) }()

	// Drive mixed v4/v6 IMIX traffic through the wire side.
	gen, err := trace.NewGenerator(trace.Config{Seed: 42, Flows: 128, V6Share: 25})
	if err != nil {
		return err
	}
	const nPkts = 20000
	injected := 0
	for i := 0; i < nPkts; i++ {
		raw, err := gen.Next()
		if err != nil {
			return err
		}
		if inNIC.Inject(raw) == nil {
			injected++
		}
		if i%512 == 511 {
			time.Sleep(time.Millisecond) // let the pumps drain the rings
		}
		// Drain the output wire continuously.
		for {
			if _, err := outNIC.DrainTx(); err != nil {
				break
			}
		}
	}
	// Let the pipeline drain, then collect what is left on the wire.
	deadline := time.After(2 * time.Second)
	forwarded := outNIC.Stats().TxFrames
	for {
		if _, err := outNIC.DrainTx(); err != nil {
			select {
			case <-deadline:
			case <-time.After(5 * time.Millisecond):
				continue
			}
		}
		break
	}
	forwarded = outNIC.Stats().TxFrames

	fmt.Printf("injected %d packets, forwarded %d (nic drops in=%d out=%d)\n",
		injected, forwarded, inNIC.Stats().RxDrops, outNIC.Stats().TxDrops)

	// Reconfigure the composite live: swap the IPv4 queue for a bigger one
	// with state migration.
	inner := gw.Inner()
	bigger, err := router.NewFIFOQueue(2048)
	if err != nil {
		return err
	}
	if err := router.HotSwap(inner, "queue-v4", "queue-v4-big", bigger); err != nil {
		return err
	}
	fmt.Println("live-reconfigured: queue-v4 -> queue-v4-big (2048 slots, state migrated)")
	if err := netkit.Meta(inner).Architecture().Validate(); err != nil {
		return fmt.Errorf("architecture invalid after reconfig: %w", err)
	}
	fmt.Println("inner architecture still validates")
	return nil
}
