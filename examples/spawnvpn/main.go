// spawnvpn: stratum 4 — spawn a Genesis-like private virtual network over
// a subset of a 7-node substrate, give it its own addressing and routing,
// reserve bandwidth for it along the substrate with the RSVP-like
// signalling protocol, exchange traffic inside it, and tear it down.
package main

import (
	"fmt"
	"os"
	"time"

	"netkit/internal/coord"
	"netkit/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spawnvpn:", err)
		os.Exit(1)
	}
}

func run() error {
	// Substrate: a 7-node line p0..p6.
	w := netsim.NewNetwork()
	defer w.Stop()
	names, err := netsim.Line(w, "p", 7, netsim.LinkConfig{})
	if err != nil {
		return err
	}
	spawners := make([]*coord.Spawner, len(names))
	agents := make([]*coord.Agent, len(names))
	for i, name := range names {
		node, err := w.Node(name)
		if err != nil {
			return err
		}
		spawners[i] = coord.NewSpawner(node)
		caps := map[string]int64{}
		for _, nb := range node.Neighbors() {
			caps[nb] = 10_000_000 // 10 MB/s reservable per link
		}
		agents[i] = coord.NewAgent(node, coord.AgentConfig{Capacity: caps})
	}

	// Reserve 2 MB/s along the substrate path the VPN will ride.
	path, err := w.ShortestPath(names[0], names[6])
	if err != nil {
		return err
	}
	if err := agents[0].Reserve("vpn-blue", path, 2_000_000, 2*time.Second); err != nil {
		return err
	}
	fmt.Printf("reserved 2 MB/s along %v\n", path)

	// Spawn the VPN on p0, p3, p6 with a line topology p0-p3-p6: virtual
	// links tunnel over the substrate paths p0..p3 and p3..p6.
	members := []string{names[0], names[3], names[6]}
	spec := coord.SpawnSpec{
		Name:    "blue",
		Members: members,
		Adj: map[string][]string{
			names[0]: {names[3]},
			names[3]: {names[0], names[6]},
			names[6]: {names[3]},
		},
		RatePps: 10_000,
	}
	start := time.Now()
	if err := spawners[0].Spawn(w, spec); err != nil {
		return err
	}
	fmt.Printf("spawned vnet %q on %v in %v\n", spec.Name, members, time.Since(start))

	// The child network has its own address space.
	inst0, _ := spawners[0].VNet("blue")
	for _, m := range members {
		addr, _ := inst0.AddrOf(m)
		fmt.Printf("  member %s has child address %d\n", m, addr)
	}

	// Exchange traffic end to end inside the VPN.
	farAddr, _ := inst0.AddrOf(names[6])
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := spawners[0].SendTo("blue", farAddr,
			[]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			return err
		}
	}
	inst6, _ := spawners[6].VNet("blue")
	deadline := time.After(2 * time.Second)
	for len(inst6.Delivered()) < msgs {
		select {
		case <-deadline:
			return fmt.Errorf("only %d of %d messages arrived", len(inst6.Delivered()), msgs)
		case <-time.After(time.Millisecond):
		}
	}
	fmt.Printf("delivered %d messages across the spawned network\n", len(inst6.Delivered()))

	// Substrate nodes outside the VPN carried the tunnels but hold no
	// child state.
	if _, ok := spawners[1].VNet("blue"); ok {
		return fmt.Errorf("transit node holds child state")
	}
	fmt.Println("transit nodes hold no child state (isolation)")

	// Tear everything down.
	if err := spawners[0].Teardown(w, "blue", members, 2*time.Second); err != nil {
		return err
	}
	if err := agents[0].Teardown("vpn-blue"); err != nil {
		return err
	}
	fmt.Println("vnet torn down and reservation released")
	return nil
}
