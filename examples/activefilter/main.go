// activefilter: stratum 3 in action — an execution environment attached to
// a router pipeline runs (a) a native per-flow media filter that thins a
// video flow to a third of its rate and (b) an injected capsule-VM program
// (mobile code) that DSCP-marks DNS traffic, under gas and rate sandboxes.
package main

import (
	"context"
	"fmt"
	"net/netip"
	"os"

	"netkit"
	"netkit/internal/appsvc"
	"netkit/packet"
	"netkit/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "activefilter:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	ee := appsvc.NewExecEnv()
	egress := router.NewCounter()
	sys, err := netkit.NewBlueprint("activefilter").
		Insert("ee", ee).
		Insert("egress", egress).
		Insert("sink", router.NewDropper()).
		Pipe("ee", "egress", "sink").
		Build(ctx)
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close(ctx) }()

	// (a) Native program: thin the media flow (UDP 5004) to 1-in-3.
	if err := ee.Attach("udp and dst port 5004",
		&appsvc.MediaFilter{KeepOneIn: 3}, appsvc.Sandbox{}); err != nil {
		return err
	}

	// (b) Mobile code: an injected VM program that sets the DSCP/EF code
	// point on DNS packets. It runs gas-metered; a runaway version of this
	// program would fault and only cost its own packets.
	dscpMark := appsvc.MustAssemble(`
		loadf dstport
		push 53
		eq
		jz pass      ; not DNS: leave untouched
		push 46      ; EF
		storef tos
		pass: forward
	`)
	if err := ee.AttachVM("dscp-dns", "udp", dscpMark, appsvc.Sandbox{Gas: 64}); err != nil {
		return err
	}

	// Traffic: 30 media packets, 10 DNS packets.
	src := netip.MustParseAddr("10.0.0.7")
	dst := netip.MustParseAddr("192.168.0.42")
	for i := 0; i < 30; i++ {
		raw, err := packet.BuildUDP4(src, dst, 30000, 5004, 64, make([]byte, 400))
		if err != nil {
			return err
		}
		if err := ee.Push(router.NewPacket(raw)); err != nil {
			return err
		}
	}
	marked := 0
	for i := 0; i < 10; i++ {
		raw, err := packet.BuildUDP4(src, dst, 30001, 53, 64, []byte("query"))
		if err != nil {
			return err
		}
		p := router.NewPacket(raw)
		if err := ee.Push(p); err != nil {
			return err
		}
		if h, err := packet.ParseIPv4(raw); err == nil && h.TOS == 46 {
			marked++
		}
	}

	mediaStats, err := ee.StatsOf("media-filter")
	if err != nil {
		return err
	}
	dnsStats, err := ee.StatsOf("dscp-dns")
	if err != nil {
		return err
	}
	fmt.Printf("media filter: %d hits, %d dropped (thinned to 1-in-3)\n",
		mediaStats.Hits, mediaStats.Drops)
	fmt.Printf("dscp-dns VM:  %d hits, %d packets EF-marked, %d faults\n",
		dnsStats.Hits, marked, dnsStats.Faults)
	fmt.Printf("egress total: %d packets\n", egress.ElemStats().In)
	return nil
}
