// ixpplacement: the placement meta-model (§5's IXP1200 future work) —
// evaluate the Figure-3 pipeline on the IXP1200 cycle model under
// different placements, let the manager rebalance automatically, then
// override it with a manual pin.
package main

import (
	"fmt"
	"os"

	"netkit/internal/ixp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ixpplacement:", err)
		os.Exit(1)
	}
}

func run() error {
	chip := ixp.DefaultIXP1200()
	pipe := ixp.StandardPipeline()

	show := func(label string, asg ixp.Assignment) error {
		rep, err := ixp.Evaluate(chip, pipe, asg)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %9.0f kpps  bottleneck=%s\n",
			label, rep.ThroughputPPS/1e3, rep.Bottleneck)
		return nil
	}

	if err := show("all-on-strongarm", ixp.PlaceAllControl(pipe)); err != nil {
		return err
	}
	if err := show("round-robin", ixp.PlaceRoundRobin(chip, pipe)); err != nil {
		return err
	}
	if err := show("greedy", ixp.PlaceGreedy(chip, pipe)); err != nil {
		return err
	}

	// The manager starts from a naive placement and migrates its way out.
	naive := make(ixp.Assignment)
	for _, s := range pipe {
		naive[s.Name] = ixp.Target{Engine: 0}
	}
	mgr, err := ixp.NewManager(chip, pipe, naive)
	if err != nil {
		return err
	}
	before, err := mgr.Evaluate()
	if err != nil {
		return err
	}
	moves, err := mgr.Rebalance(16)
	if err != nil {
		return err
	}
	after, err := mgr.Evaluate()
	if err != nil {
		return err
	}
	fmt.Printf("manager: %0.f -> %.0f kpps in %d migrations\n",
		before.ThroughputPPS/1e3, after.ThroughputPPS/1e3, moves)
	fmt.Println("final assignment:")
	asg := mgr.Assignment()
	for _, s := range pipe {
		fmt.Printf("  %-10s -> %s\n", s.Name, asg[s.Name])
	}

	// Manual override: pin the classifier to the StrongARM is disallowed
	// by this manager (engines only), so pin it to engine 5 instead and
	// show the meta-model honours it across rebalances.
	if err := mgr.Pin("classify", ixp.Target{Engine: 5}); err != nil {
		return err
	}
	if _, err := mgr.Rebalance(16); err != nil {
		return err
	}
	if got := mgr.Assignment()["classify"]; got != (ixp.Target{Engine: 5}) {
		return fmt.Errorf("pin not honoured: classify on %s", got)
	}
	fmt.Println("manual pin honoured: classify stays on ue5 across rebalances")
	return nil
}
