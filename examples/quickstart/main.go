// Quickstart: declare a packet pipeline with netkit.Blueprint, push
// traffic through it, then exercise the meta-space through the unified
// netkit.Meta entry point — introspection, interception and a lossless
// hot-swap — against only public netkit packages.
package main

import (
	"context"
	"fmt"
	"net/netip"

	"netkit"
	"netkit/packet"
	"netkit/router"
)

func main() {
	ctx := context.Background()

	// 1. Declare the architecture: counter -> ttl processor -> counter -> sink.
	sys, err := netkit.NewBlueprint("quickstart").
		Add("ingress", router.TypeCounter, nil).
		Add("ttl", router.TypeIPv4Proc, nil).
		Add("egress", router.TypeCounter, nil).
		Add("sink", router.TypeDropper, nil).
		Pipe("ingress", "ttl", "egress", "sink").
		Build(ctx)
	must(err)
	defer func() { _ = sys.Close(ctx) }()
	meta := sys.Meta()

	// 2. Push some traffic.
	ingress, err := netkit.Service[router.IPacketPush](sys.Capsule(), "ingress", router.IPacketPushID)
	must(err)
	push := func(n int, src string, sport, dport uint16) {
		for i := 0; i < n; i++ {
			raw, err := packet.BuildUDP4(netip.MustParseAddr(src),
				netip.MustParseAddr("192.168.0.1"), sport, dport, 64, []byte("hello"))
			must(err)
			must(ingress.Push(router.NewPacket(raw)))
		}
	}
	push(1000, "10.0.0.1", 5000, 53)

	// 3. Introspect: the architecture meta-model always reflects reality.
	g := meta.Architecture().Snapshot()
	fmt.Printf("architecture: %d components, %d bindings (valid: %v)\n",
		len(g.Nodes), len(g.Edges), meta.Architecture().Validate() == nil)

	// 4. Intercept: attach an auditing Around to the live ttl->egress binding.
	var audited int
	audit := netkit.PrePost(func(op string, args []any) { audited++ }, nil)
	must(meta.Interception().Install("ttl", "out", "audit", audit))
	push(10, "10.0.0.2", 5001, 80)
	fmt.Printf("interceptor observed %d calls\n", audited)
	must(meta.Interception().Remove("ttl", "out", "audit"))

	// 5. Reconfigure: hot-swap the TTL processor for a validating one;
	//    traffic is never dropped by the swap itself.
	must(router.HotSwap(sys.Capsule(), "ttl", "ttl2", router.NewIPv4Proc(true)))
	fmt.Println("hot-swapped ttl -> ttl2 (checksum-validating)")

	egress, err := netkit.Service[*router.Counter](sys.Capsule(), "egress", router.IPacketPushID)
	must(err)
	fmt.Printf("egress saw %d packets\n", egress.ElemStats().In)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
