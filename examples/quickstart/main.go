// Quickstart: build a two-component pipeline inside a capsule, push
// packets through it, introspect the architecture meta-model, intercept a
// binding at run time, and hot-swap a component without losing traffic —
// the reflective-middleware essentials of the paper in ~100 lines.
package main

import (
	"fmt"
	"net/netip"
	"os"

	"netkit/internal/core"
	"netkit/internal/packet"
	"netkit/internal/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A capsule is the per-address-space component runtime.
	capsule := core.NewCapsule("quickstart")

	// 2. Instantiate components through the loader registry and wire them:
	//    counter -> ttl processor -> counter(sink-side).
	if _, err := capsule.Instantiate("ingress", router.TypeCounter, nil); err != nil {
		return err
	}
	if _, err := capsule.Instantiate("ttl", router.TypeIPv4Proc, nil); err != nil {
		return err
	}
	if _, err := capsule.Instantiate("egress", router.TypeCounter, nil); err != nil {
		return err
	}
	if _, err := capsule.Instantiate("sink", router.TypeDropper, nil); err != nil {
		return err
	}
	for _, b := range [][3]string{
		{"ingress", "out", "ttl"}, {"ttl", "out", "egress"}, {"egress", "out", "sink"},
	} {
		if _, err := router.ConnectPush(capsule, b[0], b[1], b[2]); err != nil {
			return err
		}
	}

	// 3. Push some traffic.
	ingress := mustPush(capsule, "ingress")
	for i := 0; i < 1000; i++ {
		raw, err := packet.BuildUDP4(
			netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.168.0.1"),
			5000, 53, 64, []byte("hello"))
		if err != nil {
			return err
		}
		if err := ingress.Push(router.NewPacket(raw)); err != nil {
			return err
		}
	}

	// 4. Introspect: the architecture meta-model always reflects reality.
	g := capsule.Snapshot()
	fmt.Printf("architecture: %d components, %d bindings (valid: %v)\n",
		len(g.Nodes), len(g.Edges), g.Validate() == nil)

	// 5. Intercept: attach an auditing interceptor to a live binding.
	var audited int
	b := capsule.BindingsOf("ttl")[0]
	if err := b.AddInterceptor(core.Interceptor{
		Name: "audit",
		Wrap: core.PrePost(func(op string, args []any) { audited++ }, nil),
	}); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		raw, err := packet.BuildUDP4(
			netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("192.168.0.1"),
			5001, 80, 64, nil)
		if err != nil {
			return err
		}
		if err := ingress.Push(router.NewPacket(raw)); err != nil {
			return err
		}
	}
	fmt.Printf("interceptor observed %d calls\n", audited)
	if err := b.RemoveInterceptor("audit"); err != nil {
		return err
	}

	// 6. Reconfigure: hot-swap the TTL processor for a validating one;
	//    traffic is never dropped by the swap itself.
	if err := router.HotSwap(capsule, "ttl", "ttl2", router.NewIPv4Proc(true)); err != nil {
		return err
	}
	fmt.Println("hot-swapped ttl -> ttl2 (checksum-validating)")

	egress, _ := capsule.Component("egress")
	stats := egress.(*router.Counter).Stats()
	fmt.Printf("egress saw %d packets\n", stats.In)
	return nil
}

func mustPush(c *core.Capsule, name string) router.IPacketPush {
	comp, ok := c.Component(name)
	if !ok {
		panic("missing " + name)
	}
	impl, _ := comp.Provided(router.IPacketPushID)
	return impl.(router.IPacketPush)
}
