package cf

import (
	"context"
	"fmt"
	"sort"

	"netkit/core"
)

// AnnotReplica marks an inner constituent as belonging to one replica of a
// replicated (sharded) composite. The value is the replica index as a
// decimal string; Replicas groups members by it. Constituents without the
// annotation are shared infrastructure, not part of any replica.
const AnnotReplica = "netkit.cf.replica"

// Controller manages and configures the internal constituents of a
// composite component (Figure 3's "controller" box). Configure wires the
// inner capsule; Principal names the controller for ACL decisions.
type Controller interface {
	Principal() string
	Configure(inner *core.Capsule) error
}

// Composite is a component whose implementation is itself a capsule of
// components governed by a nested framework — the paper's recursive
// composition rule ("compliant components may be composite, in which case
// all their internal constituents must (recursively) conform to the CF's
// rules; additionally, composite components should contain a so-called
// controller component").
type Composite struct {
	*core.Base
	inner      *core.Capsule
	framework  *Framework
	controller Controller
}

// NewComposite builds a composite of the given type name. The inner
// capsule inherits the outer capsule's registries. rules are the nested
// framework's admission rules (normally the same rules as the outer CF,
// giving the recursive conformance the paper requires). The controller is
// granted constraint add/remove rights on the inner framework.
func NewComposite(typeName string, outer *core.Capsule, rules []Rule, ctrl Controller) (*Composite, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("cf: composite %q needs a controller", typeName)
	}
	inner := core.NewCapsule(typeName+".inner",
		core.WithComponentRegistry(outer.ComponentRegistry()),
		core.WithInterfaceRegistry(outer.InterfaceRegistry()))
	fw, err := New(typeName+".cf", inner, rules)
	if err != nil {
		return nil, err
	}
	fw.ACL().Grant(ctrl.Principal(), OpAddConstraint)
	fw.ACL().Grant(ctrl.Principal(), OpRemoveConstraint)
	c := &Composite{
		Base:       core.NewBase(typeName),
		inner:      inner,
		framework:  fw,
		controller: ctrl,
	}
	return c, nil
}

// Inner returns the nested capsule.
func (c *Composite) Inner() *core.Capsule { return c.inner }

// Framework returns the nested framework.
func (c *Composite) Framework() *Framework { return c.framework }

// Controller returns the managing controller.
func (c *Composite) Controller() Controller { return c.controller }

// Configure runs the controller's configuration over the inner capsule and
// then re-checks all nested rules.
func (c *Composite) Configure() error {
	if err := c.controller.Configure(c.inner); err != nil {
		return fmt.Errorf("cf: composite %q configure: %w", c.TypeName(), err)
	}
	return c.framework.RecheckAll()
}

// Replicas enumerates the composite's replicated structure through the
// architecture meta-space: inner constituents are grouped by their
// AnnotReplica annotation, keyed by replica index value, each group sorted
// by name. Composites that are not replicated return an empty map. This is
// how a sharded data plane stays inspectable as one CF — the meta-space
// sees the shards without knowing how the composite schedules them.
func (c *Composite) Replicas() map[string][]string {
	out := make(map[string][]string)
	for _, name := range c.inner.ComponentNames() {
		comp, ok := c.inner.Component(name)
		if !ok {
			continue
		}
		if idx, ok := comp.Annotations()[AnnotReplica]; ok {
			out[idx] = append(out[idx], name)
		}
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// Stats implements core.IStats by aggregating the inner constituents'
// snapshots under core.MergeStats (counters sum, ratio gauges average),
// so a composite reads as ONE element wherever a leaf component would —
// the recursion rule that gives the meta-space a coherent stats tree.
// Per-constituent detail stays reachable through core.CapsuleStats, which
// walks Inner() instead of flattening.
func (c *Composite) Stats() []core.Stat {
	groups := make([][]core.Stat, 0, 8)
	for _, name := range c.inner.ComponentNames() {
		comp, ok := c.inner.Component(name)
		if !ok {
			continue
		}
		if s, ok := comp.(core.IStats); ok {
			groups = append(groups, s.Stats())
		}
	}
	return core.MergeStats(groups...)
}

var _ core.IStats = (*Composite)(nil)

// Export re-exports an interface provided by an inner member on the
// composite's own boundary, under the same interface ID: the mechanism by
// which a composite presents an inner constituent's IClassifier (Figure 3
// shows "Access to IClassifier interfaces" crossing the boundary).
func (c *Composite) Export(id core.InterfaceID, memberName string) error {
	member, ok := c.inner.Component(memberName)
	if !ok {
		return fmt.Errorf("cf: composite %q: export from %q: %w",
			c.TypeName(), memberName, ErrNotMember)
	}
	impl, ok := member.Provided(id)
	if !ok {
		return fmt.Errorf("cf: composite %q: member %q does not provide %q: %w",
			c.TypeName(), memberName, id, ErrRuleViolated)
	}
	c.Provide(id, impl)
	return nil
}

// Start implements core.Starter by starting the inner capsule.
func (c *Composite) Start(ctx context.Context) error {
	return c.inner.StartAll(ctx)
}

// Stop implements core.Stopper by stopping the inner capsule.
func (c *Composite) Stop(ctx context.Context) error {
	return c.inner.StopAll(ctx)
}

var (
	_ core.Component = (*Composite)(nil)
	_ core.Starter   = (*Composite)(nil)
	_ core.Stopper   = (*Composite)(nil)
)
