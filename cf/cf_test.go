package cf

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"netkit/core"
)

// minimal test component
type comp struct{ *core.Base }

func newComp(typ string) *comp { return &comp{Base: core.NewBase(typ)} }

func newCapsule() *core.Capsule {
	return core.NewCapsule("t",
		core.WithComponentRegistry(core.NewComponentRegistry()),
		core.WithInterfaceRegistry(core.NewInterfaceRegistry()))
}

func typeRule(allowed string) Rule {
	return Rule{
		Name: "type-is-" + allowed,
		Check: func(_ *Framework, name string, c core.Component) error {
			if c.TypeName() != allowed {
				return fmt.Errorf("type %q not allowed", c.TypeName())
			}
			return nil
		},
	}
}

func TestFrameworkAdmitAndRules(t *testing.T) {
	cap := newCapsule()
	f, err := New("router", cap, []Rule{typeRule("good")})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "router" || f.Capsule() != cap {
		t.Fatal("identity")
	}
	if err := f.Admit("a", newComp("good")); err != nil {
		t.Fatal(err)
	}
	if !f.IsMember("a") {
		t.Fatal("membership")
	}
	if _, ok := cap.Component("a"); !ok {
		t.Fatal("not inserted into capsule")
	}
	err = f.Admit("b", newComp("bad"))
	if !errors.Is(err, ErrRuleViolated) {
		t.Fatalf("want ErrRuleViolated, got %v", err)
	}
	if _, ok := cap.Component("b"); ok {
		t.Fatal("rejected component inserted anyway")
	}
	if got := f.Members(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("members = %v", got)
	}
}

func TestFrameworkExpel(t *testing.T) {
	cap := newCapsule()
	f, err := New("fw", cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Admit("a", newComp("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Expel("a"); err != nil {
		t.Fatal(err)
	}
	if f.IsMember("a") {
		t.Fatal("still member")
	}
	if _, ok := cap.Component("a"); ok {
		t.Fatal("still in capsule")
	}
	if err := f.Expel("a"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("want ErrNotMember, got %v", err)
	}
}

func TestRecheckAllDetectsDrift(t *testing.T) {
	cap := newCapsule()
	// Rule: members must carry annotation "ok".
	rule := Rule{
		Name: "annotated",
		Check: func(_ *Framework, name string, c core.Component) error {
			if v, _ := c.Annotations()["ok"], false; v != "yes" {
				return fmt.Errorf("missing annotation")
			}
			return nil
		},
	}
	f, err := New("fw", cap, []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	c := newComp("x")
	c.SetAnnotation("ok", "yes")
	if err := f.Admit("a", c); err != nil {
		t.Fatal(err)
	}
	if err := f.RecheckAll(); err != nil {
		t.Fatal(err)
	}
	// Drift: the component mutates out of compliance at run time.
	c.SetAnnotation("ok", "no")
	if err := f.RecheckAll(); !errors.Is(err, ErrRuleViolated) {
		t.Fatalf("want ErrRuleViolated after drift, got %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", newCapsule(), nil); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := New("x", nil, nil); err == nil {
		t.Fatal("want error for nil capsule")
	}
}

func TestACL(t *testing.T) {
	a := NewACL()
	if err := a.Check("alice", OpAddConstraint); !errors.Is(err, ErrDenied) {
		t.Fatalf("default should deny, got %v", err)
	}
	a.Grant("alice", OpAddConstraint)
	if err := a.Check("alice", OpAddConstraint); err != nil {
		t.Fatal(err)
	}
	if err := a.Check("alice", OpRemoveConstraint); !errors.Is(err, ErrDenied) {
		t.Fatal("op leak")
	}
	if err := a.Check("bob", OpAddConstraint); !errors.Is(err, ErrDenied) {
		t.Fatal("principal leak")
	}
	a.Revoke("alice", OpAddConstraint)
	if err := a.Check("alice", OpAddConstraint); !errors.Is(err, ErrDenied) {
		t.Fatal("revoke ineffective")
	}
	a.Revoke("carol", "nothing") // revoking never-granted must not panic
}

func TestConstraintsPolicedByACL(t *testing.T) {
	cap := newCapsule()
	f, err := New("fw", cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc := core.BindConstraint{
		Name:  "no-binds",
		Check: func(*core.Capsule, core.BindRequest) error { return errors.New("no") },
	}
	if err := f.AddConstraint("mallory", bc); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	f.ACL().Grant("ctrl", OpAddConstraint)
	if err := f.AddConstraint("ctrl", bc); err != nil {
		t.Fatal(err)
	}
	if got := cap.Constraints(); len(got) != 1 || got[0] != "no-binds" {
		t.Fatalf("constraints = %v", got)
	}
	if err := f.RemoveConstraint("mallory", "no-binds"); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	f.ACL().Grant("ctrl", OpRemoveConstraint)
	if err := f.RemoveConstraint("ctrl", "no-binds"); err != nil {
		t.Fatal(err)
	}
}

// ---- composite ----------------------------------------------------------------

type testController struct {
	principal string
	configure func(inner *core.Capsule) error
}

func (c *testController) Principal() string { return c.principal }
func (c *testController) Configure(inner *core.Capsule) error {
	if c.configure != nil {
		return c.configure(inner)
	}
	return nil
}

func TestCompositeConfigure(t *testing.T) {
	outer := newCapsule()
	ctrl := &testController{
		principal: "ctrl",
		configure: func(inner *core.Capsule) error {
			return inner.Insert("member", newComp("inner.type"))
		},
	}
	comp, err := NewComposite("router.Pipeline", outer, nil, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Configure(); err != nil {
		t.Fatal(err)
	}
	if _, ok := comp.Inner().Component("member"); !ok {
		t.Fatal("controller configuration not applied")
	}
	if comp.Controller() != Controller(ctrl) {
		t.Fatal("controller identity")
	}
}

func TestCompositeNeedsController(t *testing.T) {
	if _, err := NewComposite("x", newCapsule(), nil, nil); err == nil {
		t.Fatal("want error for nil controller")
	}
}

func TestCompositeRecursiveRules(t *testing.T) {
	outer := newCapsule()
	rules := []Rule{typeRule("allowed")}
	ctrl := &testController{principal: "ctrl"}
	comp, err := NewComposite("composite", outer, rules, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	// Inner admission enforces the same rules recursively.
	if err := comp.Framework().Admit("ok", newComp("allowed")); err != nil {
		t.Fatal(err)
	}
	err = comp.Framework().Admit("bad", newComp("forbidden"))
	if !errors.Is(err, ErrRuleViolated) {
		t.Fatalf("want ErrRuleViolated, got %v", err)
	}
}

func TestCompositeControllerACL(t *testing.T) {
	outer := newCapsule()
	ctrl := &testController{principal: "ctrl"}
	comp, err := NewComposite("composite", outer, nil, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	bc := core.BindConstraint{
		Name:  "c",
		Check: func(*core.Capsule, core.BindRequest) error { return nil },
	}
	// The controller principal was granted rights at construction.
	if err := comp.Framework().AddConstraint("ctrl", bc); err != nil {
		t.Fatal(err)
	}
	if err := comp.Framework().RemoveConstraint("ctrl", "c"); err != nil {
		t.Fatal(err)
	}
	// Others are denied.
	if err := comp.Framework().AddConstraint("plugin", bc); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
}

func TestCompositeExport(t *testing.T) {
	reg := core.NewInterfaceRegistry()
	const id = core.InterfaceID("test.IThing/1")
	reg.MustRegister(&core.Descriptor{
		ID:    id,
		Check: func(v any) bool { _, ok := v.(int); return ok },
	})
	outer := core.NewCapsule("o",
		core.WithComponentRegistry(core.NewComponentRegistry()),
		core.WithInterfaceRegistry(reg))
	ctrl := &testController{principal: "ctrl"}
	comp, err := NewComposite("composite", outer, nil, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	inner := newComp("member.type")
	inner.Provide(id, 42)
	if err := comp.Framework().Admit("m", inner); err != nil {
		t.Fatal(err)
	}
	if err := comp.Export(id, "m"); err != nil {
		t.Fatal(err)
	}
	v, ok := comp.Provided(id)
	if !ok || v.(int) != 42 {
		t.Fatalf("exported = %v %v", v, ok)
	}
	if err := comp.Export(id, "ghost"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("want ErrNotMember, got %v", err)
	}
	if err := comp.Export("test.Other/1", "m"); !errors.Is(err, ErrRuleViolated) {
		t.Fatalf("want ErrRuleViolated, got %v", err)
	}
}

func TestCompositeLifecyclePropagates(t *testing.T) {
	outer := newCapsule()
	ctrl := &testController{principal: "ctrl"}
	comp, err := NewComposite("composite", outer, nil, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	lc := &lifecycleComp{Base: core.NewBase("lc")}
	if err := comp.Framework().Admit("lc", lc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := comp.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !lc.started {
		t.Fatal("inner not started")
	}
	if err := comp.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if !lc.stopped {
		t.Fatal("inner not stopped")
	}
}

type lifecycleComp struct {
	*core.Base
	started, stopped bool
}

func (l *lifecycleComp) Start(context.Context) error { l.started = true; return nil }
func (l *lifecycleComp) Stop(context.Context) error  { l.stopped = true; return nil }

// TestCompositeReplicas proves the sharded-composite enumeration: members
// annotated with AnnotReplica group by replica index, unannotated members
// (shared infrastructure) stay out of every group.
func TestCompositeReplicas(t *testing.T) {
	cap := newCapsule()
	ctrl := &testController{principal: "ctrl"}
	comp, err := NewComposite("sharded", cap, nil, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.Replicas(); len(got) != 0 {
		t.Fatalf("unreplicated composite enumerates %v", got)
	}
	for i := 0; i < 2; i++ {
		for _, part := range []string{"in", "out"} {
			m := newComp("member")
			m.SetAnnotation(AnnotReplica, fmt.Sprint(i))
			name := fmt.Sprintf("s%d/%s", i, part)
			if err := comp.Inner().Insert(name, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := comp.Inner().Insert("shared", newComp("member")); err != nil {
		t.Fatal(err)
	}
	got := comp.Replicas()
	if len(got) != 2 {
		t.Fatalf("replica groups %v, want 2", got)
	}
	for i := 0; i < 2; i++ {
		idx := fmt.Sprint(i)
		want := []string{fmt.Sprintf("s%d/in", i), fmt.Sprintf("s%d/out", i)}
		if len(got[idx]) != 2 || got[idx][0] != want[0] || got[idx][1] != want[1] {
			t.Fatalf("replica %s = %v, want %v", idx, got[idx], want)
		}
	}
	for _, names := range got {
		for _, n := range names {
			if n == "shared" {
				t.Fatal("unannotated member enumerated as a replica constituent")
			}
		}
	}
}
